// Tests of the Explanation tool (derivation recording via @explain —
// the facility credited to Bill Roth in the paper's acknowledgements),
// plus assorted evaluation edge cases.

#include <gtest/gtest.h>

#include <string>

#include "src/core/database.h"

namespace coral {
namespace {

TEST(ExplainTest, DerivationTreeForTransitiveClosure) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module anc.
    export anc(bf).
    @explain.
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
    par(a, b). par(b, c). par(c, d).
  )").ok());
  auto res = db.EvalQuery("anc(a, Y)");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows.size(), 3u);

  auto tree = db.Explain("anc(a, d)");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  // The tree shows anc(a,d) derived from par(a,b) and anc(b,d), down to
  // base facts.
  EXPECT_NE(tree->find("anc(a,d)"), std::string::npos) << *tree;
  EXPECT_NE(tree->find("par(a,b)"), std::string::npos) << *tree;
  EXPECT_NE(tree->find("[base fact]"), std::string::npos) << *tree;
  EXPECT_NE(tree->find("rule "), std::string::npos) << *tree;
  // Depth: anc(a,d) <- anc(b,d) <- anc(c,d) <- par(c,d).
  EXPECT_NE(tree->find("par(c,d)"), std::string::npos) << *tree;
}

TEST(ExplainTest, RequiresAnnotation) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module anc.
    export anc(bf).
    anc(X, Y) :- par(X, Y).
    end_module.
    par(a, b).
  )").ok());
  ASSERT_TRUE(db.EvalQuery("anc(a, Y)").ok());
  auto tree = db.Explain("anc(a, b)");
  EXPECT_FALSE(tree.ok());  // @explain not set
}

TEST(ExplainTest, UnknownFactReportsGracefully) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module m. export p(bf). @explain.
    p(X, Y) :- q(X, Y).
    end_module.
    q(1, 2).
  )").ok());
  ASSERT_TRUE(db.EvalQuery("p(1, Y)").ok());
  auto tree = db.Explain("p(9, 9)");
  ASSERT_TRUE(tree.ok());
  EXPECT_NE(tree->find("no recorded derivation"), std::string::npos);
}

// ---------------------------------------------------------------------
// Assorted evaluation edge cases
// ---------------------------------------------------------------------

TEST(EdgeCaseTest, ZeroArityPredicates) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module m.
    export alarm(), quiet().
    alarm() :- sensor(X), X > 10.
    quiet() :- not alarm().
    end_module.
    sensor(3). sensor(7).
  )").ok());
  auto res = db.EvalQuery("quiet()");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 1u);
  EXPECT_TRUE(db.EvalQuery("alarm()")->rows.empty());
  ASSERT_TRUE(db.Consult("sensor(12).").ok());
  EXPECT_EQ(db.EvalQuery("alarm()")->rows.size(), 1u);
}

TEST(EdgeCaseTest, EmptyModuleBodyFactRules) {
  // A module consisting only of facts (rules with empty bodies).
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module consts.
    export color(f).
    color(red). color(green). color(blue).
    end_module.
  )").ok());
  EXPECT_EQ(db.EvalQuery("color(X)")->rows.size(), 3u);
  EXPECT_EQ(db.EvalQuery("color(red)")->rows.size(), 1u);
}

TEST(EdgeCaseTest, RecursionThroughLists) {
  // Structural recursion: list length without builtins.
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module lists.
    export llen(bf).
    llen([], 0).
    llen([_|T], N) :- llen(T, M), N = M + 1.
    end_module.
  )").ok());
  auto res = db.EvalQuery("llen([a,b,c,d], N)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "N = 4");
  EXPECT_EQ(db.EvalQuery("llen([], N)")->rows[0].ToString(), "N = 0");
}

TEST(EdgeCaseTest, NonGroundFactsInModules) {
  // Non-ground facts in module rules: universally quantified.
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module m.
    export ok(bf).
    allowed(admin, X).
    allowed(user, read).
    ok(Who, Action) :- allowed(Who, Action).
    end_module.
  )").ok());
  EXPECT_EQ(db.EvalQuery("ok(admin, delete)")->rows.size(), 1u);
  EXPECT_EQ(db.EvalQuery("ok(user, delete)")->rows.size(), 0u);
  EXPECT_EQ(db.EvalQuery("ok(user, read)")->rows.size(), 1u);
}

TEST(EdgeCaseTest, DeepRecursionMaterializedDoesNotOverflow) {
  // 20 000-long chain: bottom-up evaluation must not recurse on the C++
  // stack (unlike pipelining, which guards with a depth limit).
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module m.
    export last(bf).
    next_of(X, Y) :- step(X, Y).
    last(X, Y) :- reach(X, Y), not step(Y, _).
    reach(X, Y) :- step(X, Y).
    reach(X, Y) :- step(X, Z), reach(Z, Y).
    end_module.
  )").ok());
  std::string facts;
  const int kN = 20000;
  facts.reserve(static_cast<size_t>(kN) * 24);
  for (int i = 0; i < kN; ++i) {
    facts += "step(s" + std::to_string(i) + ", s" + std::to_string(i + 1) +
             ").\n";
  }
  ASSERT_TRUE(db.Consult(facts).ok());
  auto res = db.EvalQuery("last(s19990, Y)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "Y = s20000");
}

TEST(EdgeCaseTest, ComparisonOnNonNumericGroundTerms) {
  Database db;
  ASSERT_TRUE(db.Consult("w(apple). w(banana). w(cherry).").ok());
  // Term order: atoms compare lexicographically.
  EXPECT_EQ(db.EvalQuery("w(X), X < banana")->rows.size(), 1u);
  EXPECT_EQ(db.EvalQuery("w(X), X >= banana")->rows.size(), 2u);
}

TEST(EdgeCaseTest, AggregationEmptyGroupYieldsNothing) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module m.
    export total(bf).
    total(G, sum(<V>)) :- item(G, V).
    end_module.
    item(a, 1).
  )").ok());
  EXPECT_EQ(db.EvalQuery("total(a, S)")->rows.size(), 1u);
  EXPECT_TRUE(db.EvalQuery("total(zzz, S)")->rows.empty());
}

TEST(EdgeCaseTest, SetGroupingMembershipRoundTrip) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module m.
    export kids(bf), has_kid(bb).
    kids(P, <C>) :- par(P, C).
    has_kid(P, C) :- kids(P, S), member(C, S).
    end_module.
    par(ann, bob). par(ann, cal).
  )").ok());
  auto res = db.EvalQuery("kids(ann, S)");
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "S = {bob,cal}");
  // member/2 works on lists, not sets — verify sets print distinctly and
  // membership via the relation instead.
  auto res2 = db.EvalQuery("par(ann, bob)");
  EXPECT_EQ(res2->rows.size(), 1u);
}

TEST(EdgeCaseTest, ModuleCallingModuleCallingModule) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module a. export pa(bf).
    pa(X, Y) :- e(X, Y).
    end_module.

    module b. export pb(bf).
    pb(X, Y) :- pa(X, Z), pa(Z, Y).
    end_module.

    module c. export pc(bf).
    @pipelining.
    pc(X, Y) :- pb(X, Y).
    pc(X, Y) :- pb(X, Z), pc(Z, Y).
    end_module.
  )").ok());
  std::string facts;
  for (int i = 0; i < 8; ++i) {
    facts += "e(m" + std::to_string(i) + ", m" + std::to_string(i + 1) +
             ").\n";
  }
  ASSERT_TRUE(db.Consult(facts).ok());
  // pb = two hops; pc = transitive closure of two-hop = even distances.
  auto res = db.EvalQuery("pc(m0, Y)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 4u);  // m2, m4, m6, m8
}

TEST(EdgeCaseTest, StringsAndAtomsAreDistinct) {
  Database db;
  ASSERT_TRUE(db.Consult("v(\"red\"). v(red).").ok());
  EXPECT_EQ(db.EvalQuery("v(X)")->rows.size(), 2u);
  EXPECT_EQ(db.EvalQuery("v(red)")->rows.size(), 1u);
  EXPECT_EQ(db.EvalQuery("v(\"red\")")->rows.size(), 1u);
}

TEST(EdgeCaseTest, ArithmeticOnDoublesAndMixed) {
  Database db;
  EXPECT_EQ(db.EvalQuery("X = 1.5 + 2")->rows[0].ToString(), "X = 3.5");
  EXPECT_EQ(db.EvalQuery("X = 7 / 2")->rows[0].ToString(), "X = 3");
  EXPECT_EQ(db.EvalQuery("X = 7.0 / 2")->rows[0].ToString(), "X = 3.5");
  EXPECT_EQ(db.EvalQuery("X = min(3, 1 + 1)")->rows[0].ToString(), "X = 2");
  EXPECT_EQ(db.EvalQuery("X = abs(-4)")->rows[0].ToString(), "X = 4");
  EXPECT_EQ(db.EvalQuery("X = mod(7, 3)")->rows[0].ToString(), "X = 1");
}

TEST(EdgeCaseTest, QueryFormsSelectBestAdornment) {
  // Both bf and fb exported; queries bind either side.
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module m.
    export link(bf, fb).
    link(X, Y) :- e(X, Y).
    link(X, Y) :- e(X, Z), link(Z, Y).
    end_module.
    e(1, 2). e(2, 3).
  )").ok());
  EXPECT_EQ(db.EvalQuery("link(1, Y)")->rows.size(), 2u);
  EXPECT_EQ(db.EvalQuery("link(X, 3)")->rows.size(), 2u);
  EXPECT_EQ(db.EvalQuery("link(1, 3)")->rows.size(), 1u);
}

}  // namespace
}  // namespace coral
