// End-to-end tests of the evaluation core: materialized (BSN/PSN/Naive)
// fixpoints with magic rewriting, pipelined evaluation, negation,
// aggregation, set-grouping, aggregate selections (the paper's Fig. 3
// shortest-path program), Ordered Search, save modules, lazy evaluation,
// inter-module calls, builtins, and non-ground facts.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "src/core/database.h"
#include "src/lang/parser.h"

namespace coral {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  void Load(const std::string& src) {
    auto st = db.Consult(src);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }

  /// Runs a query and returns each answer row as its ToString form,
  /// sorted for determinism.
  std::vector<std::string> Ask(const std::string& query) {
    auto result = db.EvalQuery(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << " for "
                             << query;
    std::vector<std::string> rows;
    if (result.ok()) {
      for (const AnswerRow& r : result->rows) rows.push_back(r.ToString());
      std::sort(rows.begin(), rows.end());
    }
    return rows;
  }

  size_t Count(const std::string& query) { return Ask(query).size(); }

  Database db;
};

// ---------------------------------------------------------------------
// Base facts and plain queries
// ---------------------------------------------------------------------

TEST_F(CoreTest, FactsAndGroundQueries) {
  Load("edge(1, 2). edge(2, 3).");
  EXPECT_EQ(Ask("edge(1, 2)"), std::vector<std::string>{"true"});
  EXPECT_TRUE(Ask("edge(1, 3)").empty());
  EXPECT_EQ(Count("edge(X, Y)"), 2u);
  EXPECT_EQ(Ask("edge(1, X)"), std::vector<std::string>{"X = 2"});
}

TEST_F(CoreTest, ConjunctiveQueryWithComparison) {
  Load("n(1). n(2). n(3). n(4).");
  EXPECT_EQ(Count("n(X), X < 3"), 2u);
  EXPECT_EQ(Count("n(X), n(Y), X < Y"), 6u);
}

TEST_F(CoreTest, ArithmeticInQueries) {
  Load("p(3, 4).");
  EXPECT_EQ(Ask("p(X, Y), Z = X * Y + 1"),
            std::vector<std::string>{"X = 3, Y = 4, Z = 13"});
  // Division by zero fails the goal rather than erroring.
  EXPECT_TRUE(Ask("p(X, Y), Z = X / 0").empty());
}

TEST_F(CoreTest, NonGroundFactsSubsumeQueries) {
  // A fact with a universally quantified variable (paper §3.1).
  Load("likes(X, icecream). likes(sam, pie).");
  EXPECT_EQ(Ask("likes(bob, icecream)"), std::vector<std::string>{"true"});
  EXPECT_EQ(Count("likes(sam, W)"), 2u);
}

// ---------------------------------------------------------------------
// Materialized recursion with magic rewriting
// ---------------------------------------------------------------------

constexpr char kAncestorModule[] = R"(
  module ancestors.
  export anc(bf, ff).
  anc(X, Y) :- par(X, Y).
  anc(X, Y) :- par(X, Z), anc(Z, Y).
  end_module.
)";

TEST_F(CoreTest, TransitiveClosureBoundQuery) {
  Load(kAncestorModule);
  Load("par(a, b). par(b, c). par(c, d). par(e, f).");
  auto rows = Ask("anc(a, X)");
  EXPECT_EQ(rows, (std::vector<std::string>{"X = b", "X = c", "X = d"}));
  EXPECT_TRUE(Ask("anc(d, X)").empty());
  EXPECT_EQ(Ask("anc(e, X)"), std::vector<std::string>{"X = f"});
}

TEST_F(CoreTest, TransitiveClosureAllFreeQuery) {
  Load(kAncestorModule);
  Load("par(a, b). par(b, c).");
  EXPECT_EQ(Count("anc(X, Y)"), 3u);
}

TEST_F(CoreTest, MagicAvoidsIrrelevantComputation) {
  Load(kAncestorModule);
  // Two disconnected chains; a bound query on one must not derive
  // ancestors in the other.
  std::string facts;
  for (int i = 0; i < 30; ++i) {
    facts += "par(l" + std::to_string(i) + ", l" + std::to_string(i + 1) +
             ").\n";
    facts += "par(r" + std::to_string(i) + ", r" + std::to_string(i + 1) +
             ").\n";
  }
  Load(facts);
  EXPECT_EQ(Count("anc(l0, X)"), 30u);
  const EvalStats& stats = db.modules()->last_stats();
  // With magic, computation is restricted to the l-chain: its suffix
  // subgoals still cost ~465 answer tuples plus magic/supplementary
  // facts, but the r-chain's ~465 tuples are never derived.
  EXPECT_LT(stats.inserts, 700u);
}

TEST_F(CoreTest, CyclicGraphTerminates) {
  Load(kAncestorModule);
  Load("par(a, b). par(b, c). par(c, a).");
  auto rows = Ask("anc(a, X)");
  EXPECT_EQ(rows.size(), 3u);  // a, b, c all reachable
}

TEST_F(CoreTest, GroundQueryThroughModule) {
  Load(kAncestorModule);
  Load("par(a, b). par(b, c).");
  EXPECT_EQ(Ask("anc(a, c)"), std::vector<std::string>{"true"});
  EXPECT_TRUE(Ask("anc(c, a)").empty());
}

TEST_F(CoreTest, SameGenerationNonLinear) {
  Load(R"(
    module sg.
    export sg(bf).
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    end_module.
  )");
  Load(R"(
    up(a, b). up(a2, b). up(b, c).
    flat(c, c2). flat(b, b2).
    down(c2, b3). down(b2, a3). down(b3, b4).
  )");
  // sg(a, ?): up(a,b), sg(b,?), down.  sg(b,*): flat(b,b2)->a3; and
  // up(b,c), flat(c,c2), down(c2,b3) -> sg(b,b3) -> down(b3,b4) gives
  // sg(a, b4); sg(a, a3) via sg(b,b2)? sg(b,b2) is flat: down(b2,a3) so
  // sg(a, a3).
  auto rows = Ask("sg(a, Y)");
  EXPECT_EQ(rows, (std::vector<std::string>{"Y = a3", "Y = b4"}));
}

TEST_F(CoreTest, ListsAndStructuredDataInModules) {
  Load(R"(
    module paths.
    export path_list(bbf).
    path_list(X, Y, [edge(X, Y)]) :- edge(X, Y).
    path_list(X, Y, P1) :- edge(X, Z), path_list(Z, Y, P),
                           append([edge(X, Z)], P, P1).
    end_module.
  )");
  Load("edge(1, 2). edge(2, 3).");
  auto rows = Ask("path_list(1, 3, P)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "P = [edge(1,2),edge(2,3)]");
}

// ---------------------------------------------------------------------
// Strategy variants: no rewriting, naive, PSN
// ---------------------------------------------------------------------

TEST_F(CoreTest, NoRewritingComputesFullRelation) {
  Load(R"(
    module m.
    export tc(bf).
    @no_rewriting.
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    end_module.
  )");
  Load("e(1, 2). e(2, 3). e(10, 11).");
  EXPECT_EQ(Count("tc(1, X)"), 2u);
  // Without magic the module derived the whole closure (3 tuples + ...)
  const EvalStats& stats = db.modules()->last_stats();
  EXPECT_GE(stats.inserts, 3u);
}

TEST_F(CoreTest, NaiveAndSemiNaiveAgree) {
  for (const char* strategy : {"@naive.", "@bsn.", "@psn."}) {
    Database fresh;
    std::string mod = std::string(R"(
      module m.
      export tc(bf).
    )") + strategy + R"(
      tc(X, Y) :- e(X, Y).
      tc(X, Y) :- e(X, Z), tc(Z, Y).
      end_module.
    )";
    ASSERT_TRUE(fresh.Consult(mod).ok());
    ASSERT_TRUE(fresh.Consult("e(1,2). e(2,3). e(3,4). e(4,2).").ok());
    auto res = fresh.EvalQuery("tc(1, X)");
    ASSERT_TRUE(res.ok()) << strategy;
    EXPECT_EQ(res->rows.size(), 3u) << strategy;
  }
}

TEST_F(CoreTest, PsnHandlesMutualRecursion) {
  Load(R"(
    module eo.
    export even(b).
    @psn.
    even(0).
    even(X) :- X > 0, Y = X - 1, odd(Y).
    odd(X) :- X > 0, Y = X - 1, even(Y).
    end_module.
  )");
  EXPECT_EQ(Ask("even(10)"), std::vector<std::string>{"true"});
  EXPECT_TRUE(Ask("even(7)").empty());
}

// ---------------------------------------------------------------------
// Negation
// ---------------------------------------------------------------------

TEST_F(CoreTest, StratifiedNegation) {
  Load(R"(
    module reach.
    export unreachable(f).
    reachable(X) :- source(X).
    reachable(Y) :- reachable(X), e(X, Y).
    unreachable(X) :- node(X), not reachable(X).
    end_module.
  )");
  Load(R"(
    node(a). node(b). node(c). node(d).
    source(a). e(a, b). e(b, c).
  )");
  EXPECT_EQ(Ask("unreachable(X)"), std::vector<std::string>{"X = d"});
}

TEST_F(CoreTest, NegationInQueries) {
  Load("p(1). p(2). q(2).");
  EXPECT_EQ(Ask("p(X), not q(X)"), std::vector<std::string>{"X = 1"});
}

TEST_F(CoreTest, OrderedSearchWinMove) {
  // The classic game program: win(X) iff some move leads to a lost
  // position. Not stratified; left-to-right modularly stratified on
  // acyclic move graphs — exactly Ordered Search territory (§5.4.1).
  Load(R"(
    module game.
    export win(b).
    @ordered_search.
    win(X) :- move(X, Y), not win(Y).
    end_module.
  )");
  // Chain: a -> b -> c -> d (d has no moves: lost).
  Load("move(a, b). move(b, c). move(c, d).");
  EXPECT_EQ(Ask("win(c)"), std::vector<std::string>{"true"});  // c->d lost
  EXPECT_TRUE(Ask("win(b)").empty());  // b->c and c wins
  EXPECT_EQ(Ask("win(a)"), std::vector<std::string>{"true"});
}

TEST_F(CoreTest, OrderedSearchDeeperGame) {
  Load(R"(
    module game.
    export win(b).
    @ordered_search.
    win(X) :- move(X, Y), not win(Y).
    end_module.
  )");
  // Binary tree of moves; leaves are lost.
  std::string facts;
  for (int i = 1; i <= 15; ++i) {
    if (2 * i <= 31) {
      facts += "move(n" + std::to_string(i) + ", n" + std::to_string(2 * i) +
               ").\n";
      facts += "move(n" + std::to_string(i) + ", n" +
               std::to_string(2 * i + 1) + ").\n";
    }
  }
  Load(facts);
  // Complete binary tree, leaves n16..n31 lost. Parents of leaves
  // (n8..n15) win; n4..n7 lose (all children win); n2, n3 win; the root
  // n1 loses (both children win).
  EXPECT_EQ(Ask("win(n8)"), std::vector<std::string>{"true"});
  EXPECT_TRUE(Ask("win(n4)").empty());
  EXPECT_EQ(Ask("win(n2)"), std::vector<std::string>{"true"});
  EXPECT_TRUE(Ask("win(n1)").empty());
}

TEST_F(CoreTest, ContextFactoringRightLinear) {
  // @factoring (paper §4.1): right-linear TC evaluated via the context
  // relation — same answers as magic, linear instead of quadratic.
  Load(R"(
    module anc.
    export anc(bf).
    @factoring.
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  std::string facts;
  for (int i = 0; i < 40; ++i) {
    facts += "par(f" + std::to_string(i) + ", f" + std::to_string(i + 1) +
             ").\n";
  }
  facts += "par(x, y).";  // disconnected
  Load(facts);
  EXPECT_EQ(Count("anc(f0, Y)"), 40u);
  EXPECT_EQ(Ask("anc(f0, f40)"), std::vector<std::string>{"true"});
  EXPECT_EQ(Count("anc(f35, Y)"), 5u);
  // Linear behaviour (stats of the f35 call): inserts ~ seed + context
  // (6) + answers (5), far below the ~20 tuples magic would need for the
  // suffix subgoals (and crucially no quadratic answer relation).
  const EvalStats& stats = db.modules()->last_stats();
  EXPECT_LT(stats.inserts, 20u);
}

TEST_F(CoreTest, ContextFactoringRejectsNonRightLinear) {
  // Left-recursive form: the recursive call is first, not last.
  auto st = db.Consult(R"(
    module m.
    export tc(bf).
    @factoring.
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- tc(X, Z), e(Z, Y).
    end_module.
  )");
  ASSERT_TRUE(st.ok());  // compile is lazy: error surfaces at query time
  Load("e(1, 2).");
  auto res = db.EvalQuery("tc(1, Y)");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnsupported);
}

TEST_F(CoreTest, OrderedSearchCollapsesCyclicSubgoals) {
  // Positive recursion over cyclic data under Ordered Search: the
  // subgoal for anc(b) regenerates anc(a) while it is still on the
  // context stack — the nodes must collapse and complete together
  // (paper §5.4.1's mutually dependent subgoals).
  Load(R"(
    module anc.
    export anc(bf).
    @ordered_search.
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  Load("par(a, b). par(b, a). par(b, c).");
  auto rows = Ask("anc(a, Y)");
  EXPECT_EQ(rows, (std::vector<std::string>{"Y = a", "Y = b", "Y = c"}));
}

TEST_F(CoreTest, OrderedSearchNegationAndAggregationTogether) {
  // A winning-move summary: for each position, count the winning moves —
  // aggregation over a predicate defined with non-stratified negation.
  Load(R"(
    module game.
    export options(bf).
    @ordered_search.
    win(X) :- move(X, Y), not win(Y).
    good(X, Y) :- move(X, Y), not win(Y).
    options(X, count(<Y>)) :- good(X, Y).
    end_module.
  )");
  // pos3 -> pos2 -> pos1 -> pos0 (lost); pos3 -> pos1 shortcut.
  Load("move(p3, p2). move(p3, p1). move(p2, p1). move(p1, p0).");
  // p1 wins (to p0); p2 loses; p3: moves to p2 (losing: good) and p1
  // (winning: not good) -> one good option.
  EXPECT_EQ(Ask("options(p3, N)"), std::vector<std::string>{"N = 1"});
  EXPECT_EQ(Ask("options(p1, N)"), std::vector<std::string>{"N = 1"});
  EXPECT_TRUE(Ask("options(p2, N)").empty());  // no good moves
}

TEST_F(CoreTest, OrderedSearchRecursiveAggregation) {
  // Company controls: sum aggregation inside recursion — the canonical
  // left-to-right modularly stratified program (paper §5.4.1 and [23]).
  Load(R"(
    module control.
    export controls(bf).
    @ordered_search.
    controls(X, Y) :- total_shares(X, Y, T), T > 50.
    total_shares(X, Y, sum(<S>)) :- commands(X, Y, Z, S).
    commands(X, Y, X, S) :- owns(X, Y, S).
    commands(X, Y, Z, S) :- owns(Z, Y, S), Z \= X, controls(X, Z).
    end_module.
  )");
  Load(R"(
    owns(acme, beta, 60).
    owns(acme, gamma, 30). owns(beta, gamma, 25).
    owns(gamma, delta, 51).
    owns(acme, omega, 20). owns(rival, omega, 45).
  )");
  EXPECT_EQ(Ask("controls(acme, Y)"),
            (std::vector<std::string>{"Y = beta", "Y = delta",
                                      "Y = gamma"}));
  EXPECT_TRUE(Ask("controls(rival, Y)").empty());
}

// ---------------------------------------------------------------------
// Aggregation and set-grouping
// ---------------------------------------------------------------------

TEST_F(CoreTest, AggregationOverBaseData) {
  Load(R"(
    module stats.
    export dept_stats(bfff).
    dept_stats(D, count(<E>), sum(<S>), max(<S>)) :- emp(D, E, S).
    end_module.
  )");
  Load(R"(
    emp(eng, alice, 120). emp(eng, bob, 100).
    emp(hr, carol, 90).
  )");
  EXPECT_EQ(Ask("dept_stats(eng, C, S, M)"),
            std::vector<std::string>{"C = 2, S = 220, M = 120"});
  EXPECT_EQ(Ask("dept_stats(hr, C, S, M)"),
            std::vector<std::string>{"C = 1, S = 90, M = 90"});
}

TEST_F(CoreTest, SetGroupingBuildsSets) {
  Load(R"(
    module fam.
    export children(bf).
    children(X, <Y>) :- par(X, Y).
    end_module.
  )");
  Load("par(a, b). par(a, c). par(d, e).");
  EXPECT_EQ(Ask("children(a, S)"), std::vector<std::string>{"S = {b,c}"});
  EXPECT_EQ(Ask("children(d, S)"), std::vector<std::string>{"S = {e}"});
}

TEST_F(CoreTest, AggregationOverRecursivePredicate) {
  // Min path length over a recursive path predicate: aggregation above a
  // recursive SCC (stratified).
  Load(R"(
    module sp.
    export plen(bbf).
    p(X, Y, 1) :- e(X, Y).
    p(X, Y, L1) :- p(X, Z, L), e(Z, Y), L1 = L + 1, L < 10.
    plen(X, Y, min(<L>)) :- p(X, Y, L).
    end_module.
  )");
  Load("e(a, b). e(b, c). e(a, c). e(c, d).");
  EXPECT_EQ(Ask("plen(a, c, L)"), std::vector<std::string>{"L = 1"});
  EXPECT_EQ(Ask("plen(a, d, L)"), std::vector<std::string>{"L = 2"});
}

TEST_F(CoreTest, AvgAggregate) {
  Load(R"(
    module m.
    export avg_of(bf).
    avg_of(G, avg(<V>)) :- sample(G, V).
    end_module.
  )");
  Load("sample(g, 1). sample(g, 2). sample(g, 6).");
  EXPECT_EQ(Ask("avg_of(g, A)"), std::vector<std::string>{"A = 3.0"});
}

// ---------------------------------------------------------------------
// Aggregate selections: the paper's Fig. 3 shortest path program
// ---------------------------------------------------------------------

constexpr char kShortestPath[] = R"(
  module s_p.
  export s_p(bfff).
  @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
  @aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
  s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
  s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
  p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                     append([edge(Z, Y)], P, P1), C1 = C + EC.
  p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
  end_module.
)";

TEST_F(CoreTest, ShortestPathFigure3) {
  Load(kShortestPath);
  // Cyclic graph: without the aggregate selection the p predicate would
  // generate unboundedly costlier cyclic paths (paper §5.5.2).
  Load(R"(
    edge(a, b, 1). edge(b, c, 2). edge(a, c, 5).
    edge(c, a, 1). edge(b, a, 1).
  )");
  // Fig. 3 prepends each new edge (append([edge(Z,Y)], P, P1)), so the
  // witness path lists edges last-hop first.
  auto rows = Ask("s_p(a, c, P, C)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "P = [edge(b,c),edge(a,b)], C = 3");
  rows = Ask("s_p(a, a, P, C)");
  ASSERT_EQ(rows.size(), 1u);
  // Cheapest cycle: a->b (1) + b->a (1) = 2.
  EXPECT_EQ(rows[0], "P = [edge(b,a),edge(a,b)], C = 2");
}

TEST_F(CoreTest, ShortestPathLargerGraph) {
  Load(kShortestPath);
  // Grid-ish graph with cycles.
  std::string facts;
  for (int i = 0; i < 10; ++i) {
    facts += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
             ", 2).\n";
    facts += "edge(v" + std::to_string(i + 1) + ", v" + std::to_string(i) +
             ", 3).\n";
  }
  facts += "edge(v0, v5, 20).\n";  // worse shortcut
  Load(facts);
  auto rows = Ask("s_p(v0, v5, P, C)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0].find("C = 10"), std::string::npos);
}

// ---------------------------------------------------------------------
// Pipelining
// ---------------------------------------------------------------------

TEST_F(CoreTest, PipelinedModuleBasics) {
  Load(R"(
    module pipe.
    export grandparent(bf).
    @pipelining.
    grandparent(X, Z) :- par(X, Y), par(Y, Z).
    end_module.
  )");
  Load("par(a, b). par(b, c). par(b, d).");
  EXPECT_EQ(Ask("grandparent(a, Z)"),
            (std::vector<std::string>{"Z = c", "Z = d"}));
}

TEST_F(CoreTest, PipelinedRecursionOnAcyclicData) {
  Load(R"(
    module pipe.
    export anc(bf).
    @pipelining.
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  Load("par(a, b). par(b, c). par(c, d).");
  EXPECT_EQ(Count("anc(a, X)"), 3u);
}

TEST_F(CoreTest, PipelinedRuleOrderAndNegation) {
  Load(R"(
    module pipe.
    export status(bf).
    @pipelining.
    status(X, poor) :- broke(X).
    status(X, rich) :- not broke(X).
    end_module.
  )");
  Load("broke(bob).");
  EXPECT_EQ(Ask("status(bob, S)"), std::vector<std::string>{"S = poor"});
  EXPECT_EQ(Ask("status(alice, S)"), std::vector<std::string>{"S = rich"});
}

TEST_F(CoreTest, PipelinedDepthGuardOnCyclicData) {
  Load(R"(
    module pipe.
    export anc(bf).
    @pipelining.
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  Load("par(a, b). par(b, a).");  // cyclic: top-down diverges
  auto result = db.EvalQuery("anc(a, X)");
  // The depth guard converts divergence into an error (not a hang).
  EXPECT_FALSE(result.ok());
}

TEST_F(CoreTest, MixedPipelinedAndMaterializedModules) {
  // A materialized module calling a pipelined one and vice versa: the
  // module interface hides the evaluation strategy (paper §5.6).
  Load(R"(
    module base_pipe.
    export double_edge(bf).
    @pipelining.
    double_edge(X, Z) :- e(X, Y), e(Y, Z).
    end_module.

    module closure.
    export dtc(bf).
    dtc(X, Y) :- double_edge(X, Y).
    dtc(X, Y) :- double_edge(X, Z), dtc(Z, Y).
    end_module.
  )");
  Load("e(1,2). e(2,3). e(3,4). e(4,5).");
  // double edges: 1->3, 2->4, 3->5; dtc(1): 3, 5.
  EXPECT_EQ(Ask("dtc(1, Y)"), (std::vector<std::string>{"Y = 3", "Y = 5"}));
}

// ---------------------------------------------------------------------
// Save module & lazy evaluation
// ---------------------------------------------------------------------

TEST_F(CoreTest, SaveModuleAvoidsRecomputation) {
  Load(R"(
    module saved.
    export anc(bf).
    @save_module.
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  std::string facts;
  for (int i = 0; i < 20; ++i) {
    facts += "par(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").\n";
  }
  Load(facts);
  EXPECT_EQ(Count("anc(n0, X)"), 20u);
  uint64_t inserts_after_first = db.modules()->last_stats().inserts;
  // Repeat the same query: state is retained, no derivations repeated.
  EXPECT_EQ(Count("anc(n0, X)"), 20u);
  uint64_t inserts_after_second = db.modules()->last_stats().inserts;
  EXPECT_EQ(inserts_after_first, inserts_after_second);
  // A subgoal already covered by the first run: also cheap.
  EXPECT_EQ(Count("anc(n5, X)"), 15u);
}

TEST_F(CoreTest, NonSaveModuleRecomputes) {
  Load(kAncestorModule);
  Load("par(a, b). par(b, c).");
  EXPECT_EQ(Count("anc(a, X)"), 2u);
  EXPECT_EQ(Count("anc(a, X)"), 2u);  // fresh instance per call: same result
}

TEST_F(CoreTest, LazyModuleDeliversAnswers) {
  // Default materialized modules deliver answers per iteration; from the
  // outside all answers must still arrive.
  Load(kAncestorModule);
  std::string facts;
  for (int i = 0; i < 50; ++i) {
    facts += "par(m" + std::to_string(i) + ", m" + std::to_string(i + 1) +
             ").\n";
  }
  Load(facts);
  EXPECT_EQ(Count("anc(m0, X)"), 50u);
}

TEST_F(CoreTest, SaveModuleWithOrderedSearch) {
  // A saved Ordered Search module: done subgoals persist across calls, so
  // re-querying a completed position answers from retained state and a
  // new position resumes incrementally.
  Load(R"(
    module game.
    export win(b).
    @ordered_search. @save_module.
    win(X) :- move(X, Y), not win(Y).
    end_module.
  )");
  Load("move(a, b). move(b, c). move(c, d).");
  EXPECT_EQ(Ask("win(a)"), std::vector<std::string>{"true"});
  uint64_t after_first = db.modules()->last_stats().inserts;
  EXPECT_EQ(Ask("win(a)"), std::vector<std::string>{"true"});
  EXPECT_EQ(db.modules()->last_stats().inserts, after_first);
  // b was already solved as a subgoal of a.
  EXPECT_TRUE(Ask("win(b)").empty());
  EXPECT_EQ(db.modules()->last_stats().inserts, after_first);
}

TEST_F(CoreTest, NegatedModuleCallInQuery) {
  Load(R"(
    module anc.
    export anc(bf).
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  Load("par(a, b). par(b, c). person(a). person(b). person(c).");
  // People who are NOT descendants of a.
  auto rows = Ask("person(P), not anc(a, P)");
  EXPECT_EQ(rows, std::vector<std::string>{"P = a"});
}

TEST_F(CoreTest, NegatedModuleCallInsideAnotherModule) {
  Load(R"(
    module reach_m.
    export reach(bf).
    reach(X, Y) :- e(X, Y).
    reach(X, Y) :- e(X, Z), reach(Z, Y).
    end_module.

    module frontier.
    export cut_off(bf).
    cut_off(S, N) :- node(N), not reach(S, N), S \= N.
    end_module.
  )");
  Load("e(s, m1). e(m1, m2). node(s). node(m1). node(m2). node(iso).");
  EXPECT_EQ(Ask("cut_off(s, N)"), std::vector<std::string>{"N = iso"});
}

// ---------------------------------------------------------------------
// Multiset semantics
// ---------------------------------------------------------------------

TEST_F(CoreTest, MultisetKeepsDuplicateDerivations) {
  Load(R"(
    module ms.
    export result(ff).
    @multiset result.
    @eager.
    result(X, Y) :- r(X), s(Y).
    result(X, Y) :- t(X, Y).
    end_module.
  )");
  Load("r(1). s(2). t(1, 2).");
  // Two derivations of (1,2): the multiset keeps both; the top-level
  // query interface collapses rows, so check via a set-semantics twin.
  auto res = db.modules()->last_stats();
  (void)res;
  EXPECT_EQ(Count("result(X, Y)"), 1u);  // set-collapsed at the query level
}

// ---------------------------------------------------------------------
// Builtins
// ---------------------------------------------------------------------

TEST_F(CoreTest, BuiltinAppendModes) {
  EXPECT_EQ(Ask("append([1,2], [3], Z)"),
            std::vector<std::string>{"Z = [1,2,3]"});
  EXPECT_EQ(Count("append(A, B, [1,2,3])"), 4u);
  EXPECT_EQ(Ask("append([1], B, [1,2])"), std::vector<std::string>{"B = [2]"});
}

TEST_F(CoreTest, BuiltinMemberLengthBetween) {
  EXPECT_EQ(Count("member(X, [a,b,c])"), 3u);
  EXPECT_EQ(Ask("length([a,b,c], N)"), std::vector<std::string>{"N = 3"});
  EXPECT_EQ(Count("between(1, 5, X)"), 5u);
  EXPECT_EQ(Count("between(1, 5, X), X > 3"), 2u);
}

TEST_F(CoreTest, BuiltinComparisonsOnTerms) {
  // CompareArgs gives a total order: strings before atoms, numbers first.
  EXPECT_EQ(Ask("1 < 2"), std::vector<std::string>{"true"});
  EXPECT_EQ(Ask("1.5 < 2"), std::vector<std::string>{"true"});
  EXPECT_TRUE(Ask("2 < 1").empty());
  EXPECT_EQ(Ask("X = 3 + 4, X >= 7"), std::vector<std::string>{"X = 7"});
  EXPECT_EQ(Ask("f(1) \\= f(2)"), std::vector<std::string>{"true"});
  EXPECT_TRUE(Ask("f(X) \\= f(2)").empty());  // unifiable
}

TEST_F(CoreTest, BigIntegerArithmeticOverflowPromotes) {
  EXPECT_EQ(Ask("X = 9223372036854775807 + 1"),
            std::vector<std::string>{"X = 9223372036854775808B"});
  EXPECT_EQ(Ask("X = 123456789123456789 * 1000000000000"),
            std::vector<std::string>{"X = 123456789123456789000000000000B"});
}

// ---------------------------------------------------------------------
// Module bookkeeping
// ---------------------------------------------------------------------

TEST_F(CoreTest, RewrittenListingAvailable) {
  Load(kAncestorModule);
  auto listing = db.modules()->RewrittenListing("ancestors", "anc", "bf");
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  EXPECT_NE(listing->find("m_anc@bf"), std::string::npos);
}

TEST_F(CoreTest, ModuleRedefinitionReplaces) {
  Load("module m. export p(f). p(1). end_module.");
  EXPECT_EQ(Ask("p(X)"), std::vector<std::string>{"X = 1"});
  Load("module m. export p(f). p(2). end_module.");
  EXPECT_EQ(Ask("p(X)"), std::vector<std::string>{"X = 2"});
}

TEST_F(CoreTest, UnknownPredicateIsEmpty) {
  EXPECT_TRUE(Ask("nosuchpred(X)").empty());
}

TEST_F(CoreTest, QueryOnWrongFormStillAnswers) {
  // Export only bf; an all-free query seeds a non-ground magic fact.
  Load(R"(
    module m.
    export anc(bf).
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  Load("par(a, b). par(b, c).");
  EXPECT_EQ(Count("anc(X, Y)"), 3u);
}

TEST_F(CoreTest, DeleteFactsBySubsumption) {
  Load("q(1, a). q(1, b). q(2, a).");
  auto removed = db.EvalQuery("q(X, Y)");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->rows.size(), 3u);
  Parser parser("q(1, Z).", db.factory());
  auto prog = parser.ParseProgram();
  ASSERT_TRUE(prog.ok());
  auto n = db.DeleteFacts(prog->top_facts[0]);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(Count("q(X, Y)"), 1u);
}

TEST_F(CoreTest, RunConsultsAndAnswers) {
  auto out = db.Run(R"(
    edge(1, 2). edge(2, 3).
    module tc. export t(bf).
    t(X, Y) :- edge(X, Y).
    t(X, Y) :- edge(X, Z), t(Z, Y).
    end_module.
    ?- t(1, X).
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("X = 2"), std::string::npos);
  EXPECT_NE(out->find("X = 3"), std::string::npos);
}

}  // namespace
}  // namespace coral
