// Tests for the evaluation observability subsystem (src/obs): exact
// per-rule and per-iteration statistics on a hand-computed transitive
// closure, thread-count invariance of the exact counters, trace-event
// sequencing, and the report renderer.
//
// The fixture is a 5-node chain par(n0..n4) closed under
//
//   rule 0:  tc(X, Y) :- par(X, Y).            (non-recursive, "once")
//   rule 1:  tc(X, Y) :- par(X, Z), tc(Z, Y).  (one delta version)
//
// with @no_rewriting, so the full closure (10 tuples) is computed by
// basic semi-naive iteration. Hand-computed expectations:
//   once pass: rule 0 applied once, 4 solutions, 4 inserts.
//   iter 1: delta = 4 base pairs  -> 3 solutions (distance-2 pairs)
//   iter 2: delta = 3             -> 2 solutions (distance-3 pairs)
//   iter 3: delta = 2             -> 1 solution  (distance-4 pair)
//   iter 4: delta = 1             -> 0 solutions, fixpoint
// so rule 1: applications 4, solutions/derived/inserted 6, and the
// iteration log reads [3, 2, 1, 0].

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include <coral/coral.h>

namespace coral {
namespace {

constexpr const char* kChainFacts =
    "par(n0, n1). par(n1, n2). par(n2, n3). par(n3, n4).\n";

std::string TcModule(const std::string& annotations) {
  return "module tcmod.\n"
         "export tc(ff).\n"
         "@no_rewriting.\n" +
         annotations +
         "tc(X, Y) :- par(X, Y).\n"
         "tc(X, Y) :- par(X, Z), tc(Z, Y).\n"
         "end_module.\n";
}

class StatsTest : public ::testing::Test {
 protected:
  void Load(const std::string& src) {
    auto st = db.Consult(src);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }

  size_t Count(const std::string& query) {
    auto result = db.EvalQuery(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->rows.size() : 0;
  }

  uint64_t Val(const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  }

  /// Asserts the exact hand-computed TC counters on the given profile.
  void CheckTcProfile(const obs::ModuleProfile* p, bool parallel) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->activations(), 1u);
    ASSERT_EQ(p->rule_count(), 2u);

    const obs::RuleStats& r0 = p->rule(0);
    EXPECT_EQ(Val(r0.applications), 1u);
    EXPECT_EQ(Val(r0.solutions), 4u);
    EXPECT_EQ(Val(r0.derived), 4u);
    EXPECT_EQ(Val(r0.inserted), 4u);
    EXPECT_EQ(r0.duplicates(), 0u);

    const obs::RuleStats& r1 = p->rule(1);
    EXPECT_EQ(Val(r1.applications), 4u);
    EXPECT_EQ(Val(r1.solutions), 6u);
    EXPECT_EQ(Val(r1.derived), 6u);
    EXPECT_EQ(Val(r1.inserted), 6u);
    EXPECT_EQ(r1.duplicates(), 0u);

    EXPECT_EQ(p->total_solutions(), 10u);
    EXPECT_EQ(p->total_inserted(), 10u);
    EXPECT_EQ(p->total_duplicates(), 0u);

    // The iteration log covers the fixpoint loop (the once pass is not an
    // iteration): deltas 3, 2, 1 and the empty round that detects the
    // fixpoint.
    EXPECT_EQ(p->total_iterations(), 4u);
    std::vector<obs::IterationStats> iters = p->iterations();
    ASSERT_EQ(iters.size(), 4u);
    const uint64_t want_inserts[] = {3, 2, 1, 0};
    const uint64_t want_solutions[] = {3, 2, 1, 0};
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(iters[i].inserts, want_inserts[i]) << "iteration " << i;
      EXPECT_EQ(iters[i].solutions, want_solutions[i]) << "iteration " << i;
      if (!parallel) {
        EXPECT_TRUE(iters[i].worker_ns.empty()) << "iteration " << i;
      }
    }
    EXPECT_EQ(p->rule_text(0), "tc(X,Y) :- par(X,Y).");
  }

  Database db;
};

TEST_F(StatsTest, TcCountersExactSerial) {
  Load(std::string(kChainFacts) + TcModule("@profile.\n"));
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  CheckTcProfile(db.stats()->Find("tcmod"), /*parallel=*/false);
}

TEST_F(StatsTest, TcCountersExactFourThreads) {
  // The thread-count-invariant counters (applications, solutions,
  // derived, inserted, duplicates, delta sizes) must match the serial
  // run exactly; probes and times are schedule-dependent and are not
  // compared across thread counts.
  Load(std::string(kChainFacts) + TcModule("@profile.\n@parallel(4).\n"));
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  const obs::ModuleProfile* p = db.stats()->Find("tcmod");
  CheckTcProfile(p, /*parallel=*/true);
  // Parallel iterations record per-worker busy time.
  std::vector<obs::IterationStats> iters = p->iterations();
  ASSERT_FALSE(iters.empty());
  EXPECT_EQ(iters[0].worker_ns.size(), 4u);
}

TEST_F(StatsTest, DuplicateDerivationsAreCounted) {
  // par = {(a,b), (b,c), (a,c)}: the once pass inserts all three; the
  // first delta round re-derives (a,c) via (a,b)+(b,c), which the
  // duplicate check rejects.
  Load("par(a, b). par(b, c). par(a, c).\n" + TcModule("@profile.\n"));
  EXPECT_EQ(Count("tc(X, Y)"), 3u);
  const obs::ModuleProfile* p = db.stats()->Find("tcmod");
  ASSERT_NE(p, nullptr);
  const obs::RuleStats& r1 = p->rule(1);
  EXPECT_EQ(Val(r1.derived), 1u);
  EXPECT_EQ(Val(r1.inserted), 0u);
  EXPECT_EQ(r1.duplicates(), 1u);
  EXPECT_EQ(p->total_duplicates(), 1u);
}

TEST_F(StatsTest, ProfilingDisabledCollectsNothing) {
  Load(std::string(kChainFacts) + TcModule(""));
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  EXPECT_TRUE(db.stats()->empty());
  EXPECT_EQ(db.stats()->Find("tcmod"), nullptr);
}

TEST_F(StatsTest, GlobalSwitchProfilesUnannotatedModules) {
  Load(std::string(kChainFacts) + TcModule(""));
  db.set_profiling(true);
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  CheckTcProfile(db.stats()->Find("tcmod"), /*parallel=*/false);
}

TEST_F(StatsTest, CountsAggregateAcrossActivations) {
  // A non-save module is re-evaluated per query; the registry keys by
  // module name, so a second activation doubles every exact counter.
  Load(std::string(kChainFacts) + TcModule("@profile.\n"));
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  const obs::ModuleProfile* p = db.stats()->Find("tcmod");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->activations(), 2u);
  EXPECT_EQ(Val(p->rule(0).applications), 2u);
  EXPECT_EQ(Val(p->rule(1).applications), 8u);
  EXPECT_EQ(p->total_inserted(), 20u);
  EXPECT_EQ(p->total_iterations(), 8u);
}

TEST_F(StatsTest, ClearStatsDropsEverything) {
  Load(std::string(kChainFacts) + TcModule("@profile.\n"));
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  EXPECT_FALSE(db.stats()->empty());
  db.ClearStats();
  EXPECT_TRUE(db.stats()->empty());
  // Profiling stays on: the next activation re-registers.
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  const obs::ModuleProfile* p = db.stats()->Find("tcmod");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->activations(), 1u);
}

TEST_F(StatsTest, TraceEventSequenceSerial) {
  Load(std::string(kChainFacts) + TcModule(""));
  obs::CollectingTraceSink sink;
  db.set_trace_sink(&sink);
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  db.set_trace_sink(nullptr);

  const std::vector<obs::TraceEvent>& ev = sink.events();
  ASSERT_FALSE(ev.empty());
  EXPECT_EQ(ev.front().kind, obs::TraceKind::kModuleCall);
  EXPECT_EQ(ev.front().module, "tcmod");

  size_t begins = 0, ends = 0, fires = 0, inserts = 0, dones = 0;
  for (const obs::TraceEvent& e : ev) {
    switch (e.kind) {
      case obs::TraceKind::kIterBegin: ++begins; break;
      case obs::TraceKind::kIterEnd: ++ends; break;
      case obs::TraceKind::kRuleFire: ++fires; break;
      case obs::TraceKind::kInsert: ++inserts; break;
      case obs::TraceKind::kModuleDone: ++dones; break;
      default: break;
    }
  }
  EXPECT_EQ(begins, 4u);
  EXPECT_EQ(ends, 4u);
  // One rule-fire per delta-version application inside the fixpoint loop
  // (the once pass also fires rule 0 once).
  EXPECT_EQ(fires, 5u);
  EXPECT_EQ(inserts, 10u);
  EXPECT_EQ(dones, 1u);
}

TEST_F(StatsTest, JsonlSinkEmitsOneObjectPerEvent) {
  Load(std::string(kChainFacts) + TcModule(""));
  std::ostringstream out;
  obs::JsonlTraceSink sink(&out);
  db.set_trace_sink(&sink);
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  db.set_trace_sink(nullptr);

  std::istringstream in(out.str());
  std::string line;
  size_t n = 0, inserts = 0;
  while (std::getline(in, line)) {
    auto ev = obs::TraceEvent::FromJson(line);
    ASSERT_TRUE(ev.ok()) << line << ": " << ev.status().ToString();
    if (ev->kind == obs::TraceKind::kInsert) ++inserts;
    ++n;
  }
  EXPECT_GE(n, 10u);
  EXPECT_EQ(inserts, 10u);
}

TEST_F(StatsTest, ReportRendersRulesAndIterations) {
  Load(std::string(kChainFacts) + TcModule("@profile.\n"));
  EXPECT_EQ(Count("tc(X, Y)"), 10u);
  std::string report = db.ProfileReport();
  EXPECT_NE(report.find("tcmod"), std::string::npos) << report;
  EXPECT_NE(report.find("tc(X,Y) :- par(X,Z), tc(Z,Y)."), std::string::npos)
      << report;
  EXPECT_NE(report.find("10 tuple(s) inserted"), std::string::npos)
      << report;
}

TEST_F(StatsTest, EmptyReportExplainsHowToEnable) {
  std::string report = db.ProfileReport();
  EXPECT_NE(report.find("@profile"), std::string::npos) << report;
}

}  // namespace
}  // namespace coral
