// Unit tests for the relation layer: subsidiary-relation marks, hash and
// list relations, duplicate/subsumption checks, argument- and pattern-form
// indices, aggregate selections (paper §3.2, §3.3, §5.5).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/data/term_factory.h"
#include "src/data/unify.h"
#include "src/rel/hash_relation.h"
#include "src/rel/list_relation.h"

namespace coral {
namespace {

class RelTest : public ::testing::Test {
 protected:
  const Tuple* T(std::initializer_list<const Arg*> args) {
    std::vector<const Arg*> v(args);
    return f.MakeTuple(v);
  }
  const Arg* I(int64_t v) { return f.MakeInt(v); }
  const Arg* A(const char* s) { return f.MakeAtom(s); }

  static std::vector<const Tuple*> Drain(TupleIterator* it) {
    std::vector<const Tuple*> out;
    while (const Tuple* t = it->Next()) out.push_back(t);
    return out;
  }

  TermFactory f;
};

TEST_F(RelTest, InsertScanAndDuplicates) {
  HashRelation r("edge", 2);
  EXPECT_TRUE(r.Insert(T({I(1), I(2)})));
  EXPECT_TRUE(r.Insert(T({I(2), I(3)})));
  EXPECT_FALSE(r.Insert(T({I(1), I(2)})));  // duplicate
  EXPECT_EQ(r.size(), 2u);
  auto it = r.Scan();
  EXPECT_EQ(Drain(it.get()).size(), 2u);
}

TEST_F(RelTest, MultisetAllowsDuplicates) {
  HashRelation r("edge", 2);
  r.set_multiset(true);
  EXPECT_TRUE(r.Insert(T({I(1), I(2)})));
  EXPECT_TRUE(r.Insert(T({I(1), I(2)})));
  EXPECT_EQ(r.size(), 2u);
  auto it = r.Scan();
  EXPECT_EQ(Drain(it.get()).size(), 2u);
  // Delete removes all occurrences of the fact.
  EXPECT_TRUE(r.Delete(T({I(1), I(2)})));
  EXPECT_EQ(r.size(), 0u);
}

TEST_F(RelTest, SubsumptionRejectsSpecializations) {
  HashRelation r("p", 2);
  // Non-ground fact p(X, 7) subsumes later ground p(3, 7).
  EXPECT_TRUE(r.Insert(T({f.CanonicalVar(0), I(7)})));
  EXPECT_FALSE(r.Insert(T({I(3), I(7)})));
  EXPECT_TRUE(r.Insert(T({I(3), I(8)})));
  EXPECT_EQ(r.size(), 2u);
  // Variant of the stored non-ground fact is also a duplicate.
  EXPECT_FALSE(r.Insert(T({f.CanonicalVar(0), I(7)})));
}

TEST_F(RelTest, DeleteAndTombstones) {
  HashRelation r("p", 1);
  const Tuple* t1 = T({I(1)});
  const Tuple* t2 = T({I(2)});
  ASSERT_TRUE(r.Insert(t1));
  ASSERT_TRUE(r.Insert(t2));
  EXPECT_TRUE(r.Delete(t1));
  EXPECT_FALSE(r.Delete(t1));  // already gone
  EXPECT_EQ(r.size(), 1u);
  auto got = Drain(r.Scan().get());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], t2);
  // Deletion mid-scan is honored by open iterators.
  ASSERT_TRUE(r.Insert(t1));
  auto it = r.Scan();
  EXPECT_NE(it->Next(), nullptr);
  r.Delete(t2);
  // Remaining yields skip t2 wherever it would appear.
  for (const Tuple* t = it->Next(); t != nullptr; t = it->Next()) {
    EXPECT_NE(t, t2);
  }
}

TEST_F(RelTest, MarksPartitionInsertionOrder) {
  HashRelation r("p", 1);
  r.Insert(T({I(1)}));
  Mark m1 = r.Snapshot();
  r.Insert(T({I(2)}));
  r.Insert(T({I(3)}));
  Mark m2 = r.Snapshot();
  r.Insert(T({I(4)}));

  EXPECT_EQ(Drain(r.ScanRange(0, m1).get()).size(), 1u);
  EXPECT_EQ(Drain(r.ScanRange(m1, m2).get()).size(), 2u);
  EXPECT_EQ(Drain(r.ScanRange(m2, kMaxMark).get()).size(), 1u);
  EXPECT_EQ(Drain(r.Scan().get()).size(), 4u);
}

TEST_F(RelTest, SnapshotIdempotentWhenNoInserts) {
  HashRelation r("p", 1);
  r.Insert(T({I(1)}));
  Mark m1 = r.Snapshot();
  Mark m2 = r.Snapshot();  // nothing inserted in between
  EXPECT_EQ(m1, m2);
  EXPECT_TRUE(Drain(r.ScanRange(m1, m2).get()).empty());
}

TEST_F(RelTest, ScanSeesConcurrentAppends) {
  HashRelation r("p", 1);
  r.Insert(T({I(1)}));
  auto it = r.Scan();
  EXPECT_NE(it->Next(), nullptr);
  r.Insert(T({I(2)}));  // appended to the open subsidiary mid-scan
  EXPECT_NE(it->Next(), nullptr);
  EXPECT_EQ(it->Next(), nullptr);
}

TEST_F(RelTest, ArgumentIndexServesBoundLookups) {
  HashRelation r("edge", 2);
  r.AddArgumentIndex({0});
  for (int i = 0; i < 100; ++i) r.Insert(T({I(i % 10), I(i)}));
  // Lookup edge(3, ?): pattern (3, X).
  BindEnv env(1);
  TermRef pattern[] = {{I(3), nullptr}, {f.MakeVariable(0, "X"), &env}};
  auto got = Drain(r.Select(pattern).get());
  EXPECT_EQ(got.size(), 10u);
  for (const Tuple* t : got) EXPECT_EQ(t->arg(0), I(3));
}

TEST_F(RelTest, ArgumentIndexVarBucketIsAlwaysReturned) {
  HashRelation r("p", 2);
  r.AddArgumentIndex({0});
  r.Insert(T({I(1), I(10)}));
  r.Insert(T({f.CanonicalVar(0), I(20)}));  // var in key column
  BindEnv env(1);
  TermRef pattern[] = {{I(1), nullptr}, {f.MakeVariable(0, "X"), &env}};
  auto got = Drain(r.Select(pattern).get());
  // Superset: the exact-key tuple plus the var-bucket tuple.
  EXPECT_EQ(got.size(), 2u);
}

TEST_F(RelTest, ArgumentIndexUnboundKeyFallsBackToScan) {
  HashRelation r("p", 2);
  r.AddArgumentIndex({0});
  for (int i = 0; i < 5; ++i) r.Insert(T({I(i), I(i)}));
  BindEnv env(2);
  TermRef pattern[] = {{f.MakeVariable(0, "X"), &env},
                       {f.MakeVariable(1, "Y"), &env}};
  EXPECT_EQ(Drain(r.Select(pattern).get()).size(), 5u);
}

TEST_F(RelTest, ArgumentIndexAddedLateIsBackfilled) {
  HashRelation r("p", 2);
  for (int i = 0; i < 50; ++i) r.Insert(T({I(i % 5), I(i)}));
  r.AddArgumentIndex({0});
  BindEnv env(1);
  TermRef pattern[] = {{I(2), nullptr}, {f.MakeVariable(0, "X"), &env}};
  EXPECT_EQ(Drain(r.Select(pattern).get()).size(), 10u);
}

TEST_F(RelTest, IndexOnBoundComplexTermResolvesBindings) {
  HashRelation r("p", 1);
  r.AddArgumentIndex({0});
  const Arg* fa[] = {I(1), I(2)};
  const Arg* stored = f.MakeFunctor("f", fa);
  r.Insert(T({stored}));
  r.Insert(T({A("other")}));
  // Query with f(X, 2) where X is bound to 1: index key must hash equal to
  // the stored ground term's hash.
  BindEnv env(1);
  const Variable* x = f.MakeVariable(0, "X");
  Trail tr;
  BindVar(x, &env, I(1), nullptr, &tr);
  const Arg* qa[] = {x, I(2)};
  const Arg* query = f.MakeFunctor("f", qa);
  TermRef pattern[] = {{query, &env}};
  auto got = Drain(r.Select(pattern).get());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->arg(0), stored);
}

TEST_F(RelTest, IndexRespectsMarkRanges) {
  HashRelation r("p", 2);
  r.AddArgumentIndex({0});
  r.Insert(T({I(1), I(10)}));
  Mark m = r.Snapshot();
  r.Insert(T({I(1), I(20)}));
  BindEnv env(1);
  TermRef pattern[] = {{I(1), nullptr}, {f.MakeVariable(0, "X"), &env}};
  EXPECT_EQ(Drain(r.Select(pattern, 0, m).get()).size(), 1u);
  EXPECT_EQ(Drain(r.Select(pattern, m, kMaxMark).get()).size(), 1u);
  EXPECT_EQ(Drain(r.Select(pattern, 0, kMaxMark).get()).size(), 2u);
}

TEST_F(RelTest, IndexLookupsStayCorrectAcrossManyMarks) {
  // Regression: postings are per-bucket sorted by subsidiary; range
  // lookups must stay exact (and cheap) when hundreds of mark intervals
  // exist — the access pattern of a long semi-naive evaluation.
  HashRelation r("p", 2);
  r.AddArgumentIndex({0});
  std::vector<Mark> marks;
  for (int round = 0; round < 200; ++round) {
    marks.push_back(r.Snapshot());
    r.Insert(T({I(round % 5), I(round)}));
  }
  Mark end = r.Snapshot();
  BindEnv env(1);
  TermRef pattern[] = {{I(3), nullptr}, {f.MakeVariable(0, "X"), &env}};
  // Full range: key 3 occurs for round % 5 == 3 -> 40 tuples.
  EXPECT_EQ(Drain(r.Select(pattern, 0, end).get()).size(), 40u);
  // A middle window of 50 rounds: exactly 10 hits.
  EXPECT_EQ(Drain(r.Select(pattern, marks[100], marks[150]).get()).size(),
            10u);
  // Empty window.
  EXPECT_TRUE(Drain(r.Select(pattern, marks[70], marks[70]).get()).empty());
  // Single-round window containing the key.
  EXPECT_EQ(Drain(r.Select(pattern, marks[13], marks[14]).get()).size(), 1u);
}

// ProbeArgs is the bytecode VM's direct lookup (PROBE_INDEX). Its
// contract mirrors Select's: candidate superset, tombstones filtered,
// false when no attached argument index can serve — in which case the VM
// degrades the probe to a window scan (docs/VM.md).

TEST_F(RelTest, ProbeArgsUsesMatchingIndex) {
  HashRelation r("edge", 2);
  r.AddArgumentIndex({0});
  for (int i = 0; i < 100; ++i) r.Insert(T({I(i % 10), I(i)}));
  std::vector<uint32_t> cols = {0};
  std::vector<const Arg*> key = {I(3)};
  std::vector<const Tuple*> out;
  ASSERT_TRUE(r.ProbeArgs(cols, key, 0, kMaxMark, &out));
  EXPECT_EQ(out.size(), 10u);
  for (const Tuple* t : out) EXPECT_EQ(t->arg(0), I(3));
}

TEST_F(RelTest, ProbeArgsReturnsFalseWithoutIndex) {
  // No argument index attached: the probe cannot be served and the
  // caller must scan — this is the PROBE_INDEX -> SCAN_FULL degrade.
  HashRelation r("edge", 2);
  for (int i = 0; i < 10; ++i) r.Insert(T({I(i), I(i)}));
  std::vector<uint32_t> cols = {0};
  std::vector<const Arg*> key = {I(3)};
  std::vector<const Tuple*> out;
  EXPECT_FALSE(r.ProbeArgs(cols, key, 0, kMaxMark, &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(RelTest, ProbeArgsServesSubsetIndex) {
  // Index on {0}, probe bound on {0, 1}: the index columns are a subset
  // of the probe's, so it serves; candidates are the col-0 superset and
  // the caller's per-column checks filter col 1.
  HashRelation r("p", 2);
  r.AddArgumentIndex({0});
  r.Insert(T({I(1), I(10)}));
  r.Insert(T({I(1), I(20)}));
  r.Insert(T({I(2), I(10)}));
  std::vector<uint32_t> cols = {0, 1};
  std::vector<const Arg*> key = {I(1), I(10)};
  std::vector<const Tuple*> out;
  ASSERT_TRUE(r.ProbeArgs(cols, key, 0, kMaxMark, &out));
  EXPECT_EQ(out.size(), 2u);  // both key-1 tuples; (1,20) filtered later
  for (const Tuple* t : out) EXPECT_EQ(t->arg(0), I(1));
}

TEST_F(RelTest, ProbeArgsRefusesWiderIndex) {
  // Only a two-column index exists but the probe binds one column: the
  // index cannot be keyed, so ProbeArgs refuses and the VM scans.
  HashRelation r("p", 2);
  r.AddArgumentIndex({0, 1});
  r.Insert(T({I(1), I(10)}));
  std::vector<uint32_t> cols = {0};
  std::vector<const Arg*> key = {I(1)};
  std::vector<const Tuple*> out;
  EXPECT_FALSE(r.ProbeArgs(cols, key, 0, kMaxMark, &out));
}

TEST_F(RelTest, ProbeArgsRespectsWindowAndTombstones) {
  HashRelation r("p", 2);
  r.AddArgumentIndex({0});
  const Tuple* t1 = T({I(1), I(10)});
  r.Insert(t1);
  Mark m = r.Snapshot();
  r.Insert(T({I(1), I(20)}));
  std::vector<uint32_t> cols = {0};
  std::vector<const Arg*> key = {I(1)};
  std::vector<const Tuple*> out;
  ASSERT_TRUE(r.ProbeArgs(cols, key, 0, m, &out));
  EXPECT_EQ(out.size(), 1u);  // old window: only t1
  out.clear();
  ASSERT_TRUE(r.ProbeArgs(cols, key, m, kMaxMark, &out));
  EXPECT_EQ(out.size(), 1u);  // delta window: only the new tuple
  out.clear();
  ASSERT_TRUE(r.Delete(t1));
  ASSERT_TRUE(r.ProbeArgs(cols, key, 0, kMaxMark, &out));
  EXPECT_EQ(out.size(), 1u);  // tombstoned t1 is filtered
  EXPECT_NE(out[0], t1);
}

TEST_F(RelTest, ProbeArgsIncludesVarBucket) {
  // A stored tuple with a variable in the key column matches any probe
  // key (subsumption); ProbeArgs must return it in the superset.
  HashRelation r("p", 2);
  r.AddArgumentIndex({0});
  r.Insert(T({I(1), I(10)}));
  r.Insert(T({f.CanonicalVar(0), I(20)}));
  std::vector<uint32_t> cols = {0};
  std::vector<const Arg*> key = {I(1)};
  std::vector<const Tuple*> out;
  ASSERT_TRUE(r.ProbeArgs(cols, key, 0, kMaxMark, &out));
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(RelTest, PatternIndexDrillsIntoFunctors) {
  // The paper's example: @make_index emp(Name, addr(Street, City))
  //                                  (Name, City).
  HashRelation r("emp", 2);
  // Pattern: emp(_0, addr(_1, _2)), keys slots {0, 2}.
  const Arg* addr_args[] = {f.CanonicalVar(1), f.CanonicalVar(2)};
  std::vector<const Arg*> pat = {f.CanonicalVar(0),
                                 f.MakeFunctor("addr", addr_args)};
  r.AddPatternIndex(pat, 3, {0, 2});

  auto emp = [&](const char* name, const char* street, const char* city) {
    const Arg* aa[] = {A(street), A(city)};
    return T({A(name), f.MakeFunctor("addr", aa)});
  };
  r.Insert(emp("john", "main", "madison"));
  r.Insert(emp("john", "pine", "madison"));
  r.Insert(emp("john", "elm", "seattle"));
  r.Insert(emp("mary", "main", "madison"));
  for (int i = 0; i < 50; ++i) {
    r.Insert(emp(("e" + std::to_string(i)).c_str(), "x", "nowhere"));
  }

  // Query: emp(john, addr(S, madison)) — street unknown.
  BindEnv env(1);
  const Arg* qaddr_args[] = {f.MakeVariable(0, "S"), A("madison")};
  TermRef pattern[] = {{A("john"), nullptr},
                       {f.MakeFunctor("addr", qaddr_args), &env}};
  auto got = Drain(r.Select(pattern).get());
  EXPECT_EQ(got.size(), 2u);
}

TEST_F(RelTest, PatternIndexNonconformingQueryFallsBack) {
  HashRelation r("emp", 2);
  std::vector<const Arg*> pat = {f.CanonicalVar(0), f.CanonicalVar(1)};
  r.AddPatternIndex(pat, 2, {0});
  r.Insert(T({A("john"), A("home")}));
  // Query whose first column is unbound: key undetermined, falls back.
  BindEnv env(2);
  TermRef pattern[] = {{f.MakeVariable(0, "N"), &env},
                       {f.MakeVariable(1, "A"), &env}};
  EXPECT_EQ(Drain(r.Select(pattern).get()).size(), 1u);
}

TEST_F(RelTest, PatternIndexExcludesNonUnifiableTuples) {
  // Tuples that cannot unify with the index pattern are excluded, and
  // queries not unifying with the pattern bypass the index.
  HashRelation r("emp", 2);
  const Arg* addr_args[] = {f.CanonicalVar(1), f.CanonicalVar(2)};
  std::vector<const Arg*> pat = {f.CanonicalVar(0),
                                 f.MakeFunctor("addr", addr_args)};
  r.AddPatternIndex(pat, 3, {0, 2});
  r.Insert(T({A("bob"), A("homeless")}));  // 2nd col not an addr(...)
  // Query emp(bob, homeless) does not unify with the pattern: the index
  // cannot serve it; the fallback scan must still find the tuple.
  TermRef pattern_q[] = {{A("bob"), nullptr}, {A("homeless"), nullptr}};
  EXPECT_EQ(Drain(r.Select(pattern_q).get()).size(), 1u);
}

TEST_F(RelTest, SelectPrefersWidestUsableIndex) {
  HashRelation r("t", 3);
  r.AddArgumentIndex({0});
  r.AddArgumentIndex({0, 1});
  for (int i = 0; i < 100; ++i) r.Insert(T({I(i % 2), I(i % 10), I(i)}));
  BindEnv env(1);
  TermRef pattern[] = {{I(1), nullptr}, {I(3), nullptr},
                       {f.MakeVariable(0, "X"), &env}};
  auto got = Drain(r.Select(pattern).get());
  EXPECT_EQ(got.size(), 10u);  // (1,3,*) occurs for i%10==3, i odd
}

TEST_F(RelTest, ListRelationBasics) {
  ListRelation r("edge", 2);
  EXPECT_TRUE(r.Insert(T({I(1), I(2)})));
  EXPECT_FALSE(r.Insert(T({I(1), I(2)})));
  EXPECT_TRUE(r.Insert(T({I(2), I(3)})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T({I(1), I(2)})));
  EXPECT_FALSE(r.Contains(T({I(9), I(9)})));
  EXPECT_TRUE(r.Delete(T({I(1), I(2)})));
  EXPECT_EQ(r.size(), 1u);
  Mark m = r.Snapshot();
  r.Insert(T({I(7), I(8)}));
  EXPECT_EQ(Drain(r.ScanRange(m, kMaxMark).get()).size(), 1u);
}

TEST_F(RelTest, AggregateSelectionMinPrunesCostlierFacts) {
  // @aggregate_selection p(X,Y,C)(X,Y) min(C): shortest-path pruning.
  HashRelation r("p", 3);
  std::vector<const Arg*> pat = {f.CanonicalVar(0), f.CanonicalVar(1),
                                 f.CanonicalVar(2)};
  std::vector<const Arg*> group = {f.CanonicalVar(0), f.CanonicalVar(1)};
  r.AddAggregateSelection(std::make_unique<AggregateSelection>(
      AggregateSelection::Kind::kMin, pat, 3, group, f.CanonicalVar(2)));

  EXPECT_TRUE(r.Insert(T({A("a"), A("b"), I(10)})));
  // Costlier fact in the same group: rejected.
  EXPECT_FALSE(r.Insert(T({A("a"), A("b"), I(12)})));
  // Cheaper fact: admitted, and the costlier one is deleted.
  EXPECT_TRUE(r.Insert(T({A("a"), A("b"), I(5)})));
  EXPECT_EQ(r.size(), 1u);
  auto got = Drain(r.Scan().get());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->arg(2), I(5));
  // Different group unaffected.
  EXPECT_TRUE(r.Insert(T({A("a"), A("c"), I(100)})));
  EXPECT_EQ(r.size(), 2u);
  // Re-inserting the surviving fact is an exact duplicate: rejected by
  // the duplicate check before aggregate selections are consulted.
  EXPECT_FALSE(r.Insert(T({A("a"), A("b"), I(5)})));
}

TEST_F(RelTest, AggregateSelectionMaxMirrorsMin) {
  HashRelation r("p", 2);
  std::vector<const Arg*> pat = {f.CanonicalVar(0), f.CanonicalVar(1)};
  std::vector<const Arg*> group = {f.CanonicalVar(0)};
  r.AddAggregateSelection(std::make_unique<AggregateSelection>(
      AggregateSelection::Kind::kMax, pat, 2, group, f.CanonicalVar(1)));
  EXPECT_TRUE(r.Insert(T({A("g"), I(1)})));
  EXPECT_TRUE(r.Insert(T({A("g"), I(5)})));
  EXPECT_FALSE(r.Insert(T({A("g"), I(3)})));
  auto got = Drain(r.Scan().get());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->arg(1), I(5));
}

TEST_F(RelTest, AggregateSelectionAnyKeepsOneWitness) {
  // @aggregate_selection p(X,P)(X) any(P): one witness per group.
  HashRelation r("p", 2);
  std::vector<const Arg*> pat = {f.CanonicalVar(0), f.CanonicalVar(1)};
  std::vector<const Arg*> group = {f.CanonicalVar(0)};
  r.AddAggregateSelection(std::make_unique<AggregateSelection>(
      AggregateSelection::Kind::kAny, pat, 2, group, nullptr));
  EXPECT_TRUE(r.Insert(T({A("x"), A("w1")})));
  EXPECT_FALSE(r.Insert(T({A("x"), A("w2")})));
  EXPECT_TRUE(r.Insert(T({A("y"), A("w1")})));
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(RelTest, CombinedMinAndAnySelectionsShortestPathStyle) {
  // The exact combination from the paper's Fig. 3 discussion:
  //   @aggregate_selection path(X,Y,P,C)(X,Y) min(C).
  //   @aggregate_selection path(X,Y,P,C)(X,Y,C) any(P).
  HashRelation r("path", 4);
  std::vector<const Arg*> pat = {f.CanonicalVar(0), f.CanonicalVar(1),
                                 f.CanonicalVar(2), f.CanonicalVar(3)};
  r.AddAggregateSelection(std::make_unique<AggregateSelection>(
      AggregateSelection::Kind::kMin, pat,
      4, std::vector<const Arg*>{f.CanonicalVar(0), f.CanonicalVar(1)},
      f.CanonicalVar(3)));
  r.AddAggregateSelection(std::make_unique<AggregateSelection>(
      AggregateSelection::Kind::kAny, pat, 4,
      std::vector<const Arg*>{f.CanonicalVar(0), f.CanonicalVar(1),
                              f.CanonicalVar(3)},
      nullptr));

  EXPECT_TRUE(r.Insert(T({A("a"), A("b"), A("p1"), I(4)})));
  // Same cost, different witness: pruned by any(P).
  EXPECT_FALSE(r.Insert(T({A("a"), A("b"), A("p2"), I(4)})));
  // Cheaper path replaces.
  EXPECT_TRUE(r.Insert(T({A("a"), A("b"), A("p3"), I(2)})));
  EXPECT_EQ(r.size(), 1u);
  auto got = Drain(r.Scan().get());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->arg(3), I(2));
}

TEST_F(RelTest, AggregateSelectionKeepsIndexConsistent) {
  HashRelation r("p", 2);
  r.AddArgumentIndex({0});
  std::vector<const Arg*> pat = {f.CanonicalVar(0), f.CanonicalVar(1)};
  r.AddAggregateSelection(std::make_unique<AggregateSelection>(
      AggregateSelection::Kind::kMin, pat, 2,
      std::vector<const Arg*>{f.CanonicalVar(0)}, f.CanonicalVar(1)));
  r.Insert(T({A("k"), I(9)}));
  r.Insert(T({A("k"), I(4)}));  // deletes the 9 tuple
  BindEnv env(1);
  TermRef pattern[] = {{A("k"), nullptr}, {f.MakeVariable(0, "C"), &env}};
  auto got = Drain(r.Select(pattern).get());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->arg(1), I(4));
}

// ---------------------------------------------------------------------
// Tombstone / mark edge cases exercised by incremental maintenance
// (docs/MAINTENANCE.md): exact size accounting across delete/reinsert
// cycles, and deletion visibility in mark-ranged scans.
// ---------------------------------------------------------------------

TEST_F(RelTest, DeleteReinsertCyclesKeepSizeExact) {
  // Regression: live-count drift when a tombstoned tuple is re-inserted
  // and deleted again across subsidiary boundaries.
  HashRelation r("p", 1);
  const Tuple* t = T({I(7)});
  for (int cycle = 0; cycle < 5; ++cycle) {
    EXPECT_TRUE(r.Insert(t)) << "cycle " << cycle;
    EXPECT_EQ(r.size(), 1u) << "cycle " << cycle;
    EXPECT_TRUE(r.Contains(t));
    r.Snapshot();  // force the next occurrence into a new subsidiary
    EXPECT_TRUE(r.Delete(t)) << "cycle " << cycle;
    EXPECT_EQ(r.size(), 0u) << "cycle " << cycle;
    EXPECT_FALSE(r.Contains(t));
    EXPECT_TRUE(Drain(r.Scan().get()).empty()) << "cycle " << cycle;
  }
  // Final state: one more insert, size exact, single yield.
  EXPECT_TRUE(r.Insert(t));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(Drain(r.Scan().get()).size(), 1u);
}

TEST_F(RelTest, MultisetDeleteReinsertKeepsSizeExact) {
  HashRelation r("p", 1);
  r.set_multiset(true);
  const Tuple* t = T({I(7)});
  r.Insert(t);
  r.Insert(t);
  r.Snapshot();
  r.Insert(t);  // three occurrences across two subsidiaries
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Delete(t));  // kills all occurrences
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(Drain(r.Scan().get()).empty());
  r.Insert(t);  // back to exactly one live occurrence
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(Drain(r.Scan().get()).size(), 1u);
}

TEST_F(RelTest, DeletionVisibleToMarkRangedScans) {
  HashRelation r("p", 1);
  const Tuple* t1 = T({I(1)});
  const Tuple* t2 = T({I(2)});
  r.Insert(t1);
  Mark m1 = r.Snapshot();
  r.Insert(t2);
  // Delete t1 (stored below m1): both the full scan and the old window
  // must stop yielding it; the delta window never had it.
  ASSERT_TRUE(r.Delete(t1));
  EXPECT_TRUE(Drain(r.ScanRange(0, m1).get()).empty());
  EXPECT_EQ(Drain(r.ScanRange(m1, kMaxMark).get()),
            (std::vector<const Tuple*>{t2}));
  EXPECT_EQ(Drain(r.Scan().get()), (std::vector<const Tuple*>{t2}));
  // Re-insert: the new occurrence lands at/above the tombstone boundary,
  // so it is visible to the full scan and to a fresh delta window, but
  // the pre-deletion window stays empty.
  Mark m2 = r.Snapshot();
  ASSERT_TRUE(r.Insert(t1));
  EXPECT_TRUE(Drain(r.ScanRange(0, m1).get()).empty());
  EXPECT_EQ(Drain(r.ScanRange(m2, kMaxMark).get()),
            (std::vector<const Tuple*>{t1}));
  EXPECT_EQ(Drain(r.Scan().get()).size(), 2u);
}

TEST_F(RelTest, EmptySubsidiaryAndMarkEdges) {
  HashRelation r("p", 1);
  // Snapshot on a brand-new relation: no empty subsidiary churn.
  Mark m0 = r.Snapshot();
  EXPECT_EQ(m0, r.Snapshot());
  EXPECT_EQ(m0, r.CurrentMark());
  // Degenerate windows are empty, including from == to and inverted.
  EXPECT_TRUE(Drain(r.ScanRange(m0, m0).get()).empty());
  EXPECT_TRUE(Drain(r.ScanRange(kMaxMark, kMaxMark).get()).empty());
  r.Insert(T({I(1)}));
  Mark m1 = r.Snapshot();
  EXPECT_TRUE(Drain(r.ScanRange(m1, m0).get()).empty());
  // A window far beyond the current mark clamps to what exists.
  EXPECT_EQ(Drain(r.ScanRange(0, kMaxMark).get()).size(), 1u);
  EXPECT_TRUE(Drain(r.ScanRange(m1 + 100, kMaxMark).get()).empty());
}

}  // namespace
}  // namespace coral
