// Crash-recovery torture tests for the EXODUS-substitute storage layer.
//
// The core harness arms a fault (usually a simulated crash: all further
// persistence frozen) at EVERY registered failpoint in turn, runs a
// randomized transactional workload against a prepared database, then
// reopens it fault-free and checks the recovery invariants:
//   - every transaction whose Commit() returned OK is fully durable,
//   - every transaction that never attempted Commit is fully undone,
//   - a transaction whose Commit() errored is all-or-nothing,
//   - the relation count, heap scan, and primary index agree,
//   - the catalog round-trips (the relation reopens with correct data).
//
// Alongside the torture loop there are targeted regressions for the WAL
// durability fixes: short/EINTR append retries, append rollback to a
// record boundary, torn-tail and corrupt-record truncation in Recover,
// legacy (pre-CRC struct-dump) log compatibility, parent-directory fsync
// after file creation, and read-only degradation when the log is
// unopenable. Seeds come from CORAL_FAULT_SEED for deterministic reruns.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/data/term_factory.h"
#include "src/obs/storage_metrics.h"
#include "src/storage/fault.h"
#include "src/storage/storage_manager.h"
#include "src/storage/wal.h"
#include "src/util/crc32.h"

namespace coral {
namespace {

// ---- deterministic tuple model -------------------------------------------

// Tuple i is {Int(i), String(Payload(i))}; the payload is a few hundred
// bytes so workloads fill heap pages and split B-tree nodes quickly.
std::string Payload(int v) {
  std::string s(200 + (v % 7) * 37, static_cast<char>('a' + (v % 23)));
  s += "#" + std::to_string(v);
  return s;
}

const Tuple* MakeT(TermFactory* f, int v) {
  const Arg* args[] = {f->MakeInt(v), f->MakeString(Payload(v))};
  return f->MakeTuple(args);
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    obs::StorageMetrics::Instance().Reset();
    dir_ = std::filesystem::temp_directory_path() /
           ("coral_crash_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    const char* env = std::getenv("CORAL_FAULT_SEED");
    seed_ = env != nullptr
                ? static_cast<uint32_t>(std::strtoul(env, nullptr, 0))
                : 0xC0121AB5u;
    RecordProperty("fault_seed", std::to_string(seed_));
    rng_.seed(seed_);
  }
  void TearDown() override {
    FaultInjector::Instance().Reset();
    std::filesystem::remove_all(dir_);
  }

  /// Fresh path prefix for one torture run.
  std::string FreshPrefix() {
    return (dir_ / ("run" + std::to_string(run_counter_++))).string();
  }

  // ---- workload + invariant machinery ------------------------------------

  /// Creates the database with 3 committed transactions of 10 tuples each
  /// (values 0..29). Run fault-free.
  void BuildBaseline(const std::string& prefix, std::set<int>* committed) {
    TermFactory f;
    auto sm = StorageManager::Open(prefix, &f);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    auto rel = (*sm)->CreateRelation("t", 2);
    ASSERT_TRUE(rel.ok()) << rel.status().ToString();
    for (int txn = 0; txn < 3; ++txn) {
      ASSERT_TRUE((*sm)->Begin().ok());
      for (int j = 0; j < 10; ++j) {
        int v = txn * 10 + j;
        ASSERT_TRUE((*rel)->Insert(MakeT(&f, v))) << v;
      }
      ASSERT_TRUE((*sm)->Commit().ok());
      for (int j = 0; j < 10; ++j) committed->insert(txn * 10 + j);
    }
    ASSERT_TRUE((*sm)->Close().ok());
  }

  struct WorkloadOutcome {
    std::set<int> committed;            // Commit() returned OK
    std::vector<std::set<int>> maybe;   // Commit() errored: all-or-nothing
    std::set<int> banned;               // never reached Commit: must vanish
    bool open_failed = false;
  };

  /// Runs transactions until the armed fault bites (or 8 txns complete),
  /// mimicking an application that stops at the first storage error. The
  /// StorageManager destructor then plays the dead process.
  WorkloadOutcome RunWorkload(const std::string& prefix) {
    WorkloadOutcome out;
    TermFactory f;
    auto sm_or = StorageManager::Open(prefix, &f);
    if (!sm_or.ok()) {
      out.open_failed = true;
      return out;
    }
    std::unique_ptr<StorageManager>& sm = *sm_or;
    if (sm->read_only()) return out;
    PersistentRelation* rel = sm->FindRelation("t", 2);
    if (rel == nullptr) return out;
    auto& injector = FaultInjector::Instance();
    int next = 1000;
    for (int txn = 0; txn < 8; ++txn) {
      if (injector.crashed() || !sm->io_error().ok()) break;
      if (!sm->Begin().ok()) break;
      std::set<int> tset;
      bool broke = false;
      int count = 5 + static_cast<int>(rng_() % 8);
      for (int j = 0; j < count; ++j) {
        int v = next++;
        rel->Insert(MakeT(&f, v));
        tset.insert(v);
        if (!sm->io_error().ok() || injector.crashed()) {
          broke = true;
          break;
        }
      }
      if (broke) {
        out.banned.insert(tset.begin(), tset.end());
        break;
      }
      Status cst = sm->Commit();
      if (cst.ok()) {
        out.committed.insert(tset.begin(), tset.end());
      } else {
        out.maybe.push_back(tset);
        break;
      }
    }
    return out;
  }

  /// Fault-free reopen + full invariant check.
  void VerifyState(const std::string& prefix, const std::set<int>& committed,
                   const std::vector<std::set<int>>& maybe,
                   const std::set<int>& banned) {
    FaultInjector::Instance().Reset();
    TermFactory f;
    auto sm_or = StorageManager::Open(prefix, &f);
    ASSERT_TRUE(sm_or.ok()) << sm_or.status().ToString();
    std::unique_ptr<StorageManager>& sm = *sm_or;
    ASSERT_FALSE(sm->read_only());
    PersistentRelation* rel = sm->FindRelation("t", 2);
    ASSERT_NE(rel, nullptr);

    std::set<int> seen;
    auto it = rel->Scan();
    const Tuple* t;
    while ((t = it->Next()) != nullptr) {
      ASSERT_EQ(t->arity(), 2u);
      int v = static_cast<int>(ArgCast<IntArg>(t->arg(0))->value());
      EXPECT_EQ(t->arg(1), static_cast<const Arg*>(f.MakeString(Payload(v))))
          << "payload corrupted for " << v;
      EXPECT_TRUE(seen.insert(v).second) << "duplicate tuple " << v;
    }
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();

    // Catalog count vs heap contents.
    EXPECT_EQ(rel->size(), seen.size());
    // Committed durable; never-committed gone.
    for (int v : committed) EXPECT_TRUE(seen.count(v) != 0) << "lost " << v;
    for (int v : banned)
      EXPECT_TRUE(seen.count(v) == 0) << "undead uncommitted " << v;
    // Commit-errored transactions are all-or-nothing, and nothing else
    // may exist.
    std::set<int> allowed = committed;
    for (const std::set<int>& m : maybe) {
      size_t present = 0;
      for (int v : m) present += seen.count(v);
      EXPECT_TRUE(present == 0 || present == m.size())
          << "torn transaction: " << present << "/" << m.size();
      allowed.insert(m.begin(), m.end());
    }
    for (int v : seen) EXPECT_TRUE(allowed.count(v) != 0) << "phantom " << v;
    // Primary-index consistency: every stored tuple findable through it.
    for (int v : seen) EXPECT_TRUE(rel->Contains(MakeT(&f, v))) << v;
    EXPECT_FALSE(rel->Contains(MakeT(&f, 999999)));
    ASSERT_TRUE(sm->Close().ok());
  }

  // ---- torture scenarios --------------------------------------------------

  /// Crash (or torn-write) at `point` somewhere inside a live workload.
  void TortureWorkload(const std::string& point, FaultKind kind,
                       uint64_t trigger, size_t partial = 7) {
    SCOPED_TRACE("workload point=" + point + " trigger=" +
                 std::to_string(trigger) + " kind=" +
                 std::to_string(static_cast<int>(kind)));
    std::string prefix = FreshPrefix();
    std::set<int> committed;
    ASSERT_NO_FATAL_FAILURE(BuildBaseline(prefix, &committed));
    auto& injector = FaultInjector::Instance();
    injector.Reset();
    FaultSpec spec;
    spec.kind = kind;
    spec.trigger_hit = trigger;
    spec.partial_bytes = partial;
    injector.Arm(point, spec);
    WorkloadOutcome out = RunWorkload(prefix);
    EXPECT_GT(injector.hits(point), 0u) << point << " never reached";
    committed.insert(out.committed.begin(), out.committed.end());
    ASSERT_NO_FATAL_FAILURE(
        VerifyState(prefix, committed, out.maybe, out.banned));
  }

  /// Crash at `point` while the database is being CREATED (the only time
  /// the parent-directory fsync points are reachable).
  void TortureCreation(const std::string& point) {
    SCOPED_TRACE("creation point=" + point);
    std::string prefix = FreshPrefix();
    auto& injector = FaultInjector::Instance();
    injector.Reset();
    injector.Arm(point, FaultSpec{FaultKind::kCrash, 1});
    {
      TermFactory f;
      auto sm_or = StorageManager::Open(prefix, &f);
      // Either the open fails outright or it degrades; both acceptable.
      EXPECT_GT(injector.hits(point), 0u) << point << " never reached";
    }
    injector.Reset();
    // The half-created database must open cleanly and be usable.
    std::set<int> committed;
    {
      TermFactory f;
      auto sm_or = StorageManager::Open(prefix, &f);
      ASSERT_TRUE(sm_or.ok()) << sm_or.status().ToString();
      auto rel = (*sm_or)->CreateRelation("t", 2);
      ASSERT_TRUE(rel.ok()) << rel.status().ToString();
      ASSERT_TRUE((*sm_or)->Begin().ok());
      for (int v = 0; v < 5; ++v) {
        ASSERT_TRUE((*rel)->Insert(MakeT(&f, v)));
        committed.insert(v);
      }
      ASSERT_TRUE((*sm_or)->Commit().ok());
      ASSERT_TRUE((*sm_or)->Close().ok());
    }
    ASSERT_NO_FATAL_FAILURE(VerifyState(prefix, committed, {}, {}));
  }

  /// Crash at `point` while RECOVERY ITSELF runs (the log holds an
  /// uncommitted transaction's images). Recovery must be idempotent: the
  /// next fault-free open finishes the job.
  void TortureRecovery(const std::string& point, uint64_t trigger) {
    SCOPED_TRACE("recovery point=" + point + " trigger=" +
                 std::to_string(trigger));
    std::string prefix = FreshPrefix();
    std::set<int> committed;
    ASSERT_NO_FATAL_FAILURE(BuildBaseline(prefix, &committed));
    auto& injector = FaultInjector::Instance();
    // Leave a crashed, uncommitted transaction behind: freeze at the
    // first data-page write (inside Commit's flush).
    injector.Reset();
    injector.Arm(fp::kDiskWrite, FaultSpec{FaultKind::kCrash, 1});
    WorkloadOutcome out = RunWorkload(prefix);
    ASSERT_GT(injector.hits(fp::kDiskWrite), 0u);
    // Now crash recovery itself.
    injector.Reset();
    injector.Arm(point, FaultSpec{FaultKind::kCrash, trigger});
    {
      TermFactory f;
      auto sm_or = StorageManager::Open(prefix, &f);
      // Open fails or degrades to read-only; never trusts dirty pages.
      if (sm_or.ok()) {
        EXPECT_TRUE((*sm_or)->read_only());
      }
      EXPECT_GT(injector.hits(point), 0u) << point << " never reached";
    }
    committed.insert(out.committed.begin(), out.committed.end());
    ASSERT_NO_FATAL_FAILURE(
        VerifyState(prefix, committed, out.maybe, out.banned));
  }

  /// Crash at the append-rollback ftruncate: the WAL handle must poison
  /// itself (possible torn tail) and the database must survive reopen.
  void TortureAppendRollback() {
    SCOPED_TRACE("append-rollback");
    std::string prefix = FreshPrefix();
    std::set<int> committed;
    ASSERT_NO_FATAL_FAILURE(BuildBaseline(prefix, &committed));
    auto& injector = FaultInjector::Instance();
    injector.Reset();
    FaultSpec fail_append;
    fail_append.kind = FaultKind::kError;
    fail_append.err = EIO;
    injector.Arm(fp::kWalAppendWrite, fail_append);
    injector.Arm(fp::kWalAppendTruncate, FaultSpec{FaultKind::kCrash, 1});
    WorkloadOutcome out = RunWorkload(prefix);
    EXPECT_GT(injector.hits(fp::kWalAppendTruncate), 0u);
    EXPECT_TRUE(obs::StorageMetrics::Instance().SawEvent("wal.poisoned"));
    committed.insert(out.committed.begin(), out.committed.end());
    ASSERT_NO_FATAL_FAILURE(
        VerifyState(prefix, committed, out.maybe, out.banned));
  }

  std::filesystem::path dir_;
  uint32_t seed_ = 0;
  std::mt19937 rng_;
  int run_counter_ = 0;
};

// ---- the torture loop: a crash at EVERY registered failpoint -------------

TEST_F(CrashRecoveryTest, CrashAtEveryFailpoint) {
  enum class Scenario { kCreation, kWorkload, kRecovery, kAppendRollback };
  const std::map<std::string, Scenario> plan = {
      {fp::kDiskOpen, Scenario::kWorkload},
      {fp::kDiskDirSync, Scenario::kCreation},
      {fp::kDiskAllocWrite, Scenario::kWorkload},
      {fp::kDiskWrite, Scenario::kWorkload},
      {fp::kDiskRead, Scenario::kWorkload},
      {fp::kDiskSync, Scenario::kWorkload},
      {fp::kWalOpen, Scenario::kWorkload},
      {fp::kWalDirSync, Scenario::kCreation},
      {fp::kWalAppendWrite, Scenario::kWorkload},
      {fp::kWalAppendTruncate, Scenario::kAppendRollback},
      {fp::kWalImageSync, Scenario::kWorkload},
      {fp::kWalCommitSync, Scenario::kWorkload},
      {fp::kWalRecoverOpen, Scenario::kRecovery},
      {fp::kWalRecoverRead, Scenario::kRecovery},
      {fp::kWalRecoverWrite, Scenario::kRecovery},
      {fp::kWalRecoverTruncate, Scenario::kRecovery},
  };
  // A failpoint added without a torture scenario is a test bug.
  for (const char* point : AllFaultPoints()) {
    ASSERT_TRUE(plan.count(point) != 0)
        << "failpoint " << point << " has no torture scenario";
  }
  for (const auto& [point, scenario] : plan) {
    switch (scenario) {
      case Scenario::kCreation:
        TortureCreation(point);
        break;
      case Scenario::kWorkload:
        for (uint64_t trigger : {1u, 2u, 5u}) {
          TortureWorkload(point, FaultKind::kCrash, trigger);
        }
        break;
      case Scenario::kRecovery:
        TortureRecovery(point, 1);
        break;
      case Scenario::kAppendRollback:
        TortureAppendRollback();
        break;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Partial-restore crash: the second recovery pwrite, then re-recover.
  TortureRecovery(fp::kWalRecoverWrite, 2);
}

TEST_F(CrashRecoveryTest, TornWriteTorture) {
  // A real partial transfer lands, THEN persistence freezes: the classic
  // power-cut torn write. Recovery must truncate torn WAL tails and undo
  // torn data pages via their logged before-images.
  for (const char* point :
       {fp::kWalAppendWrite, fp::kDiskWrite, fp::kDiskAllocWrite}) {
    for (uint64_t trigger : {1u, 3u}) {
      TortureWorkload(point, FaultKind::kTornWrite, trigger, /*partial=*/7);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---- WAL append hardening regressions ------------------------------------

TEST_F(CrashRecoveryTest, AppendSurvivesShortWritesAndEintr) {
  // Pre-fix AppendRecord issued one ::write and treated a short count or
  // EINTR as a hard error; the hardened loop must finish the record.
  std::string prefix = FreshPrefix();
  std::set<int> committed;
  ASSERT_NO_FATAL_FAILURE(BuildBaseline(prefix, &committed));
  auto& injector = FaultInjector::Instance();
  auto& metrics = obs::StorageMetrics::Instance();
  injector.Reset();
  metrics.Reset();

  FaultSpec short_write;
  short_write.kind = FaultKind::kShortWrite;
  short_write.times = 3;
  short_write.partial_bytes = 5;
  injector.Arm(fp::kWalAppendWrite, short_write);
  {
    TermFactory f;
    auto sm = StorageManager::Open(prefix, &f);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    PersistentRelation* rel = (*sm)->FindRelation("t", 2);
    ASSERT_NE(rel, nullptr);
    ASSERT_TRUE((*sm)->Begin().ok());
    ASSERT_TRUE(rel->Insert(MakeT(&f, 100)));
    ASSERT_TRUE((*sm)->io_error().ok()) << (*sm)->io_error().ToString();
    ASSERT_TRUE((*sm)->Commit().ok());
    committed.insert(100);

    // EINTR storms are retried transparently, not surfaced.
    injector.Reset();
    FaultSpec eintr;
    eintr.kind = FaultKind::kError;
    eintr.err = EINTR;
    eintr.times = 4;
    injector.Arm(fp::kWalAppendWrite, eintr);
    ASSERT_TRUE((*sm)->Begin().ok());
    ASSERT_TRUE(rel->Insert(MakeT(&f, 101)));
    ASSERT_TRUE((*sm)->Commit().ok());
    committed.insert(101);
    ASSERT_TRUE((*sm)->Close().ok());
  }
  EXPECT_GT(metrics.short_transfers.load(), 0u);
  EXPECT_GE(metrics.eintr_retries.load(), 4u);
  // The log is well-formed: every record parses, no torn tail.
  auto ins = WriteAheadLog::Inspect(prefix + ".wal");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_FALSE(ins->old_format);
  EXPECT_TRUE(ins->tail_error.empty()) << ins->tail_error;
  EXPECT_EQ(ins->valid_bytes, ins->file_bytes);
  injector.Reset();
  ASSERT_NO_FATAL_FAILURE(VerifyState(prefix, committed, {}, {}));
}

TEST_F(CrashRecoveryTest, FailedAppendRollsBackToRecordBoundary) {
  // A genuinely failed append must leave the log at the previous record
  // boundary, not misaligned — the next append starts clean.
  std::string prefix = FreshPrefix();
  std::set<int> committed;
  ASSERT_NO_FATAL_FAILURE(BuildBaseline(prefix, &committed));
  auto& injector = FaultInjector::Instance();
  auto& metrics = obs::StorageMetrics::Instance();
  injector.Reset();
  metrics.Reset();
  {
    TermFactory f;
    auto sm = StorageManager::Open(prefix, &f);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    PersistentRelation* rel = (*sm)->FindRelation("t", 2);
    ASSERT_NE(rel, nullptr);
    FaultSpec fail;
    fail.kind = FaultKind::kError;
    fail.err = EIO;
    injector.Arm(fp::kWalAppendWrite, fail);
    EXPECT_FALSE((*sm)->Begin().ok());  // Begin's record never landed
    injector.Reset();
    // The log is still aligned: the next transaction works end to end.
    ASSERT_TRUE((*sm)->Begin().ok());
    ASSERT_TRUE(rel->Insert(MakeT(&f, 200)));
    ASSERT_TRUE((*sm)->Commit().ok());
    committed.insert(200);
    ASSERT_TRUE((*sm)->Close().ok());
  }
  EXPECT_GT(metrics.wal_append_truncations.load(), 0u);
  auto ins = WriteAheadLog::Inspect(prefix + ".wal");
  ASSERT_TRUE(ins.ok());
  EXPECT_TRUE(ins->tail_error.empty()) << ins->tail_error;
  ASSERT_NO_FATAL_FAILURE(VerifyState(prefix, committed, {}, {}));
}

TEST_F(CrashRecoveryTest, CommitRefusedAfterLoggingFailure) {
  // Pre-fix, a failed before-image append aborted the whole process
  // (CHECK). Now it latches an error; Commit refuses (undo could not be
  // guaranteed) and a successful Abort clears the latch.
  std::string prefix = FreshPrefix();
  std::set<int> committed;
  ASSERT_NO_FATAL_FAILURE(BuildBaseline(prefix, &committed));
  auto& injector = FaultInjector::Instance();
  injector.Reset();
  TermFactory f;
  auto sm = StorageManager::Open(prefix, &f);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  PersistentRelation* rel = (*sm)->FindRelation("t", 2);
  ASSERT_NE(rel, nullptr);

  ASSERT_TRUE((*sm)->Begin().ok());
  FaultSpec fail;
  fail.kind = FaultKind::kError;
  fail.err = EIO;
  fail.trigger_hit = injector.hits(fp::kWalAppendWrite) + 1;
  injector.Arm(fp::kWalAppendWrite, fail);
  rel->Insert(MakeT(&f, 300));  // first page modification logs the image
  EXPECT_FALSE((*sm)->io_error().ok());
  EXPECT_FALSE((*sm)->Commit().ok());
  ASSERT_TRUE((*sm)->Abort().ok());
  EXPECT_TRUE((*sm)->io_error().ok());  // latch cleared by the undo

  injector.Reset();
  ASSERT_TRUE((*sm)->Begin().ok());
  ASSERT_TRUE(rel->Insert(MakeT(&f, 301)));
  ASSERT_TRUE((*sm)->Commit().ok());
  committed.insert(301);
  ASSERT_TRUE((*sm)->Close().ok());
  sm->reset();
  ASSERT_NO_FATAL_FAILURE(VerifyState(prefix, committed, {}, {}));
}

// ---- on-disk format: torn tails, corruption, legacy logs ----------------

// Builds a v1 record exactly as the WAL writes it.
std::string V1Record(uint32_t type, uint64_t txn, uint32_t page,
                     const char* image) {
  uint32_t payload_len = type == 2 ? kPageSize : 0;
  std::string rec;
  rec.append("CWAL", 4);
  auto put32 = [&rec](uint32_t v) {
    rec.append(reinterpret_cast<const char*>(&v), 4);
  };
  put32(type);
  rec.append(reinterpret_cast<const char*>(&txn), 8);
  put32(page);
  put32(payload_len);
  put32(payload_len != 0 ? Crc32(image, payload_len) : 0);
  put32(Crc32(rec.data(), 28));
  if (payload_len != 0) rec.append(image, payload_len);
  return rec;
}

// Builds a record in the legacy struct-dump format (24-byte padded
// header: type at 0, txn at 8, page at 16).
std::string LegacyRecord(uint32_t type, uint64_t txn, uint32_t page,
                         const char* image) {
  char h[24] = {0};
  std::memcpy(h + 0, &type, 4);
  std::memcpy(h + 8, &txn, 8);
  std::memcpy(h + 16, &page, 4);
  std::string rec(h, sizeof(h));
  if (type == 2) rec.append(image, kPageSize);
  return rec;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

class WalFormatTest : public CrashRecoveryTest {
 protected:
  /// A 2-page database: page0 = 'A'*, page1 = 'B'*.
  void BuildRawDb(const std::string& db_path) {
    DiskManager disk;
    ASSERT_TRUE(disk.Open(db_path).ok());
    ASSERT_TRUE(disk.AllocatePage().ok());
    ASSERT_TRUE(disk.AllocatePage().ok());
    std::vector<char> a(kPageSize, 'A'), b(kPageSize, 'B');
    ASSERT_TRUE(disk.WritePage(0, a.data()).ok());
    ASSERT_TRUE(disk.WritePage(1, b.data()).ok());
    ASSERT_TRUE(disk.Sync().ok());
    ASSERT_TRUE(disk.Close().ok());
  }

  void ExpectPage(DiskManager* disk, PageId id, char fill) {
    std::vector<char> buf(kPageSize);
    ASSERT_TRUE(disk->ReadPage(id, buf.data()).ok());
    EXPECT_EQ(buf[0], fill) << "page " << id;
    EXPECT_EQ(buf[kPageSize - 1], fill) << "page " << id;
  }

  /// Common log prefix: txn1 (image of page0='X') COMMITTED, txn2 (image
  /// of page1='Y') uncommitted. Recovery must leave page0 alone and
  /// restore page1 to 'Y'.
  std::string CommittedPlusUncommitted() {
    std::vector<char> x(kPageSize, 'X'), y(kPageSize, 'Y');
    std::string log;
    log += V1Record(1, 1, 0, nullptr);
    log += V1Record(2, 1, 0, x.data());
    log += V1Record(3, 1, 0, nullptr);
    log += V1Record(1, 2, 0, nullptr);
    log += V1Record(2, 2, 1, y.data());
    return log;
  }

  void RunRecoverAndCheck(const std::string& tail,
                          const char* expected_metric_event) {
    std::string prefix = FreshPrefix();
    std::string db = prefix + ".db", wal = prefix + ".wal";
    ASSERT_NO_FATAL_FAILURE(BuildRawDb(db));
    WriteFile(wal, CommittedPlusUncommitted() + tail);
    obs::StorageMetrics::Instance().Reset();
    DiskManager disk;
    ASSERT_TRUE(disk.Open(db).ok());
    Status st = WriteAheadLog::Recover(wal, &disk);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ExpectPage(&disk, 0, 'A');  // committed txn not undone
    ExpectPage(&disk, 1, 'Y');  // uncommitted txn undone
    ASSERT_TRUE(disk.Close().ok());
    EXPECT_EQ(std::filesystem::file_size(wal), 0u);  // log emptied
    if (expected_metric_event != nullptr) {
      EXPECT_TRUE(
          obs::StorageMetrics::Instance().SawEvent(expected_metric_event))
          << expected_metric_event;
    }
  }
};

TEST_F(WalFormatTest, CleanLogRecovers) {
  RunRecoverAndCheck("", nullptr);
  EXPECT_TRUE(obs::StorageMetrics::Instance().SawEvent("recover.done"));
}

TEST_F(WalFormatTest, TornTailMidHeaderTruncated) {
  std::string torn = V1Record(1, 3, 0, nullptr).substr(0, 10);
  RunRecoverAndCheck(torn, "recover.torn_tail");
  EXPECT_GT(obs::StorageMetrics::Instance().torn_tails_truncated.load(), 0u);
}

TEST_F(WalFormatTest, TornTailMidImageTruncated) {
  std::vector<char> z(kPageSize, 'Z');
  std::string torn = V1Record(2, 2, 0, z.data()).substr(0, 32 + 100);
  RunRecoverAndCheck(torn, "recover.torn_tail");
  EXPECT_GT(obs::StorageMetrics::Instance().torn_tails_truncated.load(), 0u);
}

TEST_F(WalFormatTest, TrailingGarbageTruncated) {
  RunRecoverAndCheck("NOTAWALRECORD_________", "recover.torn_tail");
}

TEST_F(WalFormatTest, CorruptPayloadCrcDropped) {
  std::vector<char> z(kPageSize, 'Z');
  std::string bad = V1Record(2, 2, 0, z.data());
  bad[32 + 1234] ^= 0x40;  // flip one payload byte after the 32B header
  RunRecoverAndCheck(bad, "recover.torn_tail");
  EXPECT_GT(obs::StorageMetrics::Instance().corrupt_records_dropped.load(),
            0u);
}

TEST_F(WalFormatTest, CorruptHeaderCrcDropped) {
  std::string bad = V1Record(1, 9, 0, nullptr);
  bad[9] ^= 0x01;  // damage the txn field; header CRC catches it
  RunRecoverAndCheck(bad, "recover.torn_tail");
}

TEST_F(WalFormatTest, LegacyFormatLogStillRecovers) {
  // Logs written before the CRC-framed format: raw padded structs.
  std::string prefix = FreshPrefix();
  std::string db = prefix + ".db", wal = prefix + ".wal";
  ASSERT_NO_FATAL_FAILURE(BuildRawDb(db));
  std::vector<char> y(kPageSize, 'Y');
  std::string log;
  log += LegacyRecord(1, 1, 0, nullptr);
  log += LegacyRecord(2, 1, 1, y.data());  // uncommitted
  WriteFile(wal, log);
  obs::StorageMetrics::Instance().Reset();
  DiskManager disk;
  ASSERT_TRUE(disk.Open(db).ok());
  ASSERT_TRUE(WriteAheadLog::Recover(wal, &disk).ok());
  ExpectPage(&disk, 0, 'A');
  ExpectPage(&disk, 1, 'Y');
  ASSERT_TRUE(disk.Close().ok());
  EXPECT_GT(obs::StorageMetrics::Instance().old_format_logs_read.load(), 0u);
  EXPECT_TRUE(obs::StorageMetrics::Instance().SawEvent("recover.old_format"));
}

TEST_F(WalFormatTest, InspectReportsRecordTable) {
  std::string prefix = FreshPrefix();
  std::string wal = prefix + ".wal";
  std::string log = CommittedPlusUncommitted();
  std::string torn = V1Record(1, 7, 0, nullptr).substr(0, 16);
  WriteFile(wal, log + torn);
  auto ins = WriteAheadLog::Inspect(wal);
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  ASSERT_EQ(ins->records.size(), 5u);
  EXPECT_EQ(ins->records[0].type, 1u);
  EXPECT_EQ(ins->records[1].type, 2u);
  EXPECT_EQ(ins->records[1].page, 0u);
  EXPECT_EQ(ins->records[1].size, 32u + kPageSize);
  EXPECT_EQ(ins->records[2].type, 3u);
  EXPECT_EQ(ins->records[4].txn, 2u);
  EXPECT_FALSE(ins->old_format);
  EXPECT_EQ(ins->valid_bytes, log.size());
  EXPECT_EQ(ins->file_bytes, log.size() + torn.size());
  EXPECT_FALSE(ins->tail_error.empty());
}

// ---- directory durability and degraded mode ------------------------------

TEST_F(CrashRecoveryTest, ParentDirectoryFsyncedOnCreation) {
  // Creating .db/.wal must fsync their directory (a crash right after
  // open(O_CREAT) must not lose the directory entries). Observable via
  // the failpoint hit counters: pre-fix these points did not exist.
  auto& injector = FaultInjector::Instance();
  auto& metrics = obs::StorageMetrics::Instance();
  injector.Reset();
  metrics.Reset();
  std::string prefix = FreshPrefix();
  {
    TermFactory f;
    auto sm = StorageManager::Open(prefix, &f);
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE((*sm)->Close().ok());
  }
  EXPECT_GT(injector.hits(fp::kDiskDirSync), 0u);
  EXPECT_GT(injector.hits(fp::kWalDirSync), 0u);
  EXPECT_GE(metrics.dir_fsyncs.load(), 2u);
  // Reopening an existing database must NOT re-sync the directory.
  uint64_t disk_before = injector.hits(fp::kDiskDirSync);
  uint64_t wal_before = injector.hits(fp::kWalDirSync);
  {
    TermFactory f;
    auto sm = StorageManager::Open(prefix, &f);
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE((*sm)->Close().ok());
  }
  EXPECT_EQ(injector.hits(fp::kDiskDirSync), disk_before);
  EXPECT_EQ(injector.hits(fp::kWalDirSync), wal_before);
}

TEST_F(CrashRecoveryTest, ReadOnlyDegradationWhenLogUnopenable) {
  // Pre-fix, Recover treated ANY open failure as "nothing to recover" and
  // the database came up writable with no undo log. Now: reads work,
  // every mutation path refuses.
  std::string prefix = FreshPrefix();
  std::set<int> committed;
  ASSERT_NO_FATAL_FAILURE(BuildBaseline(prefix, &committed));
  // Make the log unopenable (EISDIR) without deleting it.
  std::filesystem::remove(prefix + ".wal");
  std::filesystem::create_directory(prefix + ".wal");
  obs::StorageMetrics::Instance().Reset();
  {
    TermFactory f;
    auto sm = StorageManager::Open(prefix, &f);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    EXPECT_TRUE((*sm)->read_only());
    PersistentRelation* rel = (*sm)->FindRelation("t", 2);
    ASSERT_NE(rel, nullptr);
    // Reads still serve.
    size_t n = 0;
    auto it = rel->Scan();
    while (it->Next() != nullptr) ++n;
    EXPECT_EQ(n, committed.size());
    EXPECT_TRUE(rel->Contains(MakeT(&f, 0)));
    // Mutations refuse instead of running without a log.
    EXPECT_FALSE((*sm)->Begin().ok());
    EXPECT_FALSE(rel->Insert(MakeT(&f, 400)));
    EXPECT_EQ(rel->size(), committed.size());
    EXPECT_FALSE((*sm)->CreateRelation("u", 1).ok());
    EXPECT_FALSE((*sm)->SaveCatalog().ok());
    ASSERT_TRUE((*sm)->Close().ok());
  }
  EXPECT_GT(
      obs::StorageMetrics::Instance().read_only_degradations.load(), 0u);
  EXPECT_TRUE(obs::StorageMetrics::Instance().SawEvent("storage.read_only"));
  // Restore the log path: fully writable again.
  std::filesystem::remove(prefix + ".wal");
  ASSERT_NO_FATAL_FAILURE(VerifyState(prefix, committed, {}, {}));
}

// ---- hardened I/O loops on the data file ---------------------------------

TEST_F(CrashRecoveryTest, PageIoSurvivesEintrAndShortTransfers) {
  auto& injector = FaultInjector::Instance();
  auto& metrics = obs::StorageMetrics::Instance();
  injector.Reset();
  metrics.Reset();
  std::string prefix = FreshPrefix();
  DiskManager disk;
  ASSERT_TRUE(disk.Open(prefix + ".db").ok());
  ASSERT_TRUE(disk.AllocatePage().ok());

  std::vector<char> page(kPageSize, 'Q');
  FaultSpec eintr;
  eintr.kind = FaultKind::kError;
  eintr.err = EINTR;
  eintr.times = 2;
  injector.Arm(fp::kDiskWrite, eintr);
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  EXPECT_GE(metrics.eintr_retries.load(), 2u);

  injector.Reset();
  FaultSpec short_read;
  short_read.kind = FaultKind::kShortWrite;
  short_read.partial_bytes = 100;
  injector.Arm(fp::kDiskRead, short_read);
  std::vector<char> back(kPageSize);
  ASSERT_TRUE(disk.ReadPage(0, back.data()).ok());
  EXPECT_EQ(back[0], 'Q');
  EXPECT_EQ(back[kPageSize - 1], 'Q');
  EXPECT_GT(metrics.short_transfers.load(), 0u);

  // Bounded transient retry: a brief EAGAIN storm is absorbed...
  injector.Reset();
  FaultSpec eagain;
  eagain.kind = FaultKind::kError;
  eagain.err = EAGAIN;
  eagain.times = 3;
  injector.Arm(fp::kDiskSync, eagain);
  ASSERT_TRUE(disk.Sync().ok());
  EXPECT_GE(metrics.transient_retries.load(), 3u);
  // ...but a persistent one is surfaced, not retried forever.
  injector.Reset();
  eagain.times = 1000;
  injector.Arm(fp::kDiskSync, eagain);
  EXPECT_FALSE(disk.Sync().ok());
  injector.Reset();
  ASSERT_TRUE(disk.Close().ok());
}

}  // namespace
}  // namespace coral
