// Stress tests for the parallel semi-naive fixpoint engine: wide-fanout
// transitive closure and aggregation workloads whose per-iteration deltas
// are large enough to keep every worker busy, cross-checked against
// independent reference algorithms and against the sequential engine.
// Registered with a ctest TIMEOUT so a deadlocked pool fails the suite
// instead of hanging it; run under CORAL_SANITIZE="thread" these tests are
// the data-race harness for the worker/merge protocol.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"

namespace coral {
namespace {

class Lcg {
 public:
  explicit Lcg(uint64_t seed) : s_(seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t Next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return s_ >> 33;
  }
  uint64_t Next(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t s_;
};

// ---------------------------------------------------------------------
// Wide-fanout transitive closure: the full all-pairs closure of a random
// graph (@no_rewriting keeps every pair, so iteration deltas are wide),
// at 1, 2 and 4 threads, against a per-source BFS reference.
// ---------------------------------------------------------------------

TEST(ParallelStressTest, WideFanoutTransitiveClosure) {
  constexpr int kNodes = 120;
  constexpr int kEdges = 4 * kNodes;
  Lcg rng(97);
  std::vector<std::vector<int>> adj(kNodes);
  std::string facts;
  for (int i = 0; i < kEdges; ++i) {
    int a = static_cast<int>(rng.Next(kNodes));
    int b = static_cast<int>(rng.Next(kNodes));
    adj[a].push_back(b);
    facts += "e(" + std::to_string(a) + ", " + std::to_string(b) + ").\n";
  }
  std::set<std::pair<int, int>> expected;
  for (int s = 0; s < kNodes; ++s) {
    std::vector<bool> seen(kNodes, false);
    std::queue<int> work;
    work.push(s);
    while (!work.empty()) {
      int cur = work.front();
      work.pop();
      for (int nxt : adj[cur]) {
        if (!seen[nxt]) {
          seen[nxt] = true;
          expected.insert({s, nxt});
          work.push(nxt);
        }
      }
    }
  }

  const std::string mod =
      "module tcm.\nexport tc(ff).\n@no_rewriting.\n"
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\nend_module.\n";
  for (int threads : {1, 2, 4}) {
    Database db;
    db.set_num_threads(threads);
    ASSERT_TRUE(db.Consult(facts).ok());
    ASSERT_TRUE(db.Consult(mod).ok());
    auto res = db.EvalQuery("tc(X, Y)");
    ASSERT_TRUE(res.ok()) << "threads " << threads << ": "
                          << res.status().ToString();
    std::set<std::pair<int, int>> got;
    for (const AnswerRow& row : res->rows) {
      ASSERT_EQ(row.bindings.size(), 2u);
      got.insert({static_cast<int>(
                      ArgCast<IntArg>(row.bindings[0].second)->value()),
                  static_cast<int>(
                      ArgCast<IntArg>(row.bindings[1].second)->value())});
    }
    EXPECT_EQ(got.size(), expected.size()) << "threads " << threads;
    EXPECT_EQ(got, expected) << "threads " << threads;
  }
}

// ---------------------------------------------------------------------
// Aggregation under parallel evaluation: all-pairs cheapest cost with a
// min() aggregate selection pruning the cost relation every merge, vs a
// Floyd-Warshall reference. The selection machinery runs serially at the
// merge barrier; this checks it sees the same tuple stream.
// ---------------------------------------------------------------------

TEST(ParallelStressTest, AggregatedCheapestCostClosure) {
  constexpr int kNodes = 36;
  constexpr int kEdges = 5 * kNodes;
  constexpr int kInf = 1 << 28;
  Lcg rng(1234);
  std::vector<std::vector<int>> cost(kNodes,
                                     std::vector<int>(kNodes, kInf));
  std::string facts;
  for (int i = 0; i < kEdges; ++i) {
    int a = static_cast<int>(rng.Next(kNodes));
    int b = static_cast<int>(rng.Next(kNodes));
    int c = 1 + static_cast<int>(rng.Next(9));
    if (c < cost[a][b]) cost[a][b] = c;
    facts += "edge(" + std::to_string(a) + ", " + std::to_string(b) +
             ", " + std::to_string(c) + ").\n";
  }
  // Floyd-Warshall (paths of length >= 1, as the program derives).
  std::vector<std::vector<int>> dist = cost;
  for (int k = 0; k < kNodes; ++k) {
    for (int i = 0; i < kNodes; ++i) {
      for (int j = 0; j < kNodes; ++j) {
        if (dist[i][k] < kInf && dist[k][j] < kInf) {
          dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
        }
      }
    }
  }

  const std::string mod =
      "module spm.\nexport d(fff).\n@no_rewriting.\n"
      "@aggregate_selection p(X, Y, C) (X, Y) min(C).\n"
      "p(X, Y, C) :- edge(X, Y, C).\n"
      "p(X, Y, C) :- p(X, Z, C1), edge(Z, Y, C2), C = C1 + C2.\n"
      "d(X, Y, min(<C>)) :- p(X, Y, C).\nend_module.\n";
  std::set<std::string> baseline;
  for (int threads : {1, 2, 4}) {
    Database db;
    db.set_num_threads(threads);
    ASSERT_TRUE(db.Consult(facts).ok());
    ASSERT_TRUE(db.Consult(mod).ok());
    auto res = db.EvalQuery("d(X, Y, C)");
    ASSERT_TRUE(res.ok()) << "threads " << threads << ": "
                          << res.status().ToString();
    std::set<std::string> got;
    size_t reachable = 0;
    for (const AnswerRow& row : res->rows) {
      ASSERT_EQ(row.bindings.size(), 3u);
      int x = static_cast<int>(
          ArgCast<IntArg>(row.bindings[0].second)->value());
      int y = static_cast<int>(
          ArgCast<IntArg>(row.bindings[1].second)->value());
      int c = static_cast<int>(
          ArgCast<IntArg>(row.bindings[2].second)->value());
      EXPECT_EQ(c, dist[x][y]) << "threads " << threads << " pair " << x
                               << "," << y;
      got.insert(row.ToString());
    }
    for (int i = 0; i < kNodes; ++i) {
      for (int j = 0; j < kNodes; ++j) reachable += dist[i][j] < kInf;
    }
    EXPECT_EQ(res->rows.size(), reachable) << "threads " << threads;
    if (threads == 1) {
      baseline = std::move(got);
    } else {
      EXPECT_EQ(got, baseline) << "threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------
// Thread-count churn on one Database: the shared pool must grow across
// modules and re-runs without losing or duplicating answers, including a
// @parallel(N) module annotation overriding the database default.
// ---------------------------------------------------------------------

TEST(ParallelStressTest, ThreadCountChurnIsStable) {
  Lcg rng(777);
  std::string facts;
  for (int i = 0; i < 160; ++i) {
    facts += "e(" + std::to_string(rng.Next(40)) + ", " +
             std::to_string(rng.Next(40)) + ").\n";
  }
  Database db;
  ASSERT_TRUE(db.Consult(facts).ok());
  ASSERT_TRUE(db.Consult("module a.\nexport tc(ff).\n@no_rewriting.\n"
                         "tc(X, Y) :- e(X, Y).\n"
                         "tc(X, Y) :- e(X, Z), tc(Z, Y).\nend_module.\n")
                  .ok());
  ASSERT_TRUE(db.Consult("module b.\nexport tcp(ff).\n@no_rewriting.\n"
                         "@parallel(3).\n"
                         "tcp(X, Y) :- e(X, Y).\n"
                         "tcp(X, Y) :- e(X, Z), tcp(Z, Y).\nend_module.\n")
                  .ok());
  size_t expect_tc = 0, expect_tcp = 0;
  static const int kSchedule[] = {1, 4, 2, 3, 4, 1, 2, 4};
  for (size_t i = 0; i < std::size(kSchedule); ++i) {
    db.set_num_threads(kSchedule[i]);
    auto tc = db.EvalQuery("tc(X, Y)");
    ASSERT_TRUE(tc.ok()) << tc.status().ToString();
    auto tcp = db.EvalQuery("tcp(X, Y)");
    ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
    if (i == 0) {
      expect_tc = tc->rows.size();
      expect_tcp = tcp->rows.size();
      EXPECT_EQ(expect_tc, expect_tcp);
    } else {
      EXPECT_EQ(tc->rows.size(), expect_tc) << "round " << i;
      EXPECT_EQ(tcp->rows.size(), expect_tcp) << "round " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Every shipped example program produces set-identical query results at
// 1 and 4 threads (the tentpole's acceptance bar for examples/programs/).
// ---------------------------------------------------------------------

TEST(ParallelStressTest, ExampleProgramsSetIdenticalAcrossThreadCounts) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(CORAL_SOURCE_DIR) / "examples" / "programs";
  size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".crl") continue;
    ++checked;
    std::vector<std::multiset<std::string>> per_query[2];
    for (int ti = 0; ti < 2; ++ti) {
      Database db;
      db.set_num_threads(ti == 0 ? 1 : 4);
      auto queries = db.ConsultFile(entry.path().string());
      ASSERT_TRUE(queries.ok())
          << entry.path() << ": " << queries.status().ToString();
      for (const Query& q : *queries) {
        auto res = db.ExecuteQuery(q);
        ASSERT_TRUE(res.ok())
            << entry.path() << ": " << res.status().ToString();
        std::multiset<std::string> rows;
        for (const AnswerRow& row : res->rows) rows.insert(row.ToString());
        per_query[ti].push_back(std::move(rows));
      }
    }
    ASSERT_EQ(per_query[0].size(), per_query[1].size()) << entry.path();
    for (size_t i = 0; i < per_query[0].size(); ++i) {
      EXPECT_EQ(per_query[0][i], per_query[1][i])
          << entry.path() << " query #" << i;
    }
  }
  EXPECT_GT(checked, 0u) << "no example programs found under " << dir;
}

// ---------------------------------------------------------------------
// Concurrent StatsRegistry readers while parallel fixpoint workers write:
// reader threads hammer the registry's read surface (profiles(), Find,
// per-rule totals, iteration logs, the rendered report) while the main
// thread repeatedly evaluates a profiled module at 4 workers. Under TSan
// (the tsan CI job runs this binary) this is the race harness for the
// kRankStatsRegistry / kRankModuleProfile locks and the relaxed-atomic
// rule counters — the exact readers-vs-writers shape the multi-client
// query server will serve.
// ---------------------------------------------------------------------

TEST(ParallelStressTest, StatsRegistryReadersVsFixpointWriters) {
  constexpr int kNodes = 60;
  Lcg rng(4242);
  std::string facts;
  for (int i = 0; i < 4 * kNodes; ++i) {
    facts += "e(" + std::to_string(rng.Next(kNodes)) + ", " +
             std::to_string(rng.Next(kNodes)) + ").\n";
  }
  const std::string mod =
      "module tcm.\nexport tc(ff).\n@no_rewriting.\n@parallel(4).\n"
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\nend_module.\n";

  Database db;
  db.set_profiling(true);
  ASSERT_TRUE(db.Consult(facts).ok());
  ASSERT_TRUE(db.Consult(mod).ok());
  // Prime one activation so readers immediately see a profile.
  ASSERT_TRUE(db.EvalQuery("tc(X, Y)").ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const obs::ModuleProfile* p : db.stats()->profiles()) {
          // Every read path a monitoring client would hit.
          (void)p->total_inserted();
          (void)p->total_solutions();
          (void)p->total_duplicates();
          (void)p->activations();
          (void)p->iterations();
          size_t n = p->rule_count();
          for (size_t i = 0; i < n; ++i) {
            (void)p->rule(i).inserted.load(std::memory_order_relaxed);
            (void)p->rule_text(i);
          }
        }
        const obs::ModuleProfile* tcm = db.stats()->Find("tcm");
        if (tcm != nullptr) (void)tcm->total_iterations();
        (void)db.ProfileReport();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr int kActivations = 8;
  uint64_t expected_per_run = 0;
  for (int i = 0; i < kActivations; ++i) {
    auto res = db.EvalQuery("tc(X, Y)");
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    if (expected_per_run == 0) expected_per_run = res->rows.size();
    EXPECT_EQ(res->rows.size(), expected_per_run) << "activation " << i;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(std::memory_order_relaxed), 0u);

  // Counters must end exact despite the concurrent readers: inserted
  // totals are thread-count invariant, so kActivations + 1 identical
  // activations accumulate an exact multiple.
  const obs::ModuleProfile* tcm = db.stats()->Find("tcm");
  ASSERT_NE(tcm, nullptr);
  EXPECT_EQ(tcm->activations(), static_cast<uint64_t>(kActivations) + 1);
  EXPECT_EQ(tcm->total_inserted() % (kActivations + 1), 0u);
}

}  // namespace
}  // namespace coral
