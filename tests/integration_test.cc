// Integration tests: consulted files, module-level annotations on base
// relations, storage edge cases, mixed-strategy module webs, and the
// interactive-interface surface (Database::Run) end to end.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/core/database.h"
#include "src/rel/hash_relation.h"
#include "src/storage/storage_manager.h"

namespace coral {
namespace {

namespace fs = std::filesystem;

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  fs::path path = fs::path(::testing::TempDir()) / name;
  std::ofstream out(path);
  out << contents;
  out.close();
  return path.string();
}

TEST(IntegrationTest, ConsultFileLoadsFactsModulesAndReturnsQueries) {
  Database db;
  std::string path = WriteTempFile("prog.crl", R"(
    % A consulted program file (paper §2: data in text files).
    edge(1, 2). edge(2, 3). edge(3, 4).
    module tc. export t(bf).
    t(X, Y) :- edge(X, Y).
    t(X, Y) :- edge(X, Z), t(Z, Y).
    end_module.
    ?- t(1, Y).
  )");
  auto queries = db.ConsultFile(path);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries->size(), 1u);
  auto result = db.ExecuteQuery((*queries)[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
  EXPECT_FALSE(db.ConsultFile("/no/such/file.crl").ok());
}

TEST(IntegrationTest, ModuleIndexAnnotationOnBaseRelation) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    big(1, 100). big(2, 200).
    module m.
    export lookup(bf).
    @make_index big(A, B) (A).
    lookup(A, B) :- big(A, B).
    end_module.
  )").ok());
  ASSERT_TRUE(db.EvalQuery("lookup(1, B)").ok());
  // The base relation acquired the declared index.
  PredRef pred{db.factory()->symbols().Intern("big"), 2};
  auto* rel = dynamic_cast<HashRelation*>(db.FindBaseRelation(pred));
  ASSERT_NE(rel, nullptr);
  EXPECT_TRUE(rel->HasArgumentIndex({0}));
}

TEST(IntegrationTest, TopLevelAggregateSelectionOnBaseRelation) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    @aggregate_selection best(K, V) (K) max(V).
    best(a, 1). best(a, 5). best(a, 3). best(b, 2).
  )").ok());
  auto res = db.EvalQuery("best(a, V)");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "V = 5");
}

TEST(IntegrationTest, MixedStrategyModuleWeb) {
  // Five modules, five strategies, chained through exports.
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module base_m. export b1(bf).
    b1(X, Y) :- raw(X, Y).
    end_module.

    module pipe_m. export p1(bf).
    @pipelining.
    p1(X, Y) :- b1(X, Y).
    end_module.

    module psn_m. export s1(bf).
    @psn.
    s1(X, Y) :- p1(X, Y).
    s1(X, Y) :- p1(X, Z), s1(Z, Y).
    end_module.

    module naive_m. export n1(bf).
    @naive. @no_rewriting.
    n1(X, Y) :- s1(X, Y).
    end_module.

    module save_m. export v1(bf).
    @save_module.
    v1(X, Y) :- n1(X, Y).
    end_module.
  )").ok());
  std::string facts;
  for (int i = 0; i < 6; ++i) {
    facts += "raw(w" + std::to_string(i) + ", w" + std::to_string(i + 1) +
             ").\n";
  }
  ASSERT_TRUE(db.Consult(facts).ok());
  auto res = db.EvalQuery("v1(w0, Y)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 6u);
  // Second call exercises the save-module resume path across the web.
  EXPECT_EQ(db.EvalQuery("v1(w0, Y)")->rows.size(), 6u);
  EXPECT_EQ(db.EvalQuery("v1(w3, Y)")->rows.size(), 3u);
}

TEST(IntegrationTest, PersistentDataConsultedThroughTextFacts) {
  // Text facts consulted into an attached persistent relation (paper §2:
  // consulting converts text into relations — here a persistent one).
  fs::path dir = fs::path(::testing::TempDir()) / "it_persist";
  fs::create_directories(dir);
  std::string prefix = (dir / "db").string();
  fs::remove(prefix + ".db");
  fs::remove(prefix + ".wal");

  Database db;
  auto sm = StorageManager::Open(prefix, db.factory());
  ASSERT_TRUE(sm.ok());
  ASSERT_TRUE((*sm)->CreateRelation("stock", 2).ok());
  ASSERT_TRUE((*sm)->AttachTo(&db).ok());
  ASSERT_TRUE(db.Consult(R"(
    stock(bolts, 40). stock(nuts, 120). stock(screws, 7).
  )").ok());
  EXPECT_EQ((*sm)->FindRelation("stock", 2)->size(), 3u);
  ASSERT_TRUE(db.Consult(R"(
    module low. export low_stock(f).
    low_stock(P) :- stock(P, N), N < 50.
    end_module.
  )").ok());
  EXPECT_EQ(db.EvalQuery("low_stock(P)")->rows.size(), 2u);
  // Rejecting a non-storable fact surfaces as an error, not a crash.
  auto bad = db.Consult("stock(box(1), 3).");
  EXPECT_FALSE(bad.ok());
  ASSERT_TRUE((*sm)->Close().ok());
}

TEST(IntegrationTest, StorageRejectsOversizeRecord) {
  fs::path dir = fs::path(::testing::TempDir()) / "it_oversize";
  fs::create_directories(dir);
  std::string prefix = (dir / "db").string();
  fs::remove(prefix + ".db");
  fs::remove(prefix + ".wal");
  TermFactory f;
  auto sm = StorageManager::Open(prefix, &f);
  ASSERT_TRUE(sm.ok());
  auto rel = (*sm)->CreateRelation("blob", 1);
  ASSERT_TRUE(rel.ok());
  // A string too large for half a page must be rejected gracefully by
  // the heap layer (Insert returns false after a CHECK-free error path?
  // -> the relation reports it via ValidateInsert-compatible behaviour).
  std::string huge(kPageSize, 'x');
  const Arg* args[] = {f.MakeString(huge)};
  const Tuple* t = f.MakeTuple(args);
  EXPECT_TRUE(PersistentRelation::CanStore(t));  // type-wise storable...
  // ...but too large: ValidateInsert cannot see size; the Database-level
  // insert path catches the status.
  Database db;
  (void)db;
  // Direct insert would CHECK-fail on the heap append; the supported path
  // is Database::InsertFact which validates first. Here we assert the
  // serialized size exceeds the heap limit so callers can pre-check.
  auto rec = SerializeTuple(t);
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec->size(), kPageSize / 2);
  ASSERT_TRUE((*sm)->Close().ok());
}

TEST(IntegrationTest, CommittedTransactionSurvivesCrash) {
  fs::path dir = fs::path(::testing::TempDir()) / "it_commit_crash";
  fs::create_directories(dir);
  std::string prefix = (dir / "db").string();
  fs::remove(prefix + ".db");
  fs::remove(prefix + ".wal");
  TermFactory f;
  {
    auto sm = StorageManager::Open(prefix, &f);
    ASSERT_TRUE(sm.ok());
    auto rel = (*sm)->CreateRelation("t", 1);
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE((*sm)->Begin().ok());
    const Arg* a[] = {f.MakeInt(7)};
    (*rel)->Insert(f.MakeTuple(a));
    ASSERT_TRUE((*sm)->Commit().ok());
    // Crash AFTER commit: committed state must survive without Close.
    (*sm)->SimulateCrash();
  }
  {
    TermFactory f2;
    auto sm = StorageManager::Open(prefix, &f2);
    ASSERT_TRUE(sm.ok());
    PersistentRelation* rel = (*sm)->FindRelation("t", 1);
    ASSERT_NE(rel, nullptr);
    size_t n = 0;
    auto it = rel->Scan();
    while (it->Next()) ++n;
    EXPECT_EQ(n, 1u);  // committed data survived
    ASSERT_TRUE((*sm)->Close().ok());
  }
}

TEST(IntegrationTest, RunSurfaceMatchesReplUsage) {
  Database db;
  auto out = db.Run(R"(
    likes(alice, dogs). likes(bob, cats). likes(carol, dogs).
    module fans. export fans_of(bf).
    fans_of(T, <P>) :- likes(P, T).
    end_module.
    ?- fans_of(dogs, S).
    ?- likes(bob, X).
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("S = {alice,carol}"), std::string::npos) << *out;
  EXPECT_NE(out->find("X = cats"), std::string::npos);
}

TEST(IntegrationTest, ParseErrorsSurfaceWithLocation) {
  Database db;
  auto bad = db.Consult("module m. p(X :- q(X). end_module.");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos);
}

TEST(IntegrationTest, LargeJoinWithOptimizerChosenIndexes) {
  // Triangle counting: the optimizer must index e on the join columns or
  // this is O(E^3); with indexes it is fast enough to run in a test.
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module tri. export triangle(fff).
    @eager.
    triangle(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).
    end_module.
  )").ok());
  std::string facts;
  // 50 disjoint triangles plus chain noise.
  for (int i = 0; i < 50; ++i) {
    std::string a = "t" + std::to_string(i) + "a";
    std::string b = "t" + std::to_string(i) + "b";
    std::string c = "t" + std::to_string(i) + "c";
    facts += "e(" + a + ", " + b + ").\n";
    facts += "e(" + b + ", " + c + ").\n";
    facts += "e(" + c + ", " + a + ").\n";
  }
  for (int i = 0; i < 200; ++i) {
    facts += "e(g" + std::to_string(i) + ", g" + std::to_string(i + 1) +
             ").\n";
  }
  ASSERT_TRUE(db.Consult(facts).ok());
  auto res = db.EvalQuery("triangle(X, Y, Z)");
  ASSERT_TRUE(res.ok());
  // Each triangle appears under its 3 rotations.
  EXPECT_EQ(res->rows.size(), 150u);
  // e acquired at least one optimizer-chosen argument index.
  PredRef pred{db.factory()->symbols().Intern("e"), 2};
  auto* rel = dynamic_cast<HashRelation*>(db.FindBaseRelation(pred));
  ASSERT_NE(rel, nullptr);
  EXPECT_GT(rel->index_count(), 0u);
}

}  // namespace
}  // namespace coral
