// Differential testing: randomly generated Datalog programs evaluated by
// the CORAL engine are checked against an independent reference evaluator
// (a direct naive fixpoint over integer tuples, sharing no code with the
// engine). Strategies are randomized too, so every run cross-checks the
// rewriting/evaluation matrix on programs nobody hand-picked. Also:
// crash-safety fuzzing of the lexer/parser and a print->parse round-trip
// property for terms.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/rewrite/rewriter.h"
#include "src/vm/bytecode.h"
#include "src/vm/compiler.h"
#include "src/vm/verifier.h"

namespace coral {
namespace {

class Lcg {
 public:
  explicit Lcg(uint64_t seed) : s_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return s_ >> 33;
  }
  uint64_t Next(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t s_;
};

// ---------------------------------------------------------------------
// Random program generation
// ---------------------------------------------------------------------

struct GLit {
  int pred;          // 0..kBase-1 base, kBase..kBase+kDerived-1 derived
  bool negated;
  int args[2];       // >= 0: variable id; < 0: constant -(v+1)
};
struct GRule {
  int head;          // derived pred index (0..kDerived-1)
  int head_args[2];  // variable ids
  std::vector<GLit> body;
};

constexpr int kBase = 2;
constexpr int kDerived = 3;
constexpr int kDomain = 6;
constexpr int kVars = 4;

std::string ArgText(int a) {
  return a >= 0 ? "V" + std::to_string(a) : std::to_string(-a - 1);
}
std::string PredName(int p) {
  return p < kBase ? "b" + std::to_string(p)
                   : "d" + std::to_string(p - kBase);
}

/// Generates a safe positive program (+ optionally one negated BASE
/// literal per rule, placed last with bound arguments).
std::vector<GRule> GenProgram(Lcg* rng, bool with_negation) {
  std::vector<GRule> rules;
  int n_rules = 4 + static_cast<int>(rng->Next(4));
  for (int r = 0; r < n_rules; ++r) {
    GRule rule;
    rule.head = static_cast<int>(rng->Next(kDerived));
    std::vector<GLit> body;
    int n_lits = 1 + static_cast<int>(rng->Next(2));
    std::set<int> bound_vars;
    for (int i = 0; i < n_lits; ++i) {
      GLit lit;
      lit.negated = false;
      // Derived body preds must have a smaller index than the head for
      // easy stratification-free layering... allow equal for recursion.
      if (rng->Next(2) == 0) {
        lit.pred = static_cast<int>(rng->Next(kBase));
      } else {
        lit.pred = kBase + static_cast<int>(rng->Next(rule.head + 1));
      }
      for (int k = 0; k < 2; ++k) {
        if (rng->Next(5) == 0) {
          lit.args[k] = -(static_cast<int>(rng->Next(kDomain)) + 1);
        } else {
          int v = static_cast<int>(rng->Next(kVars));
          lit.args[k] = v;
          bound_vars.insert(v);
        }
      }
      body.push_back(lit);
    }
    // Head args must be bound (safety).
    std::vector<int> bound(bound_vars.begin(), bound_vars.end());
    if (bound.empty()) continue;  // skip degenerate rule
    rule.head_args[0] = bound[rng->Next(bound.size())];
    rule.head_args[1] = bound[rng->Next(bound.size())];
    // Optional negated base literal with bound variables, last.
    if (with_negation && rng->Next(3) == 0) {
      GLit neg;
      neg.negated = true;
      neg.pred = static_cast<int>(rng->Next(kBase));
      neg.args[0] = bound[rng->Next(bound.size())];
      neg.args[1] = bound[rng->Next(bound.size())];
      body.push_back(neg);
    }
    rule.body = std::move(body);
    rules.push_back(std::move(rule));
  }
  return rules;
}

using Fact = std::pair<int, int>;
using Db = std::vector<std::set<Fact>>;  // indexed by pred

Db GenBaseFacts(Lcg* rng) {
  Db db(kBase + kDerived);
  for (int p = 0; p < kBase; ++p) {
    int n = 4 + static_cast<int>(rng->Next(8));
    for (int i = 0; i < n; ++i) {
      db[p].insert({static_cast<int>(rng->Next(kDomain)),
                    static_cast<int>(rng->Next(kDomain))});
    }
  }
  return db;
}

// ---------------------------------------------------------------------
// Reference evaluator: direct naive fixpoint, no shared code
// ---------------------------------------------------------------------

void ReferenceFixpoint(const std::vector<GRule>& rules, Db* db) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const GRule& rule : rules) {
      // Enumerate all bindings of the positive body.
      std::vector<std::map<int, int>> envs = {{}};
      for (const GLit& lit : rule.body) {
        if (lit.negated) continue;
        std::vector<std::map<int, int>> next;
        for (const auto& env : envs) {
          for (const Fact& fact : (*db)[lit.pred]) {
            std::map<int, int> e = env;
            int vals[2] = {fact.first, fact.second};
            bool ok = true;
            for (int k = 0; k < 2 && ok; ++k) {
              if (lit.args[k] < 0) {
                ok = vals[k] == -lit.args[k] - 1;
              } else {
                auto it = e.find(lit.args[k]);
                if (it == e.end()) {
                  e[lit.args[k]] = vals[k];
                } else {
                  ok = it->second == vals[k];
                }
              }
            }
            if (ok) next.push_back(std::move(e));
          }
        }
        envs = std::move(next);
      }
      for (const auto& env : envs) {
        // Negated base literals filter.
        bool pass = true;
        for (const GLit& lit : rule.body) {
          if (!lit.negated) continue;
          int vals[2];
          bool determined = true;
          for (int k = 0; k < 2; ++k) {
            if (lit.args[k] < 0) {
              vals[k] = -lit.args[k] - 1;
            } else {
              auto it = env.find(lit.args[k]);
              if (it == env.end()) {
                determined = false;
                break;
              }
              vals[k] = it->second;
            }
          }
          ASSERT_TRUE(determined) << "generator produced unsafe negation";
          if ((*db)[lit.pred].count({vals[0], vals[1]})) pass = false;
        }
        if (!pass) continue;
        Fact head{env.at(rule.head_args[0]), env.at(rule.head_args[1])};
        if ((*db)[kBase + rule.head].insert(head).second) changed = true;
      }
    }
  }
}

// ---------------------------------------------------------------------
// CORAL side
// ---------------------------------------------------------------------

std::string ProgramText(const std::vector<GRule>& rules, const Db& base,
                        const std::string& annotations) {
  std::string out;
  for (int p = 0; p < kBase; ++p) {
    for (const Fact& f : base[p]) {
      out += PredName(p) + "(" + std::to_string(f.first) + ", " +
             std::to_string(f.second) + ").\n";
    }
  }
  out += "module gen.\nexport ";
  for (int d = 0; d < kDerived; ++d) {
    out += std::string(d ? ", " : "") + PredName(kBase + d) + "(ff)";
  }
  out += ".\n" + annotations + "\n";
  for (const GRule& r : rules) {
    out += PredName(kBase + r.head) + "(" + ArgText(r.head_args[0]) + ", " +
           ArgText(r.head_args[1]) + ") :- ";
    for (size_t i = 0; i < r.body.size(); ++i) {
      const GLit& lit = r.body[i];
      if (i) out += ", ";
      if (lit.negated) out += "not ";
      out += PredName(lit.pred) + "(" + ArgText(lit.args[0]) + ", " +
             ArgText(lit.args[1]) + ")";
    }
    out += ".\n";
  }
  out += "end_module.\n";
  return out;
}

void RunDifferential(uint64_t seed, bool with_negation) {
  Lcg rng(seed);
  std::vector<GRule> rules = GenProgram(&rng, with_negation);
  if (rules.empty()) return;
  Db base = GenBaseFacts(&rng);
  // Ensure every derived pred has at least one rule so queries are legal.
  for (int d = 0; d < kDerived; ++d) {
    bool defined = false;
    for (const GRule& r : rules) defined |= r.head == d;
    if (!defined) {
      GRule r;
      r.head = d;
      r.head_args[0] = 0;
      r.head_args[1] = 1;
      r.body = {GLit{0, false, {0, 1}}};
      rules.push_back(r);
    }
  }

  Db expected = base;
  ReferenceFixpoint(rules, &expected);

  static const char* kPositive[] = {"",      "@psn.",           "@naive.",
                                    "@no_rewriting.", "@magic.",
                                    "@reorder_joins.", "@save_module.",
                                    "@eager."};
  static const char* kWithNeg[] = {"",        "@psn.",
                                   "@naive.", "@no_rewriting.",
                                   "@magic.", "@ordered_search."};
  const char* strategy = with_negation
                             ? kWithNeg[rng.Next(6)]
                             : kPositive[rng.Next(8)];

  Database db;
  std::string text = ProgramText(rules, base, strategy);
  auto st = db.Consult(text);
  ASSERT_TRUE(st.ok()) << st.status().ToString() << "\n" << text;

  for (int d = 0; d < kDerived; ++d) {
    auto res = db.EvalQuery(PredName(kBase + d) + "(X, Y)");
    ASSERT_TRUE(res.ok()) << res.status().ToString() << "\nseed " << seed
                          << " strategy " << strategy << "\n" << text;
    std::set<Fact> got;
    for (const AnswerRow& row : res->rows) {
      ASSERT_EQ(row.bindings.size(), 2u);
      ASSERT_EQ(row.bindings[0].second->kind(), ArgKind::kInt);
      got.insert({static_cast<int>(
                      ArgCast<IntArg>(row.bindings[0].second)->value()),
                  static_cast<int>(
                      ArgCast<IntArg>(row.bindings[1].second)->value())});
    }
    EXPECT_EQ(got, expected[kBase + d])
        << "pred " << PredName(kBase + d) << " seed " << seed
        << " strategy '" << strategy << "'\n" << text;
  }
}

// Parallel differential: the same generated program is evaluated with 1,
// 2 and 4 worker threads; every thread count must produce relations that
// are set-identical to the independent reference fixpoint (and therefore
// to each other — the 1-thread run is additionally compared directly, so
// a failure names the first diverging configuration).
void RunParallelDifferential(uint64_t seed, bool with_negation) {
  Lcg rng(seed);
  std::vector<GRule> rules = GenProgram(&rng, with_negation);
  if (rules.empty()) return;
  Db base = GenBaseFacts(&rng);
  for (int d = 0; d < kDerived; ++d) {
    bool defined = false;
    for (const GRule& r : rules) defined |= r.head == d;
    if (!defined) {
      GRule r;
      r.head = d;
      r.head_args[0] = 0;
      r.head_args[1] = 1;
      r.body = {GLit{0, false, {0, 1}}};
      rules.push_back(r);
    }
  }

  Db expected = base;
  ReferenceFixpoint(rules, &expected);

  // Strategies that fall back to the sequential engine (@psn,
  // @ordered_search) stay in the mix on purpose: the fallback must be as
  // correct as the parallel path.
  static const char* kPositive[] = {"",      "@psn.",           "@naive.",
                                    "@no_rewriting.", "@magic.",
                                    "@reorder_joins.", "@save_module.",
                                    "@eager."};
  static const char* kWithNeg[] = {"",        "@psn.",
                                   "@naive.", "@no_rewriting.",
                                   "@magic.", "@ordered_search."};
  const char* strategy = with_negation
                             ? kWithNeg[rng.Next(6)]
                             : kPositive[rng.Next(8)];
  std::string text = ProgramText(rules, base, strategy);

  static const int kThreads[] = {1, 2, 4};
  std::set<Fact> single[kDerived];  // 1-thread engine results
  for (int ti = 0; ti < 3; ++ti) {
    Database db;
    db.set_num_threads(kThreads[ti]);
    auto st = db.Consult(text);
    ASSERT_TRUE(st.ok()) << st.status().ToString() << "\nseed " << seed
                         << " threads " << kThreads[ti] << "\n" << text;
    for (int d = 0; d < kDerived; ++d) {
      auto res = db.EvalQuery(PredName(kBase + d) + "(X, Y)");
      ASSERT_TRUE(res.ok())
          << res.status().ToString() << "\nseed " << seed << " strategy '"
          << strategy << "' threads " << kThreads[ti] << "\n" << text;
      std::set<Fact> got;
      for (const AnswerRow& row : res->rows) {
        ASSERT_EQ(row.bindings.size(), 2u);
        ASSERT_EQ(row.bindings[0].second->kind(), ArgKind::kInt);
        got.insert({static_cast<int>(
                        ArgCast<IntArg>(row.bindings[0].second)->value()),
                    static_cast<int>(
                        ArgCast<IntArg>(row.bindings[1].second)->value())});
      }
      EXPECT_EQ(got, expected[kBase + d])
          << "pred " << PredName(kBase + d) << " vs reference, seed "
          << seed << " strategy '" << strategy << "' threads "
          << kThreads[ti] << "\n" << text;
      if (ti == 0) {
        single[d] = std::move(got);
      } else {
        EXPECT_EQ(got, single[d])
            << "pred " << PredName(kBase + d)
            << " diverges from the 1-thread run, seed " << seed
            << " strategy '" << strategy << "' threads " << kThreads[ti]
            << "\n" << text;
      }
    }
  }
}

// @parallel(N) in the module text (instead of Database::set_num_threads)
// must behave identically.
void RunAnnotatedParallelDifferential(uint64_t seed) {
  Lcg rng(seed);
  std::vector<GRule> rules = GenProgram(&rng, /*with_negation=*/false);
  if (rules.empty()) return;
  Db base = GenBaseFacts(&rng);
  for (int d = 0; d < kDerived; ++d) {
    bool defined = false;
    for (const GRule& r : rules) defined |= r.head == d;
    if (!defined) {
      GRule r;
      r.head = d;
      r.head_args[0] = 0;
      r.head_args[1] = 1;
      r.body = {GLit{0, false, {0, 1}}};
      rules.push_back(r);
    }
  }
  Db expected = base;
  ReferenceFixpoint(rules, &expected);

  std::string annotation =
      "@parallel(" + std::to_string(2 + rng.Next(3)) + ").";
  std::string text = ProgramText(rules, base, annotation);
  Database db;
  auto st = db.Consult(text);
  ASSERT_TRUE(st.ok()) << st.status().ToString() << "\nseed " << seed
                       << "\n" << text;
  for (int d = 0; d < kDerived; ++d) {
    auto res = db.EvalQuery(PredName(kBase + d) + "(X, Y)");
    ASSERT_TRUE(res.ok()) << res.status().ToString() << "\nseed " << seed
                          << "\n" << text;
    std::set<Fact> got;
    for (const AnswerRow& row : res->rows) {
      ASSERT_EQ(row.bindings.size(), 2u);
      got.insert({static_cast<int>(
                      ArgCast<IntArg>(row.bindings[0].second)->value()),
                  static_cast<int>(
                      ArgCast<IntArg>(row.bindings[1].second)->value())});
    }
    EXPECT_EQ(got, expected[kBase + d])
        << "pred " << PredName(kBase + d) << " seed " << seed << " "
        << annotation << "\n" << text;
  }
}

// Auto-optimization differential: join reordering and automatic index
// selection (Database::set_auto_optimize, on by default) must never
// change answers. The same generated program — under a randomly drawn
// rewriting strategy — is evaluated with the optimizer on and off; both
// runs must match the independent reference fixpoint and each other.
void RunAutoOptimizeDifferential(uint64_t seed, bool with_negation) {
  Lcg rng(seed);
  std::vector<GRule> rules = GenProgram(&rng, with_negation);
  if (rules.empty()) return;
  Db base = GenBaseFacts(&rng);
  for (int d = 0; d < kDerived; ++d) {
    bool defined = false;
    for (const GRule& r : rules) defined |= r.head == d;
    if (!defined) {
      GRule r;
      r.head = d;
      r.head_args[0] = 0;
      r.head_args[1] = 1;
      r.body = {GLit{0, false, {0, 1}}};
      rules.push_back(r);
    }
  }
  Db expected = base;
  ReferenceFixpoint(rules, &expected);

  static const char* kPositive[] = {"",      "@psn.",           "@naive.",
                                    "@no_rewriting.", "@magic.",
                                    "@reorder_joins.", "@save_module.",
                                    "@eager."};
  static const char* kWithNeg[] = {"",        "@psn.",
                                   "@naive.", "@no_rewriting.",
                                   "@magic.", "@ordered_search."};
  const char* strategy = with_negation
                             ? kWithNeg[rng.Next(6)]
                             : kPositive[rng.Next(8)];
  std::string text = ProgramText(rules, base, strategy);

  std::set<Fact> optimized[kDerived];
  for (int pass = 0; pass < 2; ++pass) {
    Database db;
    db.set_auto_optimize(pass == 0);
    auto st = db.Consult(text);
    ASSERT_TRUE(st.ok()) << st.status().ToString() << "\nseed " << seed
                         << " strategy '" << strategy << "'\n" << text;
    for (int d = 0; d < kDerived; ++d) {
      auto res = db.EvalQuery(PredName(kBase + d) + "(X, Y)");
      ASSERT_TRUE(res.ok())
          << res.status().ToString() << "\nseed " << seed << " strategy '"
          << strategy << "' auto_optimize=" << (pass == 0) << "\n" << text;
      std::set<Fact> got;
      for (const AnswerRow& row : res->rows) {
        ASSERT_EQ(row.bindings.size(), 2u);
        ASSERT_EQ(row.bindings[0].second->kind(), ArgKind::kInt);
        got.insert({static_cast<int>(
                        ArgCast<IntArg>(row.bindings[0].second)->value()),
                    static_cast<int>(
                        ArgCast<IntArg>(row.bindings[1].second)->value())});
      }
      EXPECT_EQ(got, expected[kBase + d])
          << "pred " << PredName(kBase + d) << " vs reference, seed "
          << seed << " strategy '" << strategy << "' auto_optimize="
          << (pass == 0) << "\n" << text;
      if (pass == 0) {
        optimized[d] = std::move(got);
      } else {
        EXPECT_EQ(got, optimized[d])
            << "pred " << PredName(kBase + d)
            << " diverges between auto_optimize on/off, seed " << seed
            << " strategy '" << strategy << "'\n" << text;
      }
    }
  }
}

void RunAggregateDifferential(uint64_t seed, int threads = 1) {
  Lcg rng(seed);
  std::vector<GRule> rules = GenProgram(&rng, /*with_negation=*/false);
  if (rules.empty()) return;
  Db base = GenBaseFacts(&rng);
  for (int d = 0; d < kDerived; ++d) {
    bool defined = false;
    for (const GRule& r : rules) defined |= r.head == d;
    if (!defined) {
      GRule r;
      r.head = d;
      r.head_args[0] = 0;
      r.head_args[1] = 1;
      r.body = {GLit{0, false, {0, 1}}};
      rules.push_back(r);
    }
  }
  Db expected = base;
  ReferenceFixpoint(rules, &expected);

  // One aggregate summary per derived predicate, random fold.
  static const char* kFns[] = {"count", "min", "max", "sum"};
  std::vector<int> fn(kDerived);
  std::string text = ProgramText(rules, base, "");
  // Splice the aggregate rules and their exports into the module text.
  size_t end_pos = text.rfind("end_module.");
  ASSERT_NE(end_pos, std::string::npos);
  std::string agg_rules;
  std::string agg_exports;
  for (int d = 0; d < kDerived; ++d) {
    fn[d] = static_cast<int>(rng.Next(4));
    agg_rules += "agg" + std::to_string(d) + "(X, " + kFns[fn[d]] +
                 "(<Y>)) :- " + PredName(kBase + d) + "(X, Y).\n";
    agg_exports += "export agg" + std::to_string(d) + "(bf).\n";
  }
  text.insert(end_pos, agg_exports + agg_rules);

  Database db;
  db.set_num_threads(threads);
  auto st = db.Consult(text);
  ASSERT_TRUE(st.ok()) << st.status().ToString() << "\n" << text;

  for (int d = 0; d < kDerived; ++d) {
    // Reference folds per group.
    std::map<int, std::vector<int>> groups;
    for (const Fact& f : expected[kBase + d]) {
      groups[f.first].push_back(f.second);
    }
    for (auto& [key, vals] : groups) {
      int64_t want = 0;
      switch (fn[d]) {
        case 0: want = static_cast<int64_t>(vals.size()); break;
        case 1: want = *std::min_element(vals.begin(), vals.end()); break;
        case 2: want = *std::max_element(vals.begin(), vals.end()); break;
        default:
          for (int v : vals) want += v;
      }
      auto res = db.EvalQuery("agg" + std::to_string(d) + "(" +
                           std::to_string(key) + ", V)");
      ASSERT_TRUE(res.ok()) << res.status().ToString() << "\n" << text;
      ASSERT_EQ(res->rows.size(), 1u)
          << "agg" << d << " key " << key << " seed " << seed << "\n"
          << text;
      EXPECT_EQ(res->rows[0].ToString(), "V = " + std::to_string(want))
          << "agg fn " << kFns[fn[d]] << " key " << key << " seed " << seed
          << "\n" << text;
    }
    // No phantom groups.
    auto all = db.EvalQuery("agg" + std::to_string(d) + "(X, V)");
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(all->rows.size(), groups.size()) << "seed " << seed;
  }
}

// VM differential: the join bytecode VM (Database::set_use_vm, on by
// default) against the interpreting ResolveTuple path, crossed with the
// thread count. Every configuration must be set-identical to the
// independent reference fixpoint; non-first configurations are also
// compared to the first directly, so a failure names the diverging
// configuration. `vm_apps` accumulates VM applications across the run —
// the test asserts at the end that the VM actually executed.
void RunVmDifferential(uint64_t seed, bool with_negation,
                       uint64_t* vm_apps) {
  Lcg rng(seed);
  std::vector<GRule> rules = GenProgram(&rng, with_negation);
  if (rules.empty()) return;
  Db base = GenBaseFacts(&rng);
  for (int d = 0; d < kDerived; ++d) {
    bool defined = false;
    for (const GRule& r : rules) defined |= r.head == d;
    if (!defined) {
      GRule r;
      r.head = d;
      r.head_args[0] = 0;
      r.head_args[1] = 1;
      r.body = {GLit{0, false, {0, 1}}};
      rules.push_back(r);
    }
  }
  Db expected = base;
  ReferenceFixpoint(rules, &expected);

  // Shapes the VM cannot compile (@ordered_search, negation) stay in the
  // mix on purpose: the interpreter fallback must be as correct as the
  // compiled path, under every thread count.
  static const char* kPositive[] = {"",      "@psn.",           "@naive.",
                                    "@no_rewriting.", "@magic.",
                                    "@reorder_joins.", "@save_module.",
                                    "@eager."};
  static const char* kWithNeg[] = {"",        "@psn.",
                                   "@naive.", "@no_rewriting.",
                                   "@magic.", "@ordered_search."};
  const char* strategy = with_negation
                             ? kWithNeg[rng.Next(6)]
                             : kPositive[rng.Next(8)];
  std::string text = ProgramText(rules, base, strategy);

  struct Config {
    bool use_vm;
    int threads;
  };
  static const Config kConfigs[] = {
      {true, 1}, {false, 1}, {true, 4}, {false, 4}};
  std::set<Fact> first[kDerived];
  for (size_t ci = 0; ci < 4; ++ci) {
    const Config& cfg = kConfigs[ci];
    Database db;
    db.set_use_vm(cfg.use_vm);
    db.set_num_threads(cfg.threads);
    auto st = db.Consult(text);
    ASSERT_TRUE(st.ok()) << st.status().ToString() << "\nseed " << seed
                         << "\n" << text;
    for (int d = 0; d < kDerived; ++d) {
      auto res = db.EvalQuery(PredName(kBase + d) + "(X, Y)");
      ASSERT_TRUE(res.ok())
          << res.status().ToString() << "\nseed " << seed << " strategy '"
          << strategy << "' vm=" << cfg.use_vm << " threads "
          << cfg.threads << "\n" << text;
      std::set<Fact> got;
      for (const AnswerRow& row : res->rows) {
        ASSERT_EQ(row.bindings.size(), 2u);
        ASSERT_EQ(row.bindings[0].second->kind(), ArgKind::kInt);
        got.insert({static_cast<int>(
                        ArgCast<IntArg>(row.bindings[0].second)->value()),
                    static_cast<int>(
                        ArgCast<IntArg>(row.bindings[1].second)->value())});
      }
      EXPECT_EQ(got, expected[kBase + d])
          << "pred " << PredName(kBase + d) << " vs reference, seed "
          << seed << " strategy '" << strategy << "' vm=" << cfg.use_vm
          << " threads " << cfg.threads << "\n" << text;
      if (ci == 0) {
        first[d] = std::move(got);
      } else {
        EXPECT_EQ(got, first[d])
            << "pred " << PredName(kBase + d)
            << " diverges from the vm/1-thread run, seed " << seed
            << " strategy '" << strategy << "' vm=" << cfg.use_vm
            << " threads " << cfg.threads << "\n" << text;
      }
    }
    if (cfg.use_vm) {
      *vm_apps += db.vm_counters()->applications.load();
    } else {
      // With the VM off nothing may reach it at all.
      EXPECT_EQ(db.vm_counters()->applications.load(), 0u)
          << "seed " << seed << " strategy '" << strategy << "' threads "
          << cfg.threads;
    }
  }
}

// ---------------------------------------------------------------------
// Incremental view maintenance differential (docs/MAINTENANCE.md): a
// random save-module program is materialized, then a random sequence of
// base-fact update batches flows through Session::ApplyUpdate. After
// every batch the engine's answers must be set-identical to a
// from-scratch reference fixpoint over the tracked base facts —
// whichever path (counting, DRed, or the invalidation fallback) handled
// the batch. `maintained` accumulates instances updated in place, so the
// caller can assert the incremental path actually ran.
// ---------------------------------------------------------------------

void RunIvmDifferential(uint64_t seed, int threads, uint64_t* maintained) {
  Lcg rng(seed);
  std::vector<GRule> rules = GenProgram(&rng, /*with_negation=*/false);
  if (rules.empty()) return;
  Db cur = GenBaseFacts(&rng);
  for (int d = 0; d < kDerived; ++d) {
    bool defined = false;
    for (const GRule& r : rules) defined |= r.head == d;
    if (!defined) {
      GRule r;
      r.head = d;
      r.head_args[0] = 0;
      r.head_args[1] = 1;
      r.body = {GLit{0, false, {0, 1}}};
      rules.push_back(r);
    }
  }

  Database db;
  db.set_num_threads(threads);
  std::string text = ProgramText(rules, cur, "@save_module.");
  auto st = db.Consult(text);
  ASSERT_TRUE(st.ok()) << st.status().ToString() << "\n" << text;
  Session session(&db);

  auto check_all = [&](const char* when, int batch) {
    Db expected = cur;
    ReferenceFixpoint(rules, &expected);
    for (int d = 0; d < kDerived; ++d) {
      auto res = db.EvalQuery(PredName(kBase + d) + "(X, Y)");
      ASSERT_TRUE(res.ok())
          << res.status().ToString() << "\nseed " << seed << " threads "
          << threads << " " << when << " batch " << batch << "\n" << text;
      std::set<Fact> got;
      for (const AnswerRow& row : res->rows) {
        ASSERT_EQ(row.bindings.size(), 2u);
        ASSERT_EQ(row.bindings[0].second->kind(), ArgKind::kInt);
        got.insert({static_cast<int>(
                        ArgCast<IntArg>(row.bindings[0].second)->value()),
                    static_cast<int>(
                        ArgCast<IntArg>(row.bindings[1].second)->value())});
      }
      EXPECT_EQ(got, expected[kBase + d])
          << "pred " << PredName(kBase + d) << " seed " << seed
          << " threads " << threads << " " << when << " batch " << batch
          << "\n" << text;
    }
  };

  // Materialize (and sanity-check) the saved instances before updating.
  check_all("before", 0);
  if (::testing::Test::HasFatalFailure() ||
      ::testing::Test::HasNonfatalFailure()) {
    return;
  }

  int n_batches = 3 + static_cast<int>(rng.Next(4));
  for (int b = 0; b < n_batches; ++b) {
    std::string utext;
    // Ground deletions, sampled from the live base facts (plus the
    // occasional no-op delete of a fact that is not there).
    int n_del = static_cast<int>(rng.Next(3));
    for (int i = 0; i < n_del; ++i) {
      int p = static_cast<int>(rng.Next(kBase));
      if (cur[p].empty() || rng.Next(8) == 0) {
        utext += "-" + PredName(p) + "(" +
                 std::to_string(rng.Next(kDomain) + kDomain) + ", 0).\n";
        continue;
      }
      auto it = cur[p].begin();
      std::advance(it, static_cast<long>(rng.Next(cur[p].size())));
      utext += "-" + PredName(p) + "(" + std::to_string(it->first) +
               ", " + std::to_string(it->second) + ").\n";
      cur[p].erase(it);
    }
    // Occasionally a pattern delete: everything with a given first
    // argument goes (exercises the subsumption expansion).
    if (rng.Next(4) == 0) {
      int p = static_cast<int>(rng.Next(kBase));
      int key = static_cast<int>(rng.Next(kDomain));
      utext += "-" + PredName(p) + "(" + std::to_string(key) + ", W).\n";
      for (auto it = cur[p].begin(); it != cur[p].end();) {
        it = it->first == key ? cur[p].erase(it) : std::next(it);
      }
    }
    // Insertions, duplicates included on purpose (must net to no-ops).
    int n_ins = 1 + static_cast<int>(rng.Next(3));
    for (int i = 0; i < n_ins; ++i) {
      int p = static_cast<int>(rng.Next(kBase));
      Fact fact{static_cast<int>(rng.Next(kDomain)),
                static_cast<int>(rng.Next(kDomain))};
      utext += "+" + PredName(p) + "(" + std::to_string(fact.first) +
               ", " + std::to_string(fact.second) + ").\n";
      cur[p].insert(fact);
    }

    auto result = session.ApplyUpdate(utext);
    ASSERT_TRUE(result.ok())
        << result.status().ToString() << "\nseed " << seed << " batch "
        << b << "\n" << utext;
    *maintained += result->maintained;

    check_all("after", b);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;  // one diverging batch is enough detail to debug from
    }
  }
}

void IvmSeedLoop(uint64_t first, uint64_t last, int threads) {
  // CORAL_IVM_SEED pins the run to one seed for deterministic replay of
  // a CI failure (mirrors CORAL_FAULT_SEED in crash_recovery_test).
  uint64_t maintained = 0;
  if (const char* env = std::getenv("CORAL_IVM_SEED")) {
    uint64_t seed = std::strtoull(env, nullptr, 0);
    ::testing::Test::RecordProperty("ivm_seed", std::to_string(seed));
    RunIvmDifferential(seed, threads, &maintained);
    return;
  }
  for (uint64_t seed = first; seed <= last; ++seed) {
    RunIvmDifferential(seed, threads, &maintained);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
  }
  // The sweep must exercise the incremental path, not just agree by
  // always falling back to invalidation.
  EXPECT_GT(maintained, 0u);
}

TEST(IvmDifferentialTest, UpdateSequencesMatchFromScratch) {
  IvmSeedLoop(10000, 10079, /*threads=*/1);
}

TEST(IvmDifferentialTest, UpdateSequencesMatchFromScratchParallel) {
  IvmSeedLoop(11000, 11059, /*threads=*/4);
}

TEST(VmDifferentialTest, VmInterpreterThreadMatrixMatchesReference) {
  uint64_t vm_apps = 0;
  for (uint64_t seed = 8000; seed <= 8149; ++seed) {
    RunVmDifferential(seed, /*with_negation=*/false, &vm_apps);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The matrix must actually exercise the compiled path, not just agree
  // by everything falling back.
  EXPECT_GT(vm_apps, 0u);
}

TEST(VmDifferentialTest, VmMatrixWithNegationMatchesReference) {
  uint64_t vm_apps = 0;
  for (uint64_t seed = 8500; seed <= 8649; ++seed) {
    RunVmDifferential(seed, /*with_negation=*/true, &vm_apps);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(vm_apps, 0u);
}

// Bytecode round-trip property, fuzzed over the same program generator:
// for every rule version the compiler produces, the textual disassembly
// IS the serialization — compile -> Disassemble -> Deserialize ->
// Disassemble must be a fixed point.
TEST(VmBytecodeRoundTrip, DisassembleDeserializeIsFixedPoint) {
  static const char* kStrategies[] = {"", "@psn.", "@naive.",
                                      "@no_rewriting.", "@magic."};
  uint64_t compiled = 0;
  for (uint64_t seed = 9000; seed <= 9099; ++seed) {
    Lcg rng(seed);
    std::vector<GRule> rules =
        GenProgram(&rng, /*with_negation=*/rng.Next(2) == 1);
    if (rules.empty()) continue;
    Db base = GenBaseFacts(&rng);
    std::string text =
        ProgramText(rules, base, kStrategies[rng.Next(5)]);

    TermFactory factory;
    Parser parser(text, &factory);
    auto prog = parser.ParseProgram();
    ASSERT_TRUE(prog.ok()) << prog.status().ToString() << "\n" << text;
    ASSERT_EQ(prog->modules.size(), 1u);
    const ModuleDecl& decl = prog->modules[0];

    RewriteOptions ropts;  // no builtins, no base cards: defaults
    for (const QueryFormDecl& form : decl.exports) {
      auto rewritten = RewriteModule(decl, form, &factory, ropts);
      if (!rewritten.ok()) {
        // The generator may export a derived predicate it never gave a
        // rule; the rewriter rejects that form and there is nothing to
        // compile — skip it.
        continue;
      }
      vm::CompileEnv cenv;  // default callbacks: nothing external
      vm::ModuleProgram mp = vm::CompileModule(*rewritten, decl, cenv);
      for (const vm::SccPrograms& sp : mp.sccs) {
        for (const auto* table : {&sp.versions, &sp.once}) {
          for (const auto& rp : *table) {
            if (rp == nullptr) continue;
            ++compiled;
            std::string d1 = vm::Disassemble(*rp);
            auto back = vm::Deserialize(d1, &factory);
            ASSERT_TRUE(back.ok()) << back.status().ToString()
                                   << "\nseed " << seed << "\n" << d1;
            EXPECT_EQ(vm::Disassemble(*back), d1)
                << "seed " << seed << "\n" << text;
          }
        }
      }
    }
  }
  // The property must have been exercised on real programs.
  EXPECT_GT(compiled, 100u);
}

// Verifier soundness over the same fuzzed corpus: every program the
// compiler emits must pass the static verifier and the whole-plan audit
// with zero errors (docs/VM.md "Verification") — the verify-after-compile
// gate must never reject legitimate compiler output.
TEST(VmVerifierProperty, CompilerOutputAlwaysVerifies) {
  static const char* kStrategies[] = {"", "@psn.", "@naive.",
                                      "@no_rewriting.", "@magic."};
  uint64_t compiled = 0;
  for (uint64_t seed = 9000; seed <= 9099; ++seed) {
    Lcg rng(seed);
    std::vector<GRule> rules =
        GenProgram(&rng, /*with_negation=*/rng.Next(2) == 1);
    if (rules.empty()) continue;
    Db base = GenBaseFacts(&rng);
    std::string text =
        ProgramText(rules, base, kStrategies[rng.Next(5)]);

    TermFactory factory;
    Parser parser(text, &factory);
    auto prog = parser.ParseProgram();
    ASSERT_TRUE(prog.ok()) << prog.status().ToString() << "\n" << text;
    ASSERT_EQ(prog->modules.size(), 1u);
    const ModuleDecl& decl = prog->modules[0];

    RewriteOptions ropts;
    for (const QueryFormDecl& form : decl.exports) {
      auto rewritten = RewriteModule(decl, form, &factory, ropts);
      if (!rewritten.ok()) continue;  // unrewritable form: nothing compiled
      vm::CompileEnv cenv;
      vm::ModuleProgram mp = vm::CompileModule(*rewritten, decl, cenv);
      vm::AuditOptions opts;
      opts.rewritten = &*rewritten;
      opts.decl = &decl;
      opts.index_plan_authoritative = true;
      vm::ModuleAudit audit = vm::AuditModule(mp, opts);
      EXPECT_TRUE(audit.ok())
          << "seed " << seed << "\n" << audit.ToString() << text;
      EXPECT_EQ(audit.rejected, 0u) << "seed " << seed;
      compiled += audit.verified;
    }
  }
  EXPECT_GT(compiled, 100u);
}

TEST(DifferentialTest, AggregatesMatchReferenceFolds) {
  for (uint64_t seed = 5000; seed <= 5040; ++seed) {
    RunAggregateDifferential(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DifferentialTest, AutoOptimizeOnOffMatchesReference) {
  for (uint64_t seed = 6000; seed <= 6139; ++seed) {
    RunAutoOptimizeDifferential(seed, /*with_negation=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DifferentialTest, AutoOptimizeOnOffWithNegationMatchesReference) {
  for (uint64_t seed = 7000; seed <= 7069; ++seed) {
    RunAutoOptimizeDifferential(seed, /*with_negation=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DifferentialTest, PositiveProgramsMatchReference) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    RunDifferential(seed, /*with_negation=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DifferentialTest, ProgramsWithBaseNegationMatchReference) {
  for (uint64_t seed = 1000; seed <= 1060; ++seed) {
    RunDifferential(seed, /*with_negation=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ParallelDifferentialTest, ThreadMatrixMatchesReference) {
  for (uint64_t seed = 2000; seed <= 2119; ++seed) {
    RunParallelDifferential(seed, /*with_negation=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ParallelDifferentialTest, ThreadMatrixWithNegationMatchesReference) {
  for (uint64_t seed = 3000; seed <= 3099; ++seed) {
    RunParallelDifferential(seed, /*with_negation=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ParallelDifferentialTest, ParallelAnnotationMatchesReference) {
  for (uint64_t seed = 4000; seed <= 4039; ++seed) {
    RunAnnotatedParallelDifferential(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ParallelDifferentialTest, AggregatesUnderParallelEvaluation) {
  for (uint64_t seed = 5000; seed <= 5030; ++seed) {
    RunAggregateDifferential(seed, /*threads=*/4);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------
// Parser robustness + term round-trip
// ---------------------------------------------------------------------

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  TermFactory f;
  Lcg rng(0xfa22);
  const std::string alphabet =
      "abzXY_09 ().,:-?@[]|<>=\\+*/'\"%{}\n\te";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    int len = static_cast<int>(rng.Next(60));
    for (int i = 0; i < len; ++i) {
      input += alphabet[rng.Next(alphabet.size())];
    }
    Parser p(input, &f);
    auto result = p.ParseProgram();  // must return, never crash
    (void)result;
  }
}

TEST(ParserFuzzTest, StructuredMutationsNeverCrash) {
  TermFactory f;
  Lcg rng(0xbeef);
  const std::string base =
      "module m. export p(bf). @psn. p(X, Y) :- e(X, Z), p(Z, Y), "
      "X < 3, not q([a, f(Y)]). end_module. ?- p(1, W).";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input = base;
    int n_mut = 1 + static_cast<int>(rng.Next(4));
    for (int m = 0; m < n_mut; ++m) {
      size_t pos = rng.Next(input.size());
      switch (rng.Next(3)) {
        case 0: input.erase(pos, 1); break;
        case 1: input.insert(pos, 1, "(){}.,@<>"[rng.Next(9)]); break;
        default: input[pos] = static_cast<char>(33 + rng.Next(94));
      }
    }
    Parser p(input, &f);
    auto result = p.ParseProgram();
    (void)result;
  }
}

TEST(TermRoundTripTest, PrintThenParseYieldsSameCanonicalTerm) {
  TermFactory f;
  Lcg rng(0x600d);
  // Random ground terms over ints, doubles, atoms (some quoted), strings,
  // lists and functors.
  std::function<const Arg*(int)> gen = [&](int depth) -> const Arg* {
    switch (rng.Next(depth > 0 ? 7 : 5)) {
      case 6:
        return f.MakeDouble(
            static_cast<double>(static_cast<int64_t>(rng.Next(1 << 30))) /
            (1.0 + static_cast<double>(rng.Next(997))));
      case 0: return f.MakeInt(static_cast<int64_t>(rng.Next(1000)) - 500);
      case 1: return f.MakeAtom("at" + std::to_string(rng.Next(5)));
      case 2: return f.MakeAtom("Odd name-" + std::to_string(rng.Next(3)));
      case 3: return f.MakeString("s\"x\\" + std::to_string(rng.Next(5)));
      case 4: {
        std::vector<const Arg*> elems;
        int n = static_cast<int>(rng.Next(4));
        for (int i = 0; i < n; ++i) elems.push_back(gen(depth - 1));
        return f.MakeList(elems);
      }
      default: {
        const Arg* args[] = {gen(depth - 1), gen(depth - 1)};
        return f.MakeFunctor("fn" + std::to_string(rng.Next(3)), args);
      }
    }
  };
  for (int trial = 0; trial < 2000; ++trial) {
    const Arg* term = gen(3);
    std::string text = term->ToString();
    uint32_t vc = 0;
    auto parsed = Parser::ParseTerm(text, &f, &vc);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(*parsed, term) << text;  // canonical: same node
    EXPECT_EQ(vc, 0u);
  }
}

}  // namespace
}  // namespace coral
