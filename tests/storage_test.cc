// Tests of the EXODUS-substitute storage manager: slotted pages, disk
// manager, buffer pool (pin/unpin/LRU), heap files, B+-tree, catalog,
// WAL transactions and recovery, persistent relations, and end-to-end
// declarative queries over persistent data (paper §2, §3.2, §3.3).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>

#include "src/core/database.h"
#include "src/storage/btree.h"
#include "src/storage/heap_file.h"
#include "src/storage/storage_manager.h"

namespace coral {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("coral_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    prefix_ = (dir_ / "db").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string prefix_;
};

TEST_F(StorageTest, SlottedPageBasics) {
  alignas(8) char frame[kPageSize];
  SlottedPage page(frame);
  page.Init(SlottedPage::kHeapPage);
  std::string rec1 = "hello";
  std::string rec2 = "world!";
  int s1 = page.Insert({rec1.data(), rec1.size()});
  int s2 = page.Insert({rec2.data(), rec2.size()});
  ASSERT_GE(s1, 0);
  ASSERT_GE(s2, 0);
  EXPECT_EQ(std::string(page.Get(s1).data(), page.Get(s1).size()), "hello");
  EXPECT_EQ(std::string(page.Get(s2).data(), page.Get(s2).size()), "world!");
  EXPECT_TRUE(page.Delete(s1));
  EXPECT_FALSE(page.Delete(s1));
  EXPECT_TRUE(page.Get(s1).empty());
  EXPECT_FALSE(page.Get(s2).empty());
}

TEST_F(StorageTest, SlottedPageFillsUp) {
  alignas(8) char frame[kPageSize];
  SlottedPage page(frame);
  page.Init(SlottedPage::kHeapPage);
  std::string rec(100, 'x');
  int count = 0;
  while (page.Insert({rec.data(), rec.size()}) >= 0) ++count;
  // ~8K / (100+4) ≈ 78 records.
  EXPECT_GT(count, 70);
  EXPECT_LT(count, 85);
}

TEST_F(StorageTest, DiskManagerAllocReadWrite) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(prefix_ + ".db").ok());
  auto p0 = disk.AllocatePage();
  auto p1 = disk.AllocatePage();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  char buf[kPageSize] = {0};
  buf[0] = 42;
  ASSERT_TRUE(disk.WritePage(*p1, buf).ok());
  char back[kPageSize];
  ASSERT_TRUE(disk.ReadPage(*p1, back).ok());
  EXPECT_EQ(back[0], 42);
  EXPECT_FALSE(disk.ReadPage(99, back).ok());  // unallocated
}

TEST_F(StorageTest, BufferPoolCachingAndEviction) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(prefix_ + ".db").ok());
  BufferPool pool(&disk, 4);
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) {
    auto g = pool.New();
    ASSERT_TRUE(g.ok());
    g->MarkDirty();
    g->data()[0] = static_cast<char>(i);
    pages.push_back(g->id());
  }
  // Re-read all: half must miss (pool of 4).
  for (int i = 0; i < 8; ++i) {
    auto g = pool.Fetch(pages[i]);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], static_cast<char>(i));
  }
  EXPECT_GT(pool.evictions(), 0u);
  // Repeated access to one page: hits.
  uint64_t before = pool.hits();
  for (int i = 0; i < 5; ++i) {
    auto g = pool.Fetch(pages[7]);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_GE(pool.hits(), before + 4);
}

TEST_F(StorageTest, BufferPoolAllPinnedFails) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(prefix_ + ".db").ok());
  BufferPool pool(&disk, 2);
  auto g1 = pool.New();
  auto g2 = pool.New();
  ASSERT_TRUE(g1.ok() && g2.ok());
  auto g3 = pool.New();  // no frame available
  EXPECT_FALSE(g3.ok());
  g1->Release();
  auto g4 = pool.New();
  EXPECT_TRUE(g4.ok());
}

TEST_F(StorageTest, HeapFileAppendScanDelete) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(prefix_ + ".db").ok());
  BufferPool pool(&disk, 8);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 500; ++i) {
    std::string rec = "record_" + std::to_string(i) + std::string(50, 'p');
    auto rid = heap->Append({rec.data(), rec.size()});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  // Spans multiple pages.
  EXPECT_GT(disk.num_pages(), 3u);
  // Scan sees all.
  int n = 0;
  auto it = heap->Scan();
  std::span<const char> rec;
  Rid rid;
  while (it.Next(&rec, &rid)) ++n;
  EXPECT_EQ(n, 500);
  // Delete every other one.
  for (size_t i = 0; i < rids.size(); i += 2) {
    auto removed = heap->Delete(rids[i]);
    ASSERT_TRUE(removed.ok());
    EXPECT_TRUE(*removed);
  }
  n = 0;
  it = heap->Scan();
  while (it.Next(&rec, &rid)) ++n;
  EXPECT_EQ(n, 250);
  // Reopen from root page and rescan.
  auto reopened = HeapFile::Open(&pool, heap->first_page());
  ASSERT_TRUE(reopened.ok());
  n = 0;
  it = reopened->Scan();
  while (it.Next(&rec, &rid)) ++n;
  EXPECT_EQ(n, 250);
}

TEST_F(StorageTest, BTreeInsertLookupAcrossSplits) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(prefix_ + ".db").ok());
  BufferPool pool(&disk, 32);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  // Enough entries to force multiple levels (keys ~24B, page 8K).
  const int kN = 20000;
  std::mt19937 rng(7);
  std::vector<int> keys(kN);
  for (int i = 0; i < kN; ++i) keys[i] = i;
  std::shuffle(keys.begin(), keys.end(), rng);
  for (int k : keys) {
    char buf[32];
    int len = std::snprintf(buf, sizeof(buf), "key_%08d", k);
    ASSERT_TRUE(
        tree->Insert({buf, static_cast<size_t>(len)},
                     Rid{static_cast<PageId>(k), static_cast<uint16_t>(1)})
            .ok());
  }
  auto count = tree->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<size_t>(kN));
  // Point lookups.
  for (int k : {0, 1, 42, 9999, 19999}) {
    char buf[32];
    int len = std::snprintf(buf, sizeof(buf), "key_%08d", k);
    std::vector<Rid> rids;
    ASSERT_TRUE(tree->Lookup({buf, static_cast<size_t>(len)}, &rids).ok());
    ASSERT_EQ(rids.size(), 1u) << k;
    EXPECT_EQ(rids[0].page, static_cast<PageId>(k));
  }
  // Missing key.
  std::vector<Rid> rids;
  ASSERT_TRUE(tree->Lookup("key_99999999", &rids).ok());
  EXPECT_TRUE(rids.empty());
}

TEST_F(StorageTest, BTreeDuplicateKeysAndDelete) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(prefix_ + ".db").ok());
  BufferPool pool(&disk, 16);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree->Insert("dup", Rid{static_cast<PageId>(i), 0}).ok());
  }
  std::vector<Rid> rids;
  ASSERT_TRUE(tree->Lookup("dup", &rids).ok());
  EXPECT_EQ(rids.size(), 10u);
  auto removed = tree->Delete("dup", Rid{5, 0});
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(*removed);
  rids.clear();
  ASSERT_TRUE(tree->Lookup("dup", &rids).ok());
  EXPECT_EQ(rids.size(), 9u);
  removed = tree->Delete("dup", Rid{5, 0});
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(*removed);  // already gone
}

TEST_F(StorageTest, BTreeRangeScan) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(prefix_ + ".db").ok());
  BufferPool pool(&disk, 16);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 1000; ++i) {
    char buf[16];
    int len = std::snprintf(buf, sizeof(buf), "%05d", i);
    ASSERT_TRUE(tree->Insert({buf, static_cast<size_t>(len)},
                             Rid{static_cast<PageId>(i), 0})
                    .ok());
  }
  std::vector<std::pair<std::string, Rid>> out;
  ASSERT_TRUE(tree->Range("00100", "00199", &out).ok());
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out.front().first, "00100");
  EXPECT_EQ(out.back().first, "00199");
}

TEST_F(StorageTest, TupleCodecRoundTrip) {
  TermFactory f;
  std::vector<const Arg*> args = {
      f.MakeInt(-42),
      f.MakeDouble(2.718),
      f.MakeString("hello world"),
      f.MakeAtom("madison"),
      f.MakeBigInt(*BigInt::FromString("123456789012345678901234567890")),
  };
  const Tuple* t = f.MakeTuple(args);
  auto rec = SerializeTuple(t);
  ASSERT_TRUE(rec.ok());
  auto back = DeserializeTuple(std::span<const char>(rec->data(),
                                                     rec->size()), &f);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);  // hash-consing: same canonical tuple

  // Functor-valued fields are rejected (paper §3.2 restriction).
  const Arg* fa[] = {f.MakeInt(1)};
  std::vector<const Arg*> bad = {f.MakeFunctor("f", fa)};
  EXPECT_FALSE(SerializeTuple(f.MakeTuple(bad)).ok());
  EXPECT_FALSE(PersistentRelation::CanStore(f.MakeTuple(bad)));
  std::vector<const Arg*> nonground = {f.CanonicalVar(0)};
  EXPECT_FALSE(PersistentRelation::CanStore(f.MakeTuple(nonground)));
}

TEST_F(StorageTest, PersistentRelationInsertSelectPersist) {
  TermFactory f;
  {
    auto sm = StorageManager::Open(prefix_, &f);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    auto rel = (*sm)->CreateRelation("edge", 2);
    ASSERT_TRUE(rel.ok());
    for (int i = 0; i < 1000; ++i) {
      const Arg* args[] = {f.MakeInt(i % 100), f.MakeInt(i)};
      EXPECT_TRUE((*rel)->Insert(f.MakeTuple(args)));
    }
    // Duplicate rejected via the primary index.
    const Arg* dup[] = {f.MakeInt(5), f.MakeInt(5)};
    EXPECT_FALSE((*rel)->Insert(f.MakeTuple(dup)));
    EXPECT_EQ((*rel)->size(), 1000u);
    ASSERT_TRUE((*sm)->Close().ok());
  }
  // Reopen: data survives.
  {
    auto sm = StorageManager::Open(prefix_, &f);
    ASSERT_TRUE(sm.ok());
    PersistentRelation* rel = (*sm)->FindRelation("edge", 2);
    ASSERT_NE(rel, nullptr);
    EXPECT_EQ(rel->size(), 1000u);
    // Full scan.
    size_t n = 0;
    auto it = rel->Scan();
    while (it->Next()) ++n;
    EXPECT_EQ(n, 1000u);
    // Indexed select on both columns (primary index).
    BindEnv env(0);
    TermRef pattern[] = {{f.MakeInt(7), nullptr}, {f.MakeInt(7), nullptr}};
    auto sel = rel->Select(pattern);
    size_t hits = 0;
    while (sel->Next()) ++hits;
    EXPECT_EQ(hits, 1u);
    ASSERT_TRUE((*sm)->Close().ok());
  }
}

TEST_F(StorageTest, PersistentSecondaryIndexSelect) {
  TermFactory f;
  {
    auto sm = StorageManager::Open(prefix_, &f);
    ASSERT_TRUE(sm.ok());
    auto rel = (*sm)->CreateRelation("emp", 2);
    ASSERT_TRUE(rel.ok());
    for (int i = 0; i < 500; ++i) {
      const Arg* args[] = {f.MakeInt(i % 10), f.MakeInt(i)};
      (*rel)->Insert(f.MakeTuple(args));
    }
    ASSERT_TRUE((*rel)->AddIndex({0}).ok());
    BindEnv env(1);
    TermRef pattern[] = {{f.MakeInt(3), nullptr},
                         {f.MakeVariable(0, "X"), &env}};
    auto sel = (*rel)->Select(pattern);
    size_t hits = 0;
    while (sel->Next()) ++hits;
    EXPECT_EQ(hits, 50u);
    ASSERT_TRUE((*sm)->Close().ok());
  }
  // Reopen: the secondary index root is in the catalog and keeps serving.
  {
    TermFactory f2;
    auto sm = StorageManager::Open(prefix_, &f2);
    ASSERT_TRUE(sm.ok());
    PersistentRelation* rel = (*sm)->FindRelation("emp", 2);
    ASSERT_NE(rel, nullptr);
    BindEnv env(1);
    TermRef pattern[] = {{f2.MakeInt(7), nullptr},
                         {f2.MakeVariable(0, "X"), &env}};
    auto sel = rel->Select(pattern);
    size_t hits = 0;
    while (sel->Next()) ++hits;
    EXPECT_EQ(hits, 50u);
    // Inserts after reopen keep both indexes in sync.
    const Arg* args[] = {f2.MakeInt(7), f2.MakeInt(5000)};
    EXPECT_TRUE(rel->Insert(f2.MakeTuple(args)));
    sel = rel->Select(pattern);
    hits = 0;
    while (sel->Next()) ++hits;
    EXPECT_EQ(hits, 51u);
    ASSERT_TRUE((*sm)->Close().ok());
  }
}

TEST_F(StorageTest, DeclarativeQueryOverPersistentData) {
  // The architecture test: rules consult persistent relations through the
  // same get-next-tuple interface as in-memory ones (paper Fig. 1 + §2).
  TermFactory* f;
  Database db;
  f = db.factory();
  auto sm = StorageManager::Open(prefix_, f);
  ASSERT_TRUE(sm.ok());
  auto rel = (*sm)->CreateRelation("pedge", 2);
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 20; ++i) {
    const Arg* args[] = {f->MakeAtom("n" + std::to_string(i)),
                         f->MakeAtom("n" + std::to_string(i + 1))};
    (*rel)->Insert(f->MakeTuple(args));
  }
  ASSERT_TRUE((*sm)->AttachTo(&db).ok());
  ASSERT_TRUE(db.Consult(R"(
    module tc.
    export reach(bf).
    reach(X, Y) :- pedge(X, Y).
    reach(X, Y) :- pedge(X, Z), reach(Z, Y).
    end_module.
  )").ok());
  auto res = db.EvalQuery("reach(n0, X)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 20u);
  // Inserting a fact through the Database lands in the persistent store.
  auto q = db.Consult("pedge(n20, n21).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*rel)->size(), 21u);
  ASSERT_TRUE((*sm)->Close().ok());
}

TEST_F(StorageTest, TransactionCommitAndAbort) {
  TermFactory f;
  auto sm = StorageManager::Open(prefix_, &f);
  ASSERT_TRUE(sm.ok());
  auto rel = (*sm)->CreateRelation("t", 1);
  ASSERT_TRUE(rel.ok());

  ASSERT_TRUE((*sm)->Begin().ok());
  const Arg* a1[] = {f.MakeInt(1)};
  EXPECT_TRUE((*rel)->Insert(f.MakeTuple(a1)));
  ASSERT_TRUE((*sm)->Commit().ok());
  EXPECT_EQ((*rel)->size(), 1u);

  ASSERT_TRUE((*sm)->Begin().ok());
  const Arg* a2[] = {f.MakeInt(2)};
  EXPECT_TRUE((*rel)->Insert(f.MakeTuple(a2)));
  ASSERT_TRUE((*sm)->Abort().ok());

  // After abort the second tuple is gone, the first remains.
  PersistentRelation* r = (*sm)->FindRelation("t", 1);
  size_t n = 0;
  auto it = r->Scan();
  const Tuple* t;
  bool saw2 = false;
  while ((t = it->Next()) != nullptr) {
    ++n;
    if (t->arg(0) == f.MakeInt(2)) saw2 = true;
  }
  EXPECT_EQ(n, 1u);
  EXPECT_FALSE(saw2);
  ASSERT_TRUE((*sm)->Close().ok());
}

TEST_F(StorageTest, CrashRecoveryUndoesUncommitted) {
  TermFactory f;
  {
    auto sm = StorageManager::Open(prefix_, &f);
    ASSERT_TRUE(sm.ok());
    auto rel = (*sm)->CreateRelation("t", 1);
    ASSERT_TRUE(rel.ok());
    const Arg* a1[] = {f.MakeInt(1)};
    (*rel)->Insert(f.MakeTuple(a1));
    ASSERT_TRUE((*sm)->SaveCatalog().ok());
    ASSERT_TRUE((*sm)->pool()->FlushAll().ok());

    // Start a transaction, modify, flush pages (simulating arbitrary
    // eviction), then "crash" without commit: skip Close by releasing.
    ASSERT_TRUE((*sm)->Begin().ok());
    const Arg* a2[] = {f.MakeInt(2)};
    (*rel)->Insert(f.MakeTuple(a2));
    ASSERT_TRUE((*sm)->pool()->FlushAll().ok());
    // Simulated crash: drop the file handle without Commit/Close. The
    // dirty pages already hit disk; recovery must undo them.
    (*sm)->SimulateCrash();
  }
  {
    TermFactory f2;
    auto sm = StorageManager::Open(prefix_, &f2);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    PersistentRelation* rel = (*sm)->FindRelation("t", 1);
    ASSERT_NE(rel, nullptr);
    size_t n = 0;
    auto it = rel->Scan();
    const Tuple* t;
    bool saw2 = false;
    while ((t = it->Next()) != nullptr) {
      ++n;
      if (t->arg(0)->ToString() == "2") saw2 = true;
    }
    EXPECT_EQ(n, 1u);
    EXPECT_FALSE(saw2);
    ASSERT_TRUE((*sm)->Close().ok());
  }
}

TEST_F(StorageTest, GetNextTupleCausesPageIO) {
  // Paper §2: a get-next-tuple request on a persistent relation results in
  // page-level I/O through the buffer pool when the page is not cached.
  TermFactory f;
  StorageManager::Options opts;
  opts.pool_frames = 4;  // tiny pool forces misses
  auto sm = StorageManager::Open(prefix_, &f, opts);
  ASSERT_TRUE(sm.ok());
  auto rel = (*sm)->CreateRelation("big", 2);
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 5000; ++i) {
    const Arg* args[] = {f.MakeInt(i), f.MakeInt(i * 7)};
    (*rel)->Insert(f.MakeTuple(args));
  }
  uint64_t misses_before = (*sm)->pool()->misses();
  size_t n = 0;
  auto it = (*rel)->Scan();
  while (it->Next()) ++n;
  EXPECT_EQ(n, 5000u);
  EXPECT_GT((*sm)->pool()->misses(), misses_before);
  ASSERT_TRUE((*sm)->Close().ok());
}

}  // namespace
}  // namespace coral
