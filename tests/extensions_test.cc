// Tests of the optimizer/extensibility features layered on the core:
// join-order selection (@reorder_joins, paper §4.2), user-defined index
// implementations (paper §7.2), rewritten-program listing files (paper
// §2), and user-defined abstract data types flowing through evaluation.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/core/database.h"
#include "src/rel/hash_relation.h"

namespace coral {
namespace {

namespace fs = std::filesystem;

TEST(ReorderJoinsTest, SameAnswersBothOrders) {
  for (bool reorder : {false, true}) {
    Database db;
    std::string mod = std::string(R"(
      module m.
      export ans(bf).
    )") + (reorder ? "@reorder_joins.\n" : "") + R"(
      ans(A, D) :- r1(A, B), r3(C, D), r2(B, C).
      end_module.
    )";
    ASSERT_TRUE(db.Consult(mod).ok());
    ASSERT_TRUE(db.Consult(R"(
      r1(a, 1). r1(a, 2).
      r2(1, x). r2(2, y).
      r3(x, end1). r3(y, end2). r3(z, end3).
    )").ok());
    auto res = db.EvalQuery("ans(a, D)");
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res->rows.size(), 2u) << "reorder=" << reorder;
  }
}

TEST(ReorderJoinsTest, SelectiveLiteralScheduledFirst) {
  // Bad user order: the unselective cross-product literal big(B) comes
  // first; the optimizer must schedule sel(A, C) — which has a bound
  // argument — ahead of it. Verify structurally via the rewritten
  // listing, then check answers.
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module m.
    export q(bf).
    @reorder_joins.
    q(A, C) :- big(B), sel(A, C), gate(C, B).
    end_module.
    sel(k, c1). big(b7). big(b8). gate(c1, b7).
  )").ok());
  auto res = db.EvalQuery("q(k, C)");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows.size(), 1u);
  auto listing = db.modules()->RewrittenListing("m", "q", "bf");
  ASSERT_TRUE(listing.ok());
  // In the answer rule, sel(...) now precedes big(...).
  size_t sel_pos = listing->find("sel(");
  size_t big_pos = listing->find("big(");
  ASSERT_NE(sel_pos, std::string::npos);
  ASSERT_NE(big_pos, std::string::npos);
  EXPECT_LT(sel_pos, big_pos) << *listing;
}

TEST(ReorderJoinsTest, NegationStaysSafe) {
  Database db;
  ASSERT_TRUE(db.Consult(R"(
    module m.
    export ok(f).
    @reorder_joins.
    ok(X) :- not blocked(X), item(X), cheap(X).
    end_module.
    item(a). item(b). cheap(a). cheap(b). blocked(b).
  )").ok());
  auto res = db.EvalQuery("ok(X)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "X = a");
}

// A trivial user-defined index: exact-match on column 0 via a std::map,
// demonstrating that new index implementations plug in without engine
// changes (paper §7.2).
class FirstColumnMapIndex : public Index {
 public:
  void Add(const Tuple* t, uint32_t sub) override {
    if (t->arg(0)->IsGround()) {
      by_uid_[t->arg(0)->uid()].push_back(Posting{sub, t});
    } else {
      var_.push_back(Posting{sub, t});
    }
  }
  bool TryLookup(std::span<const TermRef> pattern, uint32_t from,
                 uint32_t to, std::vector<Posting>* out) override {
    (void)from;
    (void)to;  // this toy index ignores mark ranges: superset is allowed
    if (pattern.empty()) return false;
    TermRef r = Deref(pattern[0].term, pattern[0].env);
    if (!r.term->IsGround()) return false;
    auto it = by_uid_.find(r.term->uid());
    if (it != by_uid_.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
    out->insert(out->end(), var_.begin(), var_.end());
    ++lookups_;
    return true;
  }
  int key_width() const override { return 1; }
  int lookups() const { return lookups_; }

 private:
  std::unordered_map<uint64_t, std::vector<Posting>> by_uid_;
  std::vector<Posting> var_;
  int lookups_ = 0;
};

TEST(CustomIndexTest, PlugsIntoHashRelation) {
  TermFactory f;
  HashRelation rel("p", 2);
  for (int i = 0; i < 100; ++i) {
    const Arg* args[] = {f.MakeInt(i % 10), f.MakeInt(i)};
    rel.Insert(f.MakeTuple(args));
  }
  auto idx = std::make_unique<FirstColumnMapIndex>();
  FirstColumnMapIndex* raw = idx.get();
  rel.AddCustomIndex(std::move(idx));  // backfills the 100 tuples

  BindEnv env(1);
  TermRef pattern[] = {{f.MakeInt(3), nullptr},
                       {f.MakeVariable(0, "X"), &env}};
  auto it = rel.Select(pattern);
  size_t n = 0;
  while (it->Next()) ++n;
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(raw->lookups(), 1);  // the engine used the custom index
}

TEST(ListingFilesTest, RewrittenProgramStoredAsTextFile) {
  fs::path dir = fs::path(::testing::TempDir()) / "coral_listings";
  fs::create_directories(dir);
  Database db;
  db.set_listing_dir(dir.string());
  ASSERT_TRUE(db.Consult(R"(
    module anc.
    export anc(bf).
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
    par(a, b).
  )").ok());
  ASSERT_TRUE(db.EvalQuery("anc(a, Y)").ok());
  fs::path file = dir / "anc.anc.bf.crl";
  ASSERT_TRUE(fs::exists(file)) << file;
  std::ifstream in(file);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("m_anc@bf"), std::string::npos);
  fs::remove_all(dir);
}

TEST(UserAdtTest, CustomTypeFlowsThroughRules) {
  // A user ADT inserted as base data participates in joins and answers
  // (paper §7.1: the evaluation system manipulates objects only through
  // the virtual interface).
  class Money : public UserArg {
   public:
    Money(uint32_t tag, uint64_t uid, uint64_t hash, int64_t cents)
        : UserArg(tag, uid, hash), cents_(cents) {}
    bool Equals(const Arg& o) const override {
      return o.kind() == ArgKind::kUser &&
             static_cast<const Money&>(o).cents_ == cents_;
    }
    void Print(std::ostream& os) const override {
      os << "$" << cents_ / 100 << "." << (cents_ % 100) / 10
         << (cents_ % 10);
    }
    int64_t cents() const { return cents_; }

   private:
    int64_t cents_;
  };

  Database db;
  TermFactory* f = db.factory();
  PredRef price{f->symbols().Intern("price"), 2};
  Relation* rel = db.GetOrCreateBaseRelation(price);
  const Money* m1 = f->NewUser<Money>(7, HashMix64(1999), 1999);
  const Money* m2 = f->NewUser<Money>(7, HashMix64(250), 250);
  {
    const Arg* a1[] = {f->MakeAtom("book"), m1};
    const Arg* a2[] = {f->MakeAtom("pen"), m2};
    rel->Insert(f->MakeTuple(a1));
    rel->Insert(f->MakeTuple(a2));
  }
  auto res = db.EvalQuery("price(book, P)");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "P = $19.99");
  // Join through the ADT value: same Money value matches.
  const Money* m1b = f->NewUser<Money>(7, HashMix64(1999), 1999);
  {
    const Arg* a3[] = {f->MakeAtom("tome"), m1b};
    rel->Insert(f->MakeTuple(a3));
  }
  auto res2 = db.EvalQuery("price(book, P), price(X, P)");
  ASSERT_TRUE(res2.ok());
  // book matches itself and tome (equal Money), not pen.
  EXPECT_EQ(res2->rows.size(), 2u);
}

}  // namespace
}  // namespace coral
