// Unit tests for the language front end: lexer, parser, AST printing.

#include <gtest/gtest.h>

#include <string>

#include "src/lang/lexer.h"
#include "src/lang/parser.h"

namespace coral {
namespace {

class LangTest : public ::testing::Test {
 protected:
  Program MustParse(const std::string& src) {
    Parser p(src, &f);
    auto result = p.ParseProgram();
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << src;
    return result.ok() ? std::move(result).value() : Program{};
  }
  Status ParseError(const std::string& src) {
    Parser p(src, &f);
    auto result = p.ParseProgram();
    EXPECT_FALSE(result.ok()) << "expected failure for: " << src;
    return result.ok() ? Status::OK() : result.status();
  }

  TermFactory f;
};

TEST_F(LangTest, LexerBasics) {
  Lexer lex("path(X, 1) :- edge(X, 2.5), \"str\" % comment\n .");
  auto toks = lex.Tokenize();
  ASSERT_TRUE(toks.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kIdent);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
  // Comment swallowed; string recognized.
  bool has_string = false;
  for (const Token& t : *toks) has_string |= t.kind == TokenKind::kString;
  EXPECT_TRUE(has_string);
}

TEST_F(LangTest, LexerDotVersusDecimal) {
  Lexer lex("p(1.5). q(2).");
  auto toks = lex.Tokenize();
  ASSERT_TRUE(toks.ok());
  int doubles = 0, ints = 0, dots = 0;
  for (const Token& t : *toks) {
    if (t.kind == TokenKind::kDouble) ++doubles;
    if (t.kind == TokenKind::kInteger) ++ints;
    if (t.kind == TokenKind::kDot) ++dots;
  }
  EXPECT_EQ(doubles, 1);
  EXPECT_EQ(ints, 1);
  EXPECT_EQ(dots, 2);
}

TEST_F(LangTest, LexerOperators) {
  Lexer lex("X = Y, X \\= Z, A < B, A =< B, A >= B, A > B, C != D");
  auto toks = lex.Tokenize();
  ASSERT_TRUE(toks.ok());
  int neq = 0;
  for (const Token& t : *toks) {
    if (t.kind == TokenKind::kNotEquals) ++neq;
  }
  EXPECT_EQ(neq, 2);
}

TEST_F(LangTest, LexerErrors) {
  EXPECT_FALSE(Lexer("\"unterminated").Tokenize().ok());
  EXPECT_FALSE(Lexer("p :~ q").Tokenize().ok());
  EXPECT_FALSE(Lexer("p # q").Tokenize().ok());
}

TEST_F(LangTest, ParseFact) {
  Program prog = MustParse("edge(1, 2).\nedge(a, \"b\").\n");
  ASSERT_EQ(prog.top_facts.size(), 2u);
  EXPECT_EQ(prog.top_facts[0].ToString(), "edge(1,2).");
  EXPECT_EQ(prog.top_facts[1].ToString(), "edge(a,\"b\").");
}

TEST_F(LangTest, ParseNonGroundFact) {
  Program prog = MustParse("likes(X, icecream).");
  ASSERT_EQ(prog.top_facts.size(), 1u);
  EXPECT_EQ(prog.top_facts[0].var_count, 1u);
  EXPECT_EQ(prog.top_facts[0].head.args[0]->kind(), ArgKind::kVariable);
}

TEST_F(LangTest, ParseModuleWithRules) {
  Program prog = MustParse(R"(
    module ancestors.
    export anc(bf).
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  ASSERT_EQ(prog.modules.size(), 1u);
  const ModuleDecl& m = prog.modules[0];
  EXPECT_EQ(m.name, "ancestors");
  ASSERT_EQ(m.exports.size(), 1u);
  EXPECT_EQ(m.exports[0].pred->name, "anc");
  EXPECT_EQ(m.exports[0].adornment, "bf");
  ASSERT_EQ(m.rules.size(), 2u);
  EXPECT_EQ(m.rules[1].ToString(), "anc(X,Y) :- par(X,Z), anc(Z,Y).");
  EXPECT_EQ(m.rules[1].var_count, 3u);
}

TEST_F(LangTest, ParseMultipleQueryForms) {
  Program prog = MustParse(R"(
    module m. export p(bf, ff). p(X,X) :- q(X). end_module.
  )");
  ASSERT_EQ(prog.modules[0].exports.size(), 2u);
  EXPECT_EQ(prog.modules[0].exports[1].adornment, "ff");
}

TEST_F(LangTest, VariableScopingPerClause) {
  Program prog = MustParse(R"(
    module m. export p(ff).
    p(X, Y) :- q(X, Y).
    p(Y, X) :- r(X, Y).
    end_module.
  )");
  const auto& r0 = prog.modules[0].rules[0];
  const auto& r1 = prog.modules[0].rules[1];
  // In rule 1, Y occurs first so it gets slot 0.
  EXPECT_EQ(ArgCast<Variable>(r0.head.args[0])->slot(), 0u);
  EXPECT_EQ(ArgCast<Variable>(r1.head.args[0])->slot(), 0u);
  EXPECT_EQ(r1.var_names[0], "Y");
}

TEST_F(LangTest, AnonymousVariablesAreDistinct) {
  Program prog = MustParse("module m. p(X) :- q(X, _, _). end_module.");
  const Rule& r = prog.modules[0].rules[0];
  EXPECT_EQ(r.var_count, 3u);
  EXPECT_NE(ArgCast<Variable>(r.body[0].args[1])->slot(),
            ArgCast<Variable>(r.body[0].args[2])->slot());
}

TEST_F(LangTest, ParseNegationAndComparisons) {
  Program prog = MustParse(R"(
    module m. export p(f).
    p(X) :- q(X), not r(X), X < 10, X \= 3.
    end_module.
  )");
  const Rule& r = prog.modules[0].rules[0];
  ASSERT_EQ(r.body.size(), 4u);
  EXPECT_FALSE(r.body[0].negated);
  EXPECT_TRUE(r.body[1].negated);
  EXPECT_EQ(r.body[2].pred->name, "<");
  EXPECT_EQ(r.body[3].pred->name, "\\=");
  EXPECT_EQ(r.body[2].ToString(), "X < 10");
}

TEST_F(LangTest, ParseArithmeticExpressions) {
  Program prog = MustParse(R"(
    module m. p(X, C1) :- q(X, C), C1 = C + 2 * X - 1. end_module.
  )");
  const Rule& r = prog.modules[0].rules[0];
  const Literal& assign = r.body[1];
  EXPECT_EQ(assign.pred->name, "=");
  // Precedence: (C + (2*X)) - 1.
  EXPECT_EQ(assign.args[1]->ToString(), "'-'('+'(C,'*'(2,X)),1)");
}

TEST_F(LangTest, ParseListsAndFunctors) {
  Program prog = MustParse(
      "module m. p(P1) :- append([edge(X, Y)], P, P1). end_module.");
  const Literal& lit = prog.modules[0].rules[0].body[0];
  EXPECT_EQ(lit.pred->name, "append");
  EXPECT_EQ(lit.args[0]->ToString(), "[edge(X,Y)]");
  Program prog2 = MustParse("p([1, 2 | T]).");
  EXPECT_EQ(prog2.top_facts[0].head.args[0]->ToString(), "[1,2|T]");
}

TEST_F(LangTest, ParseAggregationHead) {
  // The paper's Fig. 3: s_p_length(X,Y,min(<C>)) :- p(X,Y,P,C).
  Program prog = MustParse(R"(
    module m.
    s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
    end_module.
  )");
  const Rule& r = prog.modules[0].rules[0];
  const Arg* agg = r.head.args[2];
  ASSERT_EQ(agg->kind(), ArgKind::kAtomOrFunctor);
  const auto* fn = ArgCast<FunctorArg>(agg);
  EXPECT_EQ(fn->name(), "min");
  EXPECT_EQ(fn->arg(0)->ToString(), "'$group'(C)");
}

TEST_F(LangTest, ParseSetGroupingHead) {
  Program prog =
      MustParse("module m. children(X, <Y>) :- par(X, Y). end_module.");
  const Arg* grouped = prog.modules[0].rules[0].head.args[1];
  EXPECT_EQ(grouped->ToString(), "'$group'(Y)");
}

TEST_F(LangTest, ParseBigIntegerLiteral) {
  Program prog = MustParse("big(123456789012345678901234567890).");
  EXPECT_EQ(prog.top_facts[0].head.args[0]->kind(), ArgKind::kBigInt);
}

TEST_F(LangTest, ParseNegativeNumbers) {
  Program prog = MustParse("p(-5, -2.5).");
  EXPECT_EQ(prog.top_facts[0].head.args[0]->ToString(), "-5");
  EXPECT_EQ(prog.top_facts[0].head.args[1]->ToString(), "-2.5");
}

TEST_F(LangTest, ParseQuery) {
  Program prog = MustParse("?- path(1, X), X < 5.");
  ASSERT_EQ(prog.queries.size(), 1u);
  EXPECT_EQ(prog.queries[0].body.size(), 2u);
  EXPECT_EQ(prog.queries[0].ToString(), "?- path(1,X), X < 5.");
}

TEST_F(LangTest, ParseModuleAnnotations) {
  Program prog = MustParse(R"(
    module m.
    export p(bf).
    @pipelining.
    @save_module.
    @lazy_eval.
    @ordered_search.
    @psn.
    @no_rewriting.
    @multiset p.
    p(X, Y) :- e(X, Y).
    end_module.
  )");
  const ModuleDecl& m = prog.modules[0];
  EXPECT_EQ(m.eval_mode, EvalMode::kPipelined);
  EXPECT_TRUE(m.save_module);
  EXPECT_TRUE(m.lazy_eval);
  EXPECT_TRUE(m.ordered_search);
  EXPECT_EQ(m.fixpoint, FixpointKind::kPredicateSemiNaive);
  EXPECT_EQ(m.rewrite, RewriteKind::kNone);
  ASSERT_EQ(m.multiset_preds.size(), 1u);
  EXPECT_EQ(m.multiset_preds[0]->name, "p");
}

TEST_F(LangTest, ParseAggregateSelectionAnnotation) {
  // Verbatim from the paper's Fig. 3 discussion.
  Program prog = MustParse(R"(
    module sp.
    @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
    @aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
    p(X, Y) :- e(X, Y).
    end_module.
  )");
  ASSERT_EQ(prog.modules[0].agg_selections.size(), 2u);
  const AggSelDecl& d0 = prog.modules[0].agg_selections[0];
  EXPECT_EQ(d0.pred->name, "p");
  EXPECT_EQ(d0.kind, AggregateSelection::Kind::kMin);
  EXPECT_EQ(d0.pattern.size(), 4u);
  EXPECT_EQ(d0.group_args.size(), 2u);
  EXPECT_EQ(d0.var_count, 4u);
  const AggSelDecl& d1 = prog.modules[0].agg_selections[1];
  EXPECT_EQ(d1.kind, AggregateSelection::Kind::kAny);
  EXPECT_EQ(d1.group_args.size(), 3u);
}

TEST_F(LangTest, ParseMakeIndexAnnotations) {
  // Argument-form and the paper's pattern-form example (§5.5.1).
  Program prog = MustParse(R"(
    @make_index edge(X, Y) (X).
    @make_index emp(Name, addr(Street, City)) (Name, City).
  )");
  ASSERT_EQ(prog.top_indexes.size(), 2u);
  EXPECT_TRUE(prog.top_indexes[0].argument_form);
  EXPECT_EQ(prog.top_indexes[0].cols, std::vector<uint32_t>{0});
  EXPECT_FALSE(prog.top_indexes[1].argument_form);
  EXPECT_EQ(prog.top_indexes[1].key_slots.size(), 2u);
}

TEST_F(LangTest, ParseErrors) {
  EXPECT_FALSE(ParseError("p(X) :- q(X).").ok());  // rule outside module
  EXPECT_FALSE(ParseError("module m. p(X).").ok());  // missing end_module
  EXPECT_FALSE(  // bad adornment
      ParseError("module m. export p(bx). end_module.").ok());
  EXPECT_FALSE(  // unknown annotation
      ParseError("module m. @frobnicate. end_module.").ok());
  EXPECT_FALSE(ParseError("p(1, .").ok());     // malformed term
  EXPECT_FALSE(ParseError("not p(1).").ok());  // negated fact head
  EXPECT_FALSE(  // non-variable index key
      ParseError("@make_index e(X,Y)(f(X)).").ok());
  EXPECT_FALSE(  // module-only annotation at top level
      ParseError("@pipelining.").ok());
}

TEST_F(LangTest, ParseTermHelper) {
  uint32_t vc = 0;
  auto t = Parser::ParseTerm("f(X, [1, 2], \"s\")", &f, &vc);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->ToString(), "f(X,[1,2],\"s\")");
  EXPECT_EQ(vc, 1u);
  EXPECT_FALSE(Parser::ParseTerm("f(1) extra", &f, &vc).ok());
}

TEST_F(LangTest, ZeroArityPredicates) {
  Program prog = MustParse(R"(
    module m.
    export alarm(), ok(b).
    alarm() :- bad(X).
    ok(X) :- not alarm(), good(X).
    end_module.
    ?- alarm().
  )");
  const ModuleDecl& m = prog.modules[0];
  ASSERT_EQ(m.exports.size(), 2u);
  EXPECT_EQ(m.exports[0].adornment, "");
  EXPECT_EQ(m.rules[0].head.args.size(), 0u);
  EXPECT_TRUE(m.rules[1].body[0].negated);
  EXPECT_EQ(prog.queries[0].body[0].args.size(), 0u);
}

TEST_F(LangTest, MultiPredicateExport) {
  Program prog = MustParse(R"(
    module m.
    export p(bf, ff), q(b), r().
    p(X, X) :- s(X). q(X) :- s(X). r() :- s(_).
    end_module.
  )");
  ASSERT_EQ(prog.modules[0].exports.size(), 4u);
  EXPECT_EQ(prog.modules[0].exports[0].pred->name, "p");
  EXPECT_EQ(prog.modules[0].exports[2].pred->name, "q");
  EXPECT_EQ(prog.modules[0].exports[3].adornment, "");
}

TEST_F(LangTest, NewStrategyAnnotations) {
  Program prog = MustParse(R"(
    module m.
    export p(bf).
    @factoring.
    @reorder_joins.
    @explain.
    @eager.
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    end_module.
  )");
  const ModuleDecl& m = prog.modules[0];
  EXPECT_EQ(m.rewrite, RewriteKind::kFactoring);
  EXPECT_TRUE(m.reorder_joins);
  EXPECT_TRUE(m.explain);
  EXPECT_TRUE(m.eager);
}

TEST_F(LangTest, ShortestPathProgramFromFigure3Parses) {
  // The full program of Fig. 3 (with arithmetic spelled out).
  Program prog = MustParse(R"(
    module s_p.
    export s_p(bfff).
    @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
    s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
    s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
    p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                       append([edge(Z, Y)], P, P1), C1 = C + EC.
    p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
    end_module.
  )");
  ASSERT_EQ(prog.modules.size(), 1u);
  EXPECT_EQ(prog.modules[0].rules.size(), 4u);
  EXPECT_EQ(prog.modules[0].agg_selections.size(), 1u);
}

}  // namespace
}  // namespace coral
