// In-process tests of the query server stack: the JSON codec, the
// admission queue's shed/drain behavior, and a real Server instance
// driven over loopback sockets with both wire framings (JSONL and
// HTTP one-shot). The cross-process path is tools/server_e2e.sh.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/server/admission.h"
#include "src/server/json.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/util/sync.h"

namespace coral::server {
namespace {

// ---- JSON codec ------------------------------------------------------------

TEST(JsonTest, ParsesNestedDocument) {
  auto parsed = ParseJson(
      R"({"op":"query","q":"?- p(X).","n":42,"neg":-7,"f":1.5,)"
      R"("flag":true,"null":null,"arr":[1,"two",{}],"obj":{"k":"v"}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = parsed.value();
  EXPECT_EQ(v.GetString("op"), "query");
  EXPECT_EQ(v.GetString("q"), "?- p(X).");
  EXPECT_EQ(v.GetInt("n"), 42);
  EXPECT_EQ(v.GetInt("neg"), -7);
  EXPECT_TRUE(v.Find("flag")->bool_value);
  EXPECT_EQ(v.Find("arr")->array.size(), 3u);
  EXPECT_EQ(v.Find("obj")->GetString("k"), "v");
}

TEST(JsonTest, EscapesRoundTrip) {
  std::string nasty = "a\"b\\c\nd\te\rf";
  std::string doc = JsonWriter().Field("s", nasty).Build();
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << doc;
  EXPECT_EQ(parsed.value().GetString("s"), nasty);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson(R"({"a":})").ok());
  EXPECT_FALSE(ParseJson(R"({"a":1} trailing)").ok());
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson(R"({"s":"unterminated})").ok());
}

// ---- admission queue -------------------------------------------------------

TEST(AdmissionTest, ShedsWhenQueueFull) {
  AdmissionQueue queue(/*max_inflight=*/1, /*max_queue=*/1);
  Mutex mu;
  CondVar cv;
  bool release = false;
  std::atomic<int> ran{0};

  // Occupy the single worker with a job that blocks until released.
  ASSERT_TRUE(queue
                  .Submit([&] {
                    MutexLock lock(&mu);
                    while (!release) cv.Wait(mu);
                    ran.fetch_add(1);
                  })
                  .ok());
  // Give the worker time to dequeue the blocker so the queue is empty.
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Status probe = queue.Submit([&] { ran.fetch_add(1); });
    if (probe.ok()) break;  // queue slot taken: worker picked up blocker
    ASSERT_EQ(probe.code(), StatusCode::kUnavailable);
  }
  // Queue now holds one waiter; the next submission must shed.
  Status shed = queue.Submit([&] { ran.fetch_add(1); });
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);

  {
    MutexLock lock(&mu);
    release = true;
  }
  cv.NotifyAll();
  queue.Shutdown();  // drains the queued waiter before joining
  EXPECT_EQ(ran.load(), 2);
}

TEST(AdmissionTest, RefusesAfterShutdown) {
  AdmissionQueue queue(2, 8);
  queue.Shutdown();
  Status after = queue.Submit([] {});
  EXPECT_EQ(after.code(), StatusCode::kUnavailable);
}

// ---- protocol dispatch (no sockets) ---------------------------------------

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() {
    ctx_.db = &db_;
    ctx_.metrics = &metrics_;
  }
  Database db_;
  obs::ServerMetrics metrics_;
  ServerContext ctx_;
};

TEST_F(ProtocolTest, QueryConsultBindRoundTrip) {
  ClientSession session(&ctx_);
  std::string consult = session.Handle(
      JsonWriter()
          .Field("op", "consult")
          .Field("program", "edge(1, 2).\nedge(1, 3).\n")
          .Build());
  EXPECT_NE(consult.find("\"ok\":true"), std::string::npos) << consult;

  std::string bind = session.Handle(
      R"({"op":"bind","name":"src","value":"1"})");
  EXPECT_NE(bind.find("\"ok\":true"), std::string::npos);

  std::string query = session.Handle(
      R"({"op":"query","q":"?- edge($src, X)."})");
  EXPECT_NE(query.find("\"ok\":true"), std::string::npos) << query;
  EXPECT_NE(query.find("\"count\":2"), std::string::npos) << query;

  std::string load = session.Handle(
      R"({"op":"load","facts":"edge(2, 3)."})");
  EXPECT_NE(load.find("\"inserted\":1"), std::string::npos) << load;

  std::string stats = session.Handle(R"({"op":"stats"})");
  EXPECT_NE(stats.find("\"queries\":1"), std::string::npos) << stats;

  std::string bad = session.Handle("this is not json");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos);

  std::string close = session.Handle(R"({"op":"close"})");
  EXPECT_TRUE(session.closed());
  EXPECT_EQ(metrics_.queries(), 1u);
  EXPECT_GE(metrics_.errors(), 1u);
}

// ---- full server over loopback --------------------------------------------

int ConnectLoopback(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool RecvLine(int fd, std::string* buf, std::string* line) {
  while (true) {
    size_t nl = buf->find('\n');
    if (nl != std::string::npos) {
      *line = buf->substr(0, nl);
      buf->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf->append(chunk, static_cast<size_t>(n));
  }
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Consult("module paths.\n"
                            "export path(bf, ff).\n"
                            "path(X, Y) :- edge(X, Y).\n"
                            "path(X, Z) :- path(X, Y), edge(Y, Z).\n"
                            "end_module.\n"
                            "edge(1, 2). edge(2, 3). edge(3, 4).\n")
                    .ok());
    ServerOptions opts;
    opts.port = 0;
    opts.max_inflight = 4;
    opts.max_queue = 16;
    server_ = std::make_unique<Server>(&db_, opts);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  Database db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, JsonlSessionLifecycle) {
  int fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  std::string buf, line;

  ASSERT_TRUE(SendAll(fd, "{\"op\":\"ping\"}\n"));
  ASSERT_TRUE(RecvLine(fd, &buf, &line));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);

  // Pipelined requests answer in order on one connection.
  ASSERT_TRUE(SendAll(fd,
                      "{\"op\":\"query\",\"q\":\"?- path(1, X).\"}\n"
                      "{\"op\":\"query\",\"q\":\"?- path(2, X).\"}\n"));
  ASSERT_TRUE(RecvLine(fd, &buf, &line));
  EXPECT_NE(line.find("\"count\":3"), std::string::npos) << line;
  ASSERT_TRUE(RecvLine(fd, &buf, &line));
  EXPECT_NE(line.find("\"count\":2"), std::string::npos) << line;

  ASSERT_TRUE(SendAll(fd, "{\"op\":\"close\"}\n"));
  ASSERT_TRUE(RecvLine(fd, &buf, &line));
  EXPECT_NE(line.find("\"closed\":true"), std::string::npos);
  close(fd);
}

TEST_F(ServerTest, ConcurrentClientsDuringWriterCommits) {
  constexpr int kClients = 8;
  constexpr int kQueriesEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &failures] {
      int fd = ConnectLoopback(server_->port());
      if (fd < 0) {
        failures.fetch_add(1);
        return;
      }
      std::string buf, line;
      for (int i = 0; i < kQueriesEach; ++i) {
        if (!SendAll(fd, "{\"op\":\"query\",\"q\":\"?- path(1, X).\"}\n") ||
            !RecvLine(fd, &buf, &line) ||
            line.find("\"ok\":true") == std::string::npos) {
          failures.fetch_add(1);
          break;
        }
      }
      close(fd);
    });
  }
  // Writer commits land mid-flight; the chain only grows, so answer
  // counts grow monotonically and every response stays well-formed.
  for (int b = 0; b < 10; ++b) {
    std::string fact =
        "edge(" + std::to_string(4 + b) + ", " + std::to_string(5 + b) +
        ").\n";
    ASSERT_TRUE(db_.Consult(fact).ok());
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->metrics()->queries(),
            static_cast<uint64_t>(kClients * kQueriesEach));
}

TEST_F(ServerTest, HttpOneShotStatsAndQuery) {
  int fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /stats HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"open_sessions\""), std::string::npos);

  fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  std::string body = "{\"op\":\"query\",\"q\":\"?- path(1, X).\"}";
  std::string request = "POST /query HTTP/1.1\r\nHost: x\r\n"
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n\r\n" + body;
  ASSERT_TRUE(SendAll(fd, request));
  response.clear();
  while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  EXPECT_NE(response.find("\"count\":3"), std::string::npos) << response;
}

TEST_F(ServerTest, DeadlineExceededOverTheWire) {
  // A cyclic inequality chain over a wide fact base: unsatisfiable but
  // not statically provable, and every filter needs two bound variables,
  // so the join reorderer cannot short-circuit — the enumeration blows
  // the 10 ms budget.
  std::string wide;
  for (int i = 0; i < 48; ++i) {
    wide += "wide(" + std::to_string(i) + ").\n";
  }
  ASSERT_TRUE(db_.Consult(wide).ok());

  int fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  std::string buf, line;
  ASSERT_TRUE(SendAll(fd, "{\"op\":\"deadline\",\"ms\":10}\n"));
  ASSERT_TRUE(RecvLine(fd, &buf, &line));
  ASSERT_TRUE(SendAll(
      fd,
      "{\"op\":\"query\",\"q\":"
      "\"?- wide(A), wide(B), wide(C), wide(D), "
      "A < B, B < C, C < D, D < A.\"}\n"));
  ASSERT_TRUE(RecvLine(fd, &buf, &line));
  EXPECT_NE(line.find("DeadlineExceeded"), std::string::npos) << line;
  close(fd);
  EXPECT_GE(server_->metrics()->timeouts(), 1u);
}

TEST_F(ServerTest, StopWithConnectedClientsIsClean) {
  int fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  std::string buf, line;
  ASSERT_TRUE(SendAll(fd, "{\"op\":\"ping\"}\n"));
  ASSERT_TRUE(RecvLine(fd, &buf, &line));
  server_->Stop();  // idempotent with TearDown; client still connected
  close(fd);
}

}  // namespace
}  // namespace coral::server
