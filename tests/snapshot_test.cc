// Concurrency tests for the session/snapshot layer: N reader sessions
// querying while M writer commits land must each see a result equal to
// some from-scratch evaluation at a commit boundary (snapshot isolation
// — never a torn read in the middle of a batch), deadlines must abort
// runaway queries, and Database teardown must be safe with observers
// registered. Run under CORAL_SANITIZE="thread" in the CI thread matrix,
// these tests are the data-race harness for the commit/publish protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/core/session.h"
#include "src/obs/trace.h"

namespace coral {
namespace {

std::string PathModule() {
  return "module paths.\n"
         "export path(bf, ff).\n"
         "path(X, Y) :- edge(X, Y).\n"
         "path(X, Z) :- path(X, Y), edge(Y, Z).\n"
         "end_module.\n";
}

std::string EdgeBatch(int from, int count) {
  std::string out;
  for (int i = from; i < from + count; ++i) {
    out += "edge(" + std::to_string(i) + ", " + std::to_string(i + 1) +
           ").\n";
  }
  return out;
}

// Readers see some commit-boundary state, verified against from-scratch
// evaluations: a chain grows in batches of kBatch edges; every reader
// answer count must equal the count a fresh database produces at one of
// the boundaries.
TEST(SnapshotTest, ReadersSeeCommitBoundariesOnly) {
  constexpr int kBatches = 6;
  constexpr int kBatch = 10;
  constexpr int kReaders = 4;

  // From-scratch reference: answer counts at every commit boundary.
  std::set<size_t> boundary_counts;
  for (int b = 1; b <= kBatches; ++b) {
    Database fresh;
    ASSERT_TRUE(fresh.Consult(PathModule()).ok());
    ASSERT_TRUE(fresh.Consult(EdgeBatch(1, b * kBatch)).ok());
    auto result = fresh.EvalQuery("?- path(1, X).");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    boundary_counts.insert(result->rows.size());
  }
  ASSERT_EQ(boundary_counts.size(), kBatches);  // distinct per boundary

  Database db;
  ASSERT_TRUE(db.Consult(PathModule()).ok());
  ASSERT_TRUE(db.Consult(EdgeBatch(1, kBatch)).ok());

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &done, &torn, &boundary_counts] {
      while (!done.load(std::memory_order_acquire)) {
        Session session(&db);
        auto result = session.EvalQuery("?- path(1, X).");
        if (!result.ok()) {
          ADD_FAILURE() << result.status().ToString();
          torn.fetch_add(1);
          return;
        }
        if (boundary_counts.count(result->rows.size()) == 0) {
          torn.fetch_add(1);
        }
      }
    });
  }

  // Writer: commit the remaining batches, one Consult per boundary.
  for (int b = 1; b < kBatches; ++b) {
    auto committed = db.Consult(EdgeBatch(1 + b * kBatch, kBatch));
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0)
      << "a reader observed a state not matching any commit boundary";
}

// Same discipline on direct base-relation queries (no module): counts
// must be multiples of the batch size.
TEST(SnapshotTest, BaseRelationScansAreSnapshotted) {
  constexpr int kBatches = 5;
  constexpr int kBatch = 50;
  Database db;
  ASSERT_TRUE(db.Consult(EdgeBatch(1, kBatch)).ok());

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      Session session(&db);
      auto result = session.EvalQuery("?- edge(X, Y).");
      if (!result.ok()) {
        ADD_FAILURE() << result.status().ToString();
        return;
      }
      if (result->rows.size() % kBatch != 0) torn.fetch_add(1);
    }
  });
  for (int b = 1; b < kBatches; ++b) {
    ASSERT_TRUE(db.Consult(EdgeBatch(1 + b * kBatch, kBatch)).ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(SnapshotTest, SessionReadsItsOwnWritesAfterConsult) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(session.Consult("edge(1, 2).\nedge(2, 3).\n").ok());
  auto result = session.EvalQuery("?- edge(X, Y).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);

  // A second session holds its snapshot across the first one's commit
  // until it refreshes.
  Session other(&db);
  auto before = other.EvalQuery("?- edge(X, Y).");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(session.Consult("edge(3, 4).\n").ok());
  auto stale = other.EvalQuery("?- edge(X, Y).");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->rows.size(), before->rows.size());
  other.Refresh();
  auto fresh = other.EvalQuery("?- edge(X, Y).");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows.size(), 3u);
}

TEST(SnapshotTest, LoadFactsCountsNewFacts) {
  Database db;
  Session session(&db);
  auto first = session.LoadFacts("p(1). p(2). p(3).");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value(), 3u);
  auto dup = session.LoadFacts("p(2). p(4).");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup.value(), 1u);  // p(2) already present
  auto rejected = session.LoadFacts("?- p(X).");
  EXPECT_FALSE(rejected.ok());
}

TEST(SnapshotTest, BindingsSubstituteIntoQueries) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(session.Consult("edge(1, 2).\nedge(1, 3).\nedge(2, 3).\n")
                  .ok());
  session.Bind("src", "1");
  auto result = session.EvalQuery("?- edge($src, X).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 2u);
  auto unbound = session.EvalQuery("?- edge($nope, X).");
  EXPECT_FALSE(unbound.ok());
}

TEST(SnapshotTest, DeadlineAbortsCrossProduct) {
  Database db;
  std::string facts;
  for (int i = 0; i < 64; ++i) {
    facts += "wide(" + std::to_string(i) + ").\n";
  }
  ASSERT_TRUE(db.Consult(facts).ok());
  Session session(&db, /*deadline_ms=*/15);
  // A cyclic chain of inequalities: unsatisfiable, but no static analysis
  // proves it, and every filter needs two bound variables so the
  // reordering optimizer cannot short-circuit the enumeration — the
  // engine must walk ~C(64,4) ascending 4-tuples before concluding
  // emptiness, far beyond a 15 ms budget.
  auto result = session.EvalQuery(
      "?- wide(A), wide(B), wide(C), wide(D), "
      "A < B, B < C, C < D, D < A.");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();

  // Clearing the deadline makes the same session usable again.
  session.set_deadline_ms(0);
  auto quick = session.EvalQuery("?- wide(0).");
  EXPECT_TRUE(quick.ok());
}

// Satellite regression: a TraceSink registered at teardown time must not
// observe a destroyed registry — ~Database detaches observers before
// tearing down evaluation state.
TEST(SnapshotTest, TeardownWithRegisteredObserversIsClean) {
  class CountingSink : public obs::TraceSink {
   public:
    void Emit(const obs::TraceEvent&) override { events_.fetch_add(1); }
    std::atomic<uint64_t> events_{0};
  };
  CountingSink sink;
  {
    Database db;
    db.set_trace_sink(&sink);
    ASSERT_TRUE(db.Consult(PathModule()).ok());
    ASSERT_TRUE(db.Consult(EdgeBatch(1, 5)).ok());
    auto result = db.EvalQuery("?- path(1, X).");
    ASSERT_TRUE(result.ok());
    // db destroyed here with the sink still registered.
  }
  EXPECT_GT(sink.events_.load(), 0u);

  // And with sessions still holding snapshots: views are shared_ptrs,
  // so a snapshot outliving the database must not be dereferenced, but
  // dropping it after teardown must be safe.
  std::shared_ptr<const ReadView> survivor;
  {
    Database db;
    ASSERT_TRUE(db.Consult(EdgeBatch(1, 3)).ok());
    survivor = db.AcquireReadSnapshot();
  }
  survivor.reset();  // must not touch freed relation memory
}

TEST(SnapshotTest, EpochAdvancesPerPublication) {
  Database db;
  ASSERT_TRUE(db.Consult("p(1).").ok());
  auto v1 = db.AcquireReadSnapshot();
  uint64_t e1 = v1->epoch;
  // No commit since: same view, same epoch.
  auto v1b = db.AcquireReadSnapshot();
  EXPECT_EQ(v1.get(), v1b.get());
  ASSERT_TRUE(db.Consult("p(2).").ok());
  auto v2 = db.AcquireReadSnapshot();
  EXPECT_GT(v2->epoch, e1);
}

}  // namespace
}  // namespace coral
