// Unit tests for the rewriting layer: dependency graph / SCCs, adornment,
// Magic Templates, Supplementary Magic, semi-naive rule versions, the
// rewriter orchestration (paper §4.1, §5.1, §5.3).

#include <gtest/gtest.h>

#include <string>

#include "src/lang/parser.h"
#include "src/rewrite/adorn.h"
#include "src/rewrite/depgraph.h"
#include "src/rewrite/existential.h"
#include "src/rewrite/magic.h"
#include "src/rewrite/rewriter.h"
#include "src/rewrite/seminaive.h"
#include "src/rewrite/supmagic.h"

namespace coral {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  ModuleDecl ParseModule(const std::string& src) {
    Parser p(src, &f);
    auto prog = p.ParseProgram();
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    EXPECT_EQ(prog->modules.size(), 1u);
    return prog->modules[0];
  }

  PredRef P(const char* name, uint32_t arity) {
    return PredRef{f.symbols().Intern(name), arity};
  }

  TermFactory f;
};

constexpr char kAncestor[] = R"(
  module anc.
  export anc(bf).
  anc(X, Y) :- par(X, Y).
  anc(X, Y) :- par(X, Z), anc(Z, Y).
  end_module.
)";

TEST_F(RewriteTest, DepGraphSccsTopologicalOrder) {
  ModuleDecl m = ParseModule(R"(
    module m.
    a(X) :- b(X), c(X).
    b(X) :- base(X).
    c(X) :- a(X).
    c(X) :- b(X).
    end_module.
  )");
  DepGraph g = DepGraph::Build(m.rules);
  EXPECT_TRUE(g.IsDerived(P("a", 1)));
  EXPECT_FALSE(g.IsDerived(P("base", 1)));
  // a and c are mutually recursive; b is its own SCC evaluated first.
  EXPECT_TRUE(g.SameScc(P("a", 1), P("c", 1)));
  EXPECT_FALSE(g.SameScc(P("a", 1), P("b", 1)));
  EXPECT_LT(g.SccOf(P("b", 1)), g.SccOf(P("a", 1)));
  EXPECT_TRUE(g.stratified());
}

TEST_F(RewriteTest, DepGraphDetectsUnstratifiedNegation) {
  ModuleDecl m = ParseModule(R"(
    module m.
    win(X) :- move(X, Y), not win(Y).
    end_module.
  )");
  DepGraph g = DepGraph::Build(m.rules);
  EXPECT_FALSE(g.stratified());
  EXPECT_NE(g.violation().find("negation"), std::string::npos);
}

TEST_F(RewriteTest, DepGraphDetectsRecursiveAggregation) {
  ModuleDecl m = ParseModule(R"(
    module m.
    s(X, min(<C>)) :- s(Y, C), e(Y, X).
    end_module.
  )");
  DepGraph g = DepGraph::Build(m.rules);
  EXPECT_FALSE(g.stratified());
}

TEST_F(RewriteTest, StratifiedNegationAcrossSccsOk) {
  ModuleDecl m = ParseModule(R"(
    module m.
    reach(X) :- src(X).
    reach(Y) :- reach(X), e(X, Y).
    unreach(X) :- node(X), not reach(X).
    end_module.
  )");
  DepGraph g = DepGraph::Build(m.rules);
  EXPECT_TRUE(g.stratified());
  EXPECT_LT(g.SccOf(P("reach", 1)), g.SccOf(P("unreach", 1)));
}

TEST_F(RewriteTest, VarAnalysisHelpers) {
  ModuleDecl m = ParseModule(R"(
    module m. p(X, W) :- q(X, Y), r(Y, Z), s(Z, W). end_module.
  )");
  const Rule& r = m.rules[0];
  auto needed = NeededAfter(r);
  // After position 0 (q), needed includes Y (used by r) and X,W (head).
  // Slots: X=0, W=1, Y=2, Z=3.
  EXPECT_TRUE(needed[1].count(2));  // Y needed at r(Y,Z)
  EXPECT_TRUE(needed[2].count(3));  // Z needed at s(Z,W)
  EXPECT_FALSE(needed[3].count(2));  // Y not needed after r
  EXPECT_TRUE(needed[3].count(1));   // W needed by head
}

TEST_F(RewriteTest, AdornmentPropagatesLeftToRight) {
  ModuleDecl m = ParseModule(kAncestor);
  DepGraph g = DepGraph::Build(m.rules);
  auto adorned = AdornProgram(m.rules, g.derived(), {}, P("anc", 2), "bf", &f);
  ASSERT_TRUE(adorned.ok());
  // anc@bf defined; recursive call anc(Z, Y) has Z bound by par(X, Z).
  EXPECT_EQ(adorned->query_pred.sym->name, "anc@bf");
  ASSERT_EQ(adorned->rules.size(), 2u);
  const Rule& rec = adorned->rules[1];
  EXPECT_EQ(rec.head.pred->name, "anc@bf");
  EXPECT_EQ(rec.body[1].pred->name, "anc@bf");
  // Only one adorned predicate is generated.
  EXPECT_EQ(adorned->adorned.size(), 1u);
}

TEST_F(RewriteTest, AdornmentAllFree) {
  ModuleDecl m = ParseModule(kAncestor);
  DepGraph g = DepGraph::Build(m.rules);
  auto adorned = AdornProgram(m.rules, g.derived(), {}, P("anc", 2), "ff", &f);
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->query_pred.sym->name, "anc@ff");
  // Recursive literal: Z bound after par => anc@bf also generated.
  EXPECT_EQ(adorned->adorned.size(), 2u);
}

TEST_F(RewriteTest, AdornmentArityMismatchRejected) {
  ModuleDecl m = ParseModule(kAncestor);
  DepGraph g = DepGraph::Build(m.rules);
  EXPECT_FALSE(
      AdornProgram(m.rules, g.derived(), {}, P("anc", 2), "b", &f).ok());
}

TEST_F(RewriteTest, MagicTemplatesShape) {
  ModuleDecl m = ParseModule(kAncestor);
  DepGraph g = DepGraph::Build(m.rules);
  auto adorned =
      AdornProgram(m.rules, g.derived(), {}, P("anc", 2), "bf", &f);
  ASSERT_TRUE(adorned.ok());
  auto magic = MagicTemplates(*adorned, &f);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic->seed_pred.sym->name, "m_anc@bf");
  EXPECT_EQ(magic->seed_pred.arity, 1u);
  // Expect: 2 guarded rules + 1 magic rule (for the recursive literal).
  ASSERT_EQ(magic->rules.size(), 3u);
  int magic_rules = 0, guarded = 0;
  for (const Rule& r : magic->rules) {
    if (r.head.pred->name == "m_anc@bf") {
      ++magic_rules;
      // m_anc@bf(Z) :- m_anc@bf(X), par(X, Z).
      ASSERT_EQ(r.body.size(), 2u);
      EXPECT_EQ(r.body[0].pred->name, "m_anc@bf");
      EXPECT_EQ(r.body[1].pred->name, "par");
    } else {
      EXPECT_EQ(r.head.pred->name, "anc@bf");
      EXPECT_EQ(r.body[0].pred->name, "m_anc@bf");
      ++guarded;
    }
  }
  EXPECT_EQ(magic_rules, 1);
  EXPECT_EQ(guarded, 2);
}

TEST_F(RewriteTest, SupplementaryMagicSharesPrefixes) {
  // With two derived body literals the prefix join is materialized.
  ModuleDecl m = ParseModule(R"(
    module m.
    export p(bf).
    p(X, Y) :- e(X, Z), p(Z, W), f(W, V), p(V, Y).
    p(X, Y) :- e(X, Y).
    end_module.
  )");
  DepGraph g = DepGraph::Build(m.rules);
  auto adorned = AdornProgram(m.rules, g.derived(), {}, P("p", 2), "bf", &f);
  ASSERT_TRUE(adorned.ok());
  auto sup = SupplementaryMagic(*adorned, &f);
  ASSERT_TRUE(sup.ok());
  bool has_sup = false;
  for (const Rule& r : sup->rules) {
    if (r.head.pred->name.rfind("sup@", 0) == 0) has_sup = true;
  }
  EXPECT_TRUE(has_sup);
  // Every rule head is one of: p@bf, m_p@bf, sup@...
  for (const Rule& r : sup->rules) {
    const std::string& n = r.head.pred->name;
    EXPECT_TRUE(n == "p@bf" || n == "m_p@bf" || n.rfind("sup@", 0) == 0) << n;
  }
}

TEST_F(RewriteTest, SupplementaryPrunesDeadVariables) {
  // Variable D is dead after e2; the sup predicate must not carry it.
  ModuleDecl m = ParseModule(R"(
    module m.
    export p(bf).
    p(X, Y) :- e1(X, D), e2(X, Z), p(Z, Y).
    p(X, Y) :- e0(X, Y).
    end_module.
  )");
  DepGraph g = DepGraph::Build(m.rules);
  auto adorned = AdornProgram(m.rules, g.derived(), {}, P("p", 2), "bf", &f);
  auto sup = SupplementaryMagic(*adorned, &f);
  ASSERT_TRUE(sup.ok());
  for (const Rule& r : sup->rules) {
    if (r.head.pred->name.rfind("sup@", 0) == 0) {
      for (const Arg* a : r.head.args) {
        ASSERT_EQ(a->kind(), ArgKind::kVariable);
        EXPECT_NE(ArgCast<Variable>(a)->name(), "D");
      }
      // Live: X (head), Z (next literal), Y is not yet available.
      EXPECT_EQ(r.head.args.size(), 2u);
    }
  }
}

TEST_F(RewriteTest, SemiNaiveVersionsPerRecursiveOccurrence) {
  ModuleDecl m = ParseModule(R"(
    module m.
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), sg(V, W), down(W, Y).
    end_module.
  )");
  DepGraph g = DepGraph::Build(m.rules);
  SemiNaiveProgram sn = BuildSemiNaive(m.rules, g);
  ASSERT_EQ(sn.sccs.size(), 1u);
  const SccPlan& plan = sn.sccs[0];
  // Non-recursive rule evaluated once; recursive rule has two versions.
  EXPECT_EQ(plan.once.size(), 1u);
  ASSERT_EQ(plan.versions.size(), 2u);
  const RuleVersion& v0 = plan.versions[0];
  const RuleVersion& v1 = plan.versions[1];
  EXPECT_EQ(v0.delta_pos, 1);
  EXPECT_EQ(v0.ranges[1], RangeSel::kDelta);
  EXPECT_EQ(v0.ranges[2], RangeSel::kOld);
  EXPECT_EQ(v1.delta_pos, 2);
  EXPECT_EQ(v1.ranges[1], RangeSel::kFull);
  EXPECT_EQ(v1.ranges[2], RangeSel::kDelta);
}

TEST_F(RewriteTest, BacktrackPointsComputed) {
  ModuleDecl m = ParseModule(R"(
    module m.
    p(A, B) :- q(A, X), r(B, Y), s(X, Y), t(A).
    end_module.
  )");
  auto bt = ComputeBacktrackPoints(m.rules[0]);
  ASSERT_EQ(bt.size(), 4u);
  EXPECT_EQ(bt[0], -1);  // q(A,X): A bound by head only
  EXPECT_EQ(bt[1], -1);  // r(B,Y): B head-bound, Y fresh
  EXPECT_EQ(bt[2], 1);   // s(X,Y): X from q(0), Y from r(1) -> max 1
  EXPECT_EQ(bt[3], 0);   // t(A): A last bound at q(0)
}

TEST_F(RewriteTest, RewriteModuleEndToEndAncestor) {
  ModuleDecl m = ParseModule(kAncestor);
  QueryFormDecl form{f.symbols().Intern("anc"), "bf"};
  auto prog = RewriteModule(m, form, &f);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_TRUE(prog->uses_magic);
  EXPECT_EQ(prog->answer_pred.sym->name, "anc@bf");
  EXPECT_EQ(prog->seed_pred.sym->name, "m_anc@bf");
  EXPECT_EQ(prog->bound_positions, std::vector<uint32_t>{0});
  EXPECT_FALSE(prog->listing.empty());
  // Semi-naive plan exists and covers all rules.
  size_t total = 0;
  for (const auto& scc : prog->seminaive.sccs) {
    total += scc.versions.size() + scc.once.size();
  }
  EXPECT_GE(total, prog->rules.size());
}

TEST_F(RewriteTest, RewriteModuleNoRewriting) {
  ModuleDecl m = ParseModule(kAncestor);
  m.rewrite = RewriteKind::kNone;
  QueryFormDecl form{f.symbols().Intern("anc"), "bf"};
  auto prog = RewriteModule(m, form, &f);
  ASSERT_TRUE(prog.ok());
  EXPECT_FALSE(prog->uses_magic);
  EXPECT_EQ(prog->answer_pred.sym->name, "anc");
  EXPECT_EQ(prog->rules.size(), 2u);
}

TEST_F(RewriteTest, RewriteNegationStaysStratifiedWhenMagicIsAcyclic) {
  // Here the magic rule for the negated 'reach' subgoal derives only from
  // the positive prefix, so adorning straight through the negation keeps
  // the rewritten program stratified — no protection needed, and the
  // negated subquery still benefits from magic.
  ModuleDecl m = ParseModule(R"(
    module m.
    export unreach(f).
    reach(X) :- src(X).
    reach(Y) :- reach(X), e(X, Y).
    unreach(X) :- node(X), not reach(X).
    end_module.
  )");
  QueryFormDecl form{f.symbols().Intern("unreach"), "f"};
  auto prog = RewriteModule(m, form, &f);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_TRUE(prog->graph.stratified());
  bool neg_found = false;
  PredRef neg_pred, consumer;
  for (const Rule& r : prog->rules) {
    for (const Literal& lit : r.body) {
      if (lit.negated) {
        neg_found = true;
        neg_pred = lit.pred_ref();
        consumer = r.head.pred_ref();
      }
    }
  }
  ASSERT_TRUE(neg_found);
  EXPECT_EQ(neg_pred.sym->name, "reach@b");
  // The negated predicate's stratum is strictly below its consumer's.
  EXPECT_LT(prog->graph.SccOf(neg_pred), prog->graph.SccOf(consumer));
}

TEST_F(RewriteTest, RewriteProtectsWhenMagicBreaksStratification) {
  // t and p are mutually recursive; the magic subgoal for the negated 's'
  // is generated from a prefix involving p, so full adornment creates the
  // cycle t -(neg)-> s -> m_s -> p -> t. The rewriter must fall back to
  // protecting 's' (full evaluation, unadorned).
  ModuleDecl m = ParseModule(R"(
    module m.
    export t(b).
    t(X) :- p(X), not s(X).
    p(X) :- e(X, Y), t(Y).
    p(X) :- leaf(X).
    s(X) :- b(X).
    end_module.
  )");
  QueryFormDecl form{f.symbols().Intern("t"), "b"};
  auto prog = RewriteModule(m, form, &f);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_TRUE(prog->graph.stratified());
  bool neg_found = false, s_rules_present = false;
  for (const Rule& r : prog->rules) {
    for (const Literal& lit : r.body) {
      if (lit.negated) {
        neg_found = true;
        EXPECT_EQ(lit.pred->name, "s");  // unadorned: protected
      }
    }
    if (r.head.pred->name == "s") s_rules_present = true;
  }
  EXPECT_TRUE(neg_found);
  EXPECT_TRUE(s_rules_present);
}

TEST_F(RewriteTest, RewriteUnstratifiedWithoutOrderedSearchFails) {
  ModuleDecl m = ParseModule(R"(
    module m.
    export win(b).
    win(X) :- move(X, Y), not win(Y).
    end_module.
  )");
  QueryFormDecl form{f.symbols().Intern("win"), "b"};
  auto prog = RewriteModule(m, form, &f);
  EXPECT_FALSE(prog.ok());
}

TEST_F(RewriteTest, RewriteOrderedSearchInsertsDoneGuards) {
  ModuleDecl m = ParseModule(R"(
    module m.
    export win(b).
    @ordered_search.
    win(X) :- move(X, Y), not win(Y).
    end_module.
  )");
  QueryFormDecl form{f.symbols().Intern("win"), "b"};
  auto prog = RewriteModule(m, form, &f);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_TRUE(prog->ordered_search);
  EXPECT_FALSE(prog->done_of.empty());
  bool guard_found = false;
  for (const Rule& r : prog->rules) {
    for (size_t i = 0; i + 1 < r.body.size(); ++i) {
      if (r.body[i].pred->name.rfind("done$", 0) == 0 &&
          r.body[i + 1].negated) {
        guard_found = true;
      }
    }
  }
  EXPECT_TRUE(guard_found);
}

TEST_F(RewriteTest, RewriteAggregateRuleGetsSingleVersion) {
  ModuleDecl m = ParseModule(R"(
    module m.
    export sl(bf).
    p(X, Y, C) :- e(X, Y, C).
    p(X, Y, C) :- p(X, Z, C1), e(Z, Y, C2), C = C1 + C2.
    sl(X, min(<C>)) :- p(X, Y, C).
    end_module.
  )");
  QueryFormDecl form{f.symbols().Intern("sl"), "bf"};
  auto prog = RewriteModule(m, form, &f);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  int agg_versions = 0;
  for (const auto& scc : prog->seminaive.sccs) {
    for (const auto& v : scc.versions) agg_versions += v.is_aggregate;
    for (const auto& v : scc.once) agg_versions += v.is_aggregate;
  }
  EXPECT_EQ(agg_versions, 1);
}

TEST_F(RewriteTest, FactoringProducesContextRules) {
  ModuleDecl m = ParseModule(kAncestor);
  m.rewrite = RewriteKind::kFactoring;
  QueryFormDecl form{f.symbols().Intern("anc"), "bf"};
  auto prog = RewriteModule(m, form, &f);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  // Shape: a seed bridge ctx :- m; a context-propagation rule
  // ctx(Z) :- ctx(X), par(X, Z); and the answer rule
  // anc@bf(Q, Y) :- m(Q), ctx(X), par(X, Y). No anc@bf in any body: the
  // quadratic answer join is gone.
  bool bridge = false, propagation = false, answer = false;
  for (const Rule& r : prog->rules) {
    const std::string& head = r.head.pred->name;
    if (head == "ctx_anc@bf" && r.body.size() == 1 &&
        r.body[0].pred->name == "m_anc@bf") {
      bridge = true;
    }
    if (head == "ctx_anc@bf" && r.body.size() == 2 &&
        r.body[0].pred->name == "ctx_anc@bf") {
      propagation = true;
    }
    if (head == "anc@bf") {
      answer = true;
      for (const Literal& lit : r.body) {
        EXPECT_NE(lit.pred->name, "anc@bf") << "answer join not eliminated";
      }
    }
  }
  EXPECT_TRUE(bridge);
  EXPECT_TRUE(propagation);
  EXPECT_TRUE(answer);
}

TEST_F(RewriteTest, FactoringRejectsHelpers) {
  ModuleDecl m = ParseModule(R"(
    module m.
    export p(bf).
    p(X, Y) :- helper(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    helper(X, Y) :- e(X, Y).
    end_module.
  )");
  m.rewrite = RewriteKind::kFactoring;
  QueryFormDecl form{f.symbols().Intern("p"), "bf"};
  auto prog = RewriteModule(m, form, &f);
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kUnsupported);
}

TEST_F(RewriteTest, RewriteMissingExportFails) {
  ModuleDecl m = ParseModule(kAncestor);
  QueryFormDecl form{f.symbols().Intern("nosuch"), "bf"};
  EXPECT_FALSE(RewriteModule(m, form, &f).ok());
}

}  // namespace
}  // namespace coral
