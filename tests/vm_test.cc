// Tests for the join bytecode VM (docs/VM.md): golden disassembly of the
// canonical recursive programs, hand-stepped opcode counters, the
// interpreter-fallback paths (aggregates, ordered search, negation,
// @no_vm, set_use_vm), and probe-to-scan degradation when a planned
// argument index is absent.

#include <gtest/gtest.h>

#include <string>

#include "src/core/database.h"
#include "src/vm/bytecode.h"

namespace coral {
namespace {

uint64_t Count(const std::atomic<uint64_t>& c) {
  return c.load(std::memory_order_relaxed);
}

/// The "--- join bytecode ---" section of a form's plan listing.
std::string BytecodeSection(Database* db, const std::string& module,
                            const std::string& pred,
                            const std::string& adornment) {
  auto plan = db->PlanListing(module, pred, adornment);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  if (!plan.ok()) return "";
  const std::string marker = "--- join bytecode ---\n";
  size_t pos = plan->find(marker);
  EXPECT_NE(pos, std::string::npos) << *plan;
  if (pos == std::string::npos) return "";
  return plan->substr(pos + marker.size());
}

// ---------------------------------------------------------------------
// Golden disassembly
// ---------------------------------------------------------------------

TEST(VmDisassemblyGolden, TransitiveClosure) {
  Database db;
  auto st = db.Consult(R"(
    module tc.
    export path(bf).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    end_module.
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(BytecodeSection(&db, "tc", "path", "bf"),
            "scc 0 version 0 delta=0\n"
            "coralbc 1\n"
            "rule 1 head m_path@bf/1 regs 3\n"
            "  SCAN_DELTA lit=0 rel=m_path@bf/1 window=delta\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROJECT r0\n"
            "  INSERT m_path@bf/1\n"
            "scc 1 version 0 delta=0\n"
            "coralbc 1\n"
            "rule 0 head path@bf/2 regs 2\n"
            "  SCAN_DELTA lit=0 rel=m_path@bf/1 window=delta\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROBE_INDEX lit=1 rel=edge/2 window=full\n"
            "  UNIFY_ARG col=0 check r0\n"
            "  UNIFY_ARG col=1 load r1\n"
            "  PROJECT r0 r1\n"
            "  INSERT path@bf/2\n"
            "scc 1 version 1 delta=0\n"
            "coralbc 1\n"
            "rule 2 head path@bf/2 regs 3\n"
            "  SCAN_DELTA lit=0 rel=m_path@bf/1 window=delta\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROBE_INDEX lit=1 rel=path@bf/2 window=old\n"
            "  UNIFY_ARG col=0 check r0\n"
            "  UNIFY_ARG col=1 load r2\n"
            "  PROBE_INDEX lit=2 rel=edge/2 window=full\n"
            "  UNIFY_ARG col=0 check r2\n"
            "  UNIFY_ARG col=1 load r1\n"
            "  PROJECT r0 r1\n"
            "  INSERT path@bf/2\n"
            "scc 1 version 2 delta=1\n"
            "coralbc 1\n"
            "rule 2 head path@bf/2 regs 3\n"
            "  SCAN_FULL lit=0 rel=m_path@bf/1 window=full\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROBE_INDEX lit=1 rel=path@bf/2 window=delta\n"
            "  UNIFY_ARG col=0 check r0\n"
            "  UNIFY_ARG col=1 load r2\n"
            "  PROBE_INDEX lit=2 rel=edge/2 window=full\n"
            "  UNIFY_ARG col=0 check r2\n"
            "  UNIFY_ARG col=1 load r1\n"
            "  PROJECT r0 r1\n"
            "  INSERT path@bf/2\n");
}

TEST(VmDisassemblyGolden, SameGeneration) {
  Database db;
  auto st = db.Consult(R"(
    module sg.
    export sg(bf).
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    end_module.
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  // Supplementary magic: the supplementary relation carries (X, U) across
  // the recursive call; the recursive version probes sg by its delta.
  EXPECT_EQ(BytecodeSection(&db, "sg", "sg", "bf"),
            "scc 0 version 0 delta=0\n"
            "coralbc 1\n"
            "rule 1 head sup@2_1_sg@bf/2 regs 4\n"
            "  SCAN_DELTA lit=0 rel=m_sg@bf/1 window=delta\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROBE_INDEX lit=1 rel=up/2 window=full\n"
            "  UNIFY_ARG col=0 check r0\n"
            "  UNIFY_ARG col=1 load r2\n"
            "  PROJECT r0 r2\n"
            "  INSERT sup@2_1_sg@bf/2\n"
            "scc 0 version 1 delta=0\n"
            "coralbc 1\n"
            "rule 2 head m_sg@bf/1 regs 4\n"
            "  SCAN_DELTA lit=0 rel=sup@2_1_sg@bf/2 window=delta\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  UNIFY_ARG col=1 load r2\n"
            "  PROJECT r2\n"
            "  INSERT m_sg@bf/1\n"
            "scc 1 version 0 delta=0\n"
            "coralbc 1\n"
            "rule 0 head sg@bf/2 regs 2\n"
            "  SCAN_DELTA lit=0 rel=m_sg@bf/1 window=delta\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROBE_INDEX lit=1 rel=flat/2 window=full\n"
            "  UNIFY_ARG col=0 check r0\n"
            "  UNIFY_ARG col=1 load r1\n"
            "  PROJECT r0 r1\n"
            "  INSERT sg@bf/2\n"
            "scc 1 version 1 delta=1\n"
            "coralbc 1\n"
            "rule 3 head sg@bf/2 regs 4\n"
            "  SCAN_FULL lit=0 rel=sup@2_1_sg@bf/2 window=full\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  UNIFY_ARG col=1 load r2\n"
            "  PROBE_INDEX lit=1 rel=sg@bf/2 window=delta\n"
            "  UNIFY_ARG col=0 check r2\n"
            "  UNIFY_ARG col=1 load r3\n"
            "  PROBE_INDEX lit=2 rel=down/2 window=full\n"
            "  UNIFY_ARG col=0 check r3\n"
            "  UNIFY_ARG col=1 load r1\n"
            "  PROJECT r0 r1\n"
            "  INSERT sg@bf/2\n");
}

TEST(VmDisassemblyGolden, MagicAncestor) {
  Database db;
  auto st = db.Consult(R"(
    module m.
    export anc(bf).
    @magic.
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(BytecodeSection(&db, "m", "anc", "bf"),
            "scc 0 version 0 delta=0\n"
            "coralbc 1\n"
            "rule 1 head m_anc@bf/1 regs 3\n"
            "  SCAN_DELTA lit=0 rel=m_anc@bf/1 window=delta\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROBE_INDEX lit=1 rel=par/2 window=full\n"
            "  UNIFY_ARG col=0 check r0\n"
            "  UNIFY_ARG col=1 load r2\n"
            "  PROJECT r2\n"
            "  INSERT m_anc@bf/1\n"
            "scc 1 version 0 delta=0\n"
            "coralbc 1\n"
            "rule 0 head anc@bf/2 regs 2\n"
            "  SCAN_DELTA lit=0 rel=m_anc@bf/1 window=delta\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROBE_INDEX lit=1 rel=par/2 window=full\n"
            "  UNIFY_ARG col=0 check r0\n"
            "  UNIFY_ARG col=1 load r1\n"
            "  PROJECT r0 r1\n"
            "  INSERT anc@bf/2\n"
            "scc 1 version 1 delta=0\n"
            "coralbc 1\n"
            "rule 2 head anc@bf/2 regs 3\n"
            "  SCAN_DELTA lit=0 rel=m_anc@bf/1 window=delta\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROBE_INDEX lit=1 rel=par/2 window=full\n"
            "  UNIFY_ARG col=0 check r0\n"
            "  UNIFY_ARG col=1 load r2\n"
            "  PROBE_INDEX lit=2 rel=anc@bf/2 window=old\n"
            "  UNIFY_ARG col=0 check r2\n"
            "  UNIFY_ARG col=1 load r1\n"
            "  PROJECT r0 r1\n"
            "  INSERT anc@bf/2\n"
            "scc 1 version 2 delta=2\n"
            "coralbc 1\n"
            "rule 2 head anc@bf/2 regs 3\n"
            "  SCAN_FULL lit=0 rel=m_anc@bf/1 window=full\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  PROBE_INDEX lit=1 rel=par/2 window=full\n"
            "  UNIFY_ARG col=0 check r0\n"
            "  UNIFY_ARG col=1 load r2\n"
            "  PROBE_INDEX lit=2 rel=anc@bf/2 window=delta\n"
            "  UNIFY_ARG col=0 check r2\n"
            "  UNIFY_ARG col=1 load r1\n"
            "  PROJECT r0 r1\n"
            "  INSERT anc@bf/2\n");
}

TEST(VmDisassemblyGolden, ConstantMatchAndBuiltin) {
  Database db;
  auto st = db.Consult(R"(
    module ct.
    export p(f).
    @no_rewriting.
    p(X) :- e(X, 5).
    end_module.
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  // The constant pool prints before the code; the bound column makes the
  // scan a probe even though only a constant (no register) is the key.
  EXPECT_EQ(BytecodeSection(&db, "ct", "p", "f"),
            "scc 0 once 0 delta=-1\n"
            "coralbc 1\n"
            "rule 0 head p/1 regs 1\n"
            "  const c0 = 5\n"
            "  PROBE_INDEX lit=0 rel=e/2 window=full\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  UNIFY_ARG col=1 match c0\n"
            "  PROJECT r0\n"
            "  INSERT p/1\n");
}

// ---------------------------------------------------------------------
// Hand-stepped execution traces: exact opcode counters
// ---------------------------------------------------------------------

// p(X, Y) :- e(X, Z), f(Z, Y).  with  e = {(1,10), (2,20)} and
// f = {(10,100), (20,200), (20,201)}:
//
//   SCAN_FULL e          1 scan, 2 tuples
//     (1,10):  UNIFY load r0=1, load r2=10          2 unify
//       PROBE_INDEX f key r2=10 -> {(10,100)}        1 probe
//         (10,100): check r2, load r1                2 unify -> PROJECT
//     (2,20):  UNIFY load r0=2, load r2=20          2 unify
//       PROBE_INDEX f key r2=20 -> {(20,200),(20,201)} 1 probe
//         (20,200): check, load                      2 unify -> PROJECT
//         (20,201): check, load                      2 unify -> PROJECT
//
// Totals: 1 SCAN_FULL, 2 PROBE_INDEX, 10 UNIFY_ARG, 3 PROJECT, 3 INSERT,
// one application, no fallbacks.
TEST(VmExecutionTrace, HandSteppedJoinCounters) {
  Database db;
  auto st = db.Consult(R"(
    module j.
    export p(ff).
    @no_rewriting. @no_reorder_joins.
    p(X, Y) :- e(X, Z), f(Z, Y).
    end_module.
    e(1,10). e(2,20). f(10,100). f(20,200). f(20,201).
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  auto res = db.EvalQuery("p(X, Y)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 3u);

  const obs::VmCounters& c = *db.vm_counters();
  EXPECT_EQ(Count(c.applications), 1u);
  EXPECT_EQ(Count(c.runtime_fallbacks), 0u);
  EXPECT_EQ(Count(c.probe_scan_fallbacks), 0u);
  EXPECT_EQ(Count(c.scan_full), 1u);
  EXPECT_EQ(Count(c.scan_delta), 0u);
  EXPECT_EQ(Count(c.probe_index), 2u);
  EXPECT_EQ(Count(c.unify_arg), 10u);
  EXPECT_EQ(Count(c.test_builtin), 0u);
  EXPECT_EQ(Count(c.project), 3u);
  EXPECT_EQ(Count(c.insert), 3u);
}

// p(X, Y) :- e(X, Y), X < Y.  with  e = {(1,2), (3,1), (2,2)}:
// one full scan, 2 unify per tuple (6), one comparison per tuple (3),
// only (1,2) passes.
TEST(VmExecutionTrace, ComparisonBuiltinCounters) {
  Database db;
  auto st = db.Consult(R"(
    module cmp.
    export p(ff).
    @no_rewriting. @no_reorder_joins.
    p(X, Y) :- e(X, Y), X < Y.
    end_module.
    e(1,2). e(3,1). e(2,2).
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(BytecodeSection(&db, "cmp", "p", "ff"),
            "scc 0 once 0 delta=-1\n"
            "coralbc 1\n"
            "rule 0 head p/2 regs 2\n"
            "  SCAN_FULL lit=0 rel=e/2 window=full\n"
            "  UNIFY_ARG col=0 load r0\n"
            "  UNIFY_ARG col=1 load r1\n"
            "  TEST_BUILTIN lt r0 r1\n"
            "  PROJECT r0 r1\n"
            "  INSERT p/2\n");
  auto res = db.EvalQuery("p(X, Y)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "X = 1, Y = 2");

  const obs::VmCounters& c = *db.vm_counters();
  EXPECT_EQ(Count(c.applications), 1u);
  EXPECT_EQ(Count(c.scan_full), 1u);
  EXPECT_EQ(Count(c.unify_arg), 6u);
  EXPECT_EQ(Count(c.test_builtin), 3u);
  EXPECT_EQ(Count(c.project), 1u);
  EXPECT_EQ(Count(c.insert), 1u);
  EXPECT_EQ(Count(c.runtime_fallbacks), 0u);
}

// ---------------------------------------------------------------------
// Fallback paths: shapes the VM does not cover answer correctly through
// the interpreter
// ---------------------------------------------------------------------

TEST(VmFallback, AggregateRuleInterpreted) {
  Database db;
  auto st = db.Consult(R"(
    module ag.
    export s(bf).
    s(X, sum(<Y>)) :- t(X, Y).
    end_module.
    t(1, 2). t(1, 3). t(2, 5).
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  auto res = db.EvalQuery("s(1, V)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "V = 5");
  EXPECT_NE(BytecodeSection(&db, "ag", "s", "bf")
                .find("interpreted: aggregate head"),
            std::string::npos);
}

TEST(VmFallback, OrderedSearchModuleInterpreted) {
  Database db;
  auto st = db.Consult(R"(
    module os.
    export win(b).
    @ordered_search.
    win(X) :- move(X, Y), not win(Y).
    end_module.
    move(1,2). move(2,3). move(3,4).
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  auto res = db.EvalQuery("win(1)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 1u);  // 1 wins (2 loses: 3 wins over 4)
  auto res2 = db.EvalQuery("win(2)");
  ASSERT_TRUE(res2.ok()) << res2.status().ToString();
  EXPECT_EQ(res2->rows.size(), 0u);
  // The whole module is interpreted; nothing may reach the VM.
  EXPECT_EQ(Count(db.vm_counters()->applications), 0u);
  EXPECT_NE(BytecodeSection(&db, "os", "win", "b")
                .find("module interpreted: ordered search"),
            std::string::npos);
}

TEST(VmFallback, NegatedLiteralRuleInterpreted) {
  Database db;
  auto st = db.Consult(R"(
    module ng.
    export p(ff).
    p(X, Y) :- e(X, Y), not q(X, Y).
    end_module.
    e(1,2). e(2,3). q(2,3).
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  auto res = db.EvalQuery("p(X, Y)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "X = 1, Y = 2");
  EXPECT_NE(BytecodeSection(&db, "ng", "p", "ff")
                .find("interpreted: negated literal"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Overrides: @no_vm and Database::set_use_vm
// ---------------------------------------------------------------------

TEST(VmOverride, NoVmAnnotationKeepsModuleInterpreted) {
  Database db;
  auto st = db.Consult(R"(
    module tc.
    export path(bf).
    @no_vm.
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    end_module.
    edge(1,2). edge(2,3). edge(3,4).
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  auto res = db.EvalQuery("path(1, X)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 3u);
  EXPECT_EQ(Count(db.vm_counters()->applications), 0u);
  EXPECT_NE(BytecodeSection(&db, "tc", "path", "bf")
                .find("module interpreted: @no_vm"),
            std::string::npos);
}

TEST(VmOverride, SetUseVmTogglesAtNextActivation) {
  Database db;
  db.set_use_vm(false);
  auto st = db.Consult(R"(
    module tc.
    export path(bf).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    end_module.
    edge(1,2). edge(2,3). edge(3,4).
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  auto res = db.EvalQuery("path(1, X)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 3u);
  EXPECT_EQ(Count(db.vm_counters()->applications), 0u);

  // The bytecode was compiled with the form regardless; flipping the
  // switch makes the next activation run it — same answers.
  db.set_use_vm(true);
  auto res2 = db.EvalQuery("path(1, X)");
  ASSERT_TRUE(res2.ok()) << res2.status().ToString();
  EXPECT_EQ(res2->rows.size(), 3u);
  EXPECT_GT(Count(db.vm_counters()->applications), 0u);
}

// ---------------------------------------------------------------------
// Probe degradation: PROBE_INDEX over a relation without the planned
// argument index scans the window instead (same answers, counted)
// ---------------------------------------------------------------------

TEST(VmFallback, ProbeDegradesToScanWithoutIndex) {
  Database db;
  db.set_auto_optimize(false);  // no planned indexes exist
  auto st = db.Consult(R"(
    module j.
    export p(ff).
    @no_rewriting.
    p(X, Y) :- e(X, Z), f(Z, Y).
    end_module.
    e(1,10). e(2,20). f(10,100). f(20,200). f(20,201).
  )");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  auto res = db.EvalQuery("p(X, Y)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 3u);

  const obs::VmCounters& c = *db.vm_counters();
  // The program still probes (the key is known at compile time), but
  // every probe degrades to a window scan; answers are unchanged and the
  // degradations are counted.
  EXPECT_EQ(Count(c.runtime_fallbacks), 0u);
  EXPECT_GT(Count(c.probe_scan_fallbacks), 0u);
  EXPECT_EQ(Count(c.probe_scan_fallbacks), Count(c.scan_full) - 1);
}

// ---------------------------------------------------------------------
// Deserialize hardening: malformed or corrupt bytecode text must be
// refused with InvalidArgument at parse time — it never reaches the
// executor (docs/VM.md "Verification")
// ---------------------------------------------------------------------

// A minimal well-formed program every mutation below starts from.
constexpr char kGoodProgram[] =
    "coralbc 1\n"
    "rule 0 head p/2 regs 2\n"
    "  SCAN_FULL lit=0 rel=e/2 window=full\n"
    "  UNIFY_ARG col=0 load r0\n"
    "  UNIFY_ARG col=1 load r1\n"
    "  PROJECT r0 r1\n"
    "  INSERT p/2\n";

TEST(VmDeserializeHardening, WellFormedProgramRoundTrips) {
  Database db;
  auto prog = vm::Deserialize(kGoodProgram, db.factory());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(vm::Disassemble(*prog), kGoodProgram);
}

// Replaces the first occurrence of `from` in kGoodProgram with `to` and
// expects Deserialize to refuse the result with a message containing
// `why`.
void ExpectRejected(const std::string& from, const std::string& to,
                    const std::string& why) {
  std::string text = kGoodProgram;
  size_t pos = text.find(from);
  ASSERT_NE(pos, std::string::npos) << from;
  text.replace(pos, from.size(), to);
  Database db;
  auto prog = vm::Deserialize(text, db.factory());
  ASSERT_FALSE(prog.ok()) << "accepted: " << text;
  EXPECT_EQ(prog.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(prog.status().message().find(why), std::string::npos)
      << prog.status().ToString();
}

TEST(VmDeserializeHardening, MissingFormatHeader) {
  ExpectRejected("coralbc 1\n", "", "coralbc");
}

TEST(VmDeserializeHardening, WrongFormatVersion) {
  ExpectRejected("coralbc 1", "coralbc 2", "unsupported bytecode format");
}

TEST(VmDeserializeHardening, HeaderMustComeFirst) {
  Database db;
  std::string text = std::string("rule 0 head p/1 regs 1\n") + kGoodProgram;
  auto prog = vm::Deserialize(text, db.factory());
  ASSERT_FALSE(prog.ok());
  EXPECT_NE(prog.status().message().find("coralbc"), std::string::npos);
}

TEST(VmDeserializeHardening, RegisterCountOverflow) {
  ExpectRejected("regs 2", "regs 99999999999", "bad rule header");
}

TEST(VmDeserializeHardening, RegisterCountImplausible) {
  ExpectRejected("regs 2", "regs 2000000", "implausible register count");
}

TEST(VmDeserializeHardening, OutOfRangeRegisterOperand) {
  ExpectRejected("load r1", "load r7", "operand out of range");
}

TEST(VmDeserializeHardening, OutOfRangeConstOperand) {
  // The const pool is empty, so any match refers past its end.
  ExpectRejected("load r1", "match c0", "operand out of range");
}

TEST(VmDeserializeHardening, NonIncreasingScanLiterals) {
  ExpectRejected("PROJECT r0 r1",
                 "SCAN_FULL lit=0 rel=f/2 window=full\n  PROJECT r0 r1",
                 "strictly increasing literals");
}

TEST(VmDeserializeHardening, DuplicateProject) {
  ExpectRejected("PROJECT r0 r1", "PROJECT r0 r1\n  PROJECT r0",
                 "duplicate PROJECT");
}

TEST(VmDeserializeHardening, DuplicateRuleHeader) {
  ExpectRejected("  SCAN_FULL", "rule 1 head p/2 regs 2\n  SCAN_FULL",
                 "bad rule header");
}

TEST(VmDeserializeHardening, InsertPredMustMatchHead) {
  ExpectRejected("INSERT p/2", "INSERT q/2", "bad INSERT");
}

TEST(VmDeserializeHardening, UnknownOpcode) {
  ExpectRejected("PROJECT r0 r1", "FROBNICATE r0", "unknown opcode");
}

TEST(VmDeserializeHardening, UseOfUnloadedRegisterFailsVerifier) {
  // Reading a register no instruction loaded is refused (BuildLevels
  // catches it structurally; the verifier's CRL310 pass backstops it).
  ExpectRejected("col=1 load r1", "col=1 check r1", "unloaded register");
}

TEST(VmDeserializeHardening, DeltaScanInNonDeltaWindowFailsVerifier) {
  // SCAN_DELTA over a full window is shape-invalid (CRL312): delta scans
  // exist only in delta rule versions.
  ExpectRejected("SCAN_FULL lit=0 rel=e/2 window=full",
                 "SCAN_DELTA lit=0 rel=e/2 window=full",
                 "verifier rejected");
}

TEST(VmDeserializeHardening, NonGroundConstRejected) {
  std::string text =
      "coralbc 1\n"
      "rule 0 head p/1 regs 1\n"
      "  const c0 = f(X)\n"
      "  SCAN_FULL lit=0 rel=e/1 window=full\n"
      "  UNIFY_ARG col=0 load r0\n"
      "  PROJECT r0\n"
      "  INSERT p/1\n";
  Database db;
  auto prog = vm::Deserialize(text, db.factory());
  ASSERT_FALSE(prog.ok());
  EXPECT_NE(prog.status().message().find("non-ground const"),
            std::string::npos)
      << prog.status().ToString();
}

}  // namespace
}  // namespace coral
