// Tests for the abstract-interpretation framework (src/analysis/absint,
// src/analysis/domains): hand-computed groundness/type/cardinality
// fixpoints for the classic programs (transitive closure under a bf
// seed, same-generation, functor-building list recursion), the CRL2xx
// and CRL13x diagnostics with golden messages, diagnostic determinism
// (Normalize + JSON rendering), and the optimizer wiring — plan
// listings, the Database::set_auto_optimize toggle, @no_reorder_joins,
// and on/off answer equality.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/analysis/absint.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/domains.h"
#include "src/core/database.h"
#include "src/lang/parser.h"
#include "src/rewrite/depgraph.h"

namespace coral {
namespace {

using absint::AddCard;
using absint::ArgFacts;
using absint::Card;
using absint::Ground;
using absint::JoinCard;
using absint::JoinGround;
using absint::MeetGround;
using absint::MulCard;
using absint::PredFacts;
using absint::TypeSetToString;

// ---------------------------------------------------------------------
// Domain algebra
// ---------------------------------------------------------------------

TEST(DomainsTest, GroundLattice) {
  EXPECT_EQ(JoinGround(Ground::kBottom, Ground::kGround), Ground::kGround);
  EXPECT_EQ(JoinGround(Ground::kGround, Ground::kGround), Ground::kGround);
  EXPECT_EQ(JoinGround(Ground::kGround, Ground::kNonGround), Ground::kTop);
  EXPECT_EQ(JoinGround(Ground::kGround, Ground::kTop), Ground::kTop);

  EXPECT_EQ(MeetGround(Ground::kTop, Ground::kGround), Ground::kGround);
  EXPECT_EQ(MeetGround(Ground::kGround, Ground::kNonGround),
            Ground::kBottom);
  EXPECT_EQ(MeetGround(Ground::kNonGround, Ground::kNonGround),
            Ground::kNonGround);

  EXPECT_EQ(absint::GroundChar(Ground::kGround), 'g');
  EXPECT_EQ(absint::GroundChar(Ground::kNonGround), 'n');
  EXPECT_EQ(absint::GroundChar(Ground::kTop), '?');
  EXPECT_EQ(absint::GroundChar(Ground::kBottom), '.');
}

TEST(DomainsTest, TypeSetRendering) {
  EXPECT_EQ(TypeSetToString(absint::kTypeBottom), "none");
  EXPECT_EQ(TypeSetToString(absint::kTypeTop), "top");
  EXPECT_EQ(TypeSetToString(absint::kTInt | absint::kTAtom), "int|atom");
  EXPECT_EQ(TypeSetToString(absint::kTNumeric), "int|double|bigint");
  EXPECT_EQ(TypeSetToString(absint::kTList), "list");
}

TEST(DomainsTest, CardAlgebra) {
  // Join is max over the chain empty < one < few < many < unbounded.
  EXPECT_EQ(JoinCard(Card::kOne, Card::kMany), Card::kMany);
  EXPECT_EQ(JoinCard(Card::kEmpty, Card::kFew), Card::kFew);

  // Multiplication: empty absorbs, one is the identity, few*few stays
  // small, many and unbounded dominate.
  EXPECT_EQ(MulCard(Card::kEmpty, Card::kUnbounded), Card::kEmpty);
  EXPECT_EQ(MulCard(Card::kOne, Card::kFew), Card::kFew);
  EXPECT_EQ(MulCard(Card::kFew, Card::kFew), Card::kFew);
  EXPECT_EQ(MulCard(Card::kFew, Card::kMany), Card::kMany);
  EXPECT_EQ(MulCard(Card::kUnbounded, Card::kOne), Card::kUnbounded);

  // Union of rule contributions: two singletons make a few.
  EXPECT_EQ(AddCard(Card::kOne, Card::kOne), Card::kFew);
  EXPECT_EQ(AddCard(Card::kEmpty, Card::kOne), Card::kOne);
  EXPECT_EQ(AddCard(Card::kFew, Card::kOne), Card::kFew);
  EXPECT_EQ(AddCard(Card::kMany, Card::kFew), Card::kMany);
}

TEST(DomainsTest, ModeString) {
  PredFacts f;
  f.args = {ArgFacts{Ground::kGround, absint::kTypeTop},
            ArgFacts{Ground::kNonGround, absint::kTypeTop},
            ArgFacts{Ground::kTop, absint::kTypeTop},
            ArgFacts{Ground::kBottom, absint::kTypeBottom}};
  EXPECT_EQ(f.ModeString(), "gn?.");
}

// ---------------------------------------------------------------------
// AnalyzeRules: hand-computed fixpoints
// ---------------------------------------------------------------------

class AbsIntTest : public ::testing::Test {
 protected:
  /// Parses one module and runs the abstract interpretation over its
  /// rules with the given options (is_builtin is filled in).
  absint::AnalysisResult Analyze(const std::string& text,
                                 absint::AbsIntOptions ai = {}) {
    Parser parser(text, db_.factory());
    auto prog = parser.ParseProgram();
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    if (!prog.ok() || prog->modules.empty()) return absint::AnalysisResult();
    const ModuleDecl& mod = prog->modules[0];
    DepGraph graph = DepGraph::Build(mod.rules);
    const BuiltinRegistry* builtins = db_.builtins();
    ai.is_builtin = [builtins](const std::string& name, uint32_t arity) {
      return builtins->Find(name, arity) != nullptr;
    };
    return absint::AnalyzeRules(mod.rules, graph, ai);
  }

  PredRef P(const char* name, uint32_t arity) {
    return PredRef{db_.factory()->symbols().Intern(name), arity};
  }

  static std::vector<bool> Seed(const std::string& ad) {
    std::vector<bool> b;
    for (char c : ad) b.push_back(c == 'b');
    return b;
  }

  Database db_;
};

TEST_F(AbsIntTest, TransitiveClosureUnderBfSeed) {
  // With tc(bf): the first argument carries ground query constants down
  // the recursion (the stored tc facts have a ground first column, so Z
  // in tc(Z, Y) is ground too); the second is unconstrained (base e).
  absint::AbsIntOptions ai;
  ai.seeds.emplace(P("tc", 2), Seed("bf"));
  absint::AnalysisResult res = Analyze(
      "module m.\n"
      "export tc(bf).\n"
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "end_module.\n",
      std::move(ai));

  EXPECT_EQ(res.Summary(),
            "tc/2: mode=g?, types=(top, top), card=many, recursive\n");
  const PredFacts* tc = res.Find(P("tc", 2));
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->args[0].ground, Ground::kGround);
  EXPECT_EQ(tc->args[1].ground, Ground::kTop);
  EXPECT_TRUE(tc->recursive);
  EXPECT_FALSE(tc->functor_growth);

  // The must-bound call-side fixpoint keeps the bf pattern stable.
  EXPECT_TRUE(res.IsBoundPos(P("tc", 2), 0));
  EXPECT_FALSE(res.IsBoundPos(P("tc", 2), 1));

  // Base predicates resolve through the base_card callback (kMany when
  // absent); derived predicates ignore it.
  EXPECT_EQ(res.CardOf(P("e", 2)), Card::kMany);
}

TEST_F(AbsIntTest, BaseCardCallbackFeedsCardOf) {
  absint::AbsIntOptions ai;
  ai.seeds.emplace(P("tc", 2), Seed("bf"));
  ai.base_card = [](const PredRef&) { return Card::kFew; };
  absint::AnalysisResult res = Analyze(
      "module m.\n"
      "export tc(bf).\n"
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "end_module.\n",
      std::move(ai));
  EXPECT_EQ(res.CardOf(P("e", 2)), Card::kFew);
  // Recursion still promotes the derived predicate to many.
  EXPECT_EQ(res.CardOf(P("tc", 2)), Card::kMany);
}

TEST_F(AbsIntTest, SameGenerationUnderBfSeed) {
  absint::AbsIntOptions ai;
  ai.seeds.emplace(P("sg", 2), Seed("bf"));
  absint::AnalysisResult res = Analyze(
      "module m.\n"
      "export sg(bf).\n"
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"
      "end_module.\n",
      std::move(ai));
  EXPECT_EQ(res.Summary(),
            "sg/2: mode=g?, types=(top, top), card=many, recursive\n");
  EXPECT_TRUE(res.IsBoundPos(P("sg", 2), 0));
  EXPECT_FALSE(res.IsBoundPos(P("sg", 2), 1));
}

TEST_F(AbsIntTest, TypedFactsPropagateThroughJoin) {
  // a's integers widen to the numeric class when they constrain X; the
  // head facts of a itself keep the exact constructor kind.
  absint::AnalysisResult res = Analyze(
      "module m.\n"
      "export p(f).\n"
      "a(1).\n"
      "a(2).\n"
      "b(x).\n"
      "p(X) :- a(X).\n"
      "p(Y) :- b(Y).\n"
      "end_module.\n");
  EXPECT_EQ(res.Summary(),
            "a/1: mode=g, types=(int), card=few\n"
            "b/1: mode=g, types=(atom), card=one\n"
            "p/1: mode=g, types=(int|double|bigint|atom), card=few\n");
}

TEST_F(AbsIntTest, AppendBoundBoundFreeStaysGround) {
  // app(bbf): the seed grounds L in the base fact, so the stored third
  // column is ground, so R in the recursive call is ground — the whole
  // mode is ggg even though the head builds [H|R].
  absint::AbsIntOptions ai;
  ai.seeds.emplace(P("app", 3), Seed("bbf"));
  absint::AnalysisResult res = Analyze(
      "module lists.\n"
      "export app(bbf).\n"
      "app([], L, L).\n"
      "app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "end_module.\n",
      std::move(ai));
  EXPECT_EQ(res.Summary(),
            "app/3: mode=ggg, types=(list, top, top), card=many, "
            "recursive\n");
  // The bound first argument descends structurally (T inside [H|T]), so
  // no functor growth despite the [H|R] construction in the head.
  ASSERT_EQ(res.rules.size(), 2u);
  EXPECT_FALSE(res.rules[1].functor_growth);
}

TEST_F(AbsIntTest, AppendFreeSeedGrowsUnbounded) {
  // Under an all-free seed nothing descends: the analysis pins the
  // nonground fact columns ('n' for the copied L), tops out the mixed
  // ones, and promotes the cardinality to unbounded.
  absint::AbsIntOptions ai;
  ai.seeds.emplace(P("app", 3), Seed("fff"));
  absint::AnalysisResult res = Analyze(
      "module lists.\n"
      "export app(fff).\n"
      "app([], L, L).\n"
      "app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "end_module.\n",
      std::move(ai));
  EXPECT_EQ(res.Summary(),
            "app/3: mode=??n, types=(list, top, top), card=unbounded, "
            "recursive, functor-growth\n");
  ASSERT_EQ(res.rules.size(), 2u);
  EXPECT_TRUE(res.rules[1].functor_growth);
  EXPECT_EQ(res.rules[1].growth_pos, 0);
}

TEST_F(AbsIntTest, AssumedFactsSeedGroundColumns) {
  // Engine-fed predicates (magic seeds, done markers) start non-empty
  // and ground; rules firing off them inherit the groundness.
  absint::AbsIntOptions ai;
  ai.assumed_facts.insert(P("m_q", 1));
  absint::AnalysisResult res = Analyze(
      "module m.\n"
      "export q(b).\n"
      "q(X) :- m_q(X).\n"
      "m_q(X) :- m_q(X).\n"  // keep m_q derived so facts exist for it
      "end_module.\n",
      std::move(ai));
  const PredFacts* q = res.Find(P("q", 1));
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->args[0].ground, Ground::kGround);
  EXPECT_NE(q->card, Card::kEmpty);
}

// ---------------------------------------------------------------------
// Analyzer diagnostics: CRL2xx and CRL13x golden messages
// ---------------------------------------------------------------------

class AbsIntDiagTest : public ::testing::Test {
 protected:
  DiagnosticList Analyze(const std::string& text, bool strict = false) {
    Parser parser(text, db_.factory());
    auto prog = parser.ParseProgram();
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    if (!prog.ok()) return DiagnosticList();
    AnalyzerOptions opts;
    opts.strict = strict;
    const BuiltinRegistry* builtins = db_.builtins();
    opts.is_builtin = [builtins](const std::string& name, uint32_t arity) {
      return builtins->Find(name, arity) != nullptr;
    };
    return AnalyzeProgram(*prog, opts);
  }

  static const Diagnostic* Find(const DiagnosticList& dl,
                                const char* code) {
    for (const Diagnostic& d : dl.items()) {
      if (std::string(d.code) == code) return &d;
    }
    return nullptr;
  }

  Database db_;
};

TEST_F(AbsIntDiagTest, TypeConflictProvesRuleEmpty) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export q(f).\n"
      "a(1).\n"
      "a(2).\n"
      "b(x).\n"
      "q(X) :- a(X), b(X).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kTypeConflictEmpty);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_EQ(d->pred, "q/1");
  EXPECT_EQ(d->loc.line, 6);
  EXPECT_EQ(d->message,
            "type analysis proves this rule can never derive a fact: "
            "variable 'X' admits no type (int|double|bigint vs atom)");
}

TEST_F(AbsIntDiagTest, CrossProductProbeReported) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(ff).\n"
      "p(X, Y) :- a(X), b(Y).\n"
      "a(1).\n"
      "b(2).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kUnindexableProbe);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_EQ(d->pred, "b/1");
  EXPECT_EQ(d->loc.line, 3);
  EXPECT_EQ(d->message,
            "join probe on 'b/1' has no bound argument under any literal "
            "order (cross product); no index can support it");
}

TEST_F(AbsIntDiagTest, CrossProductNotReportedWhenJoinConnected) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(ff).\n"
      "p(X, Y) :- a(X), c(X, Y).\n"
      "a(1).\n"
      "c(1, 2).\n"
      "end_module.\n");
  EXPECT_EQ(Find(dl, diag::kUnindexableProbe), nullptr) << dl.ToString();
}

TEST_F(AbsIntDiagTest, FunctorGrowthUnderFreeSeed) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export nat(f).\n"
      "nat(z).\n"
      "nat(s(X)) :- nat(X).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kInfiniteDomain);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_EQ(d->pred, "nat/1");
  EXPECT_EQ(d->message,
            "recursion grows argument 1 of 'nat/1' through functor 's' "
            "with no bound argument descending structurally; the "
            "inferred domain is infinite and evaluation may not "
            "terminate");
}

TEST_F(AbsIntDiagTest, FunctorGrowthSuppressedByBoundDescent) {
  // nat(b): the bound argument descends structurally (X inside s(X)), so
  // evaluation terminates for any ground query — no CRL203.
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export nat(b).\n"
      "nat(z).\n"
      "nat(s(X)) :- nat(X).\n"
      "end_module.\n");
  EXPECT_EQ(Find(dl, diag::kInfiniteDomain), nullptr) << dl.ToString();
}

TEST_F(AbsIntDiagTest, AppendAdornmentsDecideFunctorGrowth) {
  const char* body =
      "app([], L, L).\n"
      "app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "end_module.\n";
  DiagnosticList bound = Analyze(
      std::string("module lists.\nexport app(bbf).\n") + body);
  EXPECT_EQ(Find(bound, diag::kInfiniteDomain), nullptr)
      << bound.ToString();
  DiagnosticList free_seed = Analyze(
      std::string("module lists.\nexport app(fff).\n") + body);
  EXPECT_NE(Find(free_seed, diag::kInfiniteDomain), nullptr)
      << free_seed.ToString();
}

TEST_F(AbsIntDiagTest, MakeIndexArityMismatch) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(bf).\n"
      "@make_index q(A, B, C) (A).\n"
      "p(X, Y) :- q(X, Y).\n"
      "q(1, 2).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kIndexArity);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_EQ(d->pred, "q/3");
  EXPECT_EQ(d->message,
            "@make_index pattern for 'q' has arity 3, but the module "
            "uses q/2; the index can never match");
}

TEST_F(AbsIntDiagTest, MakeIndexDuplicateReported) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(bf).\n"
      "@make_index q(A, B) (A).\n"
      "@make_index q(C, D) (C).\n"
      "p(X, Y) :- q(X, Y).\n"
      "q(1, 2).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kDuplicateIndex);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_EQ(d->pred, "q/2");
  EXPECT_NE(d->message.find("duplicate @make_index on 'q/2': identical "
                            "key columns were already declared"),
            std::string::npos)
      << d->message;
  EXPECT_EQ(d->loc.line, 4);
}

TEST_F(AbsIntDiagTest, MakeIndexAutoCoveredNote) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(bf).\n"
      "@make_index q(A, B) (A).\n"
      "p(X, Y) :- q(X, Y).\n"
      "q(1, 2).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kIndexAutoCovered);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kNote);
  EXPECT_EQ(d->pred, "q/2");
  EXPECT_EQ(d->message,
            "automatic index selection already creates an index on "
            "argument(s) 1 of 'q/2'; this @make_index is redundant "
            "unless auto-optimization is disabled");
}

TEST_F(AbsIntDiagTest, MakeIndexOnUnprobedColumnsNotAutoCovered) {
  // The rule probes q with the first column bound; an index on the
  // second is not what the optimizer plans, so no redundancy note.
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(bf).\n"
      "@make_index q(A, B) (B).\n"
      "p(X, Y) :- q(X, Y).\n"
      "q(1, 2).\n"
      "end_module.\n");
  EXPECT_EQ(Find(dl, diag::kIndexAutoCovered), nullptr) << dl.ToString();
}

TEST_F(AbsIntDiagTest, ReorderAnnotationConflictWarns) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "@reorder_joins.\n"
      "@no_reorder_joins.\n"
      "export p(b).\n"
      "p(X) :- a(X), b(X), c(X).\n"
      "a(1). b(1). c(1).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kAnnotationConflict);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_NE(d->message.find("@reorder_joins conflicts with "
                            "@no_reorder_joins"),
            std::string::npos)
      << d->message;
}

// ---------------------------------------------------------------------
// Diagnostic determinism and JSON rendering
// ---------------------------------------------------------------------

TEST(DiagnosticsTest, NormalizeSortsAndDedupes) {
  auto make = [](int line, const char* code, const char* pred,
                 const char* msg) {
    Diagnostic d;
    d.severity = DiagSeverity::kWarning;
    d.code = code;
    d.pred = pred;
    d.message = msg;
    d.loc.line = line;
    d.loc.col = 1;
    return d;
  };
  DiagnosticList dl;
  dl.Add(make(9, diag::kSingletonVar, "p/1", "later"));
  dl.Add(make(2, diag::kUnindexableProbe, "b/1", "probe"));
  dl.Add(make(2, diag::kTypeConflictEmpty, "p/1", "dead"));
  dl.Add(make(2, diag::kTypeConflictEmpty, "p/1", "dead (dup)"));
  dl.Normalize();

  ASSERT_EQ(dl.size(), 3u);
  // (line, col, code, pred) orders; the (code, line, col, pred)
  // duplicate collapsed to the first occurrence.
  EXPECT_EQ(std::string(dl.items()[0].code), diag::kTypeConflictEmpty);
  EXPECT_EQ(dl.items()[0].message, "dead");
  EXPECT_EQ(std::string(dl.items()[1].code), diag::kUnindexableProbe);
  EXPECT_EQ(std::string(dl.items()[2].code), diag::kSingletonVar);
}

TEST(DiagnosticsTest, NormalizeIsIdempotentAndOrderIndependent) {
  auto make = [](int line, int col, const char* code) {
    Diagnostic d;
    d.severity = DiagSeverity::kWarning;
    d.code = code;
    d.message = code;
    d.loc.line = line;
    d.loc.col = col;
    return d;
  };
  DiagnosticList a;
  a.Add(make(1, 2, diag::kSingletonVar));
  a.Add(make(1, 1, diag::kDeadPredicate));
  DiagnosticList b;
  b.Add(make(1, 1, diag::kDeadPredicate));
  b.Add(make(1, 2, diag::kSingletonVar));
  a.Normalize();
  b.Normalize();
  EXPECT_EQ(a.ToJsonLines("f.crl"), b.ToJsonLines("f.crl"));
  std::string once = a.ToJsonLines("f.crl");
  a.Normalize();
  EXPECT_EQ(a.ToJsonLines("f.crl"), once);
}

TEST(DiagnosticsTest, ToJsonGolden) {
  Diagnostic d;
  d.severity = DiagSeverity::kWarning;
  d.code = diag::kTypeConflictEmpty;
  d.message = "msg \"quoted\"";
  d.module_name = "m";
  d.pred = "p/1";
  d.loc.line = 3;
  d.loc.col = 7;
  EXPECT_EQ(d.ToJson("a.crl"),
            "{\"code\":\"CRL201\",\"severity\":\"warning\","
            "\"file\":\"a.crl\",\"line\":3,\"col\":7,\"module\":\"m\","
            "\"pred\":\"p/1\",\"message\":\"msg \\\"quoted\\\"\"}");

  DiagnosticList dl;
  dl.Add(d);
  EXPECT_EQ(dl.ToJsonLines("a.crl"), d.ToJson("a.crl") + "\n");
}

// ---------------------------------------------------------------------
// Optimizer wiring: plan listings, toggles, answer equality
// ---------------------------------------------------------------------

constexpr char kPathModule[] =
    "module paths.\n"
    "export path(bf).\n"
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
    "end_module.\n";

class PlanTest : public ::testing::Test {
 protected:
  void Load(Database* db, const std::string& src) {
    auto st = db->Consult(src);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }

  std::vector<std::string> Ask(Database* db, const std::string& query) {
    auto result = db->EvalQuery(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::string> rows;
    if (result.ok()) {
      for (const AnswerRow& r : result->rows) rows.push_back(r.ToString());
      std::sort(rows.begin(), rows.end());
    }
    return rows;
  }
};

TEST_F(PlanTest, PlanListingShowsModesOrderAndIndexes) {
  Database db;
  Load(&db, "edge(a, b). edge(b, c). edge(c, d).");
  Load(&db, kPathModule);
  auto plan = db.PlanListing("paths", "path", "bf");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("inferred modes:"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("join order: bound-args-first"), std::string::npos)
      << *plan;
  // edge is probed with its first column bound by the magic guard.
  EXPECT_NE(plan->find("edge/2: args (1)"), std::string::npos) << *plan;
}

TEST_F(PlanTest, AutoOptimizeOffPlansAsWritten) {
  Database db;
  db.set_auto_optimize(false);
  Load(&db, "edge(a, b). edge(b, c).");
  Load(&db, kPathModule);
  auto plan = db.PlanListing("paths", "path", "bf");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("join order: as written (auto-optimization off)"),
            std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("indexes:\n  (none)"), std::string::npos) << *plan;
}

TEST_F(PlanTest, NoReorderJoinsAnnotationRespected) {
  Database db;
  Load(&db, "edge(a, b).");
  Load(&db,
       "module paths.\n"
       "@no_reorder_joins.\n"
       "export path(bf).\n"
       "path(X, Y) :- edge(X, Y).\n"
       "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
       "end_module.\n");
  auto plan = db.PlanListing("paths", "path", "bf");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("join order: as written (@no_reorder_joins)"),
            std::string::npos)
      << *plan;
  // Index planning is independent of the reordering opt-out.
  EXPECT_NE(plan->find("edge/2: args (1)"), std::string::npos) << *plan;
}

TEST_F(PlanTest, ReorderMovesBoundLiteralFirst) {
  // As written the body visits sel (no bound args) before mid (one bound
  // arg from big); bound-args-first schedules mid ahead of sel. The
  // leading literal is anchored, so big stays first.
  Database db;
  Load(&db, "big(1, 2). big(2, 3). big(3, 4).");
  Load(&db,
       "module filt.\n"
       "@no_rewriting.\n"
       "export q(f).\n"
       "q(X) :- big(Y, Z), sel(X), mid(X, Y).\n"
       "sel(1).\n"
       "mid(1, 2).\n"
       "end_module.\n");
  auto plan = db.PlanListing("filt", "q", "f");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("bound-args-first (1 rule(s) reordered)"),
            std::string::npos)
      << *plan;
  size_t order = plan->find("join order:");
  ASSERT_NE(order, std::string::npos);
  size_t mid_at = plan->find("mid(", order);
  size_t sel_at = plan->find("sel(", order);
  ASSERT_NE(mid_at, std::string::npos) << *plan;
  ASSERT_NE(sel_at, std::string::npos) << *plan;
  EXPECT_LT(mid_at, sel_at) << *plan;

  // The reordering must not change the answers.
  EXPECT_EQ(Ask(&db, "q(X)"), std::vector<std::string>{"X = 1"});
}

TEST_F(PlanTest, PlanReportCoversCompiledForms) {
  Database db;
  Load(&db, "edge(a, b). edge(b, c).");
  Load(&db, kPathModule);
  ASSERT_EQ(Ask(&db, "path(a, W)").size(), 2u);
  std::string report = db.PlanReport();
  EXPECT_NE(report.find("plan for module paths, query form path/2@bf"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("join order:"), std::string::npos) << report;
}

TEST_F(PlanTest, AnswersIdenticalWithAndWithoutAutoOptimize) {
  std::vector<std::string> answers[2];
  for (int pass = 0; pass < 2; ++pass) {
    Database db;
    db.set_auto_optimize(pass == 0);
    Load(&db, "edge(a, b). edge(b, c). edge(c, d). edge(b, d).");
    Load(&db, kPathModule);
    answers[pass] = Ask(&db, "path(a, W)");
  }
  EXPECT_EQ(answers[0], answers[1]);
  EXPECT_EQ(answers[0].size(), 3u);
}

}  // namespace
}  // namespace coral
