// Unit tests for the utility layer: Status/StatusOr, Arena, hashing, BigInt.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/arena.h"
#include "src/util/bigint.h"
#include "src/util/hash.h"
#include "src/util/status.h"

namespace coral {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v;
}

Status UseValue(int v, int* out) {
  CORAL_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  auto ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);

  auto err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseValue(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseValue(-5, &out).ok());
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(128);  // small blocks to force growth
  std::vector<int*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    int* p = arena.New<int>(i);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(int), 0u);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(*ptrs[i], i);
}

TEST(ArenaTest, CopyArray) {
  Arena arena;
  const char* words[3] = {"a", "b", "c"};
  const char** copy = arena.CopyArray(words, 3);
  EXPECT_NE(copy, nullptr);
  for (int i = 0; i < 3; ++i) EXPECT_STREQ(copy[i], words[i]);
  EXPECT_EQ(arena.CopyArray(words, 0), nullptr);
}

TEST(ArenaTest, LargeAllocationBiggerThanBlock) {
  Arena arena(64);
  void* p = arena.Allocate(4096);
  EXPECT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_allocated(), 4096u);
}

TEST(HashTest, MixAvalanches) {
  EXPECT_NE(HashMix64(1), HashMix64(2));
  EXPECT_NE(HashCombine(0, 1), HashCombine(1, 0));
  EXPECT_EQ(HashString("coral"), HashString(std::string("coral")));
  EXPECT_NE(HashString("coral"), HashString("coral "));
}

TEST(BigIntTest, FromInt64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1} << 40,
                    INT64_MAX, INT64_MIN}) {
    BigInt b(v);
    int64_t back = 123;
    ASSERT_TRUE(b.FitsInt64(&back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_EQ(b.ToString(), std::to_string(v));
  }
}

TEST(BigIntTest, ParseAndPrint) {
  auto b = BigInt::FromString("123456789012345678901234567890");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->ToString(), "123456789012345678901234567890");
  auto neg = BigInt::FromString("-42");
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->ToString(), "-42");
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("12x3").ok());
  // "-0" normalizes to zero.
  auto zero = BigInt::FromString("-0");
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->is_zero());
  EXPECT_FALSE(zero->is_negative());
}

TEST(BigIntTest, ArithmeticMatchesInt64) {
  // Property check over a grid of values against native arithmetic.
  std::vector<int64_t> vals = {0, 1, -1, 7, -13, 123456, -99999, 1 << 20};
  for (int64_t a : vals) {
    for (int64_t b : vals) {
      BigInt ba(a), bb(b);
      int64_t got;
      ASSERT_TRUE((ba + bb).FitsInt64(&got));
      EXPECT_EQ(got, a + b) << a << "+" << b;
      ASSERT_TRUE((ba - bb).FitsInt64(&got));
      EXPECT_EQ(got, a - b);
      ASSERT_TRUE((ba * bb).FitsInt64(&got));
      EXPECT_EQ(got, a * b);
      if (b != 0) {
        ASSERT_TRUE((ba / bb).FitsInt64(&got));
        EXPECT_EQ(got, a / b) << a << "/" << b;
        ASSERT_TRUE((ba % bb).FitsInt64(&got));
        EXPECT_EQ(got, a % b) << a << "%" << b;
      }
      EXPECT_EQ(ba.Compare(bb), a < b ? -1 : (a > b ? 1 : 0));
    }
  }
}

TEST(BigIntTest, LargeMultiplyDivide) {
  auto a = BigInt::FromString("340282366920938463463374607431768211456");
  ASSERT_TRUE(a.ok());  // 2^128
  BigInt sq = *a * *a;
  EXPECT_EQ(sq / *a, *a);
  EXPECT_TRUE((sq % *a).is_zero());
  // (2^128)^2 = 2^256
  auto expect = BigInt::FromString(
      "115792089237316195423570985008687907853269984665640564039457584007913129"
      "639936");
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(sq, *expect);
}

TEST(BigIntTest, DivisionByZeroIsStatus) {
  BigInt q, r;
  EXPECT_FALSE(BigInt::DivMod(BigInt(1), BigInt(0), &q, &r).ok());
}

TEST(BigIntTest, TruncationSemantics) {
  // C semantics: -7 / 2 == -3, -7 % 2 == -1.
  int64_t got;
  ASSERT_TRUE((BigInt(-7) / BigInt(2)).FitsInt64(&got));
  EXPECT_EQ(got, -3);
  ASSERT_TRUE((BigInt(-7) % BigInt(2)).FitsInt64(&got));
  EXPECT_EQ(got, -1);
  ASSERT_TRUE((BigInt(7) / BigInt(-2)).FitsInt64(&got));
  EXPECT_EQ(got, -3);
  ASSERT_TRUE((BigInt(7) % BigInt(-2)).FitsInt64(&got));
  EXPECT_EQ(got, 1);
}

TEST(BigIntTest, HashConsistentWithEquality) {
  auto a = BigInt::FromString("98765432109876543210");
  auto b = BigInt::FromString("98765432109876543210");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_NE(a->Hash(), (-*b).Hash());
}

TEST(BigIntTest, FitsInt64Boundaries) {
  int64_t out;
  auto max = BigInt::FromString("9223372036854775807");
  ASSERT_TRUE(max.ok());
  EXPECT_TRUE(max->FitsInt64(&out));
  EXPECT_EQ(out, INT64_MAX);
  auto min = BigInt::FromString("-9223372036854775808");
  ASSERT_TRUE(min.ok());
  EXPECT_TRUE(min->FitsInt64(&out));
  EXPECT_EQ(out, INT64_MIN);
  auto over = BigInt::FromString("9223372036854775808");
  ASSERT_TRUE(over.ok());
  EXPECT_FALSE(over->FitsInt64(&out));
  auto under = BigInt::FromString("-9223372036854775809");
  ASSERT_TRUE(under.ok());
  EXPECT_FALSE(under->FitsInt64(&out));
}

}  // namespace
}  // namespace coral
