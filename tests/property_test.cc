// Property-based and model-based tests: the engine's answers are checked
// against independent reference implementations (BFS closure, shortest
// paths by Dijkstra, game solving by retrograde analysis, B-tree vs
// std::multimap), across randomized inputs and every combination of
// evaluation strategy — the paper's premise that all strategies compute
// the same declarative semantics (§4, §5).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/data/term_factory.h"
#include "src/data/unify.h"
#include "src/storage/btree.h"

namespace coral {
namespace {

// Deterministic PRNG.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : s_(seed) {}
  uint64_t Next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return s_ >> 33;
  }
  uint64_t Next(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t s_;
};

// ---------------------------------------------------------------------
// Transitive closure vs BFS, across strategies (parameterized sweep)
// ---------------------------------------------------------------------

struct StrategyCase {
  const char* name;
  const char* annotations;
};

class ClosureStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(ClosureStrategyTest, MatchesBfsOnRandomGraphs) {
  const StrategyCase& sc = GetParam();
  for (uint64_t seed : {1u, 7u, 23u}) {
    Lcg rng(seed);
    int v = 12 + static_cast<int>(rng.Next(10));
    int e = 2 * v;
    std::vector<std::pair<int, int>> edges;
    std::string facts;
    for (int i = 0; i < e; ++i) {
      int a = static_cast<int>(rng.Next(v));
      int b = static_cast<int>(rng.Next(v));
      edges.emplace_back(a, b);
      facts += "e(x" + std::to_string(a) + ", x" + std::to_string(b) +
               ").\n";
    }
    // Reference: BFS from node 0.
    std::vector<std::vector<int>> adj(v);
    for (auto [a, b] : edges) adj[a].push_back(b);
    std::set<int> reach;
    std::queue<int> work;
    work.push(0);
    while (!work.empty()) {
      int cur = work.front();
      work.pop();
      for (int nxt : adj[cur]) {
        if (reach.insert(nxt).second) work.push(nxt);
      }
    }

    Database db;
    std::string mod = std::string("module m.\nexport tc(bf).\n") +
                      sc.annotations +
                      "\ntc(X, Y) :- e(X, Y).\n"
                      "tc(X, Y) :- e(X, Z), tc(Z, Y).\nend_module.\n";
    ASSERT_TRUE(db.Consult(mod).ok());
    ASSERT_TRUE(db.Consult(facts).ok());
    auto res = db.EvalQuery("tc(x0, Y)");
    ASSERT_TRUE(res.ok()) << sc.name << ": " << res.status().ToString();
    std::set<std::string> got;
    for (const AnswerRow& row : res->rows) got.insert(row.ToString());
    std::set<std::string> expected;
    for (int r : reach) expected.insert("Y = x" + std::to_string(r));
    EXPECT_EQ(got, expected) << sc.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ClosureStrategyTest,
    ::testing::Values(
        StrategyCase{"bsn_supmagic", "@bsn."},
        StrategyCase{"psn_supmagic", "@psn."},
        StrategyCase{"naive_supmagic", "@naive."},
        StrategyCase{"bsn_magic", "@magic."},
        StrategyCase{"psn_magic", "@psn. @magic."},
        StrategyCase{"bsn_norewrite", "@no_rewriting."},
        StrategyCase{"naive_norewrite", "@naive. @no_rewriting."},
        StrategyCase{"save_module", "@save_module."},
        StrategyCase{"eager", "@eager."},
        StrategyCase{"factoring", "@factoring."},
        StrategyCase{"reorder", "@reorder_joins."},
        StrategyCase{"no_ibt", "@no_intelligent_backtracking."}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------
// Shortest path (Fig. 3) vs Dijkstra on random graphs
// ---------------------------------------------------------------------

TEST(ShortestPathProperty, MatchesDijkstraOnRandomGraphs) {
  constexpr char kProgram[] = R"(
    module s_p.
    export s_p(bfff).
    @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
    @aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
    s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
    s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
    p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                       append([edge(Z, Y)], P, P1), C1 = C + EC.
    p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
    end_module.
  )";
  for (uint64_t seed : {3u, 11u, 42u}) {
    Lcg rng(seed);
    int v = 10;
    int e = 30;
    std::string facts;
    std::vector<std::vector<std::pair<int, int>>> adj(v);  // (to, cost)
    for (int i = 0; i < e; ++i) {
      int a = static_cast<int>(rng.Next(v));
      int b = static_cast<int>(rng.Next(v));
      int c = 1 + static_cast<int>(rng.Next(9));
      adj[a].emplace_back(b, c);
      facts += "edge(g" + std::to_string(a) + ", g" + std::to_string(b) +
               ", " + std::to_string(c) + ").\n";
    }
    // Dijkstra from node 0. Note Fig. 3 paths include cycles back to the
    // source, so dist[0] is the cheapest nonempty cycle; compute
    // accordingly: standard dijkstra where source distance can be updated
    // by incoming edges.
    const int kInf = 1 << 28;
    std::vector<int> dist(v, kInf);
    using Entry = std::pair<int, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    for (auto [b, c] : adj[0]) {
      if (c < dist[b]) {
        dist[b] = c;
        pq.push({c, b});
      }
    }
    while (!pq.empty()) {
      auto [d, cur] = pq.top();
      pq.pop();
      if (d > dist[cur]) continue;
      for (auto [nxt, c] : adj[cur]) {
        if (d + c < dist[nxt]) {
          dist[nxt] = d + c;
          pq.push({d + c, nxt});
        }
      }
    }

    Database db;
    ASSERT_TRUE(db.Consult(kProgram).ok());
    ASSERT_TRUE(db.Consult(facts).ok());
    for (int target = 0; target < v; ++target) {
      auto res = db.EvalQuery("s_p(g0, g" + std::to_string(target) + ", P, C)");
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      if (dist[target] == kInf) {
        EXPECT_TRUE(res->rows.empty()) << "seed " << seed << " g" << target;
        continue;
      }
      ASSERT_EQ(res->rows.size(), 1u) << "seed " << seed << " g" << target;
      std::string row = res->rows[0].ToString();
      std::string want = "C = " + std::to_string(dist[target]);
      EXPECT_NE(row.find(want), std::string::npos)
          << "seed " << seed << " target g" << target << ": " << row
          << " want " << want;
    }
  }
}

// ---------------------------------------------------------------------
// Ordered Search win/move vs retrograde analysis
// ---------------------------------------------------------------------

TEST(OrderedSearchProperty, MatchesRetrogradeAnalysisOnRandomDags) {
  for (uint64_t seed : {5u, 17u}) {
    Lcg rng(seed);
    int v = 24;
    // Random DAG: edges only from lower to higher ids (then reversed so
    // "moves" go to strictly smaller ids — acyclic).
    std::vector<std::vector<int>> moves(v);
    std::string facts;
    for (int i = 1; i < v; ++i) {
      int outdeg = static_cast<int>(rng.Next(3));
      for (int k = 0; k < outdeg; ++k) {
        int j = static_cast<int>(rng.Next(i));
        moves[i].push_back(j);
        facts += "move(d" + std::to_string(i) + ", d" + std::to_string(j) +
                 ").\n";
      }
    }
    // Retrograde: win[i] iff some move leads to a losing position.
    std::vector<bool> win(v, false);
    for (int i = 0; i < v; ++i) {
      for (int j : moves[i]) {
        if (!win[j]) win[i] = true;
      }
    }

    Database db;
    ASSERT_TRUE(db.Consult(R"(
      module game.
      export win(b).
      @ordered_search.
      win(X) :- move(X, Y), not win(Y).
      end_module.
    )").ok());
    ASSERT_TRUE(db.Consult(facts).ok());
    for (int i = 0; i < v; ++i) {
      auto res = db.EvalQuery("win(d" + std::to_string(i) + ")");
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_EQ(!res->rows.empty(), win[i])
          << "seed " << seed << " node d" << i;
    }
  }
}

// ---------------------------------------------------------------------
// Unification properties
// ---------------------------------------------------------------------

class TermGen {
 public:
  TermGen(TermFactory* f, Lcg* rng, uint32_t max_vars)
      : f_(f), rng_(rng), max_vars_(max_vars) {}

  const Arg* Random(int depth) {
    switch (rng_->Next(depth > 0 ? 5 : 3)) {
      case 0:
        return f_->MakeInt(static_cast<int64_t>(rng_->Next(4)));
      case 1:
        return f_->MakeAtom("a" + std::to_string(rng_->Next(3)));
      case 2:
        return f_->MakeVariable(
            static_cast<uint32_t>(rng_->Next(max_vars_)), "V");
      case 3: {
        const Arg* args[] = {Random(depth - 1), Random(depth - 1)};
        return f_->MakeFunctor("f" + std::to_string(rng_->Next(2)), args);
      }
      default: {
        const Arg* elems[] = {Random(depth - 1)};
        return f_->MakeList(elems);
      }
    }
  }

 private:
  TermFactory* f_;
  Lcg* rng_;
  uint32_t max_vars_;
};

TEST(UnifyProperty, SymmetricAndTrailRestores) {
  TermFactory f;
  Lcg rng(99);
  TermGen gen(&f, &rng, 3);
  for (int trial = 0; trial < 500; ++trial) {
    const Arg* a = gen.Random(3);
    const Arg* b = gen.Random(3);
    BindEnv ea(3), eb(3);
    Trail trail;
    bool ab = Unify(a, &ea, b, &eb, &trail);
    trail.UndoTo(0);
    // All bindings must be gone.
    for (uint32_t i = 0; i < 3; ++i) {
      ASSERT_FALSE(ea.binding(i).bound());
      ASSERT_FALSE(eb.binding(i).bound());
    }
    bool ba = Unify(b, &eb, a, &ea, &trail);
    trail.UndoTo(0);
    EXPECT_EQ(ab, ba) << a->ToString() << " vs " << b->ToString();
  }
}

TEST(UnifyProperty, ResolveAfterUnifyYieldsCommonInstance) {
  TermFactory f;
  Lcg rng(123);
  TermGen gen(&f, &rng, 3);
  int unified = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const Arg* a = gen.Random(3);
    const Arg* b = gen.Random(3);
    BindEnv ea(3), eb(3);
    Trail trail;
    if (Unify(a, &ea, b, &eb, &trail)) {
      ++unified;
      // The resolved instances must be structurally equal (variants).
      VarRenamer r1;
      const Arg* ra = ResolveTerm(a, &ea, &f, &r1);
      const Arg* rb = ResolveTerm(b, &eb, &f, &r1);
      EXPECT_TRUE(ra->Equals(*rb))
          << a->ToString() << " ~ " << b->ToString() << " -> "
          << ra->ToString() << " vs " << rb->ToString();
    }
    trail.UndoTo(0);
  }
  EXPECT_GT(unified, 50);  // the generator must exercise the success path
}

TEST(SubsumptionProperty, ResolvedInstanceIsSubsumed) {
  // For any tuple pattern and any grounding of it, the pattern subsumes
  // the grounding.
  TermFactory f;
  Lcg rng(7);
  TermGen gen(&f, &rng, 2);
  for (int trial = 0; trial < 300; ++trial) {
    const Arg* args[2] = {gen.Random(2), gen.Random(2)};
    const Tuple* pattern = ResolveTuple(
        std::vector<TermRef>{{args[0], nullptr}, {args[1], nullptr}}, &f);
    // Ground it: bind all canonical vars to constants.
    BindEnv env(pattern->var_count());
    Trail trail;
    for (uint32_t i = 0; i < pattern->var_count(); ++i) {
      env.Set(i, f.MakeInt(static_cast<int64_t>(rng.Next(5))), nullptr);
    }
    std::vector<TermRef> refs;
    for (uint32_t i = 0; i < pattern->arity(); ++i) {
      refs.push_back({pattern->arg(i), &env});
    }
    const Tuple* instance = ResolveTuple(refs, &f);
    EXPECT_TRUE(SubsumesTuple(pattern, instance))
        << pattern->ToString() << " should subsume "
        << instance->ToString();
  }
}

// ---------------------------------------------------------------------
// B-tree vs std::multimap model
// ---------------------------------------------------------------------

TEST(BTreeProperty, MatchesMultimapModel) {
  auto dir = ::testing::TempDir();
  std::string path = dir + "/btree_prop.db";
  std::remove(path.c_str());
  DiskManager disk;
  ASSERT_TRUE(disk.Open(path).ok());
  BufferPool pool(&disk, 32);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());

  std::multimap<std::string, uint64_t> model;
  Lcg rng(2024);
  for (int op = 0; op < 5000; ++op) {
    std::string key = "k" + std::to_string(rng.Next(200));
    uint64_t action = rng.Next(10);
    if (action < 7) {
      Rid rid{static_cast<PageId>(rng.Next(1000)),
              static_cast<uint16_t>(rng.Next(100))};
      ASSERT_TRUE(tree->Insert(key, rid).ok());
      model.emplace(key, PackRid(rid));
    } else {
      // Delete one (key, value) pair if present in the model.
      auto it = model.find(key);
      if (it != model.end()) {
        auto removed = tree->Delete(key, UnpackRid(it->second));
        ASSERT_TRUE(removed.ok());
        EXPECT_TRUE(*removed) << key;
        model.erase(it);
      } else {
        auto removed = tree->Delete(key, Rid{1, 1});
        ASSERT_TRUE(removed.ok());
        // Might coincidentally exist under a different value; very
        // unlikely with this keyspace, but tolerate either outcome by
        // resyncing: if the tree removed something, mirror it.
        if (*removed) {
          // Should not happen: value (1,1) never inserted with this key
          // unless the model had it (erased above).
          FAIL() << "tree removed an entry the model does not have";
        }
      }
    }
    // Periodic full consistency check.
    if (op % 500 == 499) {
      auto count = tree->CountEntries();
      ASSERT_TRUE(count.ok());
      ASSERT_EQ(*count, model.size()) << "op " << op;
      for (int probe = 0; probe < 20; ++probe) {
        std::string k = "k" + std::to_string(rng.Next(200));
        std::vector<Rid> rids;
        ASSERT_TRUE(tree->Lookup(k, &rids).ok());
        std::multiset<uint64_t> got, want;
        for (Rid r : rids) got.insert(PackRid(r));
        auto [lo, hi] = model.equal_range(k);
        for (auto it = lo; it != hi; ++it) want.insert(it->second);
        ASSERT_EQ(got, want) << "key " << k << " at op " << op;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Aggregates vs hand-computed folds on random data
// ---------------------------------------------------------------------

TEST(AggregateProperty, MatchesReferenceFolds) {
  for (uint64_t seed : {13u, 31u}) {
    Lcg rng(seed);
    std::string facts;
    std::map<int, std::vector<int>> groups;
    for (int i = 0; i < 120; ++i) {
      int g = static_cast<int>(rng.Next(6));
      int v = static_cast<int>(rng.Next(50));
      // Relations are sets: mirror that in the reference.
      auto& vec = groups[g];
      if (std::find(vec.begin(), vec.end(), v) == vec.end()) {
        vec.push_back(v);
        facts += "sample(grp" + std::to_string(g) + ", " +
                 std::to_string(v) + ").\n";
      }
    }
    Database db;
    ASSERT_TRUE(db.Consult(R"(
      module agg.
      export stats(bffff).
      stats(G, min(<V>), max(<V>), sum(<V>), count(<V>)) :- sample(G, V).
      end_module.
    )").ok());
    ASSERT_TRUE(db.Consult(facts).ok());
    for (const auto& [g, vals] : groups) {
      auto res = db.EvalQuery("stats(grp" + std::to_string(g) +
                           ", Mn, Mx, S, C)");
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      ASSERT_EQ(res->rows.size(), 1u);
      int mn = *std::min_element(vals.begin(), vals.end());
      int mx = *std::max_element(vals.begin(), vals.end());
      int sum = 0;
      for (int v : vals) sum += v;
      std::string want = "Mn = " + std::to_string(mn) +
                         ", Mx = " + std::to_string(mx) +
                         ", S = " + std::to_string(sum) +
                         ", C = " + std::to_string(vals.size());
      EXPECT_EQ(res->rows[0].ToString(), want) << "group " << g;
    }
  }
}

}  // namespace
}  // namespace coral
