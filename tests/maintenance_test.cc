// Tests of the incremental update path (docs/MAINTENANCE.md): the
// Database::ApplyUpdate / Session::ApplyUpdate API, counting maintenance
// of non-recursive save modules, DRed + resumed fixpoint for recursive
// ones, the stale-answer invalidation hooks on every other mutation path
// (InsertFact, DeleteFacts, Consult, assert/retract, relation
// registration), and the fallback to invalidation for uncovered shapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/core/session.h"
#include "src/core/update.h"

namespace coral {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  void Load(const std::string& src) {
    auto st = db.Consult(src);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }

  std::vector<std::string> Ask(const std::string& query) {
    auto result = db.EvalQuery(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << " for "
                             << query;
    std::vector<std::string> rows;
    if (result.ok()) {
      for (const AnswerRow& r : result->rows) rows.push_back(r.ToString());
      std::sort(rows.begin(), rows.end());
    }
    return rows;
  }

  size_t Count(const std::string& query) { return Ask(query).size(); }

  /// Parses `line` (one fact, no +/- prefix) into a Rule via a throwaway
  /// consult-free path: ApplyUpdate's own batches are built with it.
  UpdateResult Update(const std::string& inserts,
                      const std::string& deletes = "") {
    Session s(&db);
    std::string text;
    {
      std::istringstream in(inserts);
      for (std::string l; std::getline(in, l);) {
        if (!l.empty()) text += "+" + l + "\n";
      }
    }
    {
      std::istringstream in(deletes);
      for (std::string l; std::getline(in, l);) {
        if (!l.empty()) text += "-" + l + "\n";
      }
    }
    auto result = s.ApplyUpdate(text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : UpdateResult{};
  }

  Database db;
};

constexpr char kAncSave[] = R"(
  module saved.
  export anc(bf).
  @save_module.
  anc(X, Y) :- par(X, Y).
  anc(X, Y) :- par(X, Z), anc(Z, Y).
  end_module.
)";

// ---------------------------------------------------------------------
// Satellite: stale answers must never be served, whatever the mutation
// path. Each of these mutates base facts AFTER the save module
// materialized, and checks the next query reflects the change.
// ---------------------------------------------------------------------

TEST_F(MaintenanceTest, InsertFactInvalidatesSavedModule) {
  Load(kAncSave);
  Load("par(a, b). par(b, c).");
  EXPECT_EQ(Count("anc(a, X)"), 2u);  // materializes the saved instance
  Load("par(c, d).");                 // Consult → InsertFactLocked hook
  // par(c, d) arrived after materialization; anc must include it.
  EXPECT_EQ(Count("anc(a, X)"), 3u);
  EXPECT_EQ(Ask("anc(b, X)"), (std::vector<std::string>{"X = c", "X = d"}));
}

TEST_F(MaintenanceTest, DeleteFactsInvalidatesSavedModule) {
  Load(kAncSave);
  Load("par(a, b). par(b, c). par(c, d).");
  EXPECT_EQ(Count("anc(a, X)"), 3u);
  UpdateResult r = Update("", "par(b, c).");
  EXPECT_EQ(r.base_deleted, 1u);
  EXPECT_EQ(Count("anc(a, X)"), 1u);  // only par(a, b) remains reachable
  EXPECT_TRUE(Ask("anc(b, X)").empty());
}

TEST_F(MaintenanceTest, AssertBuiltinInvalidatesSavedModule) {
  Load(kAncSave);
  Load("par(a, b).");
  EXPECT_EQ(Count("anc(a, X)"), 1u);
  // assert/1 from a top-level query bypasses ApplyUpdate entirely.
  EXPECT_EQ(Count("assert(par(b, c))"), 1u);
  EXPECT_EQ(Count("anc(a, X)"), 2u);
  // retract/1 likewise.
  EXPECT_EQ(Count("retract(par(b, c))"), 1u);
  EXPECT_EQ(Count("anc(a, X)"), 1u);
}

TEST_F(MaintenanceTest, UnrelatedPredicateDoesNotInvalidate) {
  Load(kAncSave);
  Load("par(a, b). par(b, c).");
  EXPECT_EQ(Count("anc(a, X)"), 2u);
  uint64_t inserts_before = db.modules()->last_stats().inserts;
  Load("other(1, 2).");  // not read by the module
  EXPECT_EQ(Count("anc(a, X)"), 2u);
  // The saved instance survived: no derivations repeated.
  EXPECT_EQ(db.modules()->last_stats().inserts, inserts_before);
}

// ---------------------------------------------------------------------
// Tentpole: ApplyUpdate maintains covered saved instances in place.
// ---------------------------------------------------------------------

TEST_F(MaintenanceTest, CountingMaintainsNonRecursiveJoin) {
  Load(R"(
    module joins.
    export reach2(ff).
    @save_module.
    reach2(X, Z) :- hop(X, Y), hop(Y, Z).
    end_module.
  )");
  Load("hop(1, 2). hop(2, 3). hop(2, 4).");
  EXPECT_EQ(Ask("reach2(X, Y)"),
            (std::vector<std::string>{"X = 1, Y = 3", "X = 1, Y = 4"}));

  UpdateResult r = Update("hop(3, 5).");
  EXPECT_EQ(r.base_inserted, 1u);
  EXPECT_EQ(r.maintained, 1u);
  EXPECT_EQ(r.invalidated, 0u);
  EXPECT_EQ(Ask("reach2(X, Y)"),
            (std::vector<std::string>{"X = 1, Y = 3", "X = 1, Y = 4",
                                      "X = 2, Y = 5"}));

  // Deleting hop(2, 3) kills 1->3 and 2->5 (the only derivations using
  // it), and the support count of nothing else changes.
  r = Update("", "hop(2, 3).");
  EXPECT_EQ(r.base_deleted, 1u);
  EXPECT_EQ(r.maintained, 1u);
  EXPECT_EQ(Ask("reach2(X, Y)"), (std::vector<std::string>{"X = 1, Y = 4"}));
}

TEST_F(MaintenanceTest, CountingHandlesMultipleDerivations) {
  Load(R"(
    module multi.
    export out(ff).
    @save_module.
    out(X, Z) :- left(X, Y), right(Y, Z).
    end_module.
  )");
  // out(1, 9) has two derivations (via 2 and via 3): deleting one leaves
  // the tuple; deleting both removes it.
  Load("left(1, 2). left(1, 3). right(2, 9). right(3, 9).");
  EXPECT_EQ(Count("out(X, Y)"), 1u);
  UpdateResult r = Update("", "left(1, 2).");
  EXPECT_EQ(r.maintained, 1u);
  EXPECT_EQ(Count("out(X, Y)"), 1u);  // still derivable via left(1, 3)
  r = Update("", "left(1, 3).");
  EXPECT_EQ(r.maintained, 1u);
  EXPECT_EQ(Count("out(X, Y)"), 0u);
}

TEST_F(MaintenanceTest, DRedMaintainsRecursiveClosure) {
  Load(kAncSave);
  Load("par(a, b). par(b, c). par(c, d).");
  EXPECT_EQ(Count("anc(a, X)"), 3u);

  // Insertion into a recursive module: new tuples propagate through the
  // resumed fixpoint.
  UpdateResult r = Update("par(d, e).");
  EXPECT_EQ(r.maintained, 1u);
  EXPECT_EQ(r.invalidated, 0u);
  EXPECT_EQ(Count("anc(a, X)"), 4u);
  EXPECT_GE(r.derived_inserted, 1u);

  // Deletion cuts the chain; everything below the cut disappears.
  r = Update("", "par(b, c).");
  EXPECT_EQ(r.maintained, 1u);
  EXPECT_EQ(Ask("anc(a, X)"), (std::vector<std::string>{"X = b"}));
  EXPECT_GE(r.derived_deleted, 1u);
}

TEST_F(MaintenanceTest, DRedRederivesAlternatePaths) {
  Load(R"(
    module tcm.
    export tc(bf).
    @save_module.
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    end_module.
  )");
  // Diamond: a->b->d and a->c->d; deleting a->b must keep tc(a, d)
  // (rederivable via c) while dropping tc(a, b).
  Load("edge(a, b). edge(b, d). edge(a, c). edge(c, d).");
  EXPECT_EQ(Ask("tc(a, X)"),
            (std::vector<std::string>{"X = b", "X = c", "X = d"}));
  UpdateResult r = Update("", "edge(a, b).");
  EXPECT_EQ(r.maintained, 1u);
  EXPECT_EQ(Ask("tc(a, X)"), (std::vector<std::string>{"X = c", "X = d"}));
}

TEST_F(MaintenanceTest, MixedBatchNetsInsertAndDelete) {
  Load(kAncSave);
  Load("par(a, b). par(b, c).");
  EXPECT_EQ(Count("anc(a, X)"), 2u);
  // One batch: delete par(b, c), add par(b, d) and re-add par(b, c).
  // The delete+insert of par(b, c) nets out; only par(b, d) is new.
  UpdateResult r = Update("par(b, c).\npar(b, d).", "par(b, c).");
  EXPECT_EQ(r.maintained, 1u);
  EXPECT_EQ(Ask("anc(a, X)"),
            (std::vector<std::string>{"X = b", "X = c", "X = d"}));
}

TEST_F(MaintenanceTest, NewSeedBetweenUpdatesRebuildsCounts) {
  Load(kAncSave);
  Load("par(a, b). par(b, c). par(c, d).");
  EXPECT_EQ(Count("anc(a, X)"), 3u);
  UpdateResult r = Update("par(d, e).");
  EXPECT_EQ(r.maintained, 1u);
  // A different subgoal re-seeds the saved instance (dropping the
  // support counts); the next update must still be correct.
  EXPECT_EQ(Count("anc(c, X)"), 2u);
  r = Update("", "par(c, d).");
  EXPECT_EQ(r.maintained, 1u);
  EXPECT_EQ(Ask("anc(a, X)"), (std::vector<std::string>{"X = b", "X = c"}));
  EXPECT_TRUE(Ask("anc(c, X)").empty());
}

TEST_F(MaintenanceTest, RepeatedUpdatesStayConsistent) {
  Load(kAncSave);
  std::string facts;
  for (int i = 0; i < 10; ++i) {
    facts += "par(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").\n";
  }
  Load(facts);
  EXPECT_EQ(Count("anc(n0, X)"), 10u);
  // Grow the chain one edge at a time; every step must be maintained and
  // visible.
  for (int i = 10; i < 15; ++i) {
    UpdateResult r = Update("par(n" + std::to_string(i) + ", n" +
                            std::to_string(i + 1) + ").");
    EXPECT_EQ(r.maintained, 1u) << "step " << i;
    EXPECT_EQ(Count("anc(n0, X)"), static_cast<size_t>(i + 1));
  }
  // Shrink it back.
  for (int i = 14; i >= 10; --i) {
    UpdateResult r = Update("", "par(n" + std::to_string(i) + ", n" +
                                    std::to_string(i + 1) + ").");
    EXPECT_EQ(r.maintained, 1u) << "step " << i;
    EXPECT_EQ(Count("anc(n0, X)"), static_cast<size_t>(i));
  }
}

// ---------------------------------------------------------------------
// Fallback: uncovered shapes invalidate (and answers stay correct).
// ---------------------------------------------------------------------

TEST_F(MaintenanceTest, NegationFallsBackToInvalidation) {
  Load(R"(
    module neg.
    export lonely(f).
    @save_module.
    lonely(X) :- node(X), not linked(X).
    end_module.
  )");
  Load("node(1). node(2). linked(1).");
  EXPECT_EQ(Ask("lonely(X)"), (std::vector<std::string>{"X = 2"}));
  UpdateResult r = Update("linked(2).");
  EXPECT_EQ(r.maintained, 0u);
  EXPECT_EQ(r.invalidated, 1u);
  EXPECT_TRUE(Ask("lonely(X)").empty());
}

TEST_F(MaintenanceTest, AggregationFallsBackToInvalidation) {
  Load(R"(
    module agg.
    export total(f).
    @save_module.
    total(sum(<X>)) :- item(X).
    end_module.
  )");
  Load("item(3). item(4).");
  EXPECT_EQ(Ask("total(X)"), (std::vector<std::string>{"X = 7"}));
  UpdateResult r = Update("item(5).");
  EXPECT_EQ(r.maintained, 0u);
  EXPECT_EQ(r.invalidated, 1u);
  EXPECT_EQ(Ask("total(X)"), (std::vector<std::string>{"X = 12"}));
}

TEST_F(MaintenanceTest, NonGroundUpdateFallsBackToInvalidation) {
  Load(kAncSave);
  Load("par(a, b). par(b, c).");
  EXPECT_EQ(Count("anc(a, X)"), 2u);
  // A non-ground insert can subsume future queries; counting keys on
  // interned ground tuples, so this batch invalidates instead.
  UpdateResult r = Update("par(c, W).");
  EXPECT_EQ(r.maintained, 0u);
  EXPECT_EQ(r.invalidated, 1u);
  EXPECT_EQ(Count("anc(a, X)"), 3u);
}

TEST_F(MaintenanceTest, UpdateBeforeFirstQueryIsCheap) {
  Load(kAncSave);
  Load("par(a, b).");
  // No query yet: no saved instance exists, nothing to maintain.
  UpdateResult r = Update("par(b, c).");
  EXPECT_EQ(r.maintained, 0u);
  EXPECT_EQ(r.invalidated, 0u);
  EXPECT_EQ(Count("anc(a, X)"), 2u);
}

// ---------------------------------------------------------------------
// Session text API, counters, report.
// ---------------------------------------------------------------------

TEST_F(MaintenanceTest, SessionTextApi) {
  Load(kAncSave);
  Load("par(a, b).");
  EXPECT_EQ(Count("anc(a, X)"), 1u);
  Session s(&db);
  auto r = s.ApplyUpdate("% grow then cut\n  +par(b, c).\n\n-par(a, b).\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->base_inserted, 1u);
  EXPECT_EQ(r->base_deleted, 1u);
  EXPECT_TRUE(Ask("anc(a, X)").empty());
  EXPECT_EQ(Ask("anc(b, X)"), (std::vector<std::string>{"X = c"}));

  auto bad = s.ApplyUpdate("par(x, y).");
  EXPECT_FALSE(bad.ok());
  bad = s.ApplyUpdate("+par(x, y) :- q(x).");
  EXPECT_FALSE(bad.ok());
}

TEST_F(MaintenanceTest, CountersAndProfileReport) {
  Load(kAncSave);
  Load("par(a, b).");
  EXPECT_EQ(Count("anc(a, X)"), 1u);
  Update("par(b, c).");
  const obs::MaintenanceCounters& mc = db.maintenance_counters();
  EXPECT_GE(mc.updates.load(), 1u);
  EXPECT_GE(mc.maintained.load(), 1u);
  std::string report = db.ProfileReport();
  EXPECT_NE(report.find("incremental updates"), std::string::npos);
  EXPECT_NE(report.find("maintained"), std::string::npos);
}

TEST_F(MaintenanceTest, EmptyBatchIsANoOp) {
  Load(kAncSave);
  Load("par(a, b).");
  EXPECT_EQ(Count("anc(a, X)"), 1u);
  UpdateResult r = Update("");
  EXPECT_EQ(r.base_inserted, 0u);
  EXPECT_EQ(r.base_deleted, 0u);
  EXPECT_EQ(r.maintained, 0u);
  EXPECT_EQ(r.invalidated, 0u);
  // Duplicate insert and missing delete also net to nothing.
  r = Update("par(a, b).", "par(zz, zz).");
  EXPECT_EQ(r.base_inserted, 0u);
  EXPECT_EQ(r.base_deleted, 0u);
  EXPECT_EQ(r.maintained, 0u);
  EXPECT_EQ(Count("anc(a, X)"), 1u);
}

}  // namespace
}  // namespace coral
