// Tests for the public embedding facade: the <coral/coral.h> umbrella
// header (the only include in this file), the uniform StatusOr<> entry
// points, the EvalQuery rename (with its deprecated Query_ alias), the
// Coral-facade observability passthroughs, and TraceEvent JSONL
// round-tripping through the parser.

#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include <coral/coral.h>

namespace coral {
namespace {

constexpr const char* kProgram =
    "edge(a, b). edge(b, c). edge(c, d).\n"
    "module paths.\n"
    "export path(ff).\n"
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
    "end_module.\n";

TEST(ApiTest, DatabaseEntryPointsReturnStatusOr) {
  Database db;
  // Consult returns the parsed-but-unexecuted queries.
  StatusOr<std::vector<Query>> consulted =
      db.Consult(std::string(kProgram) + "?- path(a, X).\n");
  ASSERT_TRUE(consulted.ok()) << consulted.status().ToString();
  ASSERT_EQ(consulted->size(), 1u);

  StatusOr<QueryResult> result = db.EvalQuery("path(a, X)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);

  StatusOr<QueryResult> executed = db.ExecuteQuery((*consulted)[0]);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  EXPECT_EQ(executed->rows.size(), 3u);

  StatusOr<std::string> out = db.Run("?- path(b, X).");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("X = c"), std::string::npos) << *out;
}

TEST(ApiTest, ErrorsUseDocumentedStatusCodes) {
  Database db;
  // Parse error -> kInvalidArgument.
  EXPECT_EQ(db.EvalQuery("path(a, ").status().code(),
            StatusCode::kInvalidArgument);
  // Missing file -> kNotFound. (An unknown predicate in a query is NOT
  // an error: the deductive-database convention is an empty relation.)
  EXPECT_EQ(db.ConsultFile("/no/such/file.coral").status().code(),
            StatusCode::kNotFound);
}

TEST(ApiTest, DeprecatedQueryAliasStillWorks) {
  Database db;
  ASSERT_TRUE(db.Consult(kProgram).ok());
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  StatusOr<QueryResult> result = db.Query_("path(a, X)");
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST(ApiTest, CoralFacadeCoversEmbeddingSurface) {
  Coral c;
  auto consulted = c.Consult(kProgram);
  ASSERT_TRUE(consulted.ok()) << consulted.status().ToString();

  auto result = c.EvalQuery("path(a, X)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);

  // Relation and scan surface, re-exported by the umbrella header.
  Relation* edges = c.GetRelation("edge", 2);
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->size(), 3u);
  auto scan = c.OpenScan("path(a, X)");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
}

TEST(ApiTest, FacadeProfilingPassthroughs) {
  Coral c;
  ASSERT_TRUE(c.Consult(kProgram).ok());
  EXPECT_TRUE(c.Stats()->empty());

  c.SetProfiling(true);
  ASSERT_TRUE(c.EvalQuery("path(a, X)").ok());
  const obs::ModuleProfile* p = c.Stats()->Find("paths");
  ASSERT_NE(p, nullptr);
  EXPECT_GT(p->total_inserted(), 0u);
  EXPECT_NE(c.ProfileReport().find("paths"), std::string::npos);

  c.ClearStats();
  EXPECT_TRUE(c.Stats()->empty());

  // Switched off again: nothing is collected.
  c.SetProfiling(false);
  ASSERT_TRUE(c.EvalQuery("path(a, X)").ok());
  EXPECT_TRUE(c.Stats()->empty());
}

TEST(ApiTest, FacadeTraceSinkPassthrough) {
  Coral c;
  ASSERT_TRUE(c.Consult(kProgram).ok());
  obs::CollectingTraceSink sink;
  c.SetTraceSink(&sink);
  ASSERT_TRUE(c.EvalQuery("path(a, X)").ok());
  c.SetTraceSink(nullptr);
  ASSERT_FALSE(sink.events().empty());
  EXPECT_EQ(sink.events().front().kind, obs::TraceKind::kModuleCall);

  // Detached: no further events.
  size_t n = sink.events().size();
  ASSERT_TRUE(c.EvalQuery("path(b, X)").ok());
  EXPECT_EQ(sink.events().size(), n);
}

TEST(ApiTest, TraceEventJsonRoundTrip) {
  obs::TraceEvent ev;
  ev.kind = obs::TraceKind::kRuleFire;
  ev.module = "m1";
  ev.pred = "p/2";
  ev.detail = "p(a, \"quo\\ted\nline\")";
  ev.scc = 3;
  ev.rule = 7;
  ev.iter = 12;
  ev.count = 42;
  ev.ns = 1234567;

  auto back = obs::TraceEvent::FromJson(ev.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, ev.kind);
  EXPECT_EQ(back->module, ev.module);
  EXPECT_EQ(back->pred, ev.pred);
  EXPECT_EQ(back->detail, ev.detail);
  EXPECT_EQ(back->scc, ev.scc);
  EXPECT_EQ(back->rule, ev.rule);
  EXPECT_EQ(back->iter, ev.iter);
  EXPECT_EQ(back->count, ev.count);
  EXPECT_EQ(back->ns, ev.ns);

  // Defaults survive: an event with only a kind.
  obs::TraceEvent bare;
  bare.kind = obs::TraceKind::kIterBegin;
  auto bare_back = obs::TraceEvent::FromJson(bare.ToJson());
  ASSERT_TRUE(bare_back.ok());
  EXPECT_EQ(bare_back->kind, obs::TraceKind::kIterBegin);
  EXPECT_EQ(bare_back->scc, -1);
  EXPECT_TRUE(bare_back->module.empty());

  // Malformed input is rejected, not crashed on.
  EXPECT_FALSE(obs::TraceEvent::FromJson("").ok());
  EXPECT_FALSE(obs::TraceEvent::FromJson("{\"scc\": 1}").ok());
  EXPECT_FALSE(obs::TraceEvent::FromJson("{\"ev\": \"nonsense\"}").ok());
  EXPECT_FALSE(obs::TraceEvent::FromJson("{\"ev\": \"insert\"").ok());
}

}  // namespace
}  // namespace coral
