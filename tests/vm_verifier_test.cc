// Mutation-kill tests for the static bytecode verifier (docs/VM.md
// "Verification"): every compiler-produced program for the canonical
// recursive modules is corrupted field by field, and each mutant must be
// rejected with the expected CRL3xx diagnostic — before anything binds.
// The whole-plan auditor (AuditModule) is exercised the same way for the
// plan-consistency (CRL313), probe-index (CRL302), and type-lattice
// (CRL303) passes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/lang/parser.h"
#include "src/rewrite/rewriter.h"
#include "src/vm/bytecode.h"
#include "src/vm/compiler.h"
#include "src/vm/verifier.h"

namespace coral {
namespace {

// The golden modules of vm_test, spanning the interesting shapes: plain
// recursion, supplementary magic, @magic, and a constant-match body.
constexpr char kTransitiveClosure[] = R"(
  module tc.
  export path(bf).
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- path(X, Z), edge(Z, Y).
  end_module.
)";

constexpr char kSameGeneration[] = R"(
  module sg.
  export sg(bf).
  sg(X, Y) :- flat(X, Y).
  sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
  end_module.
)";

constexpr char kMagicAncestor[] = R"(
  module m.
  export anc(bf).
  @magic.
  anc(X, Y) :- par(X, Y).
  anc(X, Y) :- par(X, Z), anc(Z, Y).
  end_module.
)";

constexpr char kConstantMatch[] = R"(
  module ct.
  export p(f).
  @no_rewriting.
  p(X) :- e(X, 5).
  end_module.
)";

/// One module compiled the way the engine compiles it; owns everything
/// the audit needs to stay alive.
struct CompiledForm {
  std::unique_ptr<TermFactory> factory;
  Program program;
  std::unique_ptr<RewrittenProgram> rewritten;
  vm::ModuleProgram mp;
};

void CompileText(const std::string& text, CompiledForm* out) {
  out->factory = std::make_unique<TermFactory>();
  Parser parser(text, out->factory.get());
  auto prog = parser.ParseProgram();
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_EQ(prog->modules.size(), 1u);
  out->program = std::move(*prog);
  const ModuleDecl& decl = out->program.modules[0];
  ASSERT_FALSE(decl.exports.empty());
  RewriteOptions ropts;
  auto rewritten =
      RewriteModule(decl, decl.exports[0], out->factory.get(), ropts);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  out->rewritten = std::make_unique<RewrittenProgram>(std::move(*rewritten));
  vm::CompileEnv cenv;  // default callbacks: nothing external
  out->mp = vm::CompileModule(*out->rewritten, decl, cenv);
  ASSERT_GT(out->mp.compiled, 0u);
}

/// Every compiled program of a module, in a stable order.
std::vector<vm::RuleProgram*> Programs(vm::ModuleProgram* mp) {
  std::vector<vm::RuleProgram*> out;
  for (vm::SccPrograms& sp : mp->sccs) {
    for (auto* table : {&sp.versions, &sp.once}) {
      for (auto& rp : *table) {
        if (rp != nullptr) out.push_back(rp.get());
      }
    }
  }
  return out;
}

bool HasError(const vm::VerifyReport& r, const char* code) {
  for (const vm::VerifyFinding& f : r.findings) {
    if (f.severity == vm::VerifySeverity::kError &&
        std::string_view(f.code) == code) {
      return true;
    }
  }
  return false;
}

/// Applies one mutation to a copy of `prog` and requires the verifier to
/// reject it with an error carrying `code`. Returns 1 (a killed mutant)
/// so call sites tally coverage.
template <typename Fn>
size_t Killed(const vm::RuleProgram& prog, const char* code, Fn mutate) {
  vm::RuleProgram m = prog;
  mutate(&m);
  vm::VerifyReport r = vm::VerifyProgram(m);
  EXPECT_FALSE(r.ok()) << "mutant survived (" << code << "):\n"
                       << vm::Disassemble(m);
  EXPECT_TRUE(HasError(r, code))
      << "expected " << code << ", got:\n"
      << r.ToString() << "program:\n"
      << vm::Disassemble(m);
  return 1;
}

/// Corrupts every corruptible field of one program, pairing each mutation
/// class with the CRL3xx code the verifier must emit.
size_t MutateProgram(const vm::RuleProgram& prog) {
  namespace vd = vm::vdiag;
  size_t mutants = 0;

  // Whole-program shape and bounds.
  mutants += Killed(prog, vd::kOperandBounds,
                    [](vm::RuleProgram* m) { m->nregs = vm::kMaxRegisters + 1; });
  mutants += Killed(prog, vd::kShape,
                    [](vm::RuleProgram* m) { m->code.clear(); });
  // Dropping INSERT leaves PROJECT mis-positioned; dropping both loses
  // the tail entirely.
  mutants += Killed(prog, vd::kShape,
                    [](vm::RuleProgram* m) { m->code.pop_back(); });
  mutants += Killed(prog, vd::kShape, [](vm::RuleProgram* m) {
    m->code.pop_back();
    m->code.pop_back();
  });
  // An extra head operand breaks the head-arity agreement.
  mutants += Killed(prog, vd::kOperandBounds, [](vm::RuleProgram* m) {
    m->head.push_back(vm::Operand{});
  });
  // A truncated pred table orphans the last scan level.
  mutants += Killed(prog, vd::kOperandBounds,
                    [](vm::RuleProgram* m) { m->preds.pop_back(); });
  if (!prog.consts.empty()) {
    mutants += Killed(prog, vd::kOperandBounds,
                      [](vm::RuleProgram* m) { m->consts[0] = nullptr; });
  }
  if (!prog.head.empty() && !prog.head[0].is_const) {
    mutants += Killed(prog, vd::kRegisterDataflow, [](vm::RuleProgram* m) {
      m->head[0].index = m->nregs;
    });
  }

  // Per-instruction field corruption.
  bool first_scan = true;
  for (size_t i = 0; i < prog.code.size(); ++i) {
    const vm::Instr& in = prog.code[i];
    switch (in.op) {
      case vm::Op::kScanFull:
      case vm::Op::kScanDelta:
      case vm::Op::kProbeIndex:
        mutants += Killed(prog, vd::kOperandBounds, [i](vm::RuleProgram* m) {
          m->code[i].pred = static_cast<uint32_t>(m->preds.size());
        });
        mutants += Killed(prog, vd::kShape, [i](vm::RuleProgram* m) {
          m->code[i].lit = vm::kMaxLiterals;
        });
        if (!first_scan && in.lit > 0) {
          // Re-opening an already-passed literal index.
          mutants += Killed(prog, vd::kShape, [i](vm::RuleProgram* m) {
            m->code[i].lit = 0;
          });
        }
        if (in.op == vm::Op::kScanDelta) {
          mutants += Killed(prog, vd::kShape, [i](vm::RuleProgram* m) {
            m->code[i].window = RangeSel::kFull;
          });
        }
        if (in.op == vm::Op::kScanFull) {
          mutants += Killed(prog, vd::kShape, [i](vm::RuleProgram* m) {
            m->code[i].window = RangeSel::kDelta;
          });
        }
        first_scan = false;
        break;
      case vm::Op::kUnifyArg:
        mutants += Killed(prog, vd::kOperandBounds, [i](vm::RuleProgram* m) {
          m->code[i].col = 200;  // far beyond any test predicate's arity
        });
        switch (in.mode) {
          case vm::UnifyMode::kLoadReg:
            mutants +=
                Killed(prog, vd::kRegisterDataflow, [i](vm::RuleProgram* m) {
                  m->code[i].a.index = m->nregs;
                });
            mutants +=
                Killed(prog, vd::kRegisterDataflow, [i](vm::RuleProgram* m) {
                  m->code[i].a.is_const = true;
                });
            break;
          case vm::UnifyMode::kMatchConst:
            mutants +=
                Killed(prog, vd::kOperandBounds, [i](vm::RuleProgram* m) {
                  m->code[i].a.is_const = false;
                });
            mutants +=
                Killed(prog, vd::kOperandBounds, [i](vm::RuleProgram* m) {
                  m->code[i].a.index =
                      static_cast<uint32_t>(m->consts.size());
                });
            break;
          case vm::UnifyMode::kCheckReg:
            mutants +=
                Killed(prog, vd::kRegisterDataflow, [i](vm::RuleProgram* m) {
                  m->code[i].a.index = m->nregs;
                });
            // A check implies the register is already loaded, so turning
            // the check into a load violates load-exactly-once.
            mutants +=
                Killed(prog, vd::kRegisterDataflow, [i](vm::RuleProgram* m) {
                  m->code[i].mode = vm::UnifyMode::kLoadReg;
                });
            break;
        }
        break;
      case vm::Op::kTestBuiltin:
        for (auto field : {&vm::Instr::a, &vm::Instr::b}) {
          const vm::Operand& o = in.*field;
          mutants += Killed(
              prog, o.is_const ? vd::kOperandBounds : vd::kRegisterDataflow,
              [i, field](vm::RuleProgram* m) {
                vm::Operand& mo = m->code[i].*field;
                mo.index = mo.is_const
                               ? static_cast<uint32_t>(m->consts.size())
                               : m->nregs;
              });
        }
        break;
      case vm::Op::kProject:
        // INSERT before PROJECT: the tail must close in order.
        if (i + 1 < prog.code.size()) {
          mutants += Killed(prog, vd::kShape, [i](vm::RuleProgram* m) {
            std::swap(m->code[i], m->code[i + 1]);
          });
        }
        break;
      case vm::Op::kInsert:
        break;
    }
  }
  return mutants;
}

TEST(VmVerifierMutation, EveryCorruptedFieldIsRejected) {
  size_t mutants = 0;
  for (const char* source : {kTransitiveClosure, kSameGeneration,
                             kMagicAncestor, kConstantMatch}) {
    CompiledForm cf;
    CompileText(source, &cf);
    if (::testing::Test::HasFatalFailure()) return;
    for (vm::RuleProgram* rp : Programs(&cf.mp)) {
      // The unmutated program is clean (modulo dead-register notes).
      EXPECT_TRUE(vm::VerifyProgram(*rp).ok()) << vm::Disassemble(*rp);
      mutants += MutateProgram(*rp);
    }
  }
  // The matrix must be a real gauntlet, not a handful of spot checks.
  EXPECT_GT(mutants, 100u);
}

// Every mutant must also be unserializable: Disassemble the corrupt
// program and Deserialize must refuse it (operand mutations) or the
// verifier embedded in Deserialize must (shape mutations). Spot-check
// the classes whose disassembly is still parseable text.
TEST(VmVerifierMutation, MutantsDoNotRoundTripThroughDeserialize) {
  CompiledForm cf;
  CompileText(kTransitiveClosure, &cf);
  if (::testing::Test::HasFatalFailure()) return;
  std::vector<vm::RuleProgram*> progs = Programs(&cf.mp);
  ASSERT_FALSE(progs.empty());
  size_t checked = 0;
  for (vm::RuleProgram* rp : progs) {
    for (size_t i = 0; i < rp->code.size(); ++i) {
      if (rp->code[i].op != vm::Op::kScanDelta) continue;
      vm::RuleProgram m = *rp;
      m.code[i].window = RangeSel::kFull;  // SCAN_DELTA window=full
      auto back = vm::Deserialize(vm::Disassemble(m), cf.factory.get());
      EXPECT_FALSE(back.ok()) << vm::Disassemble(m);
      ++checked;
    }
    if (rp->code.size() >= 2) {
      vm::RuleProgram m = *rp;
      m.code.pop_back();  // drop INSERT: no PROJECT/INSERT tail
      auto back = vm::Deserialize(vm::Disassemble(m), cf.factory.get());
      EXPECT_FALSE(back.ok()) << vm::Disassemble(m);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

// ---------------------------------------------------------------------
// Whole-plan audit: CRL313 plan consistency, CRL302 probe-vs-index,
// CRL303 type lattice
// ---------------------------------------------------------------------

bool AnyVerdictHas(const vm::ModuleAudit& audit, const char* code) {
  for (const vm::ProgramVerdict& v : audit.verdicts) {
    if (v.report.Has(code)) return true;
  }
  return false;
}

TEST(VmVerifierAudit, CleanCompileAuditsClean) {
  for (const char* source : {kTransitiveClosure, kSameGeneration,
                             kMagicAncestor, kConstantMatch}) {
    CompiledForm cf;
    CompileText(source, &cf);
    if (::testing::Test::HasFatalFailure()) return;
    vm::AuditOptions opts;
    opts.rewritten = cf.rewritten.get();
    opts.decl = &cf.program.modules[0];
    opts.index_plan_authoritative = true;
    vm::ModuleAudit audit = vm::AuditModule(cf.mp, opts);
    EXPECT_TRUE(audit.ok()) << audit.ToString();
    EXPECT_EQ(audit.rejected, 0u);
    EXPECT_EQ(audit.warnings, 0u) << audit.ToString();
    EXPECT_GT(audit.verified, 0u);
  }
}

TEST(VmVerifierAudit, RuleIndexOutOfRangeIsRejected) {
  CompiledForm cf;
  CompileText(kTransitiveClosure, &cf);
  if (::testing::Test::HasFatalFailure()) return;
  std::vector<vm::RuleProgram*> progs = Programs(&cf.mp);
  ASSERT_FALSE(progs.empty());
  progs[0]->rule_index += 1000;
  vm::AuditOptions opts;
  opts.rewritten = cf.rewritten.get();
  vm::ModuleAudit audit = vm::AuditModule(cf.mp, opts);
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.rejected, 1u);
  EXPECT_TRUE(AnyVerdictHas(audit, vm::vdiag::kOperandBounds))
      << audit.ToString();
}

TEST(VmVerifierAudit, WindowDisagreeingWithPlanIsRejected) {
  CompiledForm cf;
  CompileText(kTransitiveClosure, &cf);
  if (::testing::Test::HasFatalFailure()) return;
  // Flip one full-window probe to the old window: structurally legal, but
  // it no longer implements the semi-naive version it claims to.
  bool flipped = false;
  for (vm::RuleProgram* rp : Programs(&cf.mp)) {
    for (vm::Instr& in : rp->code) {
      if (in.op == vm::Op::kProbeIndex && in.window == RangeSel::kFull) {
        in.window = RangeSel::kOld;
        ASSERT_TRUE(vm::BuildLevels(rp).ok());
        flipped = true;
        break;
      }
    }
    if (flipped) break;
  }
  ASSERT_TRUE(flipped);
  vm::AuditOptions opts;
  opts.rewritten = cf.rewritten.get();
  vm::ModuleAudit audit = vm::AuditModule(cf.mp, opts);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(AnyVerdictHas(audit, vm::vdiag::kPlanMismatch))
      << audit.ToString();
}

TEST(VmVerifierAudit, ProbeWithoutPlannedIndexWarnsCRL302) {
  CompiledForm cf;
  CompileText(kTransitiveClosure, &cf);
  if (::testing::Test::HasFatalFailure()) return;
  // Discard the optimizer's index plan while claiming it is
  // authoritative: the probes of edge/2 lose their backing index.
  cf.rewritten->index_plan.clear();
  vm::AuditOptions opts;
  opts.rewritten = cf.rewritten.get();
  opts.decl = &cf.program.modules[0];
  opts.index_plan_authoritative = true;
  vm::ModuleAudit audit = vm::AuditModule(cf.mp, opts);
  EXPECT_TRUE(audit.ok());  // a degraded probe still runs correctly
  EXPECT_GT(audit.warnings, 0u);
  EXPECT_TRUE(AnyVerdictHas(audit, vm::vdiag::kProbeNoIndex))
      << audit.ToString();
}

TEST(VmVerifierAudit, AlwaysFailComparisonWarnsCRL303) {
  CompiledForm cf;
  CompileText(kTransitiveClosure, &cf);
  if (::testing::Test::HasFatalFailure()) return;
  std::vector<vm::RuleProgram*> progs = Programs(&cf.mp);
  ASSERT_FALSE(progs.empty());
  vm::RuleProgram* rp = progs[0];
  // Graft "1 = 2" into the innermost level: two distinct canonical int
  // constants compared for equality can never succeed.
  uint32_t vars = 0;
  auto one = Parser::ParseTerm("1", cf.factory.get(), &vars);
  auto two = Parser::ParseTerm("2", cf.factory.get(), &vars);
  ASSERT_TRUE(one.ok() && two.ok());
  uint32_t c1 = static_cast<uint32_t>(rp->consts.size());
  rp->consts.push_back(*one);
  rp->consts.push_back(*two);
  vm::Instr test;
  test.op = vm::Op::kTestBuiltin;
  test.cmp = vm::CmpOp::kEq;
  test.a = vm::Operand{true, c1};
  test.b = vm::Operand{true, c1 + 1};
  ASSERT_GE(rp->code.size(), 2u);
  rp->code.insert(rp->code.end() - 2, test);  // before PROJECT
  ASSERT_TRUE(vm::BuildLevels(rp).ok());
  vm::AuditOptions opts;
  opts.rewritten = cf.rewritten.get();
  vm::ModuleAudit audit = vm::AuditModule(cf.mp, opts);
  EXPECT_GT(audit.warnings, 0u);
  EXPECT_TRUE(AnyVerdictHas(audit, vm::vdiag::kAlwaysFailUnify))
      << audit.ToString();
}

TEST(VmVerifierAudit, SelfInequalityWarnsCRL303) {
  CompiledForm cf;
  CompileText(kTransitiveClosure, &cf);
  if (::testing::Test::HasFatalFailure()) return;
  std::vector<vm::RuleProgram*> progs = Programs(&cf.mp);
  ASSERT_FALSE(progs.empty());
  vm::RuleProgram* rp = progs[0];
  uint32_t vars = 0;
  auto one = Parser::ParseTerm("1", cf.factory.get(), &vars);
  ASSERT_TRUE(one.ok());
  uint32_t c = static_cast<uint32_t>(rp->consts.size());
  rp->consts.push_back(*one);
  vm::Instr test;
  test.op = vm::Op::kTestBuiltin;
  test.cmp = vm::CmpOp::kNe;
  test.a = vm::Operand{true, c};
  test.b = vm::Operand{true, c};  // the same canonical constant
  ASSERT_GE(rp->code.size(), 2u);
  rp->code.insert(rp->code.end() - 2, test);
  ASSERT_TRUE(vm::BuildLevels(rp).ok());
  vm::AuditOptions opts;
  opts.rewritten = cf.rewritten.get();
  vm::ModuleAudit audit = vm::AuditModule(cf.mp, opts);
  EXPECT_TRUE(AnyVerdictHas(audit, vm::vdiag::kAlwaysFailUnify))
      << audit.ToString();
}

}  // namespace
}  // namespace coral
