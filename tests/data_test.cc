// Unit tests for the data manager: Arg hierarchy, hash-consing, bindenvs,
// unification, matching, subsumption and resolution (paper §3, Fig. 2).

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/data/bindenv.h"
#include "src/data/term_factory.h"
#include "src/data/tuple.h"
#include "src/data/unify.h"

namespace coral {
namespace {

class DataTest : public ::testing::Test {
 protected:
  TermFactory f;
};

TEST_F(DataTest, PrimitiveInterning) {
  EXPECT_EQ(f.MakeInt(42), f.MakeInt(42));
  EXPECT_NE(f.MakeInt(42), f.MakeInt(43));
  EXPECT_EQ(f.MakeDouble(2.5), f.MakeDouble(2.5));
  EXPECT_EQ(f.MakeString("abc"), f.MakeString("abc"));
  EXPECT_NE(f.MakeString("abc"), f.MakeString("abd"));
  EXPECT_EQ(f.MakeAtom("john"), f.MakeAtom("john"));
  EXPECT_EQ(f.MakeBigInt(BigInt(7)), f.MakeBigInt(BigInt(7)));
}

TEST_F(DataTest, IntAndDoubleAreDistinctTypes) {
  const Arg* i = f.MakeInt(1);
  const Arg* d = f.MakeDouble(1.0);
  EXPECT_NE(i, d);
  EXPECT_FALSE(i->Equals(*d));
  Trail tr;
  EXPECT_FALSE(Unify(i, nullptr, d, nullptr, &tr));
}

TEST_F(DataTest, GroundFunctorHashConsing) {
  // f(1, g(2)) built twice yields the same node: the paper's unique-id
  // property for ground terms.
  const Arg* in1[] = {f.MakeInt(2)};
  const Arg* g1 = f.MakeFunctor("g", in1);
  const Arg* in2[] = {f.MakeInt(1), g1};
  const Arg* t1 = f.MakeFunctor("f", in2);

  const Arg* in3[] = {f.MakeInt(2)};
  const Arg* g2 = f.MakeFunctor("g", in3);
  const Arg* in4[] = {f.MakeInt(1), g2};
  const Arg* t2 = f.MakeFunctor("f", in4);

  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1->uid(), t2->uid());
  EXPECT_TRUE(t1->IsGround());
}

TEST_F(DataTest, NonGroundFunctorsNotInterned) {
  const Variable* x = f.MakeVariable(0, "X");
  const Arg* a1[] = {x};
  const Arg* t1 = f.MakeFunctor("f", a1);
  const Arg* t2 = f.MakeFunctor("f", a1);
  EXPECT_NE(t1, t2);          // fresh nodes
  EXPECT_TRUE(t1->Equals(*t2));  // but structurally equal
  EXPECT_FALSE(t1->IsGround());
}

TEST_F(DataTest, ListConstructionAndPrinting) {
  std::vector<const Arg*> elems = {f.MakeInt(1), f.MakeInt(2), f.MakeInt(3)};
  const Arg* list = f.MakeList(elems);
  EXPECT_EQ(list->ToString(), "[1,2,3]");
  EXPECT_EQ(f.Nil()->ToString(), "[]");

  const Variable* t = f.MakeVariable(0, "T");
  const Arg* partial = f.MakeList(std::span<const Arg* const>(&elems[0], 1), t);
  EXPECT_EQ(partial->ToString(), "[1|T]");

  // Lists are hash-consed like any ground functor term.
  EXPECT_EQ(list, f.MakeList(elems));
}

TEST_F(DataTest, PrintingForms) {
  EXPECT_EQ(f.MakeInt(-5)->ToString(), "-5");
  EXPECT_EQ(f.MakeDouble(1.0)->ToString(), "1.0");
  EXPECT_EQ(f.MakeString("a\"b")->ToString(), "\"a\\\"b\"");
  EXPECT_EQ(f.MakeAtom("john")->ToString(), "john");
  EXPECT_EQ(f.MakeAtom("John Smith")->ToString(), "'John Smith'");
  EXPECT_EQ(f.MakeBigInt(BigInt(12))->ToString(), "12B");
  const Arg* in[] = {f.MakeAtom("a"), f.MakeInt(1)};
  EXPECT_EQ(f.MakeFunctor("pair", in)->ToString(), "pair(a,1)");
}

TEST_F(DataTest, SetCanonicalization) {
  std::vector<const Arg*> e1 = {f.MakeInt(3), f.MakeInt(1), f.MakeInt(2),
                                f.MakeInt(1)};
  const SetArg* s1 = f.MakeSet(e1);
  EXPECT_EQ(s1->size(), 3u);
  EXPECT_EQ(s1->ToString(), "{1,2,3}");
  std::vector<const Arg*> e2 = {f.MakeInt(2), f.MakeInt(3), f.MakeInt(1)};
  EXPECT_EQ(s1, f.MakeSet(e2));  // order-insensitive identity
  EXPECT_TRUE(s1->Contains(f.MakeInt(2)));
  EXPECT_FALSE(s1->Contains(f.MakeInt(9)));
}

TEST_F(DataTest, CompareArgsTotalOrder) {
  // Numeric kinds compare numerically across types.
  EXPECT_LT(CompareArgs(f.MakeInt(1), f.MakeDouble(1.5)), 0);
  EXPECT_GT(CompareArgs(f.MakeInt(2), f.MakeDouble(1.5)), 0);
  EXPECT_LT(CompareArgs(f.MakeInt(1), f.MakeBigInt(BigInt(2))), 0);
  // Numbers sort before strings, strings before functors.
  EXPECT_LT(CompareArgs(f.MakeInt(99), f.MakeString("a")), 0);
  EXPECT_LT(CompareArgs(f.MakeString("z"), f.MakeAtom("a")), 0);
  // Functor order: name, arity, args.
  const Arg* a1[] = {f.MakeInt(1)};
  const Arg* a2[] = {f.MakeInt(2)};
  EXPECT_LT(CompareArgs(f.MakeFunctor("f", a1), f.MakeFunctor("f", a2)), 0);
  EXPECT_LT(CompareArgs(f.MakeFunctor("f", a1), f.MakeFunctor("g", a1)), 0);
  EXPECT_LT(CompareArgs(f.MakeAtom("f"), f.MakeFunctor("f", a1)), 0);
  // Reflexive.
  EXPECT_EQ(CompareArgs(f.MakeAtom("x"), f.MakeAtom("x")), 0);
}

TEST_F(DataTest, DerefFollowsChains) {
  // X -> Y (other env) -> 50: Fig. 2 of the paper.
  BindEnv e1(2), e2(1);
  const Variable* x = f.MakeVariable(0, "X");
  const Variable* y = f.MakeVariable(1, "Y");
  const Variable* z = f.MakeVariable(0, "Z");
  Trail tr;
  BindVar(x, &e1, y, &e1, &tr);
  BindVar(y, &e1, z, &e2, &tr);
  BindVar(z, &e2, f.MakeInt(50), nullptr, &tr);
  TermRef r = Deref(x, &e1);
  EXPECT_EQ(r.term, f.MakeInt(50));
}

TEST_F(DataTest, TrailUndoRestoresUnbound) {
  BindEnv env(1);
  const Variable* x = f.MakeVariable(0, "X");
  Trail tr;
  Trail::Mark m = tr.mark();
  BindVar(x, &env, f.MakeInt(1), nullptr, &tr);
  EXPECT_TRUE(env.binding(0).bound());
  tr.UndoTo(m);
  EXPECT_FALSE(env.binding(0).bound());
}

TEST_F(DataTest, UnifyGroundIsPointerComparison) {
  std::vector<const Arg*> elems;
  for (int i = 0; i < 100; ++i) elems.push_back(f.MakeInt(i));
  const Arg* l1 = f.MakeList(elems);
  const Arg* l2 = f.MakeList(elems);
  Trail tr;
  EXPECT_TRUE(Unify(l1, nullptr, l2, nullptr, &tr));
  EXPECT_EQ(tr.size(), 0u);  // no bindings needed: same node
}

TEST_F(DataTest, UnifyBindsVariablesBothSides) {
  // f(X, 10) = f(25, Y)
  BindEnv e1(1), e2(1);
  const Variable* x = f.MakeVariable(0, "X");
  const Variable* y = f.MakeVariable(0, "Y");
  const Arg* lhs_args[] = {x, f.MakeInt(10)};
  const Arg* rhs_args[] = {f.MakeInt(25), y};
  const Arg* lhs = f.MakeFunctor("f", lhs_args);
  const Arg* rhs = f.MakeFunctor("f", rhs_args);
  Trail tr;
  ASSERT_TRUE(Unify(lhs, &e1, rhs, &e2, &tr));
  EXPECT_EQ(Deref(x, &e1).term, f.MakeInt(25));
  EXPECT_EQ(Deref(y, &e2).term, f.MakeInt(10));
}

TEST_F(DataTest, UnifyFailureUndoneByCaller) {
  // f(X, 1) vs f(2, 3): X binds to 2, then 1 vs 3 fails.
  BindEnv e1(1);
  const Variable* x = f.MakeVariable(0, "X");
  const Arg* lhs_args[] = {x, f.MakeInt(1)};
  const Arg* rhs_args[] = {f.MakeInt(2), f.MakeInt(3)};
  const Arg* lhs = f.MakeFunctor("f", lhs_args);
  const Arg* rhs = f.MakeFunctor("f", rhs_args);
  Trail tr;
  Trail::Mark m = tr.mark();
  EXPECT_FALSE(Unify(lhs, &e1, rhs, nullptr, &tr));
  tr.UndoTo(m);
  EXPECT_FALSE(e1.binding(0).bound());
}

TEST_F(DataTest, UnifyVariableAliasing) {
  // p(X, X) = p(Y, 3) must bind both X and Y to 3.
  BindEnv e1(1), e2(1);
  const Variable* x = f.MakeVariable(0, "X");
  const Variable* y = f.MakeVariable(0, "Y");
  const Arg* lhs_args[] = {x, x};
  const Arg* rhs_args[] = {y, f.MakeInt(3)};
  const Arg* lhs = f.MakeFunctor("p", lhs_args);
  const Arg* rhs = f.MakeFunctor("p", rhs_args);
  Trail tr;
  ASSERT_TRUE(Unify(lhs, &e1, rhs, &e2, &tr));
  EXPECT_EQ(Deref(x, &e1).term, f.MakeInt(3));
  EXPECT_EQ(Deref(y, &e2).term, f.MakeInt(3));
}

TEST_F(DataTest, UnifySameUnboundVariableNoSelfBinding) {
  BindEnv e(1);
  const Variable* x = f.MakeVariable(0, "X");
  Trail tr;
  EXPECT_TRUE(Unify(x, &e, x, &e, &tr));
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_FALSE(e.binding(0).bound());
}

TEST_F(DataTest, UnifyDifferentFunctorsFails) {
  const Arg* a1[] = {f.MakeInt(1)};
  Trail tr;
  EXPECT_FALSE(Unify(f.MakeFunctor("f", a1), nullptr,
                     f.MakeFunctor("g", a1), nullptr, &tr));
  const Arg* a2[] = {f.MakeInt(1), f.MakeInt(2)};
  EXPECT_FALSE(Unify(f.MakeFunctor("f", a1), nullptr,
                     f.MakeFunctor("f", a2), nullptr, &tr));
}

TEST_F(DataTest, MatchIsOneWay) {
  // Pattern f(X) matches target f(1); pattern f(1) does not match f(Y).
  BindEnv ep(1), et(1);
  const Variable* x = f.MakeVariable(0, "X");
  const Variable* y = f.MakeVariable(0, "Y");
  const Arg* px[] = {x};
  const Arg* t1[] = {f.MakeInt(1)};
  const Arg* ty[] = {y};
  Trail tr;
  EXPECT_TRUE(Match(f.MakeFunctor("f", px), &ep, f.MakeFunctor("f", t1),
                    nullptr, &tr));
  tr.UndoTo(0);
  ep.ClearAll();
  EXPECT_FALSE(Match(f.MakeFunctor("f", t1), nullptr, f.MakeFunctor("f", ty),
                     &et, &tr));
}

TEST_F(DataTest, MatchRepeatedPatternVarNeedsIdenticalTargets) {
  // Pattern p(X, X) matches p(Y, Y) but not p(Y, Z).
  BindEnv ep(1), et(2);
  const Variable* x = f.MakeVariable(0, "X");
  const Variable* y = f.MakeVariable(0, "Y");
  const Variable* z = f.MakeVariable(1, "Z");
  const Arg* pat[] = {x, x};
  Trail tr;
  {
    const Arg* tgt[] = {y, y};
    EXPECT_TRUE(Match(f.MakeFunctor("p", pat), &ep, f.MakeFunctor("p", tgt),
                      &et, &tr));
    tr.UndoTo(0);
    ep.ClearAll();
  }
  {
    const Arg* tgt[] = {y, z};
    EXPECT_FALSE(Match(f.MakeFunctor("p", pat), &ep, f.MakeFunctor("p", tgt),
                       &et, &tr));
    tr.UndoTo(0);
  }
}

TEST_F(DataTest, TupleInterningGround) {
  const Arg* args[] = {f.MakeInt(1), f.MakeAtom("a")};
  const Tuple* t1 = f.MakeTuple(args);
  const Tuple* t2 = f.MakeTuple(args);
  EXPECT_EQ(t1, t2);
  EXPECT_TRUE(t1->IsGround());
  EXPECT_EQ(t1->var_count(), 0u);
  EXPECT_EQ(t1->ToString(), "(1,a)");
}

TEST_F(DataTest, TupleNonGroundVarCount) {
  const Arg* args[] = {f.CanonicalVar(0), f.MakeInt(1), f.CanonicalVar(1)};
  const Tuple* t = f.MakeTuple(args);
  EXPECT_FALSE(t->IsGround());
  EXPECT_EQ(t->var_count(), 2u);
}

TEST_F(DataTest, SubsumptionBetweenTuples) {
  // p(X, b) subsumes p(a, b); p(a, b) does not subsume p(X, b).
  const Arg* gen_args[] = {f.CanonicalVar(0), f.MakeAtom("b")};
  const Arg* spec_args[] = {f.MakeAtom("a"), f.MakeAtom("b")};
  const Tuple* gen = f.MakeTuple(gen_args);
  const Tuple* spec = f.MakeTuple(spec_args);
  EXPECT_TRUE(SubsumesTuple(gen, spec));
  EXPECT_FALSE(SubsumesTuple(spec, gen));
  // p(X, X) does not subsume p(a, b).
  const Arg* xx[] = {f.CanonicalVar(0), f.CanonicalVar(0)};
  EXPECT_FALSE(SubsumesTuple(f.MakeTuple(xx), spec));
  // p(X, Y) subsumes p(X, X)-style variants.
  const Arg* xy[] = {f.CanonicalVar(0), f.CanonicalVar(1)};
  EXPECT_TRUE(SubsumesTuple(f.MakeTuple(xy), f.MakeTuple(xx)));
  EXPECT_FALSE(SubsumesTuple(f.MakeTuple(xx), f.MakeTuple(xy)));
  // Variants subsume each other.
  EXPECT_TRUE(SubsumesTuple(gen, gen));
}

TEST_F(DataTest, ResolveTermSubstitutesAndRenames) {
  // Rule env: f(X, 10, Y) with X=25, Y=Z (other env), Z unbound.
  BindEnv e1(2), e2(1);
  const Variable* x = f.MakeVariable(0, "X");
  const Variable* y = f.MakeVariable(1, "Y");
  const Variable* z = f.MakeVariable(0, "Z");
  Trail tr;
  BindVar(x, &e1, f.MakeInt(25), nullptr, &tr);
  BindVar(y, &e1, z, &e2, &tr);
  const Arg* args[] = {x, f.MakeInt(10), y};
  const Arg* term = f.MakeFunctor("f", args);
  VarRenamer ren;
  const Arg* resolved = ResolveTerm(term, &e1, &f, &ren);
  EXPECT_EQ(resolved->ToString(), "f(25,10,_0)");
  EXPECT_EQ(ren.count(), 1u);
}

TEST_F(DataTest, ResolveSharesGroundStructure) {
  std::vector<const Arg*> elems;
  for (int i = 0; i < 10; ++i) elems.push_back(f.MakeInt(i));
  const Arg* list = f.MakeList(elems);
  VarRenamer ren;
  EXPECT_EQ(ResolveTerm(list, nullptr, &f, &ren), list);  // same node
}

TEST_F(DataTest, ResolveTupleCanonicalizesVariableOrder) {
  // Head p(Y, X) with both unbound: canonical slots follow occurrence
  // order, so the tuple becomes p(_0, _1) regardless of original slots.
  BindEnv env(2);
  const Variable* x = f.MakeVariable(0, "X");
  const Variable* y = f.MakeVariable(1, "Y");
  TermRef refs[] = {{y, &env}, {x, &env}, {y, &env}};
  const Tuple* t = ResolveTuple(refs, &f);
  EXPECT_EQ(t->ToString(), "(_0,_1,_0)");
  EXPECT_EQ(t->var_count(), 2u);
}

TEST_F(DataTest, StructuralEqualMatchesInterning) {
  std::vector<const Arg*> elems;
  for (int i = 0; i < 50; ++i) elems.push_back(f.MakeInt(i));
  const Arg* l1 = f.MakeList(elems);
  EXPECT_TRUE(StructuralEqualArgs(l1, f.MakeList(elems)));
  elems[49] = f.MakeInt(999);
  EXPECT_FALSE(StructuralEqualArgs(l1, f.MakeList(elems)));
}

// A user-defined abstract data type (paper §7.1): a 2-D point.
class PointArg : public UserArg {
 public:
  PointArg(uint32_t tag, uint64_t uid, uint64_t hash, double x, double y)
      : UserArg(tag, uid, hash), x_(x), y_(y) {}
  bool Equals(const Arg& other) const override {
    if (other.kind() != ArgKind::kUser) return false;
    const auto& o = static_cast<const PointArg&>(other);
    return o.type_tag() == type_tag() && o.x_ == x_ && o.y_ == y_;
  }
  void Print(std::ostream& os) const override {
    os << "point(" << x_ << "," << y_ << ")";
  }

 private:
  double x_, y_;
};

TEST_F(DataTest, UserDefinedTypeParticipates) {
  const PointArg* p1 = f.NewUser<PointArg>(1, 77, 1.0, 2.0);
  const PointArg* p2 = f.NewUser<PointArg>(1, 77, 1.0, 2.0);
  EXPECT_TRUE(p1->Equals(*p2));
  EXPECT_EQ(p1->Hash(), p2->Hash());
  EXPECT_EQ(p1->ToString(), "point(1,2)");
  // User args can sit inside functor terms and unify structurally.
  const Arg* a1[] = {static_cast<const Arg*>(p1)};
  const Arg* t1 = f.MakeFunctor("loc", a1);
  EXPECT_TRUE(t1->IsGround());
  Trail tr;
  EXPECT_TRUE(Unify(t1, nullptr, t1, nullptr, &tr));
}

TEST_F(DataTest, SymbolTableInterning) {
  SymbolTable& syms = f.symbols();
  Symbol a = syms.Intern("edge");
  Symbol b = syms.Intern("edge");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name, "edge");
  EXPECT_EQ(syms.Find("edge"), a);
  EXPECT_EQ(syms.Find("no_such_symbol_xyz"), nullptr);
}

}  // namespace
}  // namespace coral
