// Tests of the CORAL/C++ preprocessor (paper §6.1–§6.2): embedded
// \coral{ } command blocks and _coral_export declarations translate to
// plain C++; the translation is purely syntactic. The EmbeddedProgramRuns
// test executes the exact code shape the preprocessor emits, closing the
// loop from source transform to running program.

#include <gtest/gtest.h>

#include <string>

#include <coral/coral.h>
#include "src/cxx/preprocessor.h"

namespace coral {
namespace {

TEST(PreprocessorTest, CommandBlockExpansion) {
  auto out = PreprocessCoralCpp(R"(
int setup() {
  \coral{
    edge(1, 2). edge(2, 3).
    module tc. export t(bf).
    t(X, Y) :- edge(X, Y).
    end_module.
  }
  return 0;
}
)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("coral__.Command(R\"__CORAL__("), std::string::npos);
  EXPECT_NE(out->find("edge(1, 2). edge(2, 3)."), std::string::npos);
  EXPECT_NE(out->find("#include <coral/coral.h>"), std::string::npos);
  EXPECT_EQ(out->find("\\coral"), std::string::npos);  // all consumed
}

TEST(PreprocessorTest, NestedBracesAndCommentsInsideBlock) {
  auto out = PreprocessCoralCpp(R"(
\coral{
  kids(X, <K>) :- par(X, K).   % braces in comments: { not a block }
  ?- kids(bob, S).
}
)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("kids(X, <K>)"), std::string::npos);
}

TEST(PreprocessorTest, ExportDeclarationsGenerateRegistration) {
  auto out = PreprocessCoralCpp(R"(
_coral_export(myfilter, 2);
_coral_export(mygen, 1);
)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("coral_register_exports"), std::string::npos);
  EXPECT_NE(out->find("RegisterPredicate(\"myfilter\", 2, &myfilter)"),
            std::string::npos);
  EXPECT_NE(out->find("RegisterPredicate(\"mygen\", 1, &mygen)"),
            std::string::npos);
  // Purely syntactic: the functions were never defined, and that is fine
  // at preprocessing time (the paper's §6.2 makes the same point).
}

TEST(PreprocessorTest, PassThroughWithoutConstructs) {
  std::string plain = "int main() { return 0; }\n";
  auto out = PreprocessCoralCpp(plain);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, plain);  // untouched, no include prepended
}

TEST(PreprocessorTest, Malformed) {
  EXPECT_FALSE(PreprocessCoralCpp("\\coral{ unterminated").ok());
  EXPECT_FALSE(PreprocessCoralCpp("\\coral ; no block").ok());
  EXPECT_FALSE(PreprocessCoralCpp("_coral_export(noarity);").ok());
  EXPECT_FALSE(PreprocessCoralCpp("_coral_export missing").ok());
}

// ---- The emitted shape, executed ------------------------------------
// This is what a preprocessed file looks like after expansion; running it
// proves the generated calls are type-correct against the Coral facade.

Status mydouble_fn(std::span<const TermRef> args, TermFactory* f,
                   std::vector<const Tuple*>* out) {
  TermRef x = Deref(args[0].term, args[0].env);
  if (x.term->kind() != ArgKind::kInt) {
    return Status::FailedPrecondition("mydouble needs a bound int");
  }
  int64_t v = ArgCast<IntArg>(x.term)->value();
  const Arg* t[] = {x.term, f->MakeInt(2 * v)};
  out->push_back(f->MakeTuple(t));
  return Status::OK();
}

Status PreprocessedBody(Coral& coral__) {
  // Expansion of: _coral_export(mydouble, 2);
  {
    auto st = coral__.RegisterPredicate("mydouble", 2, &mydouble_fn);
    if (!st.ok()) return st;
  }
  // Expansion of a \coral{ ... } block:
  {
    auto coral_status__ = coral__.Command(R"__CORAL__(
      n(1). n(2). n(3).
      module m. export d(bf).
      d(X, Y) :- n(X), mydouble(X, Y).
      end_module.
    )__CORAL__");
    if (!coral_status__.ok()) return coral_status__.status();
  }
  return Status::OK();
}

TEST(PreprocessorTest, EmbeddedProgramRuns) {
  Coral c;
  ASSERT_TRUE(PreprocessedBody(c).ok());
  auto scan = c.OpenScan("d(3, Y)");
  ASSERT_TRUE(scan.ok());
  auto rows = scan->ToVector();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->arg(1), c.Int(6));
}

TEST(PreprocessorTest, RoundTripThroughRealExpansion) {
  // Preprocess a snippet and sanity-check that the produced text contains
  // compilable-shaped C++ for both constructs together.
  auto out = PreprocessCoralCpp(R"(
_coral_export(mydouble, 2);
::coral::Status Setup(::coral::Coral& coral__) {
  \coral{ n(7). }
  return coral_register_exports(coral__);
}
)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("coral_register_exports(::coral::Coral& c)"),
            std::string::npos);
  EXPECT_NE(out->find("n(7)."), std::string::npos);
}

}  // namespace
}  // namespace coral
