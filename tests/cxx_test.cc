// Tests of the CORAL/C++ interface (paper §6): embedded commands,
// relation/tuple/arg manipulation from C++, C_ScanDesc cursors, and
// predicates defined by C++ functions used inside declarative rules.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include <coral/coral.h>

namespace coral {
namespace {

TEST(CxxTest, EmbeddedCommandsAndQueries) {
  Coral c;
  auto out = c.Command(R"(
    edge(1, 2). edge(2, 3).
    module tc. export t(bf).
    t(X, Y) :- edge(X, Y).
    t(X, Y) :- edge(X, Z), t(Z, Y).
    end_module.
    ?- t(1, X).
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("X = 3"), std::string::npos);
}

TEST(CxxTest, ArgAndTupleConstruction) {
  Coral c;
  const Arg* l = c.List({c.Int(1), c.Int(2)});
  EXPECT_EQ(l->ToString(), "[1,2]");
  const Arg* f = c.Functor("addr", {c.Atom("main"), c.Atom("madison")});
  EXPECT_EQ(f->ToString(), "addr(main,madison)");
  const Tuple* t = c.MakeTuple({c.Atom("john"), f});
  EXPECT_EQ(t->ToString(), "(john,addr(main,madison))");
  auto parsed = c.Term("addr(main, madison)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, f);  // hash-consing across construction routes
}

TEST(CxxTest, InsertDeleteAndScan) {
  Coral c;
  ASSERT_TRUE(c.Insert("emp", {c.Atom("alice"), c.Int(120)}).ok());
  ASSERT_TRUE(c.Insert("emp", {c.Atom("bob"), c.Int(100)}).ok());
  auto scan = c.OpenScan("emp(X, S)");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->Count(), 2u);
  // Selective scan.
  auto scan2 = c.OpenScan("emp(alice, S)");
  ASSERT_TRUE(scan2.ok());
  auto rows = scan2->ToVector();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->arg(1), c.Int(120));
  // Pattern delete: all of alice's rows (second column free).
  auto removed = c.Delete("emp", {c.Atom("alice"),
                                  c.factory()->CanonicalVar(0)});
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  auto scan3 = c.OpenScan("emp(X, S)");
  ASSERT_TRUE(scan3.ok());
  EXPECT_EQ(scan3->Count(), 1u);
}

TEST(CxxTest, ScanOverModuleExport) {
  Coral c;
  ASSERT_TRUE(c.Consult(R"(
    par(tom, bob). par(bob, ann). par(bob, pat).
    module anc. export anc(bf).
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )").ok());
  auto scan = c.OpenScan("anc(tom, D)");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->Count(), 3u);
}

TEST(CxxTest, ScanHidesNonGroundAnswers) {
  // Paper §6.1: variables cannot be returned as answers through the C++
  // interface.
  Coral c;
  ASSERT_TRUE(c.Consult("likes(X, icecream). likes(sam, pie).").ok());
  auto scan = c.OpenScan("likes(P, W)");
  ASSERT_TRUE(scan.ok());
  auto rows = scan->ToVector();
  ASSERT_EQ(rows.size(), 1u);  // the non-ground fact is hidden
  EXPECT_EQ(rows[0]->ToString(), "(sam,pie)");
}

TEST(CxxTest, RegisteredPredicateCalledFromRules) {
  // A predicate defined in C++ (paper §6.2): sqrtint(X, Y) with Y the
  // integer square root of X; requires X bound.
  Coral c;
  ASSERT_TRUE(c.RegisterPredicate(
                   "sqrtint", 2,
                   [](std::span<const TermRef> args, TermFactory* f,
                      std::vector<const Tuple*>* out) -> Status {
                     TermRef x = Deref(args[0].term, args[0].env);
                     if (x.term->kind() != ArgKind::kInt) {
                       return Status::FailedPrecondition(
                           "sqrtint needs a bound integer");
                     }
                     int64_t v = ArgCast<IntArg>(x.term)->value();
                     if (v < 0) return Status::OK();
                     auto r = static_cast<int64_t>(std::sqrt(double(v)));
                     const Arg* t[] = {x.term, f->MakeInt(r)};
                     out->push_back(f->MakeTuple(t));
                     return Status::OK();
                   })
                  .ok());
  ASSERT_TRUE(c.Consult(R"(
    num(16). num(25). num(10).
    module m. export root_of(bf).
    root_of(X, R) :- num(X), sqrtint(X, R).
    end_module.
  )").ok());
  auto out = c.Command("?- root_of(25, R).");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("R = 5"), std::string::npos);
  // Direct scan over the computed relation.
  auto scan = c.OpenScan("sqrtint(144, R)");
  ASSERT_TRUE(scan.ok());
  auto rows = scan->ToVector();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->arg(1), c.Int(12));
}

TEST(CxxTest, RegisteredPredicateRejectsDuplicateAndUpdates) {
  Coral c;
  auto fn = [](std::span<const TermRef>, TermFactory*,
               std::vector<const Tuple*>*) { return Status::OK(); };
  ASSERT_TRUE(c.RegisterPredicate("p", 1, fn).ok());
  EXPECT_FALSE(c.RegisterPredicate("p", 1, fn).ok());
  // Inserting into a computed relation is refused.
  auto ins = c.Command("p(1).");
  EXPECT_FALSE(ins.ok());
}

TEST(CxxTest, RelationAbstractionFromCxx) {
  // Manipulate a declaratively computed relation imperatively without
  // breaking the relation abstraction (paper §6 mode 1).
  Coral c;
  ASSERT_TRUE(c.Consult(R"(
    e(1,2). e(2,3). e(3,4).
    module tc. export t(ff).
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, Z), t(Z, Y).
    end_module.
  )").ok());
  auto scan = c.OpenScan("t(X, Y)");
  ASSERT_TRUE(scan.ok());
  // Copy answers into a new base relation via the Relation interface.
  Relation* closure = c.GetRelation("closure", 2);
  while (const Tuple* t = scan->Next()) closure->Insert(t);
  EXPECT_EQ(closure->size(), 6u);
  // The copied relation is queryable like any base relation.
  auto out = c.Command("?- closure(1, X).");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("X = 4"), std::string::npos);
}

}  // namespace
}  // namespace coral
