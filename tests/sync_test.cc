// Tests for the annotated sync layer (src/util/sync.h): the wrappers
// must behave exactly like the std primitives they wrap, and the debug
// lock-order checker must flag acquisition-order inversions — the A→B /
// B→A pattern that deadlocks under the wrong interleaving — on ANY
// schedule, while staying silent on rank-ordered acquisition.
//
// CMakeLists defines CORAL_FORCE_LOCK_ORDER_CHECKS for this binary so the
// checker is active here regardless of build type (it is compiled out of
// NDEBUG builds everywhere else).

#include "src/util/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/util/thread_pool.h"

namespace coral {
namespace {

static_assert(CORAL_LOCK_ORDER_CHECKS,
              "sync_test must build with the lock-order checker enabled");

// The checker state is process-global; serialize every test that touches
// it through a fixture that starts from a clean slate.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override { lock_order::ResetViolations(); }
  void TearDown() override { lock_order::ResetViolations(); }
};

TEST_F(LockOrderTest, RankOrderedAcquisitionIsSilent) {
  Mutex low(kRankThreadPool);
  Mutex mid(kRankTermFactory);
  Mutex high(kRankStorageMetrics);
  for (int i = 0; i < 3; ++i) {
    MutexLock a(&low);
    MutexLock b(&mid);
    MutexLock c(&high);
  }
  EXPECT_EQ(lock_order::Violations(), 0u);
  EXPECT_EQ(lock_order::HeldCountForTest(), 0u);
}

TEST_F(LockOrderTest, DetectsInjectedInversion) {
  Mutex a(kRankStatsRegistry);   // rank 20
  Mutex b(kRankTermFactory);     // rank 40
  {
    // A→B: the declared order.
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  EXPECT_EQ(lock_order::Violations(), 0u);
  {
    // B→A: the inversion. No deadlock on this single thread, but the
    // checker must still report it — that is the whole point: the bad
    // ORDER is detected without needing the bad INTERLEAVING.
    MutexLock lb(&b);
    MutexLock la(&a);
  }
  EXPECT_EQ(lock_order::Violations(), 1u);
  auto [held, acquiring] = lock_order::LastViolation();
  EXPECT_EQ(held, static_cast<uint32_t>(kRankTermFactory));
  EXPECT_EQ(acquiring, static_cast<uint32_t>(kRankStatsRegistry));
}

TEST_F(LockOrderTest, EqualRanksMayNotNest) {
  Mutex a(kRankModuleProfile);
  Mutex b(kRankModuleProfile);
  MutexLock la(&a);
  MutexLock lb(&b);  // same rank while one is held: order is undefined
  EXPECT_EQ(lock_order::Violations(), 1u);
}

TEST_F(LockOrderTest, UnrankedMutexesAreExempt) {
  Mutex ranked(kRankTermFactory);
  Mutex unranked;
  {
    MutexLock lr(&ranked);
    MutexLock lu(&unranked);  // unranked acquisition never checked
  }
  {
    MutexLock lu(&unranked);
    MutexLock lr(&ranked);  // holding unranked does not constrain either
  }
  EXPECT_EQ(lock_order::Violations(), 0u);
}

TEST_F(LockOrderTest, TryLockParticipatesInOrderChecking) {
  Mutex a(kRankTermFactory);
  Mutex b(kRankStatsRegistry);
  MutexLock la(&a);
  ASSERT_TRUE(b.TryLock());  // rank 20 after 40: inversion
  b.Unlock();
  EXPECT_EQ(lock_order::Violations(), 1u);
}

TEST_F(LockOrderTest, DisengagedMaybeLockDoesNotTrack) {
  Mutex a(kRankStorageMetrics);
  Mutex b(kRankThreadPool);
  MaybeMutexLock la(&a, /*engage=*/false);  // no physical acquisition
  MutexLock lb(&b);  // would be an inversion if `a` were really held
  EXPECT_EQ(lock_order::Violations(), 0u);
  EXPECT_EQ(lock_order::HeldCountForTest(), 1u);
}

TEST_F(LockOrderTest, ReleaseOutOfLifoOrderIsTracked) {
  Mutex a(kRankThreadPool);
  Mutex b(kRankTermFactory);
  a.Lock();
  b.Lock();
  a.Unlock();  // release the OLDER lock first
  EXPECT_EQ(lock_order::HeldCountForTest(), 1u);
  Mutex c(kRankStatsRegistry);
  c.Lock();  // rank 20 while only rank 40 held: still an inversion
  EXPECT_EQ(lock_order::Violations(), 1u);
  c.Unlock();
  b.Unlock();
  EXPECT_EQ(lock_order::HeldCountForTest(), 0u);
}

TEST_F(LockOrderTest, SharedMutexChecksBothModes) {
  SharedMutex rw(kRankTermFactory);
  Mutex low(kRankThreadPool);
  {
    ReaderLock r(&rw);
    MutexLock l(&low);  // rank 10 after 40, via a shared hold
  }
  EXPECT_EQ(lock_order::Violations(), 1u);
  lock_order::ResetViolations();
  {
    WriterLock w(&rw);
    Mutex high(kRankStorageMetrics);
    MutexLock l(&high);
  }
  EXPECT_EQ(lock_order::Violations(), 0u);
}

// ---- wrapper semantics -----------------------------------------------------

TEST(SyncTest, MutexProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex rw;
  int value = 0;
  {
    WriterLock w(&rw);
    value = 42;
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        ReaderLock r(&rw);
        EXPECT_EQ(value, 42);
      }
    });
  }
  for (std::thread& t : readers) t.join();
}

TEST(SyncTest, CondVarSignalsAcrossThreads) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int consumed = -1;
  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    consumed = 7;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_EQ(consumed, 7);
}

TEST(SyncTest, ThreadPoolStillBarriersUnderAnnotatedLocks) {
  ThreadPool pool(3);
  std::vector<int> out(64, 0);
  pool.Run(out.size(), [&](size_t i) { out[i] = static_cast<int>(i) + 1; });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace coral
