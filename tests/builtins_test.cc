// Tests of the builtin predicate library: term inspection (functor/arg),
// sort, update predicates (assert/retract — the side-effecting predicates
// §5.2 makes meaningful under pipelining), arithmetic edge cases, and
// module-locality enforcement (§5).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/database.h"

namespace coral {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  std::vector<std::string> Ask(const std::string& q) {
    auto res = db.EvalQuery(q);
    EXPECT_TRUE(res.ok()) << res.status().ToString() << " for " << q;
    std::vector<std::string> rows;
    if (res.ok()) {
      for (const AnswerRow& r : res->rows) rows.push_back(r.ToString());
      std::sort(rows.begin(), rows.end());
    }
    return rows;
  }

  Database db;
};

TEST_F(BuiltinsTest, FunctorDecomposition) {
  EXPECT_EQ(Ask("functor(point(1, 2), F, N)"),
            std::vector<std::string>{"F = point, N = 2"});
  EXPECT_EQ(Ask("functor(hello, F, N)"),
            std::vector<std::string>{"F = hello, N = 0"});
  EXPECT_EQ(Ask("functor(42, F, N)"),
            std::vector<std::string>{"F = 42, N = 0"});
  EXPECT_EQ(Ask("functor([1,2], F, N)"),
            std::vector<std::string>{"F = '.', N = 2"});
  EXPECT_TRUE(Ask("functor(X, f, 2)").empty());  // construction unsupported
}

TEST_F(BuiltinsTest, ArgExtraction) {
  EXPECT_EQ(Ask("arg(1, point(a, b), X)"),
            std::vector<std::string>{"X = a"});
  EXPECT_EQ(Ask("arg(2, point(a, b), X)"),
            std::vector<std::string>{"X = b"});
  EXPECT_TRUE(Ask("arg(3, point(a, b), X)").empty());
  EXPECT_TRUE(Ask("arg(0, point(a, b), X)").empty());
  // Matching against a known value.
  EXPECT_EQ(Ask("arg(1, point(a, b), a)"),
            std::vector<std::string>{"true"});
  EXPECT_TRUE(Ask("arg(1, point(a, b), b)").empty());
}

TEST_F(BuiltinsTest, SortDeduplicates) {
  EXPECT_EQ(Ask("sort([3, 1, 2, 1], S)"),
            std::vector<std::string>{"S = [1,2,3]"});
  EXPECT_EQ(Ask("sort([], S)"), std::vector<std::string>{"S = []"});
  EXPECT_EQ(Ask("sort([b, a, 2, 1], S)"),
            std::vector<std::string>{"S = [1,2,a,b]"});  // numbers first
}

TEST_F(BuiltinsTest, AssertAddsFacts) {
  ASSERT_TRUE(db.Consult("counter(0).").ok());
  EXPECT_EQ(Ask("assert(seen(a))"), std::vector<std::string>{"true"});
  EXPECT_EQ(Ask("seen(X)"), std::vector<std::string>{"X = a"});
  // assert of a structured fact.
  EXPECT_EQ(Ask("assert(pos(p(1), [2, 3]))"),
            std::vector<std::string>{"true"});
  EXPECT_EQ(Ask("pos(p(1), L)"), std::vector<std::string>{"L = [2,3]"});
}

TEST_F(BuiltinsTest, RetractRemovesBySubsumption) {
  ASSERT_TRUE(db.Consult("c(1, a). c(1, b). c(2, a).").ok());
  // retract does not bind the pattern's variables; it succeeds once.
  EXPECT_EQ(Ask("retract(c(1, X))").size(), 1u);
  EXPECT_EQ(Ask("c(A, B)"), std::vector<std::string>{"A = 2, B = a"});
  // Retracting something absent fails.
  EXPECT_TRUE(Ask("retract(c(9, y))").empty());
}

TEST_F(BuiltinsTest, UpdatesInsidePipelinedModule) {
  // The paper's §5.2 point: pipelining guarantees evaluation order, so
  // updates inside rules behave predictably.
  ASSERT_TRUE(db.Consult(R"(
    module logging.
    export process(b).
    @pipelining.
    process(X) :- input(X), assert(log(X)).
    end_module.
    input(job1). input(job2).
  )").ok());
  EXPECT_EQ(Ask("process(job1)"), std::vector<std::string>{"true"});
  EXPECT_EQ(Ask("log(X)"), std::vector<std::string>{"X = job1"});
  EXPECT_EQ(Ask("process(job2)"), std::vector<std::string>{"true"});
  EXPECT_EQ(Ask("log(X)"),
            (std::vector<std::string>{"X = job1", "X = job2"}));
}

TEST_F(BuiltinsTest, ArithmeticEdgeCases) {
  EXPECT_TRUE(Ask("X = 1 / 0").empty());
  EXPECT_TRUE(Ask("X = mod(1, 0)").empty());
  EXPECT_TRUE(Ask("X = foo + 1").empty());        // non-numeric operand
  EXPECT_TRUE(Ask("Y = 3, X = Z + Y").empty());   // unbound in arithmetic
  EXPECT_EQ(Ask("X = -(-5)"), std::vector<std::string>{"X = 5"});
  EXPECT_EQ(Ask("X = max(2.5, 2)"), std::vector<std::string>{"X = 2.5"});
  // Bigint division demotes when the result fits.
  EXPECT_EQ(Ask("X = 18446744073709551616 / 4294967296"),
            std::vector<std::string>{"X = 4294967296"});
}

TEST_F(BuiltinsTest, AppendVariableSharing) {
  // append([1], B, C), B = [2]: C must see the binding through the
  // constructed cons cell (variable linking across environments).
  EXPECT_EQ(Ask("append([1], B, C), B = [2]"),
            std::vector<std::string>{"B = [2], C = [1,2]"});
  EXPECT_EQ(Ask("append(A, B, [1, 2]), A = [1]"),
            std::vector<std::string>{"A = [1], B = [2]"});
}

TEST_F(BuiltinsTest, BetweenAndLengthCompose) {
  EXPECT_EQ(Ask("between(1, 3, N), length([a, b], N)"),
            std::vector<std::string>{"N = 2"});
}

TEST_F(BuiltinsTest, LocalPredicatesInvisibleOutsideModule) {
  ASSERT_TRUE(db.Consult(R"(
    module secret.
    export visible(bf).
    hidden(X, Y) :- raw(X, Y).
    visible(X, Y) :- hidden(X, Y).
    end_module.
    raw(1, 2).
  )").ok());
  EXPECT_EQ(Ask("visible(1, Y)"), std::vector<std::string>{"Y = 2"});
  // Querying the local predicate errors instead of silently answering
  // from an empty relation.
  auto res = db.EvalQuery("hidden(1, Y)");
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().message().find("local to module"),
            std::string::npos);
  // Another module referencing it errors too.
  ASSERT_TRUE(db.Consult(R"(
    module other.
    export steal(bf).
    steal(X, Y) :- hidden(X, Y).
    end_module.
  )").ok());
  EXPECT_FALSE(db.EvalQuery("steal(1, Y)").ok());
}

TEST_F(BuiltinsTest, LocalNameCanBeExportedByAnotherModule) {
  ASSERT_TRUE(db.Consult(R"(
    module a.
    export pa(bf).
    util(X, X).
    pa(X, Y) :- util(X, Y).
    end_module.

    module b.
    export util(bf).
    util(X, doubled(X)) :- seedy(X).
    end_module.
    seedy(5).
  )").ok());
  // util/2 is local to a but exported by b: outside callers get b's.
  auto res = db.EvalQuery("util(5, Y)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].ToString(), "Y = doubled(5)");
}

}  // namespace
}  // namespace coral
