// Tests for the static semantic analyzer (src/analysis): one test per
// diagnostic code, the load-time wiring (module refusal, strict mode,
// Database::last_diagnostics), and a regression check that every shipped
// example program lints clean.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"
#include "src/core/database.h"
#include "src/lang/parser.h"

namespace coral {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  DiagnosticList Analyze(const std::string& text, bool strict = false) {
    Parser parser(text, db_.factory());
    auto prog = parser.ParseProgram();
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    if (!prog.ok()) return DiagnosticList();
    AnalyzerOptions opts;
    opts.strict = strict;
    const BuiltinRegistry* builtins = db_.builtins();
    opts.is_builtin = [builtins](const std::string& name, uint32_t arity) {
      return builtins->Find(name, arity) != nullptr;
    };
    return AnalyzeProgram(*prog, opts);
  }

  static const Diagnostic* Find(const DiagnosticList& dl,
                                const char* code) {
    for (const Diagnostic& d : dl.items()) {
      if (std::string(d.code) == code) return &d;
    }
    return nullptr;
  }

  Database db_;
};

// --- CRL101: unsafe head variable -----------------------------------------

TEST_F(AnalysisTest, UnsafeHeadVariableIsError) {
  DiagnosticList dl = Analyze(
      "module bad.\n"
      "export p(ff).\n"
      "p(X, Y) :- q(X).\n"
      "q(1).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kUnsafeHeadVar);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_NE(d->message.find("'Y'"), std::string::npos);
  EXPECT_EQ(d->pred, "p/2");
  EXPECT_EQ(d->loc.line, 3);
}

TEST_F(AnalysisTest, UnsafeRuleRejectedAtModuleLoad) {
  // The acceptance case: loading must fail, naming the rule's predicate,
  // the unbound variable and the source line.
  auto res = db_.Consult(
      "module bad.\n"
      "export p(ff).\n"
      "p(X, Y) :- q(X).\n"
      "q(1).\n"
      "end_module.\n");
  ASSERT_FALSE(res.ok());
  const std::string msg = res.status().ToString();
  EXPECT_NE(msg.find("CRL101"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'Y'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("p/2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  // The refused module must not be registered.
  EXPECT_FALSE(db_.modules()->Exports(
      PredRef{db_.factory()->symbols().Intern("p"), 2}));
}

TEST_F(AnalysisTest, ExportAdornmentMakesHeadVariableSafe) {
  // Range restriction must be adornment-aware: under status(bf) the first
  // argument is bound by the caller, so the negation is safe (this exact
  // shape is exercised by working programs in the core tests).
  DiagnosticList dl = Analyze(
      "module people.\n"
      "export status(bf).\n"
      "status(X, rich) :- not broke(X).\n"
      "end_module.\n");
  EXPECT_TRUE(dl.empty()) << dl.ToString();
}

// --- CRL102: unbound variable in negation ---------------------------------

TEST_F(AnalysisTest, UnboundNegationVariableIsError) {
  DiagnosticList dl = Analyze(
      "module people.\n"
      "export status(ff).\n"
      "status(X, rich) :- not broke(X).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kUnboundNegationVar);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_NE(d->message.find("'X'"), std::string::npos);
}

TEST_F(AnalysisTest, AnonymousVariableInNegationIsExempt) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export empty(f).\n"
      "empty(yes) :- not q(_).\n"
      "q(1).\n"
      "end_module.\n");
  EXPECT_EQ(Find(dl, diag::kUnboundNegationVar), nullptr)
      << dl.ToString();
}

// --- CRL103 / CRL104: builtin and comparison binding ----------------------

TEST_F(AnalysisTest, UnboundComparisonVariableIsError) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- q(X), X < Limit.\n"
      "q(1).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kUnboundBuiltinArg);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_NE(d->message.find("'Limit'"), std::string::npos);
}

TEST_F(AnalysisTest, ComparisonBoundLaterIsWarning) {
  // Y is bound by a later goal: reordering (or @reorder_joins) fixes it,
  // so this is a warning, not an error.
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- X < Y, q(X), r(Y).\n"
      "q(1).\n"
      "r(2).\n"
      "end_module.\n");
  EXPECT_EQ(Find(dl, diag::kUnboundBuiltinArg), nullptr) << dl.ToString();
  const Diagnostic* d = Find(dl, diag::kBoundTooLate);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
}

TEST_F(AnalysisTest, ArithmeticInputMustBeBound) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- X = Base + 1.\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kUnboundBuiltinArg);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_NE(d->message.find("'Base'"), std::string::npos);
}

// --- CRL105: builtin binding mode -----------------------------------------

TEST_F(AnalysisTest, BuiltinWithNoUsableModeIsWarning) {
  // member(-,+) needs its second argument bound; nothing ever binds L.
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- q(X), member(X, L).\n"
      "q(1).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kBuiltinMode);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_NE(d->message.find("member"), std::string::npos);
}

// --- CRL110: arity conflicts ----------------------------------------------

TEST_F(AnalysisTest, ConflictingAritiesAreWarned) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- edge(X).\n"
      "edge(1).\n"
      "edge(1, 2).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kArityConflict);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_NE(d->message.find("edge"), std::string::npos);
  EXPECT_NE(d->message.find("1, 2"), std::string::npos);
}

// --- CRL111 / CRL112: export validity -------------------------------------

TEST_F(AnalysisTest, ExportOfUndefinedPredicateIsError) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export ghost(f).\n"
      "p(1).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kExportUndefined);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_EQ(d->loc.line, 2);
}

TEST_F(AnalysisTest, ExportAdornmentArityMismatchIsError) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(bff).\n"
      "p(X, Y) :- q(X, Y).\n"
      "q(1, 2).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kExportArityMismatch);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kError);
}

// --- CRL120 / CRL121: dead code -------------------------------------------

TEST_F(AnalysisTest, DeadPredicateIsWarned) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- q(X).\n"
      "q(1).\n"
      "orphan(X) :- q(X).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kDeadPredicate);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_EQ(d->pred, "orphan/1");
  EXPECT_EQ(d->loc.line, 5);
}

TEST_F(AnalysisTest, SingletonVariableIsWarned) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- q(X, Unused).\n"
      "q(1, 2).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kSingletonVar);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_NE(d->message.find("'Unused'"), std::string::npos);
}

TEST_F(AnalysisTest, UnderscoreSilencesSingletonWarning) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- q(X, _).\n"
      "q(1, 2).\n"
      "end_module.\n");
  EXPECT_TRUE(dl.empty()) << dl.ToString();
}

TEST_F(AnalysisTest, VariablesInFactsAreExempt) {
  // A variable in a fact is universally quantified (paper §3.1), not a
  // singleton typo and not unsafe.
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export likes(ff).\n"
      "likes(X, ice_cream).\n"
      "end_module.\n");
  EXPECT_TRUE(dl.empty()) << dl.ToString();
}

// --- CRL130-CRL132: annotations -------------------------------------------

TEST_F(AnalysisTest, ContradictoryAnnotationsAreErrors) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(b).\n"
      "@ordered_search.\n"
      "@no_rewriting.\n"
      "p(X) :- q(X).\n"
      "q(1).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kAnnotationConflict);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kError);

  // And the combination refuses to load.
  auto res = db_.Consult(
      "module m2.\n"
      "export p(b).\n"
      "@ordered_search.\n"
      "@no_rewriting.\n"
      "p(X) :- q(X).\n"
      "q(1).\n"
      "end_module.\n");
  EXPECT_FALSE(res.ok());
}

TEST_F(AnalysisTest, OverriddenAnnotationIsWarned) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "@magic.\n"
      "@no_rewriting.\n"
      "p(X) :- q(X).\n"
      "q(1).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kAnnotationIgnored);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_EQ(d->loc.line, 3);  // points at the overridden @magic
}

TEST_F(AnalysisTest, AnnotationTargetingUnknownPredicateIsWarned) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(f).\n"
      "@multiset ghost.\n"
      "p(X) :- q(X).\n"
      "q(1).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kAnnotationTarget);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_NE(d->message.find("ghost"), std::string::npos);
}

// --- CRL130/131/133: @parallel --------------------------------------------

TEST_F(AnalysisTest, ValidParallelAnnotationIsClean) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(ff).\n"
      "@parallel(4).\n"
      "p(X, Y) :- e(X, Y).\n"
      "p(X, Y) :- e(X, Z), p(Z, Y).\n"
      "end_module.\n");
  EXPECT_TRUE(dl.empty()) << dl.ToString();
  // Both with an explicit count and without.
  auto res = db_.Consult(
      "module m2.\nexport p(ff).\n@parallel.\n"
      "p(X, Y) :- e(X, Y).\nend_module.\n");
  EXPECT_TRUE(res.ok()) << res.status().ToString();
}

TEST_F(AnalysisTest, ParallelConflictsWithPipelining) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(ff).\n"
      "@pipelining.\n"
      "@parallel(2).\n"
      "p(X, Y) :- e(X, Y).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kAnnotationConflict);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kError);

  auto res = db_.Consult(
      "module m2.\nexport p(ff).\n@pipelining.\n@parallel(2).\n"
      "p(X, Y) :- e(X, Y).\nend_module.\n");
  EXPECT_FALSE(res.ok());
}

TEST_F(AnalysisTest, ParallelThreadCountOutOfRangeIsError) {
  for (const char* count : {"0", "65", "9999", "-1"}) {
    DiagnosticList dl = Analyze(
        "module m.\n"
        "export p(ff).\n"
        "@parallel(" + std::string(count) + ").\n"
        "p(X, Y) :- e(X, Y).\n"
        "end_module.\n");
    const Diagnostic* d = Find(dl, diag::kBadParallelThreads);
    ASSERT_NE(d, nullptr) << "@parallel(" << count << "): "
                          << dl.ToString();
    EXPECT_EQ(d->severity, DiagSeverity::kError);
  }
}

TEST_F(AnalysisTest, ParallelOnSequentialOnlyStrategyIsWarned) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(bf).\n"
      "@ordered_search.\n"
      "@parallel(4).\n"
      "p(X, Y) :- e(X, Y).\n"
      "p(X, Y) :- e(X, Z), p(Z, Y).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kAnnotationIgnored);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_NE(d->message.find("sequential"), std::string::npos);
}

TEST_F(AnalysisTest, ProfileOnPipelinedModuleIsWarned) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(ff).\n"
      "@pipelining.\n"
      "@profile.\n"
      "p(X, Y) :- e(X, Y).\n"
      "end_module.\n");
  const Diagnostic* d = Find(dl, diag::kProfilePipelined);
  ASSERT_NE(d, nullptr) << dl.ToString();
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_EQ(d->loc.line, 4);  // points at @profile
  EXPECT_NE(d->message.find("iteration statistics"), std::string::npos);
}

TEST_F(AnalysisTest, ProfileOnMaterializedModuleIsClean) {
  DiagnosticList dl = Analyze(
      "module m.\n"
      "export p(ff).\n"
      "@profile.\n"
      "p(X, Y) :- e(X, Y).\n"
      "end_module.\n");
  EXPECT_EQ(Find(dl, diag::kProfilePipelined), nullptr) << dl.ToString();
}

// --- CRL140: stratification -----------------------------------------------

TEST_F(AnalysisTest, UnstratifiedModuleWarnsAtLoadErrorsAtQuery) {
  auto res = db_.Consult(
      "move(1, 2). move(2, 1).\n"
      "module game.\n"
      "export win(b).\n"
      "win(X) :- move(X, Y), not win(Y).\n"
      "end_module.\n");
  // Loading succeeds with a warning: magic rewriting can sometimes
  // isolate the negation, so the rewriter has the final say.
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_NE(Find(db_.last_diagnostics(), diag::kNotStratified), nullptr)
      << db_.last_diagnostics().ToString();
  // The query-time error carries the same diagnostic code.
  auto q = db_.EvalQuery("win(1)");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find(diag::kNotStratified),
            std::string::npos)
      << q.status().ToString();
}

// --- strict mode and diagnostics surfacing --------------------------------

TEST_F(AnalysisTest, WarningsAccumulateOnDatabase) {
  auto res = db_.Consult(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- q(X, Unused).\n"
      "q(1, 2).\n"
      "end_module.\n");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(db_.last_diagnostics().warning_count(), 1u);
  EXPECT_TRUE(db_.last_diagnostics().Has(diag::kSingletonVar));
}

TEST_F(AnalysisTest, StrictModePromotesWarningsToErrors) {
  db_.set_strict(true);
  auto res = db_.Consult(
      "module m.\n"
      "export p(f).\n"
      "p(X) :- q(X, Unused).\n"
      "q(1, 2).\n"
      "end_module.\n");
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().ToString().find(diag::kSingletonVar),
            std::string::npos);
}

TEST_F(AnalysisTest, RejectedModuleKeepsPreviousVersion) {
  ASSERT_TRUE(db_.Consult("module m.\nexport p(f).\np(1).\nend_module.\n")
                  .ok());
  auto res = db_.Consult(
      "module m.\n"
      "export p(ff).\n"
      "p(X, Y) :- q(X).\n"
      "q(1).\n"
      "end_module.\n");
  ASSERT_FALSE(res.ok());
  // The original export is still answerable.
  auto q = db_.EvalQuery("p(X)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->rows.size(), 1u);
}

// --- shipped examples must lint clean -------------------------------------

TEST_F(AnalysisTest, ExampleProgramsLintClean) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(CORAL_SOURCE_DIR) / "examples" / "programs";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  size_t checked = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".crl") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buf;
    buf << in.rdbuf();
    DiagnosticList dl = Analyze(buf.str());
    EXPECT_TRUE(dl.empty())
        << entry.path() << ":\n" << dl.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace coral
