// Copyright (c) 1993-style CORAL reproduction authors.
// Umbrella header for embedding CORAL in C++ programs (paper §6).
//
// This is the only header an embedding application needs:
//
//   #include <coral/coral.h>
//
//   coral::Coral c;                       // or coral::Database db;
//   auto out = c.Command("?- path(1, X).");
//
// It re-exports the public surface:
//
//   coral::Database          — relations, modules, queries (EvalQuery,
//                              ExecuteQuery, Run, Consult), profiling
//   coral::Session           — per-client query handle: snapshot
//                              isolation, deadlines, $name bindings
//                              (the concurrent-access entry point;
//                              see docs/API.md thread-safety table)
//   coral::Coral             — the embedded-C++ facade over a Database
//   coral::Relation          — stored base relations
//   coral::ComputedRelation  — predicates defined by C++ functions
//   coral::QueryResult       — bindings produced by a query
//   coral::C_ScanDesc        — get-next-tuple cursors over answers
//   coral::StorageManager    — persistent relations (EXODUS substitute)
//   coral::Status/StatusOr   — error handling (see docs/API.md)
//   coral::obs::*            — evaluation statistics and trace events
//                              (StatsRegistry, ModuleProfile, TraceEvent,
//                              TraceSink, report rendering)
//
// Everything under src/ is internal; applications that reach past this
// header get no stability guarantees (CI builds the embedded example
// against include/ alone to keep the boundary honest).

#ifndef CORAL_INCLUDE_CORAL_CORAL_H_
#define CORAL_INCLUDE_CORAL_CORAL_H_

#include "src/core/database.h"
#include "src/core/session.h"
#include "src/cxx/computed_relation.h"
#include "src/cxx/coral.h"
#include "src/cxx/scan_desc.h"
#include "src/obs/report.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"
#include "src/rel/relation.h"
#include "src/storage/storage_manager.h"
#include "src/util/status.h"

#endif  // CORAL_INCLUDE_CORAL_CORAL_H_
