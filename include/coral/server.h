// Copyright (c) 1993-style CORAL reproduction authors.
// Public surface of the CORAL query server (docs/SERVER.md):
//
//   #include <coral/server.h>
//
//   coral::Database db;
//   coral::server::ServerOptions opts;
//   opts.port = 4210;
//   coral::server::Server srv(&db, opts);
//   CORAL_CHECK_OK(srv.Start());
//   srv.Wait();
//
// Re-exports:
//
//   coral::server::Server         — TCP listener + worker pool
//   coral::server::ServerOptions  — port, admission knobs, deadline
//   coral::server::ClientSession  — per-connection protocol dispatch
//   coral::server::AdmissionQueue — bounded queue with shed-on-overload
//   coral::obs::ServerMetrics     — request counters and latency
//
// The embedding rules of <coral/coral.h> apply: everything under src/
// reached past these headers is internal.

#ifndef CORAL_INCLUDE_CORAL_SERVER_H_
#define CORAL_INCLUDE_CORAL_SERVER_H_

#include "src/obs/server_metrics.h"
#include "src/server/admission.h"
#include "src/server/json.h"
#include "src/server/protocol.h"
#include "src/server/server.h"

#endif  // CORAL_INCLUDE_CORAL_SERVER_H_
