// Experiment C10 (DESIGN.md): intelligent backtracking refines the basic
// nested-loops join (paper §4.2). A join where a late literal fails on a
// variable bound early: chronological backtracking re-enumerates the
// independent middle literals; intelligent backtracking jumps straight to
// the binder.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/database.h"

namespace coral {
namespace {

// q(A, X), r(B), s(C), t(A): t fails for most A; r and s are independent
// of A, so chronological backtracking re-scans them |r|*|s| times per
// failing A while intelligent backtracking returns to q directly.
std::string JoinModule(bool intelligent) {
  return std::string(R"(
    module j.
    export ans(f).
  )") + (intelligent ? "" : "@no_intelligent_backtracking.\n") + R"(
    ans(A) :- q(A), r(B), s(C), t(A).
    end_module.
  )";
}

void RunJoin(benchmark::State& state, bool intelligent) {
  int n = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(JoinModule(intelligent)).ok()) return;
  std::string facts;
  for (int i = 0; i < n; ++i) {
    facts += "q(a" + std::to_string(i) + ").\n";
    facts += "r(b" + std::to_string(i) + ").\n";
    facts += "s(c" + std::to_string(i) + ").\n";
  }
  facts += "t(a0).\n";  // only one A succeeds
  if (!db.Consult(facts).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("ans(A)");
    if (!res.ok() || res->rows.size() != 1) {
      state.SkipWithError("wrong answer count");
      return;
    }
  }
}

void BM_Join_Chronological(benchmark::State& state) { RunJoin(state, false); }
void BM_Join_IntelligentBacktracking(benchmark::State& state) {
  RunJoin(state, true);
}
BENCHMARK(BM_Join_Chronological)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_Join_IntelligentBacktracking)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
