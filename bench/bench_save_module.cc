// Experiment C7 (DESIGN.md): the save-module facility (paper §5.4.2) —
// retaining module state across calls avoids recomputation when the same
// subgoals recur in many invocations; by default all intermediate facts
// are discarded at the end of each call.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/database.h"

namespace coral {
namespace {

std::string AncModule(bool save) {
  return std::string(R"(
    module anc.
    export anc(bf).
  )") + (save ? "@save_module.\n" : "") + R"(
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )";
}

/// `q` queries, all on overlapping suffixes of one chain.
void RunRepeatedQueries(benchmark::State& state, bool save) {
  int n = static_cast<int>(state.range(0));
  const int kQueries = 16;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    bench::MaybeProfile(&db);
    if (!db.Consult(AncModule(save)).ok()) return;
    if (!db.Consult(bench::ChainFacts("par", n)).ok()) return;
    state.ResumeTiming();
    for (int q = 0; q < kQueries; ++q) {
      std::string node = "n" + std::to_string((q * 3) % (n / 2));
      auto res = db.EvalQuery("anc(" + node + ", Y)");
      if (!res.ok()) {
        state.SkipWithError(res.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(res->rows.size());
    }
    state.PauseTiming();
    state.counters["inserts"] =
        static_cast<double>(db.modules()->last_stats().inserts);
    state.ResumeTiming();
  }
}

void BM_RepeatedQueries_Discard(benchmark::State& state) {
  RunRepeatedQueries(state, false);
}
void BM_RepeatedQueries_SaveModule(benchmark::State& state) {
  RunRepeatedQueries(state, true);
}
BENCHMARK(BM_RepeatedQueries_Discard)->Arg(64)->Arg(128);
BENCHMARK(BM_RepeatedQueries_SaveModule)->Arg(64)->Arg(128);

/// The degenerate favourable case: the SAME query repeated — a saved
/// module answers from retained state.
void RunSameQuery(benchmark::State& state, bool save) {
  int n = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(AncModule(save)).ok()) return;
  if (!db.Consult(bench::ChainFacts("par", n)).ok()) return;
  // Warm-up call (compilation + first evaluation).
  (void)db.EvalQuery("anc(n0, Y)");
  for (auto _ : state) {
    auto res = db.EvalQuery("anc(n0, Y)");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
  }
}

void BM_SameQuery_Discard(benchmark::State& state) {
  RunSameQuery(state, false);
}
void BM_SameQuery_SaveModule(benchmark::State& state) {
  RunSameQuery(state, true);
}
BENCHMARK(BM_SameQuery_Discard)->Arg(128);
BENCHMARK(BM_SameQuery_SaveModule)->Arg(128);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
