// Experiment F2 (DESIGN.md): binding environments vs naive substitution
// (paper §3.1 / Fig. 2: "A naive scheme would replace every reference to
// the variable by its binding. It is more efficient however to record
// variable bindings in a binding environment, at least during the course
// of an inference"). We measure one simulated inference: bind k variables
// of a template term, read the instantiated term once, undo — via the
// bindenv/trail, vs physically substituting (copying) the term.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/data/term_factory.h"
#include "src/data/unify.h"

namespace coral {
namespace {

/// f(X0, g(X1, g(X2, ... )), ...): a term with `k` distinct variables
/// spread over nested structure.
const Arg* Template(TermFactory* f, int k) {
  const Arg* acc = f->MakeAtom("leaf");
  for (int i = k - 1; i >= 0; --i) {
    const Arg* args[] = {f->MakeVariable(static_cast<uint32_t>(i), "X"),
                         acc};
    acc = f->MakeFunctor("g", args);
  }
  return acc;
}

void BM_Inference_BindEnv(benchmark::State& state) {
  TermFactory f;
  int k = static_cast<int>(state.range(0));
  const Arg* tmpl = Template(&f, k);
  BindEnv env(static_cast<uint32_t>(k));
  Trail trail;
  for (auto _ : state) {
    Trail::Mark m = trail.mark();
    // Bind all variables (as rule evaluation would while matching).
    for (int i = 0; i < k; ++i) {
      env.Set(static_cast<uint32_t>(i), f.MakeInt(i), nullptr);
      trail.Record(&env, static_cast<uint32_t>(i));
    }
    // One read of the instantiated term (e.g. to emit the head tuple).
    VarRenamer ren;
    const Arg* resolved = ResolveTerm(tmpl, &env, &f, &ren);
    benchmark::DoNotOptimize(resolved);
    trail.UndoTo(m);  // next candidate tuple: O(k) undo
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_Inference_BindEnv)->Arg(4)->Arg(16)->Arg(64)->Complexity();

void BM_Inference_SubstitutionCopy(benchmark::State& state) {
  TermFactory f;
  int k = static_cast<int>(state.range(0));
  const Arg* tmpl = Template(&f, k);
  BindEnv env(static_cast<uint32_t>(k));
  Trail trail;
  for (auto _ : state) {
    // Naive scheme: substitute (copy the whole term) after EVERY variable
    // binding — k copies of an O(k) term per inference.
    Trail::Mark m = trail.mark();
    const Arg* cur = tmpl;
    for (int i = 0; i < k; ++i) {
      env.Set(static_cast<uint32_t>(i), f.MakeInt(i), nullptr);
      trail.Record(&env, static_cast<uint32_t>(i));
      VarRenamer ren;
      cur = ResolveTerm(tmpl, &env, &f, &ren);
    }
    benchmark::DoNotOptimize(cur);
    trail.UndoTo(m);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_Inference_SubstitutionCopy)
    ->Arg(4)->Arg(16)->Arg(64)->Complexity();

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
