// Experiment C2 (DESIGN.md): semi-naive vs naive fixpoints (paper §5.3:
// semi-naive avoids repeating inferences across iterations) and Predicate
// Semi-Naive on mutually recursive predicates (paper §4.2: "better for
// programs with many mutually recursive predicates" — fewer iterations
// thanks to immediate availability of facts derived earlier in the pass).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/database.h"

namespace coral {
namespace {

std::string TcModule(const char* strategy) {
  return std::string(R"(
    module tc.
    export tc(bf).
  )") + strategy + R"(
    tc(X, Y) :- par(X, Y).
    tc(X, Y) :- par(X, Z), tc(Z, Y).
    end_module.
  )";
}

void RunTc(benchmark::State& state, const char* strategy) {
  int n = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(TcModule(strategy)).ok()) return;
  if (!db.Consult(bench::ChainFacts("par", n)).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("tc(n0, Y)");
    if (!res.ok() || res->rows.size() != static_cast<size_t>(n)) {
      state.SkipWithError("wrong answer count");
      return;
    }
  }
  state.counters["derivations"] =
      static_cast<double>(db.modules()->last_stats().solutions);
  state.counters["iterations"] =
      static_cast<double>(db.modules()->last_stats().iterations);
  bench::MaybeDumpProfile(&db, std::string("Tc ") + strategy + "/" +
                                   std::to_string(n));
}

void BM_Tc_Naive(benchmark::State& state) { RunTc(state, "@naive."); }
void BM_Tc_BasicSemiNaive(benchmark::State& state) {
  RunTc(state, "@bsn.");
}
void BM_Tc_PredicateSemiNaive(benchmark::State& state) {
  RunTc(state, "@psn.");
}
BENCHMARK(BM_Tc_Naive)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_Tc_BasicSemiNaive)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_Tc_PredicateSemiNaive)->Arg(32)->Arg(64)->Arg(128);

// Mutual recursion: a ring of k predicates p0 .. p(k-1), each feeding the
// next; BSN needs ~k iterations per new fact wave, PSN propagates within
// one pass (paper §4.2).
std::string MutualModule(int k, const char* strategy) {
  std::string rules;
  for (int i = 0; i < k; ++i) {
    int next = (i + 1) % k;
    rules += "p" + std::to_string(next) + "(Y) :- p" + std::to_string(i) +
             "(X), step(X, Y).\n";
  }
  return std::string("module mut.\nexport p0(f).\n") + strategy + "\n" +
         "p0(X) :- start(X).\n" + rules + "end_module.\n";
}

void RunMutual(benchmark::State& state, const char* strategy) {
  int k = 8;
  int n = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(MutualModule(k, strategy)).ok()) return;
  std::string facts = "start(n0).\n" + bench::ChainFacts("step", n);
  if (!db.Consult(facts).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("p0(Y)");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
  }
  state.counters["iterations"] =
      static_cast<double>(db.modules()->last_stats().iterations);
  bench::MaybeDumpProfile(&db, std::string("Mutual ") + strategy + "/" +
                                   std::to_string(n));
}

void BM_Mutual_BSN(benchmark::State& state) { RunMutual(state, "@bsn."); }
void BM_Mutual_PSN(benchmark::State& state) { RunMutual(state, "@psn."); }
BENCHMARK(BM_Mutual_BSN)->Arg(64)->Arg(128);
BENCHMARK(BM_Mutual_PSN)->Arg(64)->Arg(128);

// Parallel fixpoint series (beyond the paper): the all-pairs closure of a
// random graph — wide per-iteration deltas, the shape the hash-partitioned
// workers are built for — at 1, 2 and 4 workers. --threads=N overrides
// the series with a single worker count.
void BM_TcWide_Parallel(benchmark::State& state) {
  int v = static_cast<int>(state.range(0));
  int threads = bench::ThreadsOr(static_cast<int>(state.range(1)));
  Database db;
  bench::MaybeProfile(&db);
  db.set_num_threads(threads);
  if (!db.Consult("module tw.\nexport tc(ff).\n@no_rewriting.\n"
                  "tc(X, Y) :- e(X, Y).\n"
                  "tc(X, Y) :- e(X, Z), tc(Z, Y).\nend_module.\n")
           .ok()) {
    return;
  }
  if (!db.Consult(bench::RandomGraphFacts("e", v, 4 * v, false)).ok()) {
    return;
  }
  for (auto _ : state) {
    auto res = db.EvalQuery("tc(X, Y)");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
  }
  state.counters["threads"] = threads;
  state.counters["inserts"] =
      static_cast<double>(db.modules()->last_stats().inserts);
  bench::MaybeDumpProfile(&db, "TcWide/" + std::to_string(v) + "/t" +
                                   std::to_string(threads));
}
BENCHMARK(BM_TcWide_Parallel)
    ->Args({96, 1})->Args({96, 2})->Args({96, 4})
    ->Args({160, 1})->Args({160, 2})->Args({160, 4});

}  // namespace
}  // namespace coral

int main(int argc, char** argv) {
  coral::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
