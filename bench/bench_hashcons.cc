// Experiment C4 (DESIGN.md): hash-consing makes unification of large
// ground terms a unique-identifier comparison (paper §3.1: "two (ground)
// functor terms unify if and only if their unique identifiers are the
// same"). Compare against full structural equality, which is what a
// system without hash-consing would pay.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/data/term_factory.h"
#include "src/data/unify.h"

namespace coral {
namespace {

const Arg* DeepList(TermFactory* f, int depth) {
  std::vector<const Arg*> elems;
  elems.reserve(depth);
  for (int i = 0; i < depth; ++i) {
    const Arg* inner[] = {f->MakeInt(i), f->MakeAtom("x")};
    elems.push_back(f->MakeFunctor("pair", inner));
  }
  return f->MakeList(elems);
}

void BM_Unify_HashConsed(benchmark::State& state) {
  TermFactory f;
  const Arg* a = DeepList(&f, static_cast<int>(state.range(0)));
  const Arg* b = DeepList(&f, static_cast<int>(state.range(0)));
  Trail trail;
  for (auto _ : state) {
    bool ok = Unify(a, nullptr, b, nullptr, &trail);
    benchmark::DoNotOptimize(ok);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Unify_HashConsed)
    ->Arg(8)->Arg(64)->Arg(512)->Arg(2048)->Complexity();

void BM_Equality_Structural(benchmark::State& state) {
  TermFactory f;
  const Arg* a = DeepList(&f, static_cast<int>(state.range(0)));
  const Arg* b = DeepList(&f, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bool ok = StructuralEqualArgs(a, b);
    benchmark::DoNotOptimize(ok);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Equality_Structural)
    ->Arg(8)->Arg(64)->Arg(512)->Arg(2048)->Complexity();

// Construction cost: hash-consing pays at construction (table lookups);
// this is the trade the paper makes to get O(1) unification.
void BM_Construct_GroundTerm(benchmark::State& state) {
  TermFactory f;
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeepList(&f, depth));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Construct_GroundTerm)->Arg(8)->Arg(64)->Arg(512)->Complexity();

// Duplicate checks on ground tuples: a pointer-set probe thanks to tuple
// hash-consing.
void BM_DuplicateCheck_GroundTuple(benchmark::State& state) {
  TermFactory f;
  const Arg* args[] = {DeepList(&f, static_cast<int>(state.range(0))),
                       f.MakeInt(1)};
  const Tuple* t = f.MakeTuple(args);
  for (auto _ : state) {
    const Tuple* again = f.MakeTuple(args);
    benchmark::DoNotOptimize(again == t);
  }
}
BENCHMARK(BM_DuplicateCheck_GroundTuple)->Arg(64);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
