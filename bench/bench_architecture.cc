// Experiment F1 (DESIGN.md): the Fig. 1 architecture end-to-end — a
// declarative query flows through the optimizer (adornment + magic +
// semi-naive rewriting) into the interpreting evaluation system, reading
// base data from both main-memory relations and persistent relations
// paged through the buffer pool. Also measures 'consulting' throughput
// (paper §2: interpreted CORAL makes consulting fast; the abandoned
// compiled-to-C++ backend traded compile time for little gain).

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench/bench_util.h"
#include "src/core/database.h"
#include "src/storage/storage_manager.h"

namespace coral {
namespace {

constexpr char kModule[] = R"(
  module routes.
  export reachable(bf), hops(bff).
  reachable(X, Y) :- link(X, Y).
  reachable(X, Y) :- link(X, Z), reachable(Z, Y).
  hops(X, Y, N) :- link(X, Y), N = 1.
  hops(X, Y, N) :- link(X, Z), hops(Z, Y, M), N = M + 1, M < 64.
  end_module.
)";

/// End-to-end over in-memory base data.
void BM_EndToEnd_MemoryBase(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(kModule).ok()) return;
  if (!db.Consult(bench::ChainFacts("link", n)).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("reachable(n0, Y)");
    if (!res.ok() || res->rows.size() != static_cast<size_t>(n)) {
      state.SkipWithError("bad result");
      return;
    }
  }
}
BENCHMARK(BM_EndToEnd_MemoryBase)->Arg(64)->Arg(256);

/// Same query, base data in a persistent relation (page-level I/O path).
void BM_EndToEnd_PersistentBase(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto dir = std::filesystem::temp_directory_path() / "coral_bench_arch";
  std::filesystem::create_directories(dir);
  std::string prefix = (dir / ("arch" + std::to_string(n))).string();
  std::filesystem::remove(prefix + ".db");
  std::filesystem::remove(prefix + ".wal");

  Database db;

  bench::MaybeProfile(&db);
  auto sm = StorageManager::Open(prefix, db.factory());
  if (!sm.ok()) return;
  auto rel = (*sm)->CreateRelation("link", 2);
  if (!rel.ok()) return;
  for (int i = 0; i < n; ++i) {
    const Arg* args[] = {
        db.factory()->MakeAtom("n" + std::to_string(i)),
        db.factory()->MakeAtom("n" + std::to_string(i + 1))};
    (*rel)->Insert(db.factory()->MakeTuple(args));
  }
  if (!(*sm)->AttachTo(&db).ok()) return;
  if (!db.Consult(kModule).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("reachable(n0, Y)");
    if (!res.ok() || res->rows.size() != static_cast<size_t>(n)) {
      state.SkipWithError("bad result");
      return;
    }
  }
  state.counters["disk_reads"] = static_cast<double>((*sm)->disk()->reads());
  (void)(*sm)->Close();
}
BENCHMARK(BM_EndToEnd_PersistentBase)->Arg(64)->Arg(256);

/// 'Consulting' throughput: parse + load facts + register module. The
/// paper kept the interpreter because consulting "takes very little time,
/// comparable to Prolog systems" (§2).
void BM_ConsultProgram(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string text = std::string(kModule) + bench::ChainFacts("link", n);
  for (auto _ : state) {
    Database db;
    bench::MaybeProfile(&db);
    auto st = db.Consult(text);
    if (!st.ok()) {
      state.SkipWithError(st.status().ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConsultProgram)->Arg(1000)->Arg(10000);

/// Compile (rewrite) cost per query form: adornment + supplementary magic
/// + semi-naive structures.
void BM_CompileQueryForm(benchmark::State& state) {
  for (auto _ : state) {
    Database db;
    bench::MaybeProfile(&db);
    if (!db.Consult(kModule).ok()) return;
    auto listing = db.modules()->RewrittenListing("routes", "reachable",
                                                  "bf");
    if (!listing.ok()) {
      state.SkipWithError(listing.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(listing->size());
  }
}
BENCHMARK(BM_CompileQueryForm);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
