// Experiment C5 (DESIGN.md): argument-form and pattern-form indices
// accelerate retrieval (paper §3.3, §5.5.1). Point lookups over growing
// relations: unindexed list relation vs hash relation with an argument
// index vs pattern-form index drilling into functor terms.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/data/term_factory.h"
#include "src/rel/hash_relation.h"
#include "src/rel/list_relation.h"

namespace coral {
namespace {

void Fill(TermFactory* f, Relation* rel, int n) {
  for (int i = 0; i < n; ++i) {
    const Arg* args[] = {f->MakeInt(i % 997), f->MakeInt(i)};
    rel->Insert(f->MakeTuple(args));
  }
}

size_t Drain(std::unique_ptr<TupleIterator> it) {
  size_t n = 0;
  while (it->Next()) ++n;
  return n;
}

void BM_PointLookup_ListRelation(benchmark::State& state) {
  TermFactory f;
  ListRelation rel("p", 2);
  Fill(&f, &rel, static_cast<int>(state.range(0)));
  BindEnv env(1);
  bench::Lcg rng;
  for (auto _ : state) {
    TermRef pattern[] = {{f.MakeInt(static_cast<int64_t>(rng.Next(997))),
                          nullptr},
                         {f.MakeVariable(0, "X"), &env}};
    benchmark::DoNotOptimize(Drain(rel.Select(pattern)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PointLookup_ListRelation)
    ->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

void BM_PointLookup_ArgumentIndex(benchmark::State& state) {
  TermFactory f;
  HashRelation rel("p", 2);
  rel.AddArgumentIndex({0});
  Fill(&f, &rel, static_cast<int>(state.range(0)));
  BindEnv env(1);
  bench::Lcg rng;
  for (auto _ : state) {
    TermRef pattern[] = {{f.MakeInt(static_cast<int64_t>(rng.Next(997))),
                          nullptr},
                         {f.MakeVariable(0, "X"), &env}};
    benchmark::DoNotOptimize(Drain(rel.Select(pattern)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PointLookup_ArgumentIndex)
    ->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

// Pattern-form index: emp(Name, addr(Street, City)) keyed on (Name, City)
// — the paper's own example (§5.5.1) — vs full scans of the same data.
void FillEmp(TermFactory* f, HashRelation* rel, int n) {
  bench::Lcg rng(7);
  for (int i = 0; i < n; ++i) {
    const Arg* addr_args[] = {
        f->MakeAtom("street" + std::to_string(rng.Next(50))),
        f->MakeAtom("city" + std::to_string(i % 199))};
    const Arg* args[] = {f->MakeAtom("emp" + std::to_string(i)),
                         f->MakeFunctor("addr", addr_args)};
    rel->Insert(f->MakeTuple(args));
  }
}

void RunEmpLookup(benchmark::State& state, bool with_index) {
  TermFactory f;
  HashRelation rel("emp", 2);
  if (with_index) {
    const Arg* addr_pat[] = {f.CanonicalVar(1), f.CanonicalVar(2)};
    std::vector<const Arg*> pat = {f.CanonicalVar(0),
                                   f.MakeFunctor("addr", addr_pat)};
    rel.AddPatternIndex(pat, 3, {0, 2});
  }
  FillEmp(&f, &rel, static_cast<int>(state.range(0)));
  BindEnv env(1);
  bench::Lcg rng(13);
  for (auto _ : state) {
    int64_t i = static_cast<int64_t>(rng.Next(state.range(0)));
    const Arg* qaddr[] = {f.MakeVariable(0, "S"),
                          f.MakeAtom("city" + std::to_string(i % 199))};
    TermRef pattern[] = {{f.MakeAtom("emp" + std::to_string(i)), nullptr},
                         {f.MakeFunctor("addr", qaddr), &env}};
    benchmark::DoNotOptimize(Drain(rel.Select(pattern)));
  }
}

void BM_PatternLookup_NoIndex(benchmark::State& state) {
  RunEmpLookup(state, false);
}
void BM_PatternLookup_PatternIndex(benchmark::State& state) {
  RunEmpLookup(state, true);
}
BENCHMARK(BM_PatternLookup_NoIndex)->Arg(1000)->Arg(10000);
BENCHMARK(BM_PatternLookup_PatternIndex)->Arg(1000)->Arg(10000);

// Insert overhead of maintaining indices.
void BM_Insert_NoIndex(benchmark::State& state) {
  TermFactory f;
  for (auto _ : state) {
    HashRelation rel("p", 2);
    Fill(&f, &rel, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(rel.size());
  }
}
void BM_Insert_TwoIndexes(benchmark::State& state) {
  TermFactory f;
  for (auto _ : state) {
    HashRelation rel("p", 2);
    rel.AddArgumentIndex({0});
    rel.AddArgumentIndex({1});
    Fill(&f, &rel, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(rel.size());
  }
}
BENCHMARK(BM_Insert_NoIndex)->Arg(10000);
BENCHMARK(BM_Insert_TwoIndexes)->Arg(10000);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
