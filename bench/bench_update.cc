// Incremental view maintenance vs. from-scratch recomputation
// (docs/MAINTENANCE.md): a saved transitive-closure module is kept up to
// date across single-edge base updates. The maintained arm commits each
// update through Session::ApplyUpdate with maintenance on (DRed +
// resumed fixpoint repair the instance in place); the recompute arm runs
// the identical updates with Database::set_maintenance(false), so every
// commit invalidates the instance and the probe query pays a full
// re-evaluation. EXPERIMENTS.md records the ratio at 10^5 base facts.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "src/core/database.h"
#include "src/core/session.h"

namespace coral {
namespace {

// `edges` base facts as disjoint chains of kChainLen edges each: the
// closure is recursive but bounded (kChainLen*(kChainLen+1)/2 tuples per
// chain), so the full-TC instance stays linear in the base size instead
// of quadratic.
constexpr int kChainLen = 10;

std::string ChainGraph(int edges) {
  std::string out;
  int chains = edges / kChainLen;
  for (int c = 0; c < chains; ++c) {
    out += bench::ChainFacts("edge", kChainLen,
                             "c" + std::to_string(c) + "n");
  }
  return out;
}

constexpr char kTcModule[] = R"(
  module tc.
  export tc(ff).
  @save_module.
  tc(X, Y) :- edge(X, Y).
  tc(X, Y) :- edge(X, Z), tc(Z, Y).
  end_module.
)";

std::string EdgeText(int chain, int i) {
  std::string p = "c" + std::to_string(chain) + "n";
  return "edge(" + p + std::to_string(i) + ", " + p +
         std::to_string(i + 1) + ").";
}

/// One timed iteration = commit a single-edge update (delete on even
/// iterations, re-insert on odd — every commit is a real net change) and
/// probe the closure from the touched chain's root. The probe is what a
/// client pays to read fresh answers: with maintenance it scans the
/// repaired instance; without, it re-materializes the module.
void RunUpdateCycle(benchmark::State& state, bool maintain) {
  int edges = static_cast<int>(state.range(0));
  int chains = edges / kChainLen;
  Database db;
  bench::MaybeProfile(&db);
  db.set_maintenance(maintain);
  if (!db.Consult(kTcModule).ok()) return;
  if (!db.Consult(ChainGraph(edges)).ok()) return;
  Session session(&db);
  // Materialize the saved instance before timing, and warm the
  // maintenance pass: the first commit pays one-time support counting
  // and probe-index backfill, which steady-state commits never repay.
  (void)db.EvalQuery("tc(c0n0, Y)");
  (void)session.ApplyUpdate("-" + EdgeText(0, kChainLen - 1) + "\n");
  (void)session.ApplyUpdate("+" + EdgeText(0, kChainLen - 1) + "\n");

  uint64_t maintained = 0, invalidated = 0, rederived = 0;
  int iter = 0;
  for (auto _ : state) {
    int chain = (iter / 2) % chains;  // delete/re-insert pair per chain
    bool deleting = (iter % 2) == 0;
    std::string line = (deleting ? "-" : "+") +
                       EdgeText(chain, kChainLen - 1) + "\n";
    auto up = session.ApplyUpdate(line);
    if (!up.ok()) {
      state.SkipWithError(up.status().ToString().c_str());
      return;
    }
    maintained += up->maintained;
    invalidated += up->invalidated;
    rederived += up->rederived;
    auto res = db.EvalQuery("tc(c" + std::to_string(chain) + "n0, Y)");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
    ++iter;
  }
  // Leave no chain truncated for the next benchmark's Arg.
  if (iter % 2 == 1) {
    (void)session.ApplyUpdate("+" + EdgeText((iter / 2) % chains,
                                             kChainLen - 1) + "\n");
  }
  state.counters["maintained"] = static_cast<double>(maintained);
  state.counters["invalidated"] = static_cast<double>(invalidated);
  state.counters["rederived"] = static_cast<double>(rederived);
  bench::MaybeDumpProfile(&db, maintain ? "update maintained"
                                        : "update recompute");
}

void BM_SingleEdgeUpdate_Maintained(benchmark::State& state) {
  RunUpdateCycle(state, /*maintain=*/true);
}
void BM_SingleEdgeUpdate_Recompute(benchmark::State& state) {
  RunUpdateCycle(state, /*maintain=*/false);
}
BENCHMARK(BM_SingleEdgeUpdate_Maintained)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleEdgeUpdate_Recompute)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// Batch flavour: one commit carrying kBatch edge deletions spread over
/// distinct chains (then a commit re-inserting them). Maintenance cost
/// scales with the delta; recomputation pays the whole instance per
/// commit regardless.
void RunBatchUpdate(benchmark::State& state, bool maintain) {
  int edges = static_cast<int>(state.range(0));
  int chains = edges / kChainLen;
  const int kBatch = 16;
  Database db;
  bench::MaybeProfile(&db);
  db.set_maintenance(maintain);
  if (!db.Consult(kTcModule).ok()) return;
  if (!db.Consult(ChainGraph(edges)).ok()) return;
  Session session(&db);
  (void)db.EvalQuery("tc(c0n0, Y)");
  (void)session.ApplyUpdate("-" + EdgeText(0, kChainLen - 1) + "\n");
  (void)session.ApplyUpdate("+" + EdgeText(0, kChainLen - 1) + "\n");

  int iter = 0;
  for (auto _ : state) {
    bool deleting = (iter % 2) == 0;
    std::string text;
    for (int b = 0; b < kBatch; ++b) {
      int chain = (iter / 2 * kBatch + b) % chains;
      text += (deleting ? "-" : "+") + EdgeText(chain, kChainLen - 1) +
              "\n";
    }
    auto up = session.ApplyUpdate(text);
    if (!up.ok()) {
      state.SkipWithError(up.status().ToString().c_str());
      return;
    }
    auto res = db.EvalQuery("tc(c0n0, Y)");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
    ++iter;
  }
  state.counters["batch"] = kBatch;
}

void BM_BatchUpdate_Maintained(benchmark::State& state) {
  RunBatchUpdate(state, /*maintain=*/true);
}
void BM_BatchUpdate_Recompute(benchmark::State& state) {
  RunBatchUpdate(state, /*maintain=*/false);
}
BENCHMARK(BM_BatchUpdate_Maintained)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchUpdate_Recompute)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coral

int main(int argc, char** argv) {
  coral::bench::ParseThreadsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
