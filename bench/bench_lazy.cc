// Experiment C8 (DESIGN.md): lazy evaluation (paper §5.4.3) returns
// answers at the end of every fixpoint iteration instead of at the end of
// the computation: time-to-first-answer is ~one iteration, not the whole
// fixpoint.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include <coral/coral.h>

namespace coral {
namespace {

std::string TcModule(const char* extra) {
  return std::string(R"(
    module tc.
    export tc(bf).
  )") + extra + R"(
    tc(X, Y) :- par(X, Y).
    tc(X, Y) :- par(X, Z), tc(Z, Y).
    end_module.
  )";
}

void RunFirst(benchmark::State& state, const char* extra) {
  int n = static_cast<int>(state.range(0));
  Coral c;
  if (!c.Consult(TcModule(extra)).ok()) return;
  if (!c.Consult(bench::ChainFacts("par", n)).ok()) return;
  for (auto _ : state) {
    auto scan = c.OpenScan("tc(n0, Y)");
    if (!scan.ok()) {
      state.SkipWithError(scan.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(scan->Next());  // first answer only
  }
}

void RunAll(benchmark::State& state, const char* extra) {
  int n = static_cast<int>(state.range(0));
  Coral c;
  if (!c.Consult(TcModule(extra)).ok()) return;
  if (!c.Consult(bench::ChainFacts("par", n)).ok()) return;
  for (auto _ : state) {
    auto scan = c.OpenScan("tc(n0, Y)");
    if (!scan.ok()) return;
    benchmark::DoNotOptimize(scan->Count());
  }
}

void BM_FirstAnswer_Lazy(benchmark::State& state) { RunFirst(state, ""); }
void BM_FirstAnswer_Eager(benchmark::State& state) {
  RunFirst(state, "@eager.");
}
void BM_AllAnswers_Lazy(benchmark::State& state) { RunAll(state, ""); }
void BM_AllAnswers_Eager(benchmark::State& state) {
  RunAll(state, "@eager.");
}
BENCHMARK(BM_FirstAnswer_Lazy)->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK(BM_FirstAnswer_Eager)->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK(BM_AllAnswers_Lazy)->Arg(512);
BENCHMARK(BM_AllAnswers_Eager)->Arg(512);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
