// Experiment C6 (DESIGN.md): pipelining vs materialization (paper §5):
// "Pipelining uses facts on-the-fly and does not store them, at the
// potential cost of recomputation. Materialization stores facts and looks
// them up to avoid recomputation." Pipelining wins when only the first
// few answers are consumed; materialization wins when subresults are
// shared heavily.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/database.h"
#include <coral/coral.h>

namespace coral {
namespace {

std::string PathModule(const char* strategy) {
  return std::string(R"(
    module paths.
    export path(bf).
  )") + strategy + R"(
    path(X, Y) :- e(X, Y).
    path(X, Y) :- e(X, Z), path(Z, Y).
    end_module.
  )";
}

/// Consume only the FIRST answer of a query over a long chain.
void RunFirstAnswer(benchmark::State& state, const char* strategy) {
  int n = static_cast<int>(state.range(0));
  Coral c;
  if (!c.Consult(PathModule(strategy)).ok()) return;
  if (!c.Consult(bench::ChainFacts("e", n)).ok()) return;
  for (auto _ : state) {
    auto scan = c.OpenScan("path(n0, Y)");
    if (!scan.ok()) {
      state.SkipWithError(scan.status().ToString().c_str());
      return;
    }
    const Tuple* first = scan->Next();
    benchmark::DoNotOptimize(first);
  }
}

void BM_FirstAnswer_Pipelined(benchmark::State& state) {
  RunFirstAnswer(state, "@pipelining.");
}
void BM_FirstAnswer_Materialized(benchmark::State& state) {
  RunFirstAnswer(state, "@materialized. @eager.");
}
void BM_FirstAnswer_MaterializedLazy(benchmark::State& state) {
  RunFirstAnswer(state, "@materialized.");
}
BENCHMARK(BM_FirstAnswer_Pipelined)->Arg(64)->Arg(256);
BENCHMARK(BM_FirstAnswer_Materialized)->Arg(64)->Arg(256);
BENCHMARK(BM_FirstAnswer_MaterializedLazy)->Arg(64)->Arg(256);

/// Consume ALL answers over a DAG with heavy subgoal sharing: top-down
/// recomputes shared subpaths exponentially often, bottom-up stores them.
std::string LadderFacts(int n) {
  // A "ladder": a_i -> a_{i+1} and a_i -> b_{i+1}; b_i -> a_{i+1}, b_{i+1}.
  std::string out;
  for (int i = 0; i < n; ++i) {
    std::string ai = "a" + std::to_string(i), bi = "b" + std::to_string(i);
    std::string an = "a" + std::to_string(i + 1),
                bn = "b" + std::to_string(i + 1);
    out += "e(" + ai + ", " + an + ").\n";
    out += "e(" + ai + ", " + bn + ").\n";
    out += "e(" + bi + ", " + an + ").\n";
    out += "e(" + bi + ", " + bn + ").\n";
  }
  return out;
}

void RunAllAnswers(benchmark::State& state, const char* strategy) {
  int n = static_cast<int>(state.range(0));
  Coral c;
  if (!c.Consult(PathModule(strategy)).ok()) return;
  if (!c.Consult(LadderFacts(n)).ok()) return;
  for (auto _ : state) {
    auto scan = c.OpenScan("path(a0, Y)");
    if (!scan.ok()) {
      state.SkipWithError(scan.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(scan->Count());
  }
}

void BM_AllAnswers_SharedSubgoals_Pipelined(benchmark::State& state) {
  RunAllAnswers(state, "@pipelining.");
}
void BM_AllAnswers_SharedSubgoals_Materialized(benchmark::State& state) {
  RunAllAnswers(state, "@materialized.");
}
BENCHMARK(BM_AllAnswers_SharedSubgoals_Pipelined)->Arg(8)->Arg(12);
BENCHMARK(BM_AllAnswers_SharedSubgoals_Materialized)->Arg(8)->Arg(12);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
