// Experiment C11 (DESIGN.md): subsumption/duplicate checks vs multiset
// semantics (paper §4.2: duplicate checks on all relations by default; a
// multiset relation keeps one copy per derivation, with duplicate checks
// only on the magic predicates — consistent with SQL on non-recursive
// queries).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/database.h"

namespace coral {
namespace {

// A duplicate-heavy projection: result(X) :- e(X, Y) over a dense graph
// derives each X once per outgoing edge.
std::string Module(bool multiset) {
  return std::string(R"(
    module m.
    export result(f).
    @eager.
  )") + (multiset ? "@multiset result.\n" : "") + R"(
    result(X) :- e(X, Y).
    end_module.
  )";
}

void Run(benchmark::State& state, bool multiset) {
  int v = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(Module(multiset)).ok()) return;
  // Dense: every node has v/4 outgoing edges -> v/4 duplicates per X.
  if (!db.Consult(bench::RandomGraphFacts("e", v, v * v / 4, false)).ok()) {
    return;
  }
  for (auto _ : state) {
    auto res = db.EvalQuery("result(X)");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
  }
  state.counters["inserts"] =
      static_cast<double>(db.modules()->last_stats().inserts);
}

void BM_Projection_SetSemantics(benchmark::State& state) {
  Run(state, false);
}
void BM_Projection_Multiset(benchmark::State& state) { Run(state, true); }
BENCHMARK(BM_Projection_SetSemantics)->Arg(32)->Arg(64);
BENCHMARK(BM_Projection_Multiset)->Arg(32)->Arg(64);

// Subsumption with non-ground facts: inserting ground facts into a
// relation holding k non-ground facts costs k matching attempts each.
#include "src/data/term_factory.h"
#include "src/rel/hash_relation.h"

void BM_Insert_WithNonGroundSubsumers(benchmark::State& state) {
  TermFactory f;
  HashRelation rel("p", 2);
  int k = static_cast<int>(state.range(0));
  // k non-ground facts p(_i, ci) that do not subsume the inserts below.
  for (int i = 0; i < k; ++i) {
    const Arg* args[] = {f.CanonicalVar(0), f.MakeAtom("c" + std::to_string(i))};
    rel.Insert(f.MakeTuple(args));
  }
  int64_t next = 0;
  for (auto _ : state) {
    const Arg* args[] = {f.MakeInt(next), f.MakeInt(next)};
    ++next;
    benchmark::DoNotOptimize(rel.Insert(f.MakeTuple(args)));
  }
}
BENCHMARK(BM_Insert_WithNonGroundSubsumers)->Arg(0)->Arg(16)->Arg(256);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
