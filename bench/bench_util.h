// Shared workload generators for the benchmark harness. Deterministic
// (fixed-seed LCG) so runs are reproducible.

#ifndef CORAL_BENCH_BENCH_UTIL_H_
#define CORAL_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

namespace coral::bench {

/// Worker-count override for the *_Parallel benchmark series, set by the
/// --threads=N command-line flag. 0 = no override: run the full 1/2/4
/// series baked into the benchmark arguments.
inline int g_threads_override = 0;

/// --profile: enable evaluation statistics on every benchmark database
/// and print the per-module profile after each benchmark. Collection is
/// cheap but not free; timings under --profile measure the instrumented
/// engine (EXPERIMENTS.md records the disabled-mode overhead instead).
inline bool g_profile = false;

/// --no-auto-index: turn Database::set_auto_optimize off on every
/// benchmark database — no automatic argument indexes, no join
/// reordering. EXPERIMENTS.md records this unoptimized baseline against
/// the default run.
inline bool g_no_auto_optimize = false;

/// --no-vm: turn the join bytecode VM off on every benchmark database,
/// evaluating rule bodies on the interpreting ResolveTuple path.
/// EXPERIMENTS.md records this baseline against the default (VM) run.
inline bool g_no_vm = false;

/// --deadline-ms=N: per-query evaluation budget. Benchmarks that
/// evaluate through a Session apply it (bench_server applies it to every
/// client session); queries over budget fail with DeadlineExceeded, so
/// use this to measure deadline-enforcement overhead, not throughput.
inline int64_t g_deadline_ms = 0;

/// --max-inflight=N: admission-control bound for bench_server (worker
/// threads serving concurrent requests). 0 = the benchmark's default.
inline int g_max_inflight = 0;

/// Strips the harness's own flags (--threads=N, --profile,
/// --no-auto-index, --no-vm, --deadline-ms=N, --max-inflight=N) from
/// argv (benchmark::Initialize rejects flags it does not know) and
/// records them. Call first in main().
inline void ParseThreadsFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads_override = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      g_profile = true;
    } else if (std::strcmp(argv[i], "--no-auto-index") == 0) {
      g_no_auto_optimize = true;
    } else if (std::strcmp(argv[i], "--no-vm") == 0) {
      g_no_vm = true;
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      g_deadline_ms = std::atoll(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--max-inflight=", 15) == 0) {
      g_max_inflight = std::atoi(argv[i] + 15);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Applies the harness flags to `db`: profiling when --profile was
/// given, auto-optimization off when --no-auto-index was, the bytecode
/// VM off when --no-vm was. Call right after constructing the
/// benchmark's Database.
template <typename DB>
inline void MaybeProfile(DB* db) {
  if (g_profile) db->set_profiling(true);
  if (g_no_auto_optimize) db->set_auto_optimize(false);
  if (g_no_vm) db->set_use_vm(false);
}

/// Prints the collected profile under the given label when --profile was
/// given. Call after the timing loop.
template <typename DB>
inline void MaybeDumpProfile(DB* db, const std::string& label) {
  if (!g_profile) return;
  std::cout << "\n--- profile: " << label << " ---\n" << db->ProfileReport();
}

/// The worker count a *_Parallel benchmark run should use: the --threads
/// override when given, else the series value from the benchmark args.
inline int ThreadsOr(int series_value) {
  return g_threads_override > 0 ? g_threads_override : series_value;
}

/// Tiny deterministic PRNG (we avoid std::mt19937 for header brevity).
class Lcg {
 public:
  explicit Lcg(uint64_t seed = 0x5eed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  uint64_t Next(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t state_;
};

/// edge(n0, n1). ... chain of `n` edges.
inline std::string ChainFacts(const std::string& pred, int n,
                              const std::string& node_prefix = "n") {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += pred + "(" + node_prefix + std::to_string(i) + ", " +
           node_prefix + std::to_string(i + 1) + ").\n";
  }
  return out;
}

/// Random graph with `v` nodes and `e` directed edges (with costs when
/// `with_cost`), possibly cyclic.
inline std::string RandomGraphFacts(const std::string& pred, int v, int e,
                                    bool with_cost, uint64_t seed = 42) {
  Lcg rng(seed);
  std::string out;
  for (int i = 0; i < e; ++i) {
    int a = static_cast<int>(rng.Next(v));
    int b = static_cast<int>(rng.Next(v));
    out += pred + "(v" + std::to_string(a) + ", v" + std::to_string(b);
    if (with_cost) {
      out += ", " + std::to_string(1 + rng.Next(9));
    }
    out += ").\n";
  }
  return out;
}

/// Complete binary tree of `depth` levels: move(n1, n2), move(n1, n3)...
inline std::string BinaryTreeMoves(int depth) {
  std::string out;
  int internal = (1 << (depth - 1)) - 1;
  for (int i = 1; i <= internal; ++i) {
    out += "move(t" + std::to_string(i) + ", t" + std::to_string(2 * i) +
           ").\n";
    out += "move(t" + std::to_string(i) + ", t" + std::to_string(2 * i + 1) +
           ").\n";
  }
  return out;
}

inline constexpr char kAncestorModule[] = R"(
  module anc.
  export anc(bf).
  anc(X, Y) :- par(X, Y).
  anc(X, Y) :- par(X, Z), anc(Z, Y).
  end_module.
)";

}  // namespace coral::bench

#endif  // CORAL_BENCH_BENCH_UTIL_H_
