// Experiment C12 (DESIGN.md): Ordered Search (paper §5.4.1) evaluates
// left-to-right modularly stratified programs (win/move game trees).
// Scaling over tree depth, and overhead relative to a stratified program
// of the same size evaluated without the context machinery.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/database.h"

namespace coral {
namespace {

void BM_OrderedSearch_WinMove(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(R"(
    module game.
    export win(b).
    @ordered_search.
    win(X) :- move(X, Y), not win(Y).
    end_module.
  )").ok()) {
    return;
  }
  if (!db.Consult(bench::BinaryTreeMoves(depth)).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("win(t1)");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
  }
  state.counters["positions"] = static_cast<double>((1 << depth) - 1);
}
BENCHMARK(BM_OrderedSearch_WinMove)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

// Reference: stratified negation over the same tree, evaluated by plain
// SCC-ordered semi-naive (no context machinery): losing = leaf, winning =
// has a losing child computed level by level via depth tagging.
void BM_StratifiedNegation_Reference(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(R"(
    module ref.
    export haschild(b).
    reach(X) :- move(X, Y).
    haschild(X) :- node(X), not leafless(X).
    leafless(X) :- node(X), not reach(X).
    end_module.
  )").ok()) {
    return;
  }
  std::string facts = bench::BinaryTreeMoves(depth);
  for (int i = 1; i < (1 << depth); ++i) {
    facts += "node(t" + std::to_string(i) + ").\n";
  }
  if (!db.Consult(facts).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("haschild(t1)");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_StratifiedNegation_Reference)->Arg(8)->Arg(10);

// Nim chains (the game_analysis example at benchmark scale): positions
// 0..N with moves taking 1..3.
void BM_OrderedSearch_NimChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(R"(
    module game.
    export win(b).
    @ordered_search.
    win(X) :- move(X, Y), not win(Y).
    end_module.
  )").ok()) {
    return;
  }
  std::string facts;
  for (int i = 1; i <= n; ++i) {
    for (int take = 1; take <= 3 && take <= i; ++take) {
      facts += "move(p" + std::to_string(i) + ", p" +
               std::to_string(i - take) + ").\n";
    }
  }
  if (!db.Consult(facts).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("win(p" + std::to_string(n) + ")");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_OrderedSearch_NimChain)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
