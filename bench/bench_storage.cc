// Experiment C9 (DESIGN.md): persistent relations are paged on demand
// through the client buffer pool (paper §2: "a get-next-tuple request on
// a persistent relation results in a page-level I/O request by the buffer
// manager"). Scans vs buffer-pool sizes; B-tree point lookups vs heap
// scans; persistent vs in-memory relation access.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench/bench_util.h"
#include "src/data/term_factory.h"
#include "src/rel/hash_relation.h"
#include "src/storage/storage_manager.h"

namespace coral {
namespace {

constexpr int kRows = 20000;

std::string TempPrefix(const std::string& tag) {
  auto dir = std::filesystem::temp_directory_path() / "coral_bench_storage";
  std::filesystem::create_directories(dir);
  return (dir / tag).string();
}

void FillPersistent(PersistentRelation* rel, TermFactory* f) {
  for (int i = 0; i < kRows; ++i) {
    const Arg* args[] = {f->MakeInt(i % 1000), f->MakeInt(i)};
    rel->Insert(f->MakeTuple(args));
  }
}

/// Full scan with varying pool frames: small pools thrash.
void BM_PersistentScan_PoolFrames(benchmark::State& state) {
  TermFactory f;
  std::string prefix = TempPrefix("scan" + std::to_string(state.range(0)));
  std::filesystem::remove(prefix + ".db");
  std::filesystem::remove(prefix + ".wal");
  StorageManager::Options opts;
  opts.pool_frames = static_cast<size_t>(state.range(0));
  auto sm = StorageManager::Open(prefix, &f, opts);
  if (!sm.ok()) return;
  auto rel = (*sm)->CreateRelation("big", 2);
  if (!rel.ok()) return;
  FillPersistent(*rel, &f);
  for (auto _ : state) {
    size_t n = 0;
    auto it = (*rel)->Scan();
    while (it->Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["pool_misses"] =
      static_cast<double>((*sm)->pool()->misses());
  state.counters["disk_reads"] = static_cast<double>((*sm)->disk()->reads());
  (void)(*sm)->Close();
}
BENCHMARK(BM_PersistentScan_PoolFrames)->Arg(4)->Arg(64)->Arg(1024);

/// B-tree point lookups vs scanning the heap for the same selection.
void BM_PersistentPointLookup_BTree(benchmark::State& state) {
  TermFactory f;
  std::string prefix = TempPrefix("btree");
  std::filesystem::remove(prefix + ".db");
  std::filesystem::remove(prefix + ".wal");
  auto sm = StorageManager::Open(prefix, &f);
  if (!sm.ok()) return;
  auto rel = (*sm)->CreateRelation("big", 2);
  if (!rel.ok()) return;
  FillPersistent(*rel, &f);
  if (!(*rel)->AddIndex({0}).ok()) return;
  BindEnv env(1);
  bench::Lcg rng;
  for (auto _ : state) {
    TermRef pattern[] = {{f.MakeInt(static_cast<int64_t>(rng.Next(1000))),
                          nullptr},
                         {f.MakeVariable(0, "X"), &env}};
    auto it = (*rel)->Select(pattern);
    size_t n = 0;
    while (it->Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  (void)(*sm)->Close();
}
BENCHMARK(BM_PersistentPointLookup_BTree);

void BM_PersistentPointLookup_HeapScan(benchmark::State& state) {
  TermFactory f;
  std::string prefix = TempPrefix("heapscan");
  std::filesystem::remove(prefix + ".db");
  std::filesystem::remove(prefix + ".wal");
  auto sm = StorageManager::Open(prefix, &f);
  if (!sm.ok()) return;
  auto rel = (*sm)->CreateRelation("big", 2);
  if (!rel.ok()) return;
  FillPersistent(*rel, &f);
  bench::Lcg rng;
  for (auto _ : state) {
    // No secondary index: selection on column 0 only can't use the
    // primary (both-column) index; falls back to a heap scan.
    BindEnv env(1);
    TermRef pattern[] = {{f.MakeInt(static_cast<int64_t>(rng.Next(1000))),
                          nullptr},
                         {f.MakeVariable(0, "X"), &env}};
    auto it = (*rel)->Select(pattern);
    size_t n = 0;
    while (it->Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  (void)(*sm)->Close();
}
BENCHMARK(BM_PersistentPointLookup_HeapScan);

/// The memory-vs-disk shape: same data, in-memory hash relation.
void BM_InMemoryScan_Reference(benchmark::State& state) {
  TermFactory f;
  HashRelation rel("big", 2);
  for (int i = 0; i < kRows; ++i) {
    const Arg* args[] = {f.MakeInt(i % 1000), f.MakeInt(i)};
    rel.Insert(f.MakeTuple(args));
  }
  for (auto _ : state) {
    size_t n = 0;
    auto it = rel.Scan();
    while (it->Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_InMemoryScan_Reference);

/// Transaction overhead: insert batches with/without WAL transactions.
void BM_Insert_NoTxn(benchmark::State& state) {
  TermFactory f;
  std::string prefix = TempPrefix("ins_plain");
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(prefix + ".db");
    std::filesystem::remove(prefix + ".wal");
    auto sm = StorageManager::Open(prefix, &f);
    if (!sm.ok()) return;
    auto rel = (*sm)->CreateRelation("t", 2);
    if (!rel.ok()) return;
    state.ResumeTiming();
    for (int i = 0; i < 2000; ++i) {
      const Arg* args[] = {f.MakeInt(i), f.MakeInt(i)};
      (*rel)->Insert(f.MakeTuple(args));
    }
    state.PauseTiming();
    (void)(*sm)->Close();
    state.ResumeTiming();
  }
}
void BM_Insert_InTxn(benchmark::State& state) {
  TermFactory f;
  std::string prefix = TempPrefix("ins_txn");
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(prefix + ".db");
    std::filesystem::remove(prefix + ".wal");
    auto sm = StorageManager::Open(prefix, &f);
    if (!sm.ok()) return;
    auto rel = (*sm)->CreateRelation("t", 2);
    if (!rel.ok()) return;
    state.ResumeTiming();
    if (!(*sm)->Begin().ok()) return;
    for (int i = 0; i < 2000; ++i) {
      const Arg* args[] = {f.MakeInt(i), f.MakeInt(i)};
      (*rel)->Insert(f.MakeTuple(args));
    }
    if (!(*sm)->Commit().ok()) return;
    state.PauseTiming();
    (void)(*sm)->Close();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Insert_NoTxn);
BENCHMARK(BM_Insert_InTxn);

}  // namespace
}  // namespace coral

BENCHMARK_MAIN();
