// Server experiment (EXPERIMENTS.md): end-to-end throughput and latency
// of the query server — TCP loopback, JSONL framing, admission control,
// per-connection sessions reading a shared snapshot. Each benchmark
// thread is one client connection issuing queries synchronously, so
// `items_per_second` is end-to-end queries/sec at that client
// concurrency; p50/p99 come from the server's own latency histogram.
//
// Harness flags: --max-inflight=N sizes the server worker pool (default
// 8); --deadline-ms=N applies a session deadline to every client.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/core/database.h"
#include "src/server/json.h"
#include "src/server/server.h"
#include "src/util/logging.h"
#include "src/util/sync.h"

namespace coral {
namespace {

// One server shared by all benchmark threads, torn down between
// benchmark families via unique_ptr reset in the thread-0 epilogue.
struct ServerHarness {
  Database db;
  std::unique_ptr<server::Server> server;

  explicit ServerHarness(int chain) {
    auto consulted = db.Consult(
        "module paths.\n"
        "export path(bf, ff).\n"
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Z) :- path(X, Y), edge(Y, Z).\n"
        "end_module.\n" +
        bench::ChainFacts("edge", chain));
    CORAL_CHECK(consulted.ok());
    server::ServerOptions opts;
    opts.port = 0;
    opts.max_inflight =
        bench::g_max_inflight > 0 ? static_cast<size_t>(bench::g_max_inflight)
                                  : 8;
    opts.max_queue = 1024;  // benchmark measures latency, not shedding
    opts.default_deadline_ms = bench::g_deadline_ms;
    server = std::make_unique<server::Server>(&db, opts);
    CORAL_CHECK(server->Start().ok());
  }
  ~ServerHarness() { server->Stop(); }
};

// The harness is shared by all client threads of one benchmark run;
// first thread in constructs it, last one out destroys it.
Mutex g_harness_mu;
std::unique_ptr<ServerHarness> g_harness CORAL_GUARDED_BY(g_harness_mu);
int g_harness_refs CORAL_GUARDED_BY(g_harness_mu) = 0;

ServerHarness* AcquireHarness(int chain) {
  MutexLock lock(&g_harness_mu);
  if (g_harness_refs++ == 0) {
    g_harness = std::make_unique<ServerHarness>(chain);
  }
  return g_harness.get();
}

void ReleaseHarness(obs::ServerMetrics* metrics_out,
                    benchmark::State& state) {
  MutexLock lock(&g_harness_mu);
  if (--g_harness_refs == 0) {
    if (metrics_out != nullptr) {
      state.counters["p50_ms"] = metrics_out->LatencyQuantileMs(0.5);
      state.counters["p99_ms"] = metrics_out->LatencyQuantileMs(0.99);
      state.counters["shed"] = static_cast<double>(metrics_out->shed());
      state.counters["timeouts"] =
          static_cast<double>(metrics_out->timeouts());
    }
    g_harness.reset();
  }
}

int ConnectLoopback(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool RoundTrip(int fd, const std::string& request, std::string* buf) {
  std::string framed = request + "\n";
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = send(fd, framed.data() + off, framed.size() - off,
                     MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  while (buf->find('\n') == std::string::npos) {
    char chunk[8192];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf->append(chunk, static_cast<size_t>(n));
  }
  bool ok = buf->compare(0, 10, "{\"ok\":true") == 0;
  buf->erase(0, buf->find('\n') + 1);
  return ok;
}

/// args: {chain length}. Thread count = client concurrency.
void BM_ServerQuery(benchmark::State& state) {
  ServerHarness* harness = AcquireHarness(static_cast<int>(state.range(0)));
  int fd = ConnectLoopback(harness->server->port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    ReleaseHarness(nullptr, state);
    return;
  }
  const std::string request =
      server::JsonWriter().Field("op", "query").Field("q", "?- path(n0, X).")
          .Build();
  std::string buf;
  for (auto _ : state) {
    if (!RoundTrip(fd, request, &buf)) {
      state.SkipWithError("request failed");
      break;
    }
  }
  close(fd);
  state.SetItemsProcessed(state.iterations());
  ReleaseHarness(harness->server->metrics(), state);
}
BENCHMARK(BM_ServerQuery)
    ->Arg(64)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace coral

int main(int argc, char** argv) {
  coral::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
