// Experiment F3/C1 (DESIGN.md): the paper's Fig. 3 shortest-path program.
// Claim (§5.5.2): with the @aggregate_selection annotations a
// single-source query runs in O(E·V); without them the program generates
// ever-costlier cyclic paths (here made finite with a cost bound, to show
// the blow-up in derived facts).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/database.h"

namespace coral {
namespace {

constexpr char kWithSelection[] = R"(
  module s_p.
  export s_p(bfff).
  @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
  @aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
  s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
  s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
  p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                     append([edge(Z, Y)], P, P1), C1 = C + EC.
  p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
  end_module.
)";

// The same program WITHOUT aggregate selections, kept finite by a cost
// bound far above any shortest path (cyclic paths are enumerated up to
// the bound).
constexpr char kNoSelectionBounded[] = R"(
  module s_p.
  export s_p(bfff).
  s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
  s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
  p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                     C1 = C + EC, C1 < 22,
                     append([edge(Z, Y)], P, P1).
  p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
  end_module.
)";

void RunQuery(Database* db, benchmark::State& state) {
  auto res = db->EvalQuery("s_p(v0, Y, P, C)");
  if (!res.ok()) {
    state.SkipWithError(res.status().ToString().c_str());
    return;
  }
  benchmark::DoNotOptimize(res->rows.size());
}

/// O(E·V) scaling: V grows, E = 4V, cyclic random graphs.
void BM_ShortestPath_WithAggregateSelection(benchmark::State& state) {
  int v = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(kWithSelection).ok()) return;
  if (!db.Consult(bench::RandomGraphFacts("edge", v, 4 * v, true)).ok()) {
    return;
  }
  for (auto _ : state) RunQuery(&db, state);
  bench::MaybeDumpProfile(&db, "ShortestPath with-selection/" + std::to_string(v));
  state.counters["EV"] = static_cast<double>(v) * (4 * v);
  state.counters["derivations"] = static_cast<double>(
      db.modules()->last_stats().solutions);
  state.counters["inserts"] =
      static_cast<double>(db.modules()->last_stats().inserts);
}
BENCHMARK(BM_ShortestPath_WithAggregateSelection)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128);

/// Without the selection (cost-bounded): derived-fact explosion.
void BM_ShortestPath_NoSelectionBounded(benchmark::State& state) {
  int v = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(kNoSelectionBounded).ok()) return;
  if (!db.Consult(bench::RandomGraphFacts("edge", v, 4 * v, true)).ok()) {
    return;
  }
  for (auto _ : state) RunQuery(&db, state);
  bench::MaybeDumpProfile(&db, "ShortestPath no-selection/" + std::to_string(v));
  state.counters["inserts"] =
      static_cast<double>(db.modules()->last_stats().inserts);
}
BENCHMARK(BM_ShortestPath_NoSelectionBounded)->Arg(16);

/// Parallel evaluation series (beyond the paper): the with-selection
/// program at 1, 2 and 4 workers. --threads=N overrides the series.
void BM_ShortestPath_Parallel(benchmark::State& state) {
  int v = static_cast<int>(state.range(0));
  int threads = bench::ThreadsOr(static_cast<int>(state.range(1)));
  Database db;
  bench::MaybeProfile(&db);
  db.set_num_threads(threads);
  if (!db.Consult(kWithSelection).ok()) return;
  if (!db.Consult(bench::RandomGraphFacts("edge", v, 4 * v, true)).ok()) {
    return;
  }
  for (auto _ : state) RunQuery(&db, state);
  bench::MaybeDumpProfile(&db,
                          "ShortestPath parallel/" + std::to_string(v) +
                              "/t" + std::to_string(threads));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ShortestPath_Parallel)
    ->Args({64, 1})->Args({64, 2})->Args({64, 4});

}  // namespace
}  // namespace coral

int main(int argc, char** argv) {
  coral::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
