// Experiment C3 (DESIGN.md): magic rewriting propagates query selections
// (paper §4.1). A bound-source ancestor query over disconnected chains:
// without rewriting the module computes the full closure of every chain;
// with Magic Templates / Supplementary Magic only the queried chain's
// suffix subgoals are derived. Supplementary Magic additionally shares
// rule-prefix joins (the paper's default).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/database.h"

namespace coral {
namespace {

std::string AncModule(const char* rewrite) {
  return std::string(R"(
    module anc.
    export anc(bf).
  )") + rewrite + R"(
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )";
}

/// `chains` disjoint chains of length `len` each; query the first chain.
void RunBoundQuery(benchmark::State& state, const char* rewrite) {
  int len = static_cast<int>(state.range(0));
  int chains = 8;
  Database db;
  bench::MaybeProfile(&db);
  if (!db.Consult(AncModule(rewrite)).ok()) return;
  std::string facts;
  for (int c = 0; c < chains; ++c) {
    facts += bench::ChainFacts("par", len, "c" + std::to_string(c) + "x");
  }
  if (!db.Consult(facts).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("anc(c0x0, Y)");
    if (!res.ok() || res->rows.size() != static_cast<size_t>(len)) {
      state.SkipWithError("wrong answer count");
      return;
    }
  }
  state.counters["inserts"] =
      static_cast<double>(db.modules()->last_stats().inserts);
  state.counters["derivations"] =
      static_cast<double>(db.modules()->last_stats().solutions);
  bench::MaybeDumpProfile(&db, std::string("BoundQuery ") + rewrite + "/" +
                                   std::to_string(len));
}

void BM_BoundQuery_NoRewriting(benchmark::State& state) {
  RunBoundQuery(state, "@no_rewriting.");
}
void BM_BoundQuery_MagicTemplates(benchmark::State& state) {
  RunBoundQuery(state, "@magic.");
}
void BM_BoundQuery_SupplementaryMagic(benchmark::State& state) {
  RunBoundQuery(state, "@supplementary_magic.");
}
// Context factoring (paper §4.1): right-linear TC drops from the
// quadratic adorned-answer relation to a linear context relation.
void BM_BoundQuery_ContextFactoring(benchmark::State& state) {
  RunBoundQuery(state, "@factoring.");
}
BENCHMARK(BM_BoundQuery_NoRewriting)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_BoundQuery_MagicTemplates)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_BoundQuery_SupplementaryMagic)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_BoundQuery_ContextFactoring)->Arg(16)->Arg(32)->Arg(64);

// All-free query: bindings ignored; magic degenerates to full fixpoint
// (paper §4.1: "by specifying that all arguments are free, bindings in
// the query are ignored"). All strategies converge.
void RunFreeQuery(benchmark::State& state, const char* rewrite) {
  int len = static_cast<int>(state.range(0));
  Database db;
  bench::MaybeProfile(&db);
  std::string mod = std::string(R"(
    module anc.
    export anc(ff).
  )") + rewrite + R"(
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )";
  if (!db.Consult(mod).ok()) return;
  if (!db.Consult(bench::ChainFacts("par", len)).ok()) return;
  for (auto _ : state) {
    auto res = db.EvalQuery("anc(X, Y)");
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
  }
  state.counters["inserts"] =
      static_cast<double>(db.modules()->last_stats().inserts);
  bench::MaybeDumpProfile(&db, std::string("FreeQuery ") + rewrite + "/" +
                                   std::to_string(len));
}

void BM_FreeQuery_NoRewriting(benchmark::State& state) {
  RunFreeQuery(state, "@no_rewriting.");
}
void BM_FreeQuery_SupplementaryMagic(benchmark::State& state) {
  RunFreeQuery(state, "@supplementary_magic.");
}
BENCHMARK(BM_FreeQuery_NoRewriting)->Arg(32);
BENCHMARK(BM_FreeQuery_SupplementaryMagic)->Arg(32);

}  // namespace
}  // namespace coral

int main(int argc, char** argv) {
  coral::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
