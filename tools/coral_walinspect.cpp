// coral_walinspect: offline dump of a CORAL write-ahead log.
//
//   coral_walinspect [--strict] file.wal ...
//
// Prints, for each log: the on-disk format (v1 CRC-framed or the legacy
// struct-dump format), the record table of the well-formed prefix
// (offset, size, type, transaction, page), why parsing stopped if the
// tail is torn or corrupt, and a per-transaction resolution summary
// (committed / aborted / unresolved — unresolved transactions are the
// ones Recover would undo). Purely read-only: never replays or truncates
// the log, and works while a fault harness has persistence frozen.
//
// Exits 0 when every log parses cleanly end to end; with --strict, a
// torn or corrupt tail exits 1. An unreadable file or bad usage exits 2.

#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <coral/coral.h>

namespace {

const char* TypeName(uint32_t type) {
  switch (type) {
    case 1: return "begin";
    case 2: return "image";
    case 3: return "commit";
    case 4: return "abort";
    default: return "?";
  }
}

// What Recover would decide about each transaction in the log.
struct TxnSummary {
  uint64_t images = 0;
  bool resolved = false;  // has a commit or abort record
};

int InspectOne(const std::string& path, bool strict) {
  coral::StatusOr<coral::WalInspection> ins_or =
      coral::WriteAheadLog::Inspect(path);
  if (!ins_or.ok()) {
    std::fprintf(stderr, "coral_walinspect: %s\n",
                 ins_or.status().ToString().c_str());
    return 2;
  }
  const coral::WalInspection& ins = *ins_or;

  std::printf("=== %s ===\n", path.c_str());
  std::printf("format: %s\n", ins.old_format
                                  ? "legacy (pre-CRC struct dump)"
                                  : "v1 (CRC-framed)");
  std::printf("file bytes: %" PRIu64 ", well-formed prefix: %" PRIu64 "\n",
              ins.file_bytes, ins.valid_bytes);
  if (ins.tail_error.empty()) {
    std::printf("tail: clean\n");
  } else {
    std::printf("tail: %s (%" PRIu64 " byte(s) would be truncated)\n",
                ins.tail_error.c_str(), ins.file_bytes - ins.valid_bytes);
  }

  std::printf("%10s %8s %-8s %8s %8s\n", "offset", "size", "type", "txn",
              "page");
  std::map<coral::TxnId, TxnSummary> txns;
  for (const coral::WalRecordInfo& rec : ins.records) {
    if (rec.type == 2) {
      std::printf("%10" PRIu64 " %8" PRIu64 " %-8s %8" PRIu64 " %8u\n",
                  rec.offset, rec.size, TypeName(rec.type), rec.txn,
                  rec.page);
    } else {
      std::printf("%10" PRIu64 " %8" PRIu64 " %-8s %8" PRIu64 " %8s\n",
                  rec.offset, rec.size, TypeName(rec.type), rec.txn, "-");
    }
    TxnSummary& t = txns[rec.txn];
    if (rec.type == 2) ++t.images;
    if (rec.type == 3 || rec.type == 4) t.resolved = true;
  }

  uint64_t resolved = 0, unresolved = 0;
  for (const auto& [txn, t] : txns) {
    if (t.resolved) {
      ++resolved;
    } else {
      ++unresolved;
      std::printf("txn %" PRIu64 ": UNRESOLVED, %" PRIu64
                  " page image(s) would be undone by Recover\n",
                  txn, t.images);
    }
  }
  std::printf("txns: %zu total, %" PRIu64 " resolved, %" PRIu64
              " unresolved\n\n",
              txns.size(), resolved, unresolved);

  if (strict && !ins.tail_error.empty()) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: coral_walinspect [--strict] file.wal ...\n");
      return 0;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: coral_walinspect [--strict] file.wal ...\n");
    return 2;
  }
  int rc = 0;
  for (const std::string& f : files) {
    int one = InspectOne(f, strict);
    if (one > rc) rc = one;
  }
  return rc;
}
