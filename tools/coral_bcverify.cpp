// coral_bcverify: static bytecode verifier driver (docs/VM.md
// "Verification").
//
//   coral_bcverify [--json] [--no-auto-optimize] file ...
//
// Two input kinds, decided per file by extension:
//
//   *.crl   — consulted as CORAL source; every export form of every
//             module is compiled exactly as the engine would compile it
//             and run through the whole-plan auditor (VerifyProgram +
//             AuditModule: register dataflow, operand bounds, shape,
//             plan consistency, probe-vs-index, type lattice).
//   other   — treated as serialized bytecode: the file is split into
//             "coralbc <version>" chunks, each Deserialize'd (which
//             itself bounds-checks and verifies) and re-verified.
//
// Output is one verdict per program; with --json, one JSON object per
// line:
//   {"file":...,"module":...,"form":...,"scc":N,"kind":"version"|"once",
//    "index":N,"rule":N,"head":"p/2","status":"verified"|"rejected",
//    "findings":[{"severity":...,"code":"CRL3xx","message":...},...]}
// Interpreted (never-compiled) rule versions do not appear; forms that
// fail to compile at all emit a {"status":"error"} object.
//
// Exit code contract (as coral_lint): 0 all programs verified with no
// findings, 1 warnings only, 2 any rejected program, unreadable file,
// or bad usage.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <coral/coral.h>

#include "src/vm/bytecode.h"
#include "src/vm/verifier.h"

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Verdict {
  std::string file;
  std::string module;   // empty for raw bytecode files
  std::string form;     // "p/2(bf)" or empty
  bool from_module = false;
  uint32_t scc = 0;
  bool once = false;
  uint32_t index = 0;
  uint32_t rule = 0;
  std::string head;
  std::string status;   // "verified" | "rejected" | "error"
  std::vector<coral::vm::VerifyFinding> findings;
  std::string error;    // status == "error"
};

std::string RenderJson(const Verdict& v) {
  std::ostringstream os;
  os << "{\"file\":\"" << JsonEscape(v.file) << "\"";
  if (!v.module.empty()) {
    os << ",\"module\":\"" << JsonEscape(v.module) << "\"";
  }
  if (!v.form.empty()) os << ",\"form\":\"" << JsonEscape(v.form) << "\"";
  if (v.status == "error" || v.status == "interpreted") {
    os << ",\"status\":\"" << v.status << "\",\"message\":\""
       << JsonEscape(v.error) << "\"}";
    return os.str();
  }
  if (v.from_module) {
    os << ",\"scc\":" << v.scc << ",\"kind\":\""
       << (v.once ? "once" : "version") << "\",\"index\":" << v.index;
  }
  os << ",\"rule\":" << v.rule << ",\"head\":\"" << JsonEscape(v.head)
     << "\",\"status\":\"" << v.status << "\",\"findings\":[";
  for (size_t i = 0; i < v.findings.size(); ++i) {
    const coral::vm::VerifyFinding& f = v.findings[i];
    if (i > 0) os << ",";
    os << "{\"severity\":\"" << coral::vm::VerifySeverityName(f.severity)
       << "\",\"code\":\"" << f.code << "\",\"message\":\""
       << JsonEscape(f.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string RenderText(const Verdict& v) {
  std::ostringstream os;
  os << v.file << ": ";
  if (!v.module.empty()) os << "module " << v.module << " ";
  if (!v.form.empty()) os << "form " << v.form << " ";
  if (v.status == "error" || v.status == "interpreted") {
    os << v.status << ": " << v.error << "\n";
    return os.str();
  }
  if (v.from_module) {
    os << "scc " << v.scc << " " << (v.once ? "once" : "version") << " "
       << v.index << " ";
  }
  os << "rule " << v.rule << " head " << v.head << ": " << v.status << "\n";
  for (const coral::vm::VerifyFinding& f : v.findings) {
    os << "  " << f.ToString() << "\n";
  }
  return os.str();
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// A .crl file: consult into a fresh database (so @make_index and base
/// facts are in place, matching the engine's compile environment) and
/// audit every export form.
void VerifySourceFile(const std::string& file, const std::string& text,
                      bool auto_optimize, std::vector<Verdict>* out) {
  coral::Database db;
  db.set_auto_optimize(auto_optimize);
  auto consulted = db.Consult(text);
  if (!consulted.ok()) {
    Verdict v;
    v.file = file;
    v.status = "error";
    v.error = consulted.status().message();
    out->push_back(std::move(v));
    return;
  }
  for (coral::ModuleManager::FormBytecodeAudit& fa :
       db.modules()->AuditAllBytecode()) {
    std::string form = fa.pred;
    if (!fa.adornment.empty()) form += "(" + fa.adornment + ")";
    if (!fa.error.empty() || !fa.fallback_reason.empty()) {
      Verdict v;
      v.file = file;
      v.module = fa.module;
      v.form = form;
      // A whole-form interpreter fallback with a stated reason is a
      // legitimate outcome, not a verification failure.
      v.status = fa.error.empty() ? "interpreted" : "error";
      v.error = fa.error.empty() ? fa.fallback_reason : fa.error;
      out->push_back(std::move(v));
      continue;
    }
    for (coral::vm::ProgramVerdict& pv : fa.audit.verdicts) {
      Verdict v;
      v.file = file;
      v.module = fa.module;
      v.form = form;
      v.from_module = true;
      v.scc = pv.scc;
      v.once = pv.once;
      v.index = pv.index;
      v.rule = pv.rule_index;
      v.head = pv.head;
      v.status = pv.report.ok() ? "verified" : "rejected";
      v.findings = std::move(pv.report.findings);
      out->push_back(std::move(v));
    }
  }
}

/// A raw bytecode file: split on "coralbc" header lines and verify each
/// chunk independently.
void VerifyBytecodeFile(const std::string& file, const std::string& text,
                        std::vector<Verdict>* out) {
  coral::Database db;  // supplies the term factory for constant re-parse
  std::vector<std::string> chunks;
  std::istringstream lines(text);
  std::string chunk;
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("coralbc", 0) == 0 && !chunk.empty()) {
      chunks.push_back(chunk);
      chunk.clear();
    }
    chunk += line;
    chunk += "\n";
  }
  if (!chunk.empty()) chunks.push_back(chunk);
  if (chunks.empty()) {
    Verdict v;
    v.file = file;
    v.status = "error";
    v.error = "no bytecode programs found (missing 'coralbc' header?)";
    out->push_back(std::move(v));
    return;
  }
  for (const std::string& c : chunks) {
    Verdict v;
    v.file = file;
    auto prog = coral::vm::Deserialize(c, db.factory());
    if (!prog.ok()) {
      v.status = "error";
      v.error = prog.status().message();
      out->push_back(std::move(v));
      continue;
    }
    v.rule = prog->rule_index;
    v.head = prog->head_pred.ToString();
    coral::vm::VerifyReport report = coral::vm::VerifyProgram(*prog);
    v.status = report.ok() ? "verified" : "rejected";
    v.findings = std::move(report.findings);
    out->push_back(std::move(v));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool auto_optimize = true;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--no-auto-optimize") {
      auto_optimize = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: coral_bcverify [--json] [--no-auto-optimize]"
                   " file.crl|file.bc ...\n";
      return 0;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    std::cerr << "usage: coral_bcverify [--json] [--no-auto-optimize]"
                 " file.crl|file.bc ...\n";
    return 2;
  }

  std::vector<Verdict> verdicts;
  bool io_error = false;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << file << ": error: cannot open file\n";
      io_error = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (EndsWith(file, ".crl")) {
      VerifySourceFile(file, buf.str(), auto_optimize, &verdicts);
    } else {
      VerifyBytecodeFile(file, buf.str(), &verdicts);
    }
  }

  size_t rejected = 0;
  size_t verified = 0;
  size_t interpreted = 0;
  size_t warnings = 0;
  for (const Verdict& v : verdicts) {
    if (v.status == "rejected" || v.status == "error") ++rejected;
    if (v.status == "verified") ++verified;
    if (v.status == "interpreted") ++interpreted;
    for (const coral::vm::VerifyFinding& f : v.findings) {
      if (f.severity == coral::vm::VerifySeverity::kWarning) ++warnings;
    }
    std::cout << (json ? RenderJson(v) + "\n" : RenderText(v));
  }
  if (!json) {
    std::cout << verdicts.size() << " program(s): " << verified
              << " verified, " << interpreted << " interpreted, "
              << rejected << " rejected/error, " << warnings
              << " warning(s)\n";
  }
  if (io_error || rejected > 0) return 2;
  return warnings > 0 ? 1 : 0;
}
