// coral_serve: the CORAL query server (docs/SERVER.md).
//
//   coral_serve [--port=N] [--host=ADDR] [--max-inflight=N]
//               [--max-queue=N] [--deadline-ms=N] [--threads=N]
//               [--consult=FILE.crl ...]
//
// Boots a Database, consults each --consult file into it, then serves
// the JSONL/HTTP wire protocol until SIGINT/SIGTERM. The bound port is
// printed on stdout as "listening on PORT" (useful with --port=0 for
// tests). Admission knobs:
//
//   --max-inflight  worker threads (concurrent queries), default 4
//   --max-queue     waiting requests before shedding, default 64
//   --deadline-ms   default per-query deadline for new sessions
//
// Exits nonzero when a consult file fails or the port cannot be bound.

#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <coral/coral.h>
#include <coral/server.h>

namespace {
coral::server::Server* g_server = nullptr;
void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}
}  // namespace

int main(int argc, char** argv) {
  coral::server::ServerOptions opts;
  std::vector<std::string> consults;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      opts.port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--host=", 0) == 0) {
      opts.host = arg.substr(7);
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      opts.max_inflight = static_cast<size_t>(std::atoi(arg.c_str() + 15));
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      opts.max_queue = static_cast<size_t>(std::atoi(arg.c_str() + 12));
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      opts.default_deadline_ms = std::atoll(arg.c_str() + 14);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--consult=", 0) == 0) {
      consults.push_back(arg.substr(10));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: coral_serve [--port=N] [--host=ADDR]"
                   " [--max-inflight=N] [--max-queue=N] [--deadline-ms=N]"
                   " [--threads=N] [--consult=FILE.crl ...]\n";
      return 0;
    } else {
      std::cerr << "coral_serve: unknown flag " << arg << "\n";
      return 2;
    }
  }

  coral::Database db;
  if (threads > 0) db.set_num_threads(threads);
  for (const std::string& file : consults) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "coral_serve: cannot open " << file << "\n";
      return 2;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto result = db.Consult(text);
    if (!result.ok()) {
      std::cerr << "coral_serve: " << file << ": "
                << result.status().ToString() << "\n";
      return 2;
    }
  }

  coral::server::Server server(&db, opts);
  coral::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "coral_serve: " << started.ToString() << "\n";
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::cout << "listening on " << server.port() << std::endl;
  server.Wait();
  std::cout << "shutdown: " << server.metrics()->ToJson() << std::endl;
  return 0;
}
