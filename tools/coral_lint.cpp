// coral_lint: standalone checker for CORAL programs.
//
//   coral_lint [--strict] [--json] file.crl ...
//
// Parses each file and runs the static semantic analyzer (rule safety,
// builtin binding modes, arity consistency, export validity, dead code,
// annotation sanity, stratification, abstract-interpretation findings)
// without loading anything into a database. Diagnostics print one per
// line as
//   <file>:<line>:<col>: <severity>: <message> [CRLxxx]
// or, with --json, as one JSON object per line (see
// coral::Diagnostic::ToJson). Output order is deterministic: sorted by
// (line, col, code, pred), duplicates collapsed.
//
// Exit code contract: 0 clean, 1 warnings only, 2 errors (including
// parse failures, unreadable files and bad usage). With --strict,
// warnings are errors and exit 2.

#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/analysis/analyzer.h"
#include <coral/coral.h>
#include "src/lang/parser.h"
#include "src/rewrite/rewriter.h"
#include "src/vm/compiler.h"
#include "src/vm/verifier.h"

namespace {

/// "<file>:<line>:<col>: severity: ..." — the common compiler-tool shape,
/// so editors and CI annotate the right source line.
std::string Render(const std::string& file, const coral::Diagnostic& d) {
  std::ostringstream oss;
  oss << file;
  if (d.loc.valid()) oss << ":" << d.loc.line << ":" << d.loc.col;
  oss << ": " << coral::DiagSeverityName(d.severity) << ": ";
  if (!d.module_name.empty()) oss << "module '" << d.module_name << "': ";
  oss << d.message;
  if (d.code != nullptr && d.code[0] != '\0') oss << " [" << d.code << "]";
  return oss.str();
}

/// Bytecode-verifier findings (CRL3xx, src/vm/verifier.h) as lint rows:
/// compiles every export form of every materialized module the same way
/// the engine would and audits the result. A program the verifier
/// rejects runs interpreted (correct, just slower), so CRL301 is a
/// warning; CRL303 (always-fail unify) is a warning; CRL302 (probe
/// without a backing index) is a note — the optimizer's plan is advisory
/// at lint time. CRL304 dead-register notes are compiler-routine and not
/// surfaced here.
void AppendBytecodeFindings(
    const coral::Program& prog, coral::TermFactory* factory,
    const std::function<bool(const std::string&, uint32_t)>& is_builtin,
    coral::DiagnosticList* out) {
  using coral::PredRef;
  // Cross-module visibility within this file: exported or local
  // predicates of *any* module here are module calls, not base scans.
  std::unordered_set<PredRef, coral::PredRefHash> module_preds;
  for (const coral::ModuleDecl& m : prog.modules) {
    for (const coral::QueryFormDecl& f : m.exports) {
      module_preds.insert(
          PredRef{f.pred, static_cast<uint32_t>(f.adornment.size())});
    }
    for (const coral::Rule& r : m.rules) {
      module_preds.insert(r.head.pred_ref());
    }
  }
  for (const coral::ModuleDecl& m : prog.modules) {
    if (m.eval_mode == coral::EvalMode::kPipelined) continue;
    std::unordered_set<PredRef, coral::PredRefHash> own;
    for (const coral::Rule& r : m.rules) own.insert(r.head.pred_ref());
    for (const coral::QueryFormDecl& form : m.exports) {
      coral::RewriteOptions ropts;
      ropts.is_builtin = is_builtin;
      auto rewritten = RewriteModule(m, form, factory, ropts);
      if (!rewritten.ok()) continue;  // reported by the analyzer already
      coral::vm::CompileEnv cenv;
      cenv.is_builtin = is_builtin;
      cenv.is_module_pred = [&](const PredRef& p) {
        return module_preds.count(p) > 0 && own.count(p) == 0;
      };
      coral::vm::ModuleProgram mp =
          coral::vm::CompileModule(*rewritten, m, cenv);
      if (mp.compiled == 0 && mp.verifier_rejected == 0) continue;
      coral::absint::AbsIntOptions aopts;
      aopts.is_builtin = is_builtin;
      if (rewritten->answer_pred.sym != nullptr &&
          !rewritten->answer_adornment.empty()) {
        std::vector<bool> bound;
        for (char c : rewritten->answer_adornment) {
          bound.push_back(c == 'b');
        }
        aopts.seeds[rewritten->answer_pred] = std::move(bound);
      }
      if (rewritten->uses_magic && rewritten->seed_pred.sym != nullptr) {
        aopts.assumed_facts.insert(rewritten->seed_pred);
      }
      for (const auto& [magic, done] : rewritten->done_of) {
        aopts.assumed_facts.insert(done);
      }
      coral::absint::AnalysisResult facts = coral::absint::AnalyzeRules(
          rewritten->rules, rewritten->graph, aopts);
      coral::vm::AuditOptions vopts;
      vopts.rewritten = &*rewritten;
      vopts.decl = &m;
      vopts.facts = &facts;
      vopts.index_plan_authoritative = true;
      coral::vm::ModuleAudit audit = coral::vm::AuditModule(mp, vopts);
      for (const coral::vm::ProgramVerdict& v : audit.verdicts) {
        coral::SourceLoc loc;
        if (v.rule_index < rewritten->rules.size()) {
          loc = rewritten->rules[v.rule_index].loc;
        }
        auto add = [&](const char* code, const std::string& msg,
                       coral::DiagSeverity sev) {
          coral::Diagnostic d;
          d.severity = sev;
          d.code = code;
          d.message = msg;
          d.module_name = m.name;
          d.pred = v.head;
          d.loc = loc;
          out->Add(std::move(d));
        };
        if (const coral::vm::VerifyFinding* err = v.report.FirstError();
            err != nullptr) {
          add(coral::vm::vdiag::kUnverifiable,
              "rule version compiled to unverifiable bytecode, runs "
              "interpreted: " + err->message,
              coral::DiagSeverity::kWarning);
          continue;
        }
        for (const coral::vm::VerifyFinding& f : v.report.findings) {
          std::string_view code = f.code;
          if (code == coral::vm::vdiag::kProbeNoIndex) {
            add(f.code, f.message, coral::DiagSeverity::kNote);
          } else if (code == coral::vm::vdiag::kAlwaysFailUnify) {
            add(f.code, f.message, coral::DiagSeverity::kWarning);
          }
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict" || arg == "-Werror") {
      strict = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: coral_lint [--strict] [--json] file.crl ...\n";
      return 0;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    std::cerr << "usage: coral_lint [--strict] [--json] file.crl ...\n";
    return 2;
  }

  // A Database supplies the term factory and the builtin registry (with
  // the update predicates its constructor registers); nothing is loaded.
  coral::Database db;
  coral::AnalyzerOptions opts;
  opts.strict = strict;
  const coral::BuiltinRegistry* builtins = db.builtins();
  opts.is_builtin = [builtins](const std::string& name, uint32_t arity) {
    return builtins->Find(name, arity) != nullptr;
  };

  size_t errors = 0;
  size_t warnings = 0;
  for (const std::string& file : files) {
    coral::DiagnosticList diags;
    std::ifstream in(file);
    std::string text;
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();  // Parser keeps a view of it
    }
    if (!in) {
      coral::Diagnostic d;
      d.severity = coral::DiagSeverity::kError;
      d.message = "cannot open file";
      diags.Add(std::move(d));
    } else {
      coral::Parser parser(text, db.factory());
      auto prog = parser.ParseProgram();
      if (!prog.ok()) {
        coral::Diagnostic d;
        d.severity = coral::DiagSeverity::kError;
        d.message = std::string(prog.status().message());
        diags.Add(std::move(d));
      } else {
        diags = AnalyzeProgram(*prog, opts);
        AppendBytecodeFindings(*prog, db.factory(), opts.is_builtin,
                               &diags);
      }
    }
    diags.Normalize();
    if (json) {
      std::cout << diags.ToJsonLines(file);
    } else {
      for (const coral::Diagnostic& d : diags.items()) {
        std::cout << Render(file, d) << "\n";
      }
    }
    errors += diags.error_count();
    warnings += diags.warning_count();
  }
  if (!json && errors + warnings > 0) {
    std::cout << files.size() << " file(s): " << errors << " error(s), "
              << warnings << " warning(s)" << (strict ? " [--strict]" : "")
              << "\n";
  }
  if (errors > 0 || (strict && warnings > 0)) return 2;
  return warnings > 0 ? 1 : 0;
}
