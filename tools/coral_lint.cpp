// coral_lint: standalone checker for CORAL programs.
//
//   coral_lint [--strict] [--json] file.crl ...
//
// Parses each file and runs the static semantic analyzer (rule safety,
// builtin binding modes, arity consistency, export validity, dead code,
// annotation sanity, stratification, abstract-interpretation findings)
// without loading anything into a database. Diagnostics print one per
// line as
//   <file>:<line>:<col>: <severity>: <message> [CRLxxx]
// or, with --json, as one JSON object per line (see
// coral::Diagnostic::ToJson). Output order is deterministic: sorted by
// (line, col, code, pred), duplicates collapsed.
//
// Exit code contract: 0 clean, 1 warnings only, 2 errors (including
// parse failures, unreadable files and bad usage). With --strict,
// warnings are errors and exit 2.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include <coral/coral.h>
#include "src/lang/parser.h"

namespace {

/// "<file>:<line>:<col>: severity: ..." — the common compiler-tool shape,
/// so editors and CI annotate the right source line.
std::string Render(const std::string& file, const coral::Diagnostic& d) {
  std::ostringstream oss;
  oss << file;
  if (d.loc.valid()) oss << ":" << d.loc.line << ":" << d.loc.col;
  oss << ": " << coral::DiagSeverityName(d.severity) << ": ";
  if (!d.module_name.empty()) oss << "module '" << d.module_name << "': ";
  oss << d.message;
  if (d.code != nullptr && d.code[0] != '\0') oss << " [" << d.code << "]";
  return oss.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict" || arg == "-Werror") {
      strict = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: coral_lint [--strict] [--json] file.crl ...\n";
      return 0;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    std::cerr << "usage: coral_lint [--strict] [--json] file.crl ...\n";
    return 2;
  }

  // A Database supplies the term factory and the builtin registry (with
  // the update predicates its constructor registers); nothing is loaded.
  coral::Database db;
  coral::AnalyzerOptions opts;
  opts.strict = strict;
  const coral::BuiltinRegistry* builtins = db.builtins();
  opts.is_builtin = [builtins](const std::string& name, uint32_t arity) {
    return builtins->Find(name, arity) != nullptr;
  };

  size_t errors = 0;
  size_t warnings = 0;
  for (const std::string& file : files) {
    coral::DiagnosticList diags;
    std::ifstream in(file);
    std::string text;
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();  // Parser keeps a view of it
    }
    if (!in) {
      coral::Diagnostic d;
      d.severity = coral::DiagSeverity::kError;
      d.message = "cannot open file";
      diags.Add(std::move(d));
    } else {
      coral::Parser parser(text, db.factory());
      auto prog = parser.ParseProgram();
      if (!prog.ok()) {
        coral::Diagnostic d;
        d.severity = coral::DiagSeverity::kError;
        d.message = std::string(prog.status().message());
        diags.Add(std::move(d));
      } else {
        diags = AnalyzeProgram(*prog, opts);
      }
    }
    diags.Normalize();
    if (json) {
      std::cout << diags.ToJsonLines(file);
    } else {
      for (const coral::Diagnostic& d : diags.items()) {
        std::cout << Render(file, d) << "\n";
      }
    }
    errors += diags.error_count();
    warnings += diags.warning_count();
  }
  if (!json && errors + warnings > 0) {
    std::cout << files.size() << " file(s): " << errors << " error(s), "
              << warnings << " warning(s)" << (strict ? " [--strict]" : "")
              << "\n";
  }
  if (errors > 0 || (strict && warnings > 0)) return 2;
  return warnings > 0 ? 1 : 0;
}
