// coral_lint: standalone checker for CORAL programs.
//
//   coral_lint [--strict] file.crl ...
//
// Parses each file and runs the static semantic analyzer (rule safety,
// builtin binding modes, arity consistency, export validity, dead code,
// annotation sanity, stratification) without loading anything into a
// database. Diagnostics print one per line as
//   <file>:<line>:<col>: <severity>: <message> [CRLxxx]
// Exits nonzero when any file fails to parse or has errors; with
// --strict, warnings fail the run too.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include <coral/coral.h>
#include "src/lang/parser.h"

namespace {

/// "<file>:<line>:<col>: severity: ..." — the common compiler-tool shape,
/// so editors and CI annotate the right source line.
std::string Render(const std::string& file, const coral::Diagnostic& d) {
  std::ostringstream oss;
  oss << file;
  if (d.loc.valid()) oss << ":" << d.loc.line << ":" << d.loc.col;
  oss << ": " << coral::DiagSeverityName(d.severity) << ": ";
  if (!d.module_name.empty()) oss << "module '" << d.module_name << "': ";
  oss << d.message;
  if (d.code != nullptr && d.code[0] != '\0') oss << " [" << d.code << "]";
  return oss.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict" || arg == "-Werror") {
      strict = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: coral_lint [--strict] file.crl ...\n";
      return 0;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    std::cerr << "usage: coral_lint [--strict] file.crl ...\n";
    return 2;
  }

  // A Database supplies the term factory and the builtin registry (with
  // the update predicates its constructor registers); nothing is loaded.
  coral::Database db;
  coral::AnalyzerOptions opts;
  opts.strict = strict;
  const coral::BuiltinRegistry* builtins = db.builtins();
  opts.is_builtin = [builtins](const std::string& name, uint32_t arity) {
    return builtins->Find(name, arity) != nullptr;
  };

  int failed = 0;
  size_t errors = 0;
  size_t warnings = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << file << ": error: cannot open file\n";
      failed = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();  // Parser keeps a view of it

    coral::Parser parser(text, db.factory());
    auto prog = parser.ParseProgram();
    if (!prog.ok()) {
      std::cerr << file << ": error: " << prog.status().message() << "\n";
      failed = 1;
      ++errors;
      continue;
    }
    coral::DiagnosticList diags = AnalyzeProgram(*prog, opts);
    for (const coral::Diagnostic& d : diags.items()) {
      std::cout << Render(file, d) << "\n";
    }
    errors += diags.error_count();
    warnings += diags.warning_count();
    if (diags.ShouldReject(strict)) failed = 1;
  }
  if (errors + warnings > 0) {
    std::cout << files.size() << " file(s): " << errors << " error(s), "
              << warnings << " warning(s)" << (strict ? " [--strict]" : "")
              << "\n";
  }
  return failed;
}
