#!/usr/bin/env sh
# Lock-discipline source lint.
#
# Enforces the concurrency conventions documented in docs/CONCURRENCY.md:
#
#   1. Raw standard-library synchronization primitives are banned outside
#      src/util/sync.{h,cc}. Everything else must go through the annotated
#      wrappers (Mutex, SharedMutex, CondVar, MutexLock, ...) so Clang
#      Thread Safety Analysis sees every lock site.
#
#   2. Every CORAL_TS_UNSAFE escape hatch must carry a non-empty reason
#      string, and every file using one must be enumerated in
#      docs/CONCURRENCY.md so the full list of analysis escapes stays
#      reviewable in one place.
#
# Run from the repository root:  sh tools/lock_lint.sh
# Exits non-zero (with file:line diagnostics) on any violation.

set -u

cd "$(dirname "$0")/.." || exit 2

fail=0

# ---- 1. raw std primitives --------------------------------------------------

# Word-boundary match on the std:: spellings; sync.h/sync.cc are the only
# files allowed to name them (they wrap them).
raw_pattern='std::(mutex|recursive_mutex|shared_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable|condition_variable_any)\b'

raw_hits=$(grep -rnE "$raw_pattern" src tools include \
             --include='*.h' --include='*.cc' --include='*.cpp' \
             | grep -v -e '^src/util/sync\.h:' -e '^src/util/sync\.cc:')
if [ -n "$raw_hits" ]; then
  echo "lock_lint: raw std synchronization primitives outside src/util/sync.h:" >&2
  echo "$raw_hits" >&2
  echo "lock_lint: use the annotated wrappers from src/util/sync.h instead." >&2
  fail=1
fi

# ---- 2. CORAL_TS_UNSAFE escapes --------------------------------------------

# Every use (excluding the #define in sync.h) must pass a non-empty
# string literal reason: CORAL_TS_UNSAFE("why this is safe").
unsafe_uses=$(grep -rn 'CORAL_TS_UNSAFE' src tools include \
                --include='*.h' --include='*.cc' --include='*.cpp' \
                | grep -v '# *define *CORAL_TS_UNSAFE')

if [ -n "$unsafe_uses" ]; then
  bad_reason=$(echo "$unsafe_uses" | grep -vE 'CORAL_TS_UNSAFE\("[^"]+"')
  if [ -n "$bad_reason" ]; then
    echo "lock_lint: CORAL_TS_UNSAFE without a non-empty reason string:" >&2
    echo "$bad_reason" >&2
    fail=1
  fi

  # Each escaping file must be named in docs/CONCURRENCY.md.
  for f in $(echo "$unsafe_uses" | cut -d: -f1 | sort -u); do
    if ! grep -q "$f" docs/CONCURRENCY.md; then
      echo "lock_lint: $f uses CORAL_TS_UNSAFE but is not enumerated in docs/CONCURRENCY.md" >&2
      fail=1
    fi
  done
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "lock_lint: OK"
