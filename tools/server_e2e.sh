#!/usr/bin/env sh
# End-to-end exercise of coral_serve + coral_client (docs/SERVER.md);
# the CI server-e2e job runs this against a fresh build.
#
#   sh tools/server_e2e.sh BUILD_DIR
#
# Phases:
#   1. boot coral_serve on an ephemeral port with a consulted program;
#   2. 1000 mixed queries at concurrency 8 — all must succeed with the
#      same (snapshot-consistent) answer count;
#   3. a deliberately slow cross-product query under a small session
#      deadline — must time out, not hang;
#   4. a burst against --max-inflight=1 --max-queue=1 — must shed;
#   5. clean shutdown (SIGTERM) with nonzero timeout and shed counters.
#
# Exits nonzero on the first failed expectation.

set -u

BUILD_DIR=${1:-build}
SERVE="$BUILD_DIR/tools/coral_serve"
CLIENT="$BUILD_DIR/tools/coral_client"
WORK=$(mktemp -d)
trap 'kill $SERVER_PID 2>/dev/null; rm -rf "$WORK"' EXIT

fail() {
  echo "server_e2e: FAIL: $1" >&2
  exit 1
}

[ -x "$SERVE" ] || fail "$SERVE not built"
[ -x "$CLIENT" ] || fail "$CLIENT not built"

# A program with recursion (path closure over a chain) plus a fact base
# wide enough that a 4-way cross product is expensive.
cat > "$WORK/prog.crl" <<'EOF'
module paths.
export path(bf, ff).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
end_module.
EOF
i=1
while [ $i -le 60 ]; do
  echo "edge($i, $((i + 1)))." >> "$WORK/prog.crl"
  echo "wide($i)." >> "$WORK/prog.crl"
  i=$((i + 1))
done

# ---- phase 1: boot ---------------------------------------------------------

"$SERVE" --port=0 --max-inflight=8 --max-queue=64 \
  --consult="$WORK/prog.crl" > "$WORK/serve.out" 2>"$WORK/serve.err" &
SERVER_PID=$!

PORT=""
tries=0
while [ $tries -lt 50 ]; do
  PORT=$(sed -n 's/^listening on \([0-9]*\)$/\1/p' "$WORK/serve.out")
  [ -n "$PORT" ] && break
  kill -0 $SERVER_PID 2>/dev/null || fail "server died at boot: $(cat "$WORK/serve.err")"
  sleep 0.1
  tries=$((tries + 1))
done
[ -n "$PORT" ] || fail "server never reported its port"
echo "server_e2e: serving on port $PORT"

# ---- phase 2: concurrent mixed load ---------------------------------------

# path(1, X) over a 60-edge chain has exactly 60 answers; 1000 queries
# across 8 connections must all see exactly that (snapshot-consistent,
# no torn reads while other sessions run).
OUT=$("$CLIENT" --port="$PORT" --query='?- path(1, X).' \
        --count=1000 --concurrency=8 --expect-rows=60) \
  || fail "concurrent load failed: $OUT"
echo "server_e2e: load: $OUT"
case "$OUT" in
  *"ok=1000"*) ;;
  *) fail "expected ok=1000, got: $OUT" ;;
esac

# ---- phase 3: deadline -----------------------------------------------------

# A cyclic inequality chain over wide/1: unsatisfiable, not statically
# provable, and every filter needs two bound variables so the join
# reorderer cannot short-circuit — ~C(60,4) = 487k ascending 4-tuples
# must be enumerated, which blows a 30 ms budget.
OUT=$("$CLIENT" --port="$PORT" --deadline-ms=30 \
        --query='?- wide(A), wide(B), wide(C), wide(D), A < B, B < C, C < D, D < A.') \
  || fail "deadline run errored: $OUT"
echo "server_e2e: deadline: $OUT"
case "$OUT" in
  *"timeout=1"*) ;;
  *) fail "expected timeout=1, got: $OUT" ;;
esac

# ---- phase 4: shed ---------------------------------------------------------

# A second server with one worker and a one-slot queue: a concurrent
# burst of slow-ish queries must shed at least one request.
"$SERVE" --port=0 --max-inflight=1 --max-queue=1 \
  --consult="$WORK/prog.crl" > "$WORK/serve2.out" 2>/dev/null &
SERVER2_PID=$!
PORT2=""
tries=0
while [ $tries -lt 50 ]; do
  PORT2=$(sed -n 's/^listening on \([0-9]*\)$/\1/p' "$WORK/serve2.out")
  [ -n "$PORT2" ] && break
  sleep 0.1
  tries=$((tries + 1))
done
[ -n "$PORT2" ] || { kill $SERVER2_PID 2>/dev/null; fail "shed server never booted"; }

OUT=$("$CLIENT" --port="$PORT2" \
        --query='?- wide(A), wide(B), wide(C), A < B, B < C, C < A.' \
        --count=16 --concurrency=8 --stats) || true
echo "server_e2e: shed: $OUT"
case "$OUT" in
  *'"shed":0'*) kill $SERVER2_PID 2>/dev/null; fail "expected nonzero shed, got: $OUT" ;;
  *shed*) ;;
esac
kill -TERM $SERVER2_PID 2>/dev/null
wait $SERVER2_PID 2>/dev/null

# ---- phase 5: clean shutdown ----------------------------------------------

# Timeout counter on the main server must be nonzero (phase 3) and the
# shutdown line must appear after SIGTERM.
OUT=$("$CLIENT" --port="$PORT" --stats)
echo "server_e2e: stats: $OUT"
case "$OUT" in
  *'"timeouts":0'*) fail "expected nonzero timeouts in: $OUT" ;;
esac

kill -TERM $SERVER_PID
wait $SERVER_PID 2>/dev/null
STATUS=$?
grep -q "shutdown:" "$WORK/serve.out" || fail "no shutdown line; server did not exit cleanly"
[ "$STATUS" -eq 0 ] || fail "server exited with status $STATUS"

echo "server_e2e: OK"
