// coral_client: command-line client for coral_serve (docs/SERVER.md).
//
//   coral_client --port=N [--host=ADDR] [--consult-file=FILE.crl]
//                [--query='?- p(X).' ...] [--count=N] [--concurrency=N]
//                [--deadline-ms=N] [--stats] [--expect-rows=N]
//
// Speaks the JSONL framing: opens --concurrency connections (each its
// own server session), sends each --query --count times round-robin,
// and prints a summary line
//
//   ok=N error=N timeout=N shed=N rows=N
//
// --consult-file commits a program first (on a separate connection, so
// queries observe it). --deadline-ms sets the session deadline on every
// connection before querying. --stats fetches and prints the server
// metrics JSON afterwards. --expect-rows asserts that every successful
// query returned exactly N rows (exit 1 otherwise) — the server-e2e
// harness uses this for snapshot-consistency checks.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <coral/server.h>

namespace {

int Connect(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendLine(int fd, const std::string& line) {
  std::string framed = line + "\n";
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = send(fd, framed.data() + off, framed.size() - off,
                     MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool RecvLine(int fd, std::string* buf, std::string* line) {
  while (true) {
    size_t nl = buf->find('\n');
    if (nl != std::string::npos) {
      *line = buf->substr(0, nl);
      buf->erase(0, nl + 1);
      return true;
    }
    char chunk[8192];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf->append(chunk, static_cast<size_t>(n));
  }
}

struct Tally {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> error{0};
  std::atomic<uint64_t> timeout{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> rows{0};
  std::atomic<bool> row_mismatch{false};
};

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<std::string> queries;
  std::string consult_file;
  int count = 1;
  int concurrency = 1;
  long long deadline_ms = -1;
  long long expect_rows = -1;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg.rfind("--query=", 0) == 0) {
      queries.push_back(arg.substr(8));
    } else if (arg.rfind("--consult-file=", 0) == 0) {
      consult_file = arg.substr(15);
    } else if (arg.rfind("--count=", 0) == 0) {
      count = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--concurrency=", 0) == 0) {
      concurrency = std::atoi(arg.c_str() + 14);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::atoll(arg.c_str() + 14);
    } else if (arg.rfind("--expect-rows=", 0) == 0) {
      expect_rows = std::atoll(arg.c_str() + 14);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: coral_client --port=N [--host=ADDR]"
                   " [--consult-file=FILE] [--query='?- p(X).' ...]"
                   " [--count=N] [--concurrency=N] [--deadline-ms=N]"
                   " [--expect-rows=N] [--stats]\n";
      return 0;
    } else {
      std::cerr << "coral_client: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (port == 0) {
    std::cerr << "coral_client: --port is required\n";
    return 2;
  }

  if (!consult_file.empty()) {
    std::ifstream in(consult_file);
    if (!in) {
      std::cerr << "coral_client: cannot open " << consult_file << "\n";
      return 2;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    int fd = Connect(host, port);
    if (fd < 0) {
      std::cerr << "coral_client: cannot connect to " << host << ":" << port
                << "\n";
      return 1;
    }
    std::string request = coral::server::JsonWriter()
                              .Field("op", "consult")
                              .Field("program", text)
                              .Build();
    std::string buf, line;
    if (!SendLine(fd, request) || !RecvLine(fd, &buf, &line)) {
      std::cerr << "coral_client: consult send failed\n";
      close(fd);
      return 1;
    }
    close(fd);
    auto parsed = coral::server::ParseJson(line);
    if (!parsed.ok() || parsed.value().GetString("code") != "" ||
        parsed.value().Find("ok") == nullptr ||
        !parsed.value().Find("ok")->bool_value) {
      std::cerr << "coral_client: consult failed: " << line << "\n";
      return 1;
    }
    std::cout << "consulted " << consult_file << "\n";
  }

  Tally tally;
  if (!queries.empty()) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(concurrency));
    for (int w = 0; w < concurrency; ++w) {
      workers.emplace_back([&, w] {
        int fd = Connect(host, port);
        if (fd < 0) {
          tally.error.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::string buf, line;
        if (deadline_ms >= 0) {
          std::string req = coral::server::JsonWriter()
                                .Field("op", "deadline")
                                .Field("ms", static_cast<int64_t>(
                                                 deadline_ms))
                                .Build();
          if (!SendLine(fd, req) || !RecvLine(fd, &buf, &line)) {
            close(fd);
            tally.error.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
        // Worker w sends every (query, repetition) pair congruent to w
        // mod concurrency, so load spreads without coordination.
        long long idx = 0;
        for (int rep = 0; rep < count; ++rep) {
          for (const std::string& q : queries) {
            if (idx++ % concurrency != w) continue;
            std::string req = coral::server::JsonWriter()
                                  .Field("op", "query")
                                  .Field("q", q)
                                  .Build();
            if (!SendLine(fd, req) || !RecvLine(fd, &buf, &line)) {
              tally.error.fetch_add(1, std::memory_order_relaxed);
              close(fd);
              return;
            }
            auto parsed = coral::server::ParseJson(line);
            if (!parsed.ok()) {
              tally.error.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            const coral::server::JsonValue& resp = parsed.value();
            const coral::server::JsonValue* ok = resp.Find("ok");
            if (ok != nullptr && ok->bool_value) {
              tally.ok.fetch_add(1, std::memory_order_relaxed);
              int64_t n = resp.GetInt("count", 0);
              tally.rows.fetch_add(static_cast<uint64_t>(n),
                                   std::memory_order_relaxed);
              if (expect_rows >= 0 && n != expect_rows) {
                tally.row_mismatch.store(true, std::memory_order_relaxed);
              }
            } else {
              std::string code = resp.GetString("code");
              if (code == "DeadlineExceeded") {
                tally.timeout.fetch_add(1, std::memory_order_relaxed);
              } else if (code == "Unavailable") {
                tally.shed.fetch_add(1, std::memory_order_relaxed);
              } else {
                tally.error.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
        }
        close(fd);
      });
    }
    for (std::thread& t : workers) t.join();
  }

  if (stats) {
    int fd = Connect(host, port);
    if (fd >= 0) {
      std::string buf, line;
      if (SendLine(fd, "{\"op\":\"stats\"}") && RecvLine(fd, &buf, &line)) {
        std::cout << line << "\n";
      }
      close(fd);
    }
  }

  std::cout << "ok=" << tally.ok.load() << " error=" << tally.error.load()
            << " timeout=" << tally.timeout.load()
            << " shed=" << tally.shed.load() << " rows=" << tally.rows.load()
            << "\n";
  if (tally.row_mismatch.load()) {
    std::cerr << "coral_client: row count mismatch (--expect-rows="
              << expect_rows << ")\n";
    return 1;
  }
  return tally.error.load() == 0 ? 0 : 1;
}
