// coral_prof: evaluation profiler for CORAL programs.
//
//   coral_prof [--query='tc(X, Y)'] [--trace=FILE.jsonl]
//              [--threads=N] [--deadline-ms=N] [--max-inflight=N]
//              [--plan] [--no-auto-optimize] file.crl ...
//
// Consults each file with profiling enabled, executes the queries found
// in the files (plus any --query flags, which run after all files are
// loaded), and prints the per-module evaluation profile: rule application
// counts, join probes, solutions, duplicates, per-iteration delta sizes
// and wall times — the cost signals used to tune recursive programs
// (paper §8). With --trace, every evaluation event (module calls,
// iteration begin/end, rule firings, tuple inserts) is additionally
// written to FILE.jsonl, one JSON object per line, in a format
// round-trippable through coral::obs::TraceEvent::FromJson.
//
// With --plan, the report ends with the optimizer plan of every compiled
// query form: inferred modes (groundness/types/cardinality), the chosen
// literal order, and the argument indexes created (paper §4.2, §5.3).
// --no-auto-optimize turns automatic join reordering and index selection
// off, for comparing plans and profiles against the unoptimized baseline.
//
// With --bytecode, the report ends with the compiled join bytecode of
// every query form (the disassembly docs/VM.md describes) and the
// database-wide per-opcode VM execution counters. --no-vm turns the
// bytecode VM off (rule bodies interpret), for comparing profiles; the
// bytecode listing still prints, since compilation is unconditional.
//
// With --verify, the report ends with the bytecode verifier verdicts of
// every export form (docs/VM.md "Verification"): per-form verified /
// rejected / warning counts with the CRL3xx findings, plus the verifier
// counters — why a rule version runs interpreted.
//
// --deadline-ms bounds each --query evaluation (a query over budget
// fails with DeadlineExceeded — profile the ones that finish).
// --max-inflight=N runs the --query list through N concurrent sessions
// (the server's execution model) instead of sequentially; profiles
// aggregate across sessions.
//
// Exits nonzero when a file cannot be loaded or a query fails.

#include <atomic>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <coral/coral.h>

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> queries;
  std::string trace_path;
  int threads = 0;
  long long deadline_ms = 0;
  int max_inflight = 1;
  bool plan = false;
  bool bytecode = false;
  bool verify = false;
  bool auto_optimize = true;
  bool use_vm = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--query=", 0) == 0) {
      queries.push_back(arg.substr(8));
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::atoll(arg.c_str() + 14);
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      max_inflight = std::atoi(arg.c_str() + 15);
    } else if (arg == "--plan") {
      plan = true;
    } else if (arg == "--bytecode") {
      bytecode = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--no-auto-optimize") {
      auto_optimize = false;
    } else if (arg == "--no-vm") {
      use_vm = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: coral_prof [--query='p(X)'] [--trace=FILE.jsonl]"
                   " [--threads=N] [--deadline-ms=N] [--max-inflight=N]"
                   " [--plan] [--bytecode] [--verify]"
                   " [--no-auto-optimize] [--no-vm] file.crl ...\n";
      return 0;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    std::cerr << "usage: coral_prof [--query='p(X)'] [--trace=FILE.jsonl]"
                 " [--threads=N] [--deadline-ms=N] [--max-inflight=N]"
                 " [--plan] [--bytecode] [--verify]"
                 " [--no-auto-optimize] [--no-vm] file.crl ...\n";
    return 2;
  }

  coral::Database db;
  db.set_profiling(true);
  db.set_auto_optimize(auto_optimize);
  db.set_use_vm(use_vm);
  if (threads > 0) db.set_num_threads(threads);

  std::ofstream trace_out;
  std::unique_ptr<coral::obs::JsonlTraceSink> sink;
  if (!trace_path.empty()) {
    trace_out.open(trace_path);
    if (!trace_out) {
      std::cerr << "coral_prof: cannot open " << trace_path << "\n";
      return 2;
    }
    sink = std::make_unique<coral::obs::JsonlTraceSink>(&trace_out);
    db.set_trace_sink(sink.get());
  }

  int failed = 0;
  for (const std::string& file : files) {
    // Run executes the queries the file contains; declarations load as
    // with consult.
    std::ifstream in(file);
    if (!in) {
      std::cerr << file << ": error: cannot open file\n";
      failed = 1;
      continue;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto out = db.Run(text);
    if (!out.ok()) {
      std::cerr << file << ": error: " << out.status().ToString() << "\n";
      failed = 1;
      continue;
    }
    std::cout << *out;
  }
  if (max_inflight > 1 && queries.size() > 1) {
    // Server-style execution: N sessions over the shared database, each
    // with the deadline, draining the query list concurrently.
    std::vector<std::thread> sessions;
    coral::Mutex out_mu;
    std::atomic<size_t> next{0};
    std::atomic<int> query_failed{0};
    sessions.reserve(static_cast<size_t>(max_inflight));
    for (int w = 0; w < max_inflight; ++w) {
      sessions.emplace_back([&] {
        coral::Session session(&db, deadline_ms);
        while (true) {
          size_t i = next.fetch_add(1);
          if (i >= queries.size()) return;
          auto res = session.EvalQuery(queries[i]);
          coral::MutexLock lock(&out_mu);
          if (!res.ok()) {
            std::cerr << "query '" << queries[i]
                      << "': " << res.status().ToString() << "\n";
            query_failed.store(1);
          } else {
            std::cout << res->ToString();
          }
        }
      });
    }
    for (std::thread& t : sessions) t.join();
    if (query_failed.load() != 0) failed = 1;
  } else if (!queries.empty()) {
    coral::Session session(&db, deadline_ms);
    for (const std::string& q : queries) {
      auto res = session.EvalQuery(q);
      if (!res.ok()) {
        std::cerr << "query '" << q << "': " << res.status().ToString()
                  << "\n";
        failed = 1;
        continue;
      }
      std::cout << res->ToString();
    }
  }

  db.set_trace_sink(nullptr);
  std::cout << "\n" << db.ProfileReport();
  if (plan) {
    std::cout << "\n=== optimizer plans ===\n" << db.PlanReport();
  }
  if (bytecode) {
    // The bytecode listing rides in the plan report (one section per
    // compiled form); print it plus the per-opcode execution counters.
    if (!plan) {
      std::cout << "\n=== optimizer plans (with bytecode) ===\n"
                << db.PlanReport();
    }
    std::cout << "\n" << coral::obs::RenderVmCounters(*db.vm_counters());
  }
  if (verify) {
    // Per-form bytecode verifier verdicts: why each rule version runs
    // compiled or interpreted (docs/VM.md "Verification"), plus the
    // verifier counters.
    std::cout << "\n" << db.BytecodeVerifierReport();
    if (!bytecode) {
      std::cout << "\n" << coral::obs::RenderVmCounters(*db.vm_counters());
    }
  }
  if (sink != nullptr) {
    std::cout << "trace written to " << trace_path << "\n";
  }
  return failed;
}
