// Andersen-style (inclusion-based, field-insensitive) pointer analysis —
// the kind of "large amounts of data must be extensively analyzed"
// workload the paper's introduction motivates for deductive databases.
// pts and hpts are mutually recursive, so Predicate Semi-Naive (§4.2)
// is the natural strategy.
//
// Base facts model statements:
//   alloc(V, O)   V = new O
//   assign(D, S)  D = S
//   load(D, P)    D = *P
//   store(P, S)   *P = S

#include <iostream>
#include <string>

#include <coral/coral.h>

int main() {
  coral::Coral c;

  auto st = c.Consult(R"(
    module andersen.
    export pts(bf), hpts(bf), may_alias(bbf).
    @psn.
    pts(V, O)  :- alloc(V, O).
    pts(D, O)  :- assign(D, S), pts(S, O).
    pts(D, O)  :- load(D, P), pts(P, Q), hpts(Q, O).
    hpts(Q, O) :- store(P, S), pts(P, Q), pts(S, O).

    may_alias(X, Y, O) :- pts(X, O), pts(Y, O), X \= Y.
    end_module.
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  // A tiny program:
  //   p = new o1;  q = new o2;  r = p;
  //   *p = q;            (store)
  //   s = *r;            (load; r aliases p, so s -> o2's targets... s = q)
  //   t = s;
  st = c.Consult(R"(
    alloc(p, o1).  alloc(q, o2).
    assign(r, p).
    store(p, q).
    load(s, r).
    assign(t, s).
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  for (const char* v : {"p", "q", "r", "s", "t"}) {
    std::cout << "pts(" << v << "): ";
    auto scan = c.OpenScan("pts(" + std::string(v) + ", O)");
    bool first = true;
    while (const coral::Tuple* t = scan->Next()) {
      std::cout << (first ? "" : ", ") << *t->arg(1);
      first = false;
    }
    std::cout << (first ? "(nothing)" : "") << "\n";
  }

  std::cout << "\nheap points-to:\n" << *c.Command("?- hpts(Q, O).");
  std::cout << "\nvariables aliasing p:\n"
            << *c.Command("?- may_alias(p, Y, O).");

  // Scale it up: a chain of copies and loads over 200 variables.
  std::string big;
  for (int i = 0; i < 200; ++i) {
    big += "assign(v" + std::to_string(i + 1) + ", v" + std::to_string(i) +
           ").\n";
  }
  big += "assign(v0, t).\n";
  st = c.Consult(big);
  if (!st.ok()) return 1;
  std::cout << "\nafter a 200-copy chain, pts(v200):\n"
            << *c.Command("?- pts(v200, O).");
  return 0;
}
