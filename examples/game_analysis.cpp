// Game analysis with Ordered Search (paper §5.4.1): the win/not-win
// program is not stratified — win depends negatively on itself — but on
// acyclic move graphs it is left-to-right modularly stratified, exactly
// the class Ordered Search evaluates. The context mechanism orders the
// generated subgoals and fires the negation only when a subgoal is done.

#include <iostream>
#include <string>

#include <coral/coral.h>

int main() {
  coral::Coral c;

  auto st = c.Consult(R"(
    module game.
    export win(b), win_with(bf).
    @ordered_search.
    win(X) :- move(X, Y), not win(Y).
    win_with(X, Y) :- move(X, Y), not win(Y).
    end_module.
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  // Nim-like game positions: a token count, moves remove 1..3 tokens.
  std::string facts;
  for (int n = 1; n <= 30; ++n) {
    for (int take = 1; take <= 3 && take <= n; ++take) {
      facts += "move(pos" + std::to_string(n) + ", pos" +
               std::to_string(n - take) + ").\n";
    }
  }
  st = c.Consult(facts);
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Nim positions (misère-free, take 1..3): winning iff "
               "tokens % 4 != 0\n\n";
  for (int n : {3, 4, 12, 13, 21, 28, 30}) {
    std::string pos = "pos" + std::to_string(n);
    auto out = c.Command("?- win(" + pos + ").");
    bool wins = out->find("true") != std::string::npos;
    std::cout << "  " << pos << ": " << (wins ? "WIN" : "lose")
              << (n % 4 != 0 ? "  (expected WIN)" : "  (expected lose)")
              << "\n";
  }

  std::cout << "\nwinning moves from pos13:\n";
  std::cout << *c.Command("?- win_with(pos13, Y).");
  return 0;
}
