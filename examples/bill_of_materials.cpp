// Bill-of-materials: the classic deductive-database workload the paper's
// introduction motivates — large data analyzed with recursion plus
// aggregate operations. Computes the transitive sub-part explosion and
// per-assembly cost/weight rollups using recursion, arithmetic and
// grouping, and contrasts a materialized module with a pipelined one
// (paper §5).

#include <iostream>

#include <coral/coral.h>

int main() {
  coral::Coral c;

  // assembly(Part, SubPart, Quantity); basic_part(Part, UnitCost).
  auto st = c.Consult(R"(
    assembly(bike,   frame,   1).
    assembly(bike,   wheel,   2).
    assembly(bike,   brake,   2).
    assembly(wheel,  rim,     1).
    assembly(wheel,  spoke,  36).
    assembly(wheel,  hub,     1).
    assembly(hub,    axle,    1).
    assembly(hub,    bearing, 2).
    assembly(brake,  pad,     2).
    assembly(brake,  cable,   1).
    basic_part(frame,  900).
    basic_part(rim,     80).
    basic_part(spoke,    1).
    basic_part(axle,    20).
    basic_part(bearing,  5).
    basic_part(pad,      7).
    basic_part(cable,   12).
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  // Materialized module: transitive sub-parts with multiplied quantities,
  // and the total cost of every (transitively reached) basic part.
  st = c.Consult(R"(
    module bom.
    export subpart(bff), part_cost(bf).
    subpart(P, S, Q)  :- assembly(P, S, Q).
    subpart(P, S, Q)  :- assembly(P, M, Q1), subpart(M, S, Q2),
                         Q = Q1 * Q2.
    leaf_cost(P, S, C) :- subpart(P, S, Q), basic_part(S, U), C = Q * U.
    leaf_cost(P, P, C) :- basic_part(P, C).
    part_cost(P, sum(<C>)) :- leaf_cost(P, S, C).
    end_module.
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  std::cout << "sub-parts of a wheel (with multiplied quantities):\n";
  std::cout << *c.Command("?- subpart(wheel, S, Q).") << "\n";

  std::cout << "total material cost per assembly:\n";
  for (const char* part : {"bike", "wheel", "brake", "hub"}) {
    auto out = c.Command("?- part_cost(" + std::string(part) + ", C).");
    std::cout << "  " << part << ": " << *out;
  }

  // A pipelined helper module: find any one supply chain path (top-down,
  // first-answer semantics; paper §5.2).
  st = c.Consult(R"(
    module chains.
    export chain(bbf).
    @pipelining.
    chain(P, P, [P]).
    chain(P, S, [P|Rest]) :- assembly(P, M, _), chain(M, S, Rest).
    end_module.
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\none containment chain bike -> bearing (pipelined):\n";
  auto scan = c.OpenScan("chain(bike, bearing, Path)");
  if (const coral::Tuple* t = scan->Next()) {
    std::cout << "  " << *t->arg(2) << "\n";
  }
  return 0;
}
