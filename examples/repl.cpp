// The interactive interface (paper §2): consult programs and data, type
// queries, inspect rewritten programs and evaluation statistics.
//
//   $ ./repl [file.crl ...]
//
// Commands:
//   any CORAL text            facts, modules, annotations, ?- queries
//   :consult <file>           load a file
//   :listing <mod> <pred> <adornment>   show the rewritten program
//   :stats                    statistics of the last module evaluation
//   :explain <fact>           derivation tree (module needs @explain)
//   :deadline <ms>            per-query time budget (0 clears it)
//   :bind <name> <term>       set $name for later queries
//   :help, :quit
//
// Queries evaluate through a coral::Session — the same handle a server
// client gets: snapshot reads, deadline enforcement, $name bindings.
// Consulted text commits through the session so later queries see it.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <coral/coral.h>

namespace {

// Analyzer warnings don't stop a consult; show them like a compiler
// does (errors already surface through the failed Status).
void PrintWarnings(const coral::Database& db) {
  for (const coral::Diagnostic& d : db.last_diagnostics().items()) {
    if (d.severity != coral::DiagSeverity::kError) {
      std::cout << d.ToString() << "\n";
    }
  }
}

void RunText(coral::Session* session, const std::string& text) {
  // Pure query text goes straight through EvalQuery so $name bindings
  // substitute before parsing; anything else commits through the session
  // (read-your-writes) and then evaluates the queries it contained under
  // the session's snapshot and deadline.
  size_t start = text.find_first_not_of(" \t\r\n");
  if (start != std::string::npos && text.compare(start, 2, "?-") == 0) {
    auto result = session->EvalQuery(text);
    PrintWarnings(*session->db());
    if (!result.ok()) {
      std::cout << "error: " << result.status().ToString() << "\n";
      return;
    }
    std::cout << result->query.ToString() << "\n" << result->ToString();
    return;
  }
  auto queries = session->Consult(text);
  PrintWarnings(*session->db());
  if (!queries.ok()) {
    std::cout << "error: " << queries.status().ToString() << "\n";
    return;
  }
  for (const coral::Query& q : *queries) {
    auto result = session->EvalQuery(q.ToString());
    if (!result.ok()) {
      std::cout << "error: " << result.status().ToString() << "\n";
      continue;
    }
    std::cout << result->query.ToString() << "\n" << result->ToString();
  }
}

void ConsultFile(coral::Database* db, const std::string& path) {
  auto queries = db->ConsultFile(path);
  PrintWarnings(*db);
  if (!queries.ok()) {
    std::cout << "error: " << queries.status().ToString() << "\n";
    return;
  }
  std::cout << "consulted " << path << "\n";
  for (const coral::Query& q : *queries) {
    auto result = db->ExecuteQuery(q);
    if (!result.ok()) {
      std::cout << "error: " << result.status().ToString() << "\n";
      continue;
    }
    std::cout << result->query.ToString() << "\n" << result->ToString();
  }
}

}  // namespace

int main(int argc, char** argv) {
  coral::Database db;
  coral::Session session(&db);
  for (int i = 1; i < argc; ++i) ConsultFile(&db, argv[i]);

  std::cout << "CORAL deductive database (1993 reproduction). :help for "
               "commands.\n";
  std::string line, buffer;
  while (true) {
    std::cout << (buffer.empty() ? "coral> " : "...    ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line.empty() && buffer.empty()) continue;

    if (buffer.empty() && line[0] == ':') {
      std::istringstream cmd(line);
      std::string op;
      cmd >> op;
      if (op == ":quit" || op == ":q") break;
      if (op == ":help") {
        std::cout << "  :consult <file>\n  :listing <module> <pred> "
                     "<adornment>\n  :explain <fact>\n  :stats\n"
                     "  :deadline <ms>\n  :bind <name> <term>\n  :quit\n"
                     "  ...or type CORAL text (facts, modules, ?- queries)\n";
        continue;
      }
      if (op == ":consult") {
        std::string path;
        cmd >> path;
        ConsultFile(&db, path);
        continue;
      }
      if (op == ":listing") {
        std::string mod, pred, ad;
        cmd >> mod >> pred >> ad;
        auto listing = db.modules()->RewrittenListing(mod, pred, ad);
        if (!listing.ok()) {
          std::cout << "error: " << listing.status().ToString() << "\n";
        } else {
          std::cout << *listing;
        }
        continue;
      }
      if (op == ":explain") {
        std::string fact;
        std::getline(cmd, fact);
        auto tree = db.Explain(fact);
        if (!tree.ok()) {
          std::cout << "error: " << tree.status().ToString() << "\n";
        } else {
          std::cout << *tree;
        }
        continue;
      }
      if (op == ":deadline") {
        long long ms = 0;
        cmd >> ms;
        session.set_deadline_ms(ms);
        std::cout << (ms > 0 ? "deadline set\n" : "deadline cleared\n");
        continue;
      }
      if (op == ":bind") {
        std::string name, term;
        cmd >> name;
        std::getline(cmd, term);
        size_t start = term.find_first_not_of(" \t");
        if (name.empty() || start == std::string::npos) {
          std::cout << "usage: :bind <name> <term>\n";
        } else {
          session.Bind(name, term.substr(start));
          std::cout << "$" << name << " bound\n";
        }
        continue;
      }
      if (op == ":stats") {
        const coral::EvalStats& s = db.modules()->last_stats();
        std::cout << "last module evaluation: " << s.solutions
                  << " body solutions, " << s.inserts << " inserts, "
                  << s.iterations << " fixpoint iterations\n";
        continue;
      }
      std::cout << "unknown command " << op << " (:help)\n";
      continue;
    }

    // Accumulate until the input is complete (ends with '.').
    buffer += line;
    buffer += "\n";
    size_t last = buffer.find_last_not_of(" \t\r\n");
    if (last == std::string::npos || buffer[last] != '.') continue;
    RunText(&session, buffer);
    buffer.clear();
  }
  return 0;
}
