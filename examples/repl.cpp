// The interactive interface (paper §2): consult programs and data, type
// queries, inspect rewritten programs and evaluation statistics.
//
//   $ ./repl [file.crl ...]
//
// Commands:
//   any CORAL text            facts, modules, annotations, ?- queries
//   :consult <file>           load a file
//   :listing <mod> <pred> <adornment>   show the rewritten program
//   :stats                    statistics of the last module evaluation
//   :explain <fact>           derivation tree (module needs @explain)
//   :help, :quit

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <coral/coral.h>

namespace {

// Analyzer warnings don't stop a consult; show them like a compiler
// does (errors already surface through the failed Status).
void PrintWarnings(const coral::Database& db) {
  for (const coral::Diagnostic& d : db.last_diagnostics().items()) {
    if (d.severity != coral::DiagSeverity::kError) {
      std::cout << d.ToString() << "\n";
    }
  }
}

void RunText(coral::Database* db, const std::string& text) {
  auto out = db->Run(text);
  PrintWarnings(*db);
  if (!out.ok()) {
    std::cout << "error: " << out.status().ToString() << "\n";
    return;
  }
  std::cout << *out;
}

void ConsultFile(coral::Database* db, const std::string& path) {
  auto queries = db->ConsultFile(path);
  PrintWarnings(*db);
  if (!queries.ok()) {
    std::cout << "error: " << queries.status().ToString() << "\n";
    return;
  }
  std::cout << "consulted " << path << "\n";
  for (const coral::Query& q : *queries) {
    auto result = db->ExecuteQuery(q);
    if (!result.ok()) {
      std::cout << "error: " << result.status().ToString() << "\n";
      continue;
    }
    std::cout << result->query.ToString() << "\n" << result->ToString();
  }
}

}  // namespace

int main(int argc, char** argv) {
  coral::Database db;
  for (int i = 1; i < argc; ++i) ConsultFile(&db, argv[i]);

  std::cout << "CORAL deductive database (1993 reproduction). :help for "
               "commands.\n";
  std::string line, buffer;
  while (true) {
    std::cout << (buffer.empty() ? "coral> " : "...    ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line.empty() && buffer.empty()) continue;

    if (buffer.empty() && line[0] == ':') {
      std::istringstream cmd(line);
      std::string op;
      cmd >> op;
      if (op == ":quit" || op == ":q") break;
      if (op == ":help") {
        std::cout << "  :consult <file>\n  :listing <module> <pred> "
                     "<adornment>\n  :explain <fact>\n  :stats\n  :quit\n"
                     "  ...or type CORAL text (facts, modules, ?- queries)\n";
        continue;
      }
      if (op == ":consult") {
        std::string path;
        cmd >> path;
        ConsultFile(&db, path);
        continue;
      }
      if (op == ":listing") {
        std::string mod, pred, ad;
        cmd >> mod >> pred >> ad;
        auto listing = db.modules()->RewrittenListing(mod, pred, ad);
        if (!listing.ok()) {
          std::cout << "error: " << listing.status().ToString() << "\n";
        } else {
          std::cout << *listing;
        }
        continue;
      }
      if (op == ":explain") {
        std::string fact;
        std::getline(cmd, fact);
        auto tree = db.Explain(fact);
        if (!tree.ok()) {
          std::cout << "error: " << tree.status().ToString() << "\n";
        } else {
          std::cout << *tree;
        }
        continue;
      }
      if (op == ":stats") {
        const coral::EvalStats& s = db.modules()->last_stats();
        std::cout << "last module evaluation: " << s.solutions
                  << " body solutions, " << s.inserts << " inserts, "
                  << s.iterations << " fixpoint iterations\n";
        continue;
      }
      std::cout << "unknown command " << op << " (:help)\n";
      continue;
    }

    // Accumulate until the input is complete (ends with '.').
    buffer += line;
    buffer += "\n";
    size_t last = buffer.find_last_not_of(" \t\r\n");
    if (last == std::string::npos || buffer[last] != '.') continue;
    RunText(&db, buffer);
    buffer.clear();
  }
  return 0;
}
