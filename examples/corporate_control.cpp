// Corporate control: the classic recursive-aggregation workload (used in
// the Ordered Search literature the paper cites as [23]). A company X
// controls Y when the shares X commands in Y — directly owned plus shares
// owned by companies X already controls — exceed 50%. Aggregation (sum)
// sits inside recursion: not stratified, but left-to-right modularly
// stratified, so Ordered Search evaluates it (paper §5.4.1).

#include <iostream>

#include <coral/coral.h>

int main() {
  coral::Coral c;

  auto st = c.Consult(R"(
    module control.
    export controls(bf).
    @ordered_search.
    controls(X, Y) :- total_shares(X, Y, T), T > 50.
    total_shares(X, Y, sum(<S>)) :- commands(X, Y, Z, S).
    commands(X, Y, X, S) :- owns(X, Y, S).
    % owns/3 first so Z is bound when controls(X, Z) is called: this makes
    % the program LEFT-TO-RIGHT modularly stratified — each controls
    % subgoal is fully instantiated and strictly "smaller" (paper §5.4.1).
    commands(X, Y, Z, S) :- owns(Z, Y, S), Z \= X, controls(X, Z).
    end_module.
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  // A small holding structure:
  //   acme owns 60% of beta            -> acme controls beta
  //   acme owns 30% of gamma; beta owns 25% of gamma
  //       -> through beta, acme commands 55% of gamma: controls gamma
  //   gamma owns 51% of delta          -> acme controls delta transitively
  //   acme owns 20% of omega           -> no control
  st = c.Consult(R"(
    owns(acme,  beta,  60).
    owns(acme,  gamma, 30).
    owns(beta,  gamma, 25).
    owns(gamma, delta, 51).
    owns(acme,  omega, 20).
    owns(rival, omega, 45).
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  std::cout << "companies controlled by acme:\n";
  std::cout << *c.Command("?- controls(acme, Y).");
  std::cout << "\ncompanies controlled by rival:\n";
  std::cout << *c.Command("?- controls(rival, Y).");
  return 0;
}
