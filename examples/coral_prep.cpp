// The CORAL/C++ preprocessor driver (paper §6.1: "A file containing C++
// code with embedded CORAL code must first be passed through a CORAL
// preprocessor and then compiled using a standard C++ compiler").
//
//   $ ./coral_prep input.cC > output.cc     (or: coral_prep in.cC out.cc)
//   $ c++ -I<repo> output.cc libcoral.a ...

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/cxx/preprocessor.h"

int main(int argc, char** argv) {
  if (argc != 2 && argc != 3) {
    std::cerr << "usage: coral_prep <file.cC> [out.cc]\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "coral_prep: cannot open " << argv[1] << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto out = coral::PreprocessCoralCpp(buf.str());
  if (!out.ok()) {
    std::cerr << "coral_prep: " << out.status().ToString() << "\n";
    return 1;
  }
  if (argc == 3) {
    std::ofstream dst(argv[2]);
    if (!dst) {
      std::cerr << "coral_prep: cannot write " << argv[2] << "\n";
      return 2;
    }
    dst << *out;
  } else {
    std::cout << *out;
  }
  return 0;
}
