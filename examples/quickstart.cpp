// Quickstart: load facts, define a recursive module, run queries.
//
//   $ ./quickstart
//
// Demonstrates the two public entry points: the Coral embedded-C++ facade
// (paper §6) and plain CORAL command text (paper §2).

#include <iostream>

#include <coral/coral.h>

int main() {
  coral::Coral c;

  // 1. Base facts: a small family tree. Facts can also be loaded from a
  //    text file with c.db()->ConsultFile(path) — 'consulting' (paper §2).
  auto st = c.Consult(R"(
    par(kathy, tom).   par(kathy, mary).
    par(tom, bob).     par(tom, liz).
    par(bob, ann).     par(bob, pat).
    par(pat, jim).
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  // 2. A declarative module: ancestor as the transitive closure of par.
  //    The export adornment bf says queries bind the first argument; the
  //    optimizer applies Supplementary Magic rewriting for it (paper §4.1).
  st = c.Consult(R"(
    module ancestors.
    export anc(bf, ff).
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    end_module.
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  // 3. Queries through the command interface.
  auto out = c.Command("?- anc(tom, D).");
  std::cout << "Descendants of tom:\n" << *out;

  // 4. The same data through a C_ScanDesc cursor (paper §6.1).
  auto scan = c.OpenScan("anc(kathy, D)");
  std::cout << "\nDescendants of kathy (via C_ScanDesc):\n";
  while (const coral::Tuple* t = scan->Next()) {
    std::cout << "  " << *t->arg(1) << "\n";
  }

  // 5. Conjunctive query with negation and comparison builtins.
  out = c.Command(R"(
    person(kathy). person(tom). person(mary). person(bob).
    person(liz). person(ann). person(pat). person(jim).
    ?- person(P), not par(P, _).
  )");
  std::cout << "\nPeople with no recorded children:\n" << *out;

  // 6. The rewritten program (the optimizer's debugging dump, paper §2).
  auto listing = c.db()->modules()->RewrittenListing("ancestors", "anc",
                                                     "bf");
  std::cout << "\nRewritten program for anc(bf):\n" << *listing;

  // 7. The session API: the handle a concurrent client (or the query
  //    server) uses. A Session pins a read snapshot, enforces an optional
  //    per-query deadline, and substitutes $name bindings — here the same
  //    ancestor query is parameterized instead of re-stringified.
  coral::Session session(c.db(), /*deadline_ms=*/1000);
  session.Bind("who", "kathy");
  auto rows = session.EvalQuery("?- anc($who, D).");
  std::cout << "\nDescendants of $who=kathy (via Session):\n"
            << rows->ToString();
  return 0;
}
