// Demo embedded-CORAL source (input to coral_prep).
#include <iostream>

_coral_export(triple, 2);

::coral::Status triple(std::span<const coral::TermRef> args,
                       coral::TermFactory* f,
                       std::vector<const coral::Tuple*>* out) {
  coral::TermRef x = coral::Deref(args[0].term, args[0].env);
  if (x.term->kind() != coral::ArgKind::kInt) {
    return coral::Status::FailedPrecondition("triple needs a bound int");
  }
  const coral::Arg* t[] = {
      x.term,
      f->MakeInt(3 * coral::ArgCast<coral::IntArg>(x.term)->value())};
  out->push_back(f->MakeTuple(t));
  return coral::Status::OK();
}

::coral::Status Setup(::coral::Coral& coral__) {
  {
    auto st = coral_register_exports(coral__);
    if (!st.ok()) return st;
  }
  \coral{
    n(1). n(2).
    module m. export t3(bf).
    t3(X, Y) :- n(X), triple(X, Y).
    end_module.
  }
  return ::coral::Status::OK();
}

int main() {
  coral::Coral c;
  auto st = Setup(c);
  if (!st.ok()) { std::cerr << st.ToString() << "\n"; return 1; }
  std::cout << *c.Command("?- t3(2, Y).");
  return 0;
}
