// Extensibility demo (paper §6.2, §7): a predicate defined by a C++
// function used inside declarative rules, plus persistent relations
// through the EXODUS-substitute storage manager — data survives process
// restarts, and rules read it through the same get-next-tuple interface.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>

#include <coral/coral.h>

int main() {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "coral_cxx_extension_demo";
  fs::create_directories(dir);
  std::string prefix = (dir / "geo").string();

  coral::Coral c;

  // --- A predicate defined in C++: great-circle-ish distance ------------
  // haversine(Lat1, Lon1, Lat2, Lon2, Km): all inputs must be bound.
  auto st = c.RegisterPredicate(
      "haversine", 5,
      [](std::span<const coral::TermRef> args, coral::TermFactory* f,
         std::vector<const coral::Tuple*>* out) -> coral::Status {
        double v[4];
        for (int i = 0; i < 4; ++i) {
          coral::TermRef r = coral::Deref(args[i].term, args[i].env);
          if (r.term->kind() == coral::ArgKind::kDouble) {
            v[i] = coral::ArgCast<coral::DoubleArg>(r.term)->value();
          } else if (r.term->kind() == coral::ArgKind::kInt) {
            v[i] = static_cast<double>(
                coral::ArgCast<coral::IntArg>(r.term)->value());
          } else {
            return coral::Status::FailedPrecondition(
                "haversine needs bound numeric coordinates");
          }
        }
        auto rad = [](double d) { return d * M_PI / 180.0; };
        double dlat = rad(v[2] - v[0]), dlon = rad(v[3] - v[1]);
        double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(rad(v[0])) * std::cos(rad(v[2])) *
                       std::sin(dlon / 2) * std::sin(dlon / 2);
        double km = 2 * 6371.0 * std::asin(std::sqrt(a));
        const coral::Arg* t[5] = {
            coral::Deref(args[0].term, args[0].env).term,
            coral::Deref(args[1].term, args[1].env).term,
            coral::Deref(args[2].term, args[2].env).term,
            coral::Deref(args[3].term, args[3].env).term,
            f->MakeDouble(std::round(km))};
        out->push_back(f->MakeTuple(t));
        return coral::Status::OK();
      });
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // --- Persistent city coordinates --------------------------------------
  auto sm = coral::StorageManager::Open(prefix, c.factory());
  if (!sm.ok()) {
    std::cerr << sm.status().ToString() << "\n";
    return 1;
  }
  coral::PersistentRelation* city = (*sm)->FindRelation("city", 3);
  bool fresh = city == nullptr;
  if (fresh) {
    auto created = (*sm)->CreateRelation("city", 3);
    if (!created.ok()) return 1;
    city = *created;
    struct Row { const char* name; double lat, lon; };
    for (const Row& r : {Row{"madison", 43.07, -89.40},
                         Row{"chicago", 41.88, -87.63},
                         Row{"seattle", 47.61, -122.33},
                         Row{"boston", 42.36, -71.06}}) {
      const coral::Arg* args[] = {c.Atom(r.name), c.Double(r.lat),
                                  c.Double(r.lon)};
      city->Insert(c.factory()->MakeTuple(args));
    }
  }
  std::cout << (fresh ? "created" : "reopened") << " persistent relation "
            << "city/3 with " << city->size() << " rows\n";
  st = (*sm)->AttachTo(c.db());
  if (!st.ok()) return 1;

  // --- Declarative rules over both --------------------------------------
  st = c.Consult(R"(
    module geo.
    export distance(bbf), near_madison(ff).
    distance(A, B, Km) :- city(A, LatA, LonA), city(B, LatB, LonB),
                          haversine(LatA, LonA, LatB, LonB, Km).
    near_madison(B, Km) :- distance(madison, B, Km), Km < 1000.0,
                           B \= madison.
    end_module.
  )").status();
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  std::cout << "\ndistances from madison (C++ predicate inside rules):\n";
  std::cout << *c.Command("?- distance(madison, B, Km).");
  std::cout << "\ncities within 1000 km of madison:\n";
  std::cout << *c.Command("?- near_madison(B, Km).");

  st = (*sm)->Close();
  if (!st.ok()) return 1;
  std::cout << "\n(data persisted under " << prefix << ".db — run again "
            << "to see it reopened)\n";
  return 0;
}
