// The paper's Figure 3 program, verbatim: shortest paths with aggregate
// selections. Without the @aggregate_selection annotations the program
// would enumerate ever-costlier cyclic paths and never terminate; with
// them, a single-source query runs in O(E·V) (paper §5.5.2).

#include <iostream>
#include <string>

#include <coral/coral.h>

int main() {
  coral::Coral c;

  auto st = c.Consult(R"(
    module s_p.
    export s_p(bfff).
    @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
    @aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
    s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
    s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
    p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                       append([edge(Z, Y)], P, P1), C1 = C + EC.
    p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
    end_module.
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  // A small cyclic road network (distances in km).
  st = c.Consult(R"(
    edge(madison,  chicago,   240).
    edge(chicago,  madison,   240).
    edge(madison,  milwaukee, 130).
    edge(milwaukee, chicago,  150).
    edge(chicago,  stlouis,   480).
    edge(madison,  minneapolis, 430).
    edge(minneapolis, stlouis, 750).
    edge(milwaukee, madison,  130).
    edge(stlouis,  chicago,   480).
  )");
  if (!st.ok()) {
    std::cerr << st.status().ToString() << "\n";
    return 1;
  }

  for (const char* dest : {"chicago", "stlouis", "minneapolis"}) {
    auto out =
        c.Command("?- s_p(madison, " + std::string(dest) + ", P, C).");
    if (!out.ok()) {
      std::cerr << out.status().ToString() << "\n";
      return 1;
    }
    std::cout << "shortest madison -> " << dest << ":\n" << *out << "\n";
  }

  // All shortest paths from one source in one call (Y free).
  auto all = c.Command("?- s_p(madison, Y, P, C).");
  std::cout << "all shortest paths from madison:\n" << *all;
  return 0;
}
