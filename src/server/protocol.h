// Copyright (c) 1993-style CORAL reproduction authors.
// Wire protocol for the query server (docs/SERVER.md). Each client
// connection owns one ClientSession wrapping a coral::Session; requests
// are single-line JSON objects dispatched by "op":
//
//   {"op":"query",   "q":"?- path(1, X)."}       -> rows of bindings
//   {"op":"consult", "program":"module m. ..."}  -> commit program text
//   {"op":"load",    "facts":"edge(1,2). ..."}   -> bulk fact load
//   {"op":"bind",    "name":"src", "value":"1"}  -> set $src for queries
//   {"op":"deadline","ms":250}                   -> per-query budget
//   {"op":"refresh"}                             -> drop snapshot
//   {"op":"stats"}                               -> server metrics JSON
//   {"op":"ping"}                                -> liveness
//   {"op":"close"}                               -> end the session
//
// Responses are one JSON object per request: {"ok":true, ...} or
// {"ok":false, "code":"DeadlineExceeded", "error":"..."}.

#ifndef CORAL_SERVER_PROTOCOL_H_
#define CORAL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/session.h"
#include "src/obs/server_metrics.h"

namespace coral::server {

/// Shared state handed to every connection.
struct ServerContext {
  Database* db = nullptr;
  obs::ServerMetrics* metrics = nullptr;
  /// Applied to sessions at creation; sessions can lower/raise their own.
  int64_t default_deadline_ms = 0;
};

class ClientSession {
 public:
  explicit ClientSession(ServerContext* ctx);
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Handles one request line (a JSON object); returns the response
  /// JSON (no trailing newline). Never throws; malformed input yields an
  /// {"ok":false} response.
  std::string Handle(const std::string& line);

  /// True after {"op":"close"}; the connection should be dropped.
  bool closed() const { return closed_; }

 private:
  std::string HandleQuery(const std::string& q);
  std::string HandleStats() const;

  ServerContext* ctx_;
  Session session_;
  bool closed_ = false;
};

/// Renders a shed/overload refusal (used by the server when admission
/// fails before a ClientSession ever sees the request).
std::string ShedResponse();

}  // namespace coral::server

#endif  // CORAL_SERVER_PROTOCOL_H_
