// Copyright (c) 1993-style CORAL reproduction authors.
// Admission control for the query server: a bounded work queue feeding a
// fixed worker pool. At most `max_inflight` requests execute at once;
// up to `max_queue` more wait; beyond that, Submit refuses immediately
// (shed-on-overload, Status kUnavailable) so an overloaded server stays
// responsive instead of accumulating unbounded latency.

#ifndef CORAL_SERVER_ADMISSION_H_
#define CORAL_SERVER_ADMISSION_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/status.h"
#include "src/util/sync.h"

namespace coral::server {

class AdmissionQueue {
 public:
  /// Starts `max_inflight` worker threads. `max_queue` bounds the number
  /// of admitted-but-not-yet-running requests.
  AdmissionQueue(size_t max_inflight, size_t max_queue);
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits `work` for execution on a worker thread, or refuses with
  /// kUnavailable when the queue is full (the caller converts this into
  /// a `shed` response) or the queue is shutting down.
  Status Submit(std::function<void()> work);

  /// Stops admitting, drains queued work, joins workers. Idempotent.
  void Shutdown();

  size_t max_inflight() const { return workers_.size(); }
  size_t max_queue() const { return max_queue_; }

 private:
  void WorkerLoop();

  const size_t max_queue_;
  mutable Mutex mu_{kRankAdmission};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ CORAL_GUARDED_BY(mu_);
  bool shutdown_ CORAL_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace coral::server

#endif  // CORAL_SERVER_ADMISSION_H_
