#include "src/server/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace coral::server {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    CORAL_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Err(const std::string& what) {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  StatusOr<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Err("unexpected end");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
      case 'f': return ParseBool();
      case 'n': return ParseNull();
      default: return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (Consume('}')) return v;
    while (true) {
      SkipSpace();
      CORAL_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Err("expected ':'");
      CORAL_ASSIGN_OR_RETURN(JsonValue val, ParseValue());
      v.object.emplace(std::move(key.string_value), std::move(val));
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Err("expected ',' or '}'");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (Consume(']')) return v;
    while (true) {
      CORAL_ASSIGN_OR_RETURN(JsonValue elem, ParseValue());
      v.array.push_back(std::move(elem));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Err("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Err("expected string");
    }
    ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Err("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': v.string_value.push_back('"'); break;
        case '\\': v.string_value.push_back('\\'); break;
        case '/': v.string_value.push_back('/'); break;
        case 'b': v.string_value.push_back('\b'); break;
        case 'f': v.string_value.push_back('\f'); break;
        case 'n': v.string_value.push_back('\n'); break;
        case 'r': v.string_value.push_back('\r'); break;
        case 't': v.string_value.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // protocol payloads are CORAL program text, effectively ASCII).
          if (code < 0x80) {
            v.string_value.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            v.string_value.push_back(static_cast<char>(0xC0 | (code >> 6)));
            v.string_value.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            v.string_value.push_back(static_cast<char>(0xE0 | (code >> 12)));
            v.string_value.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            v.string_value.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  StatusOr<JsonValue> ParseBool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.bool_value = true;
      return v;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.bool_value = false;
      return v;
    }
    return Err("bad literal");
  }

  StatusOr<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return Err("bad literal");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("bad number");
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace coral::server
