#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "src/server/json.h"
#include "src/util/logging.h"

namespace coral::server {

namespace {

// A connection's input buffer is bounded: a frame larger than this drops
// the connection rather than ballooning server memory.
constexpr size_t kMaxFrameBytes = 16 * 1024 * 1024;

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Blocking-style full write on a non-blocking socket: polls for
/// writability between partial sends. Only one worker writes a given
/// connection at a time (one-in-flight ordering), so no interleaving.
void WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      if (poll(&pfd, 1, 1000) <= 0) return;  // peer stalled or gone
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer closed; response is moot
  }
}

std::string HttpWrap(std::string_view body) {
  std::string out = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n";
  out += "Content-Length: " + std::to_string(body.size() + 1) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  out += '\n';
  return out;
}

/// Case-insensitive Content-Length extraction; -1 when absent.
long ContentLength(std::string_view headers) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    std::string_view line = headers.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string key(line.substr(0, colon));
      for (char& c : key) c = static_cast<char>(std::tolower(
          static_cast<unsigned char>(c)));
      if (key == "content-length") {
        return std::strtol(line.data() + colon + 1, nullptr, 10);
      }
    }
    pos = eol + 2;
  }
  return -1;
}

}  // namespace

struct Server::Conn {
  explicit Conn(int f) : fd(f) {}
  ~Conn() { ::close(fd); }

  const int fd;
  /// Serializes the pending queue and the in-flight flag between the IO
  /// thread and workers.
  Mutex mu{kRankServerSession};
  std::deque<std::pair<std::string, bool>> pending CORAL_GUARDED_BY(mu);
  bool inflight CORAL_GUARDED_BY(mu) = false;

  // IO thread only.
  std::string inbuf;
  bool http = false;
  bool detected = false;

  /// Created lazily by the first worker to execute a request; accessed
  /// only by workers, serialized by the one-in-flight invariant.
  std::unique_ptr<ClientSession> session;
  std::atomic<bool> dead{false};
};

Server::Server(Database* db, ServerOptions opts)
    : db_(db), opts_(std::move(opts)) {
  ctx_.db = db_;
  ctx_.metrics = &metrics_;
  ctx_.default_deadline_ms = opts_.default_deadline_ms;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address " + opts_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(listen_fd_, 64) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(listen_fd_) || pipe(wake_pipe_) != 0 ||
      !SetNonBlocking(wake_pipe_[0])) {
    return Status::Internal("server fd setup failed");
  }
  admission_ =
      std::make_unique<AdmissionQueue>(opts_.max_inflight, opts_.max_queue);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (!stopping_.exchange(true)) {
    if (wake_pipe_[1] >= 0) {
      char b = 'q';
      (void)!write(wake_pipe_[1], &b, 1);
    }
    if (io_thread_.joinable()) io_thread_.join();
    // Workers drain after the IO thread stops framing new requests; the
    // connections they still reference stay alive through shared_ptrs.
    if (admission_ != nullptr) admission_->Shutdown();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
    MutexLock lock(&state_mu_);
    stopped_ = true;
    stopped_cv_.NotifyAll();
  } else {
    // Another thread is stopping; wait for it.
    Wait();
  }
}

void Server::Wait() {
  MutexLock lock(&state_mu_);
  while (!stopped_) stopped_cv_.Wait(state_mu_);
}

void Server::IoLoop() {
  std::vector<struct pollfd> fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      fds.push_back({fd, POLLIN, 0});
    }
    int rc = poll(fds.data(), fds.size(), 500);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    // Accept new connections.
    if (fds[0].revents & POLLIN) {
      while (true) {
        int cfd = accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        SetNonBlocking(cfd);
        int one = 1;
        setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns_.emplace(cfd, std::make_shared<Conn>(cfd));
      }
    }
    if (fds[1].revents & POLLIN) {
      char buf[16];
      (void)!read(wake_pipe_[0], buf, sizeof(buf));
    }
    for (size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      auto it = conns_.find(fds[i].fd);
      if (it == conns_.end()) continue;
      HandleReadable(it->second);
    }
    // Reap connections marked dead by workers (HTTP one-shots, closes).
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->dead.load(std::memory_order_acquire)) {
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  conns_.clear();
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  while (true) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      if (conn->inbuf.size() > kMaxFrameBytes) {
        conn->dead.store(true, std::memory_order_release);
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or error: frame what we have, then drop after workers finish.
    conn->dead.store(true, std::memory_order_release);
    break;
  }
  FrameRequests(conn);
}

void Server::FrameRequests(const std::shared_ptr<Conn>& conn) {
  if (!conn->detected && !conn->inbuf.empty()) {
    conn->http = conn->inbuf.rfind("GET ", 0) == 0 ||
                 conn->inbuf.rfind("POST ", 0) == 0 ||
                 conn->inbuf.rfind("HEAD ", 0) == 0;
    conn->detected = true;
  }
  bool framed = false;
  if (conn->http) {
    size_t hdr_end = conn->inbuf.find("\r\n\r\n");
    if (hdr_end == std::string::npos) return;
    long body_len = ContentLength(
        std::string_view(conn->inbuf).substr(0, hdr_end));
    if (body_len < 0) body_len = 0;
    size_t total = hdr_end + 4 + static_cast<size_t>(body_len);
    if (conn->inbuf.size() < total) return;  // body still arriving
    std::string_view start_line(conn->inbuf);
    start_line = start_line.substr(0, conn->inbuf.find("\r\n"));
    std::string body = conn->inbuf.substr(hdr_end + 4,
                                          static_cast<size_t>(body_len));
    std::string request;
    if (start_line.rfind("GET /stats", 0) == 0) {
      request = "{\"op\":\"stats\"}";
    } else if (start_line.rfind("GET /ping", 0) == 0) {
      request = "{\"op\":\"ping\"}";
    } else if (start_line.rfind("POST /consult", 0) == 0) {
      request = JsonWriter()
                    .Field("op", std::string_view("consult"))
                    .Field("program", std::string_view(body))
                    .Build();
    } else if (start_line.rfind("POST ", 0) == 0) {
      request = std::move(body);  // POST / and POST /query: JSON op body
    } else {
      request = "{\"op\":\"__unsupported_path__\"}";
    }
    conn->inbuf.clear();  // one-shot: ignore any pipelined extra bytes
    {
      MutexLock lock(&conn->mu);
      conn->pending.emplace_back(std::move(request), /*http=*/true);
    }
    framed = true;
  } else {
    size_t start = 0;
    while (true) {
      size_t nl = conn->inbuf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = conn->inbuf.substr(start, nl - start);
      start = nl + 1;
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line.empty()) continue;
      MutexLock lock(&conn->mu);
      conn->pending.emplace_back(std::move(line), /*http=*/false);
      framed = true;
    }
    if (start > 0) conn->inbuf.erase(0, start);
  }
  if (framed) PumpConn(conn);
}

void Server::PumpConn(std::shared_ptr<Conn> conn) {
  while (true) {
    std::string request;
    bool http = false;
    {
      MutexLock lock(&conn->mu);
      if (conn->inflight || conn->pending.empty()) return;
      request = std::move(conn->pending.front().first);
      http = conn->pending.front().second;
      conn->pending.pop_front();
      conn->inflight = true;
    }
    Status admitted = admission_->Submit(
        [this, conn, request = std::move(request), http]() mutable {
          Execute(std::move(conn), std::move(request), http);
        });
    if (admitted.ok()) return;
    // Shed: answer inline (cheap) and try the next pending request.
    metrics_.RecordShed();
    std::string response = ShedResponse();
    WriteAll(conn->fd, http ? HttpWrap(response) : response + "\n");
    if (http) conn->dead.store(true, std::memory_order_release);
    MutexLock lock(&conn->mu);
    conn->inflight = false;
  }
}

void Server::Execute(std::shared_ptr<Conn> conn, std::string request,
                     bool http) {
  if (conn->session == nullptr) {
    conn->session = std::make_unique<ClientSession>(&ctx_);
  }
  std::string response = conn->session->Handle(request);
  WriteAll(conn->fd, http ? HttpWrap(response) : response + "\n");
  if (http || conn->session->closed()) {
    shutdown(conn->fd, SHUT_RDWR);
    conn->dead.store(true, std::memory_order_release);
  }
  {
    MutexLock lock(&conn->mu);
    conn->inflight = false;
  }
  PumpConn(std::move(conn));
}

}  // namespace coral::server
