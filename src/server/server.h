// Copyright (c) 1993-style CORAL reproduction authors.
// The CORAL query server (docs/SERVER.md): a poll-based IO thread
// accepts TCP connections and frames requests; an AdmissionQueue worker
// pool executes them against a shared Database through per-connection
// ClientSessions. Two framings share one port, autodetected from the
// first bytes:
//
//   - JSONL (default): one JSON request per line, one JSON response per
//     line, connection and session persist across requests;
//   - HTTP/1.1 (one-shot): "GET /stats" or "POST /query" with a JSON
//     body; the response closes the connection.
//
// Ordering: at most one request per connection executes at a time
// (pipelined requests queue in arrival order), so a session is always
// thread-confined. Across connections, requests run concurrently up to
// --max-inflight, with --max-queue more admitted; beyond that requests
// are shed with an Unavailable response rather than queued unboundedly.

#ifndef CORAL_SERVER_SERVER_H_
#define CORAL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/core/database.h"
#include "src/obs/server_metrics.h"
#include "src/server/admission.h"
#include "src/server/protocol.h"
#include "src/util/sync.h"

namespace coral::server {

struct ServerOptions {
  /// Listen address; loopback by default (no auth on the wire).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see Server::port()).
  int port = 0;
  /// Worker threads — concurrently executing requests.
  size_t max_inflight = 4;
  /// Admitted-but-waiting requests beyond which submissions shed.
  size_t max_queue = 64;
  /// Default per-query deadline for new sessions (0 = none).
  int64_t default_deadline_ms = 0;
};

class Server {
 public:
  /// `db` is shared and not owned; the caller must keep it alive until
  /// after Stop() returns.
  Server(Database* db, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the IO thread and worker pool.
  Status Start();

  /// Stops accepting, drains in-flight requests, joins all threads, and
  /// closes every connection. Idempotent; safe from any thread.
  void Stop();

  /// Blocks until Stop() is called (from another thread or a signal
  /// handler writing the wakeup pipe).
  void Wait();

  /// Actual bound port (after Start; useful with port 0).
  int port() const { return port_; }

  obs::ServerMetrics* metrics() { return &metrics_; }

 private:
  struct Conn;

  void IoLoop();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  /// Frames complete requests out of conn->inbuf into conn->pending and
  /// kicks the dispatch chain when idle. IO thread only.
  void FrameRequests(const std::shared_ptr<Conn>& conn);
  /// Submits the next pending request (caller must NOT hold conn->mu).
  void PumpConn(std::shared_ptr<Conn> conn);
  /// Worker-side: execute one request, write the response, pump again.
  void Execute(std::shared_ptr<Conn> conn, std::string request, bool http);

  Database* db_;
  ServerOptions opts_;
  obs::ServerMetrics metrics_;
  /// Stable context handed to every ClientSession (outlives them all).
  ServerContext ctx_;
  std::unique_ptr<AdmissionQueue> admission_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  mutable Mutex state_mu_{kRankServerState};
  CondVar stopped_cv_;
  bool stopped_ CORAL_GUARDED_BY(state_mu_) = false;

  /// Live connections; IO thread only (workers reach conns through the
  /// shared_ptr captured at submit time, never through this map).
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
};

}  // namespace coral::server

#endif  // CORAL_SERVER_SERVER_H_
