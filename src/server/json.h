// Copyright (c) 1993-style CORAL reproduction authors.
// Minimal JSON for the wire protocol (docs/SERVER.md): a recursive
// descent parser into a small value tree, plus string escaping and an
// object builder. Deliberately tiny — the protocol uses flat objects of
// strings and numbers; nesting support exists only so clients can send
// structured bindings.

#ifndef CORAL_SERVER_JSON_H_
#define CORAL_SERVER_JSON_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace coral::server {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  /// Member as string with default.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_string() ? v->string_value : fallback;
  }
  /// Member as integer with default.
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_number()
               ? static_cast<int64_t>(v->number)
               : fallback;
  }
};

/// Parses one JSON document; trailing garbage is an error.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

/// Incremental flat-object builder for responses.
class JsonWriter {
 public:
  JsonWriter() : out_("{") {}
  JsonWriter& Field(std::string_view key, std::string_view value) {
    Key(key);
    out_ += '"';
    out_ += JsonEscape(value);
    out_ += '"';
    return *this;
  }
  // Exact match for string literals (otherwise const char* would prefer
  // the standard conversion to bool over string_view).
  JsonWriter& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value));
  }
  JsonWriter& Field(std::string_view key, const std::string& value) {
    return Field(key, std::string_view(value));
  }
  JsonWriter& Field(std::string_view key, int64_t value) {
    Key(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Field(std::string_view key, uint64_t value) {
    Key(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Field(std::string_view key, double value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out_ += buf;
    return *this;
  }
  JsonWriter& Field(std::string_view key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  /// Emits `raw` verbatim as the member value (must be valid JSON).
  JsonWriter& RawField(std::string_view key, std::string_view raw) {
    Key(key);
    out_ += raw;
    return *this;
  }
  std::string Build() {
    out_ += '}';
    return std::move(out_);
  }

 private:
  void Key(std::string_view key) {
    if (out_.size() > 1) out_ += ',';
    out_ += '"';
    out_ += JsonEscape(key);
    out_ += "\":";
  }
  std::string out_;
};

}  // namespace coral::server

#endif  // CORAL_SERVER_JSON_H_
