#include "src/server/admission.h"

namespace coral::server {

AdmissionQueue::AdmissionQueue(size_t max_inflight, size_t max_queue)
    : max_queue_(max_queue) {
  if (max_inflight == 0) max_inflight = 1;
  workers_.reserve(max_inflight);
  for (size_t i = 0; i < max_inflight; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionQueue::~AdmissionQueue() { Shutdown(); }

Status AdmissionQueue::Submit(std::function<void()> work) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return Status::Unavailable("server shutting down");
    }
    if (queue_.size() >= max_queue_) {
      return Status::Unavailable("server overloaded; request shed");
    }
    queue_.push_back(std::move(work));
  }
  cv_.NotifyOne();
  return Status::OK();
}

void AdmissionQueue::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void AdmissionQueue::WorkerLoop() {
  while (true) {
    std::function<void()> work;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !shutdown_) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown and drained
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    work();
  }
}

}  // namespace coral::server
