#include "src/server/protocol.h"

#include "src/core/eval_context.h"
#include "src/server/json.h"

namespace coral::server {

namespace {

std::string ErrorResponse(const Status& status) {
  return JsonWriter()
      .Field("ok", false)
      .Field("code", StatusCodeName(status.code()))
      .Field("error", status.message())
      .Build();
}

}  // namespace

std::string ShedResponse() {
  return JsonWriter()
      .Field("ok", false)
      .Field("code", "Unavailable")
      .Field("error", "server overloaded; request shed")
      .Build();
}

ClientSession::ClientSession(ServerContext* ctx)
    : ctx_(ctx), session_(ctx->db, ctx->default_deadline_ms) {
  ctx_->metrics->SessionOpened();
}

ClientSession::~ClientSession() { ctx_->metrics->SessionClosed(); }

std::string ClientSession::Handle(const std::string& line) {
  StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    ctx_->metrics->RecordError();
    return ErrorResponse(parsed.status());
  }
  const JsonValue& req = parsed.value();
  std::string op = req.GetString("op");

  if (op == "query") {
    std::string q = req.GetString("q");
    if (q.empty()) {
      ctx_->metrics->RecordError();
      return ErrorResponse(Status::InvalidArgument("query op needs \"q\""));
    }
    return HandleQuery(q);
  }
  if (op == "consult") {
    std::string program = req.GetString("program");
    auto result = session_.Consult(program);
    if (!result.ok()) {
      ctx_->metrics->RecordError();
      return ErrorResponse(result.status());
    }
    ctx_->metrics->RecordConsult();
    return JsonWriter()
        .Field("ok", true)
        .Field("epoch", session_.db()->snapshot_epoch())
        .Field("queries_in_text",
               static_cast<int64_t>(result.value().size()))
        .Build();
  }
  if (op == "load") {
    auto result = session_.LoadFacts(req.GetString("facts"));
    if (!result.ok()) {
      ctx_->metrics->RecordError();
      return ErrorResponse(result.status());
    }
    ctx_->metrics->RecordConsult();
    return JsonWriter()
        .Field("ok", true)
        .Field("inserted", static_cast<int64_t>(result.value()))
        .Build();
  }
  if (op == "bind") {
    std::string name = req.GetString("name");
    const JsonValue* value = req.Find("value");
    if (name.empty() || value == nullptr) {
      ctx_->metrics->RecordError();
      return ErrorResponse(
          Status::InvalidArgument("bind op needs \"name\" and \"value\""));
    }
    std::string text = value->is_string()
                           ? value->string_value
                           : std::to_string(static_cast<int64_t>(
                                 value->number));
    session_.Bind(name, text);
    return JsonWriter().Field("ok", true).Build();
  }
  if (op == "deadline") {
    session_.set_deadline_ms(req.GetInt("ms", 0));
    return JsonWriter()
        .Field("ok", true)
        .Field("deadline_ms", session_.deadline_ms())
        .Build();
  }
  if (op == "refresh") {
    session_.Refresh();
    return JsonWriter().Field("ok", true).Build();
  }
  if (op == "stats") return HandleStats();
  if (op == "ping") {
    return JsonWriter()
        .Field("ok", true)
        .Field("epoch", session_.db()->snapshot_epoch())
        .Build();
  }
  if (op == "close") {
    closed_ = true;
    return JsonWriter().Field("ok", true).Field("closed", true).Build();
  }
  ctx_->metrics->RecordError();
  return ErrorResponse(
      Status::InvalidArgument("unknown op \"" + op + "\""));
}

std::string ClientSession::HandleQuery(const std::string& q) {
  int64_t start = EvalClockNowNs();
  StatusOr<QueryResult> result = session_.EvalQuery(q);
  int64_t elapsed = EvalClockNowNs() - start;
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      ctx_->metrics->RecordTimeout();
    } else {
      ctx_->metrics->RecordError();
    }
    return ErrorResponse(result.status());
  }
  ctx_->metrics->RecordQuery(elapsed);

  // Rows render as an array of {var: term-text} objects.
  std::string rows = "[";
  const QueryResult& qr = result.value();
  for (size_t i = 0; i < qr.rows.size(); ++i) {
    if (i > 0) rows += ',';
    JsonWriter row;
    for (const auto& [name, term] : qr.rows[i].bindings) {
      row.Field(name, term->ToString());
    }
    rows += row.Build();
  }
  rows += ']';
  return JsonWriter()
      .Field("ok", true)
      .Field("epoch", session_.epoch())
      .Field("count", static_cast<int64_t>(qr.rows.size()))
      .Field("elapsed_ms", static_cast<double>(elapsed) / 1e6)
      .RawField("rows", rows)
      .Build();
}

std::string ClientSession::HandleStats() const {
  return JsonWriter()
      .Field("ok", true)
      .RawField("server", ctx_->metrics->ToJson())
      .Field("epoch", session_.db()->snapshot_epoch())
      .Build();
}

}  // namespace coral::server
