#include "src/obs/report.h"

#include <algorithm>
#include <cstdio>

namespace coral::obs {
namespace {

std::string Pad(const std::string& s, size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string PadLeft(const std::string& s, size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string Num(uint64_t v) { return std::to_string(v); }

std::string Millis(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

std::string RenderModuleProfile(const ModuleProfile& profile,
                                const ReportOptions& opts) {
  std::string out;
  out += "module " + profile.name() + ": " + Num(profile.activations()) +
         " activation(s), " + Num(profile.total_iterations()) +
         " iteration(s), " + Num(profile.total_inserted()) +
         " tuple(s) inserted, " + Num(profile.total_duplicates()) +
         " duplicate(s) rejected\n";
  uint64_t os_rel = profile.os_subgoals_released.load(std::memory_order_relaxed);
  uint64_t os_col = profile.os_collapses.load(std::memory_order_relaxed);
  if (os_rel > 0 || os_col > 0) {
    out += "  ordered search: " + Num(os_rel) + " subgoal(s) released, " +
           Num(os_col) + " context collapse(s)\n";
  }

  // Per-rule table. Column widths fit the widest cell.
  size_t nrules = profile.rule_count();
  if (nrules > 0) {
    struct Row {
      std::string cells[6];
      std::string text;
    };
    std::vector<Row> rows;
    const char* headers[6] = {"rule", "apps", "probes", "solutions",
                              "derived", "dups"};
    size_t width[6];
    for (int c = 0; c < 6; ++c) width[c] = std::string(headers[c]).size();
    for (size_t i = 0; i < nrules; ++i) {
      const RuleStats& r = profile.rule(i);
      Row row;
      row.cells[0] = "r" + Num(i);
      row.cells[1] = Num(r.applications.load(std::memory_order_relaxed));
      row.cells[2] = Num(r.probes.load(std::memory_order_relaxed));
      row.cells[3] = Num(r.solutions.load(std::memory_order_relaxed));
      row.cells[4] = Num(r.derived.load(std::memory_order_relaxed));
      row.cells[5] = Num(r.duplicates());
      row.text = profile.rule_text(i);
      for (int c = 0; c < 6; ++c) {
        width[c] = std::max(width[c], row.cells[c].size());
      }
      rows.push_back(std::move(row));
    }
    out += "  ";
    for (int c = 0; c < 6; ++c) {
      out += (c == 0 ? Pad(headers[c], width[c])
                     : PadLeft(headers[c], width[c])) + "  ";
    }
    out += "\n";
    for (const Row& row : rows) {
      out += "  ";
      for (int c = 0; c < 6; ++c) {
        out += (c == 0 ? Pad(row.cells[c], width[c])
                       : PadLeft(row.cells[c], width[c])) + "  ";
      }
      if (!row.text.empty()) out += row.text;
      out += "\n";
    }
  }

  // Per-iteration log: delta sizes and wall time, the paper's primary
  // signal for diagnosing slow recursive modules.
  std::vector<IterationStats> iters = profile.iterations();
  if (!iters.empty() && opts.max_iterations > 0) {
    out += "  iterations (scc:iter delta solutions wall_ms";
    bool any_workers = false;
    for (const IterationStats& it : iters) {
      if (!it.worker_ns.empty()) any_workers = true;
    }
    if (any_workers) out += " [worker_ms...]";
    out += "):\n";
    size_t shown = std::min(iters.size(), opts.max_iterations);
    for (size_t i = 0; i < shown; ++i) {
      const IterationStats& it = iters[i];
      out += "    " + Num(it.scc) + ":" + Num(i) + "  delta=" +
             Num(it.inserts) + " sols=" + Num(it.solutions) + " wall=" +
             Millis(it.wall_ns) + "ms";
      if (!it.worker_ns.empty()) {
        out += " workers=[";
        for (size_t w = 0; w < it.worker_ns.size(); ++w) {
          if (w > 0) out += " ";
          out += Millis(it.worker_ns[w]);
        }
        out += "]ms";
      }
      out += "\n";
    }
    if (iters.size() > shown) {
      out += "    ... " + Num(iters.size() - shown) + " more iteration(s)\n";
    }
    if (profile.total_iterations() > iters.size()) {
      out += "    (log capped; " + Num(profile.total_iterations()) +
             " iterations total)\n";
    }
  }
  return out;
}

std::string RenderReport(const StatsRegistry& registry,
                         const ReportOptions& opts) {
  std::string out = "=== CORAL evaluation profile ===\n";
  std::vector<const ModuleProfile*> mods = registry.profiles();
  if (mods.empty()) {
    out += "(no profiled evaluations; enable with @profile or "
           "Database::set_profiling)\n";
    return out;
  }
  for (const ModuleProfile* m : mods) {
    out += RenderModuleProfile(*m, opts);
  }
  return out;
}

}  // namespace coral::obs
