// Copyright (c) 1993-style CORAL reproduction authors.
// Observability for the EXODUS-substitute storage layer: I/O hardening
// counters (EINTR retries, short-transfer continuations, transient-error
// retries), fault-injection bookkeeping, and a structured log of crash
// recovery events. Unlike evaluation statistics (stats.h), which hang off
// a Database, these are process-wide: the storage layer runs below any
// Database and its failure paths must be observable even when opening the
// database itself fails. Counters are relaxed atomics; the event log is
// mutex-guarded and bounded.

#ifndef CORAL_OBS_STORAGE_METRICS_H_
#define CORAL_OBS_STORAGE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/sync.h"

namespace coral::obs {

/// One notable event from WAL recovery or degraded-mode handling, in the
/// order it happened. `count` is event-specific (pages restored, bytes
/// truncated, ...).
struct RecoveryEvent {
  std::string what;    // "recover.start", "recover.torn_tail", ...
  std::string detail;  // human-readable context (path, txn, ...)
  uint64_t count = 0;

  /// One-line JSON object, same single-line idiom as obs::TraceEvent.
  std::string ToJson() const;
};

class StorageMetrics {
 public:
  static StorageMetrics& Instance();

  StorageMetrics(const StorageMetrics&) = delete;
  StorageMetrics& operator=(const StorageMetrics&) = delete;

  // ---- I/O hardening ----
  std::atomic<uint64_t> eintr_retries{0};        // write/read resumed after EINTR
  std::atomic<uint64_t> short_transfers{0};      // partial write/read continued
  std::atomic<uint64_t> transient_retries{0};    // bounded retry of EAGAIN-class errors
  std::atomic<uint64_t> dir_fsyncs{0};           // parent-directory fsyncs after create

  // ---- fault injection ----
  std::atomic<uint64_t> faults_injected{0};      // decisions that fired
  std::atomic<uint64_t> crashes_simulated{0};    // persistence freezes triggered

  // ---- write-ahead log ----
  std::atomic<uint64_t> wal_records_appended{0};
  std::atomic<uint64_t> wal_bytes_appended{0};
  std::atomic<uint64_t> wal_append_truncations{0};  // failed append rolled back

  // ---- recovery ----
  std::atomic<uint64_t> recoveries_run{0};
  std::atomic<uint64_t> recovered_pages_restored{0};
  std::atomic<uint64_t> recovered_txns_undone{0};
  std::atomic<uint64_t> torn_tails_truncated{0};
  std::atomic<uint64_t> corrupt_records_dropped{0};
  std::atomic<uint64_t> old_format_logs_read{0};
  std::atomic<uint64_t> read_only_degradations{0};

  /// Appends to the bounded recovery event log (oldest events win).
  void RecordEvent(std::string what, std::string detail, uint64_t count = 0);
  std::vector<RecoveryEvent> events() const;

  /// True iff an event with this `what` has been recorded since the last
  /// Reset (test convenience).
  bool SawEvent(const std::string& what) const;

  /// Zeroes every counter and clears the event log (tests only; the
  /// storage layer never resets its own metrics).
  void Reset();

  /// Renders a "=== CORAL storage metrics ===" section in the style of
  /// obs/report. Zero-valued counters are omitted.
  void Render(std::ostream& out) const;

  static constexpr size_t kMaxEvents = 1024;

 private:
  StorageMetrics() = default;

  mutable Mutex mu_{kRankStorageMetrics};  // guards events_ only
  std::vector<RecoveryEvent> events_ CORAL_GUARDED_BY(mu_);
};

}  // namespace coral::obs

#endif  // CORAL_OBS_STORAGE_METRICS_H_
