// Copyright (c) 1993-style CORAL reproduction authors.
// Evaluation statistics (paper §6, §8: the profiling mode users tune
// recursive programs with; LDL++ and Brass/Stephan credit rule-level
// application counts and delta sizes as the primary cost signal).
//
// A StatsRegistry is owned by the Database and keyed by module name, so
// counts aggregate across activations (a non-save module creates a fresh
// MaterializedInstance per call). The evaluation engines hold a raw
// ModuleProfile* that is nullptr unless profiling is on — every hook is
// a single pointer test when disabled. Counters written from parallel
// fixpoint workers are relaxed atomics: each worker owns a disjoint
// partition of the work, so sums are exact and thread-count invariant;
// only ordering, never the totals, depends on the schedule.

#ifndef CORAL_OBS_STATS_H_
#define CORAL_OBS_STATS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/util/sync.h"

namespace coral::obs {

/// Counters for one rule of a module (indexed by the rule's position in
/// the module's rule list). `applications`, `inserted` are written by the
/// evaluation driver thread; `solutions` and `probes` also by fixpoint
/// workers (one relaxed add per rule application, not per tuple).
///
/// Thread-count invariant (exact at any worker count): applications,
/// solutions, derived, inserted — and therefore duplicates(). `probes`
/// counts get-next-tuple calls on body goal sources, which depends on how
/// scans are partitioned across workers; it is exact but only comparable
/// between runs at the same thread count (like wall time).
struct RuleStats {
  std::atomic<uint64_t> applications{0};  // semi-naive version evaluations
  std::atomic<uint64_t> probes{0};        // goal-source get-next calls
  std::atomic<uint64_t> solutions{0};     // body solutions enumerated
  std::atomic<uint64_t> derived{0};       // head tuples produced
  std::atomic<uint64_t> inserted{0};      // new tuples after dup checks

  /// Head tuples rejected as duplicates (or merged by an aggregate
  /// selection): derived - inserted.
  uint64_t duplicates() const {
    uint64_t d = derived.load(std::memory_order_relaxed);
    uint64_t i = inserted.load(std::memory_order_relaxed);
    return d >= i ? d - i : 0;
  }
};

/// One fixpoint iteration of one SCC: the delta size (new tuples), the
/// solutions enumerated, wall time, and per-worker busy time under the
/// parallel engine (worker 0 is the calling thread).
struct IterationStats {
  uint32_t scc = 0;
  uint64_t inserts = 0;    // delta size: tuples new this iteration
  uint64_t solutions = 0;  // body solutions enumerated this iteration
  uint64_t wall_ns = 0;
  std::vector<uint64_t> worker_ns;  // empty for the sequential engine
};

/// All statistics recorded for one module, aggregated across activations.
/// Rule slots are created up front (EnsureRules) by the single-threaded
/// Init of an activation; after that, rule(i) is lock-free.
class ModuleProfile {
 public:
  explicit ModuleProfile(std::string module_name)
      : name_(std::move(module_name)) {}
  ModuleProfile(const ModuleProfile&) = delete;
  ModuleProfile& operator=(const ModuleProfile&) = delete;

  const std::string& name() const { return name_; }

  /// Grows the rule table to `n` slots; `text_of(i)` supplies a printable
  /// rule for the report (stored once). Single-threaded (module Init).
  template <typename TextFn>
  void EnsureRules(size_t n, TextFn text_of) {
    MutexLock lock(&mu_);
    while (rules_.size() < n) {
      rule_texts_.push_back(text_of(rules_.size()));
      rules_.emplace_back();
    }
  }

  size_t rule_count() const {
    MutexLock lock(&mu_);
    return rules_.size();
  }
  /// Valid for any index < rule_count(); the deque never shrinks, so the
  /// reference stays stable for the registry's lifetime. Lock-free on
  /// purpose: workers bump these counters once per rule application, and
  /// slot growth (EnsureRules) happens only in the single-threaded Init
  /// that happens-before any worker batch of the activation.
  RuleStats& rule(size_t i)
      CORAL_TS_UNSAFE("deque references are stable and slots are created "
                      "before workers start; see docs/CONCURRENCY.md") {
    return rules_[i];
  }
  const RuleStats& rule(size_t i) const
      CORAL_TS_UNSAFE("same invariant as the non-const overload") {
    return rules_[i];
  }
  std::string rule_text(size_t i) const {
    MutexLock lock(&mu_);
    return i < rule_texts_.size() ? rule_texts_[i] : std::string();
  }

  /// Records one finished fixpoint iteration (driver thread only). The
  /// per-iteration log is capped; totals keep counting past the cap.
  void RecordIteration(IterationStats it);
  /// Copy of the per-iteration log (up to the cap).
  std::vector<IterationStats> iterations() const {
    MutexLock lock(&mu_);
    return iterations_;
  }
  uint64_t total_iterations() const {
    return total_iterations_.load(std::memory_order_relaxed);
  }

  void RecordActivation() {
    activations_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t activations() const {
    return activations_.load(std::memory_order_relaxed);
  }

  // Ordered Search context bookkeeping (paper §5.4.1): subgoals made
  // available, and stack collapses on mutually dependent subgoals.
  std::atomic<uint64_t> os_subgoals_released{0};
  std::atomic<uint64_t> os_collapses{0};

  /// Module-level totals summed over rules.
  uint64_t total_solutions() const;
  uint64_t total_derived() const;
  uint64_t total_inserted() const;
  uint64_t total_duplicates() const;

  /// Per-iteration log cap: keeps reports and memory bounded on long
  /// fixpoints; RecordIteration keeps counting past it.
  static constexpr size_t kMaxIterationLog = 4096;

 private:
  std::string name_;
  /// Guards growth + iteration log, not the atomic counters.
  mutable Mutex mu_{kRankModuleProfile};
  std::deque<RuleStats> rules_ CORAL_GUARDED_BY(mu_);
  std::vector<std::string> rule_texts_ CORAL_GUARDED_BY(mu_);
  std::vector<IterationStats> iterations_ CORAL_GUARDED_BY(mu_);
  std::atomic<uint64_t> total_iterations_{0};
  std::atomic<uint64_t> activations_{0};
};

/// Database-wide counters for the incremental update path
/// (Database::ApplyUpdate, docs/MAINTENANCE.md). Relaxed atomics: updates
/// serialize on the commit lock, so sums are exact; atomics only make
/// concurrent readers (ProfileReport) race-free.
struct MaintenanceCounters {
  std::atomic<uint64_t> updates{0};      // ApplyUpdate batches committed
  std::atomic<uint64_t> maintained{0};   // saved instances updated in place
  std::atomic<uint64_t> invalidated{0};  // saved instances dropped
  std::atomic<uint64_t> derived_inserted{0};
  std::atomic<uint64_t> derived_deleted{0};
  std::atomic<uint64_t> rederived{0};  // DRed candidates that survived
};

/// Registry of per-module profiles, owned by the Database. GetOrCreate is
/// called from single-threaded compilation/Init paths; profile pointers
/// stay valid until Clear() or registry destruction.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  ModuleProfile* GetOrCreate(const std::string& module_name);
  /// nullptr when the module has never been profiled.
  const ModuleProfile* Find(const std::string& module_name) const;
  /// Profiles in first-profiled order.
  std::vector<const ModuleProfile*> profiles() const;
  bool empty() const;
  /// Drops all recorded statistics (invalidates ModuleProfile pointers —
  /// callers must not hold any across Clear; the engine re-fetches at
  /// every activation).
  void Clear();

 private:
  mutable Mutex mu_{kRankStatsRegistry};
  std::deque<ModuleProfile> profiles_ CORAL_GUARDED_BY(mu_);
  std::vector<ModuleProfile*> order_ CORAL_GUARDED_BY(mu_);
};

}  // namespace coral::obs

#endif  // CORAL_OBS_STATS_H_
