#include "src/obs/storage_metrics.h"

#include <cstdio>

namespace coral::obs {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string RecoveryEvent::ToJson() const {
  std::string out = "{\"ev\":";
  AppendEscaped(what, &out);
  if (!detail.empty()) {
    out += ",\"detail\":";
    AppendEscaped(detail, &out);
  }
  if (count != 0) {
    out += ",\"count\":" + std::to_string(count);
  }
  out.push_back('}');
  return out;
}

StorageMetrics& StorageMetrics::Instance() {
  static StorageMetrics* metrics = new StorageMetrics();
  return *metrics;
}

void StorageMetrics::RecordEvent(std::string what, std::string detail,
                                 uint64_t count) {
  MutexLock lock(&mu_);
  if (events_.size() >= kMaxEvents) return;
  events_.push_back(
      RecoveryEvent{std::move(what), std::move(detail), count});
}

std::vector<RecoveryEvent> StorageMetrics::events() const {
  MutexLock lock(&mu_);
  return events_;
}

bool StorageMetrics::SawEvent(const std::string& what) const {
  MutexLock lock(&mu_);
  for (const RecoveryEvent& e : events_) {
    if (e.what == what) return true;
  }
  return false;
}

void StorageMetrics::Reset() {
  eintr_retries = 0;
  short_transfers = 0;
  transient_retries = 0;
  dir_fsyncs = 0;
  faults_injected = 0;
  crashes_simulated = 0;
  wal_records_appended = 0;
  wal_bytes_appended = 0;
  wal_append_truncations = 0;
  recoveries_run = 0;
  recovered_pages_restored = 0;
  recovered_txns_undone = 0;
  torn_tails_truncated = 0;
  corrupt_records_dropped = 0;
  old_format_logs_read = 0;
  read_only_degradations = 0;
  MutexLock lock(&mu_);
  events_.clear();
}

void StorageMetrics::Render(std::ostream& out) const {
  out << "=== CORAL storage metrics ===\n";
  auto row = [&out](const char* name, const std::atomic<uint64_t>& v) {
    uint64_t n = v.load(std::memory_order_relaxed);
    if (n != 0) out << "  " << name << ": " << n << "\n";
  };
  row("eintr_retries", eintr_retries);
  row("short_transfers", short_transfers);
  row("transient_retries", transient_retries);
  row("dir_fsyncs", dir_fsyncs);
  row("faults_injected", faults_injected);
  row("crashes_simulated", crashes_simulated);
  row("wal_records_appended", wal_records_appended);
  row("wal_bytes_appended", wal_bytes_appended);
  row("wal_append_truncations", wal_append_truncations);
  row("recoveries_run", recoveries_run);
  row("recovered_pages_restored", recovered_pages_restored);
  row("recovered_txns_undone", recovered_txns_undone);
  row("torn_tails_truncated", torn_tails_truncated);
  row("corrupt_records_dropped", corrupt_records_dropped);
  row("old_format_logs_read", old_format_logs_read);
  row("read_only_degradations", read_only_degradations);
  std::vector<RecoveryEvent> evs = events();
  for (const RecoveryEvent& e : evs) {
    out << "  " << e.ToJson() << "\n";
  }
}

}  // namespace coral::obs
