#include "src/obs/stats.h"

namespace coral::obs {

void ModuleProfile::RecordIteration(IterationStats it) {
  total_iterations_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  if (iterations_.size() < kMaxIterationLog) {
    iterations_.push_back(std::move(it));
  }
}

uint64_t ModuleProfile::total_solutions() const {
  MutexLock lock(&mu_);
  uint64_t sum = 0;
  for (const RuleStats& r : rules_) {
    sum += r.solutions.load(std::memory_order_relaxed);
  }
  return sum;
}

uint64_t ModuleProfile::total_derived() const {
  MutexLock lock(&mu_);
  uint64_t sum = 0;
  for (const RuleStats& r : rules_) {
    sum += r.derived.load(std::memory_order_relaxed);
  }
  return sum;
}

uint64_t ModuleProfile::total_inserted() const {
  MutexLock lock(&mu_);
  uint64_t sum = 0;
  for (const RuleStats& r : rules_) {
    sum += r.inserted.load(std::memory_order_relaxed);
  }
  return sum;
}

uint64_t ModuleProfile::total_duplicates() const {
  MutexLock lock(&mu_);
  uint64_t sum = 0;
  for (const RuleStats& r : rules_) {
    sum += r.duplicates();
  }
  return sum;
}

ModuleProfile* StatsRegistry::GetOrCreate(const std::string& module_name) {
  MutexLock lock(&mu_);
  for (ModuleProfile* p : order_) {
    if (p->name() == module_name) return p;
  }
  profiles_.emplace_back(module_name);
  order_.push_back(&profiles_.back());
  return order_.back();
}

const ModuleProfile* StatsRegistry::Find(
    const std::string& module_name) const {
  MutexLock lock(&mu_);
  for (const ModuleProfile* p : order_) {
    if (p->name() == module_name) return p;
  }
  return nullptr;
}

std::vector<const ModuleProfile*> StatsRegistry::profiles() const {
  MutexLock lock(&mu_);
  return std::vector<const ModuleProfile*>(order_.begin(), order_.end());
}

bool StatsRegistry::empty() const {
  MutexLock lock(&mu_);
  return order_.empty();
}

void StatsRegistry::Clear() {
  MutexLock lock(&mu_);
  order_.clear();
  profiles_.clear();
}

}  // namespace coral::obs
