// Copyright (c) 1993-style CORAL reproduction authors.
// Request-level metrics for the query server: counters and a log2
// latency histogram, all lock-free (relaxed atomics — metrics tolerate
// small cross-counter skew). Exposed over the wire as the `stats` op and
// rendered into the /stats JSON document (docs/SERVER.md).

#ifndef CORAL_OBS_SERVER_METRICS_H_
#define CORAL_OBS_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace coral::obs {

class ServerMetrics {
 public:
  void RecordQuery(int64_t latency_ns) {
    queries_.fetch_add(1, std::memory_order_relaxed);
    RecordLatency(latency_ns);
  }
  void RecordConsult() { consults_.fetch_add(1, std::memory_order_relaxed); }
  void RecordError() { errors_.fetch_add(1, std::memory_order_relaxed); }
  void RecordTimeout() { timeouts_.fetch_add(1, std::memory_order_relaxed); }
  void RecordShed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void SessionOpened() {
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    open_sessions_.fetch_add(1, std::memory_order_relaxed);
  }
  void SessionClosed() {
    open_sessions_.fetch_sub(1, std::memory_order_relaxed);
  }

  uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  uint64_t consults() const {
    return consults_.load(std::memory_order_relaxed);
  }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  int64_t open_sessions() const {
    return open_sessions_.load(std::memory_order_relaxed);
  }
  uint64_t sessions_opened() const {
    return sessions_opened_.load(std::memory_order_relaxed);
  }

  /// Latency quantile estimate in milliseconds from the log2 histogram
  /// (upper bucket bound, so estimates are conservative). `q` in [0, 1].
  double LatencyQuantileMs(double q) const;

  /// The /stats payload: a flat JSON object of all counters plus p50/p99.
  std::string ToJson() const;

 private:
  static constexpr int kBuckets = 64;

  void RecordLatency(int64_t ns) {
    if (ns < 1) ns = 1;
    int bucket = 63 - __builtin_clzll(static_cast<uint64_t>(ns));
    latency_[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> consults_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<int64_t> open_sessions_{0};
  std::atomic<uint64_t> latency_[kBuckets] = {};
};

}  // namespace coral::obs

#endif  // CORAL_OBS_SERVER_METRICS_H_
