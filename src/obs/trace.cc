#include "src/obs/trace.h"

#include <cctype>
#include <cstdlib>

namespace coral::obs {
namespace {

// A minimal JSON writer/reader for the flat TraceEvent schema. We keep
// this local instead of pulling in a JSON library: events have only
// string and unsigned fields, one object per line.

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendField(const char* key, const std::string& value, bool* first,
                 std::string* out) {
  if (value.empty()) return;
  *out += *first ? "" : ",";
  *first = false;
  AppendEscaped(key, out);
  out->push_back(':');
  AppendEscaped(value, out);
}

void AppendField(const char* key, uint64_t value, bool* first,
                 std::string* out) {
  *out += *first ? "" : ",";
  *first = false;
  AppendEscaped(key, out);
  out->push_back(':');
  *out += std::to_string(value);
}

/// Cursor over one JSON line; only the subset ToJson emits.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& s) : s_(s) {}

  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }

  bool ReadString(std::string* out) {
    SkipSpace();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = static_cast<unsigned>(
              std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // ToJson only emits \u00xx for control bytes.
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: return false;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ReadNumber(uint64_t* out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::strtoull(s_.substr(start, pos_ - start).c_str(), nullptr, 10);
    return true;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kModuleCall: return "module_call";
    case TraceKind::kModuleDone: return "module_done";
    case TraceKind::kIterBegin: return "iter_begin";
    case TraceKind::kIterEnd: return "iter_end";
    case TraceKind::kRuleFire: return "rule_fire";
    case TraceKind::kInsert: return "insert";
  }
  return "unknown";
}

std::string TraceEvent::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendField("ev", std::string(TraceKindName(kind)), &first, &out);
  AppendField("module", module, &first, &out);
  AppendField("pred", pred, &first, &out);
  AppendField("detail", detail, &first, &out);
  if (scc >= 0) AppendField("scc", static_cast<uint64_t>(scc), &first, &out);
  if (rule >= 0) {
    AppendField("rule", static_cast<uint64_t>(rule), &first, &out);
  }
  if (iter != 0) AppendField("iter", iter, &first, &out);
  if (count != 0) AppendField("count", count, &first, &out);
  if (ns != 0) AppendField("ns", ns, &first, &out);
  out.push_back('}');
  return out;
}

StatusOr<TraceEvent> TraceEvent::FromJson(const std::string& line) {
  JsonCursor cur(line);
  if (!cur.Consume('{')) {
    return Status::InvalidArgument("trace line is not a JSON object: " +
                                   line);
  }
  TraceEvent ev;
  bool have_kind = false;
  bool first = true;
  while (true) {
    if (cur.Consume('}')) break;
    if (!first && !cur.Consume(',')) {
      return Status::InvalidArgument("expected ',' or '}' in trace line: " +
                                     line);
    }
    first = false;
    std::string key;
    if (!cur.ReadString(&key) || !cur.Consume(':')) {
      return Status::InvalidArgument("bad key in trace line: " + line);
    }
    if (key == "ev" || key == "module" || key == "pred" || key == "detail") {
      std::string value;
      if (!cur.ReadString(&value)) {
        return Status::InvalidArgument("bad string value for \"" + key +
                                       "\": " + line);
      }
      if (key == "module") {
        ev.module = std::move(value);
      } else if (key == "pred") {
        ev.pred = std::move(value);
      } else if (key == "detail") {
        ev.detail = std::move(value);
      } else {
        have_kind = true;
        if (value == "module_call") ev.kind = TraceKind::kModuleCall;
        else if (value == "module_done") ev.kind = TraceKind::kModuleDone;
        else if (value == "iter_begin") ev.kind = TraceKind::kIterBegin;
        else if (value == "iter_end") ev.kind = TraceKind::kIterEnd;
        else if (value == "rule_fire") ev.kind = TraceKind::kRuleFire;
        else if (value == "insert") ev.kind = TraceKind::kInsert;
        else have_kind = false;
      }
    } else {
      uint64_t value = 0;
      if (!cur.ReadNumber(&value)) {
        return Status::InvalidArgument("bad numeric value for \"" + key +
                                       "\": " + line);
      }
      if (key == "scc") ev.scc = static_cast<int32_t>(value);
      else if (key == "rule") ev.rule = static_cast<int32_t>(value);
      else if (key == "iter") ev.iter = value;
      else if (key == "count") ev.count = value;
      else if (key == "ns") ev.ns = value;
      // Unknown numeric keys are ignored (forward compatibility).
    }
  }
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing content in trace line: " + line);
  }
  if (!have_kind) {
    return Status::InvalidArgument("missing or unknown \"ev\" kind: " + line);
  }
  return ev;
}

}  // namespace coral::obs
