// Human-readable rendering of recorded evaluation statistics — the
// profiling report surfaced by Database::ProfileReport, appended to
// @explain output, and printed by tools/coral_prof and the benches'
// --profile mode.

#ifndef CORAL_OBS_REPORT_H_
#define CORAL_OBS_REPORT_H_

#include <string>

#include "src/obs/stats.h"

namespace coral::obs {

/// Per-iteration detail is included up to `max_iterations` rows per
/// module (0 = totals only).
struct ReportOptions {
  size_t max_iterations = 32;
};

/// Multi-line table for a single module's profile.
std::string RenderModuleProfile(const ModuleProfile& profile,
                                const ReportOptions& opts = {});

/// Full report over every profiled module, in first-profiled order.
/// Empty registry renders an explanatory one-liner.
std::string RenderReport(const StatsRegistry& registry,
                         const ReportOptions& opts = {});

}  // namespace coral::obs

#endif  // CORAL_OBS_REPORT_H_
