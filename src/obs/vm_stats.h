// Copyright (c) 1993-style CORAL reproduction authors.
// Per-opcode counters for the join bytecode VM (docs/VM.md). One instance
// lives in the Database; workers accumulate into plain locals during a
// rule application and flush once per application, so the atomics are off
// the per-tuple hot path.

#ifndef CORAL_OBS_VM_STATS_H_
#define CORAL_OBS_VM_STATS_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace coral::obs {

struct VmCounters {
  /// Rule applications executed by the VM (kOk and aborted alike).
  std::atomic<uint64_t> applications{0};
  /// Applications aborted to the interpreter (non-ground candidate).
  std::atomic<uint64_t> runtime_fallbacks{0};
  /// PROBE_INDEX executions that degraded to a full window scan because
  /// the planned argument index is absent on the bound relation.
  std::atomic<uint64_t> probe_scan_fallbacks{0};

  // Static verifier outcomes (src/vm/verifier.h), counted at form
  // compile time — why a rule version runs interpreted.
  /// Programs that passed the whole-plan audit.
  std::atomic<uint64_t> programs_verified{0};
  /// Programs the verifier/audit rejected (forced interpreter fallback).
  std::atomic<uint64_t> verifier_rejected{0};
  /// Warning findings (CRL302 probe-without-index, CRL303 always-fail).
  std::atomic<uint64_t> verifier_warnings{0};
  /// Rule versions the compiler skipped for shape reasons (aggregates,
  /// negation, builtins the VM lacks, ...).
  std::atomic<uint64_t> compile_skips{0};
  /// Compiled programs that failed to bind at activation time (head or
  /// body relation shape unsupported) and ran interpreted.
  std::atomic<uint64_t> bind_fallbacks{0};

  // Per-opcode execution counts.
  std::atomic<uint64_t> scan_full{0};
  std::atomic<uint64_t> scan_delta{0};
  std::atomic<uint64_t> probe_index{0};
  std::atomic<uint64_t> unify_arg{0};
  std::atomic<uint64_t> test_builtin{0};
  std::atomic<uint64_t> project{0};
  std::atomic<uint64_t> insert{0};

  void Reset() {
    for (std::atomic<uint64_t>* c :
         {&applications, &runtime_fallbacks, &probe_scan_fallbacks,
          &programs_verified, &verifier_rejected, &verifier_warnings,
          &compile_skips, &bind_fallbacks, &scan_full, &scan_delta,
          &probe_index, &unify_arg, &test_builtin, &project, &insert}) {
      c->store(0, std::memory_order_relaxed);
    }
  }
};

inline std::string RenderVmCounters(const VmCounters& c) {
  auto v = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  std::ostringstream os;
  os << "=== CORAL VM counters ===\n"
     << "applications:         " << v(c.applications) << "\n"
     << "runtime fallbacks:    " << v(c.runtime_fallbacks) << "\n"
     << "probe->scan degrades: " << v(c.probe_scan_fallbacks) << "\n"
     << "programs verified:    " << v(c.programs_verified) << "\n"
     << "verifier rejected:    " << v(c.verifier_rejected) << "\n"
     << "verifier warnings:    " << v(c.verifier_warnings) << "\n"
     << "compile skips:        " << v(c.compile_skips) << "\n"
     << "bind fallbacks:       " << v(c.bind_fallbacks) << "\n"
     << "SCAN_FULL:            " << v(c.scan_full) << "\n"
     << "SCAN_DELTA:           " << v(c.scan_delta) << "\n"
     << "PROBE_INDEX:          " << v(c.probe_index) << "\n"
     << "UNIFY_ARG:            " << v(c.unify_arg) << "\n"
     << "TEST_BUILTIN:         " << v(c.test_builtin) << "\n"
     << "PROJECT:              " << v(c.project) << "\n"
     << "INSERT:               " << v(c.insert) << "\n";
  return os.str();
}

}  // namespace coral::obs

#endif  // CORAL_OBS_VM_STATS_H_
