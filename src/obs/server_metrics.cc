#include "src/obs/server_metrics.h"

#include <cstdio>

namespace coral::obs {

double ServerMetrics::LatencyQuantileMs(double q) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = latency_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen > rank) {
      // Upper bound of bucket i covers [2^i, 2^(i+1)) ns.
      double upper_ns = static_cast<double>(1ULL << (i < 63 ? i + 1 : 63));
      return upper_ns / 1e6;
    }
  }
  return 0.0;
}

std::string ServerMetrics::ToJson() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"queries\":%llu,\"consults\":%llu,\"errors\":%llu,"
      "\"timeouts\":%llu,\"shed\":%llu,\"sessions_opened\":%llu,"
      "\"open_sessions\":%lld,\"latency_p50_ms\":%.3f,"
      "\"latency_p99_ms\":%.3f}",
      static_cast<unsigned long long>(queries()),
      static_cast<unsigned long long>(consults()),
      static_cast<unsigned long long>(errors()),
      static_cast<unsigned long long>(timeouts()),
      static_cast<unsigned long long>(shed()),
      static_cast<unsigned long long>(sessions_opened()),
      static_cast<long long>(open_sessions()), LatencyQuantileMs(0.5),
      LatencyQuantileMs(0.99));
  return buf;
}

}  // namespace coral::obs
