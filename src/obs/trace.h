// Structured trace events for evaluation: iteration begin/end, rule
// fire, relation insert, module call/done. Events are emitted from
// serial points of the engine (the fixpoint driver thread and the
// module manager), so a TraceSink never sees concurrent Emit calls and
// the event order is deterministic for a given program and thread
// count. The JSONL form is one self-contained JSON object per line,
// parseable by TraceEvent::FromJson (round-trip tested in api_test).

#ifndef CORAL_OBS_TRACE_H_
#define CORAL_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace coral::obs {

enum class TraceKind {
  kModuleCall,  // a query activated a module
  kModuleDone,  // the activation's fixpoint (or scan) completed
  kIterBegin,   // one SCC fixpoint iteration starts
  kIterEnd,     // ... ends; `count` = tuples new this iteration
  kRuleFire,    // one rule version applied; `count` = body solutions
  kInsert,      // a tuple became visible in a derived relation
};

const char* TraceKindName(TraceKind kind);

/// One trace record. Fields not meaningful for a given kind keep their
/// defaults and are omitted from the JSON form.
struct TraceEvent {
  TraceKind kind = TraceKind::kModuleCall;
  std::string module;  // module name ("" for workspace facts)
  std::string pred;    // predicate (kInsert) or exported query form
  std::string detail;  // printable tuple / goal, when cheap to render
  int32_t scc = -1;    // SCC index within the module's plan
  int32_t rule = -1;   // rule index within the module
  uint64_t iter = 0;   // global iteration number within the activation
  uint64_t count = 0;  // kind-specific cardinality (see TraceKind)
  uint64_t ns = 0;     // duration (kIterEnd, kModuleDone)

  /// Single-line JSON object, no trailing newline.
  std::string ToJson() const;
  /// Parses one line as produced by ToJson. Unknown keys are ignored;
  /// a malformed line or unknown "ev" is kInvalidArgument.
  static StatusOr<TraceEvent> FromJson(const std::string& line);
};

/// Receives events in evaluation order from serial engine code; Emit
/// implementations need no internal locking.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceEvent& event) = 0;
};

/// Writes one JSON object per event to an unowned stream.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream* out) : out_(out) {}
  void Emit(const TraceEvent& event) override {
    *out_ << event.ToJson() << '\n';
  }

 private:
  std::ostream* out_;
};

/// Buffers events in memory; handy for tests and coral_prof.
class CollectingTraceSink : public TraceSink {
 public:
  void Emit(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace coral::obs

#endif  // CORAL_OBS_TRACE_H_
