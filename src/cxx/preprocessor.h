// Copyright (c) 1993-style CORAL reproduction authors.
// The CORAL/C++ preprocessor (paper §6.1–§6.2): C++ source with embedded
// CORAL command blocks and _coral_export declarations is translated into
// plain C++ before compilation. Exactly as the paper says, it "operates
// purely at a syntactic level" — no type checking, no verification that
// exported functions exist.
//
// Input syntax:
//
//   \coral{                      embedded commands (paper §6.1): any text
//     anc(X, Y) :- par(X, Y).    legal at the interactive interface.
//     ?- anc(tom, D).            Expands to coral__.Command(R"(...)")
//   }                            against the ambient `coral::Coral coral__`.
//
//   _coral_export(pred, arity);  declares that the C++ function `pred`
//                                (a ComputedPredicateFn) defines the
//                                predicate pred/arity (paper §6.2).
//                                All exports are gathered into
//                                coral_register_exports(coral::Coral&).

#ifndef CORAL_CXX_PREPROCESSOR_H_
#define CORAL_CXX_PREPROCESSOR_H_

#include <string>

#include "src/util/status.h"

namespace coral {

/// Translates one source text. The result is self-contained C++ (plus a
/// #include of the Coral facade header prepended when any construct was
/// expanded).
StatusOr<std::string> PreprocessCoralCpp(const std::string& source);

}  // namespace coral

#endif  // CORAL_CXX_PREPROCESSOR_H_
