// Copyright (c) 1993-style CORAL reproduction authors.
// C_ScanDesc (paper §6.1): "essentially a cursor over a relation" for
// imperative C++ code. Wraps any answer stream (base relation scan,
// module call, computed relation). Per the paper's interface restriction,
// non-ground answers are hidden by default: "variables cannot be returned
// as answers (the presence of non-ground terms is hidden at the
// interface)".

#ifndef CORAL_CXX_SCAN_DESC_H_
#define CORAL_CXX_SCAN_DESC_H_

#include <memory>

#include "src/rel/relation.h"

namespace coral {

class C_ScanDesc {
 public:
  C_ScanDesc() = default;
  C_ScanDesc(std::unique_ptr<TupleIterator> it, bool hide_non_ground = true)
      : it_(std::move(it)), hide_non_ground_(hide_non_ground) {}

  C_ScanDesc(C_ScanDesc&&) = default;
  C_ScanDesc& operator=(C_ScanDesc&&) = default;

  bool valid() const { return it_ != nullptr; }

  /// Next answer tuple; nullptr when exhausted (check status()).
  const Tuple* Next();

  /// Drains the scan into a vector (convenience).
  std::vector<const Tuple*> ToVector();

  /// Number of remaining answers (drains the scan).
  size_t Count();

  const Status& status() const;

 private:
  std::unique_ptr<TupleIterator> it_;
  bool hide_non_ground_ = true;
};

}  // namespace coral

#endif  // CORAL_CXX_SCAN_DESC_H_
