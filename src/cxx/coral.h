// Copyright (c) 1993-style CORAL reproduction authors.
// The CORAL/C++ interface (paper §6): imperative programs manipulate
// relations computed by declarative modules without breaking the relation
// abstraction, embed CORAL commands, construct and take apart terms and
// tuples, open scans (C_ScanDesc), and define new predicates in C++.

#ifndef CORAL_CXX_CORAL_H_
#define CORAL_CXX_CORAL_H_

#include <initializer_list>
#include <memory>
#include <string>

#include "src/core/database.h"
#include "src/cxx/computed_relation.h"
#include "src/cxx/scan_desc.h"

namespace coral {

/// The embedded-C++ facade over a CORAL database.
class Coral {
 public:
  /// A self-contained CORAL system (typical "main program in C++" mode).
  Coral() : owned_(std::make_unique<Database>()), db_(owned_.get()) {}
  /// Wraps an existing database without taking ownership.
  explicit Coral(Database* db) : db_(db) {}

  Database* db() { return db_; }
  TermFactory* factory() { return db_->factory(); }

  // ---- embedded CORAL commands (paper §6.1) ----
  //
  // All entry points return StatusOr<> uniformly; see docs/API.md for the
  // Status codes each can produce (kInvalidArgument for parse/semantic
  // errors, kNotFound for unknown predicates, kFailedPrecondition for
  // evaluation-order violations, kInternal for engine bugs).
  /// Executes any command sequence legal at the interactive interface:
  /// facts, modules, annotations, queries. Returns the printed output of
  /// the queries it contained.
  StatusOr<std::string> Command(const std::string& coral_text) {
    return db_->Run(coral_text);
  }
  /// Consults declarations only. Queries in the text are parsed but not
  /// executed; they are returned so the caller can run them (or ignore
  /// them) — the same convention as Database::Consult.
  StatusOr<std::vector<Query>> Consult(const std::string& coral_text) {
    return db_->Consult(coral_text);
  }
  /// Parses and evaluates a single query string like "?- path(1, X)."
  /// (the "?-" may be omitted).
  StatusOr<QueryResult> EvalQuery(const std::string& text) {
    return db_->EvalQuery(text);
  }

  // ---- static analysis ----
  /// Diagnostics the semantic analyzer produced for the most recent
  /// Command/Consult. Errors refuse the module (and surface as a failed
  /// Status); warnings accumulate here.
  const DiagnosticList& Diagnostics() const {
    return db_->last_diagnostics();
  }
  /// Warnings-as-errors for subsequent consults.
  void SetStrict(bool strict) { db_->set_strict(strict); }

  // ---- evaluation observability (docs/API.md) ----
  /// Globally enables per-rule/per-iteration statistics for subsequent
  /// evaluations, as if every module carried @profile.
  void SetProfiling(bool on) { db_->set_profiling(on); }
  /// The statistics registry (one ModuleProfile per profiled module).
  obs::StatsRegistry* Stats() { return db_->stats(); }
  /// Human-readable report over everything collected so far.
  std::string ProfileReport() const { return db_->ProfileReport(); }
  /// Drops all collected statistics (keeps profiling enabled/disabled).
  void ClearStats() { db_->ClearStats(); }
  /// Attaches a structured trace-event sink (nullptr detaches). The sink
  /// must outlive evaluation; events arrive on the evaluating thread.
  void SetTraceSink(obs::TraceSink* sink) { db_->set_trace_sink(sink); }

  // ---- argument construction (paper §6.1 class Arg) ----
  const Arg* Int(int64_t v) { return factory()->MakeInt(v); }
  const Arg* Double(double v) { return factory()->MakeDouble(v); }
  const Arg* String(std::string_view v) { return factory()->MakeString(v); }
  const Arg* Atom(std::string_view v) { return factory()->MakeAtom(v); }
  const Arg* Big(const BigInt& v) { return factory()->MakeBigInt(v); }
  const Arg* List(std::initializer_list<const Arg*> elems) {
    std::vector<const Arg*> v(elems);
    return factory()->MakeList(v);
  }
  const Arg* Functor(std::string_view name,
                     std::initializer_list<const Arg*> args) {
    std::vector<const Arg*> v(args);
    return factory()->MakeFunctor(name, v);
  }
  /// Parses a term from text (variables allowed).
  StatusOr<const Arg*> Term(const std::string& text);

  // ---- tuples and relation values (paper §6.1) ----
  const Tuple* MakeTuple(std::initializer_list<const Arg*> args) {
    std::vector<const Arg*> v(args);
    return factory()->MakeTuple(v);
  }

  /// The base relation for name/arity (created empty if absent).
  Relation* GetRelation(const std::string& name, uint32_t arity);

  /// Inserts a fact; creates the relation on first use.
  StatusOr<bool> Insert(const std::string& pred,
                        std::initializer_list<const Arg*> args);
  /// Deletes the stored facts subsumed by the given argument pattern.
  StatusOr<size_t> Delete(const std::string& pred,
                          std::initializer_list<const Arg*> args);

  // ---- scans (paper §6.1 C_ScanDesc) ----
  /// Opens a cursor over the answers to a single-literal goal, e.g.
  /// "path(1, X)". Resolves to a module export, a base relation or a
  /// computed relation. Non-ground answers are hidden (paper §6.1).
  StatusOr<C_ScanDesc> OpenScan(const std::string& goal);

  // ---- predicates defined in C++ (paper §6.2) ----
  /// Registers `fn` as the definition of pred/arity; declarative rules
  /// can then call it like any other predicate. Substitute for the
  /// paper's incremental .o loading (DESIGN.md §4).
  Status RegisterPredicate(const std::string& pred, uint32_t arity,
                           ComputedPredicateFn fn);

 private:
  std::unique_ptr<Database> owned_;
  Database* db_;
};

}  // namespace coral

#endif  // CORAL_CXX_CORAL_H_
