// Copyright (c) 1993-style CORAL reproduction authors.
// Relations computed by C++ functions (paper §6.2, §7.2): new predicates
// defined in extended C++ are used freely in declarative rules through
// the same get-next-tuple interface as stored relations. The paper loads
// compiled .o files into the running system; we substitute a registration
// API (DESIGN.md §4) — the language-level capability is identical.

#ifndef CORAL_CXX_COMPUTED_RELATION_H_
#define CORAL_CXX_COMPUTED_RELATION_H_

#include <functional>

#include "src/rel/relation.h"

namespace coral {

/// The C++ definition of a predicate: given the call's argument bindings
/// (one TermRef per column; unbound variables mean "free"), produce every
/// matching tuple. Return a non-OK status for unsupported binding
/// patterns (e.g. a generator that needs its first argument bound).
using ComputedPredicateFn = std::function<Status(
    std::span<const TermRef> args, TermFactory* factory,
    std::vector<const Tuple*>* out)>;

class ComputedRelation : public Relation {
 public:
  ComputedRelation(std::string name, uint32_t arity, TermFactory* factory,
                   ComputedPredicateFn fn)
      : Relation(std::move(name), arity),
        factory_(factory),
        fn_(std::move(fn)) {}

  /// Computed relations are not updatable.
  Status ValidateInsert(const Tuple*) const override {
    return Status::Unsupported("relation " + name() +
                               " is defined by C++ code and not updatable");
  }
  bool Contains(const Tuple* t) const override;
  size_t size() const override { return 0; }  // unknown / intensional

  std::unique_ptr<TupleIterator> ScanRange(Mark from, Mark to) const override;
  std::unique_ptr<TupleIterator> Select(std::span<const TermRef> pattern,
                                        Mark from, Mark to) const override;
  using Relation::Select;

  Mark Snapshot() override { return 1; }
  Mark CurrentMark() const override { return 1; }

 protected:
  void DoInsert(const Tuple*) override {
    CORAL_CHECK(false) << "insert into computed relation " << name();
  }
  bool DoDelete(const Tuple*) override { return false; }

 private:
  TermFactory* factory_;
  ComputedPredicateFn fn_;
};

}  // namespace coral

#endif  // CORAL_CXX_COMPUTED_RELATION_H_
