#include "src/cxx/computed_relation.h"

#include "src/data/unify.h"

namespace coral {

namespace {

/// Iterator over a computed result; carries the producer's status.
class ComputedIterator : public TupleIterator {
 public:
  ComputedIterator(std::vector<const Tuple*> tuples, Status status)
      : tuples_(std::move(tuples)), status_(std::move(status)) {}
  const Tuple* Next() override {
    return pos_ < tuples_.size() ? tuples_[pos_++] : nullptr;
  }
  const Status& status() const override { return status_; }

 private:
  std::vector<const Tuple*> tuples_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace

bool ComputedRelation::Contains(const Tuple* t) const {
  std::vector<TermRef> refs;
  refs.reserve(t->arity());
  BindEnv env(t->var_count());
  for (uint32_t i = 0; i < t->arity(); ++i) {
    refs.push_back({t->arg(i), &env});
  }
  std::vector<const Tuple*> out;
  Status st = fn_(refs, factory_, &out);
  if (!st.ok()) return false;
  for (const Tuple* cand : out) {
    if (cand == t || cand->Equals(*t)) return true;
  }
  return false;
}

std::unique_ptr<TupleIterator> ComputedRelation::ScanRange(Mark from,
                                                           Mark to) const {
  if (from > 0 || to == 0) return std::make_unique<EmptyIterator>();
  // All-free call.
  BindEnv env(arity());
  std::vector<TermRef> refs;
  for (uint32_t i = 0; i < arity(); ++i) {
    refs.push_back({factory_->CanonicalVar(i), &env});
  }
  std::vector<const Tuple*> out;
  Status st = fn_(refs, factory_, &out);
  return std::make_unique<ComputedIterator>(std::move(out), std::move(st));
}

std::unique_ptr<TupleIterator> ComputedRelation::Select(
    std::span<const TermRef> pattern, Mark from, Mark to) const {
  if (from > 0 || to == 0) return std::make_unique<EmptyIterator>();
  std::vector<const Tuple*> out;
  Status st = fn_(pattern, factory_, &out);
  return std::make_unique<ComputedIterator>(std::move(out), std::move(st));
}

}  // namespace coral
