#include "src/cxx/scan_desc.h"

namespace coral {

const Tuple* C_ScanDesc::Next() {
  if (it_ == nullptr) return nullptr;
  while (const Tuple* t = it_->Next()) {
    if (hide_non_ground_ && !t->IsGround()) continue;
    return t;
  }
  return nullptr;
}

std::vector<const Tuple*> C_ScanDesc::ToVector() {
  std::vector<const Tuple*> out;
  while (const Tuple* t = Next()) out.push_back(t);
  return out;
}

size_t C_ScanDesc::Count() {
  size_t n = 0;
  while (Next() != nullptr) ++n;
  return n;
}

const Status& C_ScanDesc::status() const {
  static const Status kOk;
  return it_ == nullptr ? kOk : it_->status();
}

}  // namespace coral
