#include "src/cxx/coral.h"

#include "src/lang/parser.h"

namespace coral {

StatusOr<const Arg*> Coral::Term(const std::string& text) {
  uint32_t var_count = 0;
  return Parser::ParseTerm(text, factory(), &var_count);
}

Relation* Coral::GetRelation(const std::string& name, uint32_t arity) {
  PredRef pred{factory()->symbols().Intern(name), arity};
  return db_->GetOrCreateBaseRelation(pred);
}

StatusOr<bool> Coral::Insert(const std::string& pred,
                             std::initializer_list<const Arg*> args) {
  Rule fact;
  fact.head.pred = factory()->symbols().Intern(pred);
  fact.head.args.assign(args.begin(), args.end());
  return db_->InsertFact(fact);
}

StatusOr<size_t> Coral::Delete(const std::string& pred,
                               std::initializer_list<const Arg*> args) {
  Rule fact;
  fact.head.pred = factory()->symbols().Intern(pred);
  fact.head.args.assign(args.begin(), args.end());
  return db_->DeleteFacts(fact);
}

StatusOr<C_ScanDesc> Coral::OpenScan(const std::string& goal) {
  // Parse the goal as a single-literal query.
  std::string text = "?- " + goal;
  size_t end = text.find_last_not_of(" \t\r\n");
  if (end != std::string::npos && text[end] != '.') text += ".";
  Parser parser(text, factory());
  CORAL_ASSIGN_OR_RETURN(Program prog, parser.ParseProgram());
  if (prog.queries.size() != 1 || prog.queries[0].body.size() != 1) {
    return Status::InvalidArgument(
        "OpenScan takes a single-literal goal; use Command for conjunctive "
        "queries");
  }
  const Literal& lit = prog.queries[0].body[0];
  if (lit.negated) {
    return Status::InvalidArgument("cannot open a scan on a negated goal");
  }
  PredRef pred = lit.pred_ref();

  // A goal environment shared by the iterator's lifetime.
  struct GoalState {
    Query query;
    std::unique_ptr<BindEnv> env;
  };
  auto state = std::make_shared<GoalState>();
  state->query = prog.queries[0];
  state->env = std::make_unique<BindEnv>(state->query.var_count);
  std::vector<TermRef> refs;
  for (const Arg* a : state->query.body[0].args) {
    refs.push_back({a, state->env.get()});
  }

  std::unique_ptr<TupleIterator> it;
  if (db_->modules()->Exports(pred)) {
    CORAL_ASSIGN_OR_RETURN(it, db_->modules()->OpenQuery(pred, refs));
  } else {
    Relation* rel = db_->GetOrCreateBaseRelation(pred);
    it = rel->Select(refs);
  }

  // Candidate streams are supersets: filter by unification against the
  // goal, and keep the goal state alive with the iterator.
  class FilteringIterator : public TupleIterator {
   public:
    FilteringIterator(std::unique_ptr<TupleIterator> inner,
                      std::shared_ptr<GoalState> state)
        : inner_(std::move(inner)), state_(std::move(state)), tuple_env_(0) {}
    const Tuple* Next() override {
      while (const Tuple* t = inner_->Next()) {
        if (t->arity() != state_->query.body[0].args.size()) continue;
        tuple_env_.EnsureSize(t->var_count());
        Trail trail;
        bool match = true;
        const auto& args = state_->query.body[0].args;
        for (uint32_t i = 0; i < t->arity() && match; ++i) {
          match = Unify(args[i], state_->env.get(), t->arg(i), &tuple_env_,
                        &trail);
        }
        trail.UndoTo(0);
        if (match) return t;
      }
      return nullptr;
    }
    const Status& status() const override { return inner_->status(); }

   private:
    std::unique_ptr<TupleIterator> inner_;
    std::shared_ptr<GoalState> state_;
    BindEnv tuple_env_;
  };

  return C_ScanDesc(
      std::make_unique<FilteringIterator>(std::move(it), std::move(state)));
}

Status Coral::RegisterPredicate(const std::string& pred, uint32_t arity,
                                ComputedPredicateFn fn) {
  PredRef ref{factory()->symbols().Intern(pred), arity};
  if (db_->FindBaseRelation(ref) != nullptr) {
    return Status::AlreadyExists("predicate " + ref.ToString() +
                                 " already has a relation");
  }
  return db_->RegisterRelation(
      ref, std::make_unique<ComputedRelation>(pred, arity, factory(),
                                              std::move(fn)));
}

}  // namespace coral
