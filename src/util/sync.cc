#include "src/util/sync.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace coral::lock_order {

namespace {

struct HeldLock {
  const void* mu;
  uint32_t rank;
};

// Per-thread stack of held locks, pushed on acquire and erased on release
// (erase, not pop: guards may release out of LIFO order). The vector is
// tiny — the engine never holds more than a couple of locks at once.
thread_local std::vector<HeldLock> tl_held;

std::atomic<uint64_t> g_violations{0};
// Most recent inversion, packed (held_rank << 32) | acquiring_rank so a
// reader never sees a torn pair.
std::atomic<uint64_t> g_last_violation{0};

// Aborting on inversion is opt-in (CORAL_LOCK_ORDER_ABORT=1): the default
// report-and-continue keeps a detected inversion from masking whatever a
// test was actually checking, while CI greps stderr.
bool AbortOnViolation() {
  static const bool abort_on_violation = [] {
    const char* v = std::getenv("CORAL_LOCK_ORDER_ABORT");
    return v != nullptr && v[0] == '1';
  }();
  return abort_on_violation;
}

}  // namespace

void OnAcquire(const void* mu, uint32_t rank) {
  if (rank != kRankUnranked) {
    for (const HeldLock& held : tl_held) {
      if (held.rank == kRankUnranked || held.mu == mu) continue;
      if (held.rank >= rank) {
        g_violations.fetch_add(1, std::memory_order_relaxed);
        g_last_violation.store(
            (static_cast<uint64_t>(held.rank) << 32) | rank,
            std::memory_order_relaxed);
        std::fprintf(stderr,
                     "coral: LOCK-ORDER INVERSION: acquiring mutex of rank "
                     "%u while holding rank %u (acquire strictly "
                     "rank-increasing; see docs/CONCURRENCY.md)\n",
                     rank, held.rank);
        if (AbortOnViolation()) std::abort();
        break;
      }
    }
  }
  tl_held.push_back(HeldLock{mu, rank});
}

void OnRelease(const void* mu) {
  for (size_t i = tl_held.size(); i-- > 0;) {
    if (tl_held[i].mu == mu) {
      tl_held.erase(tl_held.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

uint64_t Violations() {
  return g_violations.load(std::memory_order_relaxed);
}

void ResetViolations() {
  g_violations.store(0, std::memory_order_relaxed);
  g_last_violation.store(0, std::memory_order_relaxed);
}

std::pair<uint32_t, uint32_t> LastViolation() {
  uint64_t packed = g_last_violation.load(std::memory_order_relaxed);
  return {static_cast<uint32_t>(packed >> 32),
          static_cast<uint32_t>(packed & 0xffffffffu)};
}

size_t HeldCountForTest() { return tl_held.size(); }

}  // namespace coral::lock_order
