// Copyright (c) 1993-style CORAL reproduction authors.
// The engine's only locking primitives: Mutex / SharedMutex / CondVar and
// their RAII guards, carrying Clang Thread Safety Analysis capability
// attributes so the lock discipline is machine-checked at compile time
// (-Wthread-safety; CI builds with the warnings as errors). Under
// non-Clang compilers every attribute expands to nothing and the wrappers
// cost exactly what the std primitives cost.
//
// Raw std::mutex / std::lock_guard / std::condition_variable are banned
// outside this file (tools/lock_lint.sh enforces it in CI): a lock the
// analysis cannot see is a lock whose discipline nobody checks.
//
// On top of the annotations, debug builds run a lock-ORDER checker:
// every Mutex carries a rank (see LockRank below; docs/CONCURRENCY.md has
// the full table) and a thread may only acquire a ranked mutex whose rank
// is strictly greater than the highest-ranked mutex it already holds.
// Acquisition-order inversions — the A→B / B→A pattern that deadlocks
// under the wrong interleaving — are detected deterministically on ANY
// schedule that merely acquires in the wrong order, and reported with the
// two offending ranks. The checker is compiled out under NDEBUG
// (RelWithDebInfo / Release); define CORAL_FORCE_LOCK_ORDER_CHECKS to
// keep it in a release TU (tests/sync_test.cc does).

#ifndef CORAL_UTIL_SYNC_H_
#define CORAL_UTIL_SYNC_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <utility>

// ---- Clang Thread Safety Analysis attribute macros -----------------------
// The standard mapping from the Clang TSA documentation, CORAL_-prefixed.
// See docs/CONCURRENCY.md for the conventions (which macro goes where).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CORAL_TS_ATTRIBUTE__(x) __attribute__((x))
#endif
#endif
#ifndef CORAL_TS_ATTRIBUTE__
#define CORAL_TS_ATTRIBUTE__(x)  // no-op under GCC/MSVC/old Clang
#endif

/// Declares a class to be a lockable capability ("mutex" names it in
/// diagnostics).
#define CORAL_CAPABILITY(x) CORAL_TS_ATTRIBUTE__(capability(x))
/// Declares an RAII class whose lifetime equals a critical section.
#define CORAL_SCOPED_CAPABILITY CORAL_TS_ATTRIBUTE__(scoped_lockable)
/// Data member readable/writable only while holding the given mutex.
#define CORAL_GUARDED_BY(x) CORAL_TS_ATTRIBUTE__(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the given mutex.
#define CORAL_PT_GUARDED_BY(x) CORAL_TS_ATTRIBUTE__(pt_guarded_by(x))
/// Caller must hold the mutex(es) exclusively before calling.
#define CORAL_REQUIRES(...) \
  CORAL_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))
/// Caller must hold the mutex(es) at least shared before calling.
#define CORAL_REQUIRES_SHARED(...) \
  CORAL_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
/// Function acquires the mutex(es) exclusively and does not release them.
#define CORAL_ACQUIRE(...) \
  CORAL_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define CORAL_ACQUIRE_SHARED(...) \
  CORAL_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
/// Function releases mutex(es) the caller holds.
#define CORAL_RELEASE(...) \
  CORAL_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define CORAL_RELEASE_SHARED(...) \
  CORAL_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
/// Releases a capability held in either mode (scoped-guard destructors).
#define CORAL_RELEASE_GENERIC(...) \
  CORAL_TS_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))
/// Function attempts the lock; the boolean argument is the success value.
#define CORAL_TRY_ACQUIRE(...) \
  CORAL_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the mutex(es) (deadlock-on-self documentation).
#define CORAL_EXCLUDES(...) CORAL_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
/// Tells the analysis the capability is held here without acquiring it
/// (runtime-verified entry points).
#define CORAL_ASSERT_CAPABILITY(x) CORAL_TS_ATTRIBUTE__(assert_capability(x))
/// Function returns a reference to the given mutex.
#define CORAL_RETURN_CAPABILITY(x) CORAL_TS_ATTRIBUTE__(lock_returned(x))
/// Turns the analysis off for one function.
#define CORAL_NO_THREAD_SAFETY_ANALYSIS \
  CORAL_TS_ATTRIBUTE__(no_thread_safety_analysis)

/// A deliberate, documented escape from the analysis. `reason` must be a
/// non-empty string literal saying why the unguarded access is safe (the
/// invariant that replaces the lock); tools/lock_lint.sh rejects empty or
/// missing reasons and requires every escaping file to be enumerated in
/// docs/CONCURRENCY.md. Use sparingly: an escape is a proof obligation
/// the compiler has handed back to the reviewer.
#define CORAL_TS_UNSAFE(reason) CORAL_NO_THREAD_SAFETY_ANALYSIS

// ---- lock-order checking --------------------------------------------------

#if !defined(NDEBUG) || defined(CORAL_FORCE_LOCK_ORDER_CHECKS)
#define CORAL_LOCK_ORDER_CHECKS 1
#else
#define CORAL_LOCK_ORDER_CHECKS 0
#endif

namespace coral {

/// Global acquisition order of the engine's long-lived mutexes: a thread
/// may only acquire a mutex whose rank is STRICTLY greater than every
/// ranked mutex it already holds. Gaps leave room for future layers.
/// kRankUnranked (0) opts a mutex out of order checking — reserve it for
/// leaf mutexes provably never held across another acquisition.
/// docs/CONCURRENCY.md documents what each ranked mutex guards.
enum LockRank : uint32_t {
  kRankUnranked = 0,
  // Server layers sit BELOW every engine lock: a server lock may be held
  // while calling into the engine, never the other way around.
  kRankServerSession = 1,    // server Conn::mu_ (per-connection queue)
  kRankServerState = 2,      // Server::mu_ (connection map, lifecycle)
  kRankAdmission = 3,        // AdmissionController::mu_ (work queue)
  kRankCommitLock = 4,       // Database::commit_mu_ (writer commits /
                             // snapshot publication; readers share it
                             // briefly at snapshot acquisition)
  kRankModuleManager = 6,    // ModuleManager::mu_ (form cache, exports)
  kRankBaseMap = 8,          // Database::base_mu_ (base-relation map)
  kRankThreadPool = 10,      // ThreadPool::mu_ (batch dispatch state)
  kRankStatsRegistry = 20,   // obs::StatsRegistry::mu_ (profile map)
  kRankModuleProfile = 30,   // obs::ModuleProfile::mu_ (rule/iter logs)
  kRankTermFactory = 40,     // TermFactory::mu_ (arena + hash-cons)
  kRankSymbolTable = 45,     // SymbolTable::mu_ (interning; acquired
                             // under the TermFactory lock by MakeAtom)
  kRankFaultInjector = 50,   // FaultInjector::mu_ (failpoint registry)
  kRankStorageMetrics = 60,  // obs::StorageMetrics::mu_ (event ring)
};

namespace lock_order {

/// Records an acquisition attempt of mutex `mu` with rank `rank` on this
/// thread; reports an inversion if a held ranked mutex has rank >= rank.
/// Called BEFORE blocking on the lock, so a would-deadlock order is
/// reported even when the schedule happens not to deadlock. rank 0 is
/// tracked (for release bookkeeping) but exempt from order checking.
void OnAcquire(const void* mu, uint32_t rank);
/// Removes `mu` from this thread's held-lock stack.
void OnRelease(const void* mu);

/// Process-wide count of inversions detected since start / ResetViolations.
uint64_t Violations();
void ResetViolations();
/// Ranks of the most recent inversion: {held_rank, acquiring_rank}.
/// {0, 0} when none has been recorded.
std::pair<uint32_t, uint32_t> LastViolation();
/// Number of locks the calling thread currently holds (test introspection).
size_t HeldCountForTest();

}  // namespace lock_order

// ---- primitives -----------------------------------------------------------

class CondVar;

/// An annotated std::mutex. Construct with a LockRank so debug builds
/// verify acquisition order; rank 0 skips order checking.
class CORAL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(uint32_t rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CORAL_ACQUIRE() {
#if CORAL_LOCK_ORDER_CHECKS
    lock_order::OnAcquire(this, rank_);
#endif
    mu_.lock();
  }

  void Unlock() CORAL_RELEASE() {
#if CORAL_LOCK_ORDER_CHECKS
    lock_order::OnRelease(this);
#endif
    mu_.unlock();
  }

  bool TryLock() CORAL_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if CORAL_LOCK_ORDER_CHECKS
    lock_order::OnAcquire(this, rank_);
#endif
    return true;
  }

  /// For code whose correctness argument is "the caller locked for us"
  /// but whose call graph the analysis cannot follow.
  void AssertHeld() const CORAL_ASSERT_CAPABILITY(this) {}

  uint32_t rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const uint32_t rank_ = kRankUnranked;
};

/// An annotated std::shared_mutex: one writer or many readers. The
/// snapshot/epoch reader-writer work for the query server builds on this.
class CORAL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(uint32_t rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() CORAL_ACQUIRE() {
#if CORAL_LOCK_ORDER_CHECKS
    lock_order::OnAcquire(this, rank_);
#endif
    mu_.lock();
  }
  void Unlock() CORAL_RELEASE() {
#if CORAL_LOCK_ORDER_CHECKS
    lock_order::OnRelease(this);
#endif
    mu_.unlock();
  }
  void LockShared() CORAL_ACQUIRE_SHARED() {
#if CORAL_LOCK_ORDER_CHECKS
    lock_order::OnAcquire(this, rank_);
#endif
    mu_.lock_shared();
  }
  void UnlockShared() CORAL_RELEASE_SHARED() {
#if CORAL_LOCK_ORDER_CHECKS
    lock_order::OnRelease(this);
#endif
    mu_.unlock_shared();
  }

  void AssertHeld() const CORAL_ASSERT_CAPABILITY(this) {}

  uint32_t rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const uint32_t rank_ = kRankUnranked;
};

/// Condition variable bound to Mutex. Wait atomically releases the mutex
/// and re-acquires it before returning, so from the analysis's point of
/// view (and the lock-order checker's) the caller holds the mutex across
/// the whole call. Always wait in a loop re-testing the guarded predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) CORAL_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's guard
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---- RAII guards ----------------------------------------------------------

/// Exclusive critical section over a Mutex (std::lock_guard shape).
class CORAL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CORAL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CORAL_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Exclusive (writer) critical section over a SharedMutex.
class CORAL_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) CORAL_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() CORAL_RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Shared (reader) critical section over a SharedMutex.
class CORAL_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) CORAL_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() CORAL_RELEASE_GENERIC() { mu_->UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Conditionally-engaged MutexLock for single-thread fast paths (the
/// TermFactory mutex elision: with one thread every construction skips
/// the lock entirely). To the ANALYSIS this guard always acquires `mu` —
/// when disengaged, the caller owns the proof that no second thread can
/// touch the guarded state for the guard's lifetime. That proof is the
/// single documented fiction in the locking model; see
/// docs/CONCURRENCY.md ("conditional locking").
class CORAL_SCOPED_CAPABILITY MaybeMutexLock {
 public:
  MaybeMutexLock(Mutex* mu, bool engage) CORAL_ACQUIRE(mu)
      : mu_(engage ? mu : nullptr) {
    if (mu_ != nullptr) mu_->Lock();
  }
  ~MaybeMutexLock() CORAL_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }
  MaybeMutexLock(const MaybeMutexLock&) = delete;
  MaybeMutexLock& operator=(const MaybeMutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace coral

#endif  // CORAL_UTIL_SYNC_H_
