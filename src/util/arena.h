// Copyright (c) 1993-style CORAL reproduction authors.
// Bump-pointer arena. CORAL's data manager shares pointers instead of
// copying values (paper §9); all Arg objects are allocated here and live as
// long as the owning TermFactory, replacing the paper's garbage collector
// with arena lifetime.

#ifndef CORAL_UTIL_ARENA_H_
#define CORAL_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace coral {

/// A growing bump allocator. Objects are never individually freed; the
/// whole arena is released at destruction. Destructors of allocated
/// objects are NOT run, so only trivially-destructible payloads or objects
/// whose resources are arena-owned may be placed here.
class Arena {
 public:
  explicit Arena(size_t block_size = 64 * 1024) : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align`.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Constructs a T in the arena. T's destructor will not run.
  template <typename T, typename... ArgTs>
  T* New(ArgTs&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<ArgTs>(args)...);
  }

  /// Copies `n` elements of T into arena storage and returns the base.
  template <typename T>
  T* CopyArray(const T* src, size_t n) {
    if (n == 0) return nullptr;
    T* dst = static_cast<T*>(Allocate(sizeof(T) * n, alignof(T)));
    for (size_t i = 0; i < n; ++i) new (dst + i) T(src[i]);
    return dst;
  }

  /// Total bytes handed out (for memory accounting in benches).
  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  size_t block_size_;
  size_t bytes_allocated_ = 0;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace coral

#endif  // CORAL_UTIL_ARENA_H_
