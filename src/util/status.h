// Copyright (c) 1993-style CORAL reproduction authors.
// Status / StatusOr: exception-free error propagation in the RocksDB idiom.
// Engine-internal invariants use CORAL_CHECK; everything fallible that a
// user can trigger (parsing, storage I/O, bad annotations) returns Status.

#ifndef CORAL_UTIL_STATUS_H_
#define CORAL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace coral {

/// Result code carried by every Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input: parse errors, bad annotations
  kNotFound,          // missing relation/module/file/page
  kAlreadyExists,     // duplicate definition
  kFailedPrecondition,// operation illegal in current state
  kOutOfRange,        // index/slot out of bounds
  kIOError,           // storage-layer failure
  kCorruption,        // on-disk structure damaged
  kUnsupported,       // feature combination not implemented
  kInternal,          // engine bug surfaced as recoverable error
  kDeadlineExceeded,  // per-query deadline fired during evaluation
  kUnavailable,       // admission control shed the request; retryable
};

/// Returns a human-readable name for `code` ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. OK Status carries no message.
/// [[nodiscard]] at class level: every Status-returning API is an error
/// channel, and silently dropping one hides I/O and analysis failures —
/// callers that truly do not care must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or a non-OK Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT implicit
    CORAL_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    CORAL_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    CORAL_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CORAL_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace coral

/// Propagates a non-OK Status to the caller.
#define CORAL_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::coral::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a StatusOr expression, propagating error or binding the value.
#define CORAL_ASSIGN_OR_RETURN(lhs, expr)              \
  CORAL_ASSIGN_OR_RETURN_IMPL_(                        \
      CORAL_STATUS_CONCAT_(_statusor, __LINE__), lhs, expr)

#define CORAL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define CORAL_STATUS_CONCAT_(a, b) CORAL_STATUS_CONCAT_IMPL_(a, b)
#define CORAL_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // CORAL_UTIL_STATUS_H_
