// Copyright (c) 1993-style CORAL reproduction authors.
// Arbitrary-precision signed integers. The paper's CORAL used the DEC
// France BigNum package for this primitive type (§3.1 fn. 3); we
// reimplement the needed arithmetic from scratch: sign-magnitude,
// base-2^32 limbs, schoolbook multiply/divide.

#ifndef CORAL_UTIL_BIGINT_H_
#define CORAL_UTIL_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace coral {

/// Immutable-style arbitrary precision integer. Zero is canonically
/// represented with an empty limb vector and non-negative sign.
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(int64_t v);

  /// Parses an optionally-signed decimal string.
  static StatusOr<BigInt> FromString(std::string_view s);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }

  /// Three-way comparison: -1, 0, +1.
  int Compare(const BigInt& other) const;

  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator-() const;

  /// Truncating division (C semantics). Dividing by zero is a checked
  /// failure; use DivMod for a recoverable path.
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;

  /// Quotient and remainder with C truncation semantics.
  static Status DivMod(const BigInt& a, const BigInt& b, BigInt* quot,
                       BigInt* rem);

  /// True when the value fits in int64_t; stores it in *out.
  bool FitsInt64(int64_t* out) const;

  std::string ToString() const;
  uint64_t Hash() const;

 private:
  static BigInt AddMagnitude(const BigInt& a, const BigInt& b, bool neg);
  static BigInt SubMagnitude(const BigInt& a, const BigInt& b, bool neg);
  static int CompareMagnitude(const BigInt& a, const BigInt& b);
  void Trim();

  bool negative_ = false;
  std::vector<uint32_t> limbs_;  // little-endian base 2^32
};

}  // namespace coral

#endif  // CORAL_UTIL_BIGINT_H_
