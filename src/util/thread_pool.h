// Copyright (c) 1993-style CORAL reproduction authors.
// A fixed-size worker pool for the parallel fixpoint engine. Deliberately
// minimal: tasks are dispatched statically (task i runs on whichever
// worker picks it up; there is no work stealing) and Run() is a full
// barrier — it returns only when every task of the batch has finished.
// That matches the engine's needs exactly: one batch per fixpoint
// iteration, with a merge/dedup phase between batches that must observe
// all worker output.
//
// All batch state is guarded by mu_ (rank kRankThreadPool); the
// annotations below are checked by -Wthread-safety in CI.

#ifndef CORAL_UTIL_THREAD_POOL_H_
#define CORAL_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace coral {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). Workers idle on a condition
  /// variable between batches.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Runs fn(0), ..., fn(n-1) across the pool and blocks until all calls
  /// return. The calling thread participates, so a pool of K threads plus
  /// the caller services the batch; n may exceed the pool size. Tasks must
  /// not call Run() on the same pool (no nesting).
  void Run(size_t n, const std::function<void(size_t)>& fn)
      CORAL_EXCLUDES(mu_);

 private:
  void WorkerLoop() CORAL_EXCLUDES(mu_);
  /// Claims and runs tasks of the current batch until none remain.
  /// mu_ held on entry and exit; released around each task.
  void Drain() CORAL_REQUIRES(mu_);

  std::vector<std::thread> workers_;  // written by ctor only, then const
  Mutex mu_{kRankThreadPool};
  CondVar work_cv_;   // workers wait for a batch
  CondVar done_cv_;   // Run() waits for completion
  /// Current batch; non-null exactly while a batch is mapped in.
  const std::function<void(size_t)>* fn_ CORAL_GUARDED_BY(mu_) = nullptr;
  size_t batch_size_ CORAL_GUARDED_BY(mu_) = 0;  // tasks in current batch
  size_t next_task_ CORAL_GUARDED_BY(mu_) = 0;   // next unclaimed index
  size_t unfinished_ CORAL_GUARDED_BY(mu_) = 0;  // claimed or unclaimed
  uint64_t generation_ CORAL_GUARDED_BY(mu_) = 0;  // bumped per batch
  bool shutdown_ CORAL_GUARDED_BY(mu_) = false;
};

}  // namespace coral

#endif  // CORAL_UTIL_THREAD_POOL_H_
