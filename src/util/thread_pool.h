// Copyright (c) 1993-style CORAL reproduction authors.
// A fixed-size worker pool for the parallel fixpoint engine. Deliberately
// minimal: tasks are dispatched statically (task i runs on whichever
// worker picks it up; there is no work stealing) and Run() is a full
// barrier — it returns only when every task of the batch has finished.
// That matches the engine's needs exactly: one batch per fixpoint
// iteration, with a merge/dedup phase between batches that must observe
// all worker output.

#ifndef CORAL_UTIL_THREAD_POOL_H_
#define CORAL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coral {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). Workers idle on a condition
  /// variable between batches.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Runs fn(0), ..., fn(n-1) across the pool and blocks until all calls
  /// return. The calling thread participates, so a pool of K threads plus
  /// the caller services the batch; n may exceed the pool size. Tasks must
  /// not call Run() on the same pool (no nesting).
  void Run(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current batch until none remain.
  void Drain();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // Run() waits for completion
  const std::function<void(size_t)>* fn_ = nullptr;  // current batch
  size_t batch_size_ = 0;   // tasks in the current batch
  size_t next_task_ = 0;    // next unclaimed task index
  size_t unfinished_ = 0;   // tasks claimed or unclaimed, not yet done
  uint64_t generation_ = 0; // bumped per batch so workers wake exactly once
  bool shutdown_ = false;
};

}  // namespace coral

#endif  // CORAL_UTIL_THREAD_POOL_H_
