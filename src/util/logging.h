// Copyright (c) 1993-style CORAL reproduction authors.
// Invariant-checking macros in the RocksDB/Arrow idiom: CORAL_CHECK aborts
// with a message on violated invariants; CORAL_DCHECK compiles away in
// release builds.

#ifndef CORAL_UTIL_LOGGING_H_
#define CORAL_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace coral {

/// Terminates the process after printing `msg` with source location.
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const std::string& msg) {
  std::fprintf(stderr, "CORAL FATAL %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

namespace internal {

// Accumulates a failure message for CORAL_CHECK streaming syntax.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line) {
    stream_ << "Check failed: " << expr << " ";
  }
  [[noreturn]] ~CheckMessage() { FatalError(file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed message when the check passes.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace coral

#define CORAL_CHECK(cond)                                               \
  (cond) ? (void)0                                                     \
         : ::coral::internal::Voidify() &                              \
               ::coral::internal::CheckMessage(__FILE__, __LINE__, #cond) \
                   .stream()

#define CORAL_CHECK_EQ(a, b) CORAL_CHECK((a) == (b))
#define CORAL_CHECK_NE(a, b) CORAL_CHECK((a) != (b))
#define CORAL_CHECK_LT(a, b) CORAL_CHECK((a) < (b))
#define CORAL_CHECK_LE(a, b) CORAL_CHECK((a) <= (b))
#define CORAL_CHECK_GT(a, b) CORAL_CHECK((a) > (b))
#define CORAL_CHECK_GE(a, b) CORAL_CHECK((a) >= (b))

#ifdef NDEBUG
#define CORAL_DCHECK(cond) CORAL_CHECK(true)
#else
#define CORAL_DCHECK(cond) CORAL_CHECK(cond)
#endif

#define CORAL_UNREACHABLE() \
  ::coral::FatalError(__FILE__, __LINE__, "unreachable code reached")

#endif  // CORAL_UTIL_LOGGING_H_
