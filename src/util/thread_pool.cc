#include "src/util/thread_pool.h"

namespace coral {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Drain() {
  // mu_ held on entry and exit; released around each task.
  while (next_task_ < batch_size_) {
    size_t task = next_task_++;
    mu_.unlock();
    (*fn_)(task);
    mu_.lock();
    if (--unfinished_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen = 0;
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (fn_ != nullptr && generation_ != seen);
    });
    if (shutdown_) return;
    seen = generation_;
    Drain();
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  batch_size_ = n;
  next_task_ = 0;
  unfinished_ = n;
  ++generation_;
  work_cv_.notify_all();
  Drain();  // the caller works too
  done_cv_.wait(lock, [&] { return unfinished_ == 0; });
  fn_ = nullptr;
  batch_size_ = 0;
}

}  // namespace coral
