#include "src/util/thread_pool.h"

namespace coral {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Drain() {
  while (next_task_ < batch_size_) {
    size_t task = next_task_++;
    // Read fn_ while still holding mu_: Run() clears it once unfinished_
    // hits zero, and the old code's unlocked (*fn_) read was safe only by
    // a subtle happens-before chain through the claim counter.
    const std::function<void(size_t)>* fn = fn_;
    mu_.Unlock();
    (*fn)(task);
    mu_.Lock();
    if (--unfinished_ == 0) done_cv_.NotifyAll();
  }
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(&mu_);
  uint64_t seen = 0;
  while (true) {
    while (!shutdown_ && (fn_ == nullptr || generation_ == seen)) {
      work_cv_.Wait(mu_);
    }
    if (shutdown_) return;
    seen = generation_;
    Drain();
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  MutexLock lock(&mu_);
  fn_ = &fn;
  batch_size_ = n;
  next_task_ = 0;
  unfinished_ = n;
  ++generation_;
  work_cv_.NotifyAll();
  Drain();  // the caller works too
  while (unfinished_ != 0) done_cv_.Wait(mu_);
  fn_ = nullptr;
  batch_size_ = 0;
}

}  // namespace coral
