#include "src/util/status.h"

namespace coral {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace coral
