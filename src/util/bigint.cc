#include "src/util/bigint.h"

#include <algorithm>

#include "src/util/hash.h"
#include "src/util/logging.h"

namespace coral {

namespace {
constexpr uint64_t kBase = 1ull << 32;
}  // namespace

BigInt::BigInt(int64_t v) {
  negative_ = v < 0;
  // Avoid overflow on INT64_MIN by widening through unsigned.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(v) + 1
                           : static_cast<uint64_t>(v);
  while (mag != 0) {
    limbs_.push_back(static_cast<uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
}

StatusOr<BigInt> BigInt::FromString(std::string_view s) {
  size_t i = 0;
  bool neg = false;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
    neg = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) {
    return Status::InvalidArgument("empty bigint literal");
  }
  BigInt result;
  BigInt ten(10);
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::InvalidArgument("bad digit in bigint literal: " +
                                     std::string(s));
    }
    result = result * ten + BigInt(s[i] - '0');
  }
  if (neg && !result.is_zero()) result.negative_ = true;
  return result;
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(*this, other);
  return negative_ ? -mag : mag;
}

BigInt BigInt::AddMagnitude(const BigInt& a, const BigInt& b, bool neg) {
  BigInt r;
  r.negative_ = neg;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  r.limbs_.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    r.limbs_.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) r.limbs_.push_back(static_cast<uint32_t>(carry));
  r.Trim();
  return r;
}

// Requires |a| >= |b|.
BigInt BigInt::SubMagnitude(const BigInt& a, const BigInt& b, bool neg) {
  BigInt r;
  r.negative_ = neg;
  r.limbs_.reserve(a.limbs_.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.limbs_.push_back(static_cast<uint32_t>(diff));
  }
  CORAL_DCHECK(borrow == 0);
  r.Trim();
  return r;
}

BigInt BigInt::operator+(const BigInt& o) const {
  if (negative_ == o.negative_) return AddMagnitude(*this, o, negative_);
  int mag = CompareMagnitude(*this, o);
  if (mag == 0) return BigInt();
  if (mag > 0) return SubMagnitude(*this, o, negative_);
  return SubMagnitude(o, *this, o.negative_);
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  BigInt r;
  r.negative_ = negative_ != o.negative_;
  r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(limbs_[i]) * o.limbs_[j] +
                     r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + o.limbs_.size();
    while (carry) {
      uint64_t cur = r.limbs_[k] + carry;
      r.limbs_[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  r.Trim();
  return r;
}

Status BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quot,
                      BigInt* rem) {
  if (b.is_zero()) return Status::InvalidArgument("bigint division by zero");
  // Long division over bits of |a|; simple and correct, adequate for the
  // sizes deductive programs produce.
  BigInt q, r;
  q.limbs_.assign(a.limbs_.size(), 0);
  BigInt babs = b;
  babs.negative_ = false;
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    for (int bit = 31; bit >= 0; --bit) {
      // r = r*2 + next bit of |a|
      uint32_t carry = 0;
      for (size_t k = 0; k < r.limbs_.size(); ++k) {
        uint32_t nv = (r.limbs_[k] << 1) | carry;
        carry = r.limbs_[k] >> 31;
        r.limbs_[k] = nv;
      }
      if (carry) r.limbs_.push_back(carry);
      uint32_t abit = (a.limbs_[i] >> bit) & 1u;
      if (abit) {
        if (r.limbs_.empty()) r.limbs_.push_back(0);
        r.limbs_[0] |= 1u;
      }
      r.Trim();
      if (CompareMagnitude(r, babs) >= 0) {
        r = SubMagnitude(r, babs, false);
        q.limbs_[i] |= (1u << bit);
      }
    }
  }
  q.negative_ = a.negative_ != b.negative_;
  q.Trim();
  r.negative_ = a.negative_;  // C truncation: remainder takes dividend sign
  r.Trim();
  *quot = std::move(q);
  *rem = std::move(r);
  return Status::OK();
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q, r;
  Status s = DivMod(*this, o, &q, &r);
  CORAL_CHECK(s.ok()) << s.ToString();
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt q, r;
  Status s = DivMod(*this, o, &q, &r);
  CORAL_CHECK(s.ok()) << s.ToString();
  return r;
}

bool BigInt::FitsInt64(int64_t* out) const {
  if (limbs_.size() > 2) return false;
  uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (mag > (1ull << 63)) return false;
    *out = static_cast<int64_t>(~mag + 1);
  } else {
    if (mag > static_cast<uint64_t>(INT64_MAX)) return false;
    *out = static_cast<int64_t>(mag);
  }
  return true;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeatedly divide magnitude by 10^9 to extract decimal chunks.
  std::vector<uint32_t> work = limbs_;
  std::string digits;
  while (!work.empty()) {
    uint64_t rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

uint64_t BigInt::Hash() const {
  uint64_t h = negative_ ? 0x5bd1e995u : 0;
  for (uint32_t limb : limbs_) h = HashCombine(h, limb);
  return h;
}

}  // namespace coral
