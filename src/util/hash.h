// Copyright (c) 1993-style CORAL reproduction authors.
// Hashing helpers shared by hash-consing, hash relations and indices.

#ifndef CORAL_UTIL_HASH_H_
#define CORAL_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace coral {

/// 64-bit mix (splitmix64 finalizer); good avalanche for integer keys.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combiner for multi-part keys.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return HashMix64(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) +
                           (seed >> 2)));
}

/// FNV-1a over bytes; used for strings and serialized keys.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace coral

#endif  // CORAL_UTIL_HASH_H_
