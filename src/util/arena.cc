#include "src/util/arena.h"

#include <algorithm>

namespace coral {

void* Arena::Allocate(size_t bytes, size_t align) {
  bytes_allocated_ += bytes;
  uintptr_t cur = reinterpret_cast<uintptr_t>(cur_);
  uintptr_t aligned = (cur + align - 1) & ~(align - 1);
  if (cur_ == nullptr || aligned + bytes > reinterpret_cast<uintptr_t>(end_)) {
    size_t block = std::max(block_size_, bytes + align);
    blocks_.push_back(std::make_unique<char[]>(block));
    cur_ = blocks_.back().get();
    end_ = cur_ + block;
    cur = reinterpret_cast<uintptr_t>(cur_);
    aligned = (cur + align - 1) & ~(align - 1);
  }
  cur_ = reinterpret_cast<char*>(aligned + bytes);
  return reinterpret_cast<void*>(aligned);
}

}  // namespace coral
