// Copyright (c) 1993-style CORAL reproduction authors.
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
// Used to frame write-ahead-log records so crash recovery can tell a
// torn or corrupted tail from a well-formed record.

#ifndef CORAL_UTIL_CRC32_H_
#define CORAL_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace coral {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

/// Extends a running CRC-32 with `n` more bytes. Start (and finish) with
/// `crc = 0`; chain calls to checksum discontiguous buffers.
inline uint32_t Crc32Extend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = internal::kCrc32Table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(const void* data, size_t n) {
  return Crc32Extend(0, data, n);
}

}  // namespace coral

#endif  // CORAL_UTIL_CRC32_H_
