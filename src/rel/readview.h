// Copyright (c) 1993-style CORAL reproduction authors.
// Epoch snapshots of shared base relations for the multi-client query
// server: a writer commit (Database::Consult / InsertFact / DeleteFacts)
// publishes, per dirty relation, an immutable RelReadTable — the frozen
// subsidiary organization (paper §3.2 marks) plus a copy-on-write
// tombstone set. Reader threads install a ReadView (the set of published
// tables at one epoch) for the duration of a query; every relation access
// the evaluation makes on a shared base relation is served from the view,
// so concurrent commits are invisible until the session refreshes. Tables
// are retained by their relation until it is destroyed, so a view
// outlives any number of later commits.

#ifndef CORAL_REL_READVIEW_H_
#define CORAL_REL_READVIEW_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/rel/tombstones.h"

namespace coral {

class Relation;
class Tuple;

/// One relation's frozen state at a publication epoch. `subs` points at
/// the tuple vectors of the relation's CLOSED subsidiaries (append-only,
/// immutable once closed); `tail` is a copy of the open subsidiary taken
/// at publication. Subsidiary k of the snapshot is subs[k] for
/// k < subs.size() and `tail` for k == subs.size(), preserving mark
/// arithmetic. Tombstones are snapshotted wholesale (the boundary map
/// mutates in place on deletion); an occurrence is dead iff its
/// subsidiary is below the tuple's boundary (src/rel/tombstones.h).
struct RelReadTable {
  std::vector<const std::vector<const Tuple*>*> subs;
  std::vector<const Tuple*> tail;
  std::shared_ptr<const TombstoneMap> tombstones;
  uint64_t epoch = 0;

  /// Number of subsidiaries the snapshot covers (closed ones + the tail).
  uint32_t sub_count() const {
    return static_cast<uint32_t>(subs.size()) + 1;
  }
  const std::vector<const Tuple*>& sub(uint32_t k) const {
    return k < subs.size() ? *subs[k] : tail;
  }
  bool IsDeleted(const Tuple* t, uint32_t sub) const {
    return tombstones != nullptr && TombstonedAt(*tombstones, t, sub);
  }
};

/// The set of published tables one query evaluates against. Relations
/// absent from the map either are not shared base relations (module-
/// internal relations always read live state) or did not exist at the
/// view's epoch (they read as empty via the snapshot paths only when
/// marked shared).
struct ReadView {
  uint64_t epoch = 0;
  std::unordered_map<const Relation*, const RelReadTable*> tables;

  const RelReadTable* TableFor(const Relation* rel) const {
    auto it = tables.find(rel);
    return it == tables.end() ? nullptr : it->second;
  }
};

/// The view installed on the calling thread, or nullptr (live reads —
/// the single-user default). Relations consult this in their read paths.
const ReadView* ActiveReadView();

/// RAII installer for the calling thread's view; restores the previous
/// one (views nest, e.g. a session query that triggers a module call).
class ScopedReadView {
 public:
  explicit ScopedReadView(const ReadView* view);
  ~ScopedReadView();
  ScopedReadView(const ScopedReadView&) = delete;
  ScopedReadView& operator=(const ScopedReadView&) = delete;

 private:
  const ReadView* prev_;
};

}  // namespace coral

#endif  // CORAL_REL_READVIEW_H_
