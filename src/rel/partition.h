// Copyright (c) 1993-style CORAL reproduction authors.
// Hash partitioning of delta relations for the parallel semi-naive
// fixpoint. A delta scan is split into N disjoint, covering partitions by
// hashing each tuple: by the column the join will have bound when the
// scan opens (so one subgoal's probes stay on one worker), falling back
// to the whole-tuple hash when no column is bound. Workers collect their
// derived head facts in per-worker InsertBuffers; the engine merges the
// buffers into the real relations at the iteration barrier, where the
// usual duplicate/subsumption/aggregate-selection checks run serially.

#ifndef CORAL_REL_PARTITION_H_
#define CORAL_REL_PARTITION_H_

#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/rel/relation.h"

namespace coral {

/// Partition key of a stored tuple: the structural hash of column `col`,
/// or of the whole tuple when `col` is out of range (pass -1 for the
/// tuple-hash fallback). Deterministic for the lifetime of the factory,
/// so every worker computing the key for the same tuple agrees.
inline uint64_t PartitionKey(const Tuple* t, int col) {
  if (col >= 0 && static_cast<uint32_t>(col) < t->arity()) {
    return t->arg(static_cast<uint32_t>(col))->Hash();
  }
  return t->Hash();
}

/// Wraps a scan, yielding only tuples of partition `index` out of `count`.
/// The N instances over the same underlying scan are disjoint and cover it.
class PartitionedIterator : public TupleIterator {
 public:
  PartitionedIterator(std::unique_ptr<TupleIterator> inner, int col,
                      uint32_t index, uint32_t count)
      : inner_(std::move(inner)), col_(col), index_(index), count_(count) {}

  const Tuple* Next() override {
    while (const Tuple* t = inner_->Next()) {
      if (PartitionKey(t, col_) % count_ == index_) return t;
    }
    return nullptr;
  }
  const Status& status() const override { return inner_->status(); }

 private:
  std::unique_ptr<TupleIterator> inner_;
  int col_;
  uint32_t index_;
  uint32_t count_;
};

/// A worker-private buffer of derived head facts. During the parallel
/// phase of an iteration relations are read-only; everything a worker
/// derives lands here and is inserted at the barrier. Exact-duplicate
/// suppression (same relation, same canonical tuple node) keeps buffers
/// small; it is only an optimization — the merge re-checks through
/// Relation::Insert, which also handles subsumption and multisets.
class InsertBuffer {
 public:
  struct Entry {
    Relation* rel;
    const Tuple* tuple;
  };

  /// Buffers (rel, t). With `dedup`, drops exact repeats already buffered
  /// here; ground tuples are canonical nodes, so pointer identity is an
  /// exact equality test. Never dedup multiset targets.
  void Add(Relation* rel, const Tuple* t, bool dedup) {
    if (dedup && t->IsGround() &&
        !seen_.insert(std::make_pair(rel, t)).second) {
      return;
    }
    entries_.push_back(Entry{rel, t});
  }

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  void Clear() {
    entries_.clear();
    seen_.clear();
  }

 private:
  struct PairHash {
    size_t operator()(const std::pair<Relation*, const Tuple*>& p) const {
      return std::hash<const void*>()(p.first) * 1000003u ^
             std::hash<const void*>()(p.second);
    }
  };
  std::vector<Entry> entries_;
  std::unordered_set<std::pair<Relation*, const Tuple*>, PairHash> seen_;
};

}  // namespace coral

#endif  // CORAL_REL_PARTITION_H_
