#include "src/rel/relation.h"

#include "src/data/unify.h"
#include "src/util/logging.h"

namespace coral {

const Status& TupleIterator::status() const {
  static const Status kOk;
  return kOk;
}

bool Relation::Insert(const Tuple* t) {
  CORAL_CHECK_EQ(t->arity(), arity_) << " relation " << name_;
  // Storage-backed relations can refuse (unstorable tuple, read-only or
  // failed storage); refuse the insert rather than abort the process.
  if (!ValidateInsert(t).ok()) return false;
  // Duplicate / subsumption check (paper §4.2: the default is to do
  // subsumption checks on all relations; multisets skip them).
  if (!multiset_ && Contains(t)) return false;
  std::vector<const Tuple*> doomed;
  for (const auto& sel : selections_) {
    AggregateSelection::Decision d = sel->Check(t);
    if (!d.admit) return false;
    doomed.insert(doomed.end(), d.to_delete.begin(), d.to_delete.end());
  }
  for (const Tuple* dt : doomed) Delete(dt);
  DoInsert(t);
  for (const auto& sel : selections_) sel->Admit(t);
  return true;
}

bool Relation::Delete(const Tuple* t) {
  if (!DoDelete(t)) return false;
  for (const auto& sel : selections_) sel->Remove(t);
  return true;
}

}  // namespace coral
