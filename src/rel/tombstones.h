// Copyright (c) 1993-style CORAL reproduction authors.
// Per-occurrence tombstone accounting shared by the in-memory relations,
// their indexes, and the published epoch snapshots.
//
// Storage is append-only (paper §3.2 subsidiary relations), so a deleted
// tuple cannot be physically removed — published snapshot tables share
// the closed subsidiaries' tuple vectors by pointer. Instead a deletion
// records a *boundary* subsidiary number: every occurrence of the tuple
// in a subsidiary strictly below the boundary is dead, while occurrences
// at or above it are live. Deletion first closes the open subsidiary, so
// the boundary covers every occurrence that existed at delete time; a
// later re-insertion lands in a subsidiary at or above the boundary and
// is live purely by position. This keeps live-size accounting exact
// across delete-then-reinsert sequences (the old single tombstone set
// resurrected every prior occurrence on re-insert while size() gained
// only one).

#ifndef CORAL_REL_TOMBSTONES_H_
#define CORAL_REL_TOMBSTONES_H_

#include <cstdint>
#include <unordered_map>

namespace coral {

class Tuple;

/// tuple -> boundary subsidiary: occurrences in subsidiaries < boundary
/// are dead.
using TombstoneMap = std::unordered_map<const Tuple*, uint32_t>;

/// True iff the occurrence of `t` in subsidiary `sub` is dead.
inline bool TombstonedAt(const TombstoneMap& m, const Tuple* t,
                         uint32_t sub) {
  if (m.empty()) return false;
  auto it = m.find(t);
  return it != m.end() && sub < it->second;
}

}  // namespace coral

#endif  // CORAL_REL_TOMBSTONES_H_
