// Copyright (c) 1993-style CORAL reproduction authors.
// ListRelation: the paper's "relations organized as linked lists" (§7.2) —
// unindexed sequential storage with linear duplicate checks. Kept both as
// the simplest Relation implementation and as the baseline that the
// indexing benchmarks (experiment C5) compare against.

#ifndef CORAL_REL_LIST_RELATION_H_
#define CORAL_REL_LIST_RELATION_H_

#include "src/rel/memory_relation.h"

namespace coral {

class ListRelation : public MemoryRelation {
 public:
  ListRelation(std::string name, uint32_t arity)
      : MemoryRelation(std::move(name), arity) {}

  bool Contains(const Tuple* t) const override;

 protected:
  void DoInsert(const Tuple* t) override;
  bool DoDelete(const Tuple* t) override;
};

}  // namespace coral

#endif  // CORAL_REL_LIST_RELATION_H_
