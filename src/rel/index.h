// Copyright (c) 1993-style CORAL reproduction authors.
// In-memory hash index structures (paper §3.3, §5.5.1). Two forms:
//
//  1. Argument-form: a multi-attribute hash index on a subset of columns.
//     The hash function works on ground terms; any stored key containing
//     a variable is hashed to a special `var` bucket, which every lookup
//     also returns (the paper's scheme verbatim).
//  2. Pattern-form: an index on a term pattern that may contain variables,
//     e.g. @make_index emp(Name, addr(Street, City))(Name, City) — lets
//     retrieval drill into complex functor terms without knowing the
//     Street.
//
// Indices compose with marks (paper §3.2: "the indexing mechanisms are
// used on each subsidiary relation"): every posting records the
// subsidiary relation it belongs to, kept in insertion (= subsidiary)
// order so a mark-range lookup is a binary search within each bucket —
// O(log n + matches) regardless of how many mark intervals exist.

#ifndef CORAL_REL_INDEX_H_
#define CORAL_REL_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/data/bindenv.h"
#include "src/data/tuple.h"

namespace coral {

/// One indexed tuple occurrence.
struct Posting {
  uint32_t sub;
  const Tuple* tuple;
};

/// Base of the two index forms. `sub` is the subsidiary relation number a
/// tuple was inserted into; lookups are restricted to a subsidiary range
/// so deltas stay indexed. Deleted occurrences are filtered by the
/// relation against each posting's subsidiary (tombstone boundaries,
/// src/rel/tombstones.h), not by the index.
class Index {
 public:
  virtual ~Index() = default;

  /// Registers a stored tuple (inserted into subsidiary `sub`). `sub`
  /// values are non-decreasing across calls.
  virtual void Add(const Tuple* t, uint32_t sub) = 0;

  /// If the index can serve `pattern` (one TermRef per column), appends a
  /// candidate superset of the unifying occurrences in subsidiaries
  /// [from, to) to `out` and returns true; returns false when not
  /// applicable.
  virtual bool TryLookup(std::span<const TermRef> pattern, uint32_t from,
                         uint32_t to, std::vector<Posting>* out) = 0;

  /// Selectivity rank for index choice: higher = more selective.
  virtual int key_width() const = 0;
};

/// Hash buckets shared by both index forms: per-key posting lists plus
/// the `var` bucket for keys containing variables, all in subsidiary
/// order.
struct IndexBuckets {
  std::unordered_map<uint64_t, std::vector<Posting>> by_key;
  std::vector<Posting> var_bucket;

  /// Appends postings with from <= sub < to for `key` plus the var
  /// bucket's range.
  void AppendRange(uint64_t key, uint32_t from, uint32_t to,
                   std::vector<Posting>* out) const;
};

/// Argument-form index on columns `cols`.
class ArgumentIndex : public Index {
 public:
  explicit ArgumentIndex(std::vector<uint32_t> cols) : cols_(std::move(cols)) {}

  void Add(const Tuple* t, uint32_t sub) override;
  bool TryLookup(std::span<const TermRef> pattern, uint32_t from, uint32_t to,
                 std::vector<Posting>* out) override;
  int key_width() const override { return static_cast<int>(cols_.size()); }

  /// Probe with a pre-resolved ground key, one Arg per indexed column in
  /// cols() order (the bytecode VM's path: no TermRef/BindEnv plumbing).
  /// Appends the candidate superset for subsidiaries [from, to),
  /// var-bucket postings included.
  void LookupGround(std::span<const Arg* const> key, uint32_t from,
                    uint32_t to, std::vector<Posting>* out) const;

  const std::vector<uint32_t>& cols() const { return cols_; }

 private:
  std::vector<uint32_t> cols_;
  IndexBuckets buckets_;
};

/// Pattern-form index: `pattern` holds one term per column (canonical
/// variable slots 0..var_count-1); `key_slots` are the slots of the
/// indexed pattern variables. A stored tuple that cannot unify with the
/// pattern is excluded entirely (no query served by this index can match
/// it); tuples whose key positions are non-ground go to the var bucket.
class PatternIndex : public Index {
 public:
  PatternIndex(std::vector<const Arg*> pattern, uint32_t var_count,
               std::vector<uint32_t> key_slots)
      : pattern_(std::move(pattern)),
        var_count_(var_count),
        key_slots_(std::move(key_slots)) {}

  void Add(const Tuple* t, uint32_t sub) override;
  bool TryLookup(std::span<const TermRef> pattern, uint32_t from, uint32_t to,
                 std::vector<Posting>* out) override;
  int key_width() const override {
    return static_cast<int>(key_slots_.size());
  }

 private:
  std::vector<const Arg*> pattern_;
  uint32_t var_count_;
  std::vector<uint32_t> key_slots_;
  IndexBuckets buckets_;
};

}  // namespace coral

#endif  // CORAL_REL_INDEX_H_
