// Copyright (c) 1993-style CORAL reproduction authors.
// The Relation interface (paper §3, §3.2): a set (or multiset) of tuples
// with insert/delete, an iterator ('get-next-tuple', the cursor-like
// interface of §2) that supports multiple concurrent scans, and *marks*:
// the ability to distinguish facts inserted before and after a mark,
// implemented as subsidiary relations, one per interval between marks.
// Marks are what every variant of semi-naive evaluation is built on
// (paper §3.2/§5.3).

#ifndef CORAL_REL_RELATION_H_
#define CORAL_REL_RELATION_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/data/bindenv.h"
#include "src/data/term_factory.h"
#include "src/data/tuple.h"
#include "src/rel/agg_selection.h"
#include "src/util/status.h"

namespace coral {

/// A mark: tuples inserted before the mark live in subsidiary relations
/// [0, mark); tuples inserted after live in [mark, ...).
using Mark = uint32_t;
inline constexpr Mark kMaxMark = std::numeric_limits<Mark>::max();

/// State of one scan over a relation; analogous to a SQL cursor. Next()
/// returns stored tuples (never copies); nullptr means exhausted.
/// Scans are stable under concurrent insertion (new tuples may or may not
/// be seen) and skip tuples deleted mid-scan.
class TupleIterator {
 public:
  virtual ~TupleIterator() = default;
  virtual const Tuple* Next() = 0;
  /// Error state, if the producer can fail (module calls, storage scans).
  /// Check after Next() returns nullptr. OK by default.
  virtual const Status& status() const;
};

/// An always-empty iterator.
class EmptyIterator : public TupleIterator {
 public:
  const Tuple* Next() override { return nullptr; }
};

/// Iterator over an in-memory vector of tuples.
class VectorIterator : public TupleIterator {
 public:
  explicit VectorIterator(std::vector<const Tuple*> tuples)
      : tuples_(std::move(tuples)) {}
  const Tuple* Next() override {
    return pos_ < tuples_.size() ? tuples_[pos_++] : nullptr;
  }

 private:
  std::vector<const Tuple*> tuples_;
  size_t pos_ = 0;
};

/// Abstract base of all relation implementations: in-memory hash and list
/// relations, persistent relations, and relations computed by C++ code
/// (paper §7.2). New implementations subclass this without touching the
/// evaluation system.
class Relation {
 public:
  Relation(std::string name, uint32_t arity)
      : name_(std::move(name)), arity_(arity) {}
  virtual ~Relation() = default;

  const std::string& name() const { return name_; }
  uint32_t arity() const { return arity_; }

  /// Multiset semantics (paper §4.2): duplicate checks are skipped and a
  /// tuple appears once per derivation.
  bool multiset() const { return multiset_; }
  void set_multiset(bool v) { multiset_ = v; }

  /// Inserts a canonical tuple. Returns true iff the relation changed
  /// (false when rejected as a duplicate, as subsumed, or by an aggregate
  /// selection). Applies aggregate selections, which may delete stored
  /// tuples that the new tuple dominates.
  bool Insert(const Tuple* t);

  /// Removes a stored tuple; returns true iff it was present. Keeps
  /// aggregate-selection group tables in sync.
  bool Delete(const Tuple* t);

  /// Number of live (non-deleted) tuples.
  virtual size_t size() const = 0;

  /// Full scan.
  std::unique_ptr<TupleIterator> Scan() const {
    return ScanRange(0, kMaxMark);
  }

  /// Scan of subsidiary relations [from, to).
  virtual std::unique_ptr<TupleIterator> ScanRange(Mark from,
                                                   Mark to) const = 0;

  /// Candidate scan for tuples that may unify with `pattern` (one TermRef
  /// per column; variables mean "any"). Implementations return a SUPERSET
  /// of the unifying tuples — callers must still unify. The default
  /// ignores the pattern.
  virtual std::unique_ptr<TupleIterator> Select(
      std::span<const TermRef> pattern, Mark from, Mark to) const {
    (void)pattern;
    return ScanRange(from, to);
  }

  std::unique_ptr<TupleIterator> Select(
      std::span<const TermRef> pattern) const {
    return Select(pattern, 0, kMaxMark);
  }

  /// Places a mark: subsequently inserted tuples are distinguishable from
  /// earlier ones. Returns the boundary.
  virtual Mark Snapshot() = 0;

  /// The mark that new insertions fall after (current open interval).
  virtual Mark CurrentMark() const = 0;

  /// True if a stored tuple equal to (or subsuming) `t` exists.
  virtual bool Contains(const Tuple* t) const = 0;

  /// Storage-specific admission check, consulted before Insert attempts
  /// anything (e.g. persistent relations only accept ground tuples of
  /// primitive-typed fields, paper §3.2).
  virtual Status ValidateInsert(const Tuple* t) const {
    (void)t;
    return Status::OK();
  }

  /// Attaches an aggregate selection (paper §5.5.2). Checked on insert.
  void AddAggregateSelection(std::unique_ptr<AggregateSelection> sel) {
    selections_.push_back(std::move(sel));
  }
  const std::vector<std::unique_ptr<AggregateSelection>>& selections() const {
    return selections_;
  }

 protected:
  /// Storage-specific insert; duplicate/selection checks already done.
  virtual void DoInsert(const Tuple* t) = 0;

  /// Storage-specific delete; returns true iff the tuple was present.
  virtual bool DoDelete(const Tuple* t) = 0;

 private:
  std::string name_;
  uint32_t arity_;
  bool multiset_ = false;
  std::vector<std::unique_ptr<AggregateSelection>> selections_;
};

/// Chains iterators over several subsidiary stores.
class ChainIterator : public TupleIterator {
 public:
  explicit ChainIterator(std::vector<std::unique_ptr<TupleIterator>> parts)
      : parts_(std::move(parts)) {}
  const Tuple* Next() override {
    while (idx_ < parts_.size()) {
      if (const Tuple* t = parts_[idx_]->Next()) return t;
      ++idx_;
    }
    return nullptr;
  }

 private:
  std::vector<std::unique_ptr<TupleIterator>> parts_;
  size_t idx_ = 0;
};

}  // namespace coral

#endif  // CORAL_REL_RELATION_H_
