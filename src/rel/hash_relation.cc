#include "src/rel/hash_relation.h"

#include <algorithm>

#include "src/data/unify.h"

namespace coral {

bool HashRelation::Contains(const Tuple* t) const {
  if (const RelReadTable* table = ViewTable()) {
    // Snapshot semantics of the live check: a ground tuple is present by
    // pointer identity (hash-consing), and any stored non-ground fact
    // that subsumes `t` counts. Linear, but snapshot reads on base
    // relations are scan-shaped anyway (no live indexes).
    const bool ground = t->IsGround();
    for (uint32_t s = 0; s < table->sub_count(); ++s) {
      for (const Tuple* stored : table->sub(s)) {
        if (table->IsDeleted(stored, s)) continue;
        if (ground && stored == t) return true;
        if (!stored->IsGround() && SubsumesTuple(stored, t)) return true;
      }
    }
    return false;
  }
  if (t->IsGround() && ground_counts_.count(t) > 0) return true;
  // Only a non-ground stored fact can subsume anything beyond itself.
  for (const Tuple* ng : nonground_live_) {
    if (SubsumesTuple(ng, t)) return true;
  }
  return false;
}

void HashRelation::DoInsert(const Tuple* t) {
  uint32_t sub = AppendToCurrent(t);
  if (t->IsGround()) {
    ++ground_counts_[t];
  } else {
    nonground_live_.push_back(t);
  }
  for (auto& idx : indexes_) idx->Add(t, sub);
}

bool HashRelation::DoDelete(const Tuple* t) {
  if (t->IsGround()) {
    auto it = ground_counts_.find(t);
    if (it == ground_counts_.end()) return false;
    MarkDeleted(t, it->second);
    ground_counts_.erase(it);
    return true;
  }
  size_t occurrences = 0;
  for (size_t i = 0; i < nonground_live_.size();) {
    if (nonground_live_[i] == t) {
      ++occurrences;
      nonground_live_[i] = nonground_live_.back();
      nonground_live_.pop_back();
    } else {
      ++i;
    }
  }
  if (occurrences == 0) return false;
  MarkDeleted(t, occurrences);
  return true;
}

std::unique_ptr<TupleIterator> HashRelation::Select(
    std::span<const TermRef> pattern, Mark from, Mark to) const {
  if (ViewTable() != nullptr) {
    // Select returns a candidate SUPERSET; the frozen-table scan is one.
    return ScanRange(from, to);
  }
  for (const auto& idx : indexes_) {
    std::vector<Posting> candidates;
    if (idx->TryLookup(pattern, from, to, &candidates)) {
      return std::make_unique<CandidateIterator>(std::move(candidates),
                                                 &deleted_);
    }
  }
  return ScanRange(from, to);
}

void HashRelation::Backfill(Index* index) {
  for (uint32_t s = 0; s < subs_.size(); ++s) {
    for (const Tuple* t : subs_[s].tuples) {
      if (!IsDeletedAt(t, s)) index->Add(t, s);
    }
  }
}

void HashRelation::AddArgumentIndex(std::vector<uint32_t> cols) {
  if (HasArgumentIndex(cols)) return;
  auto idx = std::make_unique<ArgumentIndex>(std::move(cols));
  Backfill(idx.get());
  argument_indexes_.push_back(idx.get());
  indexes_.push_back(std::move(idx));
  std::stable_sort(indexes_.begin(), indexes_.end(),
                   [](const auto& a, const auto& b) {
                     return a->key_width() > b->key_width();
                   });
}

void HashRelation::AddPatternIndex(std::vector<const Arg*> pattern,
                                   uint32_t var_count,
                                   std::vector<uint32_t> key_slots) {
  auto idx = std::make_unique<PatternIndex>(std::move(pattern), var_count,
                                            std::move(key_slots));
  Backfill(idx.get());
  indexes_.push_back(std::move(idx));
  std::stable_sort(indexes_.begin(), indexes_.end(),
                   [](const auto& a, const auto& b) {
                     return a->key_width() > b->key_width();
                   });
}

void HashRelation::AddCustomIndex(std::unique_ptr<Index> index) {
  Backfill(index.get());
  indexes_.push_back(std::move(index));
  std::stable_sort(indexes_.begin(), indexes_.end(),
                   [](const auto& a, const auto& b) {
                     return a->key_width() > b->key_width();
                   });
}

bool HashRelation::ProbeArgs(std::span<const uint32_t> cols,
                             std::span<const Arg* const> key, Mark from,
                             Mark to, std::vector<const Tuple*>* out) const {
  // Live argument indexes are writer-side structures; snapshot readers
  // decline the probe and the VM scans the (view-served) window instead.
  if (ViewTable() != nullptr) return false;
  auto pos_of = [&](uint32_t c) {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == c) return i;
    }
    return cols.size();
  };
  const ArgumentIndex* best = nullptr;
  for (const ArgumentIndex* idx : argument_indexes_) {
    if (idx->cols().empty()) continue;
    bool covered = true;
    for (uint32_t c : idx->cols()) {
      if (pos_of(c) == cols.size()) {
        covered = false;
        break;
      }
    }
    if (covered &&
        (best == nullptr || idx->cols().size() > best->cols().size())) {
      best = idx;
    }
  }
  if (best == nullptr) return false;
  std::vector<Posting> postings;
  if (best->cols().size() == cols.size() &&
      std::equal(best->cols().begin(), best->cols().end(), cols.begin())) {
    best->LookupGround(key, from, to, &postings);
  } else {
    // Partial-cover probe: reorder the key to the index's column order.
    std::vector<const Arg*> idx_key;
    idx_key.reserve(best->cols().size());
    for (uint32_t c : best->cols()) idx_key.push_back(key[pos_of(c)]);
    best->LookupGround(idx_key, from, to, &postings);
  }
  out->reserve(out->size() + postings.size());
  for (const Posting& p : postings) {
    if (!IsDeletedAt(p.tuple, p.sub)) out->push_back(p.tuple);
  }
  return true;
}

bool HashRelation::HasArgumentIndex(const std::vector<uint32_t>& cols) const {
  for (const ArgumentIndex* idx : argument_indexes_) {
    if (idx->cols() == cols) return true;
  }
  return false;
}

}  // namespace coral
