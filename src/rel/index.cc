#include "src/rel/index.h"

#include <algorithm>

#include "src/data/unify.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace coral {

namespace {

constexpr uint64_t kKeySeed = 0x1dec5ull;

void AppendPostings(const std::vector<Posting>& postings, uint32_t from,
                    uint32_t to, std::vector<Posting>* out) {
  // Postings are in non-decreasing `sub` order: binary search the range.
  auto lo = std::lower_bound(
      postings.begin(), postings.end(), from,
      [](const Posting& p, uint32_t s) { return p.sub < s; });
  for (auto it = lo; it != postings.end() && it->sub < to; ++it) {
    out->push_back(*it);
  }
}

}  // namespace

void IndexBuckets::AppendRange(uint64_t key, uint32_t from, uint32_t to,
                               std::vector<Posting>* out) const {
  auto it = by_key.find(key);
  if (it != by_key.end()) AppendPostings(it->second, from, to, out);
  AppendPostings(var_bucket, from, to, out);
}

void ArgumentIndex::Add(const Tuple* t, uint32_t sub) {
  uint64_t key = kKeySeed;
  bool ground = true;
  for (uint32_t c : cols_) {
    CORAL_DCHECK(c < t->arity());
    const Arg* v = t->arg(c);
    if (!v->IsGround()) {
      ground = false;
      break;
    }
    key = HashCombine(key, v->Hash());
  }
  if (ground) {
    buckets_.by_key[key].push_back(Posting{sub, t});
  } else {
    buckets_.var_bucket.push_back(Posting{sub, t});
  }
}

bool ArgumentIndex::TryLookup(std::span<const TermRef> pattern, uint32_t from,
                              uint32_t to, std::vector<Posting>* out) {
  uint64_t key = kKeySeed;
  for (uint32_t c : cols_) {
    if (c >= pattern.size()) return false;
    uint64_t h;
    if (!HashResolvedTerm(pattern[c].term, pattern[c].env, &h)) {
      return false;  // key column not ground in the query
    }
    key = HashCombine(key, h);
  }
  buckets_.AppendRange(key, from, to, out);
  return true;
}

void ArgumentIndex::LookupGround(std::span<const Arg* const> key,
                                 uint32_t from, uint32_t to,
                                 std::vector<Posting>* out) const {
  CORAL_DCHECK(key.size() == cols_.size());
  uint64_t k = kKeySeed;
  for (const Arg* a : key) {
    CORAL_DCHECK(a->IsGround());
    k = HashCombine(k, a->Hash());
  }
  buckets_.AppendRange(k, from, to, out);
}

void PatternIndex::Add(const Tuple* t, uint32_t sub) {
  BindEnv pat_env(var_count_);
  BindEnv tup_env(t->var_count());
  Trail trail;
  bool unifies = true;
  CORAL_DCHECK(pattern_.size() == t->arity());
  for (size_t i = 0; i < pattern_.size() && unifies; ++i) {
    unifies = Unify(pattern_[i], &pat_env, t->arg(i), &tup_env, &trail);
  }
  if (!unifies) return;  // excluded: cannot match any query of this index

  uint64_t key = kKeySeed;
  bool ground = true;
  for (uint32_t slot : key_slots_) {
    uint64_t h;
    const Binding& b = pat_env.binding(slot);
    if (!b.bound() || !HashResolvedTerm(b.value, b.env, &h)) {
      ground = false;
      break;
    }
    key = HashCombine(key, h);
  }
  if (ground) {
    buckets_.by_key[key].push_back(Posting{sub, t});
  } else {
    buckets_.var_bucket.push_back(Posting{sub, t});
  }
}

bool PatternIndex::TryLookup(std::span<const TermRef> pattern, uint32_t from,
                             uint32_t to, std::vector<Posting>* out) {
  if (pattern.size() != pattern_.size()) return false;
  BindEnv pat_env(var_count_);
  // Query variables must not acquire bindings here: unify into a scratch
  // trail and undo before returning.
  Trail trail;
  bool unifies = true;
  for (size_t i = 0; i < pattern.size() && unifies; ++i) {
    unifies = Unify(pattern_[i], &pat_env, pattern[i].term, pattern[i].env,
                    &trail);
  }
  if (!unifies) {
    // The query cannot match the index pattern; tuples excluded from this
    // index may still unify with the query, so the index is unusable.
    trail.UndoTo(0);
    return false;
  }
  uint64_t key = kKeySeed;
  bool ground = true;
  for (uint32_t slot : key_slots_) {
    uint64_t h;
    const Binding& b = pat_env.binding(slot);
    if (!b.bound() || !HashResolvedTerm(b.value, b.env, &h)) {
      ground = false;
      break;
    }
    key = HashCombine(key, h);
  }
  trail.UndoTo(0);
  if (!ground) return false;  // key not determined by the query
  buckets_.AppendRange(key, from, to, out);
  return true;
}

}  // namespace coral
