// Copyright (c) 1993-style CORAL reproduction authors.
// Aggregate selections (paper §5.5.2): run-time pruning constraints of the
// form  @aggregate_selection p(X,Y,P,C) (X,Y) min(C).
// When a tuple is inserted, tuples in the same group (same X,Y) are
// compared on the aggregated argument: with min, a costlier fact is
// discarded (either the incoming one or previously stored ones). The
// `any` aggregate retains a single witness per group. This is what makes
// the paper's shortest-path program terminate and run in O(E·V).

#ifndef CORAL_REL_AGG_SELECTION_H_
#define CORAL_REL_AGG_SELECTION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/data/arg.h"
#include "src/data/tuple.h"

namespace coral {

class Relation;

/// One @aggregate_selection constraint attached to a relation.
class AggregateSelection {
 public:
  enum class Kind { kMin, kMax, kAny };

  /// `pattern` are the declaration's argument terms p(X,Y,P,C) using
  /// canonical variable slots 0..var_count-1; `group_args` the terms of
  /// the grouping list (typically plain variables); `agg_arg` the
  /// aggregated variable (ignored for kAny, may be null).
  AggregateSelection(Kind kind, std::vector<const Arg*> pattern,
                     uint32_t var_count, std::vector<const Arg*> group_args,
                     const Arg* agg_arg)
      : kind_(kind),
        pattern_(std::move(pattern)),
        var_count_(var_count),
        group_args_(std::move(group_args)),
        agg_arg_(agg_arg) {}

  Kind kind() const { return kind_; }

  /// Decision for an insert attempt.
  struct Decision {
    bool admit = true;                      // insert the new tuple?
    std::vector<const Tuple*> to_delete;    // dominated stored tuples
  };

  /// Evaluates the constraint for `t` against the group table. Does not
  /// mutate state; call Admit/Remove afterwards to keep the table in sync.
  Decision Check(const Tuple* t) const;

  /// Records `t` as stored (call after a successful insert).
  void Admit(const Tuple* t);

  /// Removes `t` from the group table (call when deleted).
  void Remove(const Tuple* t);

 private:
  /// Extracts the group key hash and the aggregated value for `t`.
  /// Returns false if the tuple does not match the pattern (then the
  /// selection does not constrain it).
  bool Extract(const Tuple* t, uint64_t* group_hash,
               std::vector<const Arg*>* group_vals, const Arg** agg_val) const;

  Kind kind_;
  std::vector<const Arg*> pattern_;
  uint32_t var_count_;
  std::vector<const Arg*> group_args_;
  const Arg* agg_arg_;

  struct GroupEntry {
    std::vector<const Arg*> group_vals;
    std::vector<const Tuple*> tuples;
  };
  // group hash -> entries (collision list).
  std::unordered_map<uint64_t, std::vector<GroupEntry>> groups_;
};

}  // namespace coral

#endif  // CORAL_REL_AGG_SELECTION_H_
