#include "src/rel/memory_relation.h"

namespace coral {

const RelReadTable* MemoryRelation::EmptyTable() {
  static const RelReadTable* empty = new RelReadTable();
  return empty;
}

void MemoryRelation::PublishCommitted(uint64_t epoch) {
  auto table = std::make_unique<RelReadTable>();
  table->epoch = epoch;
  // Every subsidiary except the open one is closed (appends only ever go
  // to subs_.back()), so its tuple vector is immutable and can be shared
  // by pointer; the open one is copied.
  size_t closed = subs_.size() - 1;
  table->subs.reserve(closed);
  for (size_t i = 0; i < closed; ++i) table->subs.push_back(&subs_[i].tuples);
  table->tail = subs_.back().tuples;
  table->tombstones = std::make_shared<const TombstoneMap>(deleted_);
  const RelReadTable* raw = table.get();
  retired_.push_back(std::move(table));
  pub_.store(raw, std::memory_order_release);
  pub_dirty_ = false;
}

}  // namespace coral
