#include "src/rel/agg_selection.h"

#include <algorithm>

#include "src/data/bindenv.h"
#include "src/data/unify.h"
#include "src/util/hash.h"

namespace coral {

bool AggregateSelection::Extract(const Tuple* t, uint64_t* group_hash,
                                 std::vector<const Arg*>* group_vals,
                                 const Arg** agg_val) const {
  if (t->arity() != pattern_.size()) return false;
  BindEnv pat_env(var_count_);
  BindEnv tup_env(t->var_count());
  Trail trail;
  for (size_t i = 0; i < pattern_.size(); ++i) {
    if (!Match(pattern_[i], &pat_env, t->arg(i), &tup_env, &trail)) {
      return false;
    }
  }
  group_vals->clear();
  uint64_t h = 0x96015ull;
  for (const Arg* g : group_args_) {
    TermRef r = Deref(g, &pat_env);
    // Group positions bound to non-ground values hash structurally
    // (variables all alike); equality below is structural too.
    group_vals->push_back(r.term);
    h = HashCombine(h, r.term->Hash());
  }
  *group_hash = h;
  if (agg_arg_ != nullptr) {
    *agg_val = Deref(agg_arg_, &pat_env).term;
  } else {
    *agg_val = nullptr;
  }
  return true;
}

namespace {

bool SameGroup(const std::vector<const Arg*>& a,
               const std::vector<const Arg*>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i] && !a[i]->Equals(*b[i])) return false;
  }
  return true;
}

}  // namespace

AggregateSelection::Decision AggregateSelection::Check(const Tuple* t) const {
  Decision d;
  uint64_t gh;
  std::vector<const Arg*> gvals;
  const Arg* agg = nullptr;
  if (!Extract(t, &gh, &gvals, &agg)) return d;  // unconstrained

  auto it = groups_.find(gh);
  if (it == groups_.end()) return d;
  const GroupEntry* entry = nullptr;
  for (const GroupEntry& e : it->second) {
    if (SameGroup(e.group_vals, gvals)) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr || entry->tuples.empty()) return d;

  if (kind_ == Kind::kAny) {
    // A witness already exists for this group: reject the newcomer.
    d.admit = false;
    return d;
  }

  // min/max: compare against any stored representative. All stored tuples
  // in the group carry the same aggregate value after pruning? No — they
  // may differ if equal under the order; compare against all.
  for (const Tuple* stored : entry->tuples) {
    uint64_t sh;
    std::vector<const Arg*> sgv;
    const Arg* sagg = nullptr;
    bool ok = Extract(stored, &sh, &sgv, &sagg);
    if (!ok || sagg == nullptr || agg == nullptr) continue;
    int c = CompareArgs(agg, sagg);
    bool new_is_worse = kind_ == Kind::kMin ? c > 0 : c < 0;
    bool stored_is_worse = kind_ == Kind::kMin ? c < 0 : c > 0;
    if (new_is_worse) {
      d.admit = false;
      d.to_delete.clear();
      return d;
    }
    if (stored_is_worse) d.to_delete.push_back(stored);
  }
  return d;
}

void AggregateSelection::Admit(const Tuple* t) {
  uint64_t gh;
  std::vector<const Arg*> gvals;
  const Arg* agg = nullptr;
  if (!Extract(t, &gh, &gvals, &agg)) return;
  auto& entries = groups_[gh];
  for (GroupEntry& e : entries) {
    if (SameGroup(e.group_vals, gvals)) {
      e.tuples.push_back(t);
      return;
    }
  }
  entries.push_back(GroupEntry{std::move(gvals), {t}});
}

void AggregateSelection::Remove(const Tuple* t) {
  uint64_t gh;
  std::vector<const Arg*> gvals;
  const Arg* agg = nullptr;
  if (!Extract(t, &gh, &gvals, &agg)) return;
  auto it = groups_.find(gh);
  if (it == groups_.end()) return;
  for (GroupEntry& e : it->second) {
    if (SameGroup(e.group_vals, gvals)) {
      auto pos = std::find(e.tuples.begin(), e.tuples.end(), t);
      if (pos != e.tuples.end()) e.tuples.erase(pos);
      return;
    }
  }
}

}  // namespace coral
