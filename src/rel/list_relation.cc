#include "src/rel/list_relation.h"

#include "src/data/unify.h"

namespace coral {

bool ListRelation::Contains(const Tuple* t) const {
  for (uint32_t s = 0; s < subs_.size(); ++s) {
    for (const Tuple* stored : subs_[s].tuples) {
      if (IsDeletedAt(stored, s)) continue;
      if (stored == t) return true;  // ground tuples are interned
      if (SubsumesTuple(stored, t)) return true;
    }
  }
  return false;
}

void ListRelation::DoInsert(const Tuple* t) { AppendToCurrent(t); }

bool ListRelation::DoDelete(const Tuple* t) {
  size_t occurrences = 0;
  for (uint32_t s = 0; s < subs_.size(); ++s) {
    for (const Tuple* stored : subs_[s].tuples) {
      if (stored == t && !IsDeletedAt(stored, s)) ++occurrences;
    }
  }
  if (occurrences == 0) return false;
  MarkDeleted(t, occurrences);
  return true;
}

}  // namespace coral
