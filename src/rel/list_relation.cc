#include "src/rel/list_relation.h"

#include "src/data/unify.h"

namespace coral {

bool ListRelation::Contains(const Tuple* t) const {
  for (const Subsidiary& sub : subs_) {
    for (const Tuple* stored : sub.tuples) {
      if (IsDeleted(stored)) continue;
      if (stored == t) return true;  // ground tuples are interned
      if (SubsumesTuple(stored, t)) return true;
    }
  }
  return false;
}

void ListRelation::DoInsert(const Tuple* t) { AppendToCurrent(t); }

bool ListRelation::DoDelete(const Tuple* t) {
  size_t occurrences = 0;
  for (const Subsidiary& sub : subs_) {
    for (const Tuple* stored : sub.tuples) {
      if (stored == t && !IsDeleted(stored)) ++occurrences;
    }
  }
  if (occurrences == 0) return false;
  MarkDeleted(t, occurrences);
  return true;
}

}  // namespace coral
