#include "src/rel/readview.h"

namespace coral {

namespace {
thread_local const ReadView* g_active_view = nullptr;
}  // namespace

const ReadView* ActiveReadView() { return g_active_view; }

ScopedReadView::ScopedReadView(const ReadView* view) : prev_(g_active_view) {
  g_active_view = view;
}

ScopedReadView::~ScopedReadView() { g_active_view = prev_; }

}  // namespace coral
