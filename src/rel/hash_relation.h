// Copyright (c) 1993-style CORAL reproduction authors.
// HashRelation: the default in-memory relation (paper §3.2). Ground-tuple
// duplicate checks are O(1) thanks to tuple hash-consing; non-ground
// facts are checked by subsumption. Argument-form and pattern-form hash
// indices can be attached at creation or later (paper §2: "indices can
// also be created at a later time").

#ifndef CORAL_REL_HASH_RELATION_H_
#define CORAL_REL_HASH_RELATION_H_

#include <memory>

#include "src/rel/index.h"
#include "src/rel/memory_relation.h"

namespace coral {

/// Yields a prematerialized candidate posting list, filtering each
/// occurrence against the relation's tombstone boundaries at yield time
/// (so deletions that happen after materialization — e.g. aggregate-
/// selection deletes during consumption — are not served).
class CandidateIterator : public TupleIterator {
 public:
  CandidateIterator(std::vector<Posting> candidates,
                    const TombstoneMap* deleted)
      : candidates_(std::move(candidates)), deleted_(deleted) {}

  const Tuple* Next() override {
    while (pos_ < candidates_.size()) {
      const Posting& p = candidates_[pos_++];
      if (!TombstonedAt(*deleted_, p.tuple, p.sub)) return p.tuple;
    }
    return nullptr;
  }

 private:
  std::vector<Posting> candidates_;
  const TombstoneMap* deleted_;
  size_t pos_ = 0;
};

class HashRelation : public MemoryRelation {
 public:
  HashRelation(std::string name, uint32_t arity)
      : MemoryRelation(std::move(name), arity) {}

  /// Snapshot readers (an installed ReadView over a shared base relation)
  /// are served from the frozen epoch table: Select degrades to a table
  /// scan, Contains to a linear subsumption check, and ProbeArgs declines
  /// so the VM takes its documented window-scan fallback — the live
  /// indexes and count maps are writer-side structures and are never
  /// touched from reader threads.
  bool Contains(const Tuple* t) const override;

  std::unique_ptr<TupleIterator> Select(std::span<const TermRef> pattern,
                                        Mark from, Mark to) const override;
  using Relation::Select;

  /// Attaches an argument-form index on `cols`, backfilling existing
  /// tuples. No-op if an identical index exists.
  void AddArgumentIndex(std::vector<uint32_t> cols);

  /// Attaches a pattern-form index (see PatternIndex), backfilling.
  void AddPatternIndex(std::vector<const Arg*> pattern, uint32_t var_count,
                       std::vector<uint32_t> key_slots);

  /// Attaches a user-defined Index implementation (paper §7.2: "new index
  /// implementations can be added without modifying the rest of the
  /// system"), backfilling existing tuples.
  void AddCustomIndex(std::unique_ptr<Index> index);

  size_t index_count() const { return indexes_.size(); }

  /// True if an argument index on exactly `cols` exists.
  bool HasArgumentIndex(const std::vector<uint32_t>& cols) const;

  /// Direct probe for the bytecode VM: candidates matching ground `key`
  /// values at columns `cols` within subsidiaries [from, to). Uses the
  /// widest attached argument index whose columns are a subset of `cols`
  /// and appends a candidate SUPERSET (var-bucket postings included,
  /// tombstones filtered) — callers still check every column. Returns
  /// false when no argument index can serve the probe; the caller must
  /// fall back to scanning the window.
  bool ProbeArgs(std::span<const uint32_t> cols,
                 std::span<const Arg* const> key, Mark from, Mark to,
                 std::vector<const Tuple*>* out) const;

 protected:
  void DoInsert(const Tuple* t) override;
  bool DoDelete(const Tuple* t) override;

 private:
  void Backfill(Index* index);

  // Live occurrence counts of ground tuples (multisets count > 1).
  std::unordered_map<const Tuple*, uint32_t> ground_counts_;
  // Live non-ground stored tuples, with repeats under multiset semantics.
  std::vector<const Tuple*> nonground_live_;
  // Indexes sorted by descending key width (most selective first).
  std::vector<std::unique_ptr<Index>> indexes_;
  std::vector<const ArgumentIndex*> argument_indexes_;
};

}  // namespace coral

#endif  // CORAL_REL_HASH_RELATION_H_
