// Copyright (c) 1993-style CORAL reproduction authors.
// Shared machinery of in-memory relations: subsidiary relations (one per
// mark interval, paper §3.2), tombstone deletion, and range scans. For
// relations marked as shared base relations, commits additionally publish
// immutable epoch snapshots (src/rel/readview.h) that concurrent reader
// threads scan instead of the live structures.

#ifndef CORAL_REL_MEMORY_RELATION_H_
#define CORAL_REL_MEMORY_RELATION_H_

#include <atomic>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/rel/readview.h"
#include "src/rel/relation.h"
#include "src/rel/tombstones.h"
#include "src/util/logging.h"

namespace coral {

/// Base for ListRelation and HashRelation. Owns the subsidiary-relation
/// organization that implements marks; storage of tuples is append-only
/// with tombstones (Tuple objects are owned by the TermFactory and never
/// freed, so a tombstoned pointer stays valid for open scans).
///
/// Thread-safety contract: mutation (Insert/Delete/Snapshot) and live
/// reads are single-threaded, exactly as before. A relation marked with
/// MarkSharedBase participates in the server's snapshot protocol: the
/// commit lock holder calls PublishCommitted, and reader threads that
/// installed a ReadView are served frozen tables by the read paths
/// (ScanRange here; Select/Contains/ProbeArgs in HashRelation), never
/// touching the live deque, tombstone set, or indexes.
class MemoryRelation : public Relation {
 public:
  MemoryRelation(std::string name, uint32_t arity)
      : Relation(std::move(name), arity), subs_(1) {}

  size_t size() const override {
    return live_.load(std::memory_order_relaxed);
  }

  Mark Snapshot() override {
    if (subs_.back().tuples.empty()) {
      return static_cast<Mark>(subs_.size() - 1);
    }
    // kMaxMark is the open-ended scan bound, never a real subsidiary.
    CORAL_CHECK(subs_.size() < static_cast<size_t>(kMaxMark));
    subs_.emplace_back();
    OnNewSubsidiary(static_cast<uint32_t>(subs_.size() - 1));
    return static_cast<Mark>(subs_.size() - 1);
  }

  Mark CurrentMark() const override {
    return static_cast<Mark>(subs_.size() - 1);
  }

  std::unique_ptr<TupleIterator> ScanRange(Mark from, Mark to) const override;

  // ---- shared-base snapshot protocol (query server) ----
  /// Enrolls this relation in snapshot publication. Must happen-before
  /// any reader thread can reach the relation (the Database marks base
  /// relations under its base-map mutex before exposing them).
  void MarkSharedBase() {
    shared_base_ = true;
    pub_dirty_ = true;
  }
  bool is_shared_base() const { return shared_base_; }

  /// True when live state changed since the last publication. Only
  /// meaningful to the commit lock holder.
  bool publish_dirty() const { return pub_dirty_; }

  /// Freezes the current contents as the published epoch table. Caller
  /// must hold the database commit lock exclusively (no live mutation,
  /// no concurrent publication). Previously published tables are retained
  /// until the relation dies, so views taken at older epochs stay valid.
  void PublishCommitted(uint64_t epoch);

  /// The most recently published table (nullptr before the first
  /// publication). The Database reads this under the commit lock when
  /// assembling a ReadView.
  const RelReadTable* published_table() const {
    return pub_.load(std::memory_order_acquire);
  }

 protected:
  struct Subsidiary {
    std::vector<const Tuple*> tuples;
  };

  /// Hook for subclasses that keep per-subsidiary structures (indices).
  virtual void OnNewSubsidiary(uint32_t sub) { (void)sub; }

  /// Appends to the open subsidiary and maintains live bookkeeping.
  /// Returns the subsidiary number the tuple landed in. Re-insertion
  /// after deletion is live by position (the open subsidiary is at or
  /// above any tombstone boundary); the dead occurrences stay dead, so
  /// live_ accounting is exact across delete-then-reinsert sequences.
  uint32_t AppendToCurrent(const Tuple* t) {
    uint32_t sub = static_cast<uint32_t>(subs_.size() - 1);
    subs_[sub].tuples.push_back(t);
    live_.fetch_add(1, std::memory_order_relaxed);
    if (shared_base_) pub_dirty_ = true;
    return sub;
  }

  /// True iff the occurrence of `t` in subsidiary `sub` is dead.
  bool IsDeletedAt(const Tuple* t, uint32_t sub) const {
    return TombstonedAt(deleted_, t, sub);
  }

  /// Kills every existing occurrence of `t` (the caller counted them as
  /// `occurrences`). Closes the open subsidiary first so the boundary
  /// covers all of them.
  void MarkDeleted(const Tuple* t, size_t occurrences) {
    uint32_t boundary = static_cast<uint32_t>(Snapshot());
    deleted_[t] = boundary;  // monotone: Snapshot() never moves backwards
    live_.fetch_sub(occurrences, std::memory_order_relaxed);
    if (shared_base_) pub_dirty_ = true;
  }

  /// The frozen table reader threads must use instead of live state:
  /// nullptr when this thread reads live (no view installed, or the
  /// relation is not a shared base). A shared base absent from the view
  /// was created after the view's epoch and reads as empty.
  const RelReadTable* ViewTable() const {
    if (!shared_base_) return nullptr;
    const ReadView* view = ActiveReadView();
    if (view == nullptr) return nullptr;
    const RelReadTable* table = view->TableFor(this);
    return table != nullptr ? table : EmptyTable();
  }

  static const RelReadTable* EmptyTable();

  // deque: closed subsidiaries never move, so published tables can point
  // straight at their tuple vectors.
  std::deque<Subsidiary> subs_;
  TombstoneMap deleted_;
  // relaxed atomic: the optimizer's cardinality heuristic reads size()
  // from compile threads while the writer loads facts.
  std::atomic<size_t> live_{0};

 private:
  bool shared_base_ = false;
  bool pub_dirty_ = false;
  std::atomic<const RelReadTable*> pub_{nullptr};
  std::vector<std::unique_ptr<RelReadTable>> retired_;

  friend class MemoryScanIterator;
};

/// Walks subsidiaries [from, to), index-based so concurrent appends are
/// safe; skips tombstoned tuples at yield time.
class MemoryScanIterator : public TupleIterator {
 public:
  MemoryScanIterator(const MemoryRelation* rel, Mark from, Mark to)
      : rel_(rel), sub_(from), to_(to) {}

  const Tuple* Next() override {
    while (true) {
      uint32_t hi = std::min<uint32_t>(
          to_, static_cast<uint32_t>(rel_->subs_.size()));
      if (sub_ >= hi) return nullptr;
      const auto& tuples = rel_->subs_[sub_].tuples;
      if (pos_ >= tuples.size()) {
        if (sub_ + 1 >= hi) return nullptr;
        ++sub_;
        pos_ = 0;
        continue;
      }
      const Tuple* t = tuples[pos_++];
      if (!rel_->IsDeletedAt(t, sub_)) return t;
    }
  }

 private:
  const MemoryRelation* rel_;
  uint32_t sub_;
  uint32_t to_;
  size_t pos_ = 0;
};

/// Walks a published RelReadTable over subsidiary range [from, to),
/// filtering against the table's frozen tombstone set. Touches no live
/// relation state, so any number of readers can run against any number
/// of epochs while a writer commits.
class TableScanIterator : public TupleIterator {
 public:
  TableScanIterator(const RelReadTable* table, Mark from, Mark to)
      : table_(table), sub_(from), to_(to) {}

  const Tuple* Next() override {
    uint32_t hi = std::min<uint32_t>(to_, table_->sub_count());
    while (sub_ < hi) {
      const std::vector<const Tuple*>& tuples = table_->sub(sub_);
      if (pos_ >= tuples.size()) {
        ++sub_;
        pos_ = 0;
        continue;
      }
      const Tuple* t = tuples[pos_++];
      if (!table_->IsDeleted(t, sub_)) return t;
    }
    return nullptr;
  }

 private:
  const RelReadTable* table_;
  uint32_t sub_;
  uint32_t to_;
  size_t pos_ = 0;
};

inline std::unique_ptr<TupleIterator> MemoryRelation::ScanRange(
    Mark from, Mark to) const {
  if (const RelReadTable* table = ViewTable()) {
    return std::make_unique<TableScanIterator>(table, from, to);
  }
  return std::make_unique<MemoryScanIterator>(this, from, to);
}

}  // namespace coral

#endif  // CORAL_REL_MEMORY_RELATION_H_
