// Copyright (c) 1993-style CORAL reproduction authors.
// Shared machinery of in-memory relations: subsidiary relations (one per
// mark interval, paper §3.2), tombstone deletion, and range scans.

#ifndef CORAL_REL_MEMORY_RELATION_H_
#define CORAL_REL_MEMORY_RELATION_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/rel/relation.h"

namespace coral {

/// Base for ListRelation and HashRelation. Owns the subsidiary-relation
/// organization that implements marks; storage of tuples is append-only
/// with tombstones (Tuple objects are owned by the TermFactory and never
/// freed, so a tombstoned pointer stays valid for open scans).
class MemoryRelation : public Relation {
 public:
  MemoryRelation(std::string name, uint32_t arity)
      : Relation(std::move(name), arity), subs_(1) {}

  size_t size() const override { return live_; }

  Mark Snapshot() override {
    if (subs_.back().tuples.empty()) {
      return static_cast<Mark>(subs_.size() - 1);
    }
    subs_.emplace_back();
    OnNewSubsidiary(static_cast<uint32_t>(subs_.size() - 1));
    return static_cast<Mark>(subs_.size() - 1);
  }

  Mark CurrentMark() const override {
    return static_cast<Mark>(subs_.size() - 1);
  }

  std::unique_ptr<TupleIterator> ScanRange(Mark from, Mark to) const override;

 protected:
  struct Subsidiary {
    std::vector<const Tuple*> tuples;
  };

  /// Hook for subclasses that keep per-subsidiary structures (indices).
  virtual void OnNewSubsidiary(uint32_t sub) { (void)sub; }

  /// Appends to the open subsidiary and maintains live bookkeeping.
  /// Returns the subsidiary number the tuple landed in.
  uint32_t AppendToCurrent(const Tuple* t) {
    uint32_t sub = static_cast<uint32_t>(subs_.size() - 1);
    subs_[sub].tuples.push_back(t);
    // Reinsertion after deletion clears the tombstone; the old occurrence
    // becomes visible again, which can only cause a harmless repeat
    // derivation (inserts de-duplicate).
    deleted_.erase(t);
    ++live_;
    return sub;
  }

  bool IsDeleted(const Tuple* t) const { return deleted_.count(t) > 0; }

  void MarkDeleted(const Tuple* t, size_t occurrences) {
    deleted_.insert(t);
    live_ -= occurrences;
  }

  std::vector<Subsidiary> subs_;
  std::unordered_set<const Tuple*> deleted_;
  size_t live_ = 0;

  friend class MemoryScanIterator;
};

/// Walks subsidiaries [from, to), index-based so concurrent appends are
/// safe; skips tombstoned tuples at yield time.
class MemoryScanIterator : public TupleIterator {
 public:
  MemoryScanIterator(const MemoryRelation* rel, Mark from, Mark to)
      : rel_(rel), sub_(from), to_(to) {}

  const Tuple* Next() override {
    while (true) {
      uint32_t hi = std::min<uint32_t>(
          to_, static_cast<uint32_t>(rel_->subs_.size()));
      if (sub_ >= hi) return nullptr;
      const auto& tuples = rel_->subs_[sub_].tuples;
      if (pos_ >= tuples.size()) {
        if (sub_ + 1 >= hi) return nullptr;
        ++sub_;
        pos_ = 0;
        continue;
      }
      const Tuple* t = tuples[pos_++];
      if (!rel_->IsDeleted(t)) return t;
    }
  }

 private:
  const MemoryRelation* rel_;
  uint32_t sub_;
  uint32_t to_;
  size_t pos_ = 0;
};

/// Yields a prematerialized candidate list, skipping tombstones that
/// appear after materialization (e.g. aggregate-selection deletes during
/// consumption).
class CandidateIterator : public TupleIterator {
 public:
  CandidateIterator(std::vector<const Tuple*> candidates,
                    const std::unordered_set<const Tuple*>* deleted)
      : candidates_(std::move(candidates)), deleted_(deleted) {}

  const Tuple* Next() override {
    while (pos_ < candidates_.size()) {
      const Tuple* t = candidates_[pos_++];
      if (deleted_->count(t) == 0) return t;
    }
    return nullptr;
  }

 private:
  std::vector<const Tuple*> candidates_;
  const std::unordered_set<const Tuple*>* deleted_;
  size_t pos_ = 0;
};

inline std::unique_ptr<TupleIterator> MemoryRelation::ScanRange(
    Mark from, Mark to) const {
  return std::make_unique<MemoryScanIterator>(this, from, to);
}

}  // namespace coral

#endif  // CORAL_REL_MEMORY_RELATION_H_
