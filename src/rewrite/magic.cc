#include "src/rewrite/magic.h"

#include "src/util/logging.h"

namespace coral {

namespace {

Symbol MagicSym(const PredRef& adorned_pred, TermFactory* factory) {
  return factory->symbols().Intern("m_" + adorned_pred.sym->name);
}

}  // namespace

Literal MakeMagicLiteral(const Literal& lit, const std::string& adornment,
                         TermFactory* factory) {
  Literal magic;
  magic.pred = MagicSym(lit.pred_ref(), factory);
  for (uint32_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] == 'b') magic.args.push_back(lit.args[i]);
  }
  return magic;
}

StatusOr<MagicProgram> MagicTemplates(const AdornedProgram& adorned,
                                      TermFactory* factory) {
  MagicProgram out;

  auto magic_pred_of = [&](const PredRef& p) {
    const AdornInfo& info = adorned.adorned.at(p);
    uint32_t bound = 0;
    for (char c : info.adornment) bound += c == 'b';
    PredRef mp{MagicSym(p, factory), bound};
    out.magic_of.emplace(p, mp);
    return mp;
  };

  out.seed_pred = magic_pred_of(adorned.query_pred);

  for (const Rule& r : adorned.rules) {
    PredRef head = r.head.pred_ref();
    const AdornInfo& head_info = adorned.adorned.at(head);
    Literal head_magic =
        MakeMagicLiteral(r.head, head_info.adornment, factory);
    magic_pred_of(head);

    // Magic rules: one per adorned body literal, from the prefix.
    for (size_t i = 0; i < r.body.size(); ++i) {
      const Literal& lit = r.body[i];
      auto it = adorned.adorned.find(lit.pred_ref());
      if (it == adorned.adorned.end()) continue;
      magic_pred_of(lit.pred_ref());
      Rule magic_rule;
      magic_rule.head = MakeMagicLiteral(lit, it->second.adornment, factory);
      magic_rule.head.negated = false;
      magic_rule.body.push_back(head_magic);
      for (size_t j = 0; j < i; ++j) magic_rule.body.push_back(r.body[j]);
      magic_rule.var_count = r.var_count;
      magic_rule.var_names = r.var_names;
      out.rules.push_back(std::move(magic_rule));
    }

    // Modified original rule, guarded by the head's magic literal.
    Rule guarded = r;
    guarded.body.insert(guarded.body.begin(), head_magic);
    out.rules.push_back(std::move(guarded));
  }
  return out;
}

}  // namespace coral
