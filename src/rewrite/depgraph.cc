#include "src/rewrite/depgraph.h"

#include <algorithm>

#include "src/util/logging.h"

namespace coral {

namespace {

/// True if `arg` is an aggregation marker: agg_fn($group(V)) or $group(V).
bool IsAggArg(const Arg* arg) {
  if (arg->kind() != ArgKind::kAtomOrFunctor) return false;
  const auto* f = ArgCast<FunctorArg>(arg);
  if (f->name() == kGroupMarker && f->arity() == 1) return true;
  if (f->arity() == 1 && AggFnFromName(f->name()) != AggFn::kNone) {
    const Arg* inner = f->arg(0);
    if (inner->kind() == ArgKind::kAtomOrFunctor) {
      const auto* g = ArgCast<FunctorArg>(inner);
      return g->name() == kGroupMarker && g->arity() == 1;
    }
  }
  return false;
}

// Tarjan SCC over predicate nodes.
struct TarjanState {
  std::unordered_map<PredRef, uint32_t, PredRefHash> index;
  std::unordered_map<PredRef, uint32_t, PredRefHash> lowlink;
  std::unordered_set<PredRef, PredRefHash> on_stack;
  std::vector<PredRef> stack;
  uint32_t next_index = 0;
  std::vector<std::vector<PredRef>> sccs;  // reverse topological order
  const std::unordered_map<PredRef, std::vector<PredRef>, PredRefHash>* edges;

  void Visit(const PredRef& v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack.insert(v);
    auto it = edges->find(v);
    if (it != edges->end()) {
      for (const PredRef& w : it->second) {
        if (index.find(w) == index.end()) {
          Visit(w);
          lowlink[v] = std::min(lowlink[v], lowlink[w]);
        } else if (on_stack.count(w)) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<PredRef> scc;
      while (true) {
        PredRef w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  }
};

}  // namespace

bool IsAggregateRule(const Rule& rule) {
  for (const Arg* a : rule.head.args) {
    if (IsAggArg(a)) return true;
  }
  return false;
}

DepGraph DepGraph::Build(const std::vector<Rule>& rules) {
  DepGraph g;
  for (const Rule& r : rules) g.derived_.insert(r.head.pred_ref());

  // Edges head -> derived body predicates. Negative or aggregation
  // dependencies are recorded to check stratification afterwards.
  std::unordered_map<PredRef, std::vector<PredRef>, PredRefHash> edges;
  struct SpecialDep {
    PredRef from, to;
    bool negation;
  };
  std::vector<SpecialDep> special;
  for (const Rule& r : rules) {
    PredRef head = r.head.pred_ref();
    bool agg = IsAggregateRule(r);
    for (const Literal& lit : r.body) {
      PredRef p = lit.pred_ref();
      if (!g.derived_.count(p)) continue;
      edges[head].push_back(p);
      if (lit.negated || agg) {
        special.push_back(SpecialDep{head, p, lit.negated});
      }
    }
  }

  TarjanState tarjan;
  tarjan.edges = &edges;
  for (const PredRef& p : g.derived_) {
    if (tarjan.index.find(p) == tarjan.index.end()) tarjan.Visit(p);
  }
  // Tarjan emits SCCs in reverse topological order of the dependency
  // direction head->body, i.e. callees come out first — which IS the
  // bottom-up evaluation order we want.
  g.sccs_ = std::move(tarjan.sccs);
  for (uint32_t i = 0; i < g.sccs_.size(); ++i) {
    for (const PredRef& p : g.sccs_[i]) g.scc_of_[p] = i;
  }

  for (const SpecialDep& d : special) {
    if (g.scc_of_.at(d.from) == g.scc_of_.at(d.to)) {
      g.stratified_ = false;
      g.violation_ = std::string(d.negation ? "negation" : "aggregation") +
                     " between mutually recursive predicates " +
                     d.from.ToString() + " and " + d.to.ToString();
      break;
    }
  }
  return g;
}

uint32_t DepGraph::SccOf(const PredRef& p) const {
  auto it = scc_of_.find(p);
  CORAL_CHECK(it != scc_of_.end()) << "not a derived predicate: "
                                   << p.ToString();
  return it->second;
}

bool DepGraph::SameScc(const PredRef& p, const PredRef& q) const {
  auto ip = scc_of_.find(p);
  auto iq = scc_of_.find(q);
  if (ip == scc_of_.end() || iq == scc_of_.end()) return false;
  return ip->second == iq->second;
}

}  // namespace coral
