#include "src/rewrite/supmagic.h"

#include <set>

#include "src/rewrite/existential.h"
#include "src/util/logging.h"

namespace coral {

StatusOr<MagicProgram> SupplementaryMagic(const AdornedProgram& adorned,
                                          TermFactory* factory) {
  MagicProgram out;

  auto magic_pred_of = [&](const PredRef& p) {
    const AdornInfo& info = adorned.adorned.at(p);
    uint32_t bound = 0;
    for (char c : info.adornment) bound += c == 'b';
    PredRef mp{factory->symbols().Intern("m_" + p.sym->name), bound};
    out.magic_of.emplace(p, mp);
    return mp;
  };

  out.seed_pred = magic_pred_of(adorned.query_pred);

  uint32_t rule_index = 0;
  for (const Rule& r : adorned.rules) {
    ++rule_index;
    PredRef head = r.head.pred_ref();
    const AdornInfo& head_info = adorned.adorned.at(head);
    magic_pred_of(head);
    Literal head_magic =
        MakeMagicLiteral(r.head, head_info.adornment, factory);

    std::vector<std::set<uint32_t>> needed = NeededAfter(r);

    // The running rule prefix: starts at the head's magic literal; split
    // into a supplementary predicate before each positive adorned body
    // literal, so the prefix join is computed once and shared between the
    // magic rule and the answer join.
    std::vector<Literal> prefix = {head_magic};
    std::set<uint32_t> available;
    for (const Arg* a : head_magic.args) CollectVars(a, &available);

    for (size_t i = 0; i < r.body.size(); ++i) {
      const Literal& lit = r.body[i];
      auto it = adorned.adorned.find(lit.pred_ref());
      if (it == adorned.adorned.end()) {
        // External literal: stays in the prefix.
        prefix.push_back(lit);
        if (!lit.negated) {
          std::set<uint32_t> vars = VarsOfLiteral(lit);
          available.insert(vars.begin(), vars.end());
        }
        continue;
      }

      magic_pred_of(lit.pred_ref());
      if (lit.negated) {
        // Seed the negated subquery from the prefix; the negated literal
        // itself remains in the prefix as an anti-join.
        Rule magic_rule;
        magic_rule.head = MakeMagicLiteral(lit, it->second.adornment, factory);
        magic_rule.head.negated = false;
        magic_rule.body = prefix;
        magic_rule.var_count = r.var_count;
        magic_rule.var_names = r.var_names;
        out.rules.push_back(std::move(magic_rule));
        prefix.push_back(lit);
        continue;
      }

      // Split point. Materialize the prefix when it is a real join; a
      // single-literal prefix is used directly (no sup indirection).
      Literal chain_lit;
      if (prefix.size() == 1) {
        chain_lit = prefix[0];
      } else {
        // Live variables: available now and needed by this literal or
        // anything after it (projection pruning).
        std::vector<const Arg*> sup_args;
        for (uint32_t slot : available) {
          if (needed[i].count(slot)) {
            const std::string& name =
                slot < r.var_names.size() ? r.var_names[slot] : "_v";
            sup_args.push_back(factory->MakeVariable(slot, name));
          }
        }
        Symbol sup_sym = factory->symbols().Intern(
            "sup@" + std::to_string(rule_index) + "_" + std::to_string(i) +
            "_" + head.sym->name);
        Literal sup_lit;
        sup_lit.pred = sup_sym;
        sup_lit.args = std::move(sup_args);

        Rule sup_rule;
        sup_rule.head = sup_lit;
        sup_rule.body = prefix;
        sup_rule.var_count = r.var_count;
        sup_rule.var_names = r.var_names;
        out.rules.push_back(std::move(sup_rule));
        chain_lit = sup_lit;
      }

      // Magic rule for this subgoal from the (materialized) prefix.
      Rule magic_rule;
      magic_rule.head = MakeMagicLiteral(lit, it->second.adornment, factory);
      magic_rule.body = {chain_lit};
      magic_rule.var_count = r.var_count;
      magic_rule.var_names = r.var_names;
      out.rules.push_back(std::move(magic_rule));

      // Continue the chain with the answer join of this literal.
      prefix = {chain_lit, lit};
      std::set<uint32_t> vars = VarsOfLiteral(lit);
      available.insert(vars.begin(), vars.end());
    }

    Rule answer;
    answer.head = r.head;
    answer.body = std::move(prefix);
    answer.var_count = r.var_count;
    answer.var_names = r.var_names;
    out.rules.push_back(std::move(answer));
  }
  return out;
}

}  // namespace coral
