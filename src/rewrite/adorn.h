// Copyright (c) 1993-style CORAL reproduction authors.
// Adornment (paper §4.1): starting from the query form, propagate binding
// information through rule bodies with the default left-to-right sideways
// information passing, producing adorned copies p@bf of each derived
// predicate reached. Adorned names use '@' so they can never collide with
// user predicate names.

#ifndef CORAL_REWRITE_ADORN_H_
#define CORAL_REWRITE_ADORN_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/data/term_factory.h"
#include "src/lang/ast.h"
#include "src/util/status.h"

namespace coral {

/// Record of one adorned predicate.
struct AdornInfo {
  PredRef original;
  std::string adornment;  // e.g. "bf"
};

/// Result of the adornment pass.
struct AdornedProgram {
  std::vector<Rule> rules;  // adorned rule copies, derivation order
  std::unordered_map<PredRef, AdornInfo, PredRefHash> adorned;
  PredRef query_pred;  // adorned name of the query predicate
};

/// Positions of 'b' in an adornment string.
std::vector<uint32_t> BoundPositions(const std::string& adornment);

/// Adorns `rules` for query form (pred, adornment). Predicates in
/// `no_adorn` (and all non-derived predicates) keep their names and
/// propagate bindings as fully-evaluated relations. Aggregation marker
/// positions in heads are forced free.
StatusOr<AdornedProgram> AdornProgram(
    const std::vector<Rule>& rules,
    const std::unordered_set<PredRef, PredRefHash>& derived,
    const std::unordered_set<PredRef, PredRefHash>& no_adorn,
    const PredRef& query_pred, const std::string& adornment,
    TermFactory* factory);

}  // namespace coral

#endif  // CORAL_REWRITE_ADORN_H_
