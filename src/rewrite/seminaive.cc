#include "src/rewrite/seminaive.h"

#include <set>

#include "src/rewrite/existential.h"
#include "src/util/logging.h"

namespace coral {

std::vector<int> ComputeBacktrackPoints(const Rule& rule) {
  std::vector<int> targets(rule.body.size(), -1);
  // binder[v] = last body literal index that can bind variable v before
  // the current position (head-bound vars come from position -1).
  std::vector<std::set<uint32_t>> binds(rule.body.size());
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (!rule.body[i].negated) binds[i] = VarsOfLiteral(rule.body[i]);
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    std::set<uint32_t> vars = VarsOfLiteral(rule.body[i]);
    int target = -1;
    for (size_t j = 0; j < i; ++j) {
      for (uint32_t v : vars) {
        if (binds[j].count(v)) {
          target = std::max(target, static_cast<int>(j));
          break;
        }
      }
    }
    targets[i] = target;
  }
  return targets;
}

SemiNaiveProgram BuildSemiNaive(
    const std::vector<Rule>& rules, const DepGraph& graph,
    bool all_internal_delta,
    const std::unordered_set<PredRef, PredRefHash>* engine_fed) {
  SemiNaiveProgram out;
  out.sccs.resize(graph.sccs().size());
  for (uint32_t i = 0; i < graph.sccs().size(); ++i) {
    out.sccs[i].preds = graph.sccs()[i];
  }

  for (uint32_t ri = 0; ri < rules.size(); ++ri) {
    const Rule& r = rules[ri];
    PredRef head = r.head.pred_ref();
    uint32_t scc = graph.SccOf(head);
    SccPlan& plan = out.sccs[scc];

    // Positions of positive body literals treated differentially: those
    // in the same SCC (or every derived literal in all-delta mode), plus
    // done-predicate guards.
    std::vector<int> recursive;
    int done_pos = -1;
    for (size_t i = 0; i < r.body.size(); ++i) {
      const Literal& lit = r.body[i];
      if (lit.negated) continue;
      PredRef p = lit.pred_ref();
      bool is_fed = engine_fed != nullptr && engine_fed->count(p) > 0;
      if (is_fed && done_pos < 0 &&
          p.sym->name.rfind("done$", 0) == 0) {
        done_pos = static_cast<int>(i);
      }
      if (is_fed ||
          (graph.IsDerived(p) &&
           (all_internal_delta || graph.SccOf(p) == scc))) {
        recursive.push_back(static_cast<int>(i));
      }
    }

    std::vector<int> backtrack = ComputeBacktrackPoints(r);
    bool aggregate = IsAggregateRule(r);

    if (aggregate) {
      // One version; the delta is the first same-SCC literal (the guard:
      // magic, supplementary or done literal), everything else full.
      RuleVersion v;
      v.rule_index = ri;
      v.is_aggregate = true;
      v.ranges.assign(r.body.size(), RangeSel::kFull);
      v.backtrack = backtrack;
      if (recursive.empty()) {
        v.evaluate_once = true;
        plan.once.push_back(std::move(v));
      } else {
        // Aggregation fires once per completed subgoal: the delta is the
        // done guard when present (Ordered Search), else the first
        // recursive guard (magic / supplementary literal).
        int delta = done_pos >= 0 ? done_pos : recursive.front();
        v.delta_pos = delta;
        v.ranges[delta] = RangeSel::kDelta;
        plan.versions.push_back(std::move(v));
      }
      continue;
    }

    if (recursive.empty()) {
      RuleVersion v;
      v.rule_index = ri;
      v.evaluate_once = true;
      v.ranges.assign(r.body.size(), RangeSel::kFull);
      v.backtrack = backtrack;
      plan.once.push_back(std::move(v));
      continue;
    }

    // One delta version per recursive occurrence: occurrences before the
    // delta read the full relation, occurrences after read only old facts
    // — the classic differential so no all-old combination is repeated.
    for (size_t k = 0; k < recursive.size(); ++k) {
      RuleVersion v;
      v.rule_index = ri;
      v.delta_pos = recursive[k];
      v.ranges.assign(r.body.size(), RangeSel::kFull);
      for (size_t k2 = 0; k2 < recursive.size(); ++k2) {
        if (k2 < k) {
          v.ranges[recursive[k2]] = RangeSel::kFull;
        } else if (k2 == k) {
          v.ranges[recursive[k2]] = RangeSel::kDelta;
        } else {
          v.ranges[recursive[k2]] = RangeSel::kOld;
        }
      }
      v.backtrack = backtrack;
      plan.versions.push_back(std::move(v));
    }
  }
  return out;
}

}  // namespace coral
