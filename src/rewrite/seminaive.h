// Copyright (c) 1993-style CORAL reproduction authors.
// Semi-naive rule rewriting (paper §5.3): for each rule of an SCC, create
// delta versions — one per occurrence of a predicate of the same SCC — so
// incremental evaluation across iterations never repeats a join of only
// old facts. The structures here are the paper's §5.1 "semi-naive rule
// structures": per-literal window classification, precomputed evaluation
// order information and backtrack points.

#ifndef CORAL_REWRITE_SEMINAIVE_H_
#define CORAL_REWRITE_SEMINAIVE_H_

#include <vector>

#include "src/lang/ast.h"
#include "src/rewrite/depgraph.h"

namespace coral {

/// Which mark window of the relation a body literal reads.
enum class RangeSel {
  kFull,   // [0, current)
  kOld,    // [0, previous mark)
  kDelta,  // [previous mark, current)
};

/// One delta version of a rule.
struct RuleVersion {
  uint32_t rule_index = 0;             // into the rewritten rule list
  int delta_pos = -1;                  // body literal serving as the delta
  std::vector<RangeSel> ranges;        // one per body literal
  bool evaluate_once = false;          // no same-SCC dependency
  bool is_aggregate = false;           // aggregation/grouping head
  /// Intelligent backtracking targets (paper §4.2): for body literal i,
  /// the deepest earlier literal that binds a variable used by literal i
  /// (-1 = fail the whole rule). Computed left-to-right.
  std::vector<int> backtrack;
};

/// All rule versions of one SCC, evaluated together to fixpoint.
struct SccPlan {
  std::vector<PredRef> preds;           // members of the SCC
  std::vector<RuleVersion> versions;    // iterated versions
  std::vector<RuleVersion> once;        // evaluated once at SCC start
};

/// The compiled module structure (paper §5.1): SCC plans in bottom-up
/// topological order.
struct SemiNaiveProgram {
  std::vector<SccPlan> sccs;
};

/// Builds the semi-naive program. `rules` is the final rewritten rule
/// list; `graph` its dependency graph. Aggregate rules get exactly one
/// version whose delta (if any) is their guard literal. With
/// `all_internal_delta`, every positive derived literal (not only
/// same-SCC ones) gets a delta version: required for evaluations that
/// re-enter earlier SCCs incrementally — the save-module facility
/// (paper §5.4.2, "no derivations repeated across multiple calls") and
/// Ordered Search.
/// `engine_fed` (may be null) are predicates with no defining rules that
/// nevertheless receive facts from the engine — magic seed predicates and
/// Ordered Search done-predicates. Literals over them are delta-capable
/// (essential for save-module resumption: a new seed must re-fire the
/// guarded rules). Aggregate rules prefer a done-predicate guard
/// (name-prefixed "done$") as their delta.
SemiNaiveProgram BuildSemiNaive(
    const std::vector<Rule>& rules, const DepGraph& graph,
    bool all_internal_delta = false,
    const std::unordered_set<PredRef, PredRefHash>* engine_fed = nullptr);

/// Computes intelligent-backtracking targets for `rule`.
std::vector<int> ComputeBacktrackPoints(const Rule& rule);

}  // namespace coral

#endif  // CORAL_REWRITE_SEMINAIVE_H_
