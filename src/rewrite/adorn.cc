#include "src/rewrite/adorn.h"

#include <deque>

#include "src/rewrite/depgraph.h"
#include "src/rewrite/existential.h"
#include "src/util/logging.h"

namespace coral {

namespace {

/// Aggregation-marker head positions must stay free: their value is
/// computed by grouping, never passed in.
bool IsAggMarkerArg(const Arg* arg) {
  if (arg->kind() != ArgKind::kAtomOrFunctor) return false;
  const auto* f = ArgCast<FunctorArg>(arg);
  if (f->name() == kGroupMarker) return true;
  if (f->arity() == 1 && AggFnFromName(f->name()) != AggFn::kNone) {
    const Arg* inner = f->arg(0);
    return inner->kind() == ArgKind::kAtomOrFunctor &&
           ArgCast<FunctorArg>(inner)->name() == kGroupMarker;
  }
  return false;
}

std::string AdornedName(const PredRef& pred, const std::string& ad) {
  return pred.sym->name + "@" + ad;
}

}  // namespace

std::vector<uint32_t> BoundPositions(const std::string& adornment) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] == 'b') out.push_back(i);
  }
  return out;
}

StatusOr<AdornedProgram> AdornProgram(
    const std::vector<Rule>& rules,
    const std::unordered_set<PredRef, PredRefHash>& derived,
    const std::unordered_set<PredRef, PredRefHash>& no_adorn,
    const PredRef& query_pred, const std::string& adornment,
    TermFactory* factory) {
  if (adornment.size() != query_pred.arity) {
    return Status::InvalidArgument(
        "adornment " + adornment + " does not match arity of " +
        query_pred.ToString());
  }

  // Rules indexed by head predicate.
  std::unordered_map<PredRef, std::vector<const Rule*>, PredRefHash> defs;
  for (const Rule& r : rules) defs[r.head.pred_ref()].push_back(&r);

  auto adornable = [&](const PredRef& p) {
    return derived.count(p) > 0 && no_adorn.count(p) == 0;
  };

  AdornedProgram out;
  std::deque<std::pair<PredRef, std::string>> worklist;
  std::unordered_set<std::string> seen;  // "name/arity@ad"

  auto enqueue = [&](const PredRef& p, const std::string& ad) -> PredRef {
    Symbol sym = factory->symbols().Intern(AdornedName(p, ad));
    PredRef ap{sym, p.arity};
    std::string key = p.ToString() + "@" + ad;
    if (seen.insert(key).second) {
      worklist.emplace_back(p, ad);
      out.adorned.emplace(ap, AdornInfo{p, ad});
    }
    return ap;
  };

  out.query_pred = enqueue(query_pred, adornment);

  while (!worklist.empty()) {
    auto [pred, ad] = worklist.front();
    worklist.pop_front();
    Symbol head_sym = factory->symbols().Intern(AdornedName(pred, ad));
    auto it = defs.find(pred);
    if (it == defs.end()) continue;  // no rules: empty adorned predicate

    for (const Rule* orig : it->second) {
      Rule r = *orig;  // copy shares Arg terms (immutable)
      r.head.pred = head_sym;

      // Variables bound by the head's bound arguments.
      std::set<uint32_t> bound;
      for (uint32_t i = 0; i < ad.size(); ++i) {
        if (ad[i] == 'b' && !IsAggMarkerArg(r.head.args[i])) {
          CollectVars(r.head.args[i], &bound);
        }
      }

      for (Literal& lit : r.body) {
        PredRef bp = lit.pred_ref();
        if (adornable(bp)) {
          std::string body_ad;
          for (const Arg* a : lit.args) {
            body_ad += TermBound(a, bound) ? 'b' : 'f';
          }
          PredRef ap = enqueue(bp, body_ad);
          lit.pred = ap.sym;
        }
        // Binding propagation: a positive literal binds all its variables
        // once evaluated; negation binds nothing.
        if (!lit.negated) {
          std::set<uint32_t> vars = VarsOfLiteral(lit);
          bound.insert(vars.begin(), vars.end());
        }
      }
      out.rules.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace coral
