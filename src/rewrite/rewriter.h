// Copyright (c) 1993-style CORAL reproduction authors.
// The query optimizer's rewriting orchestration (paper §2, §4): takes a
// program module and a query form, applies adornment plus the selected
// magic rewriting, handles negation/aggregation (by automatic fallback to
// full evaluation of tangled predicates, or by Ordered Search done-guards),
// performs the semi-naive rewriting, and produces the internal
// representation the evaluation system interprets — plus a text listing of
// the rewritten program, the paper's debugging aid.

#ifndef CORAL_REWRITE_REWRITER_H_
#define CORAL_REWRITE_REWRITER_H_

#include <string>
#include <unordered_map>

#include "src/data/term_factory.h"
#include "src/lang/ast.h"
#include "src/rewrite/depgraph.h"
#include "src/rewrite/seminaive.h"
#include "src/util/status.h"

namespace coral {

/// A compiled (rewritten + semi-naive) materialized module for one query
/// form.
struct RewrittenProgram {
  std::vector<Rule> rules;
  DepGraph graph;
  SemiNaiveProgram seminaive;

  /// Predicate whose relation holds the query's answers.
  PredRef answer_pred;
  /// Adornment of answer_pred ("" when no rewriting was applied).
  std::string answer_adornment;

  bool uses_magic = false;
  PredRef seed_pred;                       // magic predicate to seed
  std::vector<uint32_t> bound_positions;   // of the original query pred

  /// adorned predicate -> magic predicate (for Ordered Search).
  std::unordered_map<PredRef, PredRef, PredRefHash> magic_of;
  /// adorned predicate -> its original (pre-adornment) predicate; used to
  /// attach per-predicate annotations (indices, aggregate selections,
  /// multiset) to the rewritten relations.
  std::unordered_map<PredRef, PredRef, PredRefHash> original_of;
  /// magic predicate -> done predicate (Ordered Search guards).
  std::unordered_map<PredRef, PredRef, PredRefHash> done_of;
  bool ordered_search = false;

  /// Rewritten program listing (paper §2: stored as text as a debugging
  /// aid for the user).
  std::string listing;
};

/// Rewrites `module` for `form`. Materialized modules only (pipelined
/// modules are interpreted from their original rules).
StatusOr<RewrittenProgram> RewriteModule(const ModuleDecl& module,
                                         const QueryFormDecl& form,
                                         TermFactory* factory);

}  // namespace coral

#endif  // CORAL_REWRITE_REWRITER_H_
