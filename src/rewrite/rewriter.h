// Copyright (c) 1993-style CORAL reproduction authors.
// The query optimizer's rewriting orchestration (paper §2, §4): takes a
// program module and a query form, applies adornment plus the selected
// magic rewriting, handles negation/aggregation (by automatic fallback to
// full evaluation of tangled predicates, or by Ordered Search done-guards),
// performs the semi-naive rewriting, and produces the internal
// representation the evaluation system interprets — plus a text listing of
// the rewritten program, the paper's debugging aid.

#ifndef CORAL_REWRITE_REWRITER_H_
#define CORAL_REWRITE_REWRITER_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "src/analysis/domains.h"
#include "src/data/term_factory.h"
#include "src/lang/ast.h"
#include "src/rewrite/depgraph.h"
#include "src/rewrite/seminaive.h"
#include "src/util/status.h"

namespace coral {

/// Optimizer switches for RewriteModule (paper §4.2, §5.3). The defaults
/// reproduce annotation-driven behavior: indexes are planned (evaluation
/// always indexed join probes), reordering stays opt-in via
/// @reorder_joins. The module manager turns auto_reorder on (and supplies
/// real base-relation cardinalities) when Database::auto_optimize() is on.
struct RewriteOptions {
  /// Reorder every rule body bound-args-first even without @reorder_joins
  /// (@no_reorder_joins still wins).
  bool auto_reorder = false;
  /// Plan argument indexes for join probe patterns (consumed by
  /// MaterializedInstance::Init). Off: index_plan stays empty and
  /// evaluation creates no optimizer indexes.
  bool auto_index = true;
  /// Registered-builtin test (same contract as AnalyzerOptions).
  std::function<bool(const std::string& name, uint32_t arity)> is_builtin;
  /// Cardinality class of a base relation at compile time; null = kMany.
  std::function<absint::Card(const PredRef&)> base_card;
};

/// One optimizer-selected argument index: the rewritten-program predicate
/// probed and the columns bound when evaluation reaches the probe.
struct PlannedIndex {
  PredRef pred;
  std::vector<uint32_t> cols;
};

/// A compiled (rewritten + semi-naive) materialized module for one query
/// form.
struct RewrittenProgram {
  std::vector<Rule> rules;
  DepGraph graph;
  SemiNaiveProgram seminaive;

  /// Predicate whose relation holds the query's answers.
  PredRef answer_pred;
  /// Adornment of answer_pred ("" when no rewriting was applied).
  std::string answer_adornment;

  bool uses_magic = false;
  PredRef seed_pred;                       // magic predicate to seed
  std::vector<uint32_t> bound_positions;   // of the original query pred

  /// adorned predicate -> magic predicate (for Ordered Search).
  std::unordered_map<PredRef, PredRef, PredRefHash> magic_of;
  /// adorned predicate -> its original (pre-adornment) predicate; used to
  /// attach per-predicate annotations (indices, aggregate selections,
  /// multiset) to the rewritten relations.
  std::unordered_map<PredRef, PredRef, PredRefHash> original_of;
  /// magic predicate -> done predicate (Ordered Search guards).
  std::unordered_map<PredRef, PredRef, PredRefHash> done_of;
  bool ordered_search = false;

  /// Rewritten program listing (paper §2: stored as text as a debugging
  /// aid for the user).
  std::string listing;

  /// Argument indexes selected by the optimizer (deduplicated); applied
  /// to internal or base relations by MaterializedInstance::Init.
  std::vector<PlannedIndex> index_plan;
  /// Human-readable plan: inferred modes (groundness/types/cardinality),
  /// join-order decision, and the index plan. Appended to listing files
  /// and exposed through ModuleManager::PlanListing / coral_prof --plan.
  std::string plan;
};

/// Rewrites `module` for `form`. Materialized modules only (pipelined
/// modules are interpreted from their original rules).
StatusOr<RewrittenProgram> RewriteModule(const ModuleDecl& module,
                                         const QueryFormDecl& form,
                                         TermFactory* factory,
                                         const RewriteOptions& opts = {});

}  // namespace coral

#endif  // CORAL_REWRITE_REWRITER_H_
