// Copyright (c) 1993-style CORAL reproduction authors.
// Context factoring (paper §4.1, citing Kemp/Ramamohanarao/Somogyi [9]
// and Naughton et al. [16]): for right-linear recursions, the answer join
// of magic rewriting is redundant — the query's answers are exactly the
// non-recursive rule applied to the *context* (the set of propagated
// bound-argument values). The factored program materializes the context
// relation in O(context) instead of the O(context × answers) adorned
// answer relation; on a chain, a bound transitive-closure query drops
// from quadratic to linear.
//
// Scope (checked, with clear errors): the module defines only the query
// predicate; every recursive rule is right-linear — the recursive call is
// the last literal, carries the head's free arguments through unchanged,
// and those variables occur nowhere else; at most one seed per activation
// (hence incompatible with @save_module).

#ifndef CORAL_REWRITE_FACTORING_H_
#define CORAL_REWRITE_FACTORING_H_

#include "src/rewrite/magic.h"

namespace coral {

/// Applies right-linear context factoring to the adorned program.
/// `adorned` must define a single adorned predicate (the query's).
StatusOr<MagicProgram> ContextFactoring(const AdornedProgram& adorned,
                                        TermFactory* factory);

}  // namespace coral

#endif  // CORAL_REWRITE_FACTORING_H_
