// Copyright (c) 1993-style CORAL reproduction authors.
// Variable liveness analysis used by the rewriting passes. Supplementary
// predicates carry only the variables that are still needed by later body
// literals or by the head — this pruning is CORAL's implementation footing
// for Existential Query Rewriting (paper §4.1: propagate projections).

#ifndef CORAL_REWRITE_EXISTENTIAL_H_
#define CORAL_REWRITE_EXISTENTIAL_H_

#include <set>
#include <vector>

#include "src/lang/ast.h"

namespace coral {

/// Adds the slots of all variables in `term` to `out`.
void CollectVars(const Arg* term, std::set<uint32_t>* out);

/// Slots of all variables appearing in `lit`.
std::set<uint32_t> VarsOfLiteral(const Literal& lit);

/// True when every variable of `term` is in `bound`.
bool TermBound(const Arg* term, const std::set<uint32_t>& bound);

/// For each body position i of `rule`, the variables needed at or after i:
/// vars of literals i..n-1 plus the head. Index n holds just the head's
/// variables. Used to project supplementary predicates down to live
/// variables.
std::vector<std::set<uint32_t>> NeededAfter(const Rule& rule);

}  // namespace coral

#endif  // CORAL_REWRITE_EXISTENTIAL_H_
