// Copyright (c) 1993-style CORAL reproduction authors.
// Supplementary Magic Templates (paper §4.1: the default rewriting, citing
// [3, 18]). Rule prefixes shared between the magic rules and the answer
// join are materialized in supplementary predicates sup@<r>_<i>_<head>,
// projected down to live variables (which implements the projection
// propagation of Existential Query Rewriting, §4.1).

#ifndef CORAL_REWRITE_SUPMAGIC_H_
#define CORAL_REWRITE_SUPMAGIC_H_

#include "src/rewrite/magic.h"

namespace coral {

/// Supplementary Magic Templates over the adorned program.
StatusOr<MagicProgram> SupplementaryMagic(const AdornedProgram& adorned,
                                          TermFactory* factory);

}  // namespace coral

#endif  // CORAL_REWRITE_SUPMAGIC_H_
