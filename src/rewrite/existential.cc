#include "src/rewrite/existential.h"

namespace coral {

void CollectVars(const Arg* term, std::set<uint32_t>* out) {
  if (term->IsGround()) return;
  switch (term->kind()) {
    case ArgKind::kVariable:
      out->insert(ArgCast<Variable>(term)->slot());
      return;
    case ArgKind::kAtomOrFunctor: {
      const auto* f = ArgCast<FunctorArg>(term);
      for (const Arg* a : f->args()) CollectVars(a, out);
      return;
    }
    case ArgKind::kSet: {
      const auto* s = ArgCast<SetArg>(term);
      for (const Arg* e : s->elems()) CollectVars(e, out);
      return;
    }
    default:
      return;
  }
}

std::set<uint32_t> VarsOfLiteral(const Literal& lit) {
  std::set<uint32_t> vars;
  for (const Arg* a : lit.args) CollectVars(a, &vars);
  return vars;
}

bool TermBound(const Arg* term, const std::set<uint32_t>& bound) {
  if (term->IsGround()) return true;
  std::set<uint32_t> vars;
  CollectVars(term, &vars);
  for (uint32_t v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

std::vector<std::set<uint32_t>> NeededAfter(const Rule& rule) {
  size_t n = rule.body.size();
  std::vector<std::set<uint32_t>> needed(n + 1);
  for (const Arg* a : rule.head.args) CollectVars(a, &needed[n]);
  for (size_t i = n; i-- > 0;) {
    needed[i] = needed[i + 1];
    std::set<uint32_t> vars = VarsOfLiteral(rule.body[i]);
    needed[i].insert(vars.begin(), vars.end());
  }
  return needed;
}

}  // namespace coral
