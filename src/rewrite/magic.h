// Copyright (c) 1993-style CORAL reproduction authors.
// Magic Templates rewriting (paper §4.1, citing [18]): given the adorned
// program, guard every rule by a magic literal carrying the head's bound
// arguments, and derive magic facts for each derived body literal from the
// rule prefix to its left. Magic facts may be non-ground (Templates, not
// just Sets): our relations store non-ground tuples natively.

#ifndef CORAL_REWRITE_MAGIC_H_
#define CORAL_REWRITE_MAGIC_H_

#include <unordered_map>

#include "src/data/term_factory.h"
#include "src/rewrite/adorn.h"
#include "src/util/status.h"

namespace coral {

/// Output of a magic-style rewriting pass.
struct MagicProgram {
  std::vector<Rule> rules;
  /// The magic predicate of the query form; seeded with the query's bound
  /// arguments at evaluation time.
  PredRef seed_pred;
  /// adorned predicate -> its magic predicate.
  std::unordered_map<PredRef, PredRef, PredRefHash> magic_of;
};

/// Builds the magic literal m_q(bound args) for an adorned literal.
Literal MakeMagicLiteral(const Literal& lit, const std::string& adornment,
                         TermFactory* factory);

/// Plain Magic Templates.
StatusOr<MagicProgram> MagicTemplates(const AdornedProgram& adorned,
                                      TermFactory* factory);

}  // namespace coral

#endif  // CORAL_REWRITE_MAGIC_H_
