// Copyright (c) 1993-style CORAL reproduction authors.
// Predicate dependency graph and strongly connected components. An SCC is
// a maximal set of mutually recursive predicates (paper §5.1 fn. 5); the
// compiled module structure is a list of SCC structures in topological
// order, each holding its semi-naive rules. The graph also records
// negative and aggregation dependencies to check (local) stratification.

#ifndef CORAL_REWRITE_DEPGRAPH_H_
#define CORAL_REWRITE_DEPGRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/lang/ast.h"

namespace coral {

/// True if the rule's head contains aggregation / set-grouping markers.
bool IsAggregateRule(const Rule& rule);

/// Dependency analysis over one rule set.
class DepGraph {
 public:
  /// `builtin_preds` are treated as neither base nor derived (no edges).
  static DepGraph Build(const std::vector<Rule>& rules);

  /// Predicates defined by some rule head.
  const std::unordered_set<PredRef, PredRefHash>& derived() const {
    return derived_;
  }
  bool IsDerived(const PredRef& p) const { return derived_.count(p) > 0; }

  /// SCCs in topological order: members of scc i depend only on sccs <= i.
  const std::vector<std::vector<PredRef>>& sccs() const { return sccs_; }

  /// SCC index of a derived predicate.
  uint32_t SccOf(const PredRef& p) const;

  /// True if p and q are mutually recursive (same SCC).
  bool SameScc(const PredRef& p, const PredRef& q) const;

  /// True when no negative or aggregation dependency joins two predicates
  /// of the same SCC — the condition for plain SCC-ordered evaluation of
  /// negation and aggregation.
  bool stratified() const { return stratified_; }

  /// Human-readable description of the stratification violation (empty
  /// when stratified).
  const std::string& violation() const { return violation_; }

 private:
  std::unordered_set<PredRef, PredRefHash> derived_;
  std::unordered_map<PredRef, uint32_t, PredRefHash> scc_of_;
  std::vector<std::vector<PredRef>> sccs_;
  bool stratified_ = true;
  std::string violation_;
};

}  // namespace coral

#endif  // CORAL_REWRITE_DEPGRAPH_H_
