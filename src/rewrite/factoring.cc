#include "src/rewrite/factoring.h"

#include <set>

#include "src/rewrite/existential.h"
#include "src/util/logging.h"

namespace coral {

namespace {

/// Slots of variables in `term`, or nullopt if it is not a plain variable.
const Variable* AsVariable(const Arg* a) {
  return a->kind() == ArgKind::kVariable ? ArgCast<Variable>(a) : nullptr;
}

}  // namespace

StatusOr<MagicProgram> ContextFactoring(const AdornedProgram& adorned,
                                        TermFactory* factory) {
  if (adorned.adorned.size() != 1) {
    return Status::Unsupported(
        "@factoring requires the module to define exactly the query "
        "predicate (no helper predicates, and the recursive call must use "
        "the query's own adornment); found " +
        std::to_string(adorned.adorned.size()) + " adorned predicates");
  }
  PredRef pred = adorned.query_pred;
  const AdornInfo& info = adorned.adorned.at(pred);
  std::vector<uint32_t> bound = BoundPositions(info.adornment);
  std::vector<uint32_t> free;
  for (uint32_t i = 0; i < info.adornment.size(); ++i) {
    if (info.adornment[i] == 'f') free.push_back(i);
  }
  if (bound.empty()) {
    return Status::Unsupported(
        "@factoring needs a query form with at least one bound argument");
  }

  MagicProgram out;
  Symbol magic_sym = factory->symbols().Intern("m_" + pred.sym->name);
  Symbol ctx_sym = factory->symbols().Intern("ctx_" + pred.sym->name);
  PredRef magic{magic_sym, static_cast<uint32_t>(bound.size())};
  out.seed_pred = magic;
  out.magic_of.emplace(pred, magic);

  // Bridge: ctx(v...) :- m(v...).
  {
    Rule bridge;
    bridge.head.pred = ctx_sym;
    Literal seed;
    seed.pred = magic_sym;
    for (uint32_t i = 0; i < bound.size(); ++i) {
      const Arg* v = factory->MakeVariable(i, "B" + std::to_string(i));
      bridge.head.args.push_back(v);
      seed.args.push_back(v);
      bridge.var_names.push_back("B" + std::to_string(i));
    }
    bridge.body.push_back(std::move(seed));
    bridge.var_count = static_cast<uint32_t>(bound.size());
    out.rules.push_back(std::move(bridge));
  }

  for (const Rule& r : adorned.rules) {
    CORAL_CHECK(r.head.pred_ref() == pred);
    // Classify: recursive iff some body literal uses the adorned pred.
    int rec_pos = -1;
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (r.body[i].pred_ref() == pred) {
        if (rec_pos >= 0) {
          return Status::Unsupported(
              "@factoring: rule has two recursive calls (not linear): " +
              r.ToString());
        }
        rec_pos = static_cast<int>(i);
      }
    }

    if (rec_pos < 0) {
      // Exit rule: P(seed..., free-terms) :- m(seed...), ctx(bound-terms),
      // body.
      Rule ans;
      ans.head.pred = pred.sym;
      ans.head.args.resize(info.adornment.size());
      ans.var_names = r.var_names;
      uint32_t next_slot = r.var_count;
      Literal seed;
      seed.pred = magic_sym;
      for (size_t i = 0; i < bound.size(); ++i) {
        std::string name = "Q" + std::to_string(i);
        const Arg* v = factory->MakeVariable(next_slot++, name);
        ans.var_names.push_back(name);
        seed.args.push_back(v);
        ans.head.args[bound[i]] = v;  // answers carry the query's bindings
      }
      Literal ctx;
      ctx.pred = ctx_sym;
      for (uint32_t b : bound) ctx.args.push_back(r.head.args[b]);
      for (uint32_t fpos : free) ans.head.args[fpos] = r.head.args[fpos];
      ans.body.push_back(std::move(seed));
      ans.body.push_back(std::move(ctx));
      for (const Literal& lit : r.body) ans.body.push_back(lit);
      ans.var_count = next_slot;
      out.rules.push_back(std::move(ans));
      continue;
    }

    // Recursive rule: check right-linearity.
    const Literal& rec = r.body[static_cast<size_t>(rec_pos)];
    if (rec.negated) {
      return Status::Unsupported("@factoring: negated recursive call");
    }
    if (static_cast<size_t>(rec_pos) != r.body.size() - 1) {
      return Status::Unsupported(
          "@factoring: the recursive call must be the last body literal "
          "(right-linear): " + r.ToString());
    }
    // Free head arguments are variables passed through unchanged, and
    // occur nowhere else in the rule.
    std::set<uint32_t> free_slots;
    for (uint32_t fpos : free) {
      const Variable* hv = AsVariable(r.head.args[fpos]);
      const Variable* rv = AsVariable(rec.args[fpos]);
      if (hv == nullptr || rv == nullptr || hv->slot() != rv->slot()) {
        return Status::Unsupported(
            "@factoring: free argument " + std::to_string(fpos) +
            " is not passed through unchanged in: " + r.ToString());
      }
      free_slots.insert(hv->slot());
    }
    std::set<uint32_t> other_vars;
    for (uint32_t b : bound) {
      CollectVars(r.head.args[b], &other_vars);
      CollectVars(rec.args[b], &other_vars);
    }
    for (size_t i = 0; i + 1 < r.body.size(); ++i) {
      std::set<uint32_t> vs = VarsOfLiteral(r.body[i]);
      other_vars.insert(vs.begin(), vs.end());
    }
    for (uint32_t fs : free_slots) {
      if (other_vars.count(fs)) {
        return Status::Unsupported(
            "@factoring: a free-position variable also occurs elsewhere "
            "in: " + r.ToString());
      }
    }

    // Context propagation: ctx(rec bound args) :- ctx(head bound args),
    // prefix literals.
    Rule prop;
    prop.head.pred = ctx_sym;
    for (uint32_t b : bound) prop.head.args.push_back(rec.args[b]);
    Literal ctx;
    ctx.pred = ctx_sym;
    for (uint32_t b : bound) ctx.args.push_back(r.head.args[b]);
    prop.body.push_back(std::move(ctx));
    for (size_t i = 0; i + 1 < r.body.size(); ++i) {
      prop.body.push_back(r.body[i]);
    }
    prop.var_count = r.var_count;
    prop.var_names = r.var_names;
    out.rules.push_back(std::move(prop));
  }
  return out;
}

}  // namespace coral
