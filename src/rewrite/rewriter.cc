#include "src/rewrite/rewriter.h"

#include <deque>
#include <set>
#include <sstream>

#include "src/analysis/absint.h"
#include "src/analysis/diagnostics.h"
#include "src/rewrite/adorn.h"
#include "src/rewrite/existential.h"
#include "src/rewrite/factoring.h"
#include "src/rewrite/magic.h"
#include "src/rewrite/supmagic.h"
#include "src/util/logging.h"

namespace coral {

namespace {

/// Derived predicates whose complete extensions are required (negated
/// occurrences; bodies of aggregate rules) plus everything they depend on.
std::unordered_set<PredRef, PredRefHash> ProtectedClosure(
    const std::vector<Rule>& rules,
    const std::unordered_set<PredRef, PredRefHash>& derived) {
  std::unordered_set<PredRef, PredRefHash> protected_set;
  std::deque<PredRef> work;
  auto add = [&](const PredRef& p) {
    if (derived.count(p) && protected_set.insert(p).second) {
      work.push_back(p);
    }
  };
  for (const Rule& r : rules) {
    bool agg = IsAggregateRule(r);
    for (const Literal& lit : r.body) {
      if (lit.negated || agg) add(lit.pred_ref());
    }
  }
  while (!work.empty()) {
    PredRef p = work.front();
    work.pop_front();
    for (const Rule& r : rules) {
      if (!(r.head.pred_ref() == p)) continue;
      for (const Literal& lit : r.body) add(lit.pred_ref());
    }
  }
  return protected_set;
}

/// Join-order selection (paper §4.2): greedily schedule the most-bound
/// ready literal next, breaking ties toward the smaller relation using
/// the abstract cardinality classes from src/analysis/absint.h. Negated
/// literals, operators and builtins are "ready" only when all their
/// variables are bound (they run as filters; deferring a binding builtin
/// is mode-safe because later scheduling only adds bindings). Remaining
/// ties keep source order, and a stuck state falls back to the first
/// unscheduled literal, so the pass never loses literals and a stuck
/// suffix keeps its source order. Returns true when the order changed.
bool ReorderRuleBody(Rule* rule, const absint::AnalysisResult& facts,
                     const std::function<bool(const std::string&, uint32_t)>&
                         is_builtin) {
  if (rule->body.size() < 3) return false;  // nothing to gain
  std::set<uint32_t> bound;
  // Head arguments contribute no bindings in bottom-up evaluation; the
  // magic/supplementary guard (first body literal of rewritten rules)
  // does. Anchor it: never move the first literal.
  std::vector<Literal> out;
  std::vector<Literal> rest(rule->body.begin(), rule->body.end());

  auto vars_bound = [&](const Literal& lit) {
    return VarsOfLiteral(lit).size() ==
           [&] {
             size_t n = 0;
             for (uint32_t v : VarsOfLiteral(lit)) n += bound.count(v);
             return n;
           }();
  };
  auto bound_args = [&](const Literal& lit) {
    int n = 0;
    for (const Arg* a : lit.args) n += TermBound(a, bound);
    return n;
  };
  auto bind_vars = [&](const Literal& lit) {
    if (lit.negated) return;
    std::set<uint32_t> vars = VarsOfLiteral(lit);
    bound.insert(vars.begin(), vars.end());
  };
  auto is_filter = [&](const Literal& lit) {
    return lit.negated || IsOperatorSymbol(lit.pred) ||
           (is_builtin != nullptr &&
            is_builtin(lit.pred->name,
                       static_cast<uint32_t>(lit.args.size())));
  };
  // Smaller cardinality class scores higher; bound-arg count dominates.
  auto selectivity = [&](const Literal& lit) {
    return static_cast<int>(absint::Card::kUnbounded) -
           static_cast<int>(facts.CardOf(lit.pred_ref()));
  };

  // Anchor the guard.
  out.push_back(rest.front());
  bind_vars(rest.front());
  rest.erase(rest.begin());

  bool changed = false;
  while (!rest.empty()) {
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < rest.size(); ++i) {
      const Literal& lit = rest[i];
      if (is_filter(lit)) {
        // Safety: schedule only when fully bound; then run immediately
        // (filters are free).
        if (vars_bound(lit)) {
          best = static_cast<int>(i);
          best_score = 1 << 20;
          break;
        }
        continue;
      }
      int score = bound_args(lit) * 8 + selectivity(lit);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      // Only unbound negations/operators remain out of order; take the
      // first to preserve semantics as written.
      best = 0;
    }
    changed = changed || best != 0;
    out.push_back(rest[static_cast<size_t>(best)]);
    bind_vars(rest[static_cast<size_t>(best)]);
    rest.erase(rest.begin() + best);
  }
  rule->body = std::move(out);
  return changed;
}

/// Stratification failures share the diagnostics format of the load-time
/// analyzer (code CRL140), so the REPL and the C++ API present one shape
/// of message whether the problem is caught at load or at query compile.
Status StratificationError(const ModuleDecl& module,
                           const std::string& detail) {
  Diagnostic d;
  d.severity = DiagSeverity::kError;
  d.code = diag::kNotStratified;
  d.module_name = module.name;
  d.loc = module.loc;
  d.message = detail;
  return Status::InvalidArgument(d.ToString());
}

std::string ListingOf(const std::vector<Rule>& rules) {
  std::ostringstream oss;
  for (const Rule& r : rules) oss << r.ToString() << "\n";
  return oss.str();
}

/// The optimizer proper (paper §4.2, §5.3): runs the abstract
/// interpretation over the rewritten rules (the magic seed and Ordered
/// Search done-markers are engine-fed ground facts) and applies its two
/// decisions — join reordering and argument-index planning — then renders
/// the plan text stored alongside the listing.
void OptimizeProgram(const ModuleDecl& module, const RewriteOptions& opts,
                     RewrittenProgram* prog) {
  absint::AbsIntOptions ai;
  ai.is_builtin = opts.is_builtin;
  ai.base_card = opts.base_card;
  if (prog->uses_magic) {
    ai.assumed_facts.insert(prog->seed_pred);
    for (const auto& [magic, done] : prog->done_of) {
      ai.assumed_facts.insert(done);
    }
  }
  absint::AnalysisResult facts =
      absint::AnalyzeRules(prog->rules, prog->graph, ai);

  // Join-order selection never runs under Ordered Search: done guards
  // must stay immediately before the literals they protect.
  bool reorder_on = (module.reorder_joins || opts.auto_reorder) &&
                    !module.no_reorder_joins && !module.ordered_search;
  std::vector<size_t> reordered;
  if (reorder_on) {
    for (size_t i = 0; i < prog->rules.size(); ++i) {
      if (ReorderRuleBody(&prog->rules[i], facts, opts.is_builtin)) {
        reordered.push_back(i);
      }
    }
  }

  // Index plan: one argument index per (predicate, bound-column set)
  // probe under left-to-right evaluation of the final bodies. Negated
  // literals plan too (negation probes as set difference); operators and
  // builtins never resolve to stored relations.
  if (opts.auto_index) {
    std::set<std::pair<std::string, std::vector<uint32_t>>> seen;
    for (const Rule& r : prog->rules) {
      std::set<uint32_t> bound;
      for (const Literal& lit : r.body) {
        std::vector<uint32_t> cols;
        for (uint32_t c = 0; c < lit.args.size(); ++c) {
          if (TermBound(lit.args[c], bound)) cols.push_back(c);
        }
        if (!lit.negated) {
          std::set<uint32_t> vars = VarsOfLiteral(lit);
          bound.insert(vars.begin(), vars.end());
        }
        if (cols.empty() || IsOperatorSymbol(lit.pred)) continue;
        if (opts.is_builtin != nullptr &&
            opts.is_builtin(lit.pred->name,
                            static_cast<uint32_t>(lit.args.size()))) {
          continue;
        }
        if (!seen.insert({lit.pred_ref().ToString(), cols}).second) continue;
        prog->index_plan.push_back({lit.pred_ref(), cols});
      }
    }
  }

  std::ostringstream plan;
  plan << "inferred modes:\n";
  std::istringstream summary(facts.Summary());
  bool any_mode = false;
  for (std::string line; std::getline(summary, line);) {
    plan << "  " << line << "\n";
    any_mode = true;
  }
  if (!any_mode) plan << "  (none)\n";
  plan << "join order: ";
  if (module.ordered_search) {
    plan << "as written (ordered search)\n";
  } else if (module.no_reorder_joins) {
    plan << "as written (@no_reorder_joins)\n";
  } else if (!reorder_on) {
    plan << "as written (auto-optimization off)\n";
  } else {
    plan << "bound-args-first (" << reordered.size()
         << " rule(s) reordered)\n";
    for (size_t i : reordered) {
      plan << "  " << prog->rules[i].ToString() << "\n";
    }
  }
  plan << "indexes:\n";
  if (prog->index_plan.empty()) plan << "  (none)\n";
  for (const PlannedIndex& pi : prog->index_plan) {
    plan << "  " << pi.pred.ToString() << ": args (";
    for (size_t i = 0; i < pi.cols.size(); ++i) {
      if (i > 0) plan << ",";
      plan << pi.cols[i] + 1;
    }
    plan << ")\n";
  }
  prog->plan = plan.str();
}

/// Inserts Ordered Search done-guards (paper §5.4.1): a done literal
/// before every negated adorned literal, and before every positive
/// adorned literal of an aggregate rule.
void InsertDoneGuards(RewrittenProgram* prog, TermFactory* factory) {
  for (Rule& r : prog->rules) {
    bool agg = IsAggregateRule(r);
    std::vector<Literal> new_body;
    for (const Literal& lit : r.body) {
      auto mit = prog->magic_of.find(lit.pred_ref());
      bool guard = mit != prog->magic_of.end() && (lit.negated || agg);
      if (guard) {
        PredRef magic = mit->second;
        Symbol done_sym =
            factory->symbols().Intern("done$" + magic.sym->name);
        PredRef done{done_sym, magic.arity};
        prog->done_of.emplace(magic, done);
        // The done literal carries the magic arguments: the bound args of
        // the guarded literal. We cannot rebuild them from the magic rule
        // here, so recompute from the adornment embedded in the name.
        Literal done_lit;
        done_lit.pred = done_sym;
        // Bound args: positions marked 'b' in the adorned predicate name
        // suffix (after the '@').
        const std::string& name = lit.pred->name;
        size_t at = name.rfind('@');
        CORAL_CHECK(at != std::string::npos);
        std::string ad = name.substr(at + 1);
        CORAL_CHECK_EQ(ad.size(), lit.args.size());
        for (uint32_t i = 0; i < ad.size(); ++i) {
          if (ad[i] == 'b') done_lit.args.push_back(lit.args[i]);
        }
        new_body.push_back(std::move(done_lit));
      }
      new_body.push_back(lit);
    }
    r.body = std::move(new_body);
  }
}

}  // namespace

StatusOr<RewrittenProgram> RewriteModule(const ModuleDecl& module,
                                         const QueryFormDecl& form,
                                         TermFactory* factory,
                                         const RewriteOptions& opts) {
  PredRef query_pred{form.pred,
                     static_cast<uint32_t>(form.adornment.size())};

  // Verify the query predicate is defined and the adornment length is its
  // arity.
  bool defined = false;
  for (const Rule& r : module.rules) {
    if (r.head.pred == form.pred) {
      defined = true;
      if (r.head.args.size() != form.adornment.size()) {
        return Status::InvalidArgument(
            "query form adornment '" + form.adornment + "' does not match " +
            r.head.pred_ref().ToString());
      }
    }
  }
  if (!defined) {
    return Status::NotFound("module " + module.name +
                            " does not define exported predicate " +
                            form.pred->name);
  }

  DepGraph original_graph = DepGraph::Build(module.rules);

  RewrittenProgram out;
  out.ordered_search = module.ordered_search;
  out.bound_positions = BoundPositions(form.adornment);

  if (module.rewrite == RewriteKind::kNone) {
    if (module.ordered_search) {
      return Status::InvalidArgument(
          "ordered search requires a magic rewriting (paper §5.4.1); "
          "remove @no_rewriting in module " + module.name);
    }
    if (!original_graph.stratified()) {
      return StratificationError(
          module, "module is not stratified (" +
                      original_graph.violation() +
                      "); use @ordered_search with magic rewriting");
    }
    out.rules = module.rules;
    out.answer_pred = query_pred;
    out.answer_adornment = "";
    out.uses_magic = false;
    out.graph = std::move(original_graph);
    OptimizeProgram(module, opts, &out);
    out.seminaive =
        BuildSemiNaive(out.rules, out.graph, module.save_module, nullptr);
    out.listing = ListingOf(out.rules);
    return out;
  }

  // Magic-style rewriting, with automatic fallback: first try adorning
  // everything; if the rewritten program tangles negation/aggregation into
  // a recursive SCC (magic can break stratification), recompute with the
  // affected predicates protected (evaluated fully, unadorned).
  std::unordered_set<PredRef, PredRefHash> no_adorn;
  for (int attempt = 0; attempt < 2; ++attempt) {
    CORAL_ASSIGN_OR_RETURN(
        AdornedProgram adorned,
        AdornProgram(module.rules, original_graph.derived(), no_adorn,
                     query_pred, form.adornment, factory));
    MagicProgram magic;
    if (module.rewrite == RewriteKind::kMagic) {
      CORAL_ASSIGN_OR_RETURN(magic, MagicTemplates(adorned, factory));
    } else if (module.rewrite == RewriteKind::kFactoring) {
      if (module.save_module) {
        return Status::Unsupported(
            "@factoring is incompatible with @save_module: factored "
            "answers are only attributable to a single seed per call");
      }
      CORAL_ASSIGN_OR_RETURN(magic, ContextFactoring(adorned, factory));
    } else {
      CORAL_ASSIGN_OR_RETURN(magic, SupplementaryMagic(adorned, factory));
    }

    RewrittenProgram prog;
    prog.ordered_search = module.ordered_search;
    prog.bound_positions = out.bound_positions;
    prog.rules = std::move(magic.rules);
    prog.magic_of = std::move(magic.magic_of);
    prog.seed_pred = magic.seed_pred;
    prog.uses_magic = true;
    prog.answer_pred = adorned.query_pred;
    prog.answer_adornment = form.adornment;
    for (const auto& [apred, info] : adorned.adorned) {
      prog.original_of.emplace(apred, info.original);
    }

    // Append full (unadorned) rules of protected predicates.
    if (!no_adorn.empty()) {
      for (const Rule& r : module.rules) {
        if (no_adorn.count(r.head.pred_ref())) prog.rules.push_back(r);
      }
    }

    if (module.ordered_search) {
      InsertDoneGuards(&prog, factory);
    }

    prog.graph = DepGraph::Build(prog.rules);
    if (!prog.graph.stratified() && !module.ordered_search) {
      if (attempt == 0) {
        // Retry with protection.
        no_adorn = ProtectedClosure(module.rules, original_graph.derived());
        if (no_adorn.empty()) {
          return StratificationError(
              module, "module is not stratified (" +
                          prog.graph.violation() + ")");
        }
        continue;
      }
      return StratificationError(
          module,
          "module is not stratified even with full evaluation of "
          "negated/aggregated predicates (" + prog.graph.violation() +
          "); use @ordered_search");
    }

    OptimizeProgram(module, opts, &prog);
    std::unordered_set<PredRef, PredRefHash> engine_fed;
    for (const auto& [magic_pred, done] : prog.done_of) {
      engine_fed.insert(done);
    }
    // The query's magic seed has no defining rules but receives facts
    // from Seed(); it must be delta-capable or save-module resumption
    // with a fresh subgoal would never re-fire the guarded rules.
    engine_fed.insert(prog.seed_pred);
    prog.seminaive = BuildSemiNaive(
        prog.rules, prog.graph,
        module.save_module || module.ordered_search, &engine_fed);
    prog.listing = ListingOf(prog.rules);
    return prog;
  }
  CORAL_UNREACHABLE();
}

}  // namespace coral
