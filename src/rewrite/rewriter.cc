#include "src/rewrite/rewriter.h"

#include <deque>
#include <set>
#include <sstream>

#include "src/analysis/diagnostics.h"
#include "src/rewrite/adorn.h"
#include "src/rewrite/existential.h"
#include "src/rewrite/factoring.h"
#include "src/rewrite/magic.h"
#include "src/rewrite/supmagic.h"
#include "src/util/logging.h"

namespace coral {

namespace {

/// Derived predicates whose complete extensions are required (negated
/// occurrences; bodies of aggregate rules) plus everything they depend on.
std::unordered_set<PredRef, PredRefHash> ProtectedClosure(
    const std::vector<Rule>& rules,
    const std::unordered_set<PredRef, PredRefHash>& derived) {
  std::unordered_set<PredRef, PredRefHash> protected_set;
  std::deque<PredRef> work;
  auto add = [&](const PredRef& p) {
    if (derived.count(p) && protected_set.insert(p).second) {
      work.push_back(p);
    }
  };
  for (const Rule& r : rules) {
    bool agg = IsAggregateRule(r);
    for (const Literal& lit : r.body) {
      if (lit.negated || agg) add(lit.pred_ref());
    }
  }
  while (!work.empty()) {
    PredRef p = work.front();
    work.pop_front();
    for (const Rule& r : rules) {
      if (!(r.head.pred_ref() == p)) continue;
      for (const Literal& lit : r.body) add(lit.pred_ref());
    }
  }
  return protected_set;
}

/// Join-order selection (paper §4.2): greedily schedule the most-bound
/// ready literal next. Negated literals and builtins are "ready" only
/// when all their variables are bound (safety); positive relation
/// literals are scored by bound argument count. Ties keep source order,
/// and a stuck state falls back to the first unscheduled positive
/// literal, so the pass never loses literals.
void ReorderRuleBody(Rule* rule, const DepGraph& graph) {
  if (rule->body.size() < 3) return;  // nothing to gain
  std::set<uint32_t> bound;
  // Head arguments contribute no bindings in bottom-up evaluation; the
  // magic/supplementary guard (first body literal of rewritten rules)
  // does. Anchor it: never move the first literal.
  std::vector<Literal> out;
  std::vector<Literal> rest(rule->body.begin(), rule->body.end());
  (void)graph;

  auto vars_bound = [&](const Literal& lit) {
    return VarsOfLiteral(lit).size() ==
           [&] {
             size_t n = 0;
             for (uint32_t v : VarsOfLiteral(lit)) n += bound.count(v);
             return n;
           }();
  };
  auto bound_args = [&](const Literal& lit) {
    int n = 0;
    for (const Arg* a : lit.args) n += TermBound(a, bound);
    return n;
  };
  auto bind_vars = [&](const Literal& lit) {
    if (lit.negated) return;
    std::set<uint32_t> vars = VarsOfLiteral(lit);
    bound.insert(vars.begin(), vars.end());
  };

  // Anchor the guard.
  out.push_back(rest.front());
  bind_vars(rest.front());
  rest.erase(rest.begin());

  while (!rest.empty()) {
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < rest.size(); ++i) {
      const Literal& lit = rest[i];
      bool is_op = IsOperatorSymbol(lit.pred);
      if (lit.negated || is_op) {
        // Safety: schedule only when fully bound; then run immediately
        // (filters are free).
        if (vars_bound(lit)) {
          best = static_cast<int>(i);
          best_score = 1 << 20;
          break;
        }
        continue;
      }
      int score = bound_args(lit);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      // Only unbound negations/operators remain out of order; take the
      // first to preserve semantics as written.
      best = 0;
    }
    out.push_back(rest[static_cast<size_t>(best)]);
    bind_vars(rest[static_cast<size_t>(best)]);
    rest.erase(rest.begin() + best);
  }
  rule->body = std::move(out);
}

/// Stratification failures share the diagnostics format of the load-time
/// analyzer (code CRL140), so the REPL and the C++ API present one shape
/// of message whether the problem is caught at load or at query compile.
Status StratificationError(const ModuleDecl& module,
                           const std::string& detail) {
  Diagnostic d;
  d.severity = DiagSeverity::kError;
  d.code = diag::kNotStratified;
  d.module_name = module.name;
  d.loc = module.loc;
  d.message = detail;
  return Status::InvalidArgument(d.ToString());
}

std::string ListingOf(const std::vector<Rule>& rules) {
  std::ostringstream oss;
  for (const Rule& r : rules) oss << r.ToString() << "\n";
  return oss.str();
}

/// Inserts Ordered Search done-guards (paper §5.4.1): a done literal
/// before every negated adorned literal, and before every positive
/// adorned literal of an aggregate rule.
void InsertDoneGuards(RewrittenProgram* prog, TermFactory* factory) {
  for (Rule& r : prog->rules) {
    bool agg = IsAggregateRule(r);
    std::vector<Literal> new_body;
    for (const Literal& lit : r.body) {
      auto mit = prog->magic_of.find(lit.pred_ref());
      bool guard = mit != prog->magic_of.end() && (lit.negated || agg);
      if (guard) {
        PredRef magic = mit->second;
        Symbol done_sym =
            factory->symbols().Intern("done$" + magic.sym->name);
        PredRef done{done_sym, magic.arity};
        prog->done_of.emplace(magic, done);
        // The done literal carries the magic arguments: the bound args of
        // the guarded literal. We cannot rebuild them from the magic rule
        // here, so recompute from the adornment embedded in the name.
        Literal done_lit;
        done_lit.pred = done_sym;
        // Bound args: positions marked 'b' in the adorned predicate name
        // suffix (after the '@').
        const std::string& name = lit.pred->name;
        size_t at = name.rfind('@');
        CORAL_CHECK(at != std::string::npos);
        std::string ad = name.substr(at + 1);
        CORAL_CHECK_EQ(ad.size(), lit.args.size());
        for (uint32_t i = 0; i < ad.size(); ++i) {
          if (ad[i] == 'b') done_lit.args.push_back(lit.args[i]);
        }
        new_body.push_back(std::move(done_lit));
      }
      new_body.push_back(lit);
    }
    r.body = std::move(new_body);
  }
}

}  // namespace

StatusOr<RewrittenProgram> RewriteModule(const ModuleDecl& module,
                                         const QueryFormDecl& form,
                                         TermFactory* factory) {
  PredRef query_pred{form.pred,
                     static_cast<uint32_t>(form.adornment.size())};

  // Verify the query predicate is defined and the adornment length is its
  // arity.
  bool defined = false;
  for (const Rule& r : module.rules) {
    if (r.head.pred == form.pred) {
      defined = true;
      if (r.head.args.size() != form.adornment.size()) {
        return Status::InvalidArgument(
            "query form adornment '" + form.adornment + "' does not match " +
            r.head.pred_ref().ToString());
      }
    }
  }
  if (!defined) {
    return Status::NotFound("module " + module.name +
                            " does not define exported predicate " +
                            form.pred->name);
  }

  DepGraph original_graph = DepGraph::Build(module.rules);

  RewrittenProgram out;
  out.ordered_search = module.ordered_search;
  out.bound_positions = BoundPositions(form.adornment);

  if (module.rewrite == RewriteKind::kNone) {
    if (module.ordered_search) {
      return Status::InvalidArgument(
          "ordered search requires a magic rewriting (paper §5.4.1); "
          "remove @no_rewriting in module " + module.name);
    }
    if (!original_graph.stratified()) {
      return StratificationError(
          module, "module is not stratified (" +
                      original_graph.violation() +
                      "); use @ordered_search with magic rewriting");
    }
    out.rules = module.rules;
    out.answer_pred = query_pred;
    out.answer_adornment = "";
    out.uses_magic = false;
    out.graph = std::move(original_graph);
    if (module.reorder_joins) {
      for (Rule& r : out.rules) ReorderRuleBody(&r, out.graph);
    }
    out.seminaive =
        BuildSemiNaive(out.rules, out.graph, module.save_module, nullptr);
    out.listing = ListingOf(out.rules);
    return out;
  }

  // Magic-style rewriting, with automatic fallback: first try adorning
  // everything; if the rewritten program tangles negation/aggregation into
  // a recursive SCC (magic can break stratification), recompute with the
  // affected predicates protected (evaluated fully, unadorned).
  std::unordered_set<PredRef, PredRefHash> no_adorn;
  for (int attempt = 0; attempt < 2; ++attempt) {
    CORAL_ASSIGN_OR_RETURN(
        AdornedProgram adorned,
        AdornProgram(module.rules, original_graph.derived(), no_adorn,
                     query_pred, form.adornment, factory));
    MagicProgram magic;
    if (module.rewrite == RewriteKind::kMagic) {
      CORAL_ASSIGN_OR_RETURN(magic, MagicTemplates(adorned, factory));
    } else if (module.rewrite == RewriteKind::kFactoring) {
      if (module.save_module) {
        return Status::Unsupported(
            "@factoring is incompatible with @save_module: factored "
            "answers are only attributable to a single seed per call");
      }
      CORAL_ASSIGN_OR_RETURN(magic, ContextFactoring(adorned, factory));
    } else {
      CORAL_ASSIGN_OR_RETURN(magic, SupplementaryMagic(adorned, factory));
    }

    RewrittenProgram prog;
    prog.ordered_search = module.ordered_search;
    prog.bound_positions = out.bound_positions;
    prog.rules = std::move(magic.rules);
    prog.magic_of = std::move(magic.magic_of);
    prog.seed_pred = magic.seed_pred;
    prog.uses_magic = true;
    prog.answer_pred = adorned.query_pred;
    prog.answer_adornment = form.adornment;
    for (const auto& [apred, info] : adorned.adorned) {
      prog.original_of.emplace(apred, info.original);
    }

    // Append full (unadorned) rules of protected predicates.
    if (!no_adorn.empty()) {
      for (const Rule& r : module.rules) {
        if (no_adorn.count(r.head.pred_ref())) prog.rules.push_back(r);
      }
    }

    if (module.ordered_search) {
      InsertDoneGuards(&prog, factory);
    }

    prog.graph = DepGraph::Build(prog.rules);
    if (!prog.graph.stratified() && !module.ordered_search) {
      if (attempt == 0) {
        // Retry with protection.
        no_adorn = ProtectedClosure(module.rules, original_graph.derived());
        if (no_adorn.empty()) {
          return StratificationError(
              module, "module is not stratified (" +
                          prog.graph.violation() + ")");
        }
        continue;
      }
      return StratificationError(
          module,
          "module is not stratified even with full evaluation of "
          "negated/aggregated predicates (" + prog.graph.violation() +
          "); use @ordered_search");
    }

    // Join-order selection never runs under Ordered Search: done guards
    // must stay immediately before the literals they protect.
    if (module.reorder_joins && !module.ordered_search) {
      for (Rule& r : prog.rules) ReorderRuleBody(&r, prog.graph);
    }
    std::unordered_set<PredRef, PredRefHash> engine_fed;
    for (const auto& [magic_pred, done] : prog.done_of) {
      engine_fed.insert(done);
    }
    // The query's magic seed has no defining rules but receives facts
    // from Seed(); it must be delta-capable or save-module resumption
    // with a fresh subgoal would never re-fire the guarded rules.
    engine_fed.insert(prog.seed_pred);
    prog.seminaive = BuildSemiNaive(
        prog.rules, prog.graph,
        module.save_module || module.ordered_search, &engine_fed);
    prog.listing = ListingOf(prog.rules);
    return prog;
  }
  CORAL_UNREACHABLE();
}

}  // namespace coral
