// Copyright (c) 1993-style CORAL reproduction authors.
// Shared structural-hash scheme. TermFactory computes each node's hash at
// construction with these seeds; HashResolvedTerm (unify.h) recomputes the
// same hash for a term viewed through a binding environment, so index
// lookups on bound-but-unmaterialized values agree with stored hashes.

#ifndef CORAL_DATA_TERM_HASH_H_
#define CORAL_DATA_TERM_HASH_H_

#include <cstdint>

#include "src/data/symbol_table.h"
#include "src/util/hash.h"

namespace coral {

inline constexpr uint64_t kSetHashSeed = 0x5e7ull;

inline uint64_t FunctorHashSeed(Symbol sym) { return HashString(sym->name); }

}  // namespace coral

#endif  // CORAL_DATA_TERM_HASH_H_
