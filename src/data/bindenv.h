// Copyright (c) 1993-style CORAL reproduction authors.
// Binding environments and the trail (paper §3.1, Fig. 2). During an
// inference, variable bindings are recorded in a bindenv rather than
// substituted into terms; a binding pairs the bound value with the
// environment that scopes the value's own variables. The trail records
// bindings so the nested-loops join can undo them when it advances a scan
// (paper §5.3, "CORAL maintains a trail of variable bindings").

#ifndef CORAL_DATA_BINDENV_H_
#define CORAL_DATA_BINDENV_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/data/arg.h"
#include "src/util/logging.h"

namespace coral {

class BindEnv;

/// A (term, environment) pair: the environment interprets the term's
/// variables. Ground terms may carry a null environment.
struct TermRef {
  const Arg* term = nullptr;
  BindEnv* env = nullptr;
};

/// A binding: the value a variable slot is bound to, plus the environment
/// scoping the value's variables (Fig. 2 of the paper).
struct Binding {
  const Arg* value = nullptr;
  BindEnv* env = nullptr;
  bool bound() const { return value != nullptr; }
};

/// Fixed-size vector of bindings, one per variable slot of a clause or
/// stored tuple.
class BindEnv {
 public:
  explicit BindEnv(uint32_t nslots) : slots_(nslots) {}

  uint32_t size() const { return static_cast<uint32_t>(slots_.size()); }

  const Binding& binding(uint32_t slot) const {
    CORAL_DCHECK(slot < slots_.size());
    return slots_[slot];
  }

  void Set(uint32_t slot, const Arg* value, BindEnv* value_env) {
    CORAL_DCHECK(slot < slots_.size());
    slots_[slot].value = value;
    slots_[slot].env = value_env;
  }

  void Clear(uint32_t slot) {
    CORAL_DCHECK(slot < slots_.size());
    slots_[slot].value = nullptr;
    slots_[slot].env = nullptr;
  }

  /// Unbinds every slot (e.g. when a scan over a rule restarts).
  void ClearAll() {
    for (auto& b : slots_) b = Binding{};
  }

  /// Grows the environment to at least `nslots` slots.
  void EnsureSize(uint32_t nslots) {
    if (slots_.size() < nslots) slots_.resize(nslots);
  }

 private:
  std::vector<Binding> slots_;
};

/// Undo log of variable bindings.
class Trail {
 public:
  using Mark = size_t;

  Mark mark() const { return entries_.size(); }

  void Record(BindEnv* env, uint32_t slot) { entries_.emplace_back(env, slot); }

  /// Unbinds everything recorded after `m`.
  void UndoTo(Mark m) {
    while (entries_.size() > m) {
      auto [env, slot] = entries_.back();
      env->Clear(slot);
      entries_.pop_back();
    }
  }

  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<BindEnv*, uint32_t>> entries_;
};

/// Follows variable bindings until reaching a non-variable term or an
/// unbound variable. The result's env interprets the result's variables.
TermRef Deref(const Arg* term, BindEnv* env);

/// Binds the variable `var` (scoped by `env`) to (value, value_env),
/// recording the binding on the trail.
inline void BindVar(const Variable* var, BindEnv* env, const Arg* value,
                    BindEnv* value_env, Trail* trail) {
  CORAL_DCHECK(env != nullptr);
  env->Set(var->slot(), value, value_env);
  trail->Record(env, var->slot());
}

}  // namespace coral

#endif  // CORAL_DATA_BINDENV_H_
