// Copyright (c) 1993-style CORAL reproduction authors.
// TermFactory: the single owner and canonical constructor of all terms in
// a CORAL database. Reproduces the paper's data-manager decisions:
// constants are shared by pointer instead of copied (§9), ground functor
// terms are hash-consed so that unification of large ground terms is a
// unique-id comparison (§3.1), and term memory is arena-managed for the
// life of the database (replacing the paper's garbage collector).

#ifndef CORAL_DATA_TERM_FACTORY_H_
#define CORAL_DATA_TERM_FACTORY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/data/arg.h"
#include "src/data/hashcons.h"
#include "src/data/tuple.h"
#include "src/util/arena.h"
#include "src/util/hash.h"
#include "src/util/sync.h"

namespace coral {

/// Factory and arena for terms and tuples. All Args and Tuples returned
/// are valid until the factory is destroyed; Args from different factories
/// must never be mixed.
///
/// Construction methods are thread-safe (guarded by mu_, rank
/// kRankTermFactory) so the parallel fixpoint workers can resolve head
/// tuples concurrently; returned nodes are immutable and may be read from
/// any thread. The symbol table is only safe through factory methods
/// (MakeAtom / MakeFunctor-by-name) — direct symbols().Intern() calls
/// remain single-threaded (parser, setup).
///
/// The lock is only taken while `concurrent()` is set (the Database flips
/// it with set_num_threads): with one thread every construction skips the
/// mutex entirely (MaybeMutexLock). The flag itself must only change at
/// points where no other thread can be constructing terms. Public
/// constructors take the guard once and delegate to private *Locked
/// methods, so composed constructions (MakeList -> cons -> functor ->
/// atom) lock once instead of recursively.
class TermFactory {
 public:
  TermFactory();
  TermFactory(const TermFactory&) = delete;
  TermFactory& operator=(const TermFactory&) = delete;

  /// The symbol table. The reference bypasses the construction lock; that
  /// is safe because SymbolTable self-locks (rank kRankSymbolTable) while
  /// concurrent() is set — set_concurrent flips both flags together. In
  /// single-threaded mode the old contract stands: serial parse/setup
  /// phases only (docs/CONCURRENCY.md).
  SymbolTable& symbols()
      CORAL_TS_UNSAFE("SymbolTable self-locks when concurrent; otherwise "
                      "serial parse/setup phases only") {
    return symbols_;
  }

  /// Enables (or disables) the internal construction lock and the symbol
  /// table's interning lock. Enabling is safe at any time (flags are
  /// atomic and engage strictly more locking); disabling is only safe
  /// from single-threaded code — typically Database::set_num_threads.
  void set_concurrent(bool on)
      CORAL_TS_UNSAFE("flag flips are atomic; symbols_ self-locks "
                      "independently of mu_") {
    concurrent_.store(on, std::memory_order_relaxed);
    symbols_.set_concurrent(on);
  }
  bool concurrent() const {
    return concurrent_.load(std::memory_order_relaxed);
  }

  // ---- Primitive constants (interned; pointer equality) ----
  const IntArg* MakeInt(int64_t v);
  const DoubleArg* MakeDouble(double v);
  const StringArg* MakeString(std::string_view v);
  const BigIntArg* MakeBigInt(const BigInt& v);

  // ---- Functor terms, atoms and lists ----
  const FunctorArg* MakeAtom(std::string_view name);
  const FunctorArg* MakeFunctor(std::string_view name,
                                std::span<const Arg* const> args);
  const FunctorArg* MakeFunctor(Symbol sym, std::span<const Arg* const> args);
  /// The empty list atom [].
  const FunctorArg* Nil();
  /// A cons cell '.'(head, tail).
  const FunctorArg* MakeCons(const Arg* head, const Arg* tail);
  /// The list [e0,...,en | tail]; tail defaults to [].
  const Arg* MakeList(std::span<const Arg* const> elems,
                      const Arg* tail = nullptr);

  // ---- Sets (result of set-grouping) ----
  /// Sorts by the total term order and removes structural duplicates.
  const SetArg* MakeSet(std::vector<const Arg*> elems);

  // ---- Variables ----
  /// A clause-local variable with the given slot. Not interned: each call
  /// makes a fresh node (names are for printing only).
  const Variable* MakeVariable(uint32_t slot, std::string_view name);
  /// The shared canonical variable for `slot` (printed _0, _1, ...); used
  /// to store non-ground facts in relations.
  const Variable* CanonicalVar(uint32_t slot);

  // ---- User-defined abstract data types (paper §7.1) ----
  /// Allocates (or finds) a user Arg subclass T. `content_hash` must be
  /// the structural hash of the value; T's constructor is invoked as
  /// T(type_tag, uid, hash, args...). Values are interned by (type_tag,
  /// content_hash, Equals), so equal user values share one node and the
  /// unique-id unification fast path applies to them too — the paper's
  /// point that each type defines its own identifiers orthogonally.
  template <typename T, typename... As>
  const T* NewUser(uint32_t type_tag, uint64_t content_hash, As&&... args) {
    MaybeMutexLock lock(&mu_, concurrent_);
    auto candidate = std::make_unique<T>(type_tag, NextUid(), content_hash,
                                         std::forward<As>(args)...);
    uint64_t key = HashCombine(content_hash, type_tag);
    auto& bucket = user_cons_[key];
    for (const Arg* existing : bucket) {
      if (existing->Equals(*candidate)) {
        return static_cast<const T*>(existing);
      }
    }
    const T* raw = KeepOwned(std::move(candidate));
    bucket.push_back(raw);
    return raw;
  }

  // ---- Tuples ----
  /// Canonicalizes ground tuples (pointer equality). Arguments of
  /// non-ground tuples must already use canonical variables numbered in
  /// order of first occurrence; `var_count` is computed here.
  const Tuple* MakeTuple(std::span<const Arg* const> args);

  /// Number of distinct hash-consed ground functor terms (for stats).
  size_t hashcons_size() const;
  size_t bytes_allocated() const;

 private:
  // Unlocked construction cores. Callers hold mu_ (or own the
  // single-thread proof via MaybeMutexLock's disengaged mode).
  const FunctorArg* MakeAtomLocked(std::string_view name)
      CORAL_REQUIRES(mu_);
  const FunctorArg* MakeFunctorLocked(Symbol sym,
                                      std::span<const Arg* const> args)
      CORAL_REQUIRES(mu_);
  const FunctorArg* MakeConsLocked(const Arg* head, const Arg* tail)
      CORAL_REQUIRES(mu_);

  uint64_t NextUid() CORAL_REQUIRES(mu_) { return next_uid_++; }
  const Arg** CopyArgs(std::span<const Arg* const> args) CORAL_REQUIRES(mu_);
  template <typename T>
  const T* KeepOwned(std::unique_ptr<T> p) CORAL_REQUIRES(mu_) {
    const T* raw = p.get();
    owned_.push_back(std::move(p));
    return raw;
  }

  /// Guards every construction path (arena, hash-cons tables, symbol
  /// interning via MakeAtom). Engaged only when concurrent_ is set.
  mutable Mutex mu_{kRankTermFactory};
  /// Read before locking to decide whether to lock at all; flipped only
  /// at quiescent points (no workers constructing), which is what makes
  /// the unguarded read sound.
  std::atomic<bool> concurrent_{false};
  Arena arena_ CORAL_GUARDED_BY(mu_);
  SymbolTable symbols_ CORAL_GUARDED_BY(mu_);
  uint64_t next_uid_ CORAL_GUARDED_BY(mu_) = 1;

  std::unordered_map<int64_t, const IntArg*> int_cons_
      CORAL_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, const DoubleArg*> double_cons_
      CORAL_GUARDED_BY(mu_);  // bit pattern
  std::unordered_map<std::string_view, const StringArg*> string_cons_
      CORAL_GUARDED_BY(mu_);
  std::unordered_map<std::string, const BigIntArg*> bigint_cons_
      CORAL_GUARDED_BY(mu_);
  std::unordered_map<Symbol, const FunctorArg*> atom_cons_
      CORAL_GUARDED_BY(mu_);
  FunctorHashcons functor_cons_ CORAL_GUARDED_BY(mu_);
  SetHashcons set_cons_ CORAL_GUARDED_BY(mu_);
  TupleHashcons tuple_cons_ CORAL_GUARDED_BY(mu_);
  std::vector<const Variable*> canonical_vars_ CORAL_GUARDED_BY(mu_);

  std::deque<std::string> string_store_ CORAL_GUARDED_BY(mu_);
  std::deque<BigInt> bigint_store_ CORAL_GUARDED_BY(mu_);
  std::deque<std::string> varname_store_ CORAL_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Arg>> owned_
      CORAL_GUARDED_BY(mu_);  // user args (need dtors)
  std::unordered_map<uint64_t, std::vector<const Arg*>> user_cons_
      CORAL_GUARDED_BY(mu_);

  // Written once in the constructor, immutable afterwards.
  const FunctorArg* nil_ = nullptr;
  Symbol cons_sym_ = nullptr;
};

/// Deep structural equality that never uses hash-consing shortcuts; used
/// by benchmarks to quantify what hash-consing buys (experiment C4).
bool StructuralEqualArgs(const Arg* a, const Arg* b);

}  // namespace coral

#endif  // CORAL_DATA_TERM_FACTORY_H_
