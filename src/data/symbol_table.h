// Copyright (c) 1993-style CORAL reproduction authors.
// Interned functor / predicate / atom names. A Symbol is a stable pointer
// to an interned entry, so name equality is pointer equality everywhere in
// the engine.

#ifndef CORAL_DATA_SYMBOL_TABLE_H_
#define CORAL_DATA_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace coral {

/// One interned name. `id` is dense (0..n-1) and usable as an array index.
struct SymbolInfo {
  std::string name;
  uint32_t id;
};

using Symbol = const SymbolInfo*;

/// Interns strings into stable SymbolInfo entries. Not thread-safe; CORAL
/// is a single-user client (paper §2).
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the unique Symbol for `name`, interning it on first use.
  Symbol Intern(std::string_view name);

  /// Returns the Symbol for `name` or nullptr if never interned.
  Symbol Find(std::string_view name) const;

  size_t size() const { return entries_.size(); }

 private:
  std::deque<SymbolInfo> entries_;  // deque: stable addresses
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace coral

#endif  // CORAL_DATA_SYMBOL_TABLE_H_
