// Copyright (c) 1993-style CORAL reproduction authors.
// Interned functor / predicate / atom names. A Symbol is a stable pointer
// to an interned entry, so name equality is pointer equality everywhere in
// the engine.

#ifndef CORAL_DATA_SYMBOL_TABLE_H_
#define CORAL_DATA_SYMBOL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/util/sync.h"

namespace coral {

/// One interned name. `id` is dense (0..n-1) and usable as an array index.
struct SymbolInfo {
  std::string name;
  uint32_t id;
};

using Symbol = const SymbolInfo*;

/// Interns strings into stable SymbolInfo entries (deque-backed, so a
/// Symbol stays valid forever). Single-threaded by default — CORAL began
/// as a single-user client (paper §2) — but concurrent sessions flip
/// set_concurrent(), after which Intern/Find self-lock (rank
/// kRankSymbolTable; acquired under the TermFactory lock by MakeAtom, so
/// it ranks above kRankTermFactory).
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the unique Symbol for `name`, interning it on first use.
  Symbol Intern(std::string_view name);

  /// Returns the Symbol for `name` or nullptr if never interned.
  Symbol Find(std::string_view name) const;

  size_t size() const {
    MaybeMutexLock lock(&mu_, concurrent_.load(std::memory_order_relaxed));
    return entries_.size();
  }

  /// Engages the interning lock. Safe to call at any time (the flag is
  /// atomic); disengaging is only safe when no other thread interns.
  void set_concurrent(bool on) {
    concurrent_.store(on, std::memory_order_relaxed);
  }
  bool concurrent() const {
    return concurrent_.load(std::memory_order_relaxed);
  }

 private:
  mutable Mutex mu_{kRankSymbolTable};
  std::atomic<bool> concurrent_{false};
  std::deque<SymbolInfo> entries_ CORAL_GUARDED_BY(mu_);  // stable addresses
  std::unordered_map<std::string_view, Symbol> index_ CORAL_GUARDED_BY(mu_);
};

}  // namespace coral

#endif  // CORAL_DATA_SYMBOL_TABLE_H_
