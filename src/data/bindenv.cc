#include "src/data/bindenv.h"

namespace coral {

TermRef Deref(const Arg* term, BindEnv* env) {
  while (term->kind() == ArgKind::kVariable && env != nullptr) {
    const Binding& b = env->binding(ArgCast<Variable>(term)->slot());
    if (!b.bound()) break;
    term = b.value;
    env = b.env;
  }
  return TermRef{term, env};
}

}  // namespace coral
