#include "src/data/unify.h"

#include <utility>
#include <vector>

#include "src/data/term_hash.h"
#include "src/util/hash.h"

namespace coral {

bool Unify(const Arg* a, BindEnv* env_a, const Arg* b, BindEnv* env_b,
           Trail* trail) {
  TermRef ra = Deref(a, env_a);
  TermRef rb = Deref(b, env_b);
  a = ra.term;
  env_a = ra.env;
  b = rb.term;
  env_b = rb.env;

  if (a->kind() == ArgKind::kVariable) {
    const auto* va = ArgCast<Variable>(a);
    if (b->kind() == ArgKind::kVariable && env_a == env_b &&
        va->slot() == ArgCast<Variable>(b)->slot()) {
      return true;  // same variable
    }
    CORAL_DCHECK(env_a != nullptr);
    BindVar(va, env_a, b, env_b, trail);
    return true;
  }
  if (b->kind() == ArgKind::kVariable) {
    CORAL_DCHECK(env_b != nullptr);
    BindVar(ArgCast<Variable>(b), env_b, a, env_a, trail);
    return true;
  }

  // Hash-consing fast path: ground terms unify iff same canonical node.
  if (a->IsGround() && b->IsGround()) return a == b;

  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ArgKind::kAtomOrFunctor: {
      const auto* fa = ArgCast<FunctorArg>(a);
      const auto* fb = ArgCast<FunctorArg>(b);
      if (fa->functor() != fb->functor() || fa->arity() != fb->arity()) {
        return false;
      }
      for (uint32_t i = 0; i < fa->arity(); ++i) {
        if (!Unify(fa->arg(i), env_a, fb->arg(i), env_b, trail)) return false;
      }
      return true;
    }
    case ArgKind::kSet: {
      // Sets unify element-wise in sorted order. Sets containing unbound
      // variables are rare (set-grouping produces ground sets); this
      // positional rule is a documented approximation.
      const auto* sa = ArgCast<SetArg>(a);
      const auto* sb = ArgCast<SetArg>(b);
      if (sa->size() != sb->size()) return false;
      for (uint32_t i = 0; i < sa->size(); ++i) {
        if (!Unify(sa->elem(i), env_a, sb->elem(i), env_b, trail)) {
          return false;
        }
      }
      return true;
    }
    default:
      // Primitive kinds are always ground, handled above.
      return a->Equals(*b);
  }
}

namespace {

// `bindable` is the pattern's own environment: the only scope whose
// variables may be bound. A pattern variable already dereferenced into
// target scope is rigid and must coincide with the target variable.
bool MatchImpl(const Arg* pattern, BindEnv* env_p, const Arg* target,
               BindEnv* env_t, BindEnv* bindable, Trail* trail);

}  // namespace

bool Match(const Arg* pattern, BindEnv* env_p, const Arg* target,
           BindEnv* env_t, Trail* trail) {
  return MatchImpl(pattern, env_p, target, env_t, env_p, trail);
}

namespace {

bool MatchImpl(const Arg* pattern, BindEnv* env_p, const Arg* target,
               BindEnv* env_t, BindEnv* bindable, Trail* trail) {
  TermRef rp = Deref(pattern, env_p);
  TermRef rt = Deref(target, env_t);
  pattern = rp.term;
  env_p = rp.env;
  target = rt.term;
  env_t = rt.env;

  if (pattern->kind() == ArgKind::kVariable && env_p == bindable) {
    CORAL_DCHECK(env_p != nullptr);
    BindVar(ArgCast<Variable>(pattern), env_p, target, env_t, trail);
    return true;
  }
  if (pattern->kind() == ArgKind::kVariable) {
    // Rigid (target-scope) variable: must be the identical variable.
    return env_p == env_t && target->kind() == ArgKind::kVariable &&
           ArgCast<Variable>(pattern)->slot() ==
               ArgCast<Variable>(target)->slot();
  }
  if (target->kind() == ArgKind::kVariable) return false;  // rigid

  if (pattern->IsGround() && target->IsGround()) return pattern == target;

  if (pattern->kind() != target->kind()) return false;
  switch (pattern->kind()) {
    case ArgKind::kAtomOrFunctor: {
      const auto* fp = ArgCast<FunctorArg>(pattern);
      const auto* ft = ArgCast<FunctorArg>(target);
      if (fp->functor() != ft->functor() || fp->arity() != ft->arity()) {
        return false;
      }
      for (uint32_t i = 0; i < fp->arity(); ++i) {
        if (!MatchImpl(fp->arg(i), env_p, ft->arg(i), env_t, bindable,
                       trail)) {
          return false;
        }
      }
      return true;
    }
    case ArgKind::kSet: {
      const auto* sp = ArgCast<SetArg>(pattern);
      const auto* st = ArgCast<SetArg>(target);
      if (sp->size() != st->size()) return false;
      for (uint32_t i = 0; i < sp->size(); ++i) {
        if (!MatchImpl(sp->elem(i), env_p, st->elem(i), env_t, bindable,
                       trail)) {
          return false;
        }
      }
      return true;
    }
    default:
      return pattern->Equals(*target);
  }
}

}  // namespace

bool SubsumesTuple(const Tuple* general, const Tuple* specific) {
  if (general == specific) return true;
  if (general->arity() != specific->arity()) return false;
  if (general->IsGround() && specific->IsGround()) return false;
  // A ground tuple subsumes only itself (handled above); a general tuple
  // with variables needs a matching pass.
  BindEnv env_g(general->var_count());
  BindEnv env_s(specific->var_count());
  Trail trail;
  for (uint32_t i = 0; i < general->arity(); ++i) {
    if (!Match(general->arg(i), &env_g, specific->arg(i), &env_s, &trail)) {
      return false;
    }
  }
  return true;
}

void LinkRenamedVars(const VarRenamer& renamer, BindEnv* new_env,
                     TermFactory* factory, Trail* trail) {
  for (const auto& [orig, canonical_slot] : renamer.entries()) {
    // The original variable was unbound at rename time; bind it to the
    // canonical variable in the new environment.
    BindEnv* orig_env = const_cast<BindEnv*>(orig.first);
    if (orig_env == nullptr) continue;
    const Variable* cv = factory->CanonicalVar(canonical_slot);
    orig_env->Set(orig.second, cv, new_env);
    trail->Record(orig_env, orig.second);
  }
}

uint32_t VarRenamer::Rename(const BindEnv* env, uint32_t slot) {
  for (const auto& [key, renamed] : map_) {
    if (key.first == env && key.second == slot) return renamed;
  }
  uint32_t next = static_cast<uint32_t>(map_.size());
  map_.emplace_back(std::make_pair(env, slot), next);
  return next;
}

const Arg* ResolveTerm(const Arg* term, BindEnv* env, TermFactory* factory,
                       VarRenamer* renamer) {
  TermRef r = Deref(term, env);
  term = r.term;
  env = r.env;
  if (term->IsGround()) return term;  // structure sharing

  switch (term->kind()) {
    case ArgKind::kVariable: {
      uint32_t slot = renamer->Rename(env, ArgCast<Variable>(term)->slot());
      return factory->CanonicalVar(slot);
    }
    case ArgKind::kAtomOrFunctor: {
      const auto* f = ArgCast<FunctorArg>(term);
      std::vector<const Arg*> resolved(f->arity());
      for (uint32_t i = 0; i < f->arity(); ++i) {
        resolved[i] = ResolveTerm(f->arg(i), env, factory, renamer);
      }
      return factory->MakeFunctor(f->functor(), resolved);
    }
    case ArgKind::kSet: {
      const auto* s = ArgCast<SetArg>(term);
      std::vector<const Arg*> resolved(s->size());
      for (uint32_t i = 0; i < s->size(); ++i) {
        resolved[i] = ResolveTerm(s->elem(i), env, factory, renamer);
      }
      return factory->MakeSet(std::move(resolved));
    }
    default:
      return term;
  }
}

bool HashResolvedTerm(const Arg* term, BindEnv* env, uint64_t* out) {
  TermRef r = Deref(term, env);
  term = r.term;
  env = r.env;
  if (term->IsGround()) {
    *out = term->Hash();
    return true;
  }
  switch (term->kind()) {
    case ArgKind::kVariable:
      return false;
    case ArgKind::kAtomOrFunctor: {
      const auto* f = ArgCast<FunctorArg>(term);
      uint64_t h = FunctorHashSeed(f->functor());
      for (const Arg* c : f->args()) {
        uint64_t ch;
        if (!HashResolvedTerm(c, env, &ch)) return false;
        h = HashCombine(h, ch);
      }
      *out = h;
      return true;
    }
    case ArgKind::kSet: {
      // A non-ground set's element order may change once bindings are
      // substituted (elements sort by value); hashing through an env
      // would need re-sorting. Sets bound through envs are rare: treat
      // as unhashable so callers fall back to scans.
      return false;
    }
    default:
      return false;
  }
}

const Tuple* ResolveTuple(std::span<const TermRef> args,
                          TermFactory* factory) {
  VarRenamer renamer;
  std::vector<const Arg*> resolved(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    resolved[i] = ResolveTerm(args[i].term, args[i].env, factory, &renamer);
  }
  return factory->MakeTuple(resolved);
}

}  // namespace coral
