#include "src/data/hashcons.h"

#include <algorithm>

namespace coral {

namespace {

bool SameChildren(std::span<const Arg* const> a,
                  std::span<const Arg* const> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

const FunctorArg* FunctorHashcons::Find(Symbol sym,
                                        std::span<const Arg* const> args,
                                        uint64_t hash) const {
  auto it = buckets_.find(hash);
  if (it == buckets_.end()) return nullptr;
  for (const FunctorArg* cand : it->second) {
    if (cand->functor() == sym &&
        SameChildren(cand->args(), args)) {
      return cand;
    }
  }
  return nullptr;
}

void FunctorHashcons::Insert(const FunctorArg* node, uint64_t hash) {
  buckets_[hash].push_back(node);
  ++count_;
}

const Tuple* TupleHashcons::Find(std::span<const Arg* const> args,
                                 uint64_t hash) const {
  auto it = buckets_.find(hash);
  if (it == buckets_.end()) return nullptr;
  for (const Tuple* cand : it->second) {
    if (SameChildren(cand->args(), args)) return cand;
  }
  return nullptr;
}

void TupleHashcons::Insert(const Tuple* node, uint64_t hash) {
  buckets_[hash].push_back(node);
  ++count_;
}

const SetArg* SetHashcons::Find(std::span<const Arg* const> elems,
                                uint64_t hash) const {
  auto it = buckets_.find(hash);
  if (it == buckets_.end()) return nullptr;
  for (const SetArg* cand : it->second) {
    if (SameChildren(cand->elems(), elems)) return cand;
  }
  return nullptr;
}

void SetHashcons::Insert(const SetArg* node, uint64_t hash) {
  buckets_[hash].push_back(node);
}

}  // namespace coral
