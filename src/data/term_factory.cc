#include "src/data/term_factory.h"

#include <algorithm>
#include <cstring>

#include "src/data/term_hash.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace coral {

namespace {

constexpr uint64_t kVarHashSeed = 0x76617269ull;  // all variables hash alike

uint64_t HashChildren(uint64_t seed, std::span<const Arg* const> args) {
  uint64_t h = seed;
  for (const Arg* a : args) h = HashCombine(h, a->Hash());
  return h;
}

/// Hash-cons bucket key for ground terms: children identified by pointer,
/// so we can hash their uids directly.
uint64_t ConsKey(uint64_t seed, std::span<const Arg* const> args) {
  uint64_t h = seed;
  for (const Arg* a : args) h = HashCombine(h, a->uid());
  return h;
}

}  // namespace

TermFactory::TermFactory() {
  cons_sym_ = symbols_.Intern(".");
  nil_ = MakeAtom("[]");
}

const Arg** TermFactory::CopyArgs(std::span<const Arg* const> args) {
  return arena_.CopyArray(args.data(), args.size());
}

size_t TermFactory::hashcons_size() const {
  // Previously read the table with no lock at all — racy while workers
  // construct terms; now synchronized like every other accessor.
  MaybeMutexLock lock(&mu_, concurrent_);
  return functor_cons_.size();
}

size_t TermFactory::bytes_allocated() const {
  MaybeMutexLock lock(&mu_, concurrent_);
  return arena_.bytes_allocated();
}

const IntArg* TermFactory::MakeInt(int64_t v) {
  MaybeMutexLock lock(&mu_, concurrent_);
  auto it = int_cons_.find(v);
  if (it != int_cons_.end()) return it->second;
  const IntArg* node = arena_.New<IntArg>(
      v, NextUid(), HashMix64(static_cast<uint64_t>(v)));
  int_cons_.emplace(v, node);
  return node;
}

const DoubleArg* TermFactory::MakeDouble(double v) {
  MaybeMutexLock lock(&mu_, concurrent_);
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  auto it = double_cons_.find(bits);
  if (it != double_cons_.end()) return it->second;
  const DoubleArg* node =
      arena_.New<DoubleArg>(v, NextUid(), HashMix64(bits ^ 0xd0b1ull));
  double_cons_.emplace(bits, node);
  return node;
}

const StringArg* TermFactory::MakeString(std::string_view v) {
  MaybeMutexLock lock(&mu_, concurrent_);
  auto it = string_cons_.find(v);
  if (it != string_cons_.end()) return it->second;
  string_store_.emplace_back(v);
  const std::string* stored = &string_store_.back();
  const StringArg* node =
      arena_.New<StringArg>(stored, NextUid(), HashString(v) ^ 0x5715ull);
  string_cons_.emplace(std::string_view(*stored), node);
  return node;
}

const BigIntArg* TermFactory::MakeBigInt(const BigInt& v) {
  MaybeMutexLock lock(&mu_, concurrent_);
  std::string key = v.ToString();
  auto it = bigint_cons_.find(key);
  if (it != bigint_cons_.end()) return it->second;
  bigint_store_.push_back(v);
  const BigInt* stored = &bigint_store_.back();
  const BigIntArg* node =
      arena_.New<BigIntArg>(stored, NextUid(), v.Hash() ^ 0xb16b16ull);
  bigint_cons_.emplace(std::move(key), node);
  return node;
}

const FunctorArg* TermFactory::MakeAtom(std::string_view name) {
  MaybeMutexLock lock(&mu_, concurrent_);
  return MakeAtomLocked(name);
}

const FunctorArg* TermFactory::MakeAtomLocked(std::string_view name) {
  Symbol sym = symbols_.Intern(name);
  auto it = atom_cons_.find(sym);
  if (it != atom_cons_.end()) return it->second;
  uint64_t hash = FunctorHashSeed(sym);
  const FunctorArg* node = arena_.New<FunctorArg>(
      sym, std::span<const Arg* const>{}, /*ground=*/true, NextUid(), hash,
      nullptr);
  atom_cons_.emplace(sym, node);
  return node;
}

const FunctorArg* TermFactory::MakeFunctor(std::string_view name,
                                           std::span<const Arg* const> args) {
  MaybeMutexLock lock(&mu_, concurrent_);
  return MakeFunctorLocked(symbols_.Intern(name), args);
}

const FunctorArg* TermFactory::MakeFunctor(Symbol sym,
                                           std::span<const Arg* const> args) {
  MaybeMutexLock lock(&mu_, concurrent_);
  return MakeFunctorLocked(sym, args);
}

const FunctorArg* TermFactory::MakeFunctorLocked(
    Symbol sym, std::span<const Arg* const> args) {
  if (args.empty()) return MakeAtomLocked(sym->name);
  bool ground = true;
  for (const Arg* a : args) ground = ground && a->IsGround();
  if (ground) {
    uint64_t key = ConsKey(HashMix64(sym->id), args);
    if (const FunctorArg* hit = functor_cons_.Find(sym, args, key)) {
      return hit;
    }
    const FunctorArg* node = arena_.New<FunctorArg>(
        sym, args, true, NextUid(), HashChildren(FunctorHashSeed(sym), args),
        CopyArgs(args));
    functor_cons_.Insert(node, key);
    return node;
  }
  return arena_.New<FunctorArg>(sym, args, false, NextUid(),
                                HashChildren(FunctorHashSeed(sym), args),
                                CopyArgs(args));
}

const FunctorArg* TermFactory::Nil() { return nil_; }

const FunctorArg* TermFactory::MakeCons(const Arg* head, const Arg* tail) {
  MaybeMutexLock lock(&mu_, concurrent_);
  return MakeConsLocked(head, tail);
}

const FunctorArg* TermFactory::MakeConsLocked(const Arg* head,
                                              const Arg* tail) {
  const Arg* args[2] = {head, tail};
  return MakeFunctorLocked(cons_sym_, args);
}

const Arg* TermFactory::MakeList(std::span<const Arg* const> elems,
                                 const Arg* tail) {
  MaybeMutexLock lock(&mu_, concurrent_);
  const Arg* list = tail == nullptr ? nil_ : tail;
  for (size_t i = elems.size(); i-- > 0;) {
    list = MakeConsLocked(elems[i], list);
  }
  return list;
}

const SetArg* TermFactory::MakeSet(std::vector<const Arg*> elems) {
  MaybeMutexLock lock(&mu_, concurrent_);
  std::sort(elems.begin(), elems.end(),
            [](const Arg* a, const Arg* b) { return CompareArgs(a, b) < 0; });
  elems.erase(std::unique(elems.begin(), elems.end(),
                          [](const Arg* a, const Arg* b) {
                            return CompareArgs(a, b) == 0;
                          }),
              elems.end());
  bool ground = true;
  for (const Arg* e : elems) ground = ground && e->IsGround();
  uint64_t hash = HashChildren(kSetHashSeed, elems);
  if (ground) {
    uint64_t key = ConsKey(0x5e7c0115ull, elems);
    if (const SetArg* hit = set_cons_.Find(elems, key)) return hit;
    const SetArg* node =
        arena_.New<SetArg>(elems, true, NextUid(), hash, CopyArgs(elems));
    set_cons_.Insert(node, key);
    return node;
  }
  return arena_.New<SetArg>(elems, false, NextUid(), hash, CopyArgs(elems));
}

const Variable* TermFactory::MakeVariable(uint32_t slot,
                                          std::string_view name) {
  MaybeMutexLock lock(&mu_, concurrent_);
  varname_store_.emplace_back(name);
  return arena_.New<Variable>(slot, &varname_store_.back(), NextUid(),
                              HashMix64(kVarHashSeed));
}

const Variable* TermFactory::CanonicalVar(uint32_t slot) {
  MaybeMutexLock lock(&mu_, concurrent_);
  while (canonical_vars_.size() <= slot) {
    uint32_t s = static_cast<uint32_t>(canonical_vars_.size());
    varname_store_.push_back("_" + std::to_string(s));
    canonical_vars_.push_back(arena_.New<Variable>(
        s, &varname_store_.back(), NextUid(), HashMix64(kVarHashSeed)));
  }
  return canonical_vars_[slot];
}

const Tuple* TermFactory::MakeTuple(std::span<const Arg* const> args) {
  MaybeMutexLock lock(&mu_, concurrent_);
  bool ground = true;
  for (const Arg* a : args) ground = ground && a->IsGround();
  if (ground) {
    // The node hash is only needed when a new node is allocated; fixpoint
    // evaluation re-derives mostly-existing tuples, so hash on the cons
    // miss, not before the lookup.
    uint64_t key = ConsKey(0x70b1ull, args);
    if (const Tuple* hit = tuple_cons_.Find(args, key)) return hit;
    const Tuple* node = arena_.New<Tuple>(args, CopyArgs(args), true, 0,
                                          NextUid(),
                                          HashChildren(0x7091eull, args));
    tuple_cons_.Insert(node, key);
    return node;
  }
  uint64_t hash = HashChildren(0x7091eull, args);
  // Count distinct variables: canonical tuples number slots 0..k-1, so the
  // var count is max slot + 1.
  uint32_t var_count = 0;
  // Walk terms to find the max variable slot.
  struct Walker {
    static void Visit(const Arg* a, uint32_t* max_slot) {
      if (a->IsGround()) return;
      switch (a->kind()) {
        case ArgKind::kVariable: {
          uint32_t s = ArgCast<Variable>(a)->slot();
          *max_slot = std::max(*max_slot, s + 1);
          break;
        }
        case ArgKind::kAtomOrFunctor: {
          const auto* f = ArgCast<FunctorArg>(a);
          for (const Arg* c : f->args()) Visit(c, max_slot);
          break;
        }
        case ArgKind::kSet: {
          const auto* s = ArgCast<SetArg>(a);
          for (const Arg* c : s->elems()) Visit(c, max_slot);
          break;
        }
        default:
          break;
      }
    }
  };
  for (const Arg* a : args) Walker::Visit(a, &var_count);
  return arena_.New<Tuple>(args, CopyArgs(args), false, var_count, NextUid(),
                           hash);
}

bool StructuralEqualArgs(const Arg* a, const Arg* b) {
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ArgKind::kInt:
      return ArgCast<IntArg>(a)->value() == ArgCast<IntArg>(b)->value();
    case ArgKind::kDouble:
      return ArgCast<DoubleArg>(a)->value() == ArgCast<DoubleArg>(b)->value();
    case ArgKind::kString:
      return ArgCast<StringArg>(a)->value() == ArgCast<StringArg>(b)->value();
    case ArgKind::kBigInt:
      return ArgCast<BigIntArg>(a)->value() == ArgCast<BigIntArg>(b)->value();
    case ArgKind::kAtomOrFunctor: {
      const auto* fa = ArgCast<FunctorArg>(a);
      const auto* fb = ArgCast<FunctorArg>(b);
      if (fa->functor() != fb->functor() || fa->arity() != fb->arity()) {
        return false;
      }
      for (uint32_t i = 0; i < fa->arity(); ++i) {
        if (!StructuralEqualArgs(fa->arg(i), fb->arg(i))) return false;
      }
      return true;
    }
    case ArgKind::kSet: {
      const auto* sa = ArgCast<SetArg>(a);
      const auto* sb = ArgCast<SetArg>(b);
      if (sa->size() != sb->size()) return false;
      for (uint32_t i = 0; i < sa->size(); ++i) {
        if (!StructuralEqualArgs(sa->elem(i), sb->elem(i))) return false;
      }
      return true;
    }
    case ArgKind::kVariable:
      return ArgCast<Variable>(a)->slot() == ArgCast<Variable>(b)->slot();
    case ArgKind::kUser:
      return a->Equals(*b);
  }
  return false;
}

}  // namespace coral
