#include "src/data/arg.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "src/util/logging.h"

namespace coral {

std::string Arg::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const Arg& arg) {
  arg.Print(os);
  return os;
}

bool IntArg::Equals(const Arg& other) const {
  if (this == &other) return true;
  return other.kind() == ArgKind::kInt &&
         static_cast<const IntArg&>(other).value_ == value_;
}

void IntArg::Print(std::ostream& os) const { os << value_; }

bool DoubleArg::Equals(const Arg& other) const {
  if (this == &other) return true;
  return other.kind() == ArgKind::kDouble &&
         static_cast<const DoubleArg&>(other).value_ == value_;
}

void DoubleArg::Print(std::ostream& os) const {
  // Shortest representation that round-trips exactly, and always in a
  // form that re-parses as a double (not an int).
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value_);
    if (std::strtod(buf, nullptr) == value_) break;
  }
  std::string s = buf;
  if (s.find_first_of(".eE") == std::string::npos &&
      s.find_first_of("0123456789") != std::string::npos) {
    s += ".0";
  }
  os << s;
}

bool StringArg::Equals(const Arg& other) const {
  if (this == &other) return true;
  return other.kind() == ArgKind::kString &&
         static_cast<const StringArg&>(other).value() == *value_;
}

void StringArg::Print(std::ostream& os) const {
  os << '"';
  for (char c : *value_) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

bool BigIntArg::Equals(const Arg& other) const {
  if (this == &other) return true;
  return other.kind() == ArgKind::kBigInt &&
         static_cast<const BigIntArg&>(other).value() == *value_;
}

void BigIntArg::Print(std::ostream& os) const {
  os << value_->ToString() << 'B';
}

namespace {

/// True if `t` is a cons cell ".", used for list pretty-printing.
bool IsCons(const Arg* t) {
  return t->kind() == ArgKind::kAtomOrFunctor &&
         ArgCast<FunctorArg>(t)->arity() == 2 &&
         ArgCast<FunctorArg>(t)->name() == ".";
}

bool IsNil(const Arg* t) { return IsAtom(t, "[]"); }

/// True if the functor name needs quoting when printed.
bool NeedsQuoting(const std::string& name) {
  if (name.empty()) return true;
  if (!(std::islower(static_cast<unsigned char>(name[0])))) return true;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return true;
  }
  return false;
}

}  // namespace

bool IsAtom(const Arg* a, std::string_view name) {
  return a->kind() == ArgKind::kAtomOrFunctor &&
         ArgCast<FunctorArg>(a)->arity() == 0 &&
         ArgCast<FunctorArg>(a)->name() == name;
}

bool FunctorArg::Equals(const Arg& other) const {
  if (this == &other) return true;
  // Two distinct ground hash-consed terms are never equal.
  if (IsGround() && other.IsGround()) return false;
  if (other.kind() != ArgKind::kAtomOrFunctor) return false;
  const auto& o = static_cast<const FunctorArg&>(other);
  if (o.functor_ != functor_ || o.arity_ != arity_) return false;
  for (uint32_t i = 0; i < arity_; ++i) {
    if (!args_[i]->Equals(*o.args_[i])) return false;
  }
  return true;
}

void FunctorArg::Print(std::ostream& os) const {
  // Lists print in bracket notation.
  if (IsNil(this)) {
    os << "[]";
    return;
  }
  if (IsCons(this)) {
    os << '[';
    const Arg* cur = this;
    bool first = true;
    while (IsCons(cur)) {
      if (!first) os << ',';
      first = false;
      const auto* cell = ArgCast<FunctorArg>(cur);
      cell->arg(0)->Print(os);
      cur = cell->arg(1);
    }
    if (!IsNil(cur)) {
      os << '|';
      cur->Print(os);
    }
    os << ']';
    return;
  }
  if (NeedsQuoting(functor_->name)) {
    os << '\'' << functor_->name << '\'';
  } else {
    os << functor_->name;
  }
  if (arity_ > 0) {
    os << '(';
    for (uint32_t i = 0; i < arity_; ++i) {
      if (i) os << ',';
      args_[i]->Print(os);
    }
    os << ')';
  }
}

bool SetArg::Contains(const Arg* value) const {
  // Elements are sorted by CompareArgs; binary search.
  uint32_t lo = 0, hi = size_;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    int c = CompareArgs(elems_[mid], value);
    if (c == 0) return true;
    if (c < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

bool SetArg::Equals(const Arg& other) const {
  if (this == &other) return true;
  if (IsGround() && other.IsGround()) return false;
  if (other.kind() != ArgKind::kSet) return false;
  const auto& o = static_cast<const SetArg&>(other);
  if (o.size_ != size_) return false;
  for (uint32_t i = 0; i < size_; ++i) {
    if (!elems_[i]->Equals(*o.elems_[i])) return false;
  }
  return true;
}

void SetArg::Print(std::ostream& os) const {
  os << '{';
  for (uint32_t i = 0; i < size_; ++i) {
    if (i) os << ',';
    elems_[i]->Print(os);
  }
  os << '}';
}

bool Variable::Equals(const Arg& other) const {
  return other.kind() == ArgKind::kVariable &&
         static_cast<const Variable&>(other).slot_ == slot_;
}

void Variable::Print(std::ostream& os) const { os << *name_; }

namespace {

int KindRank(ArgKind k) {
  switch (k) {
    case ArgKind::kInt:
    case ArgKind::kDouble:
    case ArgKind::kBigInt:
      return 0;  // numeric types compare with each other
    case ArgKind::kString:
      return 1;
    case ArgKind::kAtomOrFunctor:
      return 2;
    case ArgKind::kSet:
      return 3;
    case ArgKind::kVariable:
      return 4;
    case ArgKind::kUser:
      return 5;
  }
  return 6;
}

int Sign(int64_t v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }

int CompareNumeric(const Arg* a, const Arg* b) {
  // BigInt involved: exact integer compare where possible.
  if (a->kind() == ArgKind::kBigInt || b->kind() == ArgKind::kBigInt) {
    auto as_big = [](const Arg* t) -> BigInt {
      if (t->kind() == ArgKind::kBigInt) return ArgCast<BigIntArg>(t)->value();
      if (t->kind() == ArgKind::kInt) {
        return BigInt(ArgCast<IntArg>(t)->value());
      }
      // Double vs bigint: compare via double approximation of the double
      // operand rounded to integer; adequate for ordering purposes.
      return BigInt(static_cast<int64_t>(ArgCast<DoubleArg>(t)->value()));
    };
    return as_big(a).Compare(as_big(b));
  }
  if (a->kind() == ArgKind::kInt && b->kind() == ArgKind::kInt) {
    int64_t x = ArgCast<IntArg>(a)->value();
    int64_t y = ArgCast<IntArg>(b)->value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  auto as_double = [](const Arg* t) {
    return t->kind() == ArgKind::kInt
               ? static_cast<double>(ArgCast<IntArg>(t)->value())
               : ArgCast<DoubleArg>(t)->value();
  };
  double x = as_double(a), y = as_double(b);
  if (x < y) return -1;
  if (x > y) return 1;
  // Equal numerically: break ties by kind so the order is total.
  return Sign(static_cast<int>(a->kind()) - static_cast<int>(b->kind()));
}

}  // namespace

int CompareArgs(const Arg* a, const Arg* b) {
  if (a == b) return 0;
  int ra = KindRank(a->kind()), rb = KindRank(b->kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a->kind()) {
    case ArgKind::kInt:
    case ArgKind::kDouble:
    case ArgKind::kBigInt:
      return CompareNumeric(a, b);
    case ArgKind::kString:
      return ArgCast<StringArg>(a)->value().compare(
          ArgCast<StringArg>(b)->value());
    case ArgKind::kAtomOrFunctor: {
      const auto* fa = ArgCast<FunctorArg>(a);
      const auto* fb = ArgCast<FunctorArg>(b);
      int c = fa->name().compare(fb->name());
      if (c != 0) return Sign(c);
      if (fa->arity() != fb->arity()) {
        return fa->arity() < fb->arity() ? -1 : 1;
      }
      for (uint32_t i = 0; i < fa->arity(); ++i) {
        c = CompareArgs(fa->arg(i), fb->arg(i));
        if (c != 0) return c;
      }
      return 0;
    }
    case ArgKind::kSet: {
      const auto* sa = ArgCast<SetArg>(a);
      const auto* sb = ArgCast<SetArg>(b);
      uint32_t n = std::min(sa->size(), sb->size());
      for (uint32_t i = 0; i < n; ++i) {
        int c = CompareArgs(sa->elem(i), sb->elem(i));
        if (c != 0) return c;
      }
      if (sa->size() != sb->size()) return sa->size() < sb->size() ? -1 : 1;
      return 0;
    }
    case ArgKind::kVariable: {
      uint32_t x = ArgCast<Variable>(a)->slot();
      uint32_t y = ArgCast<Variable>(b)->slot();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ArgKind::kUser: {
      // User types order by tag then uid: stable within a run.
      const auto* ua = ArgCast<UserArg>(a);
      const auto* ub = ArgCast<UserArg>(b);
      if (ua->type_tag() != ub->type_tag()) {
        return ua->type_tag() < ub->type_tag() ? -1 : 1;
      }
      return a->uid() < b->uid() ? -1 : (a->uid() > b->uid() ? 1 : 0);
    }
  }
  CORAL_UNREACHABLE();
}

}  // namespace coral
