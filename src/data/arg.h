// Copyright (c) 1993-style CORAL reproduction authors.
// The Arg class hierarchy (paper §3): the generic class Arg is the root of
// all CORAL data types, with virtual Equals / Hash / Print forming the
// abstract-data-type interface that makes the type system extensible
// (paper §7.1). Subclasses: integers, doubles, strings, arbitrary
// precision integers, variables, functor terms (lists are functor terms
// with the cons functor), and sets produced by set-grouping.
//
// All ground terms are produced canonically by TermFactory (hash-consing,
// paper §3.1), so ground equality is pointer equality and every term
// carries a unique id (`uid`) that doubles as its hash basis.

#ifndef CORAL_DATA_ARG_H_
#define CORAL_DATA_ARG_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "src/data/symbol_table.h"
#include "src/util/bigint.h"

namespace coral {

/// Discriminator for fast dispatch without virtual calls on hot paths.
enum class ArgKind : uint8_t {
  kInt,
  kDouble,
  kString,
  kBigInt,
  kAtomOrFunctor,  // arity-0 functor terms are atoms
  kSet,            // result of set-grouping <X>
  kVariable,
  kUser,           // user-defined abstract data types (paper §7.1)
};

/// Root of all CORAL data types.
class Arg {
 public:
  virtual ~Arg() = default;

  ArgKind kind() const { return kind_; }
  /// True when the term contains no variables. Ground terms are
  /// hash-consed: two ground terms are equal iff their pointers are equal.
  bool IsGround() const { return ground_; }
  /// Unique identifier assigned by the factory; for ground terms this is
  /// the paper's hash-consing id (two ground terms unify iff ids match).
  uint64_t uid() const { return uid_; }
  /// Structural hash, precomputed at construction. Terms containing
  /// variables hash all variables alike, so variants hash identically.
  uint64_t Hash() const { return hash_; }

  /// Structural equality. For ground terms `this == &other` suffices (and
  /// is used as a fast path); for non-ground terms variables are equal iff
  /// their slots are equal.
  virtual bool Equals(const Arg& other) const = 0;

  /// Prints the external (re-parseable) representation.
  virtual void Print(std::ostream& os) const = 0;

  std::string ToString() const;

 protected:
  Arg(ArgKind kind, bool ground, uint64_t uid, uint64_t hash)
      : kind_(kind), ground_(ground), uid_(uid), hash_(hash) {}

 private:
  ArgKind kind_;
  bool ground_;
  uint64_t uid_;
  uint64_t hash_;
};

std::ostream& operator<<(std::ostream& os, const Arg& arg);

/// 64-bit machine integer.
class IntArg : public Arg {
 public:
  IntArg(int64_t value, uint64_t uid, uint64_t hash)
      : Arg(ArgKind::kInt, true, uid, hash), value_(value) {}
  int64_t value() const { return value_; }
  bool Equals(const Arg& other) const override;
  void Print(std::ostream& os) const override;

 private:
  int64_t value_;
};

/// Double-precision float.
class DoubleArg : public Arg {
 public:
  DoubleArg(double value, uint64_t uid, uint64_t hash)
      : Arg(ArgKind::kDouble, true, uid, hash), value_(value) {}
  double value() const { return value_; }
  bool Equals(const Arg& other) const override;
  void Print(std::ostream& os) const override;

 private:
  double value_;
};

/// Quoted string constant. Distinct from atoms.
class StringArg : public Arg {
 public:
  StringArg(const std::string* value, uint64_t uid, uint64_t hash)
      : Arg(ArgKind::kString, true, uid, hash), value_(value) {}
  const std::string& value() const { return *value_; }
  bool Equals(const Arg& other) const override;
  void Print(std::ostream& os) const override;

 private:
  const std::string* value_;  // owned by TermFactory
};

/// Arbitrary-precision integer (paper §3.1; BigNum substitute).
class BigIntArg : public Arg {
 public:
  BigIntArg(const BigInt* value, uint64_t uid, uint64_t hash)
      : Arg(ArgKind::kBigInt, true, uid, hash), value_(value) {}
  const BigInt& value() const { return *value_; }
  bool Equals(const Arg& other) const override;
  void Print(std::ostream& os) const override;

 private:
  const BigInt* value_;  // owned by TermFactory
};

/// A functor term f(t1,...,tn); arity 0 is an atom. Lists use the cons
/// functor "." and the atom "[]" (paper §3.1: lists are functor terms).
class FunctorArg : public Arg {
 public:
  FunctorArg(Symbol functor, std::span<const Arg* const> args, bool ground,
             uint64_t uid, uint64_t hash, const Arg** stored_args)
      : Arg(ArgKind::kAtomOrFunctor, ground, uid, hash),
        functor_(functor),
        arity_(static_cast<uint32_t>(args.size())),
        args_(stored_args) {}

  Symbol functor() const { return functor_; }
  const std::string& name() const { return functor_->name; }
  uint32_t arity() const { return arity_; }
  const Arg* arg(uint32_t i) const { return args_[i]; }
  std::span<const Arg* const> args() const { return {args_, arity_}; }

  bool Equals(const Arg& other) const override;
  void Print(std::ostream& os) const override;

 private:
  Symbol functor_;
  uint32_t arity_;
  const Arg** args_;  // arena storage owned by TermFactory
};

/// A set of terms produced by set-grouping. Elements are kept sorted by
/// the total term order so equal sets have identical layouts.
class SetArg : public Arg {
 public:
  SetArg(std::span<const Arg* const> elems, bool ground, uint64_t uid,
         uint64_t hash, const Arg** stored)
      : Arg(ArgKind::kSet, ground, uid, hash),
        size_(static_cast<uint32_t>(elems.size())),
        elems_(stored) {}

  uint32_t size() const { return size_; }
  const Arg* elem(uint32_t i) const { return elems_[i]; }
  std::span<const Arg* const> elems() const { return {elems_, size_}; }
  /// Membership test by structural equality (binary search).
  bool Contains(const Arg* value) const;

  bool Equals(const Arg& other) const override;
  void Print(std::ostream& os) const override;

 private:
  uint32_t size_;
  const Arg** elems_;
};

/// A variable. Facts as well as rules may contain variables (paper §3.1);
/// a variable in a fact is universally quantified. `slot` indexes the
/// clause- or tuple-local binding environment.
class Variable : public Arg {
 public:
  Variable(uint32_t slot, const std::string* name, uint64_t uid,
           uint64_t hash)
      : Arg(ArgKind::kVariable, false, uid, hash), slot_(slot), name_(name) {}

  uint32_t slot() const { return slot_; }
  const std::string& name() const { return *name_; }

  bool Equals(const Arg& other) const override;
  void Print(std::ostream& os) const override;

 private:
  uint32_t slot_;
  const std::string* name_;
};

/// Base for user-defined abstract data types (paper §7.1). Users subclass
/// and implement the virtual interface; UserHash/UserEquals let distinct
/// extensions coexist. Instances are registered with the TermFactory which
/// assigns uid/hash on construction via MakeUser.
class UserArg : public Arg {
 public:
  UserArg(uint32_t type_tag, uint64_t uid, uint64_t hash)
      : Arg(ArgKind::kUser, true, uid, hash), type_tag_(type_tag) {}

  /// Discriminates between different user-defined types.
  uint32_t type_tag() const { return type_tag_; }

 private:
  uint32_t type_tag_;
};

/// Total order over terms: numeric types compare numerically with each
/// other; otherwise ordered by kind, then by value (functors by name,
/// arity, then arguments lexicographically; variables by slot). Used by
/// aggregates (min/max), set canonicalization and sort-based operations.
int CompareArgs(const Arg* a, const Arg* b);

/// Downcast helpers (checked in debug builds).
template <typename T>
const T* ArgCast(const Arg* a) {
  return static_cast<const T*>(a);
}

/// True if `a` is the atom `name` (arity-0 functor).
bool IsAtom(const Arg* a, std::string_view name);

}  // namespace coral

#endif  // CORAL_DATA_ARG_H_
