// Copyright (c) 1993-style CORAL reproduction authors.
// Unification, one-way matching (subsumption) and term resolution.
// Ground-vs-ground unification is a pointer comparison thanks to
// hash-consing (paper §3.1): "two (ground) functor terms unify if and
// only if their unique identifiers are the same".

#ifndef CORAL_DATA_UNIFY_H_
#define CORAL_DATA_UNIFY_H_

#include "src/data/bindenv.h"
#include "src/data/term_factory.h"
#include "src/data/tuple.h"

namespace coral {

/// Unifies (a, env_a) with (b, env_b), recording new bindings on `trail`.
/// On failure the caller must undo the trail to its pre-call mark; partial
/// bindings are left recorded. No occurs check (as in most Prolog and
/// deductive systems of the era).
bool Unify(const Arg* a, BindEnv* env_a, const Arg* b, BindEnv* env_b,
           Trail* trail);

/// One-way matching: only variables of `pattern` may be bound; variables
/// of `target` are rigid. Succeeds iff pattern subsumes target under
/// env_p/env_t.
bool Match(const Arg* pattern, BindEnv* env_p, const Arg* target,
           BindEnv* env_t, Trail* trail);

/// True iff `general` subsumes `specific` (there is a substitution on
/// general's variables making it equal to specific). Both tuples must be
/// in canonical-variable form. Used for duplicate elimination in the
/// presence of non-ground facts.
bool SubsumesTuple(const Tuple* general, const Tuple* specific);

/// Maps (env, slot) pairs of unbound variables onto fresh canonical slots
/// during resolution of a derived fact.
class VarRenamer {
 public:
  /// Returns the canonical slot for the unbound variable (env, slot),
  /// allocating the next one on first sight.
  uint32_t Rename(const BindEnv* env, uint32_t slot);
  uint32_t count() const { return static_cast<uint32_t>(map_.size()); }

  /// (original env, original slot) -> canonical slot, in allocation order.
  const std::vector<std::pair<std::pair<const BindEnv*, uint32_t>, uint32_t>>&
  entries() const {
    return map_;
  }

 private:
  std::vector<std::pair<std::pair<const BindEnv*, uint32_t>, uint32_t>> map_;
};

/// After building a term from resolved pieces (whose unbound variables
/// were renamed into `new_env`'s slots), bind each original variable to
/// its canonical stand-in so bindings flow both ways through the new
/// environment. Used by term-constructing builtins (e.g. append) to
/// preserve variable sharing across environments.
void LinkRenamedVars(const VarRenamer& renamer, BindEnv* new_env,
                     TermFactory* factory, Trail* trail);

/// Fully substitutes bindings into `term`, renaming remaining unbound
/// variables to canonical variables via `renamer`. Ground subterms are
/// returned as-is (structure sharing). The result is self-contained: it
/// can be stored in a relation without its bindenv.
const Arg* ResolveTerm(const Arg* term, BindEnv* env, TermFactory* factory,
                       VarRenamer* renamer);

/// Resolves each of `args` under `env` (sharing one renamer) and builds a
/// canonical tuple.
const Tuple* ResolveTuple(std::span<const TermRef> args, TermFactory* factory);

/// Computes the structural hash of (term, env) as if the bindings were
/// substituted and the result built by the factory: the value equals
/// Arg::Hash() of the materialized term. Returns false when the resolved
/// term contains an unbound variable (index keys must be ground).
bool HashResolvedTerm(const Arg* term, BindEnv* env, uint64_t* out);

}  // namespace coral

#endif  // CORAL_DATA_UNIFY_H_
