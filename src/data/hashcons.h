// Copyright (c) 1993-style CORAL reproduction authors.
// Hash-consing tables (paper §3.1, citing Goto's monocopy scheme). Ground
// functor terms, sets and tuples are canonicalized: two ground terms unify
// iff they are the same node, i.e. iff their unique identifiers are equal.
// Because every type constructs its identifiers from its children's
// identifiers, no cross-type integration is needed — the orthogonality the
// paper highlights for extensibility.
//
// The tables are open-addressing (linear probing over power-of-two
// capacity) rather than node-based maps: the lookup is one contiguous
// probe run instead of bucket-node-vector pointer chasing. Entries are
// never removed — canonical nodes live as long as the factory's arena —
// so no tombstones are needed. Distinct nodes may collide on the same
// 64-bit key; the probe simply continues past entries whose children
// differ.

#ifndef CORAL_DATA_HASHCONS_H_
#define CORAL_DATA_HASHCONS_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/data/arg.h"
#include "src/data/tuple.h"

namespace coral {

namespace hashcons_internal {

inline bool SameChildren(std::span<const Arg* const> a,
                         std::span<const Arg* const> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

template <typename T>
class ConsTable {
 public:
  /// Returns the node whose key matches and for which `eq(node)` holds,
  /// or nullptr. Keys are already well mixed (HashCombine over child
  /// uids), so the low bits index directly.
  template <typename Eq>
  const T* Find(uint64_t key, Eq&& eq) const {
    if (count_ == 0) return nullptr;
    size_t i = key & mask_;
    while (slots_[i].node != nullptr) {
      if (slots_[i].key == key && eq(slots_[i].node)) return slots_[i].node;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  void Insert(const T* node, uint64_t key) {
    if ((count_ + 1) * 4 > slots_.size() * 3) Grow();
    Place(key, node);
    ++count_;
  }

  size_t size() const { return count_; }

 private:
  struct Slot {
    uint64_t key = 0;
    const T* node = nullptr;
  };

  void Place(uint64_t key, const T* node) {
    size_t i = key & mask_;
    while (slots_[i].node != nullptr) i = (i + 1) & mask_;
    slots_[i].key = key;
    slots_[i].node = node;
  }

  void Grow() {
    size_t cap = slots_.empty() ? 1024 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (const Slot& s : old) {
      if (s.node != nullptr) Place(s.key, s.node);
    }
  }

  std::vector<Slot> slots_;
  size_t count_ = 0;
  size_t mask_ = 0;
};

}  // namespace hashcons_internal

/// Canonicalization table for ground functor terms keyed by
/// (functor symbol, child node pointers).
class FunctorHashcons {
 public:
  /// Returns the canonical node for (sym, args) or nullptr.
  const FunctorArg* Find(Symbol sym, std::span<const Arg* const> args,
                         uint64_t hash) const {
    return table_.Find(hash, [&](const FunctorArg* cand) {
      return cand->functor() == sym &&
             hashcons_internal::SameChildren(cand->args(), args);
    });
  }
  void Insert(const FunctorArg* node, uint64_t hash) {
    table_.Insert(node, hash);
  }

  size_t size() const { return table_.size(); }

 private:
  hashcons_internal::ConsTable<FunctorArg> table_;
};

/// Canonicalization table for ground tuples keyed by element pointers.
class TupleHashcons {
 public:
  const Tuple* Find(std::span<const Arg* const> args, uint64_t hash) const {
    return table_.Find(hash, [&](const Tuple* cand) {
      return hashcons_internal::SameChildren(cand->args(), args);
    });
  }
  void Insert(const Tuple* node, uint64_t hash) { table_.Insert(node, hash); }

  size_t size() const { return table_.size(); }

 private:
  hashcons_internal::ConsTable<Tuple> table_;
};

/// Canonicalization table for ground sets keyed by sorted elements.
class SetHashcons {
 public:
  const SetArg* Find(std::span<const Arg* const> elems, uint64_t hash) const {
    return table_.Find(hash, [&](const SetArg* cand) {
      return hashcons_internal::SameChildren(cand->elems(), elems);
    });
  }
  void Insert(const SetArg* node, uint64_t hash) { table_.Insert(node, hash); }

 private:
  hashcons_internal::ConsTable<SetArg> table_;
};

}  // namespace coral

#endif  // CORAL_DATA_HASHCONS_H_
