// Copyright (c) 1993-style CORAL reproduction authors.
// Hash-consing tables (paper §3.1, citing Goto's monocopy scheme). Ground
// functor terms, sets and tuples are canonicalized: two ground terms unify
// iff they are the same node, i.e. iff their unique identifiers are equal.
// Because every type constructs its identifiers from its children's
// identifiers, no cross-type integration is needed — the orthogonality the
// paper highlights for extensibility.

#ifndef CORAL_DATA_HASHCONS_H_
#define CORAL_DATA_HASHCONS_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/data/arg.h"
#include "src/data/tuple.h"

namespace coral {

/// Canonicalization table for ground functor terms keyed by
/// (functor symbol, child node pointers).
class FunctorHashcons {
 public:
  /// Returns the canonical node for (sym, args) or nullptr.
  const FunctorArg* Find(Symbol sym, std::span<const Arg* const> args,
                         uint64_t hash) const;
  void Insert(const FunctorArg* node, uint64_t hash);

  size_t size() const { return count_; }

 private:
  std::unordered_map<uint64_t, std::vector<const FunctorArg*>> buckets_;
  size_t count_ = 0;
};

/// Canonicalization table for ground tuples keyed by element pointers.
class TupleHashcons {
 public:
  const Tuple* Find(std::span<const Arg* const> args, uint64_t hash) const;
  void Insert(const Tuple* node, uint64_t hash);

  size_t size() const { return count_; }

 private:
  std::unordered_map<uint64_t, std::vector<const Tuple*>> buckets_;
  size_t count_ = 0;
};

/// Canonicalization table for ground sets keyed by sorted elements.
class SetHashcons {
 public:
  const SetArg* Find(std::span<const Arg* const> elems, uint64_t hash) const;
  void Insert(const SetArg* node, uint64_t hash);

 private:
  std::unordered_map<uint64_t, std::vector<const SetArg*>> buckets_;
};

}  // namespace coral

#endif  // CORAL_DATA_HASHCONS_H_
