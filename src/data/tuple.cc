#include "src/data/tuple.h"

#include <ostream>
#include <sstream>

namespace coral {

bool Tuple::Equals(const Tuple& other) const {
  if (this == &other) return true;
  if (ground_ && other.ground_) return false;  // hash-consed
  if (arity_ != other.arity_) return false;
  for (uint32_t i = 0; i < arity_; ++i) {
    if (!args_[i]->Equals(*other.args_[i])) return false;
  }
  return true;
}

void Tuple::Print(std::ostream& os) const {
  os << '(';
  for (uint32_t i = 0; i < arity_; ++i) {
    if (i) os << ',';
    args_[i]->Print(os);
  }
  os << ')';
}

std::string Tuple::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  t.Print(os);
  return os;
}

}  // namespace coral
