// Copyright (c) 1993-style CORAL reproduction authors.
// Tuples of Args (paper §3). Ground tuples are hash-consed by the
// TermFactory so duplicate detection on ground relations is a pointer-set
// lookup. Non-ground tuples (facts with universally quantified variables)
// store their variables in canonical form: slots 0..var_count-1 numbered
// in order of first occurrence, with no external binding environment.

#ifndef CORAL_DATA_TUPLE_H_
#define CORAL_DATA_TUPLE_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "src/data/arg.h"

namespace coral {

/// An immutable tuple of term arguments.
class Tuple {
 public:
  Tuple(std::span<const Arg* const> args, const Arg** stored, bool ground,
        uint32_t var_count, uint64_t uid, uint64_t hash)
      : arity_(static_cast<uint32_t>(args.size())),
        var_count_(var_count),
        ground_(ground),
        uid_(uid),
        hash_(hash),
        args_(stored) {}

  uint32_t arity() const { return arity_; }
  const Arg* arg(uint32_t i) const { return args_[i]; }
  std::span<const Arg* const> args() const { return {args_, arity_}; }

  /// Number of distinct variables (0 for ground tuples). A fresh binding
  /// environment of this size scopes the tuple during joins.
  uint32_t var_count() const { return var_count_; }
  bool IsGround() const { return ground_; }
  uint64_t uid() const { return uid_; }
  uint64_t Hash() const { return hash_; }

  /// Structural equality; pointer equality for ground tuples.
  bool Equals(const Tuple& other) const;

  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  uint32_t arity_;
  uint32_t var_count_;
  bool ground_;
  uint64_t uid_;
  uint64_t hash_;
  const Arg** args_;  // arena storage owned by TermFactory
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

}  // namespace coral

#endif  // CORAL_DATA_TUPLE_H_
