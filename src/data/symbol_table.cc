#include "src/data/symbol_table.h"

namespace coral {

Symbol SymbolTable::Intern(std::string_view name) {
  MaybeMutexLock lock(&mu_, concurrent_.load(std::memory_order_relaxed));
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  entries_.push_back(SymbolInfo{std::string(name),
                                static_cast<uint32_t>(entries_.size())});
  Symbol sym = &entries_.back();
  index_.emplace(std::string_view(sym->name), sym);
  return sym;
}

Symbol SymbolTable::Find(std::string_view name) const {
  MaybeMutexLock lock(&mu_, concurrent_.load(std::memory_order_relaxed));
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : it->second;
}

}  // namespace coral
