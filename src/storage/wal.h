// Copyright (c) 1993-style CORAL reproduction authors.
// Minimal transaction support for the EXODUS-substitute storage manager.
// The paper (§2, §9) delegates transactions and recovery to the EXODUS
// toolkit; we provide the equivalent single-user facility: an undo
// (before-image) write-ahead log with force-at-commit, giving atomic
// commit/abort and crash recovery. The first modification of each page
// within a transaction logs its before-image (flushed before the page can
// reach disk); abort restores images; recovery undoes all transactions
// without a commit record.
//
// On-disk record format (v1, explicitly serialized — no struct padding is
// ever written): a 32-byte header { magic "CWAL", type, txn, page,
// payload_len, payload_crc, header_crc } followed by the payload. The
// CRCs let Recover distinguish a torn or corrupted tail from well-formed
// records and truncate it instead of misparsing. Logs written by the
// pre-CRC format (raw padded structs) are still read on a best-effort
// basis; see docs/STORAGE.md for the recovery contract.

#ifndef CORAL_STORAGE_WAL_H_
#define CORAL_STORAGE_WAL_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/storage/disk_manager.h"

namespace coral {

using TxnId = uint64_t;

/// One well-formed log record, as reported by WriteAheadLog::Inspect
/// (tools/coral_walinspect and the crash tests).
struct WalRecordInfo {
  uint32_t type = 0;  // 1 begin, 2 page image, 3 commit, 4 abort
  TxnId txn = 0;
  PageId page = 0;     // page-image records only
  uint64_t offset = 0; // byte offset of the record in the log
  uint64_t size = 0;   // total bytes, header + payload
};

/// Result of parsing a log file without replaying it.
struct WalInspection {
  std::vector<WalRecordInfo> records;  // the well-formed prefix
  uint64_t valid_bytes = 0;            // where the well-formed prefix ends
  uint64_t file_bytes = 0;
  bool old_format = false;             // pre-CRC struct-dump format
  std::string tail_error;              // why parsing stopped ("" = clean)
};

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  /// Replays `log_path` against `disk`: restores the earliest before-image
  /// of every page touched by a transaction that never committed, then
  /// truncates the log. A torn or corrupted tail is truncated, never
  /// misparsed. Call before reading any pages. A missing log is OK
  /// (nothing to recover); an unopenable one is an error — callers must
  /// not treat "cannot open" as "nothing to recover".
  static Status Recover(const std::string& log_path, DiskManager* disk);

  /// Parses the log without touching the database: record table, where
  /// the well-formed prefix ends, and why parsing stopped.
  static StatusOr<WalInspection> Inspect(const std::string& log_path);

  Status Open(const std::string& path);

  StatusOr<TxnId> Begin();
  bool in_txn() const { return active_txn_ != 0; }
  TxnId active_txn() const { return active_txn_; }

  /// Records `before` (the page's pre-modification content) durably.
  /// Idempotent per (transaction, page). No-op outside a transaction.
  Status LogBeforeImage(PageId page, const char* before);

  /// Forces data pages via `flush_pages`, then logs the commit record.
  Status Commit(const std::function<Status()>& flush_pages);

  /// Restores all before-images of the active transaction, then logs an
  /// abort record so Recover treats the transaction as resolved (and never
  /// re-applies its images over later commits).
  Status Abort(DiskManager* disk,
               const std::function<void(PageId)>& invalidate_page);

 private:
  Status AppendRecord(uint32_t type, TxnId txn, PageId page,
                      const char* image);

  int fd_ = -1;
  std::string path_;
  uint64_t append_offset_ = 0;  // log size; next record lands here
  bool poisoned_ = false;  // a failed append could not be rolled back:
                           // the tail may be torn, refuse further appends
  TxnId next_txn_ = 1;
  TxnId active_txn_ = 0;  // 0 = none (single-user: one at a time)
  std::unordered_set<PageId> logged_pages_;
  std::vector<std::pair<PageId, std::vector<char>>> undo_;
};

}  // namespace coral

#endif  // CORAL_STORAGE_WAL_H_
