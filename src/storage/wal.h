// Copyright (c) 1993-style CORAL reproduction authors.
// Minimal transaction support for the EXODUS-substitute storage manager.
// The paper (§2, §9) delegates transactions and recovery to the EXODUS
// toolkit; we provide the equivalent single-user facility: an undo
// (before-image) write-ahead log with force-at-commit, giving atomic
// commit/abort and crash recovery. The first modification of each page
// within a transaction logs its before-image (flushed before the page can
// reach disk); abort restores images; recovery undoes all transactions
// without a commit record.

#ifndef CORAL_STORAGE_WAL_H_
#define CORAL_STORAGE_WAL_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/storage/disk_manager.h"

namespace coral {

using TxnId = uint64_t;

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  /// Replays `log_path` against `disk`: restores the earliest before-image
  /// of every page touched by a transaction that never committed, then
  /// truncates the log. Call before reading any pages.
  static Status Recover(const std::string& log_path, DiskManager* disk);

  Status Open(const std::string& path);

  StatusOr<TxnId> Begin();
  bool in_txn() const { return active_txn_ != 0; }
  TxnId active_txn() const { return active_txn_; }

  /// Records `before` (the page's pre-modification content) durably.
  /// Idempotent per (transaction, page). No-op outside a transaction.
  Status LogBeforeImage(PageId page, const char* before);

  /// Forces data pages via `flush_pages`, then logs the commit record.
  Status Commit(const std::function<Status()>& flush_pages);

  /// Restores all before-images of the active transaction.
  Status Abort(DiskManager* disk,
               const std::function<void(PageId)>& invalidate_page);

 private:
  Status AppendRecord(uint32_t type, TxnId txn, PageId page,
                      const char* image);

  int fd_ = -1;
  std::string path_;
  TxnId next_txn_ = 1;
  TxnId active_txn_ = 0;  // 0 = none (single-user: one at a time)
  std::unordered_set<PageId> logged_pages_;
  std::vector<std::pair<PageId, std::vector<char>>> undo_;
};

}  // namespace coral

#endif  // CORAL_STORAGE_WAL_H_
