#include "src/storage/fault.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "src/obs/storage_metrics.h"

namespace coral {

namespace {

constexpr const char* kAllPoints[] = {
    fp::kDiskOpen,         fp::kDiskDirSync,
    fp::kDiskAllocWrite,   fp::kDiskWrite,
    fp::kDiskRead,         fp::kDiskSync,
    fp::kWalOpen,          fp::kWalDirSync,
    fp::kWalAppendWrite,   fp::kWalAppendTruncate,
    fp::kWalImageSync,     fp::kWalCommitSync,
    fp::kWalRecoverOpen,   fp::kWalRecoverRead,
    fp::kWalRecoverWrite,  fp::kWalRecoverTruncate,
};

// Marker kept in simulated-crash Status messages; IsSimulatedCrash greps
// for it so harnesses can tell injected freezes from genuine errors.
constexpr const char kCrashMarker[] = "simulated crash";

Status CrashStatus(const char* point) {
  return Status::IOError(std::string(point) + ": " + kCrashMarker +
                         " (persistence frozen by fault injection)");
}

Status ErrnoStatus(const char* point, const char* op, int err) {
  return Status::IOError(std::string(point) + ": " + op + ": " +
                         std::strerror(err));
}

// Bounded retry of EAGAIN-class transient failures. Exponential backoff,
// but the first retries are free so injected transients don't slow tests.
constexpr int kMaxTransientRetries = 8;

void TransientBackoff(int attempt) {
  obs::StorageMetrics::Instance().transient_retries.fetch_add(
      1, std::memory_order_relaxed);
  if (attempt < 2) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(100 << std::min(attempt, 6)));
}

bool IsTransient(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

}  // namespace

std::span<const char* const> AllFaultPoints() { return kAllPoints; }

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  MutexLock lock(&mu_);
  PointState& st = points_[point];
  st.armed = true;
  st.fired = 0;
  st.spec = spec;
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
}

void FaultInjector::Reset() {
  MutexLock lock(&mu_);
  points_.clear();
  crashed_.store(false, std::memory_order_release);
}

void FaultInjector::TriggerCrash() {
  bool was = crashed_.exchange(true, std::memory_order_acq_rel);
  if (!was) {
    obs::StorageMetrics::Instance().crashes_simulated.fetch_add(
        1, std::memory_order_relaxed);
  }
}

uint64_t FaultInjector::hits(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::HitCounts()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    MutexLock lock(&mu_);
    out.reserve(points_.size());
    for (const auto& [name, st] : points_) out.emplace_back(name, st.hits);
  }
  std::sort(out.begin(), out.end());
  return out;
}

FaultInjector::Decision FaultInjector::Hit(const char* point) {
  Decision d;
  MutexLock lock(&mu_);
  PointState& st = points_[point];
  ++st.hits;
  if (crashed_.load(std::memory_order_acquire)) {
    d.fail = true;
    d.is_crash = true;
    return d;
  }
  if (!st.armed || st.hits < st.spec.trigger_hit ||
      st.fired >= st.spec.times) {
    return d;
  }
  ++st.fired;
  obs::StorageMetrics::Instance().faults_injected.fetch_add(
      1, std::memory_order_relaxed);
  switch (st.spec.kind) {
    case FaultKind::kError:
      d.fail = true;
      d.err = st.spec.err;
      break;
    case FaultKind::kShortWrite:
      d.partial = true;
      d.partial_bytes = st.spec.partial_bytes;
      break;
    case FaultKind::kTornWrite:
      d.partial = true;
      d.partial_bytes = st.spec.partial_bytes;
      d.crash_after = true;
      break;
    case FaultKind::kCrash:
      d.fail = true;
      d.is_crash = true;
      // The freeze takes effect immediately: this site already fails.
      crashed_.store(true, std::memory_order_release);
      obs::StorageMetrics::Instance().crashes_simulated.fetch_add(
          1, std::memory_order_relaxed);
      break;
  }
  return d;
}

bool IsSimulatedCrash(const Status& status) {
  return status.code() == StatusCode::kIOError &&
         status.message().find(kCrashMarker) != std::string::npos;
}

namespace {

/// Shared skeleton of the full-transfer loops. `xfer` performs one
/// syscall attempt of up to `len` bytes at buffer offset `done` and
/// returns the transfer count (-1: errno set, 0: EOF for reads).
template <typename XferFn>
Status FullTransfer(const char* point, const char* op, size_t n,
                    bool eof_ok, size_t* transferred, XferFn xfer) {
  auto& metrics = obs::StorageMetrics::Instance();
  auto& injector = FaultInjector::Instance();
  size_t done = 0;
  int transient_attempts = 0;
  while (done < n) {
    size_t want = n - done;
    FaultInjector::Decision d = injector.Hit(point);
    if (d.fail) {
      if (d.is_crash) return CrashStatus(point);
      if (IsTransient(d.err) && transient_attempts < kMaxTransientRetries) {
        TransientBackoff(transient_attempts++);
        continue;
      }
      if (d.err == EINTR) {
        metrics.eintr_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return ErrnoStatus(point, op, d.err);
    }
    if (d.partial) want = std::min(want, std::max<size_t>(d.partial_bytes, 0));
    ssize_t got = want == 0 ? 0 : xfer(done, want);
    if (got < 0) {
      int err = errno;
      if (err == EINTR) {
        metrics.eintr_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (IsTransient(err) && transient_attempts < kMaxTransientRetries) {
        TransientBackoff(transient_attempts++);
        continue;
      }
      return ErrnoStatus(point, op, err);
    }
    done += static_cast<size_t>(got);
    if (d.crash_after) {
      injector.TriggerCrash();
      return CrashStatus(point);
    }
    if (got == 0 && !d.partial) {
      // EOF (reads) or a zero-byte write: never retried blindly.
      break;
    }
    if (done < n) {
      metrics.short_transfers.fetch_add(1, std::memory_order_relaxed);
    }
    transient_attempts = 0;
  }
  if (transferred != nullptr) *transferred = done;
  if (done < n && !eof_ok) {
    return Status::IOError(std::string(point) + ": " + op +
                           ": unexpected end of file (" +
                           std::to_string(done) + "/" + std::to_string(n) +
                           " bytes)");
  }
  return Status::OK();
}

/// Injection + EINTR/transient retry for syscalls without a byte count
/// (open, fsync, ftruncate, close). `call` returns 0 on success or -1
/// with errno set.
template <typename CallFn>
Status SimpleGuarded(const char* point, const char* op, CallFn call) {
  auto& metrics = obs::StorageMetrics::Instance();
  auto& injector = FaultInjector::Instance();
  int transient_attempts = 0;
  while (true) {
    FaultInjector::Decision d = injector.Hit(point);
    if (d.crash_after || (d.fail && d.is_crash)) {
      injector.TriggerCrash();
      return CrashStatus(point);
    }
    if (d.fail || d.partial) {
      // Partial transfers are meaningless here; treat them as the error.
      int err = d.fail ? d.err : EIO;
      if (err == EINTR) {
        metrics.eintr_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (IsTransient(err) && transient_attempts < kMaxTransientRetries) {
        TransientBackoff(transient_attempts++);
        continue;
      }
      return ErrnoStatus(point, op, err);
    }
    if (call() == 0) return Status::OK();
    int err = errno;
    if (err == EINTR) {
      metrics.eintr_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (IsTransient(err) && transient_attempts < kMaxTransientRetries) {
      TransientBackoff(transient_attempts++);
      continue;
    }
    return ErrnoStatus(point, op, err);
  }
}

}  // namespace

Status FaultOpen(const char* point, const std::string& path, int flags,
                 mode_t mode, int* fd_out) {
  int fd = -1;
  Status st = SimpleGuarded(point, ("open " + path).c_str(), [&]() {
    fd = ::open(path.c_str(), flags, mode);
    return fd < 0 ? -1 : 0;
  });
  if (st.ok()) *fd_out = fd;
  return st;
}

Status FaultWriteFull(const char* point, int fd, const char* buf, size_t n) {
  return FullTransfer(point, "write", n, /*eof_ok=*/false, nullptr,
                      [&](size_t done, size_t want) {
                        return ::write(fd, buf + done, want);
                      });
}

Status FaultPWriteFull(const char* point, int fd, const char* buf, size_t n,
                       off_t off) {
  return FullTransfer(point, "pwrite", n, /*eof_ok=*/false, nullptr,
                      [&](size_t done, size_t want) {
                        return ::pwrite(fd, buf + done, want,
                                        off + static_cast<off_t>(done));
                      });
}

Status FaultPReadFull(const char* point, int fd, char* buf, size_t n,
                      off_t off) {
  return FullTransfer(point, "pread", n, /*eof_ok=*/false, nullptr,
                      [&](size_t done, size_t want) {
                        return ::pread(fd, buf + done, want,
                                       off + static_cast<off_t>(done));
                      });
}

Status FaultPReadUpTo(const char* point, int fd, char* buf, size_t n,
                      off_t off, size_t* read_out) {
  return FullTransfer(point, "pread", n, /*eof_ok=*/true, read_out,
                      [&](size_t done, size_t want) {
                        return ::pread(fd, buf + done, want,
                                       off + static_cast<off_t>(done));
                      });
}

Status FaultFsync(const char* point, int fd) {
  return SimpleGuarded(point, "fsync", [&]() { return ::fsync(fd); });
}

Status FaultFtruncate(const char* point, int fd, off_t length) {
  return SimpleGuarded(point, "ftruncate",
                       [&]() { return ::ftruncate(fd, length); });
}

Status FaultSyncParentDir(const char* point,
                          const std::string& file_path) {
  std::filesystem::path parent =
      std::filesystem::path(file_path).parent_path();
  if (parent.empty()) parent = ".";
  std::string dir = parent.string();
  int dirfd = -1;
  CORAL_RETURN_IF_ERROR(
      FaultOpen(point, dir, O_RDONLY | O_DIRECTORY, 0, &dirfd));
  Status st = FaultFsync(point, dirfd);
  ::close(dirfd);
  if (st.ok()) {
    obs::StorageMetrics::Instance().dir_fsyncs.fetch_add(
        1, std::memory_order_relaxed);
  }
  return st;
}

}  // namespace coral
