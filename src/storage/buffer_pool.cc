#include "src/storage/buffer_pool.h"

#include <algorithm>

#include "src/util/logging.h"

namespace coral {

PageGuard::PageGuard(BufferPool* pool, PageId id, char* data, bool* dirty)
    : pool_(pool), id_(id), data_(data), dirty_(dirty) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& o) noexcept
    : pool_(o.pool_), id_(o.id_), data_(o.data_), dirty_(o.dirty_) {
  o.pool_ = nullptr;
  o.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    id_ = o.id_;
    data_ = o.data_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

void PageGuard::MarkDirty() {
  CORAL_DCHECK(data_ != nullptr);
  if (!*dirty_) {
    pool_->OnFirstModify(id_, data_);
    *dirty_ = true;
  }
}

void PageGuard::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  data_ = nullptr;
}

BufferPool::BufferPool(DiskManager* disk, size_t frames) : disk_(disk) {
  CORAL_CHECK_GT(frames, 0u);
  frames_.resize(frames);
  for (size_t i = 0; i < frames; ++i) {
    frames_[i].data = std::make_unique<char[]>(kPageSize);
    lru_.push_back(i);
  }
}

BufferPool::~BufferPool() {
  if (!disk_->is_open()) return;  // already closed cleanly
  Status st = FlushAll();
  if (!st.ok()) {
    // Destructor cannot propagate; data loss here only affects unsynced
    // caches of an already-failing process.
    std::fprintf(stderr, "coral: buffer pool flush failed: %s\n",
                 st.ToString().c_str());
  }
}

void BufferPool::Touch(size_t frame_idx) {
  lru_.remove(frame_idx);
  lru_.push_front(frame_idx);
}

StatusOr<BufferPool::Frame*> BufferPool::GetVictim() {
  // LRU unpinned frame, scanning from the back (least recent).
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    Frame& f = frames_[*it];
    if (f.pins > 0) continue;
    if (f.page != kInvalidPageId) {
      if (f.dirty) {
        CORAL_RETURN_IF_ERROR(disk_->WritePage(f.page, f.data.get()));
        f.dirty = false;
      }
      table_.erase(f.page);
      ++evictions_;
      f.page = kInvalidPageId;
    }
    return &f;
  }
  return Status::FailedPrecondition(
      "buffer pool exhausted: all frames pinned");
}

StatusOr<PageGuard> BufferPool::Fetch(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++hits_;
    Frame& f = frames_[it->second];
    ++f.pins;
    Touch(it->second);
    return PageGuard(this, id, f.data.get(), &f.dirty);
  }
  ++misses_;
  CORAL_ASSIGN_OR_RETURN(Frame * f, GetVictim());
  CORAL_RETURN_IF_ERROR(disk_->ReadPage(id, f->data.get()));
  f->page = id;
  f->pins = 1;
  f->dirty = false;
  size_t idx = static_cast<size_t>(f - frames_.data());
  table_[id] = idx;
  Touch(idx);
  return PageGuard(this, id, f->data.get(), &f->dirty);
}

StatusOr<PageGuard> BufferPool::New() {
  CORAL_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  CORAL_ASSIGN_OR_RETURN(Frame * f, GetVictim());
  std::memset(f->data.get(), 0, kPageSize);
  f->page = id;
  f->pins = 1;
  // The new page's before-image is all zeroes (its on-disk state).
  OnFirstModify(id, f->data.get());
  f->dirty = true;
  size_t idx = static_cast<size_t>(f - frames_.data());
  table_[id] = idx;
  Touch(idx);
  return PageGuard(this, id, f->data.get(), &f->dirty);
}

void BufferPool::Invalidate(PageId id) {
  auto it = table_.find(id);
  if (it == table_.end()) return;
  Frame& f = frames_[it->second];
  CORAL_CHECK_EQ(f.pins, 0) << "invalidating a pinned page";
  f.page = kInvalidPageId;
  f.dirty = false;
  table_.erase(it);
}

void BufferPool::Unpin(PageId id) {
  auto it = table_.find(id);
  CORAL_CHECK(it != table_.end()) << "unpin of unknown page " << id;
  Frame& f = frames_[it->second];
  CORAL_CHECK_GT(f.pins, 0);
  --f.pins;
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.page != kInvalidPageId && f.dirty) {
      CORAL_RETURN_IF_ERROR(disk_->WritePage(f.page, f.data.get()));
      f.dirty = false;
    }
  }
  return disk_->Sync();
}

}  // namespace coral
