// Copyright (c) 1993-style CORAL reproduction authors.
// The "server" side of the EXODUS-substitute storage manager: a
// file-backed page store. CORAL's client buffer pool issues page-level
// read/write requests here — the paper's §2 "a request is forwarded to
// the EXODUS server and the page with the requested tuple is retrieved",
// simulated in-process (DESIGN.md §4).

#ifndef CORAL_STORAGE_DISK_MANAGER_H_
#define CORAL_STORAGE_DISK_MANAGER_H_

#include <string>

#include "src/storage/page.h"
#include "src/util/status.h"

namespace coral {

class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if needed) the database file.
  Status Open(const std::string& path);
  Status Close();
  bool is_open() const { return fd_ >= 0; }

  /// Appends a zeroed page; returns its id.
  StatusOr<PageId> AllocatePage();

  Status ReadPage(PageId id, char* buf);
  Status WritePage(PageId id, const char* buf);
  /// WritePage under the `wal.recover.pwrite` failpoint: crash recovery's
  /// before-image restores are separately fault-injectable from ordinary
  /// page writes (tests/crash_recovery_test.cc crashes recovery itself).
  Status RestorePage(PageId id, const char* buf);
  Status Sync();

  uint32_t num_pages() const { return num_pages_; }

  // I/O counters for the benchmark harness (experiment C9).
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  Status WritePageImpl(const char* point, PageId id, const char* buf);

  int fd_ = -1;
  std::string path_;
  uint32_t num_pages_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace coral

#endif  // CORAL_STORAGE_DISK_MANAGER_H_
