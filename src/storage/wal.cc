#include "src/storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string_view>

#include "src/obs/storage_metrics.h"
#include "src/storage/fault.h"
#include "src/util/crc32.h"
#include "src/util/logging.h"

namespace coral {

namespace {

constexpr uint32_t kBegin = 1;
constexpr uint32_t kPageImage = 2;
constexpr uint32_t kCommit = 3;
constexpr uint32_t kAbort = 4;

// v1 record framing: 32-byte header, explicitly serialized.
constexpr char kMagic[4] = {'C', 'W', 'A', 'L'};
constexpr size_t kHeaderSize = 32;
constexpr size_t kHeaderCrcOffset = 28;  // header_crc covers bytes [0, 28)

// The pre-v1 format dumped this struct (with its padding) straight to
// disk; Recover still reads such logs. The layout is frozen here so a
// compiler change cannot silently break compatibility.
struct LegacyRecordHeader {
  uint32_t type;
  TxnId txn;
  PageId page;
};
static_assert(sizeof(LegacyRecordHeader) == 24,
              "legacy WAL header layout must stay 24 bytes");

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}
uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool KnownType(uint32_t type) {
  return type == kBegin || type == kPageImage || type == kCommit ||
         type == kAbort;
}

/// Builds one serialized record (header + optional page image).
std::string EncodeRecord(uint32_t type, TxnId txn, PageId page,
                         const char* image) {
  uint32_t payload_len = type == kPageImage ? kPageSize : 0;
  std::string rec;
  rec.reserve(kHeaderSize + payload_len);
  rec.append(kMagic, 4);
  AppendU32(&rec, type);
  AppendU64(&rec, txn);
  AppendU32(&rec, page);
  AppendU32(&rec, payload_len);
  AppendU32(&rec, payload_len != 0 ? Crc32(image, payload_len) : 0);
  AppendU32(&rec, Crc32(rec.data(), kHeaderCrcOffset));
  if (payload_len != 0) rec.append(image, payload_len);
  return rec;
}

/// Parses the well-formed prefix of a log image. Never throws away good
/// records: parsing stops at the first torn or corrupt byte and reports
/// why in `tail_error`.
WalInspection ParseBuffer(std::string_view buf) {
  WalInspection out;
  out.file_bytes = buf.size();
  if (buf.empty()) return out;

  if (buf.size() < 4 || std::memcmp(buf.data(), kMagic, 4) != 0) {
    // No v1 magic: a legacy (struct-dump) log, or garbage.
    out.old_format = true;
    uint64_t off = 0;
    while (off + sizeof(LegacyRecordHeader) <= buf.size()) {
      LegacyRecordHeader h;
      std::memcpy(&h, buf.data() + off, sizeof(h));
      if (!KnownType(h.type)) {
        out.tail_error = "legacy record with unknown type";
        break;
      }
      uint64_t size = sizeof(LegacyRecordHeader) +
                      (h.type == kPageImage ? kPageSize : 0);
      if (off + size > buf.size()) {
        out.tail_error = "torn legacy record";
        break;
      }
      out.records.push_back(WalRecordInfo{h.type, h.txn, h.page, off, size});
      off += size;
    }
    if (out.tail_error.empty() && off < buf.size()) {
      out.tail_error = "torn legacy header";
    }
    out.valid_bytes = off;
    return out;
  }

  uint64_t off = 0;
  while (off < buf.size()) {
    if (off + kHeaderSize > buf.size()) {
      out.tail_error = "torn header";
      break;
    }
    const char* h = buf.data() + off;
    if (std::memcmp(h, kMagic, 4) != 0) {
      out.tail_error = "bad record magic";
      break;
    }
    if (LoadU32(h + kHeaderCrcOffset) != Crc32(h, kHeaderCrcOffset)) {
      out.tail_error = "header crc mismatch";
      break;
    }
    uint32_t type = LoadU32(h + 4);
    TxnId txn = LoadU64(h + 8);
    PageId page = LoadU32(h + 16);
    uint32_t payload_len = LoadU32(h + 20);
    uint32_t payload_crc = LoadU32(h + 24);
    // The header CRC already vouches for these; check anyway so a CRC
    // collision cannot make us read out of bounds or replay nonsense.
    if (!KnownType(type) ||
        payload_len != (type == kPageImage ? kPageSize : 0)) {
      out.tail_error = "implausible record header";
      break;
    }
    if (off + kHeaderSize + payload_len > buf.size()) {
      out.tail_error = "torn payload";
      break;
    }
    if (payload_len != 0 &&
        Crc32(h + kHeaderSize, payload_len) != payload_crc) {
      out.tail_error = "payload crc mismatch";
      break;
    }
    out.records.push_back(
        WalRecordInfo{type, txn, page, off, kHeaderSize + payload_len});
    off += kHeaderSize + payload_len;
  }
  out.valid_bytes = off;
  return out;
}

struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

/// Reads a whole log file. Only `point`-guarded for the recovery path.
Status ReadWholeFile(const char* point, int fd, std::string* out) {
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IOError("fstat wal: " + std::string(std::strerror(errno)));
  }
  out->resize(static_cast<size_t>(st.st_size));
  if (out->empty()) return Status::OK();
  size_t got = 0;
  CORAL_RETURN_IF_ERROR(
      FaultPReadUpTo(point, fd, out->data(), out->size(), 0, &got));
  out->resize(got);  // racing truncation only ever shrinks the file
  return Status::OK();
}

}  // namespace

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::Open(const std::string& path) {
  std::error_code ec;
  bool existed = std::filesystem::exists(path, ec);
  CORAL_RETURN_IF_ERROR(
      FaultOpen(fp::kWalOpen, path, O_RDWR | O_CREAT | O_APPEND, 0644, &fd_));
  if (!existed) {
    // A crash right after creation must not lose the log's directory
    // entry: "no log, nothing to recover" would then hide a real one.
    Status st = FaultSyncParentDir(fp::kWalDirSync, path);
    if (!st.ok()) {
      ::close(fd_);
      fd_ = -1;
      return st;
    }
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status err =
        Status::IOError("fstat wal: " + std::string(std::strerror(errno)));
    ::close(fd_);
    fd_ = -1;
    return err;
  }
  append_offset_ = static_cast<uint64_t>(st.st_size);
  path_ = path;
  return Status::OK();
}

Status WriteAheadLog::AppendRecord(uint32_t type, TxnId txn, PageId page,
                                   const char* image) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal not open");
  }
  if (poisoned_) {
    return Status::IOError(
        "wal tail may be torn after an unrecoverable append failure; "
        "refusing further appends (reopen to recover)");
  }
  std::string rec = EncodeRecord(type, txn, page, image);
  uint64_t start = append_offset_;
  Status st = FaultWriteFull(fp::kWalAppendWrite, fd_, rec.data(),
                             rec.size());
  auto& metrics = obs::StorageMetrics::Instance();
  if (st.ok()) {
    append_offset_ += rec.size();
    metrics.wal_records_appended.fetch_add(1, std::memory_order_relaxed);
    metrics.wal_bytes_appended.fetch_add(rec.size(),
                                         std::memory_order_relaxed);
    return st;
  }
  // The write may have landed partially: truncate back to the last record
  // boundary so the log is never left misaligned.
  Status trunc = FaultFtruncate(fp::kWalAppendTruncate, fd_,
                                static_cast<off_t>(start));
  if (trunc.ok()) {
    metrics.wal_append_truncations.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Cannot roll back (e.g. crashed mid-append): the tail may be torn.
    // Recovery handles torn tails; this handle refuses further appends.
    poisoned_ = true;
    metrics.RecordEvent("wal.poisoned", trunc.ToString());
  }
  return st;
}

StatusOr<TxnId> WriteAheadLog::Begin() {
  if (active_txn_ != 0) {
    return Status::FailedPrecondition(
        "a transaction is already active (single-user client)");
  }
  TxnId txn = next_txn_++;
  logged_pages_.clear();
  undo_.clear();
  Status st = AppendRecord(kBegin, txn, 0, nullptr);
  if (!st.ok()) return st;  // no transaction started
  active_txn_ = txn;
  return txn;
}

Status WriteAheadLog::LogBeforeImage(PageId page, const char* before) {
  if (active_txn_ == 0) return Status::OK();
  if (!logged_pages_.insert(page).second) return Status::OK();
  // The in-memory undo entry is kept even if logging fails below: Abort
  // must be able to restore the page whether or not the record is durable.
  undo_.emplace_back(page, std::vector<char>(before, before + kPageSize));
  CORAL_RETURN_IF_ERROR(AppendRecord(kPageImage, active_txn_, page, before));
  // Flush the image before the dirty page can ever reach disk (WAL rule).
  return FaultFsync(fp::kWalImageSync, fd_);
}

Status WriteAheadLog::Commit(const std::function<Status()>& flush_pages) {
  if (active_txn_ == 0) {
    return Status::FailedPrecondition("no active transaction");
  }
  // Force policy: all data pages durable before the commit record, so no
  // redo log is needed.
  CORAL_RETURN_IF_ERROR(flush_pages());
  CORAL_RETURN_IF_ERROR(AppendRecord(kCommit, active_txn_, 0, nullptr));
  CORAL_RETURN_IF_ERROR(FaultFsync(fp::kWalCommitSync, fd_));
  active_txn_ = 0;
  logged_pages_.clear();
  undo_.clear();
  return Status::OK();
}

Status WriteAheadLog::Abort(DiskManager* disk,
                            const std::function<void(PageId)>& invalidate) {
  if (active_txn_ == 0) {
    return Status::FailedPrecondition("no active transaction");
  }
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    CORAL_RETURN_IF_ERROR(disk->WritePage(it->first, it->second.data()));
    invalidate(it->first);
  }
  CORAL_RETURN_IF_ERROR(disk->Sync());
  // Mark the transaction resolved in the log. Without this, a later
  // Recover would re-apply these before-images — clobbering any pages a
  // subsequently COMMITTED transaction also touched. On failure the
  // transaction stays active (the undo set is intact, so Abort can be
  // retried; restoring the same images twice is harmless).
  CORAL_RETURN_IF_ERROR(AppendRecord(kAbort, active_txn_, 0, nullptr));
  CORAL_RETURN_IF_ERROR(FaultFsync(fp::kWalCommitSync, fd_));
  active_txn_ = 0;
  logged_pages_.clear();
  undo_.clear();
  return Status::OK();
}

StatusOr<WalInspection> WriteAheadLog::Inspect(
    const std::string& log_path) {
  // Diagnostics stay un-injected: the inspector must work while a fault
  // harness has persistence frozen.
  int fd = ::open(log_path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open wal " + log_path + ": " +
                           std::strerror(errno));
  }
  FdCloser closer{fd};
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IOError("fstat wal: " + std::string(std::strerror(errno)));
  }
  std::string buf(static_cast<size_t>(st.st_size), '\0');
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::pread(fd, buf.data() + off, buf.size() - off, off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read wal: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    off += static_cast<size_t>(n);
  }
  buf.resize(off);
  return ParseBuffer(buf);
}

Status WriteAheadLog::Recover(const std::string& log_path,
                              DiskManager* disk) {
  std::error_code ec;
  if (!std::filesystem::exists(log_path, ec)) {
    return Status::OK();  // genuinely no log: nothing to recover
  }
  auto& metrics = obs::StorageMetrics::Instance();
  int fd = -1;
  // An existing log we cannot open is an ERROR, not "nothing to recover":
  // the caller degrades to read-only rather than trusting dirty pages.
  CORAL_RETURN_IF_ERROR(
      FaultOpen(fp::kWalRecoverOpen, log_path, O_RDWR, 0, &fd));
  FdCloser closer{fd};
  metrics.recoveries_run.fetch_add(1, std::memory_order_relaxed);
  metrics.RecordEvent("recover.start", log_path);

  std::string buf;
  CORAL_RETURN_IF_ERROR(ReadWholeFile(fp::kWalRecoverRead, fd, &buf));
  WalInspection ins = ParseBuffer(buf);
  if (ins.old_format) {
    metrics.old_format_logs_read.fetch_add(1, std::memory_order_relaxed);
    metrics.RecordEvent("recover.old_format", log_path);
  }
  if (!ins.tail_error.empty() || ins.valid_bytes < ins.file_bytes) {
    uint64_t dropped = ins.file_bytes - ins.valid_bytes;
    if (ins.tail_error.find("crc") != std::string::npos) {
      metrics.corrupt_records_dropped.fetch_add(1,
                                                std::memory_order_relaxed);
    } else {
      metrics.torn_tails_truncated.fetch_add(1, std::memory_order_relaxed);
    }
    metrics.RecordEvent("recover.torn_tail", ins.tail_error, dropped);
  }

  // A transaction is resolved by a commit record OR an abort record: an
  // in-process Abort already restored its pages, so re-undoing it here
  // would clobber pages that later committed transactions also touched.
  std::unordered_set<TxnId> resolved;
  // (txn, page) -> earliest before-image (emplace keeps the first).
  std::unordered_map<TxnId,
                     std::unordered_map<PageId, const char*>>
      images;
  for (const WalRecordInfo& rec : ins.records) {
    if (rec.type == kPageImage) {
      const char* payload =
          buf.data() + rec.offset + (rec.size - kPageSize);
      images[rec.txn].emplace(rec.page, payload);
    } else if (rec.type == kCommit || rec.type == kAbort) {
      resolved.insert(rec.txn);
    }
  }

  uint64_t restored = 0;
  uint64_t undone = 0;
  for (const auto& [txn, pages] : images) {
    if (resolved.count(txn) != 0) continue;
    ++undone;
    for (const auto& [page, img] : pages) {
      if (page < disk->num_pages()) {
        CORAL_RETURN_IF_ERROR(disk->RestorePage(page, img));
        ++restored;
      }
    }
  }
  if (restored != 0) {
    CORAL_RETURN_IF_ERROR(disk->Sync());
  }
  metrics.recovered_pages_restored.fetch_add(restored,
                                             std::memory_order_relaxed);
  metrics.recovered_txns_undone.fetch_add(undone,
                                          std::memory_order_relaxed);

  // Everything is resolved: empty the log so old records can never be
  // replayed twice, and make the truncation durable.
  CORAL_RETURN_IF_ERROR(FaultFtruncate(fp::kWalRecoverTruncate, fd, 0));
  CORAL_RETURN_IF_ERROR(FaultFsync(fp::kWalRecoverTruncate, fd));
  metrics.RecordEvent("recover.done",
                      std::to_string(undone) + " txn(s) undone", restored);
  return Status::OK();
}

}  // namespace coral
