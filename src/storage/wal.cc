#include "src/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <functional>

#include "src/util/logging.h"

namespace coral {

namespace {

constexpr uint32_t kBegin = 1;
constexpr uint32_t kPageImage = 2;
constexpr uint32_t kCommit = 3;

struct RecordHeader {
  uint32_t type;
  TxnId txn;
  PageId page;  // kPageImage only
};

}  // namespace

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::Open(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IOError("open wal " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

Status WriteAheadLog::AppendRecord(uint32_t type, TxnId txn, PageId page,
                                   const char* image) {
  RecordHeader h{type, txn, page};
  if (::write(fd_, &h, sizeof(h)) != static_cast<ssize_t>(sizeof(h))) {
    return Status::IOError("wal write: " + std::string(std::strerror(errno)));
  }
  if (type == kPageImage) {
    if (::write(fd_, image, kPageSize) !=
        static_cast<ssize_t>(kPageSize)) {
      return Status::IOError("wal write image: " +
                             std::string(std::strerror(errno)));
    }
  }
  return Status::OK();
}

StatusOr<TxnId> WriteAheadLog::Begin() {
  if (active_txn_ != 0) {
    return Status::FailedPrecondition(
        "a transaction is already active (single-user client)");
  }
  active_txn_ = next_txn_++;
  logged_pages_.clear();
  undo_.clear();
  CORAL_RETURN_IF_ERROR(AppendRecord(kBegin, active_txn_, 0, nullptr));
  return active_txn_;
}

Status WriteAheadLog::LogBeforeImage(PageId page, const char* before) {
  if (active_txn_ == 0) return Status::OK();
  if (!logged_pages_.insert(page).second) return Status::OK();
  CORAL_RETURN_IF_ERROR(AppendRecord(kPageImage, active_txn_, page, before));
  // Flush the image before the dirty page can ever reach disk (WAL rule).
  if (::fsync(fd_) != 0) {
    return Status::IOError("wal fsync: " +
                           std::string(std::strerror(errno)));
  }
  undo_.emplace_back(page, std::vector<char>(before, before + kPageSize));
  return Status::OK();
}

Status WriteAheadLog::Commit(const std::function<Status()>& flush_pages) {
  if (active_txn_ == 0) {
    return Status::FailedPrecondition("no active transaction");
  }
  // Force policy: all data pages durable before the commit record, so no
  // redo log is needed.
  CORAL_RETURN_IF_ERROR(flush_pages());
  CORAL_RETURN_IF_ERROR(AppendRecord(kCommit, active_txn_, 0, nullptr));
  if (::fsync(fd_) != 0) {
    return Status::IOError("wal fsync: " +
                           std::string(std::strerror(errno)));
  }
  active_txn_ = 0;
  logged_pages_.clear();
  undo_.clear();
  return Status::OK();
}

Status WriteAheadLog::Abort(DiskManager* disk,
                            const std::function<void(PageId)>& invalidate) {
  if (active_txn_ == 0) {
    return Status::FailedPrecondition("no active transaction");
  }
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    CORAL_RETURN_IF_ERROR(disk->WritePage(it->first, it->second.data()));
    invalidate(it->first);
  }
  CORAL_RETURN_IF_ERROR(disk->Sync());
  active_txn_ = 0;
  logged_pages_.clear();
  undo_.clear();
  return Status::OK();
}

Status WriteAheadLog::Recover(const std::string& log_path,
                              DiskManager* disk) {
  int fd = ::open(log_path.c_str(), O_RDONLY);
  if (fd < 0) return Status::OK();  // no log: nothing to recover

  std::unordered_set<TxnId> committed;
  // (txn, page) -> earliest before-image.
  std::unordered_map<TxnId,
                     std::unordered_map<PageId, std::vector<char>>>
      images;
  while (true) {
    RecordHeader h;
    ssize_t n = ::read(fd, &h, sizeof(h));
    if (n == 0) break;
    if (n != static_cast<ssize_t>(sizeof(h))) break;  // torn tail: stop
    if (h.type == kPageImage) {
      std::vector<char> img(kPageSize);
      if (::read(fd, img.data(), kPageSize) !=
          static_cast<ssize_t>(kPageSize)) {
        break;  // torn image: the page write never happened either
      }
      auto& per_txn = images[h.txn];
      per_txn.emplace(h.page, std::move(img));  // keep the earliest
    } else if (h.type == kCommit) {
      committed.insert(h.txn);
    }
  }
  ::close(fd);

  for (const auto& [txn, pages] : images) {
    if (committed.count(txn)) continue;
    for (const auto& [page, img] : pages) {
      if (page < disk->num_pages()) {
        CORAL_RETURN_IF_ERROR(disk->WritePage(page, img.data()));
      }
    }
  }
  CORAL_RETURN_IF_ERROR(disk->Sync());
  // Truncate the log: everything is resolved.
  fd = ::open(log_path.c_str(), O_WRONLY | O_TRUNC);
  if (fd >= 0) ::close(fd);
  return Status::OK();
}

}  // namespace coral
