// Copyright (c) 1993-style CORAL reproduction authors.
// Heap files: chains of slotted pages holding a persistent relation's
// records. Scans pull pages through the client buffer pool on demand —
// "a 'get-next-tuple' request on a persistent relation results in a
// page-level I/O request by the buffer manager" (paper §2).

#ifndef CORAL_STORAGE_HEAP_FILE_H_
#define CORAL_STORAGE_HEAP_FILE_H_

#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/storage/page.h"

namespace coral {

class HeapFile {
 public:
  /// Opens an existing heap file rooted at `first` (chases the chain to
  /// find the append page).
  static StatusOr<HeapFile> Open(BufferPool* pool, PageId first);
  /// Creates a fresh heap file; returns it with its root page id set.
  static StatusOr<HeapFile> Create(BufferPool* pool);

  PageId first_page() const { return first_; }

  /// Appends a record (must fit a page). Returns its rid.
  StatusOr<Rid> Append(std::span<const char> record);

  /// Tombstones a record. Returns false if absent/already deleted.
  StatusOr<bool> Delete(Rid rid);

  /// Copies the record out; empty when deleted.
  StatusOr<std::vector<char>> Read(Rid rid) const;

  /// Forward scan over live records. Keeps one page pinned at a time.
  class Iterator {
   public:
    Iterator(BufferPool* pool, PageId first) : pool_(pool), page_id_(first) {}
    /// Advances; false at end. On true, *record points into the pinned
    /// page and is valid until the next call.
    bool Next(std::span<const char>* record, Rid* rid);
    const Status& status() const { return status_; }

   private:
    BufferPool* pool_;
    PageId page_id_;
    uint16_t slot_ = 0;
    PageGuard guard_;
    bool loaded_ = false;
    Status status_;
  };

  Iterator Scan() const { return Iterator(pool_, first_); }

 private:
  HeapFile(BufferPool* pool, PageId first, PageId last)
      : pool_(pool), first_(first), last_(last) {}

  BufferPool* pool_;
  PageId first_;
  PageId last_;  // cached append target
};

}  // namespace coral

#endif  // CORAL_STORAGE_HEAP_FILE_H_
