#include "src/storage/btree.h"

#include <algorithm>
#include <cstring>

#include "src/util/logging.h"

namespace coral {

namespace {

// Entry layout in node data area: [uint16 key_len][key bytes][uint64 val].
size_t EntrySize(size_t key_len) { return 2 + key_len + 8; }

}  // namespace

void BTreeNode::Init(uint32_t type) {
  std::memset(frame_, 0, kPageSize);
  Header* h = header();
  h->page_type = type;
  h->count = 0;
  h->free_end = kPageSize;
  h->next = kInvalidPageId;
  h->leftmost = kInvalidPageId;
}

std::string_view BTreeNode::KeyAt(uint16_t i) const {
  CORAL_DCHECK(i < count());
  const char* e = frame_ + dir()[i];
  uint16_t len;
  std::memcpy(&len, e, 2);
  return std::string_view(e + 2, len);
}

uint64_t BTreeNode::ValueAt(uint16_t i) const {
  CORAL_DCHECK(i < count());
  const char* e = frame_ + dir()[i];
  uint16_t len;
  std::memcpy(&len, e, 2);
  uint64_t v;
  std::memcpy(&v, e + 2 + len, 8);
  return v;
}

uint16_t BTreeNode::LowerBound(std::string_view key) const {
  uint16_t lo = 0, hi = count();
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (KeyAt(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t BTreeNode::UpperBound(std::string_view key) const {
  uint16_t lo = 0, hi = count();
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (KeyAt(mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool BTreeNode::HasRoomFor(size_t key_len) const {
  size_t dir_end = sizeof(Header) + 2 * (count() + 1);
  return dir_end + EntrySize(key_len) <= header()->free_end;
}

bool BTreeNode::InsertAt(uint16_t pos, std::string_view key,
                         uint64_t value) {
  if (!HasRoomFor(key.size())) return false;
  Header* h = header();
  size_t esize = EntrySize(key.size());
  h->free_end = static_cast<uint16_t>(h->free_end - esize);
  char* e = frame_ + h->free_end;
  uint16_t len = static_cast<uint16_t>(key.size());
  std::memcpy(e, &len, 2);
  std::memcpy(e + 2, key.data(), key.size());
  std::memcpy(e + 2 + key.size(), &value, 8);
  uint16_t* d = dir();
  std::memmove(d + pos + 1, d + pos, 2 * (h->count - pos));
  d[pos] = h->free_end;
  ++h->count;
  return true;
}

void BTreeNode::RemoveAt(uint16_t pos) {
  Header* h = header();
  CORAL_DCHECK(pos < h->count);
  uint16_t* d = dir();
  std::memmove(d + pos, d + pos + 1, 2 * (h->count - pos - 1));
  --h->count;
  // Dead entry bytes are reclaimed by Compact() when the node fills up.
}

void BTreeNode::Compact() {
  std::vector<std::pair<std::string, uint64_t>> entries;
  entries.reserve(count());
  for (uint16_t i = 0; i < count(); ++i) {
    entries.emplace_back(std::string(KeyAt(i)), ValueAt(i));
  }
  Header saved = *header();
  Init(saved.page_type);
  header()->next = saved.next;
  header()->leftmost = saved.leftmost;
  for (uint16_t i = 0; i < entries.size(); ++i) {
    CORAL_CHECK(InsertAt(i, entries[i].first, entries[i].second));
  }
}

StatusOr<BTree> BTree::Create(BufferPool* pool) {
  CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool->New());
  guard.MarkDirty();
  BTreeNode node(guard.data());
  node.Init(SlottedPage::kBTreeLeaf);
  return BTree(pool, guard.id());
}

StatusOr<PageId> BTree::DescendToLeaf(std::string_view key) const {
  PageId page = root_;
  while (true) {
    CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    BTreeNode node(guard.data());
    if (node.is_leaf()) return page;
    // Entries are (separator, child); keys below the first separator live
    // under `leftmost`. Duplicates equal to a separator may span BOTH
    // sides of it (a leaf split can cut a duplicate run), so descend to
    // the LEFTMOST candidate — the child before the first separator >=
    // key — and let callers walk rightward along the leaf chain.
    uint16_t pos = node.LowerBound(key);
    page = pos == 0 ? node.header()->leftmost
                    : static_cast<PageId>(node.ValueAt(pos - 1));
  }
}

Status BTree::SplitNode(BTreeNode* node, PageGuard* guard,
                        SplitInfo* split) {
  CORAL_ASSIGN_OR_RETURN(PageGuard right_guard, pool_->New());
  right_guard.MarkDirty();
  BTreeNode right(right_guard.data());
  right.Init(node->header()->page_type);
  uint16_t n = node->count();
  uint16_t mid = n / 2;
  CORAL_CHECK_GT(mid, 0);

  if (node->is_leaf()) {
    for (uint16_t i = mid; i < n; ++i) {
      CORAL_CHECK(right.InsertAt(static_cast<uint16_t>(i - mid),
                                 node->KeyAt(i), node->ValueAt(i)));
    }
    split->separator = std::string(node->KeyAt(mid));
    right.header()->next = node->header()->next;
    node->header()->next = right_guard.id();
  } else {
    // Internal: the separator at mid moves UP; right gets entries mid+1..
    // and its leftmost child is the promoted separator's child.
    split->separator = std::string(node->KeyAt(mid));
    right.header()->leftmost = static_cast<PageId>(node->ValueAt(mid));
    for (uint16_t i = mid + 1; i < n; ++i) {
      CORAL_CHECK(right.InsertAt(static_cast<uint16_t>(i - mid - 1),
                                 node->KeyAt(i), node->ValueAt(i)));
    }
  }
  // Shrink the left node.
  for (uint16_t i = n; i-- > mid;) node->RemoveAt(i);
  node->Compact();
  split->happened = true;
  split->right = right_guard.id();
  right_guard.MarkDirty();
  guard->MarkDirty();
  return Status::OK();
}

Status BTree::InsertRec(PageId page, std::string_view key, uint64_t value,
                        SplitInfo* split) {
  CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
  guard.MarkDirty();  // before-image precedes any modification (WAL rule)
  BTreeNode node(guard.data());

  if (node.is_leaf()) {
    uint16_t pos = node.UpperBound(key);  // duplicates stay adjacent
    if (!node.InsertAt(pos, key, value)) {
      node.Compact();
      if (!node.InsertAt(node.UpperBound(key), key, value)) {
        CORAL_RETURN_IF_ERROR(SplitNode(&node, &guard, split));
        // Retry into the correct half.
        if (key >= split->separator) {
          CORAL_ASSIGN_OR_RETURN(PageGuard rg, pool_->Fetch(split->right));
          rg.MarkDirty();
          BTreeNode right(rg.data());
          CORAL_CHECK(right.InsertAt(right.UpperBound(key), key, value));
        } else {
          CORAL_CHECK(node.InsertAt(node.UpperBound(key), key, value));
        }
      }
    }
    guard.MarkDirty();
    return Status::OK();
  }

  uint16_t pos = node.UpperBound(key);
  PageId child = pos == 0 ? node.header()->leftmost
                          : static_cast<PageId>(node.ValueAt(pos - 1));
  SplitInfo child_split;
  CORAL_RETURN_IF_ERROR(InsertRec(child, key, value, &child_split));
  if (!child_split.happened) return Status::OK();

  // Insert (separator, right child) into this node.
  uint16_t ins = node.UpperBound(child_split.separator);
  if (!node.InsertAt(ins, child_split.separator, child_split.right)) {
    node.Compact();
    ins = node.UpperBound(child_split.separator);
    if (!node.InsertAt(ins, child_split.separator, child_split.right)) {
      CORAL_RETURN_IF_ERROR(SplitNode(&node, &guard, split));
      BTreeNode* target = &node;
      PageGuard rg;
      BTreeNode rnode(nullptr);
      if (child_split.separator >= split->separator) {
        CORAL_ASSIGN_OR_RETURN(rg, pool_->Fetch(split->right));
        rg.MarkDirty();
        rnode = BTreeNode(rg.data());
        target = &rnode;
      }
      CORAL_CHECK(target->InsertAt(
          target->UpperBound(child_split.separator), child_split.separator,
          child_split.right));
    }
  }
  guard.MarkDirty();
  return Status::OK();
}

Status BTree::Insert(std::string_view key, Rid rid) {
  if (EntrySize(key.size()) > kPageSize / 4) {
    return Status::InvalidArgument("index key too large");
  }
  SplitInfo split;
  CORAL_RETURN_IF_ERROR(InsertRec(root_, key, PackRid(rid), &split));
  if (split.happened) {
    // Grow a new root.
    CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->New());
    guard.MarkDirty();
    BTreeNode new_root(guard.data());
    new_root.Init(SlottedPage::kBTreeInternal);
    new_root.header()->leftmost = root_;
    CORAL_CHECK(new_root.InsertAt(0, split.separator, split.right));
    guard.MarkDirty();
    root_ = guard.id();
  }
  return Status::OK();
}

StatusOr<bool> BTree::Delete(std::string_view key, Rid rid) {
  CORAL_ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(key));
  uint64_t packed = PackRid(rid);
  PageId page = leaf;
  while (page != kInvalidPageId) {
    CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    BTreeNode node(guard.data());
    uint16_t pos = node.LowerBound(key);
    for (; pos < node.count() && node.KeyAt(pos) == key; ++pos) {
      if (node.ValueAt(pos) == packed) {
        guard.MarkDirty();
        node.RemoveAt(pos);
        return true;
      }
    }
    if (pos < node.count()) return false;  // keys moved past `key`
    page = node.header()->next;
  }
  return false;
}

Status BTree::Lookup(std::string_view key, std::vector<Rid>* out) const {
  CORAL_ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(key));
  PageId page = leaf;
  while (page != kInvalidPageId) {
    CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    BTreeNode node(guard.data());
    uint16_t pos = node.LowerBound(key);
    bool saw_greater = false;
    for (; pos < node.count(); ++pos) {
      std::string_view k = node.KeyAt(pos);
      if (k != key) {
        saw_greater = true;
        break;
      }
      out->push_back(UnpackRid(node.ValueAt(pos)));
    }
    if (saw_greater) break;
    page = node.header()->next;
  }
  return Status::OK();
}

Status BTree::Range(std::string_view lo, std::string_view hi,
                    std::vector<std::pair<std::string, Rid>>* out) const {
  CORAL_ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(lo));
  PageId page = leaf;
  while (page != kInvalidPageId) {
    CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    BTreeNode node(guard.data());
    uint16_t pos = node.LowerBound(lo);
    bool past_hi = false;
    for (; pos < node.count(); ++pos) {
      std::string_view k = node.KeyAt(pos);
      if (k > hi) {
        past_hi = true;
        break;
      }
      out->emplace_back(std::string(k), UnpackRid(node.ValueAt(pos)));
    }
    if (past_hi) break;
    page = node.header()->next;
  }
  return Status::OK();
}

StatusOr<size_t> BTree::CountEntries() const {
  // Walk to the leftmost leaf, then the leaf chain.
  PageId page = root_;
  while (true) {
    CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    BTreeNode node(guard.data());
    if (node.is_leaf()) break;
    page = node.header()->leftmost;
  }
  size_t total = 0;
  while (page != kInvalidPageId) {
    CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    BTreeNode node(guard.data());
    total += node.count();
    page = node.header()->next;
  }
  return total;
}

}  // namespace coral
