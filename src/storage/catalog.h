// Copyright (c) 1993-style CORAL reproduction authors.
// Persistent catalog: names, arities, heap roots and index roots of all
// persistent relations, stored in the database file itself (meta page 0
// points at a catalog heap file).

#ifndef CORAL_STORAGE_CATALOG_H_
#define CORAL_STORAGE_CATALOG_H_

#include <string>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/storage/heap_file.h"

namespace coral {

struct IndexMeta {
  std::vector<uint32_t> cols;
  PageId root = kInvalidPageId;
};

struct RelationMeta {
  std::string name;
  uint32_t arity = 0;
  PageId heap_first = kInvalidPageId;
  uint64_t count = 0;
  std::vector<IndexMeta> indexes;
};

class Catalog {
 public:
  /// Loads (or bootstraps) the catalog. The database's meta page is page
  /// 0; a fresh file gets it allocated here.
  static StatusOr<Catalog> Open(BufferPool* pool);

  const std::vector<RelationMeta>& relations() const { return entries_; }
  RelationMeta* Find(const std::string& name, uint32_t arity);

  /// Adds or replaces an entry. Call Save to persist.
  void Upsert(RelationMeta meta);

  /// Rewrites the catalog heap.
  Status Save(BufferPool* pool);

 private:
  PageId catalog_heap_ = kInvalidPageId;
  std::vector<RelationMeta> entries_;
};

}  // namespace coral

#endif  // CORAL_STORAGE_CATALOG_H_
