// Copyright (c) 1993-style CORAL reproduction authors.
// Persistent relations (paper §3.2): tuples restricted to fields of
// primitive types (integers, doubles, strings, atoms, bignums — §3.1),
// stored in heap files and indexed by B-trees, paged on demand through
// the client buffer pool. Tuples are deserialized into main-memory terms
// when fetched — the copying the paper admits to ("the current
// implementation does perform some copying... an artifact of the basic
// decision to share constants instead of copying their values").

#ifndef CORAL_STORAGE_PERSISTENT_RELATION_H_
#define CORAL_STORAGE_PERSISTENT_RELATION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/data/term_factory.h"
#include "src/rel/relation.h"
#include "src/storage/btree.h"
#include "src/storage/heap_file.h"

namespace coral {

/// Serializes a primitive ground value. Returns false for values a
/// persistent relation cannot store (functor terms, sets, variables).
bool SerializeValue(const Arg* value, std::string* out);
/// Deserializes one value, advancing *pos.
StatusOr<const Arg*> DeserializeValue(std::span<const char> in, size_t* pos,
                                      TermFactory* factory);

/// Whole-tuple codec.
StatusOr<std::string> SerializeTuple(const Tuple* t);
StatusOr<const Tuple*> DeserializeTuple(std::span<const char> rec,
                                        TermFactory* factory);

class StorageManager;

class PersistentRelation : public Relation {
 public:
  /// True if the tuple is ground with primitive-typed fields only
  /// (paper §3.2's restriction).
  static bool CanStore(const Tuple* t);

  bool Contains(const Tuple* t) const override;
  size_t size() const override { return count_; }

  /// Refuses non-storable tuples (paper §3.2) and any insert while the
  /// storage manager is read-only or has a latched I/O error. Defined in
  /// the .cc (needs the full StorageManager type).
  Status ValidateInsert(const Tuple* t) const override;

  std::unique_ptr<TupleIterator> ScanRange(Mark from, Mark to) const override;
  std::unique_ptr<TupleIterator> Select(std::span<const TermRef> pattern,
                                        Mark from, Mark to) const override;
  using Relation::Select;

  /// Marks are not supported on persistent relations (they are base data,
  /// never used as semi-naive deltas): the whole extension is interval 0.
  Mark Snapshot() override { return 1; }
  Mark CurrentMark() const override { return 1; }

  /// Adds a secondary B-tree index on `cols`, backfilling existing
  /// tuples. No-op if one already exists.
  Status AddIndex(std::vector<uint32_t> cols);

  uint64_t heap_first() const { return heap_->first_page(); }

 protected:
  void DoInsert(const Tuple* t) override;
  bool DoDelete(const Tuple* t) override;

 private:
  friend class StorageManager;

  struct StoredIndex {
    std::vector<uint32_t> cols;
    std::unique_ptr<BTree> tree;
  };

  PersistentRelation(std::string name, uint32_t arity, StorageManager* sm)
      : Relation(std::move(name), arity), sm_(sm) {}

  /// Key for `idx` from a stored tuple (always succeeds: tuples ground).
  std::string KeyFor(const StoredIndex& idx, const Tuple* t) const;
  /// Key from a pattern; nullopt when some key column is not ground.
  std::optional<std::string> KeyForPattern(
      const StoredIndex& idx, std::span<const TermRef> pattern) const;
  /// The rid of a stored tuple equal to `t`, if any.
  StatusOr<Rid> FindRid(const Tuple* t) const;
  void PersistRoots();

  StorageManager* sm_;
  std::unique_ptr<HeapFile> heap_;
  std::vector<StoredIndex> indexes_;  // indexes_[0] = primary (all cols)
  size_t count_ = 0;
};

}  // namespace coral

#endif  // CORAL_STORAGE_PERSISTENT_RELATION_H_
