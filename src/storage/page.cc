#include "src/storage/page.h"

#include <vector>

#include "src/util/logging.h"

namespace coral {

void SlottedPage::Init(uint32_t page_type) {
  std::memset(frame_, 0, kPageSize);
  Header* h = header();
  h->page_type = page_type;
  h->slot_count = 0;
  h->free_end = kPageSize;
  h->next_page = kInvalidPageId;
  h->aux = 0;
}

size_t SlottedPage::FreeSpace() const {
  size_t slots_end =
      sizeof(Header) + sizeof(SlotEntry) * header()->slot_count;
  CORAL_DCHECK(header()->free_end >= slots_end);
  return header()->free_end - slots_end;
}

bool SlottedPage::HasRoomFor(size_t size) const {
  return FreeSpace() >= size + sizeof(SlotEntry);
}

int SlottedPage::Insert(std::span<const char> record) {
  if (!HasRoomFor(record.size())) return -1;
  Header* h = header();
  uint16_t slot = h->slot_count++;
  h->free_end = static_cast<uint16_t>(h->free_end - record.size());
  SlotEntry* e = slot_entry(slot);
  e->offset = h->free_end;
  e->length = static_cast<uint16_t>(record.size());
  std::memcpy(frame_ + e->offset, record.data(), record.size());
  return slot;
}

bool SlottedPage::Delete(uint16_t slot) {
  if (slot >= header()->slot_count) return false;
  SlotEntry* e = slot_entry(slot);
  if (e->offset == 0) return false;
  e->offset = 0;
  e->length = 0;
  return true;
}

std::span<const char> SlottedPage::Get(uint16_t slot) const {
  if (slot >= header()->slot_count) return {};
  const SlotEntry* e = slot_entry(slot);
  if (e->offset == 0) return {};
  return {frame_ + e->offset, e->length};
}

void SlottedPage::Compact() {
  std::vector<std::vector<char>> live;
  uint16_t n = header()->slot_count;
  live.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    std::span<const char> r = Get(i);
    if (!r.empty()) live.emplace_back(r.begin(), r.end());
  }
  uint32_t type = header()->page_type;
  PageId next = header()->next_page;
  uint32_t aux = header()->aux;
  Init(type);
  header()->next_page = next;
  header()->aux = aux;
  for (const auto& r : live) {
    int slot = Insert(std::span<const char>(r.data(), r.size()));
    CORAL_CHECK(slot >= 0);
  }
}

}  // namespace coral
