#include "src/storage/catalog.h"

#include <cstring>

#include "src/util/logging.h"

namespace coral {

namespace {

constexpr uint64_t kMagic = 0x434f52414c444231ull;  // "CORALDB1"

struct MetaPage {
  uint64_t magic;
  PageId catalog_heap;
};

// --- record (de)serialization -----------------------------------------

void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), 2);
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

template <typename T>
bool GetRaw(std::span<const char> in, size_t* pos, T* out) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(out, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

std::string SerializeMeta(const RelationMeta& m) {
  std::string out;
  PutU16(&out, static_cast<uint16_t>(m.name.size()));
  out += m.name;
  PutU32(&out, m.arity);
  PutU32(&out, m.heap_first);
  PutU64(&out, m.count);
  PutU16(&out, static_cast<uint16_t>(m.indexes.size()));
  for (const IndexMeta& idx : m.indexes) {
    PutU16(&out, static_cast<uint16_t>(idx.cols.size()));
    for (uint32_t c : idx.cols) PutU32(&out, c);
    PutU32(&out, idx.root);
  }
  return out;
}

StatusOr<RelationMeta> DeserializeMeta(std::span<const char> rec) {
  RelationMeta m;
  size_t pos = 0;
  uint16_t name_len;
  if (!GetRaw(rec, &pos, &name_len) || pos + name_len > rec.size()) {
    return Status::Corruption("catalog record truncated");
  }
  m.name.assign(rec.data() + pos, name_len);
  pos += name_len;
  uint16_t n_idx;
  if (!GetRaw(rec, &pos, &m.arity) || !GetRaw(rec, &pos, &m.heap_first) ||
      !GetRaw(rec, &pos, &m.count) || !GetRaw(rec, &pos, &n_idx)) {
    return Status::Corruption("catalog record truncated");
  }
  for (uint16_t i = 0; i < n_idx; ++i) {
    IndexMeta idx;
    uint16_t ncols;
    if (!GetRaw(rec, &pos, &ncols)) {
      return Status::Corruption("catalog record truncated");
    }
    for (uint16_t c = 0; c < ncols; ++c) {
      uint32_t col;
      if (!GetRaw(rec, &pos, &col)) {
        return Status::Corruption("catalog record truncated");
      }
      idx.cols.push_back(col);
    }
    if (!GetRaw(rec, &pos, &idx.root)) {
      return Status::Corruption("catalog record truncated");
    }
    m.indexes.push_back(std::move(idx));
  }
  return m;
}

}  // namespace

StatusOr<Catalog> Catalog::Open(BufferPool* pool) {
  Catalog cat;
  // Bootstrap an empty database: meta page + catalog heap.
  if (pool->frame_count() == 0) {
    return Status::InvalidArgument("buffer pool has no frames");
  }
  // A brand-new file has no pages at all; anything else must present a
  // valid meta page. (Deciding by "Fetch(0) failed" would misread an I/O
  // error on an existing database as a fresh one and clobber it.)
  bool fresh = pool->disk()->num_pages() == 0;
  if (fresh) {
    CORAL_ASSIGN_OR_RETURN(PageGuard meta_guard, pool->New());
    CORAL_CHECK_EQ(meta_guard.id(), 0u);
    meta_guard.MarkDirty();
    CORAL_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool));
    auto* meta = reinterpret_cast<MetaPage*>(meta_guard.data());
    meta->magic = kMagic;
    meta->catalog_heap = heap.first_page();
    cat.catalog_heap_ = heap.first_page();
  } else {
    CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(0));
    const auto* meta = reinterpret_cast<const MetaPage*>(guard.data());
    if (meta->magic != kMagic) {
      return Status::Corruption("not a CORAL database file");
    }
    cat.catalog_heap_ = meta->catalog_heap;
  }
  if (!fresh) {
    CORAL_ASSIGN_OR_RETURN(HeapFile heap,
                           HeapFile::Open(pool, cat.catalog_heap_));
    HeapFile::Iterator it = heap.Scan();
    std::span<const char> rec;
    Rid rid;
    while (it.Next(&rec, &rid)) {
      CORAL_ASSIGN_OR_RETURN(RelationMeta m, DeserializeMeta(rec));
      cat.entries_.push_back(std::move(m));
    }
    CORAL_RETURN_IF_ERROR(it.status());
  }
  return cat;
}

RelationMeta* Catalog::Find(const std::string& name, uint32_t arity) {
  for (RelationMeta& m : entries_) {
    if (m.name == name && m.arity == arity) return &m;
  }
  return nullptr;
}

void Catalog::Upsert(RelationMeta meta) {
  for (RelationMeta& m : entries_) {
    if (m.name == meta.name && m.arity == meta.arity) {
      m = std::move(meta);
      return;
    }
  }
  entries_.push_back(std::move(meta));
}

Status Catalog::Save(BufferPool* pool) {
  // Tombstone every existing record, then append the current entries.
  CORAL_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Open(pool, catalog_heap_));
  {
    HeapFile::Iterator it = heap.Scan();
    std::span<const char> rec;
    Rid rid;
    std::vector<Rid> old;
    while (it.Next(&rec, &rid)) old.push_back(rid);
    CORAL_RETURN_IF_ERROR(it.status());
    for (Rid r : old) {
      CORAL_RETURN_IF_ERROR(heap.Delete(r).status());
    }
  }
  for (const RelationMeta& m : entries_) {
    std::string rec = SerializeMeta(m);
    CORAL_RETURN_IF_ERROR(
        heap.Append(std::span<const char>(rec.data(), rec.size())).status());
  }
  return Status::OK();
}

}  // namespace coral
