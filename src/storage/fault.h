// Copyright (c) 1993-style CORAL reproduction authors.
// Crash-fault injection for the storage layer, styled as a failpoint
// table: every syscall site in DiskManager and WriteAheadLog is a named
// injection point that can deterministically return transient errors,
// deliver short/torn writes, or simulate a crash (freeze all further
// persistence) at the N-th hit. The paper delegates recovery to EXODUS
// (§2, §9); our substitute earns the same trust by being torture-tested:
// tests/crash_recovery_test.cc crashes at every point below and checks
// the recovery invariants.
//
// The fault-aware I/O helpers at the bottom are the ONLY syscall wrappers
// the storage layer uses. Independent of injection, they harden real I/O:
// EINTR is retried, short transfers are continued to completion, and
// EAGAIN-class transient errors get a bounded retry with backoff.

#ifndef CORAL_STORAGE_FAULT_H_
#define CORAL_STORAGE_FAULT_H_

#include <fcntl.h>
#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/util/status.h"
#include "src/util/sync.h"

namespace coral {

// Canonical failpoint names, one per syscall site. AllFaultPoints()
// returns this exact set so harnesses can iterate "every registered
// failpoint" without hardcoding strings.
namespace fp {
inline constexpr char kDiskOpen[] = "disk.open";
inline constexpr char kDiskDirSync[] = "disk.dirsync";
inline constexpr char kDiskAllocWrite[] = "disk.alloc.pwrite";
inline constexpr char kDiskWrite[] = "disk.write.pwrite";
inline constexpr char kDiskRead[] = "disk.read.pread";
inline constexpr char kDiskSync[] = "disk.fsync";
inline constexpr char kWalOpen[] = "wal.open";
inline constexpr char kWalDirSync[] = "wal.dirsync";
inline constexpr char kWalAppendWrite[] = "wal.append.write";
inline constexpr char kWalAppendTruncate[] = "wal.append.truncate";
inline constexpr char kWalImageSync[] = "wal.image.fsync";
inline constexpr char kWalCommitSync[] = "wal.commit.fsync";
inline constexpr char kWalRecoverOpen[] = "wal.recover.open";
inline constexpr char kWalRecoverRead[] = "wal.recover.read";
inline constexpr char kWalRecoverWrite[] = "wal.recover.pwrite";
inline constexpr char kWalRecoverTruncate[] = "wal.recover.truncate";
}  // namespace fp

/// Every failpoint name above, in a stable order.
std::span<const char* const> AllFaultPoints();

enum class FaultKind {
  kError,       // the syscall fails with `err`, nothing transferred
  kShortWrite,  // only `partial_bytes` transferred; NOT fatal — the
                // hardened full-I/O loop must continue and succeed
  kTornWrite,   // `partial_bytes` really transferred, then crash: the
                // classic torn write a power cut leaves behind
  kCrash,       // crash before the syscall: nothing transferred, all
                // further persistence frozen
};

struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  uint64_t trigger_hit = 1;  // fire on the N-th hit of the point (1-based)
  int err = 5 /*EIO*/;       // errno delivered by kError
  uint64_t times = 1;        // consecutive firings (kError / kShortWrite)
  size_t partial_bytes = 1;  // bytes transferred by kShortWrite/kTornWrite
};

/// Process-wide failpoint registry. All methods are thread-safe; the
/// storage layer is single-user but tests and tools may poke concurrently.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or replaces) the fault for `point`. Hit counts are NOT reset:
  /// trigger_hit is measured against the point's lifetime hit count,
  /// so arm before the workload (or Reset() first).
  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);

  /// Disarms everything, clears the crash freeze and zeroes hit counters.
  void Reset();

  /// True once a kCrash/kTornWrite fault fired (or TriggerCrash was
  /// called): every guarded I/O site now fails without reaching the
  /// kernel, simulating a dead process whose writes can no longer happen.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  void TriggerCrash();
  void ClearCrash() { crashed_.store(false, std::memory_order_release); }

  /// Lifetime hit count of one point (0 if never hit).
  uint64_t hits(const std::string& point) const;
  /// All points hit so far with their counts, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> HitCounts() const;

  /// What a guarded I/O site must do for this attempt.
  struct Decision {
    bool fail = false;         // fail with `err` before the syscall
    int err = 5 /*EIO*/;
    bool is_crash = false;     // failure is the simulated-crash freeze
    bool partial = false;      // transfer only partial_bytes for real...
    size_t partial_bytes = 0;
    bool crash_after = false;  // ...then freeze persistence (torn write)
  };
  /// Called once per syscall attempt. Counts the hit, applies the crash
  /// freeze, and consumes an armed fault when its trigger matches.
  Decision Hit(const char* point);

 private:
  FaultInjector() = default;

  struct PointState {
    uint64_t hits = 0;
    uint64_t fired = 0;
    bool armed = false;
    FaultSpec spec;
  };

  mutable Mutex mu_{kRankFaultInjector};
  std::unordered_map<std::string, PointState> points_ CORAL_GUARDED_BY(mu_);
  std::atomic<bool> crashed_{false};
};

/// True when the returned Status carries the simulated-crash marker (used
/// by harnesses to tell injected freezes from real I/O errors).
bool IsSimulatedCrash(const Status& status);

// ---- fault-aware syscall wrappers ----------------------------------------
// Each names its injection point, retries EINTR and short transfers to
// completion, and gives EAGAIN-class errors a bounded retry with backoff.

/// open(2). On success *fd_out is the descriptor.
Status FaultOpen(const char* point, const std::string& path, int flags,
                 mode_t mode, int* fd_out);

/// Appending write(2) of the whole buffer.
Status FaultWriteFull(const char* point, int fd, const char* buf, size_t n);

/// pwrite(2) of the whole buffer at `off`.
Status FaultPWriteFull(const char* point, int fd, const char* buf, size_t n,
                       off_t off);

/// pread(2) of exactly `n` bytes at `off`; hitting EOF early is an error.
Status FaultPReadFull(const char* point, int fd, char* buf, size_t n,
                      off_t off);

/// pread(2) of up to `n` bytes at `off`; *read_out gets the byte count
/// (short only at EOF).
Status FaultPReadUpTo(const char* point, int fd, char* buf, size_t n,
                      off_t off, size_t* read_out);

Status FaultFsync(const char* point, int fd);

Status FaultFtruncate(const char* point, int fd, off_t length);

/// fsync(2) of the directory containing `file_path`, making a just-created
/// file's directory entry durable (a crash right after open(O_CREAT) must
/// not lose the file).
Status FaultSyncParentDir(const char* point, const std::string& file_path);

}  // namespace coral

#endif  // CORAL_STORAGE_FAULT_H_
