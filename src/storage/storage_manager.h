// Copyright (c) 1993-style CORAL reproduction authors.
// The storage-manager facade: the EXODUS substitute assembled (paper §2,
// Fig. 1; DESIGN.md §4). Owns the "server" (disk manager) and the
// client-side buffer pool, the write-ahead log, the catalog, and all
// persistent relations. Attach it to a Database to make persistent
// relations visible to declarative programs exactly like in-memory ones.

#ifndef CORAL_STORAGE_STORAGE_MANAGER_H_
#define CORAL_STORAGE_STORAGE_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/storage/catalog.h"
#include "src/storage/persistent_relation.h"
#include "src/storage/wal.h"

namespace coral {

class Database;

struct StorageOptions {
  size_t pool_frames = 64;
};

class StorageManager {
 public:
  using Options = StorageOptions;

  /// Opens (creating if necessary) the database at `path_prefix` (.db and
  /// .wal files). Runs crash recovery first. `factory` provides the term
  /// space that fetched tuples are deserialized into.
  ///
  /// If the write-ahead log cannot be opened (or recovery cannot run),
  /// the database still opens but degrades to READ-ONLY: queries work,
  /// every mutation and transaction call fails with FailedPrecondition.
  static StatusOr<std::unique_ptr<StorageManager>> Open(
      const std::string& path_prefix, TermFactory* factory,
      Options options = Options());

  ~StorageManager();

  /// Persists the catalog and flushes everything.
  Status Close();

  /// Test support: drops the database file handle WITHOUT flushing the
  /// buffer pool or persisting the catalog — exactly what a process kill
  /// leaves behind. Whatever already reached disk stays; recovery runs on
  /// the next Open.
  void SimulateCrash() { (void)disk_.Close(); }

  // ---- relations ----
  StatusOr<PersistentRelation*> CreateRelation(const std::string& name,
                                               uint32_t arity);
  PersistentRelation* FindRelation(const std::string& name, uint32_t arity);
  /// All persistent relations (opened lazily from the catalog).
  StatusOr<std::vector<PersistentRelation*>> OpenAll();

  /// Registers every persistent relation as a base relation of `db`, so
  /// declarative rules read persistent data transparently (paper §2:
  /// "the data can be accessed purely out of pages in the buffer pool").
  Status AttachTo(Database* db);

  // ---- transactions (paper §2: supported by the storage toolkit) ----
  Status Begin();
  Status Commit();
  Status Abort();

  Status SaveCatalog();

  /// True when the WAL was unavailable at Open: mutations are refused.
  bool read_only() const { return read_only_; }

  /// First storage I/O failure recorded since the last successful Abort
  /// (OK when healthy). While set, Commit refuses: a before-image that
  /// never reached the log means undo could not be guaranteed.
  const Status& io_error() const { return io_error_; }
  /// Latches `st` (first error wins). Called by the WAL hook and the
  /// persistent-relation mutation paths instead of aborting the process.
  void RecordIoError(const Status& st);

  TermFactory* factory() { return factory_; }
  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return &disk_; }
  Catalog* catalog() { return &catalog_; }

 private:
  StorageManager(TermFactory* factory) : factory_(factory) {}

  StatusOr<PersistentRelation*> OpenFromMeta(const RelationMeta& meta);

  TermFactory* factory_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  WriteAheadLog wal_;
  Catalog catalog_;
  std::vector<std::unique_ptr<PersistentRelation>> relations_;
  bool fully_open_ = false;  // Open() completed; safe to auto-Close
  bool read_only_ = false;
  Status io_error_;
};

}  // namespace coral

#endif  // CORAL_STORAGE_STORAGE_MANAGER_H_
