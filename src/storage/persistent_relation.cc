#include "src/storage/persistent_relation.h"

#include <cstring>

#include "src/data/unify.h"
#include "src/storage/storage_manager.h"
#include "src/util/logging.h"

namespace coral {

namespace {

constexpr char kTagInt = 'I';
constexpr char kTagDouble = 'D';
constexpr char kTagString = 'S';
constexpr char kTagAtom = 'A';
constexpr char kTagBigInt = 'B';

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

}  // namespace

bool SerializeValue(const Arg* value, std::string* out) {
  switch (value->kind()) {
    case ArgKind::kInt: {
      out->push_back(kTagInt);
      int64_t v = ArgCast<IntArg>(value)->value();
      out->append(reinterpret_cast<const char*>(&v), 8);
      return true;
    }
    case ArgKind::kDouble: {
      out->push_back(kTagDouble);
      double v = ArgCast<DoubleArg>(value)->value();
      out->append(reinterpret_cast<const char*>(&v), 8);
      return true;
    }
    case ArgKind::kString: {
      out->push_back(kTagString);
      const std::string& s = ArgCast<StringArg>(value)->value();
      PutU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      return true;
    }
    case ArgKind::kBigInt: {
      out->push_back(kTagBigInt);
      std::string s = ArgCast<BigIntArg>(value)->value().ToString();
      PutU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      return true;
    }
    case ArgKind::kAtomOrFunctor: {
      const auto* f = ArgCast<FunctorArg>(value);
      if (f->arity() != 0) return false;  // functor terms not storable
      out->push_back(kTagAtom);
      PutU32(out, static_cast<uint32_t>(f->name().size()));
      out->append(f->name());
      return true;
    }
    default:
      return false;
  }
}

StatusOr<const Arg*> DeserializeValue(std::span<const char> in, size_t* pos,
                                      TermFactory* factory) {
  if (*pos >= in.size()) return Status::Corruption("truncated value");
  char tag = in[*pos];
  ++*pos;
  auto need = [&](size_t n) { return *pos + n <= in.size(); };
  switch (tag) {
    case kTagInt: {
      if (!need(8)) return Status::Corruption("truncated int");
      int64_t v;
      std::memcpy(&v, in.data() + *pos, 8);
      *pos += 8;
      return static_cast<const Arg*>(factory->MakeInt(v));
    }
    case kTagDouble: {
      if (!need(8)) return Status::Corruption("truncated double");
      double v;
      std::memcpy(&v, in.data() + *pos, 8);
      *pos += 8;
      return static_cast<const Arg*>(factory->MakeDouble(v));
    }
    case kTagString:
    case kTagAtom:
    case kTagBigInt: {
      if (!need(4)) return Status::Corruption("truncated length");
      uint32_t len;
      std::memcpy(&len, in.data() + *pos, 4);
      *pos += 4;
      if (!need(len)) return Status::Corruption("truncated payload");
      std::string_view payload(in.data() + *pos, len);
      *pos += len;
      if (tag == kTagString) {
        return static_cast<const Arg*>(factory->MakeString(payload));
      }
      if (tag == kTagAtom) {
        return static_cast<const Arg*>(factory->MakeAtom(payload));
      }
      CORAL_ASSIGN_OR_RETURN(BigInt big, BigInt::FromString(payload));
      return static_cast<const Arg*>(factory->MakeBigInt(big));
    }
    default:
      return Status::Corruption("unknown value tag");
  }
}

StatusOr<std::string> SerializeTuple(const Tuple* t) {
  std::string out;
  uint16_t arity = static_cast<uint16_t>(t->arity());
  out.append(reinterpret_cast<const char*>(&arity), 2);
  for (uint32_t i = 0; i < t->arity(); ++i) {
    if (!SerializeValue(t->arg(i), &out)) {
      return Status::InvalidArgument(
          "persistent relations store primitive-typed fields only "
          "(paper §3.2); cannot store " + t->arg(i)->ToString());
    }
  }
  return out;
}

StatusOr<const Tuple*> DeserializeTuple(std::span<const char> rec,
                                        TermFactory* factory) {
  if (rec.size() < 2) return Status::Corruption("truncated tuple");
  uint16_t arity;
  std::memcpy(&arity, rec.data(), 2);
  size_t pos = 2;
  std::vector<const Arg*> args(arity);
  for (uint16_t i = 0; i < arity; ++i) {
    CORAL_ASSIGN_OR_RETURN(args[i], DeserializeValue(rec, &pos, factory));
  }
  return factory->MakeTuple(args);
}

bool PersistentRelation::CanStore(const Tuple* t) {
  if (!t->IsGround()) return false;
  std::string scratch;
  for (uint32_t i = 0; i < t->arity(); ++i) {
    scratch.clear();
    if (!SerializeValue(t->arg(i), &scratch)) return false;
  }
  return true;
}

Status PersistentRelation::ValidateInsert(const Tuple* t) const {
  if (sm_->read_only()) {
    return Status::FailedPrecondition(
        "storage is read-only (write-ahead log unavailable)");
  }
  if (!sm_->io_error().ok()) {
    return Status::IOError("mutation refused after storage I/O failure: " +
                           sm_->io_error().ToString());
  }
  if (!CanStore(t)) {
    return Status::InvalidArgument(
        "persistent relation " + name() +
        " stores only ground tuples of primitive-typed fields "
        "(paper §3.2)");
  }
  return Status::OK();
}

std::string PersistentRelation::KeyFor(const StoredIndex& idx,
                                       const Tuple* t) const {
  std::string key;
  for (uint32_t c : idx.cols) {
    bool ok = SerializeValue(t->arg(c), &key);
    CORAL_CHECK(ok);
  }
  return key;
}

std::optional<std::string> PersistentRelation::KeyForPattern(
    const StoredIndex& idx, std::span<const TermRef> pattern) const {
  std::string key;
  VarRenamer renamer;
  for (uint32_t c : idx.cols) {
    if (c >= pattern.size()) return std::nullopt;
    TermRef r = Deref(pattern[c].term, pattern[c].env);
    // Resolve through bindings; only ground primitives are usable keys.
    const Arg* v = ResolveTerm(r.term, r.env, sm_->factory(), &renamer);
    if (!v->IsGround() || !SerializeValue(v, &key)) return std::nullopt;
  }
  return key;
}

StatusOr<Rid> PersistentRelation::FindRid(const Tuple* t) const {
  CORAL_CHECK(!indexes_.empty());
  const StoredIndex& primary = indexes_[0];
  std::string key = KeyFor(primary, t);
  std::vector<Rid> rids;
  CORAL_RETURN_IF_ERROR(primary.tree->Lookup(key, &rids));
  for (Rid rid : rids) {
    CORAL_ASSIGN_OR_RETURN(std::vector<char> rec, heap_->Read(rid));
    if (rec.empty()) continue;
    CORAL_ASSIGN_OR_RETURN(const Tuple* stored,
                           DeserializeTuple(rec, sm_->factory()));
    if (stored == t) return rid;  // ground tuples are interned
  }
  return Rid{};
}

bool PersistentRelation::Contains(const Tuple* t) const {
  if (!t->IsGround()) return false;
  auto rid = FindRid(t);
  if (!rid.ok()) {
    // An unreadable page must not abort the process; latch the error and
    // report "absent" — Commit will refuse while the latch stands.
    sm_->RecordIoError(rid.status());
    return false;
  }
  return rid->valid();
}

void PersistentRelation::DoInsert(const Tuple* t) {
  CORAL_CHECK(CanStore(t))
      << "persistent relation " << name()
      << " can store only ground tuples of primitive-typed fields";
  auto rec = SerializeTuple(t);
  CORAL_CHECK(rec.ok()) << rec.status().ToString();
  auto rid = heap_->Append(std::span<const char>(rec->data(), rec->size()));
  if (!rid.ok()) {
    sm_->RecordIoError(rid.status());
    return;
  }
  for (StoredIndex& idx : indexes_) {
    Status st = idx.tree->Insert(KeyFor(idx, t), *rid);
    if (!st.ok()) {
      sm_->RecordIoError(st);
      return;
    }
  }
  ++count_;
  PersistRoots();
}

bool PersistentRelation::DoDelete(const Tuple* t) {
  if (!t->IsGround()) return false;
  auto rid = FindRid(t);
  if (!rid.ok()) {
    sm_->RecordIoError(rid.status());
    return false;
  }
  if (!rid->valid()) return false;
  auto removed = heap_->Delete(*rid);
  if (!removed.ok()) {
    sm_->RecordIoError(removed.status());
    return false;
  }
  for (StoredIndex& idx : indexes_) {
    Status st = idx.tree->Delete(KeyFor(idx, t), *rid).status();
    if (!st.ok()) {
      sm_->RecordIoError(st);
      return false;
    }
  }
  --count_;
  PersistRoots();
  return true;
}

void PersistentRelation::PersistRoots() {
  // B-tree roots move on splits; keep the catalog entry current.
  RelationMeta* meta = sm_->catalog()->Find(name(), arity());
  CORAL_CHECK(meta != nullptr);
  bool changed = meta->count != count_;
  meta->count = count_;
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (meta->indexes[i].root != indexes_[i].tree->root()) {
      meta->indexes[i].root = indexes_[i].tree->root();
      changed = true;
    }
  }
  (void)changed;  // catalog persisted wholesale on SaveCatalog/Close
}

namespace {

/// Full-scan iterator deserializing records on demand.
class PersistentScanIterator : public TupleIterator {
 public:
  PersistentScanIterator(HeapFile::Iterator it, TermFactory* factory)
      : it_(std::move(it)), factory_(factory) {}

  const Tuple* Next() override {
    std::span<const char> rec;
    Rid rid;
    while (it_.Next(&rec, &rid)) {
      auto t = DeserializeTuple(rec, factory_);
      if (!t.ok()) {
        status_ = t.status();
        return nullptr;
      }
      return *t;
    }
    if (!it_.status().ok()) status_ = it_.status();
    return nullptr;
  }
  const Status& status() const override { return status_; }

 private:
  HeapFile::Iterator it_;
  TermFactory* factory_;
  Status status_;
};

}  // namespace

std::unique_ptr<TupleIterator> PersistentRelation::ScanRange(
    Mark from, Mark to) const {
  if (from > 0 || to == 0) return std::make_unique<EmptyIterator>();
  return std::make_unique<PersistentScanIterator>(heap_->Scan(),
                                                  sm_->factory());
}

std::unique_ptr<TupleIterator> PersistentRelation::Select(
    std::span<const TermRef> pattern, Mark from, Mark to) const {
  if (from > 0 || to == 0) return std::make_unique<EmptyIterator>();
  // Widest usable index wins.
  const StoredIndex* best = nullptr;
  std::string best_key;
  for (const StoredIndex& idx : indexes_) {
    if (best != nullptr && idx.cols.size() <= best->cols.size()) continue;
    std::optional<std::string> key = KeyForPattern(idx, pattern);
    if (key.has_value()) {
      best = &idx;
      best_key = std::move(*key);
    }
  }
  if (best == nullptr) return ScanRange(0, kMaxMark);
  std::vector<Rid> rids;
  Status st = best->tree->Lookup(best_key, &rids);
  if (!st.ok()) {
    sm_->RecordIoError(st);
    return std::make_unique<EmptyIterator>();
  }
  std::vector<const Tuple*> tuples;
  tuples.reserve(rids.size());
  for (Rid rid : rids) {
    auto rec = heap_->Read(rid);
    if (!rec.ok()) {
      sm_->RecordIoError(rec.status());
      return std::make_unique<EmptyIterator>();
    }
    if (rec->empty()) continue;  // tombstoned
    auto t = DeserializeTuple(*rec, sm_->factory());
    if (!t.ok()) {
      sm_->RecordIoError(t.status());
      return std::make_unique<EmptyIterator>();
    }
    tuples.push_back(*t);
  }
  return std::make_unique<VectorIterator>(std::move(tuples));
}

Status PersistentRelation::AddIndex(std::vector<uint32_t> cols) {
  for (const StoredIndex& idx : indexes_) {
    if (idx.cols == cols) return Status::OK();
  }
  for (uint32_t c : cols) {
    if (c >= arity()) {
      return Status::OutOfRange("index column out of range");
    }
  }
  CORAL_ASSIGN_OR_RETURN(BTree tree, BTree::Create(sm_->pool()));
  StoredIndex idx{cols, std::make_unique<BTree>(std::move(tree))};
  // Backfill.
  HeapFile::Iterator it = heap_->Scan();
  std::span<const char> rec;
  Rid rid;
  while (it.Next(&rec, &rid)) {
    CORAL_ASSIGN_OR_RETURN(const Tuple* t,
                           DeserializeTuple(rec, sm_->factory()));
    CORAL_RETURN_IF_ERROR(idx.tree->Insert(KeyFor(idx, t), rid));
  }
  CORAL_RETURN_IF_ERROR(it.status());
  indexes_.push_back(std::move(idx));
  RelationMeta* meta = sm_->catalog()->Find(name(), arity());
  CORAL_CHECK(meta != nullptr);
  meta->indexes.push_back(
      IndexMeta{indexes_.back().cols, indexes_.back().tree->root()});
  return sm_->SaveCatalog();
}

}  // namespace coral
