#include "src/storage/heap_file.h"

#include "src/util/logging.h"

namespace coral {

StatusOr<HeapFile> HeapFile::Create(BufferPool* pool) {
  CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool->New());
  SlottedPage page(guard.data());
  guard.MarkDirty();
  page.Init(SlottedPage::kHeapPage);
  return HeapFile(pool, guard.id(), guard.id());
}

StatusOr<HeapFile> HeapFile::Open(BufferPool* pool, PageId first) {
  PageId last = first;
  while (true) {
    CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(last));
    SlottedPage page(guard.data());
    if (page.header()->page_type != SlottedPage::kHeapPage) {
      return Status::Corruption("heap chain contains a non-heap page");
    }
    PageId next = page.next_page();
    if (next == kInvalidPageId) break;
    last = next;
  }
  return HeapFile(pool, first, last);
}

StatusOr<Rid> HeapFile::Append(std::span<const char> record) {
  if (record.size() > kPageSize / 2) {
    return Status::InvalidArgument(
        "record too large for a page: " + std::to_string(record.size()) +
        " bytes");
  }
  CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(last_));
  SlottedPage page(guard.data());
  if (!page.HasRoomFor(record.size())) {
    CORAL_ASSIGN_OR_RETURN(PageGuard fresh, pool_->New());
    SlottedPage next(fresh.data());
    fresh.MarkDirty();
    next.Init(SlottedPage::kHeapPage);
    int slot = next.Insert(record);
    CORAL_CHECK(slot >= 0);
    guard.MarkDirty();
    page.set_next_page(fresh.id());
    last_ = fresh.id();
    return Rid{fresh.id(), static_cast<uint16_t>(slot)};
  }
  guard.MarkDirty();
  int slot = page.Insert(record);
  CORAL_CHECK(slot >= 0);
  return Rid{guard.id(), static_cast<uint16_t>(slot)};
}

StatusOr<bool> HeapFile::Delete(Rid rid) {
  CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  SlottedPage page(guard.data());
  if (page.Get(rid.slot).empty()) return false;
  guard.MarkDirty();  // before modification: WAL before-image
  return page.Delete(rid.slot);
}

StatusOr<std::vector<char>> HeapFile::Read(Rid rid) const {
  CORAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  SlottedPage page(guard.data());
  std::span<const char> rec = page.Get(rid.slot);
  return std::vector<char>(rec.begin(), rec.end());
}

bool HeapFile::Iterator::Next(std::span<const char>* record, Rid* rid) {
  while (true) {
    if (!loaded_) {
      if (page_id_ == kInvalidPageId) return false;
      auto guard = pool_->Fetch(page_id_);
      if (!guard.ok()) {
        status_ = guard.status();
        return false;
      }
      guard_ = std::move(guard).value();
      slot_ = 0;
      loaded_ = true;
    }
    SlottedPage page(guard_.data());
    while (slot_ < page.slot_count()) {
      uint16_t s = slot_++;
      std::span<const char> rec = page.Get(s);
      if (rec.empty()) continue;  // tombstone
      *record = rec;
      *rid = Rid{page_id_, s};
      return true;
    }
    page_id_ = page.next_page();
    guard_.Release();
    loaded_ = false;
  }
}

}  // namespace coral
